module searchmem

go 1.22
