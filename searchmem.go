// Package searchmem is a full reproduction of "Memory Hierarchy for Web
// Search" (Ayers, Ahn, Kozyrakis, Ranganathan — HPCA 2018) as a Go library.
//
// It provides, from scratch and with no dependencies beyond the standard
// library:
//
//   - a search-engine substrate (inverted index with compressed postings
//     and skip lists, BM25 + static-rank scoring, top-k, snippets, query
//     caching) whose execution emits instrumented memory-access and branch
//     traces (the reproduction's stand-in for the paper's Pin traces of
//     production search);
//   - a trace-driven functional cache simulator (set-associative /
//     direct-mapped / fully-associative, LRU/FIFO/random, CAT-style way
//     partitioning, inclusive hierarchies, and the paper's memory-side
//     eDRAM L4 victim cache), plus a one-pass LRU stack-distance profiler
//     for capacity sweeps;
//   - core-side models: branch predictors, TLBs, hardware prefetchers, a
//     calibrated Top-Down slot-accounting model, and SMT throughput models;
//   - the paper's analytical performance models (AMAT, Equation 1, the
//     performance-area model, power/energy accounting);
//   - calibrated workload profiles for the production services of Table I
//     and the SPEC CPU2006 / CloudSuite comparison points;
//   - a serving-tree simulator (front-end, cache servers, root, parents,
//     leaves) for request-level experiments; and
//   - a registered experiment per table and figure of the paper's
//     evaluation, regenerating each one.
//
// # Quickstart
//
//	res, err := searchmem.RunExperiment("table1", searchmem.FastOptions())
//	if err != nil { ... }
//	fmt.Println(res)
//
// See examples/ for runnable programs and EXPERIMENTS.md for the recorded
// paper-vs-reproduction comparison.
package searchmem

import (
	"fmt"

	"searchmem/internal/cache"
	"searchmem/internal/codegen"
	"searchmem/internal/core"
	"searchmem/internal/cpu"
	"searchmem/internal/dram"
	"searchmem/internal/experiments"
	"searchmem/internal/mem"
	"searchmem/internal/memsim"
	"searchmem/internal/model"
	"searchmem/internal/platform"
	"searchmem/internal/search"
	"searchmem/internal/serving"
	"searchmem/internal/trace"
	"searchmem/internal/workload"
)

// --- traces and instrumented memory ---

// Access is one memory reference of a trace.
type Access = trace.Access

// Segment labels an access with its software segment.
type Segment = trace.Segment

// Segment values.
const (
	Code  = trace.Code
	Heap  = trace.Heap
	Shard = trace.Shard
	Stack = trace.Stack
)

// Kind distinguishes instruction fetches, loads, and stores.
type Kind = trace.Kind

// Kind values.
const (
	Fetch = trace.Fetch
	Read  = trace.Read
	Write = trace.Write
)

// Space is an instrumented virtual address space.
type Space = memsim.Space

// NewSpace returns an address space whose arenas report every access to
// rec (nil disables recording).
func NewSpace(rec func(Access)) *Space { return memsim.NewSpace(rec) }

// WorkingSet measures distinct-byte footprints per segment.
type WorkingSet = trace.WorkingSet

// NewWorkingSet returns a working-set analyzer at the given block size.
func NewWorkingSet(blockSize int) *WorkingSet { return trace.NewWorkingSet(blockSize) }

// --- cache simulation ---

// CacheConfig describes one cache.
type CacheConfig = cache.Config

// Cache is a single functional cache.
type Cache = cache.Cache

// NewCache builds a cache from its configuration.
func NewCache(cfg CacheConfig) *Cache { return cache.New(cfg) }

// HierarchyConfig describes a multi-core cache hierarchy with optional L4.
type HierarchyConfig = cache.HierarchyConfig

// Hierarchy is the multi-level functional simulator.
type Hierarchy = cache.Hierarchy

// NewHierarchy builds a hierarchy.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy { return cache.NewHierarchy(cfg) }

// AccessStats is one cache level's hit/miss counter snapshot.
type AccessStats = cache.AccessStats

// Policy selects a cache's replacement policy (CacheConfig.Policy).
type Policy = cache.Policy

// Replacement policies. The stochastic ones (Random, BRRIP, DRRIP) require
// an explicit CacheConfig.Seed for reproducibility.
const (
	PolicyLRU    = cache.LRU
	PolicyFIFO   = cache.FIFO
	PolicyRandom = cache.Random
	PolicySRRIP  = cache.SRRIP
	PolicyBRRIP  = cache.BRRIP
	PolicyDRRIP  = cache.DRRIP
)

// ParsePolicy converts a policy name (case-insensitive; see PolicyNames)
// back to its value. Unknown names are an error, never a silent fallback.
func ParsePolicy(name string) (Policy, error) { return cache.ParsePolicy(name) }

// PolicyNames lists the valid replacement-policy names for flag help.
func PolicyNames() string { return cache.PolicyNames() }

// PredictorConfig enables the per-PC cache-level predictor on a hierarchy
// (HierarchyConfig.Predictor). The predictor overlays probe accounting on
// the authoritative probe chain: hits, misses, and memory traffic are
// byte-identical predictor-on and predictor-off.
type PredictorConfig = cache.PredictorConfig

// PredictorStats is the level predictor's counter snapshot (coverage, hit
// rate, probe-skip rate).
type PredictorStats = cache.PredictorStats

// StackDist is the one-pass LRU stack-distance (reuse) profiler.
type StackDist = cache.StackDist

// NewStackDist returns a profiler at the given block granularity.
func NewStackDist(blockSize int) *StackDist { return cache.NewStackDist(blockSize) }

// --- search engine substrate ---

// EngineConfig configures the search-engine substrate.
type EngineConfig = search.Config

// Engine is a built search index bound to an instrumented address space.
type Engine = search.Engine

// Session is per-thread query-execution state.
type Session = search.Session

// DefaultEngineConfig returns a small engine configuration.
func DefaultEngineConfig() EngineConfig { return search.DefaultConfig() }

// BuildEngine generates a corpus, indexes it into space, and returns the
// engine. codeCfg may be nil to skip instruction-side modeling.
func BuildEngine(cfg EngineConfig, space *Space, codeCfg *codegen.Config) *Engine {
	var prog *codegen.Program
	if codeCfg != nil {
		arena := space.NewArena("code", trace.Code, codeCfg.CodeBytes())
		prog = codegen.New(*codeCfg, arena)
	}
	eng, _ := search.Build(cfg, space, prog)
	return eng
}

// --- platforms, workloads, measurement ---

// Platform describes a hardware platform (Table II).
type Platform = platform.Platform

// PLT1 returns the Intel Haswell-class platform.
func PLT1() Platform { return platform.PLT1() }

// PLT2 returns the IBM POWER8-class platform.
func PLT2() Platform { return platform.PLT2() }

// SearchWorkload describes a production-search-like profile.
type SearchWorkload = workload.SearchWorkload

// SyntheticWorkload describes a SPEC/CloudSuite-like profile.
type SyntheticWorkload = workload.SyntheticWorkload

// S1Leaf returns the primary calibrated leaf profile (shrink 1 = full
// scale; larger values shrink working sets for quick runs).
func S1Leaf(shrink int) SearchWorkload { return workload.S1Leaf(shrink) }

// Measurement plumbing.
type (
	// MeasureConfig configures one measurement run.
	MeasureConfig = workload.MeasureConfig
	// Metrics is the measured outcome (Table I rows, Figure 3 breakdown).
	Metrics = workload.Metrics
	// Sinks receives a run's event streams.
	Sinks = workload.Sinks
)

// Measure runs a workload against a simulated hierarchy and reduces the
// result through the calibrated core model.
func Measure(r workload.Runner, mc MeasureConfig) Metrics { return workload.Measure(r, mc) }

// --- analytical models ---

// Equation1 is the paper's published IPC model: IPC = -8.62e-3*AMAT + 1.78.
var Equation1 = model.Equation1

// AMATL3 computes the paper's post-L2 average memory access time.
func AMATL3(hitRate, tL3NS, tMemNS float64) float64 { return model.AMATL3(hitRate, tL3NS, tMemNS) }

// AMATWithL4 extends AMATL3 with a memory-side L4.
func AMATWithL4(hL3, hL4, tL3, tL4, tMEM, missPenalty float64) float64 {
	return model.AMATWithL4(hL3, hL4, tL3, tL4, tMEM, missPenalty)
}

// L4Design describes an Alloy-style latency-optimized L4 configuration.
type L4Design = dram.L4Design

// BaselineL4 returns the paper's 40 ns direct-mapped parallel-lookup L4.
func BaselineL4(capacity int64) L4Design { return dram.BaselineL4(capacity) }

// TopDownBreakdown is the Top-Down slot accounting of Figure 3.
type TopDownBreakdown = cpu.Breakdown

// --- tiered main memory (below the L4; figT1/figT2 extension) ---

// MemConfig describes a tiered memory system: a DRAM bank/row-buffer near
// tier plus an optional CXL-like far tier with hot/cold page placement.
// Attach one to MeasureConfig.Mem to replace the flat tMEM constant with
// simulated post-L4 memory timing.
type MemConfig = mem.Config

// DRAMConfig shapes the near-tier channel/bank/row-buffer timing model.
type DRAMConfig = mem.DRAMConfig

// FarMemConfig enables and shapes the far tier (capacity split, placement
// policy, epoch length, migration cost).
type FarMemConfig = mem.FarConfig

// MemStats is a tiered memory system's counter snapshot (row-buffer hit
// rate, far-tier traffic and residency, migration volume).
type MemStats = mem.Stats

// PagePolicy selects the far tier's hot/cold placement policy.
type PagePolicy = mem.PagePolicy

// Placement policies for FarMemConfig.Policy.
const (
	PolicyStatic        = mem.PolicyStatic
	PolicyLRUEpoch      = mem.PolicyLRUEpoch
	PolicyFreqThreshold = mem.PolicyFreqThreshold
)

// MemCostModel prices provisioned capacity per tier — the denominator of
// the tier sweep's QPS-per-memory-dollar metric.
type MemCostModel = mem.CostModel

// DefaultMemCost returns the illustrative near/far price gap used by figT1.
func DefaultMemCost() MemCostModel { return mem.DefaultCost }

// --- hierarchy design space (the paper's §IV contribution) ---

// HierarchyDesign is one SoC + package configuration (cores, L3, optional
// eDRAM L4).
type HierarchyDesign = core.Design

// DesignEvaluator scores hierarchy designs under iso-area / iso-power
// constraints using the calibrated models.
type DesignEvaluator = core.Evaluator

// DesignScore is one design's evaluation.
type DesignScore = core.Score

// DesignConstraint restricts the explored design space.
type DesignConstraint = core.Constraint

// DesignParams bundles the model constants a DesignEvaluator needs.
type DesignParams = core.Params

// CompareDesigns returns (improvement fraction, relative energy/query) of
// design vs baseline.
func CompareDesigns(baseline, design DesignScore) (improvement, energyPerQuery float64) {
	return core.Relative(baseline, design)
}

// --- serving tree ---

// Cluster is the Figure 1 serving tree.
type Cluster = serving.Cluster

// ClusterConfig shapes the serving tree.
type ClusterConfig = serving.Config

// Query is one user request to the serving tree.
type Query = serving.Query

// NewCluster wires a serving tree (executors may be nil for synthetic
// leaves).
func NewCluster(cfg ClusterConfig, executors []serving.Executor) *Cluster {
	return serving.NewCluster(cfg, executors)
}

// DefaultClusterConfig returns a small but fully structured tree.
func DefaultClusterConfig() ClusterConfig { return serving.DefaultConfig() }

// ClusterMetrics is a snapshot of the serving tree's per-stage latency
// distributions and fault-tolerance counters (see Cluster.Metrics).
type ClusterMetrics = serving.Metrics

// FaultyExecutor wraps a leaf executor with deterministic slow/fail/flap
// fault injection for degradation studies.
type FaultyExecutor = serving.FaultyExecutor

// BufferedExecutor is the allocation-free leaf interface the fleet load
// engine drives (results written into caller buffers).
type BufferedExecutor = serving.BufferedExecutor

// LoadStats summarizes a load-generation run.
type LoadStats = serving.LoadStats

// RunLoad drives a cluster with a closed-loop Zipf-popular load on the
// event-heap engine, in deterministic virtual time.
func RunLoad(c *Cluster, clients, queriesPerClient, vocabSize int, skew float64, seed uint64) LoadStats {
	return serving.RunLoad(c, clients, queriesPerClient, vocabSize, skew, seed)
}

// Scenario describes one fleet load run: closed- or open-loop arrivals
// plus an operational timeline (cache flushes, correlated outages).
type Scenario = serving.Scenario

// RateCurve is the open-loop arrival-rate model (diurnal cycle plus
// flash-crowd bursts).
type RateCurve = serving.RateCurve

// Burst is one flash-crowd window on a RateCurve.
type Burst = serving.Burst

// FleetEvent is one scheduled operational event on a scenario timeline.
type FleetEvent = serving.FleetEvent

// FleetStats extends LoadStats with fleet-scenario accounting.
type FleetStats = serving.FleetStats

// RunScenario drives a cluster through one fleet scenario on the
// event-driven engine (millions of modeled users in bounded memory).
func RunScenario(c *Cluster, sc Scenario) FleetStats { return serving.RunScenario(c, sc) }

// --- experiments ---

// Options scales an experiment run.
type Options = experiments.Options

// FastOptions returns quick, reduced-scale options.
func FastOptions() Options { return experiments.Fast() }

// FullOptions returns calibrated full-scale options.
func FullOptions() Options { return experiments.Full() }

// ExperimentIDs lists the reproducible tables and figures in paper order.
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment reproduces one of the paper's tables or figures and
// returns its rendering.
func RunExperiment(id string, opts Options) (string, error) {
	e, ok := experiments.ByID(id)
	if !ok {
		return "", fmt.Errorf("searchmem: unknown experiment %q", id)
	}
	res, err := e.Run(experiments.NewContext(opts))
	if err != nil {
		return "", err
	}
	return res.Render(), nil
}

// NewExperimentContext returns a context that caches expensive workload
// builds across several RunExperimentIn calls.
func NewExperimentContext(opts Options) *experiments.Context {
	return experiments.NewContext(opts)
}

// RunExperimentIn is RunExperiment against a shared context.
func RunExperimentIn(ctx *experiments.Context, id string) (string, error) {
	e, ok := experiments.ByID(id)
	if !ok {
		return "", fmt.Errorf("searchmem: unknown experiment %q", id)
	}
	res, err := e.Run(ctx)
	if err != nil {
		return "", err
	}
	return res.Render(), nil
}
