package searchmem

// The benchmark harness regenerates every table and figure of the paper
// (one Benchmark per experiment id), measures the substrates themselves,
// and runs the ablation studies called out in DESIGN.md.
//
//	go test -bench=. -benchmem
//
// Experiment benchmarks share one full-scale context (workload builds and
// hit-rate curves are cached), so the first benchmark to run pays the build
// cost. Custom metrics carry the reproduced headline numbers.

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"searchmem/internal/cache"
	"searchmem/internal/cpu"
	"searchmem/internal/experiments"
	"searchmem/internal/mem"
	"searchmem/internal/obs"
	"searchmem/internal/serving"
	"searchmem/internal/stats"
	"searchmem/internal/trace"
	"searchmem/internal/workload"
)

var (
	benchCtxOnce sync.Once
	benchCtx     *experiments.Context
)

// benchContext returns the shared full-scale experiment context (-short
// drops to Fast scale so CI can emit the sweep artifact cheaply).
func benchContext(b *testing.B) *experiments.Context {
	b.Helper()
	benchCtxOnce.Do(func() {
		opts := experiments.Full()
		if testing.Short() {
			opts = experiments.Fast()
		}
		benchCtx = experiments.NewContext(opts)
	})
	return benchCtx
}

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	ctx := benchContext(b)
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Run(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res.Render())
		}
	}
}

// --- one benchmark per paper table/figure ---

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkFig2a(b *testing.B)  { benchExperiment(b, "fig2a") }
func BenchmarkFig2b(b *testing.B)  { benchExperiment(b, "fig2b") }
func BenchmarkFig2c(b *testing.B)  { benchExperiment(b, "fig2c") }
func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6a(b *testing.B)  { benchExperiment(b, "fig6a") }
func BenchmarkFig6b(b *testing.B)  { benchExperiment(b, "fig6b") }
func BenchmarkFig6c(b *testing.B)  { benchExperiment(b, "fig6c") }
func BenchmarkFig7a(b *testing.B)  { benchExperiment(b, "fig7a") }
func BenchmarkFig7b(b *testing.B)  { benchExperiment(b, "fig7b") }
func BenchmarkFig8a(b *testing.B)  { benchExperiment(b, "fig8a") }
func BenchmarkFig8b(b *testing.B)  { benchExperiment(b, "fig8b") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig13(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)  { benchExperiment(b, "fig14") }
func BenchmarkFigT1(b *testing.B)  { benchExperiment(b, "figT1") }
func BenchmarkFigT2(b *testing.B)  { benchExperiment(b, "figT2") }

// --- sweep-engine before/after benchmarks (DESIGN.md §10) ---

// benchSweep measures one capacity-sweep experiment under the serial and
// parallel engines. A warm run first populates the shared workload builds
// and trace recordings, then each iteration gets a Sharing context (fresh
// derived-curve caches, shared recordings), so the serial/parallel ratio
// isolates the sweep fan-out rather than one-time recording cost. Both
// modes render byte-identical output (TestSameSeedByteIdenticalOutput).
func benchSweep(b *testing.B, id string) {
	base := benchContext(b)
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	if _, err := e.Run(base.Sharing(base.Opts)); err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name     string
		parallel bool
	}{
		{"serial", false},
		{"parallel", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			opts := base.Opts
			opts.Parallel = mode.parallel
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(base.Sharing(opts)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSweepFig6b(b *testing.B) { benchSweep(b, "fig6b") }
func BenchmarkSweepFig9(b *testing.B)  { benchSweep(b, "fig9") }
func BenchmarkSweepFig13(b *testing.B) { benchSweep(b, "fig13") }

// --- substrate microbenchmarks ---

// leafTrace materializes a reusable access trace from a shrunken leaf.
var (
	leafTraceOnce sync.Once
	leafTrace     []trace.Access
)

func benchLeafTrace(b testing.TB) []trace.Access {
	b.Helper()
	leafTraceOnce.Do(func() {
		r := workload.S1Leaf(16).Build()
		r.Run(2, 1_500_000, 1, workload.Sinks{Access: func(a trace.Access) {
			leafTrace = append(leafTrace, a)
		}})
	})
	return leafTrace
}

// benchHierarchyConfig is the shared L1+L2+L3 configuration of the kernel
// microbenchmarks.
func benchHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		Cores: 2, ThreadsPerCore: 1,
		L1I: CacheConfig{Size: 32 << 10, BlockSize: 64, Assoc: 8},
		L1D: CacheConfig{Size: 32 << 10, BlockSize: 64, Assoc: 8},
		L2:  CacheConfig{Size: 256 << 10, BlockSize: 64, Assoc: 8},
		L3:  CacheConfig{Size: 4 << 20, BlockSize: 64, Assoc: 16},
	}
}

// BenchmarkHierarchyAccess measures replay throughput through L1+L2+L3
// (ns per simulated access): the scalar pre-batching hot loop (per-access
// trace.Stream dispatch + copy + Hierarchy.Access call chain) vs the
// batched kernel consuming zero-copy windows of the same memoized trace.
func BenchmarkHierarchyAccess(b *testing.B) {
	sh := trace.NewShared(benchLeafTrace(b))
	b.Run("scalar", func(b *testing.B) {
		h := NewHierarchy(benchHierarchyConfig())
		var s trace.Stream = sh.View()
		var a trace.Access
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !s.Next(&a) {
				s.(*trace.View).Rewind()
				s.Next(&a)
			}
			h.Access(a)
		}
	})
	b.Run("batched", func(b *testing.B) {
		h := NewHierarchy(benchHierarchyConfig())
		v := sh.View()
		b.ResetTimer()
		for done := 0; done < b.N; {
			batch := v.NextBatch()
			if len(batch) == 0 {
				v.Rewind()
				continue
			}
			if rem := b.N - done; len(batch) > rem {
				batch = batch[:rem]
			}
			h.AccessBatch(batch, nil)
			done += len(batch)
		}
	})
	// The predictor-off/predictor-on pair prices the level predictor's
	// bookkeeping in the batched kernel on the deep (L4-backed) hierarchy
	// where prediction is motivated; the predictor run also reports its
	// steady probe-skip rate (the acceptance figure lives in
	// TestPredictorProbeSkipAcceptance).
	b.Run("deep-off", func(b *testing.B) {
		benchBatched(b, sh, predictorAcceptConfig())
	})
	b.Run("deep-predictor", func(b *testing.B) {
		cfg := predictorAcceptConfig()
		cfg.Predictor = &PredictorConfig{ConfThreshold: 1}
		// The published probe-skip rate comes from one cold replay of the
		// full trace — the regime TestPredictorProbeSkipAcceptance pins
		// (> 0.5) — measured outside the timed loop, which replays the
		// trace repeatedly and so would report the warm-cache steady state
		// instead.
		cold := NewHierarchy(cfg)
		cold.AccessBatch(benchLeafTrace(b), nil)
		skip := cold.PredictorStats().SkipRate()
		benchBatched(b, sh, cfg)
		b.ReportMetric(skip, "probe-skip-rate")
	})
}

// benchBatched drives the batched kernel over the shared trace for b.N
// accesses and returns the hierarchy for metric reporting.
func benchBatched(b *testing.B, sh *trace.Shared, cfg HierarchyConfig) *Hierarchy {
	h := NewHierarchy(cfg)
	v := sh.View()
	b.ResetTimer()
	for done := 0; done < b.N; {
		batch := v.NextBatch()
		if len(batch) == 0 {
			v.Rewind()
			continue
		}
		if rem := b.N - done; len(batch) > rem {
			batch = batch[:rem]
		}
		h.AccessBatch(batch, nil)
		done += len(batch)
	}
	return h
}

// BenchmarkSharedReplay isolates the stream-decode phase: draining a
// memoized trace.Shared recording into a no-op consumer through the scalar
// Stream interface vs zero-copy NextBatch windows. The gap is pure
// per-access interface dispatch + copy.
func BenchmarkSharedReplay(b *testing.B) {
	sh := trace.NewShared(benchLeafTrace(b))
	var sink uint64
	b.Run("scalar", func(b *testing.B) {
		v := sh.View()
		var a trace.Access
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !v.Next(&a) {
				v.Rewind()
				v.Next(&a)
			}
			sink += a.Addr
		}
	})
	b.Run("batched", func(b *testing.B) {
		v := sh.View()
		b.ResetTimer()
		for done := 0; done < b.N; {
			batch := v.NextBatch()
			if len(batch) == 0 {
				v.Rewind()
				continue
			}
			if rem := b.N - done; len(batch) > rem {
				batch = batch[:rem]
			}
			for i := range batch {
				sink += batch[i].Addr
			}
			done += len(batch)
		}
	})
	_ = sink
}

// BenchmarkCompressedDecode measures the block-codec decode path against
// the flat BenchmarkSharedReplay baseline: draining a trace.Compressed
// recording (delta+varint blocks decoded into a reused window) into the
// same no-op consumer, from RAM-resident blocks and from a spill file. The
// acceptance bar for bounded-memory replay is batched decode within ~2x of
// the flat batched path.
func BenchmarkCompressedDecode(b *testing.B) {
	tr := benchLeafTrace(b)
	comp, err := trace.Compress(tr, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("compressed %d accesses to %d bytes (%.2f B/access, flat 16)",
		comp.Len(), comp.StoredBytes(), float64(comp.StoredBytes())/float64(comp.Len()))
	var sink uint64
	drainBatched := func(b *testing.B, v *trace.CompressedView) {
		b.ResetTimer()
		for done := 0; done < b.N; {
			batch := v.NextBatch()
			if len(batch) == 0 {
				if v.Err() != nil {
					b.Fatal(v.Err())
				}
				v.Rewind()
				continue
			}
			if rem := b.N - done; len(batch) > rem {
				batch = batch[:rem]
			}
			for i := range batch {
				sink += batch[i].Addr
			}
			done += len(batch)
		}
	}
	b.Run("scalar", func(b *testing.B) {
		v := comp.View()
		var a trace.Access
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !v.Next(&a) {
				v.Rewind()
				v.Next(&a)
			}
			sink += a.Addr
		}
	})
	b.Run("batched", func(b *testing.B) { drainBatched(b, comp.View()) })
	b.Run("spilled", func(b *testing.B) {
		f, err := os.CreateTemp(b.TempDir(), "bench-*.blk")
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		w := trace.NewBlockWriter(0, f)
		for _, a := range tr {
			if err := w.Add(a); err != nil {
				b.Fatal(err)
			}
		}
		sp, err := w.Finish()
		if err != nil {
			b.Fatal(err)
		}
		drainBatched(b, sp.View())
	})
	_ = sink
}

// benchReplayRunner is a cheap synthetic Runner for the Replayer transport
// benchmark: the recording cost is irrelevant (paid once, outside the
// timer); only the replay path is measured.
type benchReplayRunner struct{}

func (benchReplayRunner) Name() string        { return "bench-replay" }
func (benchReplayRunner) MemOverlap() float64 { return 0 }

func (benchReplayRunner) Run(threads int, budget int64, seed uint64, sk workload.Sinks) workload.Stats {
	n := int(budget)
	for i := 0; i < n; i++ {
		if sk.Access != nil {
			sk.Access(trace.Access{Addr: uint64(i)*64 + seed, Size: 8, Seg: trace.Heap, Thread: uint8(i % threads)})
		}
		if i%64 == 0 && sk.Branch != nil {
			sk.Branch(uint8(i%threads), uint64(i)*4, i%128 == 0)
		}
	}
	return workload.Stats{Instructions: budget * 4, Accesses: budget, Branches: budget / 64}
}

// BenchmarkReplayerReplay measures one full memoized replay through the
// Replayer — the transport the sweep engine drives — including cursor
// acquisition and batch splitting at branch positions. allocs/op is the
// headline number: steady-state replay allocates nothing (the Replayer
// keeps a single-slot cursor cache per recording, rewound on reuse; the
// hotalloc analyzer and the ZeroAlloc oracles pin this, DESIGN.md §13).
func BenchmarkReplayerReplay(b *testing.B) {
	const accesses = 200_000
	for _, tc := range []struct {
		name  string
		store *workload.StoreConfig
	}{
		{"flat", nil},
		{"compressed", &workload.StoreConfig{Compress: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			rep := workload.NewReplayer(benchReplayRunner{})
			if tc.store != nil {
				rep.SetStore(*tc.store)
			}
			var sink uint64
			sinks := workload.Sinks{
				AccessBatch: func(batch []trace.Access) {
					for i := range batch {
						sink += batch[i].Addr
					}
				},
				Branch: func(t uint8, pc uint64, taken bool) { sink += pc },
			}
			rep.Run(2, accesses, 1, sinks) // record once, outside the timer
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep.Run(2, accesses, 1, sinks)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/accesses, "ns/access")
			_ = sink
		})
	}
}

// BenchmarkMultiSim measures a 8-configuration capacity sweep over one
// shared trace: draining each hierarchy independently (the trace streams
// from memory once per configuration) vs the single-pass MultiSim driver
// (once total). Both produce bit-identical stats; ns/op is per simulated
// access per configuration.
func BenchmarkMultiSim(b *testing.B) {
	tr := benchLeafTrace(b)
	sh := trace.NewShared(tr)
	const nConfigs = 8
	mkHierarchies := func() []*cache.Hierarchy {
		hs := make([]*cache.Hierarchy, nConfigs)
		for i := range hs {
			cfg := benchHierarchyConfig()
			cfg.L3.Size = int64(1+i) << 19 // 512 KiB .. 4 MiB sweep
			hs[i] = cache.NewHierarchy(cfg)
		}
		return hs
	}
	b.Run("independent", func(b *testing.B) {
		hs := mkHierarchies()
		b.ResetTimer()
		for done := 0; done < b.N; {
			n := len(tr) * nConfigs
			if rem := b.N - done; rem < n {
				n = rem
			}
			per := n / nConfigs
			if per == 0 {
				per = 1
			}
			for _, h := range hs {
				h.DrainBatch(sh.View())
				_ = per
			}
			done += n
		}
	})
	b.Run("multisim", func(b *testing.B) {
		ms := cache.NewMultiSim(mkHierarchies()...)
		b.ResetTimer()
		for done := 0; done < b.N; {
			n := len(tr) * nConfigs
			if rem := b.N - done; rem < n {
				n = rem
			}
			ms.Drain(sh.View())
			done += n
		}
	})
}

// --- tiered main-memory kernel benchmarks (DESIGN.md §14) ---

// benchMemSystem drains the memoized leaf trace through one tiered memory
// system: ns/op is per simulated memory transaction, and allocs/op must be
// 0 in steady state (the //lint:hot contract on System.DrainBatch — the
// first pass outside the timer absorbs page-table growth).
func benchMemSystem(b *testing.B, far *mem.FarConfig) {
	tr := benchLeafTrace(b)
	sh := trace.NewShared(tr)
	sys := mem.NewSystem(mem.Config{Far: far})
	v := sh.View()
	sys.DrainBatch(v)
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; done += len(tr) {
		v.Rewind()
		sys.DrainBatch(v)
	}
	b.StopTimer()
	st := sys.Snapshot()
	b.ReportMetric(st.RowHitRate(), "row-hit-rate")
	if far != nil {
		b.ReportMetric(st.FarReadFrac(), "far-read-frac")
	}
}

// BenchmarkMemSystemNear is the near-only DRAM bank/row-buffer model.
func BenchmarkMemSystemNear(b *testing.B) { benchMemSystem(b, nil) }

// BenchmarkMemSystemTieredStatic adds the far tier with first-touch
// placement (no migration traffic; NearPages is sized well below the leaf
// trace's page population so the far path is exercised).
func BenchmarkMemSystemTieredStatic(b *testing.B) {
	benchMemSystem(b, &mem.FarConfig{NearPages: 512, Policy: mem.PolicyStatic})
}

// BenchmarkMemSystemTieredFreq adds epoch rebalancing under the
// frequency-threshold policy (the placement engine's worst case).
func BenchmarkMemSystemTieredFreq(b *testing.B) {
	benchMemSystem(b, &mem.FarConfig{NearPages: 512, Policy: mem.PolicyFreqThreshold, EpochLen: 65536})
}

// BenchmarkStackDist measures the one-pass reuse profiler.
func BenchmarkStackDist(b *testing.B) {
	tr := benchLeafTrace(b)
	sd := NewStackDist(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sd.Observe(tr[i%len(tr)])
	}
}

// BenchmarkEngineQuery measures end-to-end instrumented query execution.
func BenchmarkEngineQuery(b *testing.B) {
	space := NewSpace(func(Access) {})
	cfg := DefaultEngineConfig()
	cfg.Corpus.NumDocs = 20000
	cfg.Corpus.VocabSize = 30000
	eng := BuildEngine(cfg, space, nil)
	sess := eng.NewSession(0, nil)
	rng := stats.NewRNG(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.Execute([]uint32{uint32(rng.Intn(30000)), uint32(rng.Intn(30000))})
	}
}

// BenchmarkTraceCodec measures trace serialization.
func BenchmarkTraceCodec(b *testing.B) {
	tr := benchLeafTrace(b)
	w, _ := trace.NewWriter(discard{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Write(tr[i%len(tr)]); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkGshare measures branch-predictor throughput.
func BenchmarkGshare(b *testing.B) {
	p := cpu.NewGshare(14)
	rng := stats.NewRNG(3)
	pcs := make([]uint64, 1024)
	outs := make([]bool, 1024)
	for i := range pcs {
		pcs[i] = rng.Uint64n(1 << 20)
		outs[i] = rng.Bool(0.7)
	}
	s := cpu.PredictorStats{P: p}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(cpu.Branch{PC: pcs[i%1024], Taken: outs[i%1024]})
	}
}

// --- ablation benchmarks (design choices called out in DESIGN.md) ---

// ablationHitRate replays the leaf trace through an L3 variant and reports
// its hit rate.
func ablationHitRate(b *testing.B, mutate func(*cache.HierarchyConfig)) {
	tr := benchLeafTrace(b)
	cfg := cache.HierarchyConfig{
		Cores: 2, ThreadsPerCore: 1,
		L1I:         cache.Config{Size: 32 << 10, BlockSize: 64, Assoc: 8},
		L1D:         cache.Config{Size: 32 << 10, BlockSize: 64, Assoc: 8},
		L2:          cache.Config{Size: 256 << 10, BlockSize: 64, Assoc: 8},
		L3:          cache.Config{Size: 1 << 20, BlockSize: 64, Assoc: 16},
		L3Inclusive: true,
	}
	mutate(&cfg)
	b.ResetTimer()
	var hit float64
	for i := 0; i < b.N; i++ {
		h := cache.NewHierarchy(cfg)
		for _, a := range tr {
			h.Access(a)
		}
		hit = h.L3Stats().HitRate()
	}
	b.ReportMetric(hit, "L3-hit-rate")
}

// BenchmarkAblationReplacementLRU/FIFO/Random quantify the replacement
// policy choice (the paper's simulator uses LRU everywhere).
func BenchmarkAblationReplacementLRU(b *testing.B) {
	ablationHitRate(b, func(c *cache.HierarchyConfig) { c.L3.Policy = cache.LRU })
}

// BenchmarkAblationReplacementFIFO is the FIFO variant.
func BenchmarkAblationReplacementFIFO(b *testing.B) {
	ablationHitRate(b, func(c *cache.HierarchyConfig) { c.L3.Policy = cache.FIFO })
}

// BenchmarkAblationReplacementRandom is the random variant (stochastic
// policies require an explicit seed).
func BenchmarkAblationReplacementRandom(b *testing.B) {
	ablationHitRate(b, func(c *cache.HierarchyConfig) { c.L3.Policy, c.L3.Seed = cache.Random, 1 })
}

// BenchmarkAblationReplacementSRRIP/DRRIP extend the ablation to the RRIP
// zoo (DRRIP's set-dueling inherits BRRIP's seeded bimodal insertion).
func BenchmarkAblationReplacementSRRIP(b *testing.B) {
	ablationHitRate(b, func(c *cache.HierarchyConfig) { c.L3.Policy = cache.SRRIP })
}

// BenchmarkAblationReplacementDRRIP is the set-dueling variant.
func BenchmarkAblationReplacementDRRIP(b *testing.B) {
	ablationHitRate(b, func(c *cache.HierarchyConfig) { c.L3.Policy, c.L3.Seed = cache.DRRIP, 1 })
}

// BenchmarkAblationInclusiveL3 vs NonInclusive quantifies the inclusion
// back-invalidation cost the paper notes for PLT1.
func BenchmarkAblationInclusiveL3(b *testing.B) {
	ablationHitRate(b, func(c *cache.HierarchyConfig) { c.L3Inclusive = true })
}

// BenchmarkAblationNonInclusiveL3 is the non-inclusive variant.
func BenchmarkAblationNonInclusiveL3(b *testing.B) {
	ablationHitRate(b, func(c *cache.HierarchyConfig) { c.L3Inclusive = false })
}

// ablationL4 replays the trace with an L4 variant and reports the L4 hit
// rate and DRAM filter rate.
func ablationL4(b *testing.B, fillOnMiss bool, assoc int) {
	tr := benchLeafTrace(b)
	cfg := cache.HierarchyConfig{
		Cores: 2, ThreadsPerCore: 1,
		L1I:          cache.Config{Size: 32 << 10, BlockSize: 64, Assoc: 8},
		L1D:          cache.Config{Size: 32 << 10, BlockSize: 64, Assoc: 8},
		L2:           cache.Config{Size: 256 << 10, BlockSize: 64, Assoc: 8},
		L3:           cache.Config{Size: 512 << 10, BlockSize: 64, Assoc: 16},
		L4:           &cache.Config{Size: 8 << 20, BlockSize: 64, Assoc: assoc},
		L4FillOnMiss: fillOnMiss,
	}
	b.ResetTimer()
	var hit float64
	for i := 0; i < b.N; i++ {
		h := cache.NewHierarchy(cfg)
		for _, a := range tr {
			h.Access(a)
		}
		hit = h.L4Stats().HitRate()
	}
	b.ReportMetric(hit, "L4-hit-rate")
}

// BenchmarkAblationL4VictimFill is the paper's design: the L4 fills from L3
// evictions.
func BenchmarkAblationL4VictimFill(b *testing.B) { ablationL4(b, false, 1) }

// BenchmarkAblationL4FillOnMiss fills the L4 on memory fetches instead.
func BenchmarkAblationL4FillOnMiss(b *testing.B) { ablationL4(b, true, 1) }

// BenchmarkAblationL4DirectMapped vs FullyAssociative bound the conflict
// cost of the paper's direct-mapped choice (Figure 14 "Associative").
func BenchmarkAblationL4DirectMapped(b *testing.B) { ablationL4(b, false, 1) }

// BenchmarkAblationL4FullyAssociative is the fully-associative variant.
func BenchmarkAblationL4FullyAssociative(b *testing.B) { ablationL4(b, false, 0) }

// BenchmarkAblationL4LookupOverlap quantifies the parallel tag-lookup
// design through the AMAT model: serializing the lookup adds its penalty to
// every miss.
func BenchmarkAblationL4LookupOverlap(b *testing.B) {
	var parallel, serial float64
	for i := 0; i < b.N; i++ {
		parallel = AMATWithL4(0.6, 0.8, 14.4, 40, 65, 0)
		serial = AMATWithL4(0.6, 0.8, 14.4, 40, 65, 5)
	}
	b.ReportMetric(parallel, "AMAT-parallel-ns")
	b.ReportMetric(serial, "AMAT-serial-ns")
}

// --- serving tree and observability benchmarks ---

// benchCluster builds the serving tree the observability benchmarks drive:
// synthetic leaves, no fault injection, so per-query work is uniform.
func benchCluster(tracer *obs.Tracer) *serving.Cluster {
	cfg := serving.DefaultConfig()
	cfg.Leaves = 16
	cfg.Fanout = 4
	cfg.Name = "bench"
	cfg.Tracer = tracer
	// No cache-server tier: every iteration takes the full fan-out path.
	cfg.CacheSlots = 0
	return serving.NewCluster(cfg, nil)
}

// BenchmarkServingTree measures end-to-end query latency through the serving
// tree (frontend, cache probe, root fan-out, parents, leaves, merge) with
// tracing disabled.
func BenchmarkServingTree(b *testing.B) {
	c := benchCluster(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Serve(serving.Query{Terms: []uint32{uint32(i) % 1024, uint32(i) % 4096}})
	}
}

// BenchmarkTraceOverhead quantifies what per-query tracing costs. The
// "disabled" case is the zero-value path every untraced cluster takes (one
// nil check per query); "enabled" records and drains a full span tree per
// query.
func BenchmarkTraceOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		c := benchCluster(nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Serve(serving.Query{Terms: []uint32{uint32(i) % 1024, uint32(i) % 4096}})
		}
	})
	b.Run("enabled", func(b *testing.B) {
		tracer := obs.NewTracer()
		c := benchCluster(tracer)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Serve(serving.Query{Terms: []uint32{uint32(i) % 1024, uint32(i) % 4096}})
			// Drain so the tracer's buffer stays bounded across iterations.
			tracer.Take()
		}
	})
}

// branchStream materializes a reusable branch trace from the leaf workload.
var (
	branchOnce   sync.Once
	branchStream []cpu.Branch
)

func benchBranchStream(b *testing.B) []cpu.Branch {
	b.Helper()
	branchOnce.Do(func() {
		r := workload.S1Leaf(16).Build()
		r.Run(1, 600_000, 1, workload.Sinks{
			Branch: func(_ uint8, pc uint64, taken bool) {
				branchStream = append(branchStream, cpu.Branch{PC: pc, Taken: taken})
			},
		})
	})
	return branchStream
}

// ablationPredictor reports a predictor's mispredict rate on the leaf
// branch stream (the paper's branch-MPKI axis, Table I).
func ablationPredictor(b *testing.B, mk func() cpu.Predictor) {
	br := benchBranchStream(b)
	b.ResetTimer()
	var rate float64
	for i := 0; i < b.N; i++ {
		s := cpu.PredictorStats{P: mk()}
		for _, x := range br {
			s.Observe(x)
		}
		rate = 1 - s.Accuracy()
	}
	b.ReportMetric(rate*100, "mispredict-%")
}

// BenchmarkAblationPredictorBimodal/Gshare/Tournament compare direction
// predictors on the search branch stream.
func BenchmarkAblationPredictorBimodal(b *testing.B) {
	ablationPredictor(b, func() cpu.Predictor { return cpu.NewBimodal(14) })
}

// BenchmarkAblationPredictorGshare is the gshare variant.
func BenchmarkAblationPredictorGshare(b *testing.B) {
	ablationPredictor(b, func() cpu.Predictor { return cpu.NewGshare(14) })
}

// BenchmarkAblationPredictorTournament is the tournament variant.
func BenchmarkAblationPredictorTournament(b *testing.B) {
	ablationPredictor(b, func() cpu.Predictor { return cpu.NewTournament(14) })
}

// --- fleet load-engine benchmarks (DESIGN.md §16) ---

// BenchmarkRunLoadEngine measures the closed-loop load drivers in
// events/sec: the event-heap engine (RunLoad, O(log n) per issued query on
// the pooled serial serve path) against the retained linear-scan reference
// (RunLoadScan, O(n) per query through the concurrent Serve path). The scan
// side stops at 10k clients — beyond that the quadratic term dominates the
// benchmark budget, which is the point.
func BenchmarkRunLoadEngine(b *testing.B) {
	type size struct{ clients, qpc int }
	heap := []size{{1000, 20}, {10_000, 5}, {100_000, 2}, {1_000_000, 1}}
	scan := []size{{1000, 20}, {10_000, 5}}
	if testing.Short() {
		heap = []size{{1000, 5}, {10_000, 2}, {50_000, 1}}
		scan = []size{{1000, 5}, {10_000, 1}}
	}
	run := func(sizes []size, name string, drive func(c *serving.Cluster, clients, qpc int)) {
		for _, s := range sizes {
			s := s
			b.Run(fmt.Sprintf("%s/%d", name, s.clients), func(b *testing.B) {
				c := serving.NewCluster(serving.DefaultConfig(), nil)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					drive(c, s.clients, s.qpc)
				}
				queries := float64(s.clients) * float64(s.qpc) * float64(b.N)
				b.ReportMetric(queries/b.Elapsed().Seconds(), "events/sec")
			})
		}
	}
	run(heap, "heap", func(c *serving.Cluster, clients, qpc int) {
		serving.RunLoad(c, clients, qpc, 400, 1.1, 9)
	})
	run(scan, "scan", func(c *serving.Cluster, clients, qpc int) {
		serving.RunLoadScan(c, clients, qpc, 400, 1.1, 9)
	})
}

// BenchmarkFleetMillionUsers drives the headline fleet scenario: a million
// modeled users (50k under -short) issuing open-loop against a diurnal rate
// curve with a flash crowd, on one cluster. The engine events/sec metric
// counts query issues, completion pops, and timeline actions.
func BenchmarkFleetMillionUsers(b *testing.B) {
	clients, durNS := 1_000_000, 2e9
	if testing.Short() {
		clients, durNS = 50_000, 5e8
	}
	cfg := serving.DefaultConfig()
	cfg.LeafCapacity = 400
	cfg.LeafDeadlineNS = 40e6
	cfg.HedgeDelayNS = 5e6
	sc := serving.Scenario{
		Clients:   clients,
		VocabSize: 3000,
		Skew:      0.9,
		Seed:      7,
		Arrival: &serving.RateCurve{
			BaseQPS:          20_000,
			DiurnalAmplitude: 0.25,
			DiurnalPeriodNS:  durNS / 2,
			Bursts:           []serving.Burst{{StartNS: 0.4 * durNS, EndNS: 0.5 * durNS, Factor: 2}},
		},
		DurationNS: durNS,
	}
	c := serving.NewCluster(cfg, nil)
	var events, served int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs := serving.RunScenario(c, sc)
		events += fs.EventsProcessed
		served += fs.Served
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(served)/float64(b.N), "queries/run")
}
