// Command searchsim runs the paper-reproduction experiments and prints the
// regenerated tables and figures.
//
// Usage:
//
//	searchsim -list
//	searchsim [-fast] [-budget N] [-threads N] [-seed N] [-v] all
//	searchsim [-fast] table1 fig6b fig14 ...
//	searchsim [-fast] -trace trace.json -metrics metrics.json fleetprof degraded
//
// -trace exports every span recorded during the run (serving-tree queries,
// profiler sampling windows) as Chrome trace-event JSON, loadable in
// chrome://tracing or Perfetto. -metrics exports the unified metrics
// registry as JSON and prints a per-stage serving latency summary after the
// experiments. Both exports are deterministic: the same seed produces
// byte-identical files.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"searchmem/internal/det"
	"searchmem/internal/experiments"
	"searchmem/internal/obs"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiment ids and exit")
		fast     = flag.Bool("fast", false, "run at reduced scale (quick, uncalibrated)")
		budget   = flag.Int64("budget", 0, "override measured instruction budget per configuration")
		threads  = flag.Int("threads", 0, "override trace thread count")
		shrink   = flag.Int("shrink", 0, "override workload shrink factor")
		seed     = flag.Uint64("seed", 1, "input-stream seed")
		parallel = flag.Bool("parallel", true, "fan sweep points across CPUs (output is byte-identical to -parallel=false)")
		verbose  = flag.Bool("v", false, "progress output")

		traceOut   = flag.String("trace", "", "write Chrome trace-event JSON of recorded spans to this file")
		metricsOut = flag.String("metrics", "", "write metrics-registry snapshot JSON to this file and print serving stage summaries")

		traceCompress = flag.Bool("trace-compress", false, "store workload recordings block-compressed (bounded replay memory; output is byte-identical)")
		traceSpill    = flag.String("trace-spill", "", "with -trace-compress, spill finished blocks to unlinked temp files in this directory (use e.g. /tmp; bounds recording RSS too)")
		traceBlock    = flag.Int("trace-block", 0, "accesses per compressed block (0 = default)")

		tierNear   = flag.Float64("tier-near", 0, "restrict the tiered-memory sweeps (figT1/figT2) to one near:far split, e.g. 0.25 (0 = full grid)")
		tierPolicy = flag.String("tier-policy", "", "restrict the tiered-memory sweeps to one placement policy: static, lru-epoch, or freq (empty = all)")
		tierEpoch  = flag.Int64("tier-epoch", 0, "placement-epoch length in memory transactions (0 = derived from measured traffic)")

		policy      = flag.String("policy", "", "restrict the replacement-policy sweep (figP1) to one policy: srrip, brrip, drrip, or srrip+db (empty = full grid; unknown names are an error)")
		policyLevel = flag.String("policy-level", "", "restrict figP1 to one hierarchy level: L2, L3, or L4 (empty = all)")
		predBits    = flag.Int("pred-bits", 0, "restrict the level-predictor sweep (figP2) to one table size in index bits, 4..24 (0 = full grid)")
		predConf    = flag.Int("pred-conf", 0, "restrict figP2 to one confidence threshold, 1..3 (0 = full grid)")

		fleetScenario = flag.String("fleet-scenario", "", "restrict the fleet-scale serving sweep (figF1) to one scenario: steady, diurnal, flash, reload, or outage (empty = all; unknown names are an error)")
		fleetClients  = flag.Int("fleet-clients", 0, "modeled user population for the fleet sweeps (figF1/figF2; 0 = shrink-scaled default)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %-10s %s\n", e.ID, e.PaperRef, e.Title)
		}
		return
	}

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: searchsim [-fast] [-v] all | <experiment-id>...")
		fmt.Fprintln(os.Stderr, "run 'searchsim -list' for available experiments")
		os.Exit(2)
	}

	opts := experiments.Full()
	if *fast {
		opts = experiments.Fast()
	}
	if *budget > 0 {
		opts.Budget = *budget
	}
	if *threads > 0 {
		opts.Threads = *threads
	}
	if *shrink > 0 {
		opts.Shrink = *shrink
	}
	opts.Seed = *seed
	opts.Parallel = *parallel
	opts.TraceCompress = *traceCompress
	opts.TraceSpillDir = *traceSpill
	opts.TraceBlockLen = *traceBlock
	opts.TierNearFrac = *tierNear
	opts.TierPolicy = *tierPolicy
	opts.TierEpochLen = *tierEpoch
	if *tierNear != 0 && (*tierNear <= 0 || *tierNear >= 1) {
		fmt.Fprintln(os.Stderr, "-tier-near must be in (0,1)")
		os.Exit(2)
	}
	if *traceSpill != "" && !*traceCompress {
		fmt.Fprintln(os.Stderr, "-trace-spill requires -trace-compress")
		os.Exit(2)
	}
	opts.CachePolicy = *policy
	opts.PolicyLevel = *policyLevel
	opts.PredBits = *predBits
	opts.PredConf = *predConf
	if *policy != "" {
		// Fail fast on unknown policy names rather than deep in the sweep.
		if _, _, err := experiments.ParsePolicyVariant(*policy); err != nil {
			fmt.Fprintf(os.Stderr, "-policy: %v\n", err)
			os.Exit(2)
		}
	}
	if *predBits != 0 && (*predBits < 4 || *predBits > 24) {
		fmt.Fprintln(os.Stderr, "-pred-bits must be in 4..24")
		os.Exit(2)
	}
	if *predConf != 0 && (*predConf < 1 || *predConf > 3) {
		fmt.Fprintln(os.Stderr, "-pred-conf must be in 1..3")
		os.Exit(2)
	}
	opts.FleetScenario = *fleetScenario
	opts.FleetClients = *fleetClients
	if *fleetScenario != "" {
		// Fail fast on unknown scenario names rather than deep in the sweep.
		known := false
		for _, s := range experiments.FleetScenarios() {
			if s == *fleetScenario {
				known = true
				break
			}
		}
		if !known {
			fmt.Fprintf(os.Stderr, "-fleet-scenario: unknown scenario %q (have %v)\n", *fleetScenario, experiments.FleetScenarios())
			os.Exit(2)
		}
	}
	if *fleetClients < 0 {
		fmt.Fprintln(os.Stderr, "-fleet-clients must be non-negative")
		os.Exit(2)
	}
	if *verbose {
		opts.Logf = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "# "+format+"\n", a...)
		}
	}
	if *traceOut != "" {
		opts.Tracer = obs.NewTracer()
	}
	if *metricsOut != "" {
		opts.Metrics = obs.NewRegistry()
	}
	ctx := experiments.NewContext(opts)

	var selected []experiments.Experiment
	if len(args) == 1 && args[0] == "all" {
		selected = experiments.All()
	} else {
		for _, id := range args {
			e, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		//lint:ignore walltime CLI progress timer only; measures host elapsed time for -v output and never feeds simulation state
		start := time.Now()
		res, err := e.Run(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (%s) — %s\n", e.ID, e.PaperRef, e.Title)
		fmt.Println(res.Render())
		if *verbose {
			//lint:ignore walltime CLI progress timer only; reports host elapsed time on stderr, not part of any experiment table
			fmt.Fprintf(os.Stderr, "# %s took %v\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}

	if *traceCompress {
		printStoreSummary(ctx)
	}
	if opts.Metrics != nil {
		ctx.ReportTraceStores(opts.Metrics)
		snap := opts.Metrics.Snapshot()
		printServingStages(snap)
		if err := writeMetrics(*metricsOut, snap); err != nil {
			fmt.Fprintf(os.Stderr, "writing metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote metrics snapshot to %s\n", *metricsOut)
	}
	if opts.Tracer != nil {
		traces := opts.Tracer.Take()
		if err := writeTrace(*traceOut, traces); err != nil {
			fmt.Fprintf(os.Stderr, "writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d traces to %s\n", len(traces), *traceOut)
	}
}

// printStoreSummary reports trace-store footprints and process-memory
// high-water marks on stderr. The process-memory gauges are environmental
// (they vary run to run), so they go through a private registry that is
// never exported — the -metrics file stays byte-identical for a fixed seed.
func printStoreSummary(ctx *experiments.Context) {
	stores := ctx.TraceStores()
	fmt.Fprintln(os.Stderr, "# trace stores (compressed):")
	for _, key := range det.SortedKeys(stores) {
		st := stores[key]
		loc := "ram"
		if st.SpilledBytes > 0 {
			loc = "spilled"
		}
		fmt.Fprintf(os.Stderr, "#   %-16s %d recordings, %d accesses, %d bytes stored (%s)\n",
			key, st.Recordings, st.Accesses, st.StoredBytes, loc)
	}
	mem := obs.NewRegistry()
	experiments.MemGauges(mem)
	for _, g := range mem.Snapshot().Gauges {
		fmt.Fprintf(os.Stderr, "#   %s = %.0f\n", g.Name, g.Value)
	}
}

// printServingStages summarizes the per-stage serving-latency histograms the
// experiment clusters (slo, degraded) reported into the shared registry.
func printServingStages(snap obs.Snapshot) {
	var rows []obs.HistSnap
	for _, h := range snap.Histograms {
		if h.Name == "serving_stage_latency_ns" && h.Count > 0 {
			rows = append(rows, h)
		}
	}
	if len(rows) == 0 {
		return
	}
	label := func(h obs.HistSnap, key string) string {
		for _, l := range h.Labels {
			if l.Key == key {
				return l.Value
			}
		}
		return ""
	}
	fmt.Println("=== serving stage latency (from -metrics registry)")
	fmt.Printf("%-18s %-12s %9s %10s %10s %10s\n", "cluster", "stage", "count", "mean ms", "p95 ms", "p99 ms")
	for _, h := range rows {
		fmt.Printf("%-18s %-12s %9d %10.3f %10.3f %10.3f\n",
			label(h, "cluster"), label(h, "stage"), h.Count, h.Mean/1e6, h.P95/1e6, h.P99/1e6)
	}
	fmt.Println()
}

// writeMetrics writes the snapshot JSON to path.
func writeMetrics(path string, snap obs.Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := snap.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// writeTrace writes the Chrome trace-event JSON to path.
func writeTrace(path string, traces []obs.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if err := obs.WriteChromeTrace(w, traces); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Close()
}
