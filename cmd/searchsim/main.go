// Command searchsim runs the paper-reproduction experiments and prints the
// regenerated tables and figures.
//
// Usage:
//
//	searchsim -list
//	searchsim [-fast] [-budget N] [-threads N] [-seed N] [-v] all
//	searchsim [-fast] table1 fig6b fig14 ...
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"searchmem/internal/experiments"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiment ids and exit")
		fast    = flag.Bool("fast", false, "run at reduced scale (quick, uncalibrated)")
		budget  = flag.Int64("budget", 0, "override measured instruction budget per configuration")
		threads = flag.Int("threads", 0, "override trace thread count")
		shrink  = flag.Int("shrink", 0, "override workload shrink factor")
		seed    = flag.Uint64("seed", 1, "input-stream seed")
		verbose = flag.Bool("v", false, "progress output")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %-10s %s\n", e.ID, e.PaperRef, e.Title)
		}
		return
	}

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: searchsim [-fast] [-v] all | <experiment-id>...")
		fmt.Fprintln(os.Stderr, "run 'searchsim -list' for available experiments")
		os.Exit(2)
	}

	opts := experiments.Full()
	if *fast {
		opts = experiments.Fast()
	}
	if *budget > 0 {
		opts.Budget = *budget
	}
	if *threads > 0 {
		opts.Threads = *threads
	}
	if *shrink > 0 {
		opts.Shrink = *shrink
	}
	opts.Seed = *seed
	if *verbose {
		opts.Logf = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "# "+format+"\n", a...)
		}
	}
	ctx := experiments.NewContext(opts)

	var selected []experiments.Experiment
	if len(args) == 1 && args[0] == "all" {
		selected = experiments.All()
	} else {
		for _, id := range args {
			e, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		//lint:ignore walltime CLI progress timer only; measures host elapsed time for -v output and never feeds simulation state
		start := time.Now()
		res, err := e.Run(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (%s) — %s\n", e.ID, e.PaperRef, e.Title)
		fmt.Println(res.Render())
		if *verbose {
			//lint:ignore walltime CLI progress timer only; reports host elapsed time on stderr, not part of any experiment table
			fmt.Fprintf(os.Stderr, "# %s took %v\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
}
