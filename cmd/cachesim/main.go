// Command cachesim replays a binary trace file (produced by cmd/tracegen)
// through a configurable cache hierarchy and prints per-level, per-segment
// statistics — the standalone trace-driven simulator of the paper's §III-A
// methodology.
//
// Usage:
//
//	cachesim -trace leaf.smtr -l3 45 -ways 20
//	cachesim -trace leaf.smtr -l3 23 -l4 1024 -scale 64
package main

import (
	"flag"
	"fmt"
	"os"

	"searchmem/internal/cache"
	"searchmem/internal/trace"
)

func main() {
	var (
		path    = flag.String("trace", "", "trace file from tracegen")
		cores   = flag.Int("cores", 1, "simulated cores")
		smt     = flag.Int("smt", 1, "threads per core")
		l1      = flag.Int64("l1", 32, "L1 size KiB (I and D each)")
		l2      = flag.Int64("l2", 256, "L2 size KiB")
		l3      = flag.Int64("l3", 45, "L3 size MiB")
		ways    = flag.Int("ways", 0, "CAT: allocatable L3 ways (0 = all 20)")
		l4      = flag.Int64("l4", 0, "optional L4 size MiB (0 = none)")
		scale   = flag.Int64("scale", 1, "divide all capacities by this factor")
		block   = flag.Int("block", 64, "block size bytes")
		incl    = flag.Bool("inclusive", true, "inclusive L3")
		instrKI = flag.Int64("instructions", 0, "instruction count for MPKI (0 = per-access rates only)")
		policy  = flag.String("policy", "", "L3 replacement policy: "+cache.PolicyNames()+" (empty = LRU; unknown names are an error)")
		seed    = flag.Uint64("seed", 1, "seed for stochastic replacement policies")
		predict = flag.Bool("predict", false, "attach the cache-level predictor and report its probe accounting")
	)
	flag.Parse()
	if *path == "" {
		fmt.Fprintln(os.Stderr, "usage: cachesim -trace <file> [flags]")
		os.Exit(2)
	}

	div := func(v int64) int64 {
		out := v / *scale
		if out < int64(*block) {
			out = int64(*block)
		}
		return out
	}
	cfg := cache.HierarchyConfig{
		Cores:          *cores,
		ThreadsPerCore: *smt,
		L1I:            cache.Config{Name: "L1-I", Size: div(*l1 << 10), BlockSize: *block, Assoc: 8},
		L1D:            cache.Config{Name: "L1-D", Size: div(*l1 << 10), BlockSize: *block, Assoc: 8},
		L2:             cache.Config{Name: "L2", Size: div(*l2 << 10), BlockSize: *block, Assoc: 8},
		L3:             cache.Config{Name: "L3", Size: div(*l3 << 20), BlockSize: *block, Assoc: 20, AllocWays: *ways},
		L3Inclusive:    *incl,
	}
	// Keep way divisibility after scaling.
	for _, c := range []*cache.Config{&cfg.L1I, &cfg.L1D, &cfg.L2, &cfg.L3} {
		blocks := c.Size / int64(c.BlockSize)
		if blocks%int64(c.Assoc) != 0 {
			c.Assoc = 8
			blocks -= blocks % 8
			if blocks < 8 {
				blocks = 8
			}
			c.Size = blocks * int64(c.BlockSize)
		}
	}
	if *policy != "" {
		p, err := cache.ParsePolicy(*policy)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-policy: %v\n", err)
			os.Exit(2)
		}
		cfg.L3.Policy = p
		if p.Stochastic() {
			cfg.L3.Seed = *seed | 1
		}
	}
	if *l4 > 0 {
		cfg.L4 = &cache.Config{Name: "L4", Size: div(*l4 << 20), BlockSize: *block, Assoc: 1}
	}
	if *predict {
		cfg.Predictor = &cache.PredictorConfig{}
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	h := cache.NewHierarchy(cfg)

	f, err := os.Open(*path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var n int64
	var a trace.Access
	for r.Next(&a) {
		h.Access(a)
		n++
	}
	if err := r.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("replayed %d accesses\n\n", n)
	report := func(name string, s cache.AccessStats) {
		fmt.Printf("%-5s hit %6.2f%%  hits %12d  misses %12d", name, 100*s.HitRate(), s.TotalHits(), s.TotalMisses())
		if *instrKI > 0 {
			fmt.Printf("  MPKI %7.2f", s.MPKI(*instrKI))
		}
		fmt.Println()
		for seg := trace.Segment(0); seg < trace.NumSegments; seg++ {
			if s.SegHits(seg)+s.SegMisses(seg) == 0 {
				continue
			}
			fmt.Printf("      %-6s hit %6.2f%%  misses %12d\n", seg, 100*s.SegHitRate(seg), s.SegMisses(seg))
		}
	}
	report("L1-I", h.L1IStats())
	report("L1-D", h.L1DStats())
	report("L2", h.L2Stats())
	report("L3", h.L3Stats())
	if h.HasL4() {
		report("L4", h.L4Stats())
	}
	fmt.Printf("\nDRAM reads %d, writes %d\n", h.MemReads, h.MemWrites)
	if *predict {
		ps := h.PredictorStats()
		fmt.Printf("\npredictor: coverage %.1f%%, hit %.1f%%, probe skip %.1f%% (lookups %d, jumps %d, bypasses %d)\n",
			100*ps.CoverageRate(), 100*ps.HitRate(), 100*ps.SkipRate(),
			ps.Lookups, ps.Jumps, ps.Bypasses)
	}
}
