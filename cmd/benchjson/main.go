// Command benchjson converts `go test -bench` text output into a JSON
// summary, so CI can publish benchmark artifacts (make bench writes
// BENCH_sweep.json) without external tooling. Only the standard library is
// used and nothing here consults wall-clock time or randomness: the same
// input produces byte-identical JSON.
//
// Usage:
//
//	go test -bench 'BenchmarkSweep' . | benchjson -o BENCH_sweep.json
//	benchjson -o BENCH_sweep.json bench_sweep.out
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// benchResult is one parsed benchmark line. Metrics maps unit suffixes
// ("ns/op", "B/op", custom ReportMetric units) to values; encoding/json
// serializes map keys sorted, keeping the output deterministic.
type benchResult struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// parseBenchLine parses one `go test -bench` result line of the form
//
//	BenchmarkName-8   	     100	  12345 ns/op	  64 B/op	   2 allocs/op
//
// returning ok=false for non-benchmark lines (headers, PASS, ok ...).
func parseBenchLine(line string) (benchResult, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return benchResult{}, false
	}
	it, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	r := benchResult{Name: f[0], Iterations: it, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		r.Metrics[f[i+1]] = v
	}
	return r, true
}

// parse reads benchmark output and returns the parsed results in input
// order.
func parse(r io.Reader) ([]benchResult, error) {
	var out []benchResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if res, ok := parseBenchLine(sc.Text()); ok {
			out = append(out, res)
		}
	}
	return out, sc.Err()
}

func main() {
	outPath := flag.String("o", "", "write JSON here (default stdout)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if args := flag.Args(); len(args) == 1 {
		f, err := os.Open(args[0])
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	} else if len(args) > 1 {
		fmt.Fprintln(os.Stderr, "usage: benchjson [-o out.json] [bench-output-file]")
		os.Exit(2)
	}

	results, err := parse(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading input: %v\n", err)
		os.Exit(1)
	}
	if results == nil {
		results = []benchResult{} // render [] rather than null
	}
	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')

	if *outPath == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*outPath, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
