// Command benchjson converts `go test -bench` text output into a JSON
// summary, so CI can publish benchmark artifacts (make bench writes
// BENCH_sweep.json) without external tooling. Only the standard library is
// used and nothing here consults wall-clock time or randomness: the same
// input produces byte-identical JSON.
//
// With -compare it instead diffs two runs: the flag names the baseline
// (a previously written JSON artifact or raw bench text — auto-detected),
// the positional argument or stdin supplies the new run, and the report
// lists per-benchmark ns/op deltas and speedups plus any unmatched names.
//
// Usage:
//
//	go test -bench 'BenchmarkSweep' . | benchjson -o BENCH_sweep.json
//	benchjson -o BENCH_sweep.json bench_sweep.out
//	benchjson -compare BENCH_kernel.json bench_kernel.out
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// benchResult is one parsed benchmark line. Metrics maps unit suffixes
// ("ns/op", "B/op", custom ReportMetric units) to values; encoding/json
// serializes map keys sorted, keeping the output deterministic.
type benchResult struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// parseBenchLine parses one `go test -bench` result line of the form
//
//	BenchmarkName-8   	     100	  12345 ns/op	  64 B/op	   2 allocs/op
//
// returning ok=false for non-benchmark lines (headers, PASS, ok ...).
func parseBenchLine(line string) (benchResult, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return benchResult{}, false
	}
	it, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	r := benchResult{Name: f[0], Iterations: it, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		r.Metrics[f[i+1]] = v
	}
	return r, true
}

// parse reads benchmark output and returns the parsed results in input
// order.
func parse(r io.Reader) ([]benchResult, error) {
	var out []benchResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if res, ok := parseBenchLine(sc.Text()); ok {
			out = append(out, res)
		}
	}
	return out, sc.Err()
}

// loadResults reads benchmark results from either format: a JSON artifact
// this tool wrote earlier, or raw `go test -bench` text. A leading '[' that
// unmarshals cleanly selects JSON; everything else goes through the text
// parser.
func loadResults(r io.Reader) ([]benchResult, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if trimmed := bytes.TrimSpace(data); len(trimmed) > 0 && trimmed[0] == '[' {
		var out []benchResult
		if err := json.Unmarshal(trimmed, &out); err == nil {
			return out, nil
		}
	}
	return parse(bytes.NewReader(data))
}

// compareReport renders the per-benchmark ns/op comparison of two runs.
// Matched benchmarks appear in the new run's order with delta and speedup;
// names present in only one run are listed afterwards, so a renamed or
// dropped benchmark cannot silently vanish from the report.
func compareReport(old, cur []benchResult) string {
	oldNS := make(map[string]float64, len(old))
	matched := make(map[string]bool, len(old))
	for _, r := range old {
		oldNS[r.Name] = r.Metrics["ns/op"]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-44s %14s %14s %9s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta", "speedup")
	for _, r := range cur {
		ns := r.Metrics["ns/op"]
		o, ok := oldNS[r.Name]
		if !ok {
			continue
		}
		matched[r.Name] = true
		delta, speedup := "n/a", "n/a"
		if o > 0 {
			delta = fmt.Sprintf("%+.1f%%", (ns-o)/o*100)
			if ns > 0 {
				speedup = fmt.Sprintf("%.2fx", o/ns)
			}
		}
		fmt.Fprintf(&b, "%-44s %14.2f %14.2f %9s %9s\n", r.Name, o, ns, delta, speedup)
	}
	for _, r := range cur {
		if _, ok := oldNS[r.Name]; !ok {
			fmt.Fprintf(&b, "only in new: %s\n", r.Name)
		}
	}
	for _, r := range old {
		if !matched[r.Name] {
			fmt.Fprintf(&b, "only in old: %s\n", r.Name)
		}
	}
	return b.String()
}

func main() {
	outPath := flag.String("o", "", "write JSON here (default stdout)")
	comparePath := flag.String("compare", "", "compare the input against this baseline (JSON artifact or bench text) instead of emitting JSON")
	flag.Parse()

	var in io.Reader = os.Stdin
	if args := flag.Args(); len(args) == 1 {
		f, err := os.Open(args[0])
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	} else if len(args) > 1 {
		fmt.Fprintln(os.Stderr, "usage: benchjson [-o out.json] [bench-output-file]")
		os.Exit(2)
	}

	results, err := loadResults(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading input: %v\n", err)
		os.Exit(1)
	}
	if results == nil {
		results = []benchResult{} // render [] rather than null
	}

	if *comparePath != "" {
		f, err := os.Open(*comparePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		old, err := loadResults(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: reading baseline: %v\n", err)
			os.Exit(1)
		}
		report := compareReport(old, results)
		if *outPath == "" {
			os.Stdout.WriteString(report)
			return
		}
		if err := os.WriteFile(*outPath, []byte(report), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}
	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')

	if *outPath == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*outPath, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
