package main

import (
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkSweepFig6b/parallel-8   \t       2\t 617283940 ns/op\t  128 B/op\t       3 allocs/op")
	if !ok {
		t.Fatal("benchmark line not recognized")
	}
	if r.Name != "BenchmarkSweepFig6b/parallel-8" || r.Iterations != 2 {
		t.Fatalf("parsed %+v", r)
	}
	if r.Metrics["ns/op"] != 617283940 || r.Metrics["B/op"] != 128 || r.Metrics["allocs/op"] != 3 {
		t.Fatalf("metrics %+v", r.Metrics)
	}

	// Custom ReportMetric units survive.
	r, ok = parseBenchLine("BenchmarkAblationReplacementLRU-4  10  99 ns/op  0.8312 L3-hit-rate")
	if !ok || r.Metrics["L3-hit-rate"] != 0.8312 {
		t.Fatalf("custom metric: ok=%v %+v", ok, r.Metrics)
	}

	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tsearchmem\t12.3s",
		"BenchmarkBroken notanumber 5 ns/op",
		"",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("line %q misparsed as a benchmark", line)
		}
	}
}

func TestLoadResultsAutoDetect(t *testing.T) {
	text := "BenchmarkHierarchyAccess/batched-1 \t 100\t 40.26 ns/op\nPASS\n"
	fromText, err := loadResults(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	jsonIn := `[{"name":"BenchmarkHierarchyAccess/batched-1","iterations":100,"metrics":{"ns/op":40.26}}]`
	fromJSON, err := loadResults(strings.NewReader(jsonIn))
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range [][]benchResult{fromText, fromJSON} {
		if len(res) != 1 || res[0].Name != "BenchmarkHierarchyAccess/batched-1" || res[0].Metrics["ns/op"] != 40.26 {
			t.Fatalf("parsed %+v", res)
		}
	}

	// A '[' that is not valid JSON falls back to the text parser.
	res, err := loadResults(strings.NewReader("[broken\nBenchmarkX-1 \t 2\t 5 ns/op\n"))
	if err != nil || len(res) != 1 || res[0].Name != "BenchmarkX-1" {
		t.Fatalf("fallback parse: %v %+v", err, res)
	}
}

func TestCompareReport(t *testing.T) {
	old := []benchResult{
		{Name: "BenchmarkA-1", Metrics: map[string]float64{"ns/op": 100}},
		{Name: "BenchmarkGone-1", Metrics: map[string]float64{"ns/op": 7}},
	}
	cur := []benchResult{
		{Name: "BenchmarkA-1", Metrics: map[string]float64{"ns/op": 50}},
		{Name: "BenchmarkNew-1", Metrics: map[string]float64{"ns/op": 9}},
	}
	got := compareReport(old, cur)
	for _, want := range []string{
		"BenchmarkA-1",
		"100.00",
		"50.00",
		"-50.0%",
		"2.00x",
		"only in new: BenchmarkNew-1",
		"only in old: BenchmarkGone-1",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
	// Same input twice: byte-identical report (no map-order dependence).
	if again := compareReport(old, cur); again != got {
		t.Error("compareReport is not deterministic")
	}
}

func TestParseStream(t *testing.T) {
	in := "goos: linux\n" +
		"BenchmarkSweepFig13/serial-4 \t 1\t 5000000 ns/op\n" +
		"BenchmarkSweepFig13/parallel-4 \t 1\t 2000000 ns/op\n" +
		"PASS\n"
	res, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Name != "BenchmarkSweepFig13/serial-4" || res[1].Metrics["ns/op"] != 2000000 {
		t.Fatalf("parsed %+v", res)
	}
}
