package main

import (
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkSweepFig6b/parallel-8   \t       2\t 617283940 ns/op\t  128 B/op\t       3 allocs/op")
	if !ok {
		t.Fatal("benchmark line not recognized")
	}
	if r.Name != "BenchmarkSweepFig6b/parallel-8" || r.Iterations != 2 {
		t.Fatalf("parsed %+v", r)
	}
	if r.Metrics["ns/op"] != 617283940 || r.Metrics["B/op"] != 128 || r.Metrics["allocs/op"] != 3 {
		t.Fatalf("metrics %+v", r.Metrics)
	}

	// Custom ReportMetric units survive.
	r, ok = parseBenchLine("BenchmarkAblationReplacementLRU-4  10  99 ns/op  0.8312 L3-hit-rate")
	if !ok || r.Metrics["L3-hit-rate"] != 0.8312 {
		t.Fatalf("custom metric: ok=%v %+v", ok, r.Metrics)
	}

	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tsearchmem\t12.3s",
		"BenchmarkBroken notanumber 5 ns/op",
		"",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("line %q misparsed as a benchmark", line)
		}
	}
}

func TestParseStream(t *testing.T) {
	in := "goos: linux\n" +
		"BenchmarkSweepFig13/serial-4 \t 1\t 5000000 ns/op\n" +
		"BenchmarkSweepFig13/parallel-4 \t 1\t 2000000 ns/op\n" +
		"PASS\n"
	res, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Name != "BenchmarkSweepFig13/serial-4" || res[1].Metrics["ns/op"] != 2000000 {
		t.Fatalf("parsed %+v", res)
	}
}
