// Command tracegen builds a calibrated workload profile, executes it, and
// writes the resulting memory-access trace to a compact binary file that
// cmd/cachesim (or any trace.Reader user) can replay — the reproduction's
// equivalent of capturing a Pin trace from a production server.
//
// Usage:
//
//	tracegen -profile s1-leaf -instructions 2000000 -threads 4 -o leaf.smtr
package main

import (
	"flag"
	"fmt"
	"os"

	"searchmem/internal/det"
	"searchmem/internal/trace"
	"searchmem/internal/workload"
)

// profiles maps CLI names to profile constructors.
func profiles(shrink int) map[string]func() workload.Runner {
	return map[string]func() workload.Runner{
		"s1-leaf":       func() workload.Runner { return workload.S1Leaf(shrink).Build() },
		"s2-leaf":       func() workload.Runner { return workload.S2Leaf(shrink).Build() },
		"s3-leaf":       func() workload.Runner { return workload.S3Leaf(shrink).Build() },
		"s1-root":       func() workload.Runner { return workload.S1Root(shrink).Build() },
		"s1-leaf-sweep": func() workload.Runner { return workload.S1LeafSweep(shrink).Build() },
		"perlbench":     func() workload.Runner { return workload.SPECPerlbench().Build() },
		"mcf":           func() workload.Runner { return workload.SPECMcf().Build() },
		"gobmk":         func() workload.Runner { return workload.SPECGobmk().Build() },
		"omnetpp":       func() workload.Runner { return workload.SPECOmnetpp().Build() },
		"cloudsuite":    func() workload.Runner { return workload.CloudSuiteWebSearch().Build() },
	}
}

func main() {
	var (
		profile = flag.String("profile", "s1-leaf", "workload profile")
		instrs  = flag.Int64("instructions", 2_000_000, "instruction budget")
		threads = flag.Int("threads", 4, "hardware threads")
		shrink  = flag.Int("shrink", 4, "workload shrink factor (1 = full calibrated scale)")
		seed    = flag.Uint64("seed", 1, "input seed")
		out     = flag.String("o", "trace.smtr", "output trace file")
		list    = flag.Bool("list", false, "list profiles and exit")
	)
	flag.Parse()

	ps := profiles(*shrink)
	if *list {
		for _, name := range det.SortedKeys(ps) {
			fmt.Println(name)
		}
		return
	}
	build, ok := ps[*profile]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown profile %q (try -list)\n", *profile)
		os.Exit(2)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Fprintf(os.Stderr, "building %s (shrink %d)...\n", *profile, *shrink)
	runner := build()
	st := runner.Run(*threads, *instrs, *seed, workload.Sinks{
		Access: func(a trace.Access) {
			if err := w.Write(a); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		},
	})
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	info, _ := f.Stat()
	fmt.Fprintf(os.Stderr, "wrote %d accesses (%d instructions, %d queries) to %s (%d bytes, %.2f B/access)\n",
		w.Count(), st.Instructions, st.Queries, *out, info.Size(),
		float64(info.Size())/float64(w.Count()))
}
