// Command searchlint enforces the simulator's determinism and aliasing
// invariants (see DESIGN.md, "Determinism & aliasing invariants"). It is
// built only on the standard library: go/parser and go/types load and
// type-check every package of the module, then each analyzer inspects the
// typed syntax trees over a shared interprocedural call graph.
//
// Usage:
//
//	searchlint [-run a,b] [-list] [-json] [-escape file] [packages]
//
// Packages default to ./... (the whole module). Findings print as
// "file:line:col: [analyzer] message" and make the exit status 1; -json
// prints them instead as a deterministic JSON array on stdout for CI
// annotation tooling. Suppress an intentional violation with a justified
// directive on the offending line or the line above:
//
//	//lint:ignore walltime CLI progress timer, never feeds simulation state
//
// -escape cross-checks the hotalloc analyzer against the compiler: given a
// file of `go build -gcflags=-m ./...` output (see `make lint-escape`), it
// scopes the compiler's escape-analysis verdicts to hot-reachable functions
// and reports where the two disagree. It is informational and always exits
// 0 on success: hotalloc is intentionally conservative (it flags unprovable
// calls the compiler may well stack-allocate), and compiler-only escapes on
// suppressed lines are the cost the justifying directive accepted.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"searchmem/internal/det"
	"searchmem/internal/lint"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list analyzers and exit")
		run     = flag.String("run", "", "comma-separated analyzers to run (default: all)")
		jsonOut = flag.Bool("json", false, "print findings as a JSON array on stdout")
		escape  = flag.String("escape", "", "diff hotalloc verdicts against this `file` of go build -gcflags=-m output (informational, exits 0)")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: searchlint [-run a,b] [-list] [-json] [-escape file] [packages]")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers, err := lint.ByName(*run)
	if err != nil {
		fmt.Fprintf(os.Stderr, "searchlint: %v\n", err)
		os.Exit(2)
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	mod, err := lint.LoadModule(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "searchlint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := mod.Match(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "searchlint: %v\n", err)
		os.Exit(2)
	}

	if *escape != "" {
		if err := diffEscapes(os.Stdout, mod, pkgs, *escape); err != nil {
			fmt.Fprintf(os.Stderr, "searchlint: %v\n", err)
			os.Exit(2)
		}
		return
	}

	diags := lint.Check(mod.Fset, pkgs, analyzers)
	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, diags, mod.Dir); err != nil {
			fmt.Fprintf(os.Stderr, "searchlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		cwd, _ := os.Getwd()
		for _, d := range diags {
			name := d.Pos.Filename
			if cwd != "" {
				if rel, err := filepath.Rel(cwd, name); err == nil {
					name = rel
				}
			}
			fmt.Printf("%s:%d:%d: [%s] %s\n", name, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "searchlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

// hotExtent is the source range of one hot-reachable function.
type hotExtent struct {
	file       string // module-relative, slash-separated
	start, end int    // line range, inclusive
	name       string
}

// escapeLine matches one compiler diagnostic: "file.go:line:col: message".
var escapeLine = regexp.MustCompile(`^(\S+\.go):(\d+)(?::(\d+))?: (.+)$`)

// diffEscapes compares the hotalloc analyzer's static verdicts against the
// compiler's escape analysis, both scoped to hot-reachable code. Three
// buckets: sites where both agree something allocates, static-only findings
// (the analyzer's conservatism), and compiler-only escapes (cold paths,
// suppressed lines, or genuine analyzer gaps worth a look).
func diffEscapes(w *os.File, mod *lint.Module, pkgs []*lint.Package, escapeFile string) error {
	graph := lint.BuildCallGraph(mod.Fset, pkgs)
	hot := lint.HotReachable(graph)
	extents := make(map[string][]hotExtent)
	for _, n := range hot {
		start := mod.Fset.Position(n.Decl.Pos())
		end := mod.Fset.Position(n.Decl.End())
		file := relTo(mod.Dir, start.Filename)
		extents[file] = append(extents[file], hotExtent{file, start.Line, end.Line, n.Name()})
	}

	// Static verdicts, keyed file:line. Findings share a line with their
	// expression, which is the granularity -m reports at too.
	static := make(map[string]string)
	for _, d := range lint.Check(mod.Fset, pkgs, []*lint.Analyzer{lint.HotAlloc}) {
		if d.Analyzer != lint.HotAlloc.Name {
			continue
		}
		key := fmt.Sprintf("%s:%d", relTo(mod.Dir, d.Pos.Filename), d.Pos.Line)
		if _, dup := static[key]; !dup {
			static[key] = d.Message
		}
	}

	f, err := os.Open(escapeFile)
	if err != nil {
		return err
	}
	defer f.Close()

	type escSite struct {
		key, fn, msg string
	}
	var compiler []escSite
	seen := make(map[string]bool)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.Contains(line, "escapes to heap") && !strings.Contains(line, "moved to heap") {
			continue
		}
		m := escapeLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		file := filepath.ToSlash(strings.TrimPrefix(m[1], "./"))
		ln, _ := strconv.Atoi(m[2])
		fn := enclosing(extents[file], ln)
		if fn == "" {
			continue // not hot-reachable code
		}
		key := fmt.Sprintf("%s:%d", file, ln)
		if seen[key+m[4]] {
			continue
		}
		seen[key+m[4]] = true
		compiler = append(compiler, escSite{key, fn, m[4]})
	}
	if err := sc.Err(); err != nil {
		return err
	}
	sort.Slice(compiler, func(i, j int) bool {
		if compiler[i].key != compiler[j].key {
			return compiler[i].key < compiler[j].key
		}
		return compiler[i].msg < compiler[j].msg
	})

	var agree, compilerOnly []escSite
	matched := make(map[string]bool)
	for _, e := range compiler {
		if _, ok := static[e.key]; ok {
			matched[e.key] = true
			agree = append(agree, e)
		} else {
			compilerOnly = append(compilerOnly, e)
		}
	}
	var staticOnly []string
	for _, key := range det.SortedKeys(static) {
		if !matched[key] {
			staticOnly = append(staticOnly, key)
		}
	}

	fmt.Fprintf(w, "hot-reachable functions: %d; compiler escape sites in hot code: %d\n",
		len(hot), len(compiler))
	fmt.Fprintf(w, "\nagree — static finding and compiler escape (%d):\n", len(agree))
	for _, e := range agree {
		fmt.Fprintf(w, "  %s [%s]: %s | static: %s\n", e.key, e.fn, e.msg, static[e.key])
	}
	fmt.Fprintf(w, "\nstatic-only — analyzer flags, compiler proves or inlines away (%d):\n", len(staticOnly))
	for _, key := range staticOnly {
		fmt.Fprintf(w, "  %s: %s\n", key, static[key])
	}
	fmt.Fprintf(w, "\ncompiler-only — escapes on cold, suppressed, or unflagged lines (%d):\n", len(compilerOnly))
	for _, e := range compilerOnly {
		fmt.Fprintf(w, "  %s [%s]: %s\n", e.key, e.fn, e.msg)
	}
	return nil
}

// enclosing returns the name of the hot extent containing line, or "".
func enclosing(exts []hotExtent, line int) string {
	for _, e := range exts {
		if line >= e.start && line <= e.end {
			return e.name
		}
	}
	return ""
}

// relTo makes path relative to base (slash-separated) when possible.
func relTo(base, path string) string {
	if rel, err := filepath.Rel(base, path); err == nil {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(path)
}
