// Command searchlint enforces the simulator's determinism and aliasing
// invariants (see DESIGN.md, "Determinism & aliasing invariants"). It is
// built only on the standard library: go/parser and go/types load and
// type-check every package of the module, then each analyzer inspects the
// typed syntax trees.
//
// Usage:
//
//	searchlint [-run a,b] [-list] [packages]
//
// Packages default to ./... (the whole module). Findings print as
// "file:line:col: [analyzer] message" and make the exit status 1.
// Suppress an intentional violation with a justified directive on the
// offending line or the line above:
//
//	//lint:ignore walltime CLI progress timer, never feeds simulation state
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"searchmem/internal/lint"
)

func main() {
	var (
		list = flag.Bool("list", false, "list analyzers and exit")
		run  = flag.String("run", "", "comma-separated analyzers to run (default: all)")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: searchlint [-run a,b] [-list] [packages]")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers, err := lint.ByName(*run)
	if err != nil {
		fmt.Fprintf(os.Stderr, "searchlint: %v\n", err)
		os.Exit(2)
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	mod, err := lint.LoadModule(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "searchlint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := mod.Match(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "searchlint: %v\n", err)
		os.Exit(2)
	}

	diags := lint.Check(mod.Fset, pkgs, analyzers)
	cwd, _ := os.Getwd()
	for _, d := range diags {
		name := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil {
				name = rel
			}
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", name, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "searchlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
