package main

import (
	"bytes"
	"flag"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"searchmem/internal/lint"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// want is one golden expectation: a regexp that must match exactly one
// diagnostic message on its line.
type want struct {
	line int
	re   *regexp.Regexp
	hit  bool
}

// parseWants extracts "// want" expectations from a fixture: each is one
// or more backquote-delimited regexes following the marker on one line.
func parseWants(t *testing.T, filename string) []*want {
	t.Helper()
	data, err := os.ReadFile(filename)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*want
	for i, line := range strings.Split(string(data), "\n") {
		_, rest, ok := strings.Cut(line, "// want ")
		if !ok {
			continue
		}
		found := false
		for {
			start := strings.IndexByte(rest, '`')
			if start < 0 {
				break
			}
			end := strings.IndexByte(rest[start+1:], '`')
			if end < 0 {
				t.Fatalf("%s:%d: unterminated want regexp", filename, i+1)
			}
			re, err := regexp.Compile(rest[start+1 : start+1+end])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp: %v", filename, i+1, err)
			}
			wants = append(wants, &want{line: i + 1, re: re})
			rest = rest[start+end+2:]
			found = true
		}
		if !found {
			t.Fatalf("%s:%d: want marker without a backquoted regexp", filename, i+1)
		}
	}
	return wants
}

// TestAnalyzersGolden runs each analyzer alone over its fixture and checks
// the diagnostics against the fixture's want expectations. Fixtures also
// carry fixed and //lint:ignore-suppressed forms with no wants, so a
// spurious diagnostic — including one that should have been suppressed —
// fails the test.
func TestAnalyzersGolden(t *testing.T) {
	fset := token.NewFileSet()
	imp := lint.StdImporter(fset)
	for _, a := range lint.Analyzers {
		t.Run(a.Name, func(t *testing.T) {
			file := filepath.Join("testdata", a.Name+".go")
			pkg, err := lint.LoadFile(fset, imp, file)
			if err != nil {
				t.Fatal(err)
			}
			diags := lint.Check(fset, []*lint.Package{pkg}, []*lint.Analyzer{a})
			if len(diags) == 0 {
				t.Fatalf("analyzer %s produced no diagnostics on its fixture", a.Name)
			}
			wants := parseWants(t, file)
			for _, d := range diags {
				matched := false
				for _, w := range wants {
					if !w.hit && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
						w.hit = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("%s:%d: expected diagnostic matching %q, got none", file, w.line, w.re)
				}
			}
		})
	}
}

// TestJSONGolden pins the -json output shape byte for byte: the hotalloc
// fixture's diagnostics (the richest ones — they carry call chains) rendered
// through lint.WriteJSON must match testdata/hotalloc.json exactly. CI
// annotation tooling parses this format; regenerate with -update after an
// intentional change.
func TestJSONGolden(t *testing.T) {
	fset := token.NewFileSet()
	pkg, err := lint.LoadFile(fset, lint.StdImporter(fset), filepath.Join("testdata", "hotalloc.go"))
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Check(fset, []*lint.Package{pkg}, []*lint.Analyzer{lint.HotAlloc})
	var buf bytes.Buffer
	if err := lint.WriteJSON(&buf, diags, ""); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "hotalloc.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-json output drifted from %s (regenerate with -update):\ngot:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}
}

// TestRepoIsLintClean is the merged-tree acceptance gate: the full suite
// over the whole module must report nothing. Any new violation must be
// fixed or carry a justified //lint:ignore.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module (and the stdlib from source); skipped in -short")
	}
	mod, err := lint.LoadModule("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := mod.Match(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loader found only %d packages; discovery is broken", len(pkgs))
	}
	for _, d := range lint.Check(mod.Fset, pkgs, lint.Analyzers) {
		t.Errorf("%s", d)
	}
}
