// Fixture for the globalrand analyzer: math/rand package-level functions
// draw from the process-global source and are findings; explicitly seeded
// generators (the constructors) and suppressed uses are not.
package globalrand

import "math/rand"

func badIntn() int {
	return rand.Intn(10) // want `rand\.Intn draws from the global math/rand source`
}

func badFloat() float64 {
	return rand.Float64() // want `rand\.Float64 draws from the global math/rand source`
}

func badShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand\.Shuffle draws from the global math/rand source`
}

func badFuncValue() func(int) int {
	return rand.Intn // want `rand\.Intn draws from the global math/rand source`
}

// goodSeeded is the fixed form: an explicitly seeded generator. (In the
// simulator proper this is stats.NewRNG; constructors are the allowed
// escape hatch because they force the caller to pick a seed.)
func goodSeeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func suppressed() int {
	//lint:ignore globalrand fixture: one-off tool where reproducibility is irrelevant
	return rand.Intn(10)
}
