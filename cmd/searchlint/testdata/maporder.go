// Fixture for the maporder analyzer. Diagnostics anchor at the `for`
// keyword of the offending map range, so the want expectations (and any
// suppression) sit on the loop line.
package maporder

import (
	"fmt"
	"sort"
	"strings"
)

func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m { // want `append to keys \(line 15\) depends on nondeterministic map iteration order`
		keys = append(keys, k)
	}
	return keys
}

func badPrint(m map[string]int) {
	for k, v := range m { // want `output via fmt\.Printf \(line 22\)`
		fmt.Printf("%s=%d\n", k, v)
	}
}

func badBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want `write to b via WriteString \(line 29\)`
		b.WriteString(k)
	}
	return b.String()
}

func badIntAccum(m map[string]int) int {
	total := 0
	for _, v := range m { // want `accumulation total \+= \(line 37\)`
		total += v
	}
	return total
}

func badStringAccum(m map[int]string) string {
	out := ""
	for _, v := range m { // want `accumulation out = out \+ \(line 45\)`
		out = out + v
	}
	return out
}

// goodSortedKeys is the canonical fix: range over a sorted key slice (the
// collection loop itself is the one sanctioned map range, suppressed with a
// reason exactly as det.SortedKeys does).
func goodSortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//lint:ignore maporder keys are sorted before any order-sensitive use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// goodMapToMap stays silent: writing another map is content-deterministic
// whatever the iteration order.
func goodMapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// goodPerIteration stays silent: the accumulator is declared inside the
// loop body, so nothing order-sensitive escapes an iteration.
func goodPerIteration(m map[string][]int) int {
	last := 0
	for _, vs := range m {
		sum := 0
		for _, v := range vs {
			sum += v
		}
		if sum > last {
			last = sum // comparison, not accumulation
		}
	}
	return last
}
