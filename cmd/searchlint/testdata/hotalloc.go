// Fixture for the hotalloc analyzer: functions annotated //lint:hot, and
// everything reachable from them through the call graph, must not allocate.
// Direct allocation sites, interface boxing, closures, calls through
// function values, and calls into allocating standard-library packages are
// findings, each carrying the call chain from the hot root. Failure-exit
// paths (conditional blocks ending in return, blocks ending in panic) are
// exempt, and a //lint:ignore hotalloc directive on a call line fences off
// the whole subtree behind that call.
package hotalloc

import "fmt"

type item struct{ a, b uint64 }

type table struct {
	m map[uint64]uint64
	s []item
}

// The acceptance case: an allocation three calls deep from the root is
// flagged at the allocation site, with the full chain in the message.

//lint:hot
func hotRoot(t *table, xs []item) uint64 {
	var sum uint64
	for i := range xs {
		sum += level1(t, xs[i].a)
	}
	return sum
}

func level1(t *table, k uint64) uint64 { return level2(t, k) }

func level2(t *table, k uint64) uint64 { return level3(t, k) }

func level3(t *table, k uint64) uint64 {
	buf := make([]uint64, 4) // want `hot path \(hotRoot -> level1 -> level2 -> level3\): make allocates`
	buf[0] = k
	return buf[0]
}

// Direct allocation shapes inside a root.

//lint:hot
func hotAppend(t *table, x item) {
	t.s = append(t.s, x) // want `hot path \(hotAppend\): append may grow its backing array`
}

//lint:hot
func hotLiterals() int {
	xs := []item{{a: 1}} // want `slice/map composite literal allocates`
	return len(xs)
}

//lint:hot
func hotNew() *item {
	return new(item) // want `new allocates`
}

//lint:hot
func hotAddr() *item {
	return &item{a: 1} // want `taking the address of a composite literal allocates`
}

//lint:hot
func hotMapStore(t *table, k uint64) {
	t.m[k] = k // want `map assignment may allocate \(bucket growth\)`
}

//lint:hot
func hotConcat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//lint:hot
func hotConv(s string) int {
	bs := []byte(s) // want `string/\[\]byte conversion allocates a copy`
	return len(bs)
}

//lint:hot
func hotClosure(xs []item) func() int {
	return func() int { return len(xs) } // want `function literal captures "xs"; the closure allocates`
}

//lint:hot
func hotGo() {
	go helperClean() // want `go statement allocates a goroutine`
}

func helperClean() {}

// Boxing: a concrete, non-pointer-shaped argument passed to an interface
// parameter is heap-boxed. Pointer arguments are not.

func record(v any) { _ = v }

//lint:hot
func hotBox(k uint64) {
	record(k) // want `passing uint64 argument as any boxes it on the heap`
}

//lint:hot
func hotPtrGood(t *table) {
	record(t) // *table fits the interface word: no finding
}

// Standard-library summaries: fmt allocates (and its variadic any boxes).

//lint:hot
func hotFmt(k uint64) string {
	return fmt.Sprintf("%d", k) // want `calls fmt.Sprintf, which allocates` `passing uint64 argument as any boxes it on the heap`
}

// Calls that cannot be proven: function values and unimplemented interfaces.

//lint:hot
func hotDynamic(f func() int) int {
	return f() // want `call through function value f cannot be proven allocation-free`
}

type opaque interface{ run() }

//lint:hot
func hotOpaque(o opaque) {
	o.run() // want `interface call opaque\.run has no analyzed implementation and no safe summary`
}

// CHA: an interface call descends into every analyzed implementation; the
// allocating one is flagged in its own body, chain included.

type stepper interface{ step() int }

type allocStep struct{ n []int }

func (a *allocStep) step() int {
	a.n = append(a.n, 1) // want `hot path \(hotIface -> \(\*allocStep\)\.step\): append may grow its backing array`
	return len(a.n)
}

type cleanStep struct{ n int }

func (c *cleanStep) step() int { c.n++; return c.n }

//lint:hot
func hotIface(s stepper) int {
	return s.step()
}

// Failure-exit paths are exempt: the error branch leaves the kernel, so its
// allocations run at most once per call, not per element.

//lint:hot
func hotColdPath(xs []item) (uint64, error) {
	var sum uint64
	for i := range xs {
		if xs[i].a == 0 {
			return 0, fmt.Errorf("zero addr at %d", i) // failure exit: no finding
		}
		sum += xs[i].a
	}
	return sum, nil
}

// Suppression: a justified ignore silences the finding, and on a call line
// it also prunes the traversal into the callee.

//lint:hot
func hotSuppressed(t *table, x item) {
	//lint:ignore hotalloc fixture: one-time warmup growth, pinned by the alloc oracle
	t.s = append(t.s, x)
}

func allocsDeep() []item {
	return make([]item, 8) // unreachable: the only call site below is fenced
}

//lint:hot
func hotPruned() int {
	//lint:ignore hotalloc fixture: adapter behind the batch interface, contractually cold
	return len(allocsDeep())
}

// Plain struct values and arithmetic never allocate: no findings.

//lint:hot
func hotValueGood(xs []item) item {
	var best item
	for i := range xs {
		if xs[i].a > best.a {
			best = xs[i]
		}
	}
	return item{a: best.a, b: best.b}
}

// Allocation outside any hot tree is not hotalloc's business.

func coldHelperFree() []item {
	return make([]item, 4)
}

// A directive naming an analyzer that does not exist suppresses nothing and
// must say so (pseudo-analyzer lint).

func staleDirective(t *table, x item) {
	//lint:ignore hotallox renamed analyzer, silently inert before PR 7 // want `ignore directive names unknown analyzer "hotallox" and suppresses nothing`
	t.s = append(t.s, x)
}
