// Fixture for the walltime analyzer: wall-clock reads are findings, virtual
// time (plain counters denominated in time.Duration) is the fixed form, and
// a justified //lint:ignore silences an intentional CLI timer.
package walltime

import "time"

func badNow() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func badElapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func badSleep() {
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
}

func badTimer() *time.Timer {
	return time.NewTimer(time.Second) // want `time\.NewTimer reads the wall clock`
}

// goodVirtual is the fixed form: simulation time is a counter advanced by
// modeled service durations, never by the host clock.
type goodVirtual struct{ nowNS int64 }

func (c *goodVirtual) advance(d time.Duration) { c.nowNS += int64(d) }

func (c *goodVirtual) now() int64 { return c.nowNS }

func suppressedTrailing() time.Time {
	return time.Now() //lint:ignore walltime fixture: CLI progress timer that never feeds simulation state
}

func suppressedAbove() {
	//lint:ignore walltime fixture: deliberate host-clock wait in a demo binary
	time.Sleep(time.Millisecond)
}
