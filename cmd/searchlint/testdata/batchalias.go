// Fixture for the batchalias analyzer: the slice a NextBatch method returns
// is a zero-copy window into stream internals, valid only until the next
// NextBatch call. Retaining it — returning, storing, capturing in a literal,
// or appending the slice itself — is the finding; in-place reads are not.
package batchalias

type Access struct{ Addr uint64 }

type stream struct {
	data []Access
	pos  int
}

// NextBatch hands out a window over the stream's backing array, like
// trace.View does.
func (s *stream) NextBatch() []Access {
	if s.pos >= len(s.data) {
		return nil
	}
	b := s.data[s.pos:]
	s.pos = len(s.data)
	return b
}

type holder struct {
	batch   []Access
	batches [][]Access
	byName  map[string][]Access
}

func returnBad(s *stream) []Access {
	b := s.NextBatch()
	return b // want `returnBad returns NextBatch window "b"`
}

func returnSubsliceBad(s *stream) []Access {
	b := s.NextBatch()
	head := b[:1] // a subslice of a window is still the window
	return head   // want `returnSubsliceBad returns NextBatch window "head"`
}

func storeFieldBad(s *stream, h *holder) {
	b := s.NextBatch()
	h.batch = b // want `storeFieldBad stores NextBatch window "b" into h\.batch`
}

func storeIndexBad(s *stream, h *holder) {
	b := s.NextBatch()
	h.byName["k"] = b // want `storeIndexBad stores NextBatch window "b" into h\.byName\["k"\]`
}

func appendElementBad(s *stream, h *holder) {
	b := s.NextBatch()
	h.batches = append(h.batches, b) // want `appendElementBad appends NextBatch window "b" as an element`
}

func compositeBad(s *stream) holder {
	b := s.NextBatch()
	return holder{batch: b} // want `compositeBad captures NextBatch window "b" in a composite literal`
}

func rebindBad(s *stream) []Access {
	b := s.NextBatch()
	keep := b   // rebinding carries the taint
	return keep // want `rebindBad returns NextBatch window "keep"`
}

// Fixed and intended forms: none of these may be flagged.

func drainGood(s *stream, sink func(Access)) {
	for {
		b := s.NextBatch()
		if len(b) == 0 {
			return
		}
		for i := range b {
			sink(b[i]) // element copies are free to escape
		}
	}
}

func copyGood(s *stream) []Access {
	b := s.NextBatch()
	return append([]Access(nil), b...) // the copy kills the taint
}

func spreadGood(s *stream, h *holder) {
	b := s.NextBatch()
	h.batch = append(h.batch, b...) // element-wise append copies contents
}

func rebindCopyGood(s *stream) []Access {
	b := s.NextBatch()
	b = append([]Access(nil), b...) // reassignment from a call is fresh
	return b
}

func passGood(s *stream, consume func([]Access)) {
	b := s.NextBatch()
	consume(b) // handing the window down a call chain is the intended use
}

func ignoredGood(s *stream) []Access {
	b := s.NextBatch()
	//lint:ignore batchalias fixture: single-batch stream, never advanced again
	return b
}

// Interprocedural cases (PR 7): windows passed as arguments are tracked
// through per-parameter summaries of static in-module callees, and a callee
// returning its parameter propagates the taint back to the caller.

var lastBatch []Access

func globalStoreBad(s *stream) {
	b := s.NextBatch()
	lastBatch = b // want `globalStoreBad stores NextBatch window "b" into package-level variable lastBatch`
}

// retainInto stores its slice argument into a field: any window handed to
// it is retained past the next NextBatch call.
func retainInto(h *holder, b []Access) {
	h.batch = b
}

func passToRetainerBad(s *stream, h *holder) {
	b := s.NextBatch()
	retainInto(h, b) // want `passToRetainerBad passes NextBatch window "b" to retainInto, which stores it into h\.batch`
}

// stash forwards its argument to retainInto: summaries compose through
// nested calls.
func stash(h *holder, b []Access) {
	retainInto(h, b)
}

func passTwoDeepBad(s *stream, h *holder) {
	b := s.NextBatch()
	stash(h, b) // want `passTwoDeepBad passes NextBatch window "b" to stash, which passes it to retainInto, which stores it into h\.batch`
}

// identity returns its argument, so the caller's result is still the window.
func identity(b []Access) []Access {
	return b
}

func identityReturnBad(s *stream) []Access {
	b := s.NextBatch()
	return identity(b) // want `identityReturnBad returns NextBatch window "b" \(via identity\)`
}

func identityRebindBad(s *stream, h *holder) {
	b := s.NextBatch()
	alias := identity(b)
	h.batch = alias // want `identityRebindBad stores NextBatch window "alias" into h\.batch`
}

// consume only reads elements: passing a window to it stays clean.
func consume(b []Access) uint64 {
	var sum uint64
	for i := range b {
		sum += b[i].Addr
	}
	return sum
}

func passToConsumerGood(s *stream) uint64 {
	b := s.NextBatch()
	return consume(b)
}

// copyOut element-copies its argument before storing: clean.
func copyOut(h *holder, b []Access) {
	h.batch = append(h.batch[:0], b...)
}

func passToCopierGood(s *stream, h *holder) {
	b := s.NextBatch()
	copyOut(h, b)
}

// compressedView mirrors trace.CompressedView: unlike the zero-copy Shared
// window, its NextBatch returns the *decode window itself*, physically
// overwritten by the next call — retention is not just stale, it reads
// rewritten memory. The analyzer keys on the method name, so the same rules
// must hold for this shape.

type compressedView struct {
	win    []Access
	winPos int
	block  int
}

// NextBatch decodes the next block into the reused window, like
// trace.CompressedView does.
func (v *compressedView) NextBatch() []Access {
	if v.block > 3 {
		return nil
	}
	v.block++
	v.win = v.win[:0]
	for i := 0; i < 4; i++ {
		v.win = append(v.win, Access{Addr: uint64(v.block*4 + i)})
	}
	return v.win
}

func compressedRetainBad(v *compressedView, h *holder) {
	b := v.NextBatch()
	h.batch = b // want `compressedRetainBad stores NextBatch window "b" into h\.batch`
}

func compressedCrossBlockBad(v *compressedView) []Access {
	prev := v.NextBatch()
	_ = v.NextBatch() // prev's storage is overwritten here
	return prev       // want `compressedCrossBlockBad returns NextBatch window "prev"`
}

func compressedDrainGood(v *compressedView, sink func(Access)) {
	for {
		b := v.NextBatch()
		if len(b) == 0 {
			return
		}
		for i := range b {
			sink(b[i]) // consuming within the window's lifetime is the contract
		}
	}
}

func compressedSnapshotGood(v *compressedView, h *holder) {
	b := v.NextBatch()
	h.batch = append(h.batch[:0], b...) // copying out survives the next decode
}
