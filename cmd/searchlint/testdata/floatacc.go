// Fixture for the floatacc analyzer: float accumulation inside a map range
// is order-sensitive because float addition is not associative. Diagnostics
// anchor at the `for` keyword of the map range.
package floatacc

func badSum(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `accumulation total \+=.*float addition is not associative`
		total += v
	}
	return total
}

func badSpelledOut(m map[int]float64) float64 {
	total := 0.0
	for _, v := range m { // want `accumulation total = total \+`
		total = total + v
	}
	return total
}

func badProduct(m map[int]float32) float32 {
	p := float32(1)
	for _, v := range m { // want `accumulation p \*=`
		p *= v
	}
	return p
}

// goodSortedKeys is the canonical fix: iterate a sorted key slice so the
// sum folds in a deterministic order.
func goodSortedKeys(m map[int]float64, sortedKeys []int) float64 {
	var total float64
	for _, k := range sortedKeys {
		total += m[k]
	}
	return total
}

// goodPerIteration stays silent: the accumulator lives inside the loop
// body, so no cross-iteration float state exists.
func goodPerIteration(m map[int][]float64) int {
	n := 0
	for _, vs := range m {
		sum := 0.0
		for _, v := range vs {
			sum += v
		}
		if sum > 1 {
			n++ // order-independent count, no float state crosses iterations
		}
	}
	return n
}

func suppressed(m map[string]float64) float64 {
	var total float64
	//lint:ignore floatacc fixture: diagnostic sum only, low-order bits never reach any table
	for _, v := range m {
		total += v
	}
	return total
}
