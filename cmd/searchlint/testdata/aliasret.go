// Fixture for the aliasret analyzer: methods on mutex-guarded or
// cache-like (map-holding) types must not return internal slices/maps or
// retain caller-owned ones without a defensive copy — the exact corruption
// class fixed in the serving tier's cacheServer.
package aliasret

import "sync"

type entry struct {
	docs   []uint32
	scores []float32
}

type cache struct {
	mu    sync.Mutex
	data  map[uint64]*entry
	order []uint64
}

func (c *cache) getBad(tag uint64) []uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.data[tag]
	if !ok {
		return nil
	}
	return e.docs // want `getBad returns e\.docs, a slice aliasing c state`
}

func (c *cache) putBad(tag uint64, docs []uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.data[tag] = &entry{docs: docs} // want `putBad stores caller-owned slice "docs"`
}

func (c *cache) orderBad() []uint64 {
	return c.order // want `orderBad returns c\.order, a slice aliasing c state`
}

func (c *cache) rebindBad(tag uint64, scores []float32) {
	e := c.data[tag]
	e.scores = scores // want `rebindBad stores caller-owned slice "scores"`
}

// registry is cache-like without a mutex: a bare map field still makes
// escaping references a corruption hazard.
type registry struct {
	m map[string][]int
}

func (r registry) lookupBad(k string) []int {
	return r.m[k] // want `lookupBad returns r\.m\[k\], a slice aliasing r state`
}

// Snapshot-struct escapes (the obs registry/snapshot pattern): a composite
// literal returned by value still aliases internal state through its fields.

type snapshot struct {
	order  []uint64
	series map[string][]int
}

type inner struct{ order []uint64 }
type nested struct{ in inner }

func (c *cache) snapshotBad() snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return snapshot{order: c.order} // want `snapshotBad returns a composite literal carrying c\.order, a slice aliasing c state`
}

func (r registry) snapshotPtrBad() *snapshot {
	return &snapshot{series: r.m} // want `snapshotPtrBad returns a composite literal carrying r\.m, a map aliasing r state`
}

func (c *cache) snapshotNestedBad() nested {
	return nested{in: inner{order: c.order}} // want `snapshotNestedBad returns a composite literal carrying c\.order, a slice aliasing c state`
}

func (c *cache) snapshotGood() snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return snapshot{order: append([]uint64(nil), c.order...)}
}

// Fixed forms: defensive copies break the alias on both paths.

func (c *cache) getGood(tag uint64) []uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.data[tag]
	if !ok {
		return nil
	}
	return append([]uint32(nil), e.docs...)
}

func (c *cache) putGood(tag uint64, docs []uint32) {
	docs = append([]uint32(nil), docs...)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.data[tag] = &entry{docs: docs}
}

func (r registry) lookupGood(k string) []int {
	return append([]int(nil), r.m[k]...)
}

func (c *cache) snapshot() map[uint64]*entry {
	//lint:ignore aliasret fixture: read-only view handed to a same-package caller that never mutates it
	return c.data
}
