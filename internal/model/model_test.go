package model

import (
	"math"
	"testing"
)

func TestAMATL3(t *testing.T) {
	// Perfect hit rate costs tL3; zero hit rate costs tMEM.
	if got := AMATL3(1, 14, 65); got != 14 {
		t.Fatalf("AMAT(h=1) = %v", got)
	}
	if got := AMATL3(0, 14, 65); got != 65 {
		t.Fatalf("AMAT(h=0) = %v", got)
	}
	// The paper's Figure 8b x-axis range (50-70 ns) corresponds to hit
	// rates roughly 0 to 0.3 at these latencies... verify midpoint math.
	got := AMATL3(0.65, 14.4, 65)
	want := 0.65*14.4 + 0.35*65
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("AMAT = %v, want %v", got, want)
	}
}

func TestAMATWithL4(t *testing.T) {
	// With hL4 = 0 and no penalty, reduces to AMATL3.
	a := AMATWithL4(0.6, 0, 14.4, 40, 65, 0)
	b := AMATL3(0.6, 14.4, 65)
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("degenerate L4: %v vs %v", a, b)
	}
	// A perfect L4 at 40 ns caps post-L3 cost at 40 ns.
	if got := AMATWithL4(0, 1, 14.4, 40, 65, 0); got != 40 {
		t.Fatalf("perfect L4: %v", got)
	}
	// The miss penalty only applies to L4 misses.
	withPen := AMATWithL4(0, 0.5, 14.4, 40, 65, 5)
	if math.Abs(withPen-(0.5*40+0.5*70)) > 1e-12 {
		t.Fatalf("penalty math: %v", withPen)
	}
	// A useful L4 strictly lowers AMAT (40 ns < 65 ns memory).
	if AMATWithL4(0.6, 0.5, 14.4, 40, 65, 0) >= AMATL3(0.6, 14.4, 65) {
		t.Fatal("L4 did not reduce AMAT")
	}
}

func TestEquation1Anchors(t *testing.T) {
	// The published model: IPC = -8.62e-3*AMAT + 1.78.
	if got := IPCFromAMAT(50); math.Abs(got-(1.78-0.431)) > 1e-9 {
		t.Fatalf("Eq1(50) = %v", got)
	}
	// Figure 8b plots IPC ~1.2-1.35 for AMAT 50-70 ns; check the range.
	lo, hi := IPCFromAMAT(70), IPCFromAMAT(50)
	if lo < 1.1 || hi > 1.4 || lo >= hi {
		t.Fatalf("Eq1 range [%v, %v] inconsistent with Figure 8b", lo, hi)
	}
	// Far extrapolation clamps instead of going negative.
	if got := IPCFromAMAT(1000); got != 0.05 {
		t.Fatalf("clamp: %v", got)
	}
}

func TestAreaModel(t *testing.T) {
	m := AreaModel{CoreAreaMiB: 4}
	// The PLT1 baseline: 18 cores at 2.5 MiB/core = 117 area-MiB.
	if got := m.Area(18, 2.5); math.Abs(got-117) > 1e-12 {
		t.Fatalf("baseline area %v", got)
	}
	// The paper's optimal design: c = 1 MiB/core gives 23 cores in the
	// same area (117/5 = 23.4, quantized down to 23).
	cores := m.CoresFor(117, 1)
	if math.Floor(cores) != 23 {
		t.Fatalf("cores at 1 MiB/core = %v, want floor 23", cores)
	}
	// Round trip.
	if got := m.CoresFor(m.Area(10, 2), 2); math.Abs(got-10) > 1e-12 {
		t.Fatalf("round trip %v", got)
	}
}

func TestThroughputModel(t *testing.T) {
	m := ThroughputModel{TL3NS: 14.4, TMEMNS: 65, IPCLine: Equation1, SMTSpeedup: 1.37}
	base := m.QPS(18, 0.65)
	if base <= 0 {
		t.Fatal("QPS must be positive")
	}
	// More cores at the same hit rate: linear scaling.
	if got := m.QPS(36, 0.65); math.Abs(got/base-2) > 1e-9 {
		t.Fatalf("core scaling: %v", got/base)
	}
	// A better hit rate increases QPS.
	if m.QPS(18, 0.75) <= base {
		t.Fatal("higher hit rate did not help")
	}
	// An L4 increases QPS at fixed L3 hit rate.
	if m.QPSWithL4(18, 0.65, 0.6, 40, 0) <= base {
		t.Fatal("L4 did not help")
	}
	// A pessimistic L4 (60 ns, 5 ns penalty) helps less than the
	// baseline L4 but still beats no L4 at decent hit rates.
	good := m.QPSWithL4(18, 0.65, 0.6, 40, 0)
	pess := m.QPSWithL4(18, 0.65, 0.6, 60, 5)
	if !(base < pess && pess < good) {
		t.Fatalf("ordering: base %v, pessimistic %v, good %v", base, pess, good)
	}
}

func TestThroughputValidate(t *testing.T) {
	bad := []ThroughputModel{
		{},
		{TL3NS: 20, TMEMNS: 10, SMTSpeedup: 1},
		{TL3NS: 10, TMEMNS: 60, SMTSpeedup: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(100, 127); math.Abs(got-0.27) > 1e-12 {
		t.Fatalf("improvement %v", got)
	}
	if Improvement(0, 5) != 0 {
		t.Fatal("zero baseline must yield 0")
	}
}

func TestPowerModel(t *testing.T) {
	// Paper: +5 cores over an 18-core baseline costs ~18.9% socket power.
	p := PowerModel{SocketWatts: 145, BaselineCores: 18, CorePowerFrac: 0.0377}
	inc := p.PowerIncrease(23)
	if math.Abs(inc-0.189) > 0.005 {
		t.Fatalf("power increase %v, paper says ~18.9%%", inc)
	}
	if p.PowerIncrease(18) != 0 {
		t.Fatal("baseline increase must be 0")
	}
	// 27 watts at 145 W baseline (the paper's absolute figure).
	delta := p.SocketPower(23) - p.SocketPower(18)
	if math.Abs(delta-27) > 1.5 {
		t.Fatalf("delta watts %v, paper says ~27", delta)
	}
}

func TestEnergyPerQuery(t *testing.T) {
	// Equal power and QPS scaling is energy-neutral (the paper's
	// cache-for-cores argument).
	if got := EnergyPerQuery(1.2, 1.2); math.Abs(got-1) > 1e-12 {
		t.Fatalf("energy %v", got)
	}
	// Performance up more than power: energy per query drops.
	if got := EnergyPerQuery(1.19, 1.27); got >= 1 {
		t.Fatalf("L4-style config should cut energy/query, got %v", got)
	}
	if !math.IsInf(EnergyPerQuery(1, 0), 1) {
		t.Fatal("zero QPS must be infinite energy")
	}
}
