// Package model implements the paper's analytical performance models: the
// L3 average-memory-access-time formula (optionally extended with the L4),
// the linear IPC model of Equation 1, the performance-area model behind the
// cache-for-cores trade-off (§IV-B), and the power/energy accounting of
// §IV-C.
//
// The paper's methodology is explicitly hybrid: a functional cache
// simulator produces hit rates, and these closed-form models convert them
// to IPC and QPS. This package is the closed-form half.
package model

import (
	"fmt"
	"math"

	"searchmem/internal/stats"
)

// Equation1 is the paper's published fit (§III-D):
//
//	IPC = -8.62e-3 * AMAT_L3 + 1.78
//
// with AMAT in nanoseconds, measured on PLT1 between 50 and 70 ns.
var Equation1 = stats.Line{Slope: -8.62e-3, Intercept: 1.78}

// AMATL3 computes the paper's average memory access time seen past the L2:
//
//	AMAT_L3 = hL3*tL3 + (1-hL3)*tMEM
//
// hL3 is the L3 hit rate; tL3 and tMEM are the L3 and total round-trip
// memory latencies in nanoseconds.
func AMATL3(hL3, tL3, tMEM float64) float64 {
	return hL3*tL3 + (1-hL3)*tMEM
}

// AMATWithL4 extends AMATL3 with a memory-side L4: post-L3 misses hit the
// L4 with rate hL4 at tL4, and go to memory otherwise, paying missPenalty
// on top of tMEM when the L4 lookup is not overlapped with memory
// scheduling.
func AMATWithL4(hL3, hL4, tL3, tL4, tMEM, missPenalty float64) float64 {
	post := hL4*tL4 + (1-hL4)*(tMEM+missPenalty)
	return hL3*tL3 + (1-hL3)*post
}

// IPCFromAMAT applies Equation 1, clamped below at a small positive floor
// (the linear fit is only valid in-range; clamping keeps far extrapolations
// sane).
func IPCFromAMAT(amatNS float64) float64 {
	ipc := Equation1.Eval(amatNS)
	if ipc < 0.05 {
		ipc = 0.05
	}
	return ipc
}

// AreaModel maps between cores, L3 capacity, and die area in the paper's
// currency: "MiB of L3 cache" (1 core + private caches ≈ 4 MiB on PLT1).
type AreaModel struct {
	// CoreAreaMiB is the area of one core and its private caches.
	CoreAreaMiB float64
}

// Area returns total area (in L3-equivalent MiB) of n cores plus their L3:
// A = n*(s + c) with c MiB of L3 per core.
func (m AreaModel) Area(cores int, l3PerCoreMiB float64) float64 {
	return float64(cores) * (m.CoreAreaMiB + l3PerCoreMiB)
}

// CoresFor returns the (fractional) core count that fits in area A with
// l3PerCoreMiB of L3 per core.
func (m AreaModel) CoresFor(areaMiB, l3PerCoreMiB float64) float64 {
	return areaMiB / (m.CoreAreaMiB + l3PerCoreMiB)
}

// ThroughputModel converts a hierarchy operating point into relative QPS.
// QPS scales linearly with core count (Figure 2a validates this to 72
// cores) and with per-core IPC (Figure 8a validates the linear IPC-AMAT
// relation), modulated by the SMT speedup.
type ThroughputModel struct {
	// TL3NS and TMEMNS are the L3 and memory latencies.
	TL3NS, TMEMNS float64
	// IPCLine maps AMAT (ns) to IPC; usually Equation1, or a line refit
	// from simulation.
	IPCLine stats.Line
	// SMTSpeedup multiplies single-thread throughput; 1.0 when SMT off.
	SMTSpeedup float64
}

// Validate reports whether the model is usable.
func (m ThroughputModel) Validate() error {
	if m.TL3NS <= 0 || m.TMEMNS <= m.TL3NS {
		return fmt.Errorf("model: need 0 < tL3 < tMEM")
	}
	if m.SMTSpeedup <= 0 {
		return fmt.Errorf("model: SMT speedup must be positive")
	}
	return nil
}

// QPS returns relative throughput for cores running at the given L3 hit
// rate (no L4).
func (m ThroughputModel) QPS(cores float64, hL3 float64) float64 {
	return m.QPSWithL4(cores, hL3, 0, 0, 0)
}

// QPSWithL4 returns relative throughput with an L4 configured: hL4 and
// tL4NS describe it; l4MissPenaltyNS is the unoverlapped lookup cost.
// Passing hL4 = 0 with tL4NS = 0 reduces to the no-L4 model.
func (m ThroughputModel) QPSWithL4(cores float64, hL3, hL4, tL4NS, l4MissPenaltyNS float64) float64 {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	amat := AMATWithL4(hL3, hL4, m.TL3NS, tL4NS, m.TMEMNS, l4MissPenaltyNS)
	ipc := m.IPCLine.Eval(amat)
	if ipc < 0.05 {
		ipc = 0.05
	}
	return cores * ipc * m.SMTSpeedup
}

// Improvement returns (new-old)/old as a fraction.
func Improvement(oldQPS, newQPS float64) float64 {
	if oldQPS == 0 {
		return 0
	}
	return (newQPS - oldQPS) / oldQPS
}

// PowerModel is the first-order socket power accounting of §IV-C.
type PowerModel struct {
	// SocketWatts is the baseline socket power at BaselineCores.
	SocketWatts float64
	// BaselineCores is the core count of the measured baseline.
	BaselineCores int
	// CorePowerFrac is one core's share of baseline socket power
	// (3.77% measured on PLT1).
	CorePowerFrac float64
}

// SocketPower returns modeled socket power with the given core count
// (uncore power held constant, cores scaled linearly, as the paper
// measures).
func (p PowerModel) SocketPower(cores int) float64 {
	uncore := p.SocketWatts * (1 - float64(p.BaselineCores)*p.CorePowerFrac)
	return uncore + float64(cores)*p.CorePowerFrac*p.SocketWatts
}

// PowerIncrease returns the fractional socket power increase going from the
// baseline to the given core count.
func (p PowerModel) PowerIncrease(cores int) float64 {
	base := p.SocketPower(p.BaselineCores)
	return (p.SocketPower(cores) - base) / base
}

// EnergyPerQuery returns relative energy per query given relative power and
// relative QPS (both normalized to a baseline of 1.0).
func EnergyPerQuery(relPower, relQPS float64) float64 {
	if relQPS <= 0 {
		return math.Inf(1)
	}
	return relPower / relQPS
}
