// Package platform defines the two hardware platforms the paper evaluates
// (Table II): PLT1, an Intel Haswell-class 2-socket server, and PLT2, an
// IBM POWER8-class one, together with the calibrated core and SMT models
// used to turn simulated miss rates into performance.
package platform

import (
	"fmt"

	"searchmem/internal/cache"
	"searchmem/internal/cpu"
)

// Platform is one hardware configuration.
type Platform struct {
	// Name and Microarch identify the platform ("PLT1", "Intel Haswell").
	Name, Microarch string
	// Sockets and CoresPerSocket give the machine shape.
	Sockets, CoresPerSocket int
	// SMTWays is the maximum hardware threads per core.
	SMTWays int
	// CacheBlock is the line size in bytes at every level.
	CacheBlock int
	// L1I, L1D, L2 are per-core cache configurations.
	L1I, L1D, L2 cache.Config
	// L3 is the shared per-socket cache.
	L3 cache.Config
	// L3Inclusive reports whether the L3 maintains inclusion (true on
	// PLT1, the source of the back-invalidation effects noted in §IV-B).
	L3Inclusive bool
	// Core is the calibrated Top-Down core model.
	Core cpu.CoreParams
	// SMT is the calibrated SMT throughput model.
	SMT cpu.SMTModel
	// SmallPage and HugePage are the OS page sizes (Figure 2c).
	SmallPage, HugePage int
	// TLB describes the small-page TLB; the huge-page variant swaps the
	// page size.
	TLB cpu.TLBConfig
	// L3LatencyNS and MemLatencyNS feed the AMAT model (tL3 and tMEM).
	L3LatencyNS, MemLatencyNS float64
	// CoreAreaL3MiB is the die area of one core plus private caches
	// expressed in MiB of L3 (the paper measures ~4 MiB from Haswell die
	// photos, the unit of Figure 9's x-axis).
	CoreAreaL3MiB float64
	// CorePowerFrac is one core's share of baseline socket power (the
	// paper measures 3.77% on PLT1).
	CorePowerFrac float64
}

// PLT1 returns the Intel Haswell-class platform of Table II.
func PLT1() Platform {
	return Platform{
		Name:           "PLT1",
		Microarch:      "Intel Haswell",
		Sockets:        2,
		CoresPerSocket: 18,
		SMTWays:        2,
		CacheBlock:     64,
		L1I:            cache.Config{Name: "L1-I", Size: 32 << 10, BlockSize: 64, Assoc: 8},
		L1D:            cache.Config{Name: "L1-D", Size: 32 << 10, BlockSize: 64, Assoc: 8},
		L2:             cache.Config{Name: "L2", Size: 256 << 10, BlockSize: 64, Assoc: 8},
		L3:             cache.Config{Name: "L3", Size: 45 << 20, BlockSize: 64, Assoc: 20},
		L3Inclusive:    true,
		Core: cpu.CoreParams{
			// Calibrated against the paper's Figure 3 breakdown at
			// CPI 0.78 (see internal/cpu tests).
			Width:                4,
			FreqGHz:              2.5,
			MispredPenaltyCycles: 12.7,
			L2LatencyCycles:      12,
			L3LatencyCycles:      36,
			MemLatencyNS:         65,
			MemOverlap:           0.078,
			FEOverlap:            0.143,
			FEBandwidthCPI:       0.076,
			CoreStallCPI:         0.066,
		},
		// SMT-2 measured at +37% (Figure 2b): 2/1.37 - 1 = 0.46.
		SMT:       cpu.SMTModel{A: 0.46},
		SmallPage: 4 << 10,
		HugePage:  2 << 20,
		TLB: cpu.TLBConfig{
			PageSize:  4 << 10,
			L1Entries: 64, L1Assoc: 4,
			L2Entries: 1024, L2Assoc: 8,
			WalkLatencyNS: 30,
			L2LatencyNS:   3,
		},
		L3LatencyNS:   14.4, // 36 cycles at 2.5 GHz
		MemLatencyNS:  65,
		CoreAreaL3MiB: 4,
		CorePowerFrac: 0.0377,
	}
}

// PLT2 returns the IBM POWER8-class platform of Table II.
func PLT2() Platform {
	p := Platform{
		Name:           "PLT2",
		Microarch:      "IBM POWER8",
		Sockets:        2,
		CoresPerSocket: 12,
		SMTWays:        8,
		CacheBlock:     128,
		L1I:            cache.Config{Name: "L1-I", Size: 32 << 10, BlockSize: 128, Assoc: 8},
		L1D:            cache.Config{Name: "L1-D", Size: 64 << 10, BlockSize: 128, Assoc: 8},
		L2:             cache.Config{Name: "L2", Size: 512 << 10, BlockSize: 128, Assoc: 8},
		L3:             cache.Config{Name: "L3", Size: 96 << 20, BlockSize: 128, Assoc: 8},
		L3Inclusive:    false,
		Core: cpu.CoreParams{
			Width:                8,
			FreqGHz:              3.5,
			MispredPenaltyCycles: 15,
			L2LatencyCycles:      13,
			L3LatencyCycles:      27,
			MemLatencyNS:         80,
			MemOverlap:           0.06,
			FEOverlap:            0.10,
			FEBandwidthCPI:       0.05,
			CoreStallCPI:         0.05,
		},
		SmallPage: 64 << 10,
		HugePage:  16 << 20,
		TLB: cpu.TLBConfig{
			PageSize:  64 << 10,
			L1Entries: 48, L1Assoc: 4,
			L2Entries: 1024, L2Assoc: 8,
			WalkLatencyNS: 40,
			L2LatencyNS:   4,
		},
		L3LatencyNS:   7.7, // 27 cycles at 3.5 GHz
		MemLatencyNS:  80,
		CoreAreaL3MiB: 6,
		CorePowerFrac: 0.05,
	}
	// SMT-2 = 1.76x and SMT-8 = 3.24x (Figure 2b).
	smt, err := cpu.FitSMT(map[int]float64{2: 1.76, 8: 3.24})
	if err != nil {
		panic(err)
	}
	p.SMT = smt
	return p
}

// Hierarchy builds a cache.HierarchyConfig for running cores on one socket
// of the platform with the given SMT ways and an optional L3 way partition
// (CAT; 0 = all ways).
func (p Platform) Hierarchy(cores, smtWays, l3Ways int) cache.HierarchyConfig {
	if cores <= 0 || cores > p.CoresPerSocket*p.Sockets {
		panic(fmt.Sprintf("platform %s: %d cores out of range", p.Name, cores))
	}
	if smtWays <= 0 || smtWays > p.SMTWays {
		panic(fmt.Sprintf("platform %s: SMT-%d unsupported", p.Name, smtWays))
	}
	l3 := p.L3
	if l3Ways > 0 {
		if l3Ways > l3.Assoc {
			panic(fmt.Sprintf("platform %s: %d L3 ways > %d", p.Name, l3Ways, l3.Assoc))
		}
		l3.AllocWays = l3Ways
	}
	return cache.HierarchyConfig{
		Cores:          cores,
		ThreadsPerCore: smtWays,
		L1I:            p.L1I,
		L1D:            p.L1D,
		L2:             p.L2,
		L3:             l3,
		L3Inclusive:    p.L3Inclusive,
	}
}

// HierarchyWithL3Size is Hierarchy with an explicit L3 capacity (used by
// capacity sweeps); associativity is preserved when it divides the size,
// otherwise the cache falls back to 16 ways.
func (p Platform) HierarchyWithL3Size(cores, smtWays int, l3Size int64) cache.HierarchyConfig {
	cfg := p.Hierarchy(cores, smtWays, 0)
	l3 := cfg.L3
	l3.Size = l3Size
	l3.AllocWays = 0
	if l3Size/int64(l3.BlockSize)%int64(l3.Assoc) != 0 {
		l3.Assoc = 16
	}
	if err := l3.Validate(); err != nil {
		panic(err)
	}
	cfg.L3 = l3
	return cfg
}

// ScaleCaches returns a copy of the platform with every cache capacity
// divided by factor (the experiment scale knob of DESIGN.md §6). Block
// sizes and associativities are preserved; capacities are floored at one
// set.
func (p Platform) ScaleCaches(factor int) Platform {
	if factor <= 0 {
		panic("platform: scale factor must be positive")
	}
	scale := func(c cache.Config) cache.Config {
		c.Size /= int64(factor)
		min := int64(c.BlockSize)
		if c.Assoc > 0 {
			min = int64(c.BlockSize * c.Assoc)
		}
		if c.Size < min {
			c.Size = min
		}
		// Keep the block/way divisibility invariant.
		if c.Assoc > 0 {
			blocks := c.Size / int64(c.BlockSize)
			blocks -= blocks % int64(c.Assoc)
			if blocks < int64(c.Assoc) {
				blocks = int64(c.Assoc)
			}
			c.Size = blocks * int64(c.BlockSize)
		}
		return c
	}
	p.L1I = scale(p.L1I)
	p.L1D = scale(p.L1D)
	p.L2 = scale(p.L2)
	p.L3 = scale(p.L3)
	return p
}

// TotalCores returns the machine's core count across sockets.
func (p Platform) TotalCores() int { return p.Sockets * p.CoresPerSocket }

// TLBFor returns the TLB configuration for the given page size.
func (p Platform) TLBFor(pageSize int) cpu.TLBConfig {
	t := p.TLB
	t.PageSize = pageSize
	return t
}
