package platform

import (
	"math"
	"testing"
)

func TestTableIIAttributes(t *testing.T) {
	p1, p2 := PLT1(), PLT2()
	// Table II rows, verbatim.
	if p1.Sockets != 2 || p1.CoresPerSocket != 18 || p1.SMTWays != 2 || p1.CacheBlock != 64 {
		t.Fatalf("PLT1 shape: %+v", p1)
	}
	if p1.L1I.Size != 32<<10 || p1.L1D.Size != 32<<10 || p1.L2.Size != 256<<10 || p1.L3.Size != 45<<20 {
		t.Fatal("PLT1 cache sizes wrong")
	}
	if p2.Sockets != 2 || p2.CoresPerSocket != 12 || p2.SMTWays != 8 || p2.CacheBlock != 128 {
		t.Fatalf("PLT2 shape: %+v", p2)
	}
	if p2.L1I.Size != 32<<10 || p2.L1D.Size != 64<<10 || p2.L2.Size != 512<<10 || p2.L3.Size != 96<<20 {
		t.Fatal("PLT2 cache sizes wrong")
	}
	if !p1.L3Inclusive {
		t.Fatal("PLT1 L3 must be inclusive")
	}
}

func TestSMTCalibration(t *testing.T) {
	// Figure 2b anchors.
	if got := PLT1().SMT.Speedup(2); math.Abs(got-1.37) > 0.01 {
		t.Fatalf("PLT1 SMT-2 = %v, want 1.37", got)
	}
	p2 := PLT2()
	if got := p2.SMT.Speedup(2); math.Abs(got-1.76) > 0.03 {
		t.Fatalf("PLT2 SMT-2 = %v, want 1.76", got)
	}
	if got := p2.SMT.Speedup(8); math.Abs(got-3.24) > 0.06 {
		t.Fatalf("PLT2 SMT-8 = %v, want 3.24", got)
	}
}

func TestHierarchyConstruction(t *testing.T) {
	p := PLT1()
	cfg := p.Hierarchy(18, 2, 0)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Cores != 18 || cfg.ThreadsPerCore != 2 {
		t.Fatal("shape not propagated")
	}
	// CAT partition: 6 of 20 ways.
	cfg = p.Hierarchy(11, 1, 6)
	if cfg.L3.AllocWays != 6 {
		t.Fatal("CAT ways not set")
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyPanics(t *testing.T) {
	p := PLT1()
	for i, f := range []func(){
		func() { p.Hierarchy(0, 1, 0) },
		func() { p.Hierarchy(100, 1, 0) },
		func() { p.Hierarchy(4, 3, 0) },  // SMT-3 > SMT-2
		func() { p.Hierarchy(4, 1, 30) }, // 30 ways > 20
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestHierarchyWithL3Size(t *testing.T) {
	p := PLT1()
	for _, size := range []int64{4 << 20, 16 << 20, 23 << 20, 1 << 30} {
		cfg := p.HierarchyWithL3Size(4, 1, size)
		if cfg.L3.Size != size {
			t.Fatalf("L3 size %d not applied", size)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
	}
}

func TestScaleCaches(t *testing.T) {
	p := PLT1().ScaleCaches(64)
	if p.L3.Size != 45<<20/64 {
		t.Fatalf("scaled L3 = %d", p.L3.Size)
	}
	if err := p.L3.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := p.L1I.Validate(); err != nil {
		t.Fatal(err)
	}
	// Extreme scaling still yields valid configs.
	tiny := PLT1().ScaleCaches(1 << 20)
	for _, c := range []interface{ Validate() error }{tinyCfg(tiny)} {
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

// tinyCfg builds a hierarchy from an extremely scaled platform to check
// end-to-end validity.
func tinyCfg(p Platform) interface{ Validate() error } {
	return p.Hierarchy(2, 1, 0)
}

func TestCoreModelsValidate(t *testing.T) {
	if err := PLT1().Core.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := PLT2().Core.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := PLT1().SMT.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTLBFor(t *testing.T) {
	p := PLT1()
	small := p.TLBFor(p.SmallPage)
	huge := p.TLBFor(p.HugePage)
	if small.PageSize != 4<<10 || huge.PageSize != 2<<20 {
		t.Fatal("page sizes wrong")
	}
	if err := small.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := huge.Validate(); err != nil {
		t.Fatal(err)
	}
	// PLT2 uses 64 KiB / 16 MiB pages.
	p2 := PLT2()
	if p2.SmallPage != 64<<10 || p2.HugePage != 16<<20 {
		t.Fatal("PLT2 page sizes wrong")
	}
}

func TestTotalCores(t *testing.T) {
	if PLT1().TotalCores() != 36 || PLT2().TotalCores() != 24 {
		t.Fatal("core totals wrong")
	}
}

func TestAreaAndPowerConstants(t *testing.T) {
	p := PLT1()
	if p.CoreAreaL3MiB != 4 {
		t.Fatalf("core area %v, paper measures ~4 MiB", p.CoreAreaL3MiB)
	}
	if math.Abs(p.CorePowerFrac-0.0377) > 1e-9 {
		t.Fatalf("core power fraction %v, paper measures 3.77%%", p.CorePowerFrac)
	}
}
