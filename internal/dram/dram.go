// Package dram models the timing, bandwidth, and energy of main memory and
// of the paper's latency-optimized on-package eDRAM L4 cache (§IV-C).
//
// The functional (hit/miss) behaviour of the L4 is simulated by
// internal/cache; this package supplies the constants and arithmetic that
// turn hit rates into latencies, bandwidth, and energy — mirroring how the
// paper combines its functional simulator with an analytical model.
package dram

import "fmt"

// Device captures the first-order characteristics of one memory technology.
type Device struct {
	// Name identifies the device ("DDR4", "eDRAM").
	Name string
	// AccessLatencyNS is the round-trip access latency seen by the
	// requesting agent.
	AccessLatencyNS float64
	// EnergyPerAccessNJ is the energy of one block transfer. The paper
	// cites eDRAM access energy as significantly lower than DRAM
	// [Chang'13 HPCA].
	EnergyPerAccessNJ float64
	// PeakBandwidthGBs is the peak sustainable bandwidth.
	PeakBandwidthGBs float64
}

// Standard devices used by the experiments. Latencies follow the paper:
// tMEM in the 50-70 ns range measured on PLT1 (Figure 8b's x-axis), 40 ns
// for the optimized on-package eDRAM L4, 60 ns for the pessimistic variant.
var (
	// DDR4 approximates the PLT1 main-memory system.
	DDR4 = Device{Name: "DDR4", AccessLatencyNS: 65, EnergyPerAccessNJ: 20, PeakBandwidthGBs: 68}
	// EDRAM is the on-package embedded-DRAM die the L4 is built from.
	EDRAM = Device{Name: "eDRAM", AccessLatencyNS: 40, EnergyPerAccessNJ: 6, PeakBandwidthGBs: 102}
)

// L4Design is the paper's Alloy-style latency-optimized L4 configuration.
type L4Design struct {
	// CapacityBytes is the eDRAM capacity.
	CapacityBytes int64
	// HitLatencyNS is the L4 hit latency (40 ns baseline, consistent with
	// commercial eDRAM L4 implementations the paper cites).
	HitLatencyNS float64
	// MissPenaltyNS is added to main-memory latency on an L4 miss. The
	// baseline design performs the L4 tag lookup in parallel with memory
	// scheduling, making this 0; the pessimistic variant serializes them
	// (5 ns).
	MissPenaltyNS float64
	// ParallelLookup records whether tag lookup overlaps memory
	// scheduling (documentation of the design point; the latency effect
	// is carried by MissPenaltyNS).
	ParallelLookup bool
	// Associativity is 1 for the direct-mapped baseline (tags and data in
	// one eDRAM row, one access per hit); the "Associative" sensitivity
	// configuration in Figure 14 uses a fully-associative model (0).
	Associativity int
	// NUMAPenaltyNS is the added cost of reaching a remote socket's L4 in
	// a multi-socket system (the memory-side placement trade-off).
	NUMAPenaltyNS float64
	// RemoteFraction is the fraction of L4 hits served from a remote
	// socket.
	RemoteFraction float64
}

// Validate reports whether the design is consistent.
func (d L4Design) Validate() error {
	if d.CapacityBytes <= 0 {
		return fmt.Errorf("dram: L4 capacity must be positive")
	}
	if d.HitLatencyNS <= 0 {
		return fmt.Errorf("dram: L4 hit latency must be positive")
	}
	if d.MissPenaltyNS < 0 || d.NUMAPenaltyNS < 0 {
		return fmt.Errorf("dram: L4 penalties must be non-negative")
	}
	if d.RemoteFraction < 0 || d.RemoteFraction > 1 {
		return fmt.Errorf("dram: remote fraction must be in [0,1]")
	}
	if d.Associativity < 0 {
		return fmt.Errorf("dram: negative associativity")
	}
	return nil
}

// EffectiveHitLatencyNS returns the average L4 hit latency including NUMA
// effects.
func (d L4Design) EffectiveHitLatencyNS() float64 {
	return d.HitLatencyNS + d.RemoteFraction*d.NUMAPenaltyNS
}

// BaselineL4 returns the paper's baseline design: direct-mapped, 40 ns hit,
// parallel lookup (no miss penalty).
func BaselineL4(capacity int64) L4Design {
	return L4Design{
		CapacityBytes:  capacity,
		HitLatencyNS:   40,
		MissPenaltyNS:  0,
		ParallelLookup: true,
		Associativity:  1,
	}
}

// PessimisticL4 returns the paper's pessimistic sensitivity configuration:
// 60 ns hit latency and a 5 ns serialized miss penalty.
func PessimisticL4(capacity int64) L4Design {
	return L4Design{
		CapacityBytes:  capacity,
		HitLatencyNS:   60,
		MissPenaltyNS:  5,
		ParallelLookup: false,
		Associativity:  1,
	}
}

// AssociativeL4 returns the fully-associative sensitivity configuration used
// to bound the cost of direct-mapped conflicts (Figure 14, "Associative").
func AssociativeL4(capacity int64) L4Design {
	d := BaselineL4(capacity)
	d.Associativity = 0
	return d
}

// Traffic summarizes memory-system transaction counts over a simulated
// interval, produced by the cache hierarchy.
type Traffic struct {
	// L4Hits and L4Misses partition post-L3 demand reads.
	L4Hits, L4Misses int64
	// L4Writebacks counts dirty L3 evictions absorbed by the L4 row
	// instead of reaching main memory (the write-buffering behaviour
	// behind WriteBufferSavingsNS): each is one L4 row access, billed at
	// L4 energy cost.
	L4Writebacks int64
	// MemReads and MemWrites are main-memory transactions.
	MemReads, MemWrites int64
	// BlockBytes is the transfer size per transaction.
	BlockBytes int
}

// DRAMFilterRate returns the fraction of would-be DRAM reads absorbed by
// the L4 (the paper reports ~50% for the 1 GiB L4, the source of its
// energy advantage).
func (t Traffic) DRAMFilterRate() float64 {
	total := t.L4Hits + t.L4Misses
	if total == 0 {
		return 0
	}
	return float64(t.L4Hits) / float64(total)
}

// Energy returns total memory-system access energy in joules: L4 traffic at
// l4's energy cost plus main-memory traffic at mem's. Writebacks the L4
// absorbed (Traffic.L4Writebacks) are L4 row accesses too — they cost L4
// energy, not main-memory energy, which is precisely the write-buffering
// saving WriteBufferSavingsNS models on the latency side.
func Energy(t Traffic, l4, mem Device) float64 {
	// Every post-L3 read probes the L4 row, and every absorbed writeback
	// writes one.
	l4Accesses := float64(t.L4Hits + t.L4Misses + t.L4Writebacks)
	memAccesses := float64(t.MemReads + t.MemWrites)
	return (l4Accesses*l4.EnergyPerAccessNJ + memAccesses*mem.EnergyPerAccessNJ) * 1e-9
}

// BandwidthGBs returns the bandwidth consumed by the transaction stream
// over the given interval.
func BandwidthGBs(transactions int64, blockBytes int, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(transactions) * float64(blockBytes) / seconds / 1e9
}

// WriteBufferSavingsNS models the §V "further benefits" observation: an L4
// that absorbs writebacks removes write-to-read turnaround (tWRT) stalls
// from the main-memory read path. The effective read-latency reduction is
// the share of accesses that would otherwise turn the bus around times the
// turnaround cost.
func WriteBufferSavingsNS(writeFrac, tWRTNS float64) float64 {
	if writeFrac < 0 {
		writeFrac = 0
	}
	if writeFrac > 1 {
		writeFrac = 1
	}
	// Each buffered write spares roughly one read from a turnaround.
	return writeFrac * tWRTNS
}

// Utilization returns the raw consumed/peak bandwidth ratio for a device
// (negative consumption reads as 0). Values above 1 mean the modeled
// traffic oversubscribes the device and must stay visible — clamping is a
// rendering decision, not a modeling one — so callers that need a bounded
// value clamp at the presentation layer. The paper measures production
// search at 40-50% of peak DRAM bandwidth (vs ~1% for CloudSuite), leaving
// headroom that the L4 design relies on.
func Utilization(consumedGBs float64, dev Device) float64 {
	if dev.PeakBandwidthGBs <= 0 || consumedGBs < 0 {
		return 0
	}
	return consumedGBs / dev.PeakBandwidthGBs
}
