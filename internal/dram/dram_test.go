package dram

import (
	"math"
	"testing"
)

func TestL4DesignValidate(t *testing.T) {
	bad := []L4Design{
		{},
		{CapacityBytes: 1 << 30}, // zero hit latency
		{CapacityBytes: 1 << 30, HitLatencyNS: 40, MissPenaltyNS: -1},
		{CapacityBytes: 1 << 30, HitLatencyNS: 40, RemoteFraction: 1.5},
		{CapacityBytes: 1 << 30, HitLatencyNS: 40, Associativity: -2},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	for _, d := range []L4Design{BaselineL4(1 << 30), PessimisticL4(1 << 30), AssociativeL4(1 << 30)} {
		if err := d.Validate(); err != nil {
			t.Errorf("preset rejected: %v", err)
		}
	}
}

func TestPresetShapes(t *testing.T) {
	b := BaselineL4(1 << 30)
	if b.HitLatencyNS != 40 || b.MissPenaltyNS != 0 || !b.ParallelLookup || b.Associativity != 1 {
		t.Fatalf("baseline preset wrong: %+v", b)
	}
	p := PessimisticL4(1 << 30)
	if p.HitLatencyNS != 60 || p.MissPenaltyNS != 5 || p.ParallelLookup {
		t.Fatalf("pessimistic preset wrong: %+v", p)
	}
	a := AssociativeL4(1 << 30)
	if a.Associativity != 0 || a.HitLatencyNS != 40 {
		t.Fatalf("associative preset wrong: %+v", a)
	}
}

func TestEffectiveHitLatency(t *testing.T) {
	d := BaselineL4(1 << 30)
	d.NUMAPenaltyNS = 20
	d.RemoteFraction = 0.5
	if got := d.EffectiveHitLatencyNS(); math.Abs(got-50) > 1e-12 {
		t.Fatalf("effective hit latency %v, want 50", got)
	}
	if got := BaselineL4(1 << 30).EffectiveHitLatencyNS(); got != 40 {
		t.Fatalf("single-socket latency %v", got)
	}
}

func TestDRAMFilterRate(t *testing.T) {
	tr := Traffic{L4Hits: 50, L4Misses: 50}
	if got := tr.DRAMFilterRate(); got != 0.5 {
		t.Fatalf("filter rate %v", got)
	}
	if got := (Traffic{}).DRAMFilterRate(); got != 0 {
		t.Fatalf("empty filter rate %v", got)
	}
}

func TestEnergyPrefersEDRAM(t *testing.T) {
	// The same post-L3 read stream costs less energy when the L4 absorbs
	// half of it (eDRAM energy/access < DRAM energy/access).
	withL4 := Traffic{L4Hits: 500, L4Misses: 500, MemReads: 500, BlockBytes: 64}
	noL4 := Traffic{L4Misses: 1000, MemReads: 1000, BlockBytes: 64}
	eWith := Energy(withL4, EDRAM, DDR4)
	eWithout := Energy(noL4, EDRAM, DDR4)
	if eWith >= eWithout {
		t.Fatalf("L4 did not reduce memory energy: %v vs %v", eWith, eWithout)
	}
}

func TestEnergyUnits(t *testing.T) {
	tr := Traffic{MemReads: 1}
	got := Energy(tr, EDRAM, Device{EnergyPerAccessNJ: 20})
	if math.Abs(got-20e-9) > 1e-18 {
		t.Fatalf("1 access at 20 nJ = %v J", got)
	}
}

func TestEnergyBillsAbsorbedWritebacks(t *testing.T) {
	// 1000 dirty L3 evictions, all absorbed by the L4: they are L4 row
	// writes (6 nJ each on eDRAM), not free — but cheaper than the DRAM
	// writes (20 nJ each) they would be without the L4.
	absorbed := Traffic{L4Writebacks: 1000}
	writtenThrough := Traffic{MemWrites: 1000}
	eAbs := Energy(absorbed, EDRAM, DDR4)
	if want := 1000 * EDRAM.EnergyPerAccessNJ * 1e-9; math.Abs(eAbs-want) > 1e-15 {
		t.Fatalf("absorbed writebacks billed %v J, want %v J (L4 cost)", eAbs, want)
	}
	if eThrough := Energy(writtenThrough, EDRAM, DDR4); eAbs >= eThrough {
		t.Fatalf("absorption did not save energy: %v vs %v", eAbs, eThrough)
	}
}

func TestBandwidth(t *testing.T) {
	// 1e9 transactions of 64 B over 1 s = 64 GB/s.
	if got := BandwidthGBs(1e9, 64, 1); math.Abs(got-64) > 1e-9 {
		t.Fatalf("bandwidth %v", got)
	}
	if BandwidthGBs(100, 64, 0) != 0 {
		t.Fatal("zero interval must give 0")
	}
}

func TestUtilization(t *testing.T) {
	if got := Utilization(34, DDR4); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("utilization %v, want 0.5", got)
	}
	// Oversubscription must be visible, not silently clamped to 1: a
	// modeled stream demanding 2x the DDR4 peak reads as 2.0. (Regression
	// pin: Utilization used to clamp to [0,1], hiding infeasible design
	// points in the bandwidth tables.)
	if got := Utilization(2*DDR4.PeakBandwidthGBs, DDR4); math.Abs(got-2) > 1e-9 {
		t.Fatalf("oversubscribed utilization %v, want 2 (raw ratio)", got)
	}
	if Utilization(-5, DDR4) != 0 {
		t.Fatal("negative consumption must read as 0")
	}
	if Utilization(10, Device{}) != 0 {
		t.Fatal("zero-peak device must give 0")
	}
}

func TestDeviceConstants(t *testing.T) {
	// The modeled relationship the paper relies on: eDRAM is faster and
	// cheaper per access than commodity DRAM.
	if EDRAM.AccessLatencyNS >= DDR4.AccessLatencyNS {
		t.Fatal("eDRAM must be faster than DRAM")
	}
	if EDRAM.EnergyPerAccessNJ >= DDR4.EnergyPerAccessNJ {
		t.Fatal("eDRAM must cost less energy than DRAM")
	}
}

func TestWriteBufferSavings(t *testing.T) {
	// No writes, no savings; all-write streams save the full turnaround.
	if WriteBufferSavingsNS(0, 8) != 0 {
		t.Fatal("savings without writes")
	}
	if got := WriteBufferSavingsNS(1, 8); got != 8 {
		t.Fatalf("full-write savings %v", got)
	}
	if got := WriteBufferSavingsNS(0.25, 8); math.Abs(got-2) > 1e-12 {
		t.Fatalf("quarter-write savings %v", got)
	}
	// Clamped inputs.
	if WriteBufferSavingsNS(-1, 8) != 0 || WriteBufferSavingsNS(2, 8) != 8 {
		t.Fatal("clamping broken")
	}
}
