package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// The fuzz targets pin the codec robustness contract from two sides:
//
//   - decode targets feed arbitrary bytes to the decoders and require
//     "no panic; every failure is ErrBadTrace" — corrupt input must never
//     decode silently into garbage accesses (the uint16(size) narrowing bug)
//     or crash the replayer;
//   - round-trip targets derive a valid access stream from the fuzz input
//     and require encode→decode identity through both the file codec and
//     the block codec (with several block geometries).
//
// `make fuzz-smoke` runs each target briefly in CI; the committed corpus
// under testdata/fuzz/ seeds them with a valid trace and known-nasty
// corruptions (varint overflow, oversize size, truncated records).

// fuzzAccesses derives a deterministic valid access stream from raw fuzz
// bytes: 12 input bytes per access. Thread is clamped to the file codec's
// 4-bit range so the same stream round-trips through both codecs.
func fuzzAccesses(data []byte) []Access {
	var out []Access
	for len(data) >= 12 {
		out = append(out, Access{
			Addr:   binary.LittleEndian.Uint64(data[:8]),
			Size:   binary.LittleEndian.Uint16(data[8:10]),
			Seg:    Segment(data[10] % NumSegments),
			Kind:   Kind(data[10] / NumSegments % NumKinds),
			Thread: data[11] & maxCodecThread,
		})
		data = data[12:]
	}
	return out
}

// encodeFile serializes accesses with the file codec.
func encodeFile(t testing.TB, accesses []Access) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for _, a := range accesses {
		if err := w.Write(a); err != nil {
			t.Fatalf("Write(%v): %v", a, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return buf.Bytes()
}

// FuzzFileCodecDecode feeds arbitrary bytes to the file-codec reader. The
// contract: no panic, and every non-clean outcome is ErrBadTrace.
func FuzzFileCodecDecode(f *testing.F) {
	// A valid two-record trace, and surgical corruptions of it.
	valid := encodeFile(f, []Access{
		{Addr: 4096, Size: 64, Seg: Heap, Kind: Read, Thread: 3},
		{Addr: 4160, Size: 64, Seg: Heap, Kind: Read, Thread: 3},
	})
	f.Add(valid)
	f.Add(valid[:len(valid)-1])                       // truncated final record
	f.Add(append(bytes.Clone(valid), 0x00))           // trailing meta, no body
	f.Add([]byte("SMTR\x01\x00\x00\x00"))             // header only
	f.Add([]byte("SMTR\x02\x00\x00\x00"))             // bad version
	f.Add([]byte("XXXX\x01\x00\x00\x00\x00\x40\x00")) // bad magic
	// Oversize size field: meta then uvarint 1<<20.
	f.Add(append([]byte("SMTR\x01\x00\x00\x00"), 0x00, 0x80, 0x80, 0xc0, 0x00))
	// 10-byte varint overflow in the size position.
	f.Add(append([]byte("SMTR\x01\x00\x00\x00"), 0x00,
		0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadTrace) {
				t.Fatalf("NewReader: non-ErrBadTrace error %v", err)
			}
			return
		}
		var a Access
		for r.Next(&a) {
			if a.Kind >= NumKinds || a.Seg >= NumSegments || a.Thread > maxCodecThread {
				t.Fatalf("decoded out-of-range access %v", a)
			}
		}
		if err := r.Err(); err != nil && !errors.Is(err, ErrBadTrace) {
			t.Fatalf("Err: non-ErrBadTrace error %v", err)
		}
	})
}

// FuzzBlockDecode feeds arbitrary bytes to the block decoder as a single
// claimed block of `count` records. Same contract as the file decoder: no
// panic, failures are ErrBadTrace, and successes decode in-range accesses.
func FuzzBlockDecode(f *testing.F) {
	// A valid block (thread 200 exercises the escape-byte path).
	if c, err := Compress([]Access{
		{Addr: 4096, Size: 64, Seg: Heap, Kind: Read, Thread: 200},
		{Addr: 4160, Size: 64, Seg: Heap, Kind: Read, Thread: 200},
	}, 0); err == nil {
		f.Add(c.buf, uint16(2))
		f.Add(c.buf, uint16(3))                // claims one more record than present
		f.Add(c.buf[:len(c.buf)-1], uint16(2)) // truncated
	}
	f.Add([]byte{}, uint16(0))                                         // empty block (decoder must skip, not panic)
	f.Add([]byte{0x0f}, uint16(1))                                     // escape nibble, no thread byte
	f.Add([]byte{0xc0, 0x00, 0x00}, uint16(1))                         // kind == 3
	f.Add([]byte{0x00, 0xff, 0xff, 0xff, 0xff, 0xff, 0x1f}, uint16(1)) // oversize size varint
	// Non-canonical 10-byte size varint encoding zero, then a truncated
	// delta: at 15 bytes this sat exactly on the old fast-path guard and
	// drove the unchecked delta reads past the block (regression: the guard
	// must budget the full 10-byte varint width, not the canonical 3 bytes).
	f.Add([]byte{0x0f, 0x07,
		0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x00,
		0x80, 0x80, 0x80}, uint16(1))

	f.Fuzz(func(t *testing.T, data []byte, count uint16) {
		c := &Compressed{
			blocks:   []blockMeta{{off: 0, size: int32(len(data)), count: int32(count)}},
			buf:      data,
			n:        int(count),
			blockLen: DefaultBlockLen,
		}
		v := c.View()
		var a Access
		n := 0
		for v.Next(&a) {
			if a.Kind >= NumKinds || a.Seg >= NumSegments {
				t.Fatalf("decoded out-of-range access %v", a)
			}
			n++
		}
		if err := v.Err(); err != nil {
			if !errors.Is(err, ErrBadTrace) {
				t.Fatalf("Err: non-ErrBadTrace error %v", err)
			}
		} else if n != int(count) {
			t.Fatalf("clean decode of %d records, claimed %d", n, count)
		}
	})
}

// FuzzCodecRoundTrip derives a valid access stream from the fuzz input and
// requires encode→decode identity through the file codec and through the
// block codec at a fuzz-chosen geometry (including blocks the stream
// straddles, and a rewind re-read).
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint16(0))
	f.Add(bytes.Repeat([]byte{0xa5}, 12*3), uint16(1))
	f.Add(bytes.Repeat([]byte{0x11, 0x47}, 6*5), uint16(2))

	f.Fuzz(func(t *testing.T, data []byte, blockLen uint16) {
		want := fuzzAccesses(data)

		r, err := NewReader(bytes.NewReader(encodeFile(t, want)))
		if err != nil {
			t.Fatalf("NewReader: %v", err)
		}
		var a Access
		fi := 0
		for r.Next(&a) {
			if fi >= len(want) {
				t.Fatalf("file codec decoded extra record %v", a)
			}
			if a != want[fi] {
				t.Fatalf("file codec record %d = %v, want %v", fi, a, want[fi])
			}
			fi++
		}
		if err := r.Err(); err != nil {
			t.Fatalf("file codec Err: %v", err)
		}
		if fi != len(want) {
			t.Fatalf("file codec decoded %d records, want %d", fi, len(want))
		}

		c, err := Compress(want, int(blockLen))
		if err != nil {
			t.Fatalf("Compress: %v", err)
		}
		v := c.View()
		for pass := 0; pass < 2; pass++ {
			i := 0
			for v.Next(&a) {
				if i >= len(want) {
					t.Fatalf("pass %d: block codec decoded extra record %v", pass, a)
				}
				if a != want[i] {
					t.Fatalf("pass %d: block codec record %d = %v, want %v", pass, i, a, want[i])
				}
				i++
			}
			if err := v.Err(); err != nil {
				t.Fatalf("pass %d: block codec Err: %v", pass, err)
			}
			if i != len(want) {
				t.Fatalf("pass %d: block codec decoded %d records, want %d", pass, i, len(want))
			}
			v.Rewind()
		}
	})
}
