package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"unsafe"
)

// Block-compressed recording storage.
//
// Shared keeps every recorded access as a 16-byte struct, which caps
// replayable trace length by host RAM (the repo's 1/64 scale ceiling). The
// Compressed store keeps the same recording as delta+varint blocks —
// typically 2-4 bytes per access for the sequential scans that dominate the
// leaf (posting lists, instruction fetch) — and decodes one block at a time
// into a reused window behind the ordinary BatchStream contract, so replay
// RSS is bounded by one block regardless of trace length. With a SpillFile
// attached, finished blocks leave memory entirely and are read back through
// a plain io.ReaderAt (no mmap), which keeps concurrent views safe and the
// footprint flat at paper-scale traces.
//
// Per-record layout (same spirit as the file codec in codec.go):
//
//	meta u8 | [thread u8] | size uvarint | addr-delta svarint
//
// meta packs kind (2 bits), segment (2 bits), and a 4-bit thread nibble;
// nibble 0x0f is an escape meaning the full 8-bit thread id follows, so —
// unlike the fixed file format — every Access.Thread value round-trips.
// Address deltas are taken per (thread, segment) pair exactly like the file
// codec, but every chain's base resets to zero at each block boundary:
// blocks are therefore independently decodable, which is what makes
// spill-to-disk and Rewind cheap (no chain state survives a block).
type Compressed struct {
	blocks   []blockMeta
	buf      []byte      // concatenated block bytes (in-memory store)
	spill    io.ReaderAt // block bytes live here instead when spilled
	n        int
	blockLen int
}

// blockMeta locates one independently decodable block.
type blockMeta struct {
	off   int64
	size  int32
	count int32
}

// DefaultBlockLen is the number of accesses per compressed block: equal to
// DefaultBatchSize so one decoded block feeds the batched kernels as one
// window, and small enough (a block decodes into 128 KiB of Access values)
// that the window stays cache-resident while hierarchies consume it.
const DefaultBlockLen = DefaultBatchSize

// threadEscape is the meta thread-nibble value marking an explicit thread
// byte. Threads 0-14 encode inline; 15-255 cost one extra byte.
const threadEscape = 0x0f

// SpillFile is where a BlockWriter parks finished blocks and a
// CompressedView later reads them back from. *os.File satisfies it; both
// sides use offset-addressed I/O so any number of views may read
// concurrently without a shared cursor.
type SpillFile interface {
	io.WriterAt
	io.ReaderAt
}

// BlockWriter incrementally compresses an access stream into blocks. With a
// nil spill the encoded blocks accumulate in memory (still ~4-8x smaller
// than flat storage); with a SpillFile each finished block is written out
// immediately and the writer's footprint is one encoding block.
type BlockWriter struct {
	blockLen int
	spill    SpillFile
	buf      []byte
	cur      []byte
	curCount int
	blocks   []blockMeta
	off      int64
	n        int
	err      error

	// Per-(thread, segment) delta chains. Every chain's base resets to zero
	// at block boundaries (blocks must decode independently); the 8 KiB
	// clear costs well under 0.1 ns per access at DefaultBlockLen.
	chain [256][NumSegments]uint64
}

// NewBlockWriter returns a writer producing blocks of blockLen accesses
// (0 selects DefaultBlockLen). spill may be nil (in-memory blocks).
func NewBlockWriter(blockLen int, spill SpillFile) *BlockWriter {
	if blockLen <= 0 {
		blockLen = DefaultBlockLen
	}
	return &BlockWriter{blockLen: blockLen, spill: spill}
}

// Add appends one access to the recording.
func (w *BlockWriter) Add(a Access) error {
	if w.err != nil {
		return w.err
	}
	if a.Seg >= NumSegments || a.Kind >= NumKinds {
		return fmt.Errorf("trace: invalid access %v", a)
	}
	t, s := a.Thread, a.Seg
	prev := w.chain[t][s]
	w.chain[t][s] = a.Addr

	meta := byte(a.Kind)<<6 | byte(s)<<4
	if t < threadEscape {
		w.cur = append(w.cur, meta|t)
	} else {
		w.cur = append(w.cur, meta|threadEscape, t)
	}
	w.cur = binary.AppendUvarint(w.cur, uint64(a.Size))
	w.cur = binary.AppendVarint(w.cur, int64(a.Addr-prev))
	w.curCount++
	w.n++
	if w.curCount >= w.blockLen {
		return w.flushBlock()
	}
	return nil
}

// flushBlock seals the current block (to memory or the spill file).
func (w *BlockWriter) flushBlock() error {
	if w.curCount == 0 {
		return nil
	}
	bm := blockMeta{off: w.off, size: int32(len(w.cur)), count: int32(w.curCount)}
	if w.spill != nil {
		if _, err := w.spill.WriteAt(w.cur, w.off); err != nil {
			w.err = fmt.Errorf("trace: spilling block %d: %w", len(w.blocks), err)
			return w.err
		}
	} else {
		w.buf = append(w.buf, w.cur...)
	}
	w.off += int64(len(w.cur))
	w.blocks = append(w.blocks, bm)
	w.cur = w.cur[:0]
	w.curCount = 0
	for i := range w.chain {
		w.chain[i] = [NumSegments]uint64{}
	}
	return nil
}

// Count returns the number of accesses added so far.
func (w *BlockWriter) Count() int { return w.n }

// Finish seals the final partial block and returns the immutable store.
// The writer must not be used afterwards.
func (w *BlockWriter) Finish() (*Compressed, error) {
	if err := w.flushBlock(); err != nil {
		return nil, err
	}
	c := &Compressed{blocks: w.blocks, buf: w.buf, n: w.n, blockLen: w.blockLen}
	if w.spill != nil {
		c.spill = w.spill
		c.buf = nil
	}
	return c, nil
}

// Compress block-compresses a slice of accesses in memory (0 block length
// selects DefaultBlockLen). Convenience for tests and one-shot callers; the
// streaming paths use a BlockWriter directly.
func Compress(accesses []Access, blockLen int) (*Compressed, error) {
	w := NewBlockWriter(blockLen, nil)
	for _, a := range accesses {
		if err := w.Add(a); err != nil {
			return nil, err
		}
	}
	return w.Finish()
}

// Len returns the number of accesses in the recording.
func (c *Compressed) Len() int { return c.n }

// Blocks returns the number of compressed blocks.
func (c *Compressed) Blocks() int { return len(c.blocks) }

// BlockLen returns the accesses-per-block geometry.
func (c *Compressed) BlockLen() int { return c.blockLen }

// StoredBytes implements Recording: total encoded bytes (on disk when
// spilled, in memory otherwise).
func (c *Compressed) StoredBytes() int64 {
	var total int64
	for _, bm := range c.blocks {
		total += int64(bm.size)
	}
	return total
}

// Spilled reports whether block bytes live in a SpillFile rather than RAM.
func (c *Compressed) Spilled() bool { return c.spill != nil }

// Cursor implements Recording.
func (c *Compressed) Cursor() Cursor { return c.View() }

// View returns a fresh decoding cursor positioned at the start. Views are
// independent and may run concurrently (the store is immutable and spill
// reads are offset-addressed); a single view is not concurrent-safe.
func (c *Compressed) View() *CompressedView {
	return &CompressedView{c: c, win: make([]Access, 0, c.blockLen)}
}

// CompressedView decodes a Compressed recording block by block into one
// reused window. It implements both Stream and BatchStream; NextBatch hands
// out the decode window itself, so the BatchStream lifetime contract applies
// with teeth — the next NextBatch call physically overwrites the previous
// batch's storage (the searchlint batchalias analyzer polices retention).
type CompressedView struct {
	c      *Compressed
	block  int
	win    []Access
	winPos int
	rbuf   []byte // reused spill read buffer
	err    error

	// Decode-side delta chains, cleared per block like the writer's.
	chain [256][NumSegments]uint64
}

// Err returns the first decode error encountered (wrapping ErrBadTrace for
// corrupt block bytes), or nil.
func (v *CompressedView) Err() error { return v.err }

// Len returns the total number of accesses in the underlying recording.
func (v *CompressedView) Len() int { return v.c.n }

// Rewind resets the cursor to the beginning of the recording. A decode
// error is cleared; re-reading will re-detect corruption at the same block.
func (v *CompressedView) Rewind() {
	v.block = 0
	v.win = v.win[:0]
	v.winPos = 0
	v.err = nil
}

// Next implements Stream over the decoded window.
func (v *CompressedView) Next(a *Access) bool {
	if v.winPos >= len(v.win) {
		if !v.decodeNextBlock() {
			return false
		}
	}
	*a = v.win[v.winPos]
	v.winPos++
	return true
}

// NextBatch implements BatchStream: the not-yet-consumed remainder of the
// current decoded window, or the next block decoded into the reused window.
// The returned slice is only valid until the next NextBatch/Next call.
//
//lint:hot
func (v *CompressedView) NextBatch() []Access {
	if v.winPos >= len(v.win) {
		if !v.decodeNextBlock() {
			return nil
		}
	}
	out := v.win[v.winPos:len(v.win):len(v.win)]
	v.winPos = len(v.win)
	return out
}

// decodeNextBlock decodes the next non-empty block into the reused window.
// It returns false at end of recording or on a decode error (see Err).
// Zero-count blocks (never produced by BlockWriter, but representable) are
// validated and skipped — surfacing an empty window would read as a
// premature end of stream to NextBatch consumers.
func (v *CompressedView) decodeNextBlock() bool {
	for !v.decodeBlock() {
		if v.err != nil || v.block >= len(v.c.blocks) {
			return false
		}
	}
	return true
}

// decodeBlock decodes the next block; it reports whether the window now
// holds at least one access.
func (v *CompressedView) decodeBlock() bool {
	if v.err != nil || v.block >= len(v.c.blocks) {
		return false
	}
	bm := v.c.blocks[v.block]
	var data []byte
	if v.c.spill != nil {
		if cap(v.rbuf) < int(bm.size) {
			//lint:ignore hotalloc one-time warmup: the read buffer grows to the largest spilled block once per cursor and is reused; cursors are themselves reused across replays
			v.rbuf = make([]byte, bm.size)
		}
		v.rbuf = v.rbuf[:bm.size]
		if _, err := v.c.spill.ReadAt(v.rbuf, bm.off); err != nil {
			v.err = fmt.Errorf("%w: reading spilled block %d: %v", ErrBadTrace, v.block, err)
			return false
		}
		data = v.rbuf
	} else {
		data = v.c.buf[bm.off : bm.off+int64(bm.size)]
	}
	v.block++
	for i := range v.chain {
		v.chain[i] = [NumSegments]uint64{}
	}

	if cap(v.win) < int(bm.count) {
		//lint:ignore hotalloc one-time warmup: the decode window grows to the largest block once per cursor and is reused; cursors are themselves reused across replays
		v.win = make([]Access, bm.count)
	}
	win := v.win[:bm.count]
	pos := 0
	// Hot decode loop. A record is at most 1 (meta) + 1 (thread escape) +
	// 10 (size uvarint) + 10 (delta svarint) bytes — the size value is capped
	// at MaxUint16, but uvarintAt accepts non-canonical 10-byte encodings of
	// small values, so the guard must budget the full varint width or the
	// unchecked delta reads below can run past the block. When at least that
	// much input remains, the fast path decodes the dominant 1-2 byte varint
	// shapes without per-byte bounds tests. The tail of the block (and any
	// corrupt input the guard can't vouch for) goes through the fully checked
	// decodeRecordSlow.
	const maxRecordLen = 22
	packed := packedStore
	for i := range win {
		if len(data)-pos < maxRecordLen {
			n, ok := v.decodeRecordSlow(data, pos, win, i)
			if !ok {
				return false
			}
			pos = n
			continue
		}
		meta := data[pos]
		pos++
		kind := Kind(meta >> 6)
		if kind >= NumKinds {
			v.err = fmt.Errorf("%w: invalid kind %d", ErrBadTrace, kind)
			return false
		}
		seg := Segment(meta >> 4 & 0x03)
		thread := meta & 0x0f
		if thread == threadEscape {
			thread = data[pos]
			pos++
		}
		var size uint64
		if b := data[pos]; b < 0x80 {
			size = uint64(b)
			pos++
		} else {
			var ok bool
			size, pos, ok = uvarintAt(data, pos)
			if !ok || size > math.MaxUint16 {
				v.err = fmt.Errorf("%w: bad size at record %d", ErrBadTrace, i)
				return false
			}
		}
		var udelta uint64
		if b := data[pos]; b < 0x80 {
			udelta = uint64(b)
			pos++
		} else if b2 := data[pos+1]; b2 < 0x80 {
			udelta = uint64(b&0x7f) | uint64(b2)<<7
			pos += 2
		} else if b3 := data[pos+2]; b3 < 0x80 {
			udelta = uint64(b&0x7f) | uint64(b2&0x7f)<<7 | uint64(b3)<<14
			pos += 3
		} else if b4 := data[pos+3]; b4 < 0x80 {
			udelta = uint64(b&0x7f) | uint64(b2&0x7f)<<7 | uint64(b3&0x7f)<<14 | uint64(b4)<<21
			pos += 4
		} else {
			var ok bool
			udelta, pos, ok = uvarintAt(data, pos)
			if !ok {
				v.err = fmt.Errorf("%w: bad addr delta at record %d", ErrBadTrace, i)
				return false
			}
		}
		delta := int64(udelta>>1) ^ -int64(udelta&1) // branchless zigzag
		addr := v.chain[thread][seg] + uint64(delta)
		v.chain[thread][seg] = addr
		if packed {
			// Two 8-byte stores instead of five narrow field stores: the
			// composite-literal form costs ~5x as much per record here
			// (store-buffer pressure from the byte/word stores dominates the
			// whole decode loop).
			p := (*[2]uint64)(unsafe.Pointer(&win[i]))
			p[0] = addr
			p[1] = size | uint64(seg)<<16 | uint64(kind)<<24 | uint64(thread)<<32
		} else {
			win[i] = Access{Addr: addr, Size: uint16(size), Seg: seg, Kind: kind, Thread: thread}
		}
	}
	if pos != len(data) {
		v.err = fmt.Errorf("%w: %d trailing bytes after block", ErrBadTrace, len(data)-pos)
		return false
	}
	v.win = win
	v.winPos = 0
	return len(win) > 0
}

// decodeRecordSlow is the fully bounds-checked record decoder used near the
// end of a block's bytes (or whenever the fast path's length guard fails).
// It decodes record i into win and returns the new read position; on
// malformed input it sets v.err and reports ok=false.
func (v *CompressedView) decodeRecordSlow(data []byte, pos int, win []Access, i int) (int, bool) {
	if pos >= len(data) {
		v.err = fmt.Errorf("%w: block truncated at record %d", ErrBadTrace, i)
		return pos, false
	}
	meta := data[pos]
	pos++
	kind := Kind(meta >> 6)
	if kind >= NumKinds {
		v.err = fmt.Errorf("%w: invalid kind %d", ErrBadTrace, kind)
		return pos, false
	}
	seg := Segment(meta >> 4 & 0x03)
	thread := meta & 0x0f
	if thread == threadEscape {
		if pos >= len(data) {
			v.err = fmt.Errorf("%w: block truncated in thread byte", ErrBadTrace)
			return pos, false
		}
		thread = data[pos]
		pos++
	}
	size, next, ok := uvarintAt(data, pos)
	if !ok || size > math.MaxUint16 {
		v.err = fmt.Errorf("%w: bad size at record %d", ErrBadTrace, i)
		return pos, false
	}
	pos = next
	udelta, next, ok := uvarintAt(data, pos)
	if !ok {
		v.err = fmt.Errorf("%w: bad addr delta at record %d", ErrBadTrace, i)
		return pos, false
	}
	pos = next
	delta := int64(udelta >> 1)
	if udelta&1 != 0 {
		delta = ^delta
	}
	addr := v.chain[thread][seg] + uint64(delta)
	v.chain[thread][seg] = addr
	win[i] = Access{Addr: addr, Size: uint16(size), Seg: seg, Kind: kind, Thread: thread}
	return pos, true
}

// packedStore reports whether the decode loop may write an Access as two
// aligned 8-byte words: the host must be little-endian and Access must have
// the expected 16-byte layout (Addr at 0; Size/Seg/Kind/Thread packed at
// 8/10/11/12). Anything else falls back to ordinary field stores.
var packedStore = func() bool {
	var a Access
	if unsafe.Sizeof(a) != 16 ||
		unsafe.Offsetof(a.Addr) != 0 ||
		unsafe.Offsetof(a.Size) != 8 ||
		unsafe.Offsetof(a.Seg) != 10 ||
		unsafe.Offsetof(a.Kind) != 11 ||
		unsafe.Offsetof(a.Thread) != 12 {
		return false
	}
	x := uint32(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// uvarintAt decodes a uvarint from data at pos without an io.Reader in the
// way; it returns ok=false on truncation or 64-bit overflow.
func uvarintAt(data []byte, pos int) (u uint64, next int, ok bool) {
	var shift uint
	for pos < len(data) {
		b := data[pos]
		pos++
		if b < 0x80 {
			if shift == 63 && b > 1 {
				return 0, pos, false
			}
			return u | uint64(b)<<shift, pos, true
		}
		u |= uint64(b&0x7f) << shift
		shift += 7
		if shift >= 64 {
			return 0, pos, false
		}
	}
	return 0, pos, false
}
