package trace

import (
	"sync"
	"testing"
)

func TestSharedViewBasics(t *testing.T) {
	sh := NewShared([]Access{{Addr: 1}, {Addr: 2}, {Addr: 3}})
	if sh.Len() != 3 {
		t.Fatalf("Len = %d, want 3", sh.Len())
	}
	if sh.At(1).Addr != 2 {
		t.Fatalf("At(1).Addr = %d, want 2", sh.At(1).Addr)
	}
	v := v2addrs(sh.View())
	if len(v) != 3 || v[0] != 1 || v[2] != 3 {
		t.Fatalf("view yielded %v", v)
	}
}

func v2addrs(s Stream) []uint64 {
	var out []uint64
	var a Access
	for s.Next(&a) {
		out = append(out, a.Addr)
	}
	return out
}

func TestSharedViewRewind(t *testing.T) {
	sh := NewShared([]Access{{Addr: 1}, {Addr: 2}})
	v := sh.View()
	if v.Len() != 2 {
		t.Fatalf("view Len = %d, want 2", v.Len())
	}
	first := v2addrs(v)
	var a Access
	if v.Next(&a) {
		t.Fatal("exhausted view yielded an access")
	}
	v.Rewind()
	second := v2addrs(v)
	if len(first) != 2 || len(second) != 2 || first[0] != second[0] || first[1] != second[1] {
		t.Fatalf("rewind changed the stream: %v vs %v", first, second)
	}
}

func TestSharedEmpty(t *testing.T) {
	sh := NewShared(nil)
	if sh.Len() != 0 {
		t.Fatalf("empty Len = %d", sh.Len())
	}
	var a Access
	if sh.View().Next(&a) {
		t.Fatal("empty view yielded an access")
	}
}

// TestSharedConcurrentViews pins the read-only sharing contract: many
// goroutines draining independent views over one Shared buffer observe the
// identical sequence (run under -race in CI).
func TestSharedConcurrentViews(t *testing.T) {
	accs := make([]Access, 1000)
	for i := range accs {
		accs[i] = Access{Addr: uint64(i), Seg: Segment(i % NumSegments)}
	}
	sh := NewShared(accs)
	var wg sync.WaitGroup
	errs := make([]string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v := sh.View()
			var a Access
			for i := 0; v.Next(&a); i++ {
				if a.Addr != uint64(i) {
					errs[g] = a.String()
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, e := range errs {
		if e != "" {
			t.Fatalf("goroutine %d observed out-of-order access %s", g, e)
		}
	}
}

// TestInterleaveStreamEndsMidBurst is the regression test for the suspected
// truncated-burst bug: when a stream exhausts partway through its burst, the
// successor stream must start a full, fresh burst (inBurst reset on removal)
// and round-robin order must continue from the successor.
func TestInterleaveStreamEndsMidBurst(t *testing.T) {
	// burst=3; A has 8 accesses (full bursts), B dies after 1 access of its
	// first burst, C has 6. After B's removal mid-burst, C must receive a
	// complete 3-access burst, not the 2 remaining from B's truncated one.
	a := NewSliceStream([]Access{{Addr: 10}, {Addr: 11}, {Addr: 12}, {Addr: 13}, {Addr: 14}, {Addr: 15}, {Addr: 16}, {Addr: 17}})
	b := NewSliceStream([]Access{{Addr: 20}})
	c := NewSliceStream([]Access{{Addr: 30}, {Addr: 31}, {Addr: 32}, {Addr: 33}, {Addr: 34}, {Addr: 35}})
	got := v2addrs(Interleave(3, a, b, c))
	want := []uint64{
		10, 11, 12, // A burst
		20,         // B yields one, exhausts mid-burst, drops out
		30, 31, 32, // C gets a FULL fresh burst
		13, 14, 15, // back to A
		33, 34, 35, // C
		16, 17, // A drains
	}
	if len(got) != len(want) {
		t.Fatalf("interleave yielded %d accesses, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pos %d: got %d, want %d (full: %v)", i, got[i], want[i], got)
		}
	}
}

// TestInterleaveLastStreamEndsMidBurst covers removal at the tail of the
// live set, where the cursor must wrap to the first stream with a full burst.
func TestInterleaveLastStreamEndsMidBurst(t *testing.T) {
	a := NewSliceStream([]Access{{Addr: 10}, {Addr: 11}, {Addr: 12}, {Addr: 13}})
	b := NewSliceStream([]Access{{Addr: 20}})
	got := v2addrs(Interleave(2, a, b))
	want := []uint64{10, 11, 20, 12, 13}
	if len(got) != len(want) {
		t.Fatalf("interleave yielded %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pos %d: got %v, want %v", i, got, want)
		}
	}
}
