//go:build !race

// Allocation-regression oracles for the //lint:hot trace decode kernels
// (View.NextBatch, CompressedView.NextBatch). The searchlint hotalloc
// analyzer proves these allocation-free statically; AllocsPerRun pins the
// property dynamically. AllocsPerRun's warm-up call absorbs the documented
// one-time lazy growth (decode window, spill read buffer), so steady state
// must measure exactly zero. Excluded under -race because race
// instrumentation allocates.

package trace

import (
	"os"
	"path/filepath"
	"testing"
)

func requireZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(10, f); avg != 0 {
		t.Errorf("%s: %.1f allocs/op, want 0", name, avg)
	}
}

// drainAll rewinds a cursor and consumes every batch, returning the access
// count so the test can verify the whole recording was actually decoded.
func drainAll(cur Cursor) int {
	cur.Rewind()
	bs := cur.(BatchStream)
	total := 0
	for {
		b := bs.NextBatch()
		if len(b) == 0 {
			return total
		}
		total += len(b)
	}
}

// TestViewNextBatchZeroAlloc pins the flat zero-copy window path.
func TestViewNextBatchZeroAlloc(t *testing.T) {
	in := blockTestTrace(31, 30_000)
	v := NewShared(in).View()
	got := 0
	requireZeroAllocs(t, "flat view", func() {
		got = drainAll(v)
	})
	if got != len(in) {
		t.Fatalf("drained %d accesses, want %d", got, len(in))
	}
}

// TestCompressedNextBatchZeroAlloc pins the block-decode path with blocks
// held in memory.
func TestCompressedNextBatchZeroAlloc(t *testing.T) {
	in := blockTestTrace(32, 30_000)
	c, err := Compress(in, 512)
	if err != nil {
		t.Fatal(err)
	}
	v := c.View()
	got := 0
	requireZeroAllocs(t, "compressed view", func() {
		got = drainAll(v)
	})
	if got != len(in) {
		t.Fatalf("drained %d accesses, want %d", got, len(in))
	}
	if v.Err() != nil {
		t.Fatalf("decode error: %v", v.Err())
	}
}

// TestSpilledNextBatchZeroAlloc pins the spill-to-disk decode path: block
// bytes are read back from a real file into the view's reused buffer, so
// steady-state replay performs file reads but no heap allocation.
func TestSpilledNextBatchZeroAlloc(t *testing.T) {
	in := blockTestTrace(33, 30_000)
	f, err := os.Create(filepath.Join(t.TempDir(), "trace.blk"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := NewBlockWriter(512, f)
	for _, a := range in {
		if err := w.Add(a); err != nil {
			t.Fatal(err)
		}
	}
	c, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !c.Spilled() {
		t.Fatal("recording not spilled")
	}
	v := c.View()
	got := 0
	requireZeroAllocs(t, "spilled view", func() {
		got = drainAll(v)
	})
	if got != len(in) {
		t.Fatalf("drained %d accesses, want %d", got, len(in))
	}
	if v.Err() != nil {
		t.Fatalf("decode error: %v", v.Err())
	}
}
