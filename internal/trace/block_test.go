package trace

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"searchmem/internal/stats"
)

// blockTestTrace synthesizes a trace mixing sequential scans (the
// compression-friendly case), random jumps, negative deltas, every segment
// and kind, and the full uint8 thread range (exercising the escape byte).
func blockTestTrace(seed uint64, n int) []Access {
	rng := stats.NewRNG(seed)
	accs := make([]Access, 0, n)
	seq := uint64(1 << 30)
	for i := 0; i < n; i++ {
		var addr uint64
		switch rng.Intn(3) {
		case 0: // sequential scan
			seq += 64
			addr = seq
		case 1: // hot reuse
			addr = uint64(rng.Intn(1 << 12))
		default: // cold jump, may produce huge or negative deltas
			addr = rng.Uint64()
		}
		thread := uint8(rng.Intn(256))
		if i%5 == 0 {
			thread = uint8(rng.Intn(4)) // keep a few dense chains
		}
		accs = append(accs, Access{
			Addr:   addr,
			Size:   uint16(1 + rng.Intn(256)),
			Seg:    Segment(rng.Intn(NumSegments)),
			Kind:   Kind(rng.Intn(NumKinds)),
			Thread: thread,
		})
	}
	return accs
}

// drainCursor collects a cursor's scalar stream.
func drainCursor(c Cursor) []Access {
	var out []Access
	var a Access
	for c.Next(&a) {
		out = append(out, a)
	}
	return out
}

// drainBatched collects a cursor's batched stream (copying each window).
func drainBatched(c Cursor) []Access {
	var out []Access
	for {
		b := c.NextBatch()
		if len(b) == 0 {
			return out
		}
		out = append(out, b...)
	}
}

func requireEqual(t *testing.T, got, want []Access, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d accesses, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: access %d: got %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestCompressedRoundTripIdentity: compress → decode must be identity, via
// both the scalar and batched cursor paths, at block sizes that exercise
// single-access blocks, non-dividing sizes, and whole-trace blocks.
func TestCompressedRoundTripIdentity(t *testing.T) {
	in := blockTestTrace(11, 10_000)
	for _, blockLen := range []int{1, 3, 64, 1000, 8192, 20_000} {
		c, err := Compress(in, blockLen)
		if err != nil {
			t.Fatalf("blockLen %d: %v", blockLen, err)
		}
		if c.Len() != len(in) {
			t.Fatalf("blockLen %d: Len = %d, want %d", blockLen, c.Len(), len(in))
		}
		wantBlocks := (len(in) + blockLen - 1) / blockLen
		if c.Blocks() != wantBlocks {
			t.Fatalf("blockLen %d: Blocks = %d, want %d", blockLen, c.Blocks(), wantBlocks)
		}
		requireEqual(t, drainCursor(c.Cursor()), in, fmt.Sprintf("scalar blockLen=%d", blockLen))
		requireEqual(t, drainBatched(c.Cursor()), in, fmt.Sprintf("batched blockLen=%d", blockLen))

		// Rewind must replay identically (per-block bases leave no state).
		v := c.View()
		drainBatched(v)
		v.Rewind()
		requireEqual(t, drainBatched(v), in, fmt.Sprintf("rewind blockLen=%d", blockLen))
		if v.Err() != nil {
			t.Fatalf("blockLen %d: Err = %v", blockLen, v.Err())
		}
	}
}

// TestCompressedMixedCursor interleaves scalar and batched reads on one
// cursor: they share a position, so the union must be the whole trace.
func TestCompressedMixedCursor(t *testing.T) {
	in := blockTestTrace(7, 3_000)
	c, err := Compress(in, 128)
	if err != nil {
		t.Fatal(err)
	}
	v := c.View()
	var out []Access
	var a Access
	for i := 0; ; i++ {
		if i%2 == 0 {
			if !v.Next(&a) {
				break
			}
			out = append(out, a)
		} else {
			b := v.NextBatch()
			if len(b) == 0 {
				break
			}
			out = append(out, b...)
		}
	}
	requireEqual(t, out, in, "mixed scalar/batched")
}

// TestCompressedSpillRoundTrip exercises the spill-to-disk path end to end
// through a real file: identity decode, concurrent-safe offset reads, and
// bounded writer state.
func TestCompressedSpillRoundTrip(t *testing.T) {
	in := blockTestTrace(23, 25_000)
	f, err := os.Create(filepath.Join(t.TempDir(), "trace.blk"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := NewBlockWriter(512, f)
	for _, a := range in {
		if err := w.Add(a); err != nil {
			t.Fatal(err)
		}
	}
	c, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !c.Spilled() {
		t.Fatal("recording not marked spilled")
	}
	if st, err := f.Stat(); err != nil || st.Size() != c.StoredBytes() {
		t.Fatalf("spill file size %d, StoredBytes %d (err %v)", st.Size(), c.StoredBytes(), err)
	}
	requireEqual(t, drainBatched(c.Cursor()), in, "spilled batched")
	requireEqual(t, drainCursor(c.Cursor()), in, "spilled scalar")

	// Two interleaved views must not disturb each other (offset reads).
	v1, v2 := c.View(), c.View()
	var got1, got2 []Access
	for {
		b1, b2 := v1.NextBatch(), v2.NextBatch()
		if len(b1) == 0 && len(b2) == 0 {
			break
		}
		got1 = append(got1, b1...)
		got2 = append(got2, b2...)
	}
	requireEqual(t, got1, in, "interleaved view 1")
	requireEqual(t, got2, in, "interleaved view 2")
}

// TestCompressedCompression pins the compression win on the access pattern
// that motivates the store: sequential scans must stay near 3 bytes/access,
// ~5x below the 16-byte flat representation.
func TestCompressedCompression(t *testing.T) {
	const n = 100_000
	in := make([]Access, n)
	for i := range in {
		in[i] = Access{Addr: uint64(i) * 64, Size: 64, Seg: Shard, Kind: Read}
	}
	c, err := Compress(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	perAccess := float64(c.StoredBytes()) / n
	if perAccess > 4.25 {
		t.Fatalf("sequential trace uses %.2f bytes/access, want <= 4.25", perAccess)
	}
	flat := NewShared(append([]Access(nil), in...))
	if float64(c.StoredBytes()) > float64(flat.StoredBytes())/3.5 {
		t.Fatalf("compressed %d B vs flat %d B: less than 3.5x win", c.StoredBytes(), flat.StoredBytes())
	}
}

// TestCompressedWindowReuse pins the decode-window semantics the batchalias
// lint polices: the slice NextBatch returns is physically overwritten by the
// next NextBatch call.
func TestCompressedWindowReuse(t *testing.T) {
	in := blockTestTrace(3, 300)
	c, err := Compress(in, 100)
	if err != nil {
		t.Fatal(err)
	}
	v := c.View()
	b1 := v.NextBatch()
	first := b1[0]
	_ = v.NextBatch()
	if b1[0] == first && b1[0] == in[0] && in[0] == in[100] {
		t.Skip("degenerate trace") // never happens with the seeded generator
	}
	if b1[0] != in[100] {
		t.Fatalf("window not reused: b1[0] = %+v after second NextBatch, want %+v", b1[0], in[100])
	}
}

// TestCompressedCorruptBlocks: flipped, truncated, and extended block bytes
// must surface ErrBadTrace (never panic, never silently decode).
func TestCompressedCorruptBlocks(t *testing.T) {
	in := blockTestTrace(5, 500)
	c, err := Compress(in, 100)
	if err != nil {
		t.Fatal(err)
	}
	drain := func(c *Compressed) error {
		v := c.View()
		for v.NextBatch() != nil {
		}
		return v.Err()
	}
	corrupt := func(mutate func(d *Compressed)) error {
		d := &Compressed{
			blocks:   append([]blockMeta(nil), c.blocks...),
			buf:      append([]byte(nil), c.buf...),
			n:        c.n,
			blockLen: c.blockLen,
		}
		mutate(d)
		return drain(d)
	}

	if err := corrupt(func(d *Compressed) { d.blocks[2].size-- }); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("truncated block: err = %v, want ErrBadTrace", err)
	}
	if err := corrupt(func(d *Compressed) { d.blocks[0].count++ }); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("overlong count: err = %v, want ErrBadTrace", err)
	}
	if err := corrupt(func(d *Compressed) { d.blocks[0].count-- }); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("trailing bytes: err = %v, want ErrBadTrace", err)
	}
	// An invalid kind (0b11) in the first meta byte of block 0.
	if err := corrupt(func(d *Compressed) { d.buf[d.blocks[0].off] |= 0xc0 }); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("invalid kind: err = %v, want ErrBadTrace", err)
	}
}

// TestCompressedSpillReadError: a spill file that fails to read back (e.g.
// truncated on disk) must surface ErrBadTrace.
func TestCompressedSpillReadError(t *testing.T) {
	in := blockTestTrace(9, 1_000)
	var short shortReaderAt
	w := NewBlockWriter(100, &short)
	for _, a := range in {
		if err := w.Add(a); err != nil {
			t.Fatal(err)
		}
	}
	c, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	short.limit = int(c.StoredBytes()) / 2 // second half unreadable
	v := c.View()
	for v.NextBatch() != nil {
	}
	if !errors.Is(v.Err(), ErrBadTrace) {
		t.Fatalf("short spill read: Err = %v, want ErrBadTrace", v.Err())
	}
}

// shortReaderAt stores writes in memory but refuses reads past limit.
type shortReaderAt struct {
	data  []byte
	limit int
}

func (s *shortReaderAt) WriteAt(p []byte, off int64) (int, error) {
	end := int(off) + len(p)
	if end > len(s.data) {
		s.data = append(s.data, make([]byte, end-len(s.data))...)
	}
	copy(s.data[off:], p)
	return len(p), nil
}

func (s *shortReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if int(off)+len(p) > s.limit {
		return 0, io.ErrUnexpectedEOF
	}
	return copy(p, s.data[off:]), nil
}

// TestBlockWriterRejectsInvalid mirrors the file-codec validation.
func TestBlockWriterRejectsInvalid(t *testing.T) {
	w := NewBlockWriter(0, nil)
	if err := w.Add(Access{Seg: Segment(9)}); err == nil {
		t.Fatal("invalid segment accepted")
	}
	if err := w.Add(Access{Kind: Kind(9)}); err == nil {
		t.Fatal("invalid kind accepted")
	}
	// Unlike the file codec, any uint8 thread is representable.
	if err := w.Add(Access{Thread: 255, Size: 1}); err != nil {
		t.Fatalf("Thread=255 rejected: %v", err)
	}
}

// TestRecordingInterfaces pins that both stores satisfy Recording and agree
// on the stream they expose.
func TestRecordingInterfaces(t *testing.T) {
	in := blockTestTrace(13, 2_000)
	var recs []Recording
	sh := NewShared(append([]Access(nil), in...))
	co, err := Compress(in, 256)
	if err != nil {
		t.Fatal(err)
	}
	recs = append(recs, sh, co)
	for i, r := range recs {
		if r.Len() != len(in) {
			t.Fatalf("recording %d: Len = %d, want %d", i, r.Len(), len(in))
		}
		requireEqual(t, drainBatched(r.Cursor()), in, fmt.Sprintf("recording %d batched", i))
		requireEqual(t, drainCursor(r.Cursor()), in, fmt.Sprintf("recording %d scalar", i))
		if r.StoredBytes() <= 0 {
			t.Fatalf("recording %d: StoredBytes = %d", i, r.StoredBytes())
		}
	}
	if co.StoredBytes() >= sh.StoredBytes() {
		t.Fatalf("compressed (%d B) not smaller than flat (%d B)", co.StoredBytes(), sh.StoredBytes())
	}
}
