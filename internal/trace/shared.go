package trace

import "unsafe"

// Recording is an immutable captured access trace that any number of
// concurrent readers replay through independent cursors. Two stores
// implement it: Shared (flat 16 B/access, zero-copy windows, fastest) and
// Compressed (delta+varint blocks decoded into a reused window, bounded
// memory — see block.go). The workload Replayer records into one or the
// other; every consumer downstream sees only this interface.
type Recording interface {
	// Len returns the number of accesses in the recording.
	Len() int
	// Cursor returns a fresh independent read cursor at the start.
	Cursor() Cursor
	// StoredBytes returns the bytes the recording occupies (flat in-memory
	// size for Shared; encoded size — possibly on disk — for Compressed).
	StoredBytes() int64
}

// Cursor reads a Recording from the beginning through either the scalar
// Stream or the batched BatchStream interface; the two share one position,
// so mixing them on a single cursor is coherent. Batches follow the
// BatchStream lifetime contract. A cursor is not safe for concurrent use;
// distinct cursors over one Recording are independent.
type Cursor interface {
	Stream
	BatchStream
	Rewind()
	Len() int
}

// Shared is an immutable in-memory access trace intended to be synthesized
// once and then replayed read-only by many consumers — the memoization layer
// behind the capacity-sweep experiments, which evaluate dozens of cache
// configurations over the same leaf trace (the paper's own methodology: one
// Pin capture, many simulator replays).
//
// Immutability contract: NewShared takes ownership of the slice; the caller
// must not retain or mutate it afterwards. Shared itself never mutates the
// buffer, so any number of Views may iterate it concurrently from different
// goroutines without synchronization.
type Shared struct {
	accesses []Access
}

// NewShared wraps accesses as an immutable shared trace. Ownership of the
// slice transfers to the Shared; callers must drop their reference.
func NewShared(accesses []Access) *Shared {
	return &Shared{accesses: accesses}
}

// Len returns the number of accesses in the trace.
func (s *Shared) Len() int { return len(s.accesses) }

// At returns the i-th access.
func (s *Shared) At(i int) Access { return s.accesses[i] }

// Slice returns the half-open window [lo, hi) of the trace without copying.
// The returned slice aliases the immutable recording: it must be treated as
// read-only (mutating it would corrupt every consumer of the trace) and its
// capacity is clamped so appends cannot scribble past hi. The batched
// replay path (workload.Replayer) cuts the recording into such windows.
func (s *Shared) Slice(lo, hi int) []Access { return s.accesses[lo:hi:hi] }

// View returns a new rewindable Stream over the shared buffer. Creating a
// view is allocation-cheap (no copy); each view holds its own cursor, so
// concurrent sweep points each take their own.
func (s *Shared) View() *View { return &View{s: s} }

// Cursor implements Recording.
func (s *Shared) Cursor() Cursor { return s.View() }

// StoredBytes implements Recording: the flat in-memory footprint.
func (s *Shared) StoredBytes() int64 {
	return int64(len(s.accesses)) * int64(unsafe.Sizeof(Access{}))
}

// View is a cursor over a Shared trace. It implements Stream and can be
// rewound to the start for another pass. A View is not safe for concurrent
// use, but distinct Views over the same Shared are independent.
type View struct {
	s   *Shared
	pos int
}

// Next implements Stream.
func (v *View) Next(a *Access) bool {
	if v.pos >= len(v.s.accesses) {
		return false
	}
	*a = v.s.accesses[v.pos]
	v.pos++
	return true
}

// NextBatch implements BatchStream: a zero-copy window of up to
// DefaultBatchSize accesses over the shared immutable buffer. No copy is
// made; the BatchStream lifetime contract applies (callers must not mutate
// or retain the window past the next call).
//
//lint:hot
func (v *View) NextBatch() []Access {
	if v.pos >= len(v.s.accesses) {
		return nil
	}
	end := v.pos + DefaultBatchSize
	if end > len(v.s.accesses) {
		end = len(v.s.accesses)
	}
	out := v.s.accesses[v.pos:end:end]
	v.pos = end
	return out
}

// Rewind resets the cursor to the beginning of the trace.
func (v *View) Rewind() { v.pos = 0 }

// Len returns the total number of accesses in the underlying trace.
func (v *View) Len() int { return len(v.s.accesses) }
