package trace

import (
	"testing"
	"testing/quick"

	"searchmem/internal/stats"
)

func TestSegmentStrings(t *testing.T) {
	cases := map[Segment]string{Code: "code", Heap: "heap", Shard: "shard", Stack: "stack", Segment(9): "segment(9)"}
	for seg, want := range cases {
		if seg.String() != want {
			t.Errorf("%d.String() = %q, want %q", seg, seg.String(), want)
		}
	}
}

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{Fetch: "fetch", Read: "read", Write: "write", Kind(7): "kind(7)"}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestSliceStream(t *testing.T) {
	in := []Access{
		{Addr: 1, Size: 4, Seg: Heap, Kind: Read},
		{Addr: 2, Size: 8, Seg: Shard, Kind: Write},
	}
	s := NewSliceStream(in)
	out := Collect(s)
	if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Fatalf("round trip failed: %v", out)
	}
	var a Access
	if s.Next(&a) {
		t.Fatal("exhausted stream returned true")
	}
	s.Reset()
	if !s.Next(&a) || a != in[0] {
		t.Fatal("Reset did not rewind")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestLimit(t *testing.T) {
	in := make([]Access, 10)
	for i := range in {
		in[i].Addr = uint64(i)
	}
	out := Collect(Limit(NewSliceStream(in), 3))
	if len(out) != 3 {
		t.Fatalf("Limit yielded %d", len(out))
	}
	out = Collect(Limit(NewSliceStream(in), 100))
	if len(out) != 10 {
		t.Fatalf("over-limit yielded %d", len(out))
	}
	out = Collect(Limit(NewSliceStream(in), 0))
	if len(out) != 0 {
		t.Fatalf("zero limit yielded %d", len(out))
	}
}

func TestFilterSegment(t *testing.T) {
	in := []Access{
		{Addr: 1, Seg: Heap}, {Addr: 2, Seg: Shard}, {Addr: 3, Seg: Heap}, {Addr: 4, Seg: Code},
	}
	out := Collect(FilterSegment(NewSliceStream(in), Heap))
	if len(out) != 2 || out[0].Addr != 1 || out[1].Addr != 3 {
		t.Fatalf("filter: %v", out)
	}
}

func TestInterleaveRoundRobin(t *testing.T) {
	a := NewSliceStream([]Access{{Addr: 10}, {Addr: 11}, {Addr: 12}})
	b := NewSliceStream([]Access{{Addr: 20}, {Addr: 21}})
	out := Collect(Interleave(1, a, b))
	want := []uint64{10, 20, 11, 21, 12}
	if len(out) != len(want) {
		t.Fatalf("interleave length %d, want %d", len(out), len(want))
	}
	for i, w := range want {
		if out[i].Addr != w {
			t.Fatalf("pos %d: got %d, want %d (full: %v)", i, out[i].Addr, w, out)
		}
	}
}

func TestInterleaveBurst(t *testing.T) {
	a := NewSliceStream([]Access{{Addr: 10}, {Addr: 11}, {Addr: 12}, {Addr: 13}})
	b := NewSliceStream([]Access{{Addr: 20}, {Addr: 21}})
	out := Collect(Interleave(2, a, b))
	want := []uint64{10, 11, 20, 21, 12, 13}
	for i, w := range want {
		if out[i].Addr != w {
			t.Fatalf("pos %d: got %v", i, out)
		}
	}
}

func TestInterleaveEmptyAndZeroBurst(t *testing.T) {
	out := Collect(Interleave(0, NewSliceStream(nil), NewSliceStream([]Access{{Addr: 1}})))
	if len(out) != 1 || out[0].Addr != 1 {
		t.Fatalf("got %v", out)
	}
	if got := Collect(Interleave(1)); len(got) != 0 {
		t.Fatalf("no inputs should be empty, got %v", got)
	}
}

func TestWorkingSetBasics(t *testing.T) {
	ws := NewWorkingSet(64)
	ws.Observe(Access{Addr: 0, Size: 1, Seg: Heap})
	ws.Observe(Access{Addr: 63, Size: 1, Seg: Heap})   // same block
	ws.Observe(Access{Addr: 64, Size: 1, Seg: Heap})   // next block
	ws.Observe(Access{Addr: 100, Size: 1, Seg: Shard}) // other segment
	if got := ws.Bytes(Heap); got != 128 {
		t.Fatalf("heap footprint %d, want 128", got)
	}
	if got := ws.Bytes(Shard); got != 64 {
		t.Fatalf("shard footprint %d, want 64", got)
	}
	if ws.TotalBytes() != 192 {
		t.Fatalf("total %d", ws.TotalBytes())
	}
	if ws.Accesses(Heap) != 3 {
		t.Fatalf("heap accesses %d", ws.Accesses(Heap))
	}
}

func TestWorkingSetSpanningAccess(t *testing.T) {
	ws := NewWorkingSet(64)
	// 8-byte access at block boundary touches two blocks.
	ws.Observe(Access{Addr: 60, Size: 8, Seg: Heap})
	if got := ws.Bytes(Heap); got != 128 {
		t.Fatalf("spanning footprint %d, want 128", got)
	}
	// Zero-size access counts one block.
	ws2 := NewWorkingSet(64)
	ws2.Observe(Access{Addr: 10, Size: 0, Seg: Heap})
	if got := ws2.Bytes(Heap); got != 64 {
		t.Fatalf("zero-size footprint %d, want 64", got)
	}
}

func TestWorkingSetBadBlockSize(t *testing.T) {
	for _, bs := range []int{0, -1, 48} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("block size %d did not panic", bs)
				}
			}()
			NewWorkingSet(bs)
		}()
	}
}

func TestWorkingSetMonotone(t *testing.T) {
	// Property: observing a superset of accesses never shrinks the footprint.
	base := []Access{{Addr: 0, Size: 4, Seg: Heap}, {Addr: 1000, Size: 4, Seg: Heap}}
	extra := append(append([]Access(nil), base...), Access{Addr: 5000, Size: 4, Seg: Heap})
	w1, w2 := NewWorkingSet(64), NewWorkingSet(64)
	w1.Drain(NewSliceStream(base))
	w2.Drain(NewSliceStream(extra))
	if w2.Bytes(Heap) < w1.Bytes(Heap) {
		t.Fatal("footprint shrank with more accesses")
	}
}

func TestSample(t *testing.T) {
	in := make([]Access, 10)
	for i := range in {
		in[i].Addr = uint64(i)
	}
	out := Collect(Sample(NewSliceStream(in), 3))
	want := []uint64{0, 3, 6, 9}
	if len(out) != len(want) {
		t.Fatalf("sampled %d, want %d: %v", len(out), len(want), out)
	}
	for i, w := range want {
		if out[i].Addr != w {
			t.Fatalf("sample %d = %d, want %d", i, out[i].Addr, w)
		}
	}
	// n <= 1 is identity.
	if got := Collect(Sample(NewSliceStream(in), 1)); len(got) != 10 {
		t.Fatalf("identity sample dropped accesses: %d", len(got))
	}
	if got := Collect(Sample(NewSliceStream(nil), 4)); len(got) != 0 {
		t.Fatalf("empty stream sampled %d", len(got))
	}
}

// TestInterleavePreservesMultiset: interleaving never loses, duplicates, or
// alters accesses, for arbitrary splits and burst sizes.
func TestInterleavePreservesMultiset(t *testing.T) {
	prop := func(seed uint64, burst uint8) bool {
		rng := stats.NewRNG(seed)
		var streams []Stream
		want := map[uint64]int{}
		for s := 0; s < 3; s++ {
			n := rng.Intn(40)
			accs := make([]Access, n)
			for i := range accs {
				accs[i] = Access{Addr: rng.Uint64n(1000), Thread: uint8(s)}
				want[accs[i].Addr]++
			}
			streams = append(streams, NewSliceStream(accs))
		}
		out := Collect(Interleave(int(burst%8), streams...))
		got := map[uint64]int{}
		for _, a := range out {
			got[a.Addr]++
		}
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
