package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"testing/quick"

	"searchmem/internal/stats"
)

func roundTrip(t *testing.T, in []Access) []Access {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range in {
		if err := w.Write(a); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != int64(len(in)) {
		t.Fatalf("Count = %d, want %d", w.Count(), len(in))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out := Collect(r)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	return out
}

func TestCodecRoundTripBasic(t *testing.T) {
	in := []Access{
		{Addr: 0x1000, Size: 8, Seg: Heap, Kind: Read, Thread: 0},
		{Addr: 0x1008, Size: 8, Seg: Heap, Kind: Write, Thread: 0},
		{Addr: 0xdeadbeef, Size: 64, Seg: Shard, Kind: Read, Thread: 3},
		{Addr: 0x400000, Size: 4, Seg: Code, Kind: Fetch, Thread: 3},
		{Addr: 0x7fff0000, Size: 16, Seg: Stack, Kind: Write, Thread: 15},
		{Addr: 0x100, Size: 1, Seg: Heap, Kind: Read, Thread: 0}, // negative delta
	}
	out := roundTrip(t, in)
	if len(out) != len(in) {
		t.Fatalf("got %d records, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	rng := stats.NewRNG(77)
	prop := func(n uint8) bool {
		in := make([]Access, int(n)+1)
		for i := range in {
			in[i] = Access{
				Addr:   rng.Uint64() >> 8, // keep within delta-friendly range
				Size:   uint16(1 + rng.Intn(256)),
				Seg:    Segment(rng.Intn(NumSegments)),
				Kind:   Kind(rng.Intn(NumKinds)),
				Thread: uint8(rng.Intn(16)),
			}
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for _, a := range in {
			if err := w.Write(a); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		out := Collect(r)
		if r.Err() != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			if out[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecCompression(t *testing.T) {
	// Sequential scans must compress to a few bytes per record.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	const n = 10000
	for i := 0; i < n; i++ {
		if err := w.Write(Access{Addr: uint64(i) * 64, Size: 64, Seg: Shard, Kind: Read}); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	perRecord := float64(buf.Len()) / n
	if perRecord > 5 {
		t.Fatalf("sequential trace uses %.1f bytes/record, want <= 5", perRecord)
	}
}

func TestCodecRejectsBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("XXXX0000"))); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("bad magic: err = %v", err)
	}
	if _, err := NewReader(bytes.NewReader([]byte("SM"))); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("short header: err = %v", err)
	}
	if _, err := NewReader(bytes.NewReader([]byte{'S', 'M', 'T', 'R', 99, 0, 0, 0})); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("bad version: err = %v", err)
	}
}

func TestCodecTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Access{Addr: 1 << 40, Size: 64, Seg: Heap, Kind: Read})
	w.Flush()
	data := buf.Bytes()
	// Chop the last byte so the final varint is truncated.
	r, err := NewReader(bytes.NewReader(data[:len(data)-1]))
	if err != nil {
		t.Fatal(err)
	}
	var a Access
	for r.Next(&a) {
	}
	if r.Err() == nil {
		t.Fatal("truncated body not detected")
	}
}

func TestWriterRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if err := w.Write(Access{Seg: Segment(9)}); err == nil {
		t.Fatal("invalid segment accepted")
	}
	if err := w.Write(Access{Kind: Kind(9)}); err == nil {
		t.Fatal("invalid kind accepted")
	}
}

// TestWriterRejectsThreadOverflow is the regression test for the silent
// `Thread & 0x0f` mask: an access with Thread >= 16 used to alias thread
// Thread-16's delta chain and decode back with a different thread id.
// The writer must reject it instead, and Write→Read must stay identity for
// every representable thread.
func TestWriterRejectsThreadOverflow(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if err := w.Write(Access{Addr: 0x1000, Size: 8, Seg: Heap, Kind: Read, Thread: 16}); err == nil {
		t.Fatal("Thread=16 accepted; it cannot round-trip through the 4-bit meta field")
	}
	if err := w.Write(Access{Thread: 255, Size: 1}); err == nil {
		t.Fatal("Thread=255 accepted")
	}
	if w.Count() != 0 {
		t.Fatalf("rejected writes counted: Count = %d", w.Count())
	}
	// The boundary thread 15 must still round-trip exactly.
	in := []Access{
		{Addr: 0x10, Size: 1, Seg: Heap, Kind: Read, Thread: 15},
		{Addr: 0x20, Size: 2, Seg: Heap, Kind: Write, Thread: 0},
		{Addr: 0x18, Size: 4, Seg: Heap, Kind: Read, Thread: 15},
	}
	out := roundTrip(t, in)
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
}

// TestReaderRejectsOversizeSize is the regression test for the silent
// uint16(size) narrowing: a record whose size uvarint exceeds 65535 must
// fail with ErrBadTrace instead of decoding to size modulo 65536.
func TestReaderRejectsOversizeSize(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Access{Addr: 0x40, Size: 8, Seg: Heap, Kind: Read})
	w.Flush()
	// Append a hand-built record whose size varint encodes 1<<20.
	rec := []byte{byte(Read)<<6 | byte(Heap)<<4 | 0}
	rec = binary.AppendUvarint(rec, 1<<20)
	rec = binary.AppendVarint(rec, 64)
	buf.Write(rec)

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var a Access
	if !r.Next(&a) {
		t.Fatalf("first (valid) record not decoded: %v", r.Err())
	}
	if r.Next(&a) {
		t.Fatalf("oversize record decoded silently as %+v", a)
	}
	if !errors.Is(r.Err(), ErrBadTrace) {
		t.Fatalf("oversize size: Err = %v, want ErrBadTrace", r.Err())
	}
}

// TestReaderRejectsVarintOverflow: a size varint overflowing 64 bits must
// also surface as ErrBadTrace, not hang or decode.
func TestReaderRejectsVarintOverflow(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Flush()
	body := []byte{byte(Read)<<6 | byte(Heap)<<4 | 0}
	body = append(body, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02) // 11-byte uvarint
	buf.Write(body)
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var a Access
	if r.Next(&a) {
		t.Fatal("overflowing varint decoded")
	}
	if !errors.Is(r.Err(), ErrBadTrace) {
		t.Fatalf("varint overflow: Err = %v, want ErrBadTrace", r.Err())
	}
}
