package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Binary trace file format (little-endian, varint-compressed):
//
//	header:  magic "SMTR" | version u8 | reserved [3]u8
//	record:  meta u8 | size uvarint | addr-delta svarint
//
// meta packs kind (2 bits), segment (2 bits), and thread (4 bits). Address
// deltas are taken per (thread, segment) pair, which makes sequential scans
// (posting lists, instruction fetch) compress to ~2 bytes per access.

var magic = [4]byte{'S', 'M', 'T', 'R'}

const (
	codecVersion = 1
	// maxCodecThread is the largest thread id the 4-bit meta field holds.
	maxCodecThread = 0x0f
)

// ErrBadTrace is returned when a trace file is malformed.
var ErrBadTrace = errors.New("trace: malformed trace file")

// Writer serializes accesses to an io.Writer in the binary trace format.
type Writer struct {
	w    *bufio.Writer
	last [16][NumSegments]uint64 // last addr per (thread low bits, segment)
	n    int64
	buf  []byte
}

// NewWriter returns a Writer that writes the file header immediately.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	header := append(magic[:], codecVersion, 0, 0, 0)
	if _, err := bw.Write(header); err != nil {
		return nil, err
	}
	return &Writer{w: bw, buf: make([]byte, 0, 2*binary.MaxVarintLen64+2)}, nil
}

// Write appends one access record. Accesses that the 8-bit meta field
// cannot represent are rejected: Seg and Kind beyond their enum ranges, and
// Thread >= 16 (the format packs the thread id into 4 bits; silently masking
// it would alias another thread's delta chain and decode back with a
// different thread id — Write→Read would not be identity).
func (w *Writer) Write(a Access) error {
	if a.Seg >= NumSegments || a.Kind >= NumKinds || a.Thread > maxCodecThread {
		return fmt.Errorf("trace: invalid access %v", a)
	}
	tid := a.Thread
	meta := byte(a.Kind)<<6 | byte(a.Seg)<<4 | tid
	delta := int64(a.Addr - w.last[tid][a.Seg])
	w.last[tid][a.Seg] = a.Addr

	w.buf = w.buf[:0]
	w.buf = append(w.buf, meta)
	w.buf = binary.AppendUvarint(w.buf, uint64(a.Size))
	w.buf = binary.AppendVarint(w.buf, delta)
	if _, err := w.w.Write(w.buf); err != nil {
		return err
	}
	w.n++
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() int64 { return w.n }

// Flush flushes buffered data to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader decodes a binary trace file as a Stream.
type Reader struct {
	r    *bufio.Reader
	last [16][NumSegments]uint64
	err  error
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	header := make([]byte, 8)
	if _, err := io.ReadFull(br, header); err != nil {
		return nil, fmt.Errorf("%w: short header", ErrBadTrace)
	}
	if [4]byte(header[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadTrace)
	}
	if header[4] != codecVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, header[4])
	}
	return &Reader{r: br}, nil
}

// Next implements Stream. After it returns false, Err reports whether the
// stream ended cleanly.
func (r *Reader) Next(a *Access) bool {
	if r.err != nil {
		return false
	}
	meta, err := r.r.ReadByte()
	if err == io.EOF {
		return false
	}
	if err != nil {
		r.err = err
		return false
	}
	// A record started (meta byte read): from here on every failure —
	// mid-record EOF, a varint overflowing 64 bits, an out-of-range field —
	// is a malformed file, never a silent truncation. In particular the size
	// is an unbounded uvarint on the wire but a uint16 in Access; narrowing
	// without this check made a corrupt size decode to garbage modulo 65536.
	size, err := binary.ReadUvarint(r.r)
	if err != nil {
		r.err = fmt.Errorf("%w: truncated size", ErrBadTrace)
		return false
	}
	if size > math.MaxUint16 {
		r.err = fmt.Errorf("%w: size %d out of range", ErrBadTrace, size)
		return false
	}
	delta, err := binary.ReadVarint(r.r)
	if err != nil {
		r.err = fmt.Errorf("%w: truncated addr", ErrBadTrace)
		return false
	}
	tid := meta & 0x0f
	seg := Segment(meta >> 4 & 0x03)
	kind := Kind(meta >> 6 & 0x03)
	if kind >= NumKinds {
		r.err = fmt.Errorf("%w: invalid kind %d", ErrBadTrace, kind)
		return false
	}
	addr := r.last[tid][seg] + uint64(delta)
	r.last[tid][seg] = addr
	*a = Access{Addr: addr, Size: uint16(size), Seg: seg, Kind: kind, Thread: tid}
	return true
}

// Err returns the first decode error encountered, or nil on clean EOF.
func (r *Reader) Err() error { return r.err }
