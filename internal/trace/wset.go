package trace

// WorkingSet measures the distinct-byte footprint touched by a stream, per
// segment, at cache-block granularity. It is the tool behind the paper's
// Figure 5 (accessed working set for heap and shard as threads scale).
type WorkingSet struct {
	blockShift uint
	blocks     [NumSegments]map[uint64]struct{}
	accesses   [NumSegments]int64
}

// NewWorkingSet returns an analyzer with the given block size (must be a
// power of two; 64 matches the paper's simulations).
func NewWorkingSet(blockSize int) *WorkingSet {
	if blockSize <= 0 || blockSize&(blockSize-1) != 0 {
		panic("trace: block size must be a positive power of two")
	}
	ws := &WorkingSet{blockShift: uint(log2(uint64(blockSize)))}
	for i := range ws.blocks {
		ws.blocks[i] = make(map[uint64]struct{})
	}
	return ws
}

func log2(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Observe records one access (all blocks it spans).
func (w *WorkingSet) Observe(a Access) {
	w.accesses[a.Seg]++
	first := a.Addr >> w.blockShift
	last := (a.Addr + uint64(a.Size) - 1) >> w.blockShift
	if a.Size == 0 {
		last = first
	}
	for b := first; b <= last; b++ {
		w.blocks[a.Seg][b] = struct{}{}
	}
}

// Drain consumes an entire stream.
func (w *WorkingSet) Drain(s Stream) {
	var a Access
	for s.Next(&a) {
		w.Observe(a)
	}
}

// Bytes returns the distinct footprint of seg in bytes.
func (w *WorkingSet) Bytes(seg Segment) uint64 {
	return uint64(len(w.blocks[seg])) << w.blockShift
}

// TotalBytes returns the distinct footprint across all segments.
func (w *WorkingSet) TotalBytes() uint64 {
	var total uint64
	for s := Segment(0); s < NumSegments; s++ {
		total += w.Bytes(s)
	}
	return total
}

// Accesses returns the number of accesses observed for seg.
func (w *WorkingSet) Accesses(seg Segment) int64 { return w.accesses[seg] }
