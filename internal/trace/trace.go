// Package trace defines the memory-access trace representation shared by the
// workload generators and the cache simulator.
//
// The paper captured full instruction and data traces from production search
// with Intel Pin and replayed them through a functional cache simulator. This
// package is the reproduction's equivalent of the Pin trace format: a stream
// of (address, segment, kind) events tagged with the hardware thread that
// issued them. Traces can be held in memory, streamed from generators, or
// serialized to a compact binary file format (see codec.go).
package trace

import "fmt"

// Segment identifies which software memory segment an access belongs to.
// The paper's analysis (Figures 4-6, 13) is almost entirely expressed as
// per-segment breakdowns, so the segment travels with every access.
type Segment uint8

const (
	// Code is the instruction segment (text). The paper measures a ~4 MiB
	// code working set that overflows private L2s but is fully captured by
	// a 16 MiB L3.
	Code Segment = iota
	// Heap is dynamically allocated program data: scoring structures,
	// per-query state, shared metadata. The paper finds ~1 GiB of heap
	// working set with strong reuse — the motivation for the L4 cache.
	Heap
	// Shard is the memory-resident index shard (100s of GiB in production).
	// Accesses stream through posting lists with high spatial but
	// negligible temporal locality.
	Shard
	// Stack is thread stacks: tiny and near-perfectly cached.
	Stack

	// NumSegments is the number of distinct segments.
	NumSegments = 4
)

// String implements fmt.Stringer.
func (s Segment) String() string {
	switch s {
	case Code:
		return "code"
	case Heap:
		return "heap"
	case Shard:
		return "shard"
	case Stack:
		return "stack"
	default:
		return fmt.Sprintf("segment(%d)", uint8(s))
	}
}

// Kind distinguishes instruction fetches from data reads and writes.
type Kind uint8

const (
	// Fetch is an instruction fetch (routed to the L1-I cache).
	Fetch Kind = iota
	// Read is a data load (routed to the L1-D cache).
	Read
	// Write is a data store (routed to the L1-D cache, write-allocate).
	Write

	// NumKinds is the number of access kinds.
	NumKinds = 3
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Fetch:
		return "fetch"
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Access is one memory reference. Addresses live in a single flat virtual
// address space; the workload generator lays segments out at disjoint base
// addresses (see internal/memsim).
type Access struct {
	// Addr is the virtual byte address of the reference.
	Addr uint64
	// Size is the reference width in bytes (1-256).
	Size uint16
	// Seg is the software segment this address belongs to.
	Seg Segment
	// Kind is fetch/read/write.
	Kind Kind
	// Thread is the issuing hardware-thread id.
	Thread uint8
}

// String implements fmt.Stringer.
func (a Access) String() string {
	return fmt.Sprintf("t%d %s %s 0x%x+%d", a.Thread, a.Kind, a.Seg, a.Addr, a.Size)
}

// Stream is a pull-based source of accesses. Next returns false when the
// stream is exhausted. Implementations need not be safe for concurrent use.
type Stream interface {
	Next(a *Access) bool
}

// BatchStream is the batched fast path over an access source: NextBatch
// returns the next contiguous run of accesses, or an empty slice when the
// stream is exhausted. Batching removes the per-access interface dispatch
// and copy that dominate scalar replay (one dynamic call amortizes over
// thousands of accesses), which is what makes the hierarchy's DrainBatch
// kernel fast.
//
// Subslice lifetime contract: the returned slice is only valid until the
// next NextBatch call and must be treated as read-only. Zero-copy
// implementations (View) hand out windows of shared immutable storage and
// buffered adapters (Batched) reuse one internal buffer, so callers must
// neither mutate the batch nor retain it — copy what must outlive the call.
// The searchlint batchalias analyzer mechanizes this rule.
type BatchStream interface {
	NextBatch() []Access
}

// DefaultBatchSize is the batch length handed out by the package's
// BatchStream implementations: large enough to amortize dispatch, small
// enough that a batch (128 KiB of Access values) stays cache-resident while
// several simulated hierarchies consume it (cache.MultiSim).
const DefaultBatchSize = 8192

// Batched adapts a Stream to the batched interface. Streams that already
// implement BatchStream (View, SliceStream) are returned as-is; generator
// streams are wrapped in a buffered adapter that fills a reused
// DefaultBatchSize buffer through scalar Next calls. The returned batches
// obey the BatchStream lifetime contract (the adapter's buffer is reused).
func Batched(s Stream) BatchStream {
	if bs, ok := s.(BatchStream); ok {
		return bs
	}
	return &bufferedBatch{s: s, buf: make([]Access, DefaultBatchSize)}
}

// bufferedBatch refills one reusable buffer from a scalar stream.
type bufferedBatch struct {
	s   Stream
	buf []Access
}

// NextBatch implements BatchStream.
func (b *bufferedBatch) NextBatch() []Access {
	n := 0
	//lint:ignore hotalloc fallback adapter for scalar streams (generators, codec readers), contractually not a zero-alloc path; the batched kernels ride View/CompressedView
	for n < len(b.buf) && b.s.Next(&b.buf[n]) {
		n++
	}
	return b.buf[:n]
}

// NextBatch implements BatchStream with a zero-copy window over the
// underlying slice. The window shares storage with the stream, so the
// BatchStream lifetime contract applies.
func (s *SliceStream) NextBatch() []Access {
	if s.pos >= len(s.accesses) {
		return nil
	}
	end := s.pos + DefaultBatchSize
	if end > len(s.accesses) {
		end = len(s.accesses)
	}
	out := s.accesses[s.pos:end:end]
	s.pos = end
	return out
}

// SliceStream adapts an in-memory access slice to the Stream interface.
type SliceStream struct {
	accesses []Access
	pos      int
}

// NewSliceStream returns a Stream over the given accesses.
func NewSliceStream(accesses []Access) *SliceStream {
	return &SliceStream{accesses: accesses}
}

// Next implements Stream.
func (s *SliceStream) Next(a *Access) bool {
	if s.pos >= len(s.accesses) {
		return false
	}
	*a = s.accesses[s.pos]
	s.pos++
	return true
}

// Reset rewinds the stream to the beginning.
func (s *SliceStream) Reset() { s.pos = 0 }

// Len returns the total number of accesses in the underlying slice.
func (s *SliceStream) Len() int { return len(s.accesses) }

// FuncStream adapts a generator function to the Stream interface. The
// function must return false when exhausted.
type FuncStream func(a *Access) bool

// Next implements Stream.
func (f FuncStream) Next(a *Access) bool { return f(a) }

// Collect drains a stream into a slice. Intended for tests and small traces;
// experiment pipelines stream instead of materializing.
func Collect(s Stream) []Access {
	var out []Access
	var a Access
	for s.Next(&a) {
		out = append(out, a)
	}
	return out
}

// Limit returns a stream that yields at most n accesses from s.
func Limit(s Stream, n int) Stream {
	remaining := n
	return FuncStream(func(a *Access) bool {
		if remaining <= 0 {
			return false
		}
		if !s.Next(a) {
			return false
		}
		remaining--
		return true
	})
}

// FilterSegment returns a stream containing only accesses to seg.
func FilterSegment(s Stream, seg Segment) Stream {
	return FuncStream(func(a *Access) bool {
		for s.Next(a) {
			if a.Seg == seg {
				return true
			}
		}
		return false
	})
}

// Sample returns a stream yielding every nth access of s (systematic
// sampling; n <= 1 passes everything through). Useful to bound analysis
// cost on long traces while preserving per-segment mix.
func Sample(s Stream, n int) Stream {
	if n <= 1 {
		return s
	}
	count := 0
	return FuncStream(func(a *Access) bool {
		for s.Next(a) {
			count++
			if count%n == 1 {
				return true
			}
		}
		return false
	})
}

// Interleave merges per-thread streams round-robin with the given burst
// length, emulating fine-grained multi-threaded execution on a core. A burst
// of 0 is treated as 1. Exhausted streams drop out; the merged stream ends
// when all inputs end.
func Interleave(burst int, streams ...Stream) Stream {
	if burst <= 0 {
		burst = 1
	}
	live := make([]Stream, len(streams))
	copy(live, streams)
	cur, inBurst := 0, 0
	return FuncStream(func(a *Access) bool {
		for len(live) > 0 {
			if cur >= len(live) {
				cur = 0
			}
			if inBurst >= burst {
				inBurst = 0
				cur++
				if cur >= len(live) {
					cur = 0
				}
			}
			if live[cur].Next(a) {
				inBurst++
				return true
			}
			// Stream exhausted: remove and continue with the next one.
			live = append(live[:cur], live[cur+1:]...)
			inBurst = 0
		}
		return false
	})
}
