package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// sampleTraces builds traces exercising the encoder's edge cases: multiple
// traces, nesting, empty attr lists, string escaping, and fractional
// virtual-time values.
func sampleTraces() []Trace {
	tr := NewTracer()
	b := tr.Begin("query")
	root := b.Span(0, "query", 0, 8_400_000.5,
		Bool("partial", false), Int("leaves_answered", 16))
	fe := b.Span(root, "frontend", 0, 150_000)
	b.Span(fe, `cache "probe"`, 10_000, 60_000, String("note", "hit\nratio ≤ 1"))
	b.Span(root, "merge", 8_000_000, 8_400_000.5)
	b.Finish()

	b2 := tr.Begin("fleetprof[r=0.1]")
	b2.Span(0, "window", 256, 512, Float("duty", 0.1))
	b2.Finish()
	return tr.Traces()
}

func TestChromeTraceRoundTrip(t *testing.T) {
	orig := sampleTraces()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, orig); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	first := buf.String()

	decoded, err := ReadChromeTrace(strings.NewReader(first))
	if err != nil {
		t.Fatalf("ReadChromeTrace: %v", err)
	}
	if !reflect.DeepEqual(decoded, orig) {
		t.Fatalf("round trip changed traces:\n got %+v\nwant %+v", decoded, orig)
	}

	// Re-encoding the decoded traces must reproduce the original bytes.
	var buf2 bytes.Buffer
	if err := WriteChromeTrace(&buf2, decoded); err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if buf2.String() != first {
		t.Fatalf("re-encode differs from original:\n got %s\nwant %s", buf2.String(), first)
	}
}

func TestWriteChromeTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, sampleTraces()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, sampleTraces()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two encodes of identical traces differ")
	}
}

func TestWriteChromeTraceShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sampleTraces()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"displayTimeUnit":"ns"`,
		`"name":"process_name","ph":"M","pid":1`,
		`"name":"fleetprof[r=0.1]"`,
		`"ph":"X"`,
		`"obs_parent":"1"`,
		`"leaves_answered":"16"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %s\nin: %s", want, out)
		}
	}
}

func TestWriteText(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteText(&buf, sampleTraces()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`trace 1 "query" (4 spans)`,
		"  query [0.000–8.400 ms] leaves_answered=16 partial=false",
		"    frontend [0.000–0.150 ms]",
		`trace 2 "fleetprof[r=0.1]" (1 spans)`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text export missing %q\nin:\n%s", want, out)
		}
	}
	// Nesting: the cache probe prints deeper than its parent frontend.
	feIdx := strings.Index(out, "  frontend")
	probeIdx := strings.Index(out, `    cache "probe"`)
	if feIdx < 0 || probeIdx < feIdx {
		t.Fatalf("span nesting not reflected in text output:\n%s", out)
	}
}
