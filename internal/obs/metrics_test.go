package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("queries", L("cluster", "a"), L("stage", "merge"))
	c2 := r.Counter("queries", L("stage", "merge"), L("cluster", "a")) // label order irrelevant
	if c1 != c2 {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	if c3 := r.Counter("queries", L("cluster", "b")); c3 == c1 {
		t.Fatal("different labels shared a counter")
	}
	if g1, g2 := r.Gauge("depth"), r.Gauge("depth"); g1 != g2 {
		t.Fatal("same gauge series returned distinct gauges")
	}
	if h1, h2 := r.Histogram("lat"), r.Histogram("lat"); h1 != h2 {
		t.Fatal("same histogram series returned distinct histograms")
	}
}

func TestInstrumentBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative Add did not panic")
			}
		}()
		c.Add(-1)
	}()

	g := r.Gauge("temp")
	g.Set(3.25)
	if g.Value() != 3.25 {
		t.Fatalf("gauge = %g, want 3.25", g.Value())
	}

	h := r.Histogram("lat")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("histogram count = %d, want 100", h.Count())
	}
	if got := h.Mean(); got != 50.5 {
		t.Fatalf("histogram mean = %g, want 50.5", got)
	}
	if p50 := h.Quantile(0.5); p50 < 40 || p50 > 62 {
		t.Fatalf("p50 = %g, want ≈ 50 within bucket resolution", p50)
	}
}

func TestSnapshotSortedAndDetached(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta").Inc()
	r.Counter("alpha", L("k", "v")).Add(2)
	r.Gauge("g").Set(1)
	r.Histogram("h").Observe(10)

	s := r.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "alpha" || s.Counters[1].Name != "zeta" {
		t.Fatalf("counters not sorted by series key: %+v", s.Counters)
	}

	// Mutating the snapshot must not reach the registry.
	s.Counters[0].Labels[0] = Label{Key: "clobbered", Value: "x"}
	again := r.Snapshot()
	if !reflect.DeepEqual(again.Counters[0].Labels, []Label{{Key: "k", Value: "v"}}) {
		t.Fatal("snapshot aliases registry label state")
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("queries", L("cluster", "healthy")).Add(7)
		r.Gauge("ipc").Set(0.475)
		h := r.Histogram("serving_stage_latency_ns", L("stage", "merge"))
		for i := 0; i < 50; i++ {
			h.Observe(float64(1000 + i*37))
		}
		return r
	}
	var a, b bytes.Buffer
	if err := build().Snapshot().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("same registry content produced different JSON:\n%s\nvs\n%s", a.String(), b.String())
	}
	for _, want := range []string{`"name": "queries"`, `"cluster"`, `"p95"`} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("JSON missing %s:\n%s", want, a.String())
		}
	}
}
