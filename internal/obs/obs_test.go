package obs

import (
	"reflect"
	"testing"
)

func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	b := tr.Begin("query")
	if b != nil {
		t.Fatal("nil tracer returned a non-nil builder")
	}
	if got := b.Span(0, "frontend", 0, 10); got != 0 {
		t.Fatalf("nil builder Span returned %d, want 0", got)
	}
	if got := b.TraceID(); got != 0 {
		t.Fatalf("nil builder TraceID returned %d, want 0", got)
	}
	b.Finish() // must not panic
	if got := tr.Traces(); got != nil {
		t.Fatalf("nil tracer Traces returned %v", got)
	}
	if got := tr.Take(); got != nil {
		t.Fatalf("nil tracer Take returned %v", got)
	}
	if got := tr.SpanCount(); got != 0 {
		t.Fatalf("nil tracer SpanCount returned %d", got)
	}
}

func TestTraceBuilderAssignsIDsAndSortsAttrs(t *testing.T) {
	tr := NewTracer()
	b := tr.Begin("query")
	if b.TraceID() != 1 {
		t.Fatalf("first trace ID = %d, want 1", b.TraceID())
	}
	root := b.Span(0, "root", 0, 100, String("zeta", "z"), Int("alpha", 7))
	child := b.Span(root, "child", 10, 20, Bool("partial", true))
	if root != 1 || child != 2 {
		t.Fatalf("span IDs = %d, %d, want 1, 2", root, child)
	}
	b.Finish()

	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	spans := traces[0].Spans
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	wantAttrs := []Attr{{Key: "alpha", Value: "7"}, {Key: "zeta", Value: "z"}}
	if !reflect.DeepEqual(spans[0].Attrs, wantAttrs) {
		t.Fatalf("attrs not sorted by key: %v", spans[0].Attrs)
	}
	if spans[1].Parent != root {
		t.Fatalf("child parent = %d, want %d", spans[1].Parent, root)
	}
	if got := spans[1].Attr("partial"); got != "true" {
		t.Fatalf("Attr(partial) = %q, want true", got)
	}
	if got := spans[1].Attr("missing"); got != "" {
		t.Fatalf("Attr(missing) = %q, want empty", got)
	}
	if got := spans[0].DurationNS(); got != 100 {
		t.Fatalf("DurationNS = %g, want 100", got)
	}
	if got := tr.SpanCount(); got != 2 {
		t.Fatalf("SpanCount = %d, want 2", got)
	}
}

func TestSpanPanicsOnNegativeDuration(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Span with end before start did not panic")
		}
	}()
	NewTracer().Begin("bad").Span(0, "inverted", 10, 5)
}

func TestTracesAreSortedByIDAndCopied(t *testing.T) {
	tr := NewTracer()
	b1 := tr.Begin("first")
	b2 := tr.Begin("second")
	b2.Span(0, "s", 0, 1)
	b2.Finish() // finish out of Begin order
	b1.Span(0, "s", 0, 1)
	b1.Finish()

	traces := tr.Traces()
	if len(traces) != 2 || traces[0].ID != 1 || traces[1].ID != 2 {
		t.Fatalf("traces not sorted by ID: %+v", traces)
	}

	// Mutating the returned structures must not reach tracer state.
	traces[0].Spans[0].Name = "clobbered"
	traces[0].Name = "clobbered"
	again := tr.Traces()
	if again[0].Spans[0].Name != "s" || again[0].Name != "first" {
		t.Fatal("Traces aliases internal state")
	}
}

func TestTakeClearsTracer(t *testing.T) {
	tr := NewTracer()
	b := tr.Begin("query")
	b.Span(0, "s", 0, 1)
	b.Finish()

	got := tr.Take()
	if len(got) != 1 {
		t.Fatalf("Take returned %d traces, want 1", len(got))
	}
	if rest := tr.Traces(); len(rest) != 0 {
		t.Fatalf("tracer holds %d traces after Take, want 0", len(rest))
	}
	// IDs keep increasing after Take so trace identity never repeats.
	if b2 := tr.Begin("next"); b2.TraceID() != 2 {
		t.Fatalf("trace ID after Take = %d, want 2", b2.TraceID())
	}
}

func TestAttrConstructors(t *testing.T) {
	cases := []struct {
		got  Attr
		want Attr
	}{
		{String("k", "v"), Attr{Key: "k", Value: "v"}},
		{Bool("k", false), Attr{Key: "k", Value: "false"}},
		{Int("k", -42), Attr{Key: "k", Value: "-42"}},
		{Float("k", 0.1), Attr{Key: "k", Value: "0.1"}},
		{Float("k", 2.5e6), Attr{Key: "k", Value: "2.5e+06"}},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %+v, want %+v", c.got, c.want)
		}
	}
}
