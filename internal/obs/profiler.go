package obs

import (
	"fmt"

	"searchmem/internal/cache"
	"searchmem/internal/cpu"
	"searchmem/internal/model"
	"searchmem/internal/stats"
	"searchmem/internal/trace"
)

// GWP-style sampling profiler. The paper's fleet characterization (§II,
// Table I, Figure 3) comes from Google-Wide Profiling: cheap always-on
// counters run everywhere, while expensive attribution (which cache level
// served an access, whether a branch mispredicted, which segment an address
// belongs to) is collected only inside short sampling windows, and fleet
// profiles are reconstructed from the samples. The Profiler reproduces that
// methodology against the simulated leaf: it watches the same per-access /
// per-branch event streams the exhaustive measurement sees, but attributes
// only a configurable fraction of them, then scales sampled rates back up
// using the always-on totals (the GWP "ground truth" counters).
//
// Sampling is windowed, not per-event: real profilers turn collection on
// for short bursts to amortize attribution cost, which also means samples
// are correlated within a window — exactly the estimator-variance behavior
// the fleetprof experiment quantifies. Window placement is drawn from a
// seeded stats.RNG, so a given (seed, rate, event stream) produces one
// deterministic set of windows. The Profiler is single-goroutine like the
// measurement loop that drives it.

// ProfilerConfig configures one sampling profiler.
type ProfilerConfig struct {
	// Rate is the target fraction of events attributed, in (0, 1]. 1 means
	// exhaustive observation (every event attributed): the exact reference
	// the fleetprof experiment compares sampled estimates against.
	Rate float64
	// WindowEvents is the length of one sampling window in events
	// (default 256).
	WindowEvents int
	// Seed places the sampling windows.
	Seed uint64
	// RecordWindows caps how many access-stream sampling windows are
	// remembered for trace export (EmitTrace); 0 keeps none.
	RecordWindows int
}

// Profiler reconstructs fleet workload estimates from sampled observation
// of a simulated leaf's access and branch streams.
type Profiler struct {
	rate     float64
	accWin   windowSampler
	brWin    windowSampler
	totals   profTotals
	samples  profSamples
	segments [trace.NumSegments]int64
	// Recorded access-stream window intervals for trace export (event
	// indices; end < 0 while a window is still open).
	recCap   int
	recOpen  bool
	recorded []windowInterval
}

// windowInterval is one recorded sampling window in access-event indices.
type windowInterval struct{ start, end int64 }

// profTotals are the cheap always-on counters: maintained on every event
// regardless of sampling state.
type profTotals struct {
	accesses, branches int64
}

// profSamples are the expensive attributed counters: maintained only for
// events that fall inside a sampling window.
type profSamples struct {
	accesses    int64 // attributed accesses
	fetchL1Miss int64 // Fetch served beyond L1 (L1-I misses)
	fetchL2Miss int64 // Fetch served beyond L2 (L2 instruction misses)
	fetchL3Miss int64 // Fetch served beyond L3 (memory instruction fetches)
	dataL1Miss  int64 // Read/Write served beyond L1
	dataL2Miss  int64 // Read/Write served beyond L2 (L3 data accesses)
	l3Accesses  int64 // any kind served at or beyond L3
	l3Hits      int64 // any kind served exactly at L3
	branches    int64 // attributed branches
	mispredicts int64 // attributed mispredicted branches
}

// NewProfiler returns a profiler sampling at cfg.Rate.
func NewProfiler(cfg ProfilerConfig) *Profiler {
	if cfg.Rate <= 0 {
		panic(fmt.Sprintf("obs: profiler rate must be positive, got %g", cfg.Rate))
	}
	if cfg.Rate > 1 {
		cfg.Rate = 1
	}
	if cfg.WindowEvents <= 0 {
		cfg.WindowEvents = 256
	}
	rng := stats.NewRNG(cfg.Seed)
	return &Profiler{
		rate:   cfg.Rate,
		accWin: newWindowSampler(cfg.Rate, cfg.WindowEvents, rng.Split()),
		brWin:  newWindowSampler(cfg.Rate, cfg.WindowEvents, rng.Split()),
		recCap: cfg.RecordWindows,
	}
}

// Rate returns the configured sampling rate.
func (p *Profiler) Rate() float64 { return p.rate }

// ObserveAccess feeds one memory access and the hierarchy level that served
// it. The access always advances the cheap counters; attribution happens
// only inside a sampling window.
func (p *Profiler) ObserveAccess(a trace.Access, lvl cache.HitLevel) {
	p.totals.accesses++
	attributed := p.accWin.observe()
	if p.recCap > 0 && attributed != p.recOpen {
		idx := p.totals.accesses - 1
		if attributed {
			if len(p.recorded) < p.recCap {
				p.recorded = append(p.recorded, windowInterval{start: idx, end: -1})
			}
		} else if n := len(p.recorded); n > 0 && p.recorded[n-1].end < 0 {
			p.recorded[n-1].end = idx
		}
		p.recOpen = attributed
	}
	if !attributed {
		return
	}
	s := &p.samples
	s.accesses++
	p.segments[a.Seg]++
	if a.Kind == trace.Fetch {
		if lvl >= cache.HitL2 {
			s.fetchL1Miss++
		}
		if lvl >= cache.HitL3 {
			s.fetchL2Miss++
		}
		if lvl > cache.HitL3 {
			s.fetchL3Miss++
		}
	} else {
		if lvl >= cache.HitL2 {
			s.dataL1Miss++
		}
		if lvl >= cache.HitL3 {
			s.dataL2Miss++
		}
	}
	if lvl >= cache.HitL3 {
		s.l3Accesses++
		if lvl == cache.HitL3 {
			s.l3Hits++
		}
	}
}

// ObserveBranch feeds one conditional-branch outcome.
func (p *Profiler) ObserveBranch(thread uint8, mispredict bool) {
	_ = thread // streams are merged fleet-style; the thread id is not an estimate dimension
	p.totals.branches++
	if !p.brWin.observe() {
		return
	}
	p.samples.branches++
	if mispredict {
		p.samples.mispredicts++
	}
}

// Windows returns how many sampling windows were opened across both event
// streams.
func (p *Profiler) Windows() int64 { return p.accWin.windows + p.brWin.windows }

// FleetEstimate is a Table I / Figure 3-style profile reconstructed from
// samples.
type FleetEstimate struct {
	// IPC and Breakdown come from the same core model as the exhaustive
	// measurement, fed with sampled event rates.
	IPC       float64
	Breakdown cpu.Breakdown
	// Per-kilo-instruction rates (Table I's rows).
	BranchMPKI, L1IMPKI, L1DMPKI, L2InstrMPKI, L3LoadMPKI float64
	// L3HitRate and AMATNS feed the AMAT model.
	L3HitRate, AMATNS float64
	// SegmentShare is the fraction of sampled accesses per segment
	// (Figure 4-style attribution).
	SegmentShare [trace.NumSegments]float64
	// Sample accounting: how much observation the estimate rests on.
	SampledAccesses, SampledBranches, Windows int64
}

// Estimate reconstructs the fleet profile. Sampled per-event rates are
// rescaled to per-instruction rates through the always-on totals and the
// externally supplied instruction count (the one counter the access stream
// cannot carry), then run through the calibrated core model exactly as the
// exhaustive path does.
func (p *Profiler) Estimate(core cpu.CoreParams, l3LatencyNS, memLatencyNS float64, instructions int64) FleetEstimate {
	if instructions <= 0 {
		panic("obs: Estimate needs a positive instruction count")
	}
	s := p.samples
	est := FleetEstimate{
		SampledAccesses: s.accesses,
		SampledBranches: s.branches,
		Windows:         p.Windows(),
	}

	// Per-instruction scale factors from the always-on counters.
	accPerInstr := float64(p.totals.accesses) / float64(instructions)
	brPerInstr := float64(p.totals.branches) / float64(instructions)

	perInstr := func(sampled int64) float64 {
		if s.accesses == 0 {
			return 0
		}
		return float64(sampled) / float64(s.accesses) * accPerInstr
	}
	rates := cpu.EventRates{
		L1IMisses: perInstr(s.fetchL1Miss),
		L2IMisses: perInstr(s.fetchL2Miss),
		L3IMisses: perInstr(s.fetchL3Miss),
		L1DMisses: perInstr(s.dataL1Miss),
		L2DMisses: perInstr(s.dataL2Miss),
	}
	if s.branches > 0 {
		rates.BranchMispredicts = float64(s.mispredicts) / float64(s.branches) * brPerInstr
	}
	if s.l3Accesses > 0 {
		est.L3HitRate = float64(s.l3Hits) / float64(s.l3Accesses)
	}
	est.AMATNS = model.AMATL3(est.L3HitRate, l3LatencyNS, memLatencyNS)
	rates.L3AMATNS = est.AMATNS

	est.BranchMPKI = rates.BranchMispredicts * 1000
	est.L1IMPKI = rates.L1IMisses * 1000
	est.L1DMPKI = rates.L1DMisses * 1000
	est.L2InstrMPKI = rates.L2IMisses * 1000
	est.L3LoadMPKI = rates.L2DMisses * 1000
	if s.accesses > 0 {
		for i, n := range p.segments {
			est.SegmentShare[i] = float64(n) / float64(s.accesses)
		}
	}
	est.Breakdown, est.IPC = core.Evaluate(rates)
	return est
}

// EmitTrace records the profiler's access-stream sampling schedule as one
// trace: a root span covering the whole stream, with one child span per
// recorded window (capped at ProfilerConfig.RecordWindows). Timestamps are
// access-event indices — the profiler's native clock — carried in the
// trace's nanosecond fields.
func (p *Profiler) EmitTrace(t *Tracer, name string) {
	tb := t.Begin(name)
	if tb == nil {
		return
	}
	total := p.totals.accesses
	root := tb.Span(0, "access-stream", 0, float64(total),
		Float("rate", p.rate),
		Int("attributed", p.samples.accesses),
		Int("windows", p.Windows()))
	for i, w := range p.recorded {
		end := w.end
		if end < 0 {
			end = total // window still open at end of stream
		}
		tb.Span(root, fmt.Sprintf("window[%d]", i), float64(w.start), float64(end))
	}
	if p.recCap > 0 && int64(len(p.recorded)) < p.accWin.windows {
		tb.Span(root, "windows-truncated", float64(total), float64(total),
			Int("recorded", int64(len(p.recorded))),
			Int("opened", p.accWin.windows))
	}
	tb.Finish()
}

// windowSampler decides, one event at a time, whether the event falls in a
// sampling window. Windows are fixed-length; the gaps between them are drawn
// uniformly in [0, 2·mean] so the long-run duty cycle converges to rate
// while window placement stays randomized (GWP's periodic-with-jitter
// collection).
type windowSampler struct {
	rng       *stats.RNG
	window    int64
	meanGap   float64
	inWindow  bool
	remaining int64
	windows   int64
	always    bool
}

// newWindowSampler returns a sampler with rate duty cycle and window-length
// windows, with the first window's phase randomized.
func newWindowSampler(rate float64, window int, rng *stats.RNG) windowSampler {
	s := windowSampler{
		rng:     rng,
		window:  int64(window),
		meanGap: float64(window) * (1 - rate) / rate,
		always:  rate >= 1,
	}
	if s.always {
		s.windows = 1
		return s
	}
	// Random initial phase up to one full gap, so same-rate profilers with
	// different seeds observe different portions of the stream.
	s.remaining = s.nextGap()
	return s
}

// observe advances the event clock by one and reports whether the event is
// attributed.
func (s *windowSampler) observe() bool {
	if s.always {
		return true
	}
	for s.remaining == 0 {
		s.inWindow = !s.inWindow
		if s.inWindow {
			s.windows++
			s.remaining = s.window
		} else {
			s.remaining = s.nextGap()
		}
	}
	s.remaining--
	return s.inWindow
}

// nextGap draws the next inter-window gap (possibly zero at high rates).
func (s *windowSampler) nextGap() int64 {
	return int64(s.rng.Uint64n(uint64(2*s.meanGap) + 1))
}
