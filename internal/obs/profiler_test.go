package obs

import (
	"math"
	"reflect"
	"testing"

	"searchmem/internal/cache"
	"searchmem/internal/cpu"
	"searchmem/internal/stats"
	"searchmem/internal/trace"
)

// testCore is a plausible core-model parameterization for estimator tests.
var testCore = cpu.CoreParams{
	Width: 4, FreqGHz: 2.5, MispredPenaltyCycles: 15,
	L2LatencyCycles: 12, L3LatencyCycles: 36, MemLatencyNS: 90,
	MemOverlap: 0.8, FEOverlap: 0.7, FEBandwidthCPI: 0.05, CoreStallCPI: 0.1,
}

// synthStream feeds n synthetic access/branch events with fixed hit-level
// and mispredict probabilities into the given profilers, so every profiler
// observes the identical event stream.
func synthStream(n int, seed uint64, profs ...*Profiler) {
	rng := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		a := trace.Access{Addr: rng.Uint64(), Size: 8}
		switch {
		case rng.Float64() < 0.5:
			a.Kind, a.Seg = trace.Fetch, trace.Code
		case rng.Float64() < 0.7:
			a.Kind, a.Seg = trace.Read, trace.Heap
		default:
			a.Kind, a.Seg = trace.Write, trace.Stack
		}
		lvl := cache.HitL1
		switch f := rng.Float64(); {
		case f < 0.02:
			lvl = cache.HitMemory
		case f < 0.06:
			lvl = cache.HitL3
		case f < 0.20:
			lvl = cache.HitL2
		}
		for _, p := range profs {
			p.ObserveAccess(a, lvl)
		}
		if i%4 == 0 {
			mis := rng.Float64() < 0.05
			for _, p := range profs {
				p.ObserveBranch(0, mis)
			}
		}
	}
}

func TestProfilerExhaustiveMatchesHandCount(t *testing.T) {
	p := NewProfiler(ProfilerConfig{Rate: 1, Seed: 1})

	// A tiny hand-checkable stream: 4 fetches (1 L2 hit, 1 memory), 4 reads
	// (1 L3 hit), 2 branches (1 mispredict).
	acc := func(kind trace.Kind, seg trace.Segment, lvl cache.HitLevel) {
		p.ObserveAccess(trace.Access{Kind: kind, Seg: seg, Size: 8}, lvl)
	}
	acc(trace.Fetch, trace.Code, cache.HitL1)
	acc(trace.Fetch, trace.Code, cache.HitL1)
	acc(trace.Fetch, trace.Code, cache.HitL2)
	acc(trace.Fetch, trace.Code, cache.HitMemory)
	acc(trace.Read, trace.Heap, cache.HitL1)
	acc(trace.Read, trace.Heap, cache.HitL1)
	acc(trace.Read, trace.Shard, cache.HitL1)
	acc(trace.Read, trace.Heap, cache.HitL3)
	p.ObserveBranch(0, false)
	p.ObserveBranch(0, true)

	const instr = 16
	est := p.Estimate(testCore, 30, 90, instr)

	if est.SampledAccesses != 8 || est.SampledBranches != 2 {
		t.Fatalf("sampled counts = %d accesses, %d branches; want 8, 2",
			est.SampledAccesses, est.SampledBranches)
	}
	// Per-kilo-instruction rates over 16 instructions.
	checks := []struct {
		name      string
		got, want float64
	}{
		{"L1IMPKI", est.L1IMPKI, 2.0 / instr * 1000},         // L2 hit + memory fetch
		{"L2InstrMPKI", est.L2InstrMPKI, 1.0 / instr * 1000}, // memory fetch
		{"L1DMPKI", est.L1DMPKI, 1.0 / instr * 1000},         // L3-hit read
		{"L3LoadMPKI", est.L3LoadMPKI, 1.0 / instr * 1000},
		{"BranchMPKI", est.BranchMPKI, 1.0 / instr * 1000},
		{"L3HitRate", est.L3HitRate, 0.5}, // one L3 hit, one memory fetch
		{"AMATNS", est.AMATNS, 0.5*30 + 0.5*90},
		{"code share", est.SegmentShare[trace.Code], 0.5},
		{"heap share", est.SegmentShare[trace.Heap], 3.0 / 8},
		{"shard share", est.SegmentShare[trace.Shard], 1.0 / 8},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 1e-12 {
			t.Errorf("%s = %g, want %g", c.name, c.got, c.want)
		}
	}
	if est.Breakdown.Sum() < 0.999 || est.Breakdown.Sum() > 1.001 {
		t.Errorf("breakdown sums to %g, want 1", est.Breakdown.Sum())
	}
	if est.IPC <= 0 {
		t.Errorf("IPC = %g, want positive", est.IPC)
	}
}

func TestProfilerSampledTracksExhaustive(t *testing.T) {
	exact := NewProfiler(ProfilerConfig{Rate: 1, Seed: 9})
	sampled := NewProfiler(ProfilerConfig{Rate: 0.1, Seed: 9})
	const n, instr = 400_000, 800_000
	synthStream(n, 1234, exact, sampled)

	e := exact.Estimate(testCore, 30, 90, instr)
	s := sampled.Estimate(testCore, 30, 90, instr)

	if s.SampledAccesses >= e.SampledAccesses/5 || s.SampledAccesses == 0 {
		t.Fatalf("10%% sampler attributed %d of %d accesses", s.SampledAccesses, e.SampledAccesses)
	}
	if s.Windows == 0 {
		t.Fatal("sampler opened no windows")
	}
	relClose := func(name string, got, want, tol float64) {
		if want == 0 {
			t.Fatalf("%s: exact value is zero", name)
		}
		if rel := math.Abs(got-want) / want; rel > tol {
			t.Errorf("%s = %g, exact %g (rel err %.3f > %.3f)", name, got, want, rel, tol)
		}
	}
	relClose("IPC", s.IPC, e.IPC, 0.05)
	relClose("L1IMPKI", s.L1IMPKI, e.L1IMPKI, 0.10)
	relClose("L3LoadMPKI", s.L3LoadMPKI, e.L3LoadMPKI, 0.15)
	relClose("BranchMPKI", s.BranchMPKI, e.BranchMPKI, 0.25)
	for i := 0; i < 6; i++ {
		got, want := breakdownSlots(s.Breakdown)[i], breakdownSlots(e.Breakdown)[i]
		if math.Abs(got-want) > 0.02 {
			t.Errorf("Top-Down category %d = %.4f, exact %.4f (> 2pp apart)", i, got, want)
		}
	}
}

// breakdownSlots flattens a Breakdown into its six category fractions.
func breakdownSlots(b cpu.Breakdown) [6]float64 {
	return [6]float64{b.Retiring, b.BadSpec, b.FELatency, b.FEBandwidth, b.BECore, b.BEMemory}
}

func TestProfilerDeterministic(t *testing.T) {
	run := func() FleetEstimate {
		p := NewProfiler(ProfilerConfig{Rate: 0.05, WindowEvents: 128, Seed: 7})
		synthStream(100_000, 42, p)
		return p.Estimate(testCore, 30, 90, 200_000)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different estimates:\n%+v\nvs\n%+v", a, b)
	}
}

func TestWindowSamplerDutyCycle(t *testing.T) {
	for _, rate := range []float64{0.02, 0.1, 0.5} {
		s := newWindowSampler(rate, 256, stats.NewRNG(3))
		const n = 2_000_000
		observed := 0
		for i := 0; i < n; i++ {
			if s.observe() {
				observed++
			}
		}
		duty := float64(observed) / n
		if math.Abs(duty-rate)/rate > 0.10 {
			t.Errorf("rate %g: duty cycle %g off by more than 10%%", rate, duty)
		}
	}
}

func TestProfilerRejectsBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero rate did not panic")
		}
	}()
	NewProfiler(ProfilerConfig{Rate: 0})
}
