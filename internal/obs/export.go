package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"searchmem/internal/det"
)

// Trace exports. Two forms:
//
//   - Chrome trace-event JSON (chrome://tracing, Perfetto): complete "X"
//     events with microsecond timestamps, one process per trace, one row
//     per span. The encoder is hand-rolled so the byte stream is fully
//     determined by the trace contents — field order fixed, floats in
//     shortest round-trip form — which is what lets the determinism tests
//     diff whole export files.
//   - a compact indented text tree for terminals and examples.
//
// The span's parent link and annotations travel in the event's "args"
// object; the reserved key "obs_parent" carries the parent span ID.

// parentKey is the reserved args key carrying the parent span ID.
const parentKey = "obs_parent"

// WriteChromeTrace writes traces as a Chrome trace-event JSON object.
// Output bytes are a pure function of the trace list.
func WriteChromeTrace(w io.Writer, traces []Trace) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")
	first := true
	emit := func(s string) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteString("\n")
		bw.WriteString(s)
	}
	for _, tr := range traces {
		emit(fmt.Sprintf("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":%s}}",
			tr.ID, jsonString(tr.Name)))
		for _, sp := range tr.Spans {
			emit(fmt.Sprintf("{\"name\":%s,\"cat\":\"virtual\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"args\":{%s}}",
				jsonString(sp.Name), tr.ID, sp.ID,
				jsonFloat(sp.StartNS/1e3), jsonFloat(sp.DurationNS()/1e3), jsonArgs(sp)))
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// jsonString encodes s as a JSON string literal.
func jsonString(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		panic(err) // strings always marshal
	}
	return string(b)
}

// jsonFloat formats v in shortest round-trip form (valid JSON for finite
// values; virtual timestamps are always finite).
func jsonFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// jsonArgs encodes the parent link and attributes (already key-sorted).
func jsonArgs(sp Span) string {
	out := fmt.Sprintf("%s:\"%d\"", jsonString(parentKey), sp.Parent)
	for _, a := range sp.Attrs {
		out += fmt.Sprintf(",%s:%s", jsonString(a.Key), jsonString(a.Value))
	}
	return out
}

// chromeEvent mirrors one trace event for decoding.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  uint64            `json:"pid"`
	Tid  uint64            `json:"tid"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Args map[string]string `json:"args"`
}

// chromeFile mirrors the top-level export object.
type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// ReadChromeTrace decodes an export written by WriteChromeTrace back into
// traces. Decoding then re-encoding reproduces the original bytes, and the
// decoded traces compare equal to the originals (the round-trip property
// pinned by TestChromeTraceRoundTrip).
func ReadChromeTrace(r io.Reader) ([]Trace, error) {
	var f chromeFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("obs: decoding chrome trace: %w", err)
	}
	byID := make(map[uint64]*Trace)
	for _, ev := range f.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name != "process_name" {
				continue
			}
			tr := traceFor(byID, ev.Pid)
			tr.Name = ev.Args["name"]
		case "X":
			tr := traceFor(byID, ev.Pid)
			parent, err := strconv.ParseUint(ev.Args[parentKey], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("obs: span %q: bad parent %q", ev.Name, ev.Args[parentKey])
			}
			sp := Span{
				ID: ev.Tid, Parent: parent, Name: ev.Name,
				StartNS: ev.Ts * 1e3, EndNS: (ev.Ts + ev.Dur) * 1e3,
			}
			for _, k := range det.SortedKeys(ev.Args) {
				if k == parentKey {
					continue
				}
				sp.Attrs = append(sp.Attrs, Attr{Key: k, Value: ev.Args[k]})
			}
			tr.Spans = append(tr.Spans, sp)
		}
	}
	out := make([]Trace, 0, len(byID))
	for _, id := range det.SortedKeys(byID) {
		tr := *byID[id]
		sort.Slice(tr.Spans, func(i, j int) bool { return tr.Spans[i].ID < tr.Spans[j].ID })
		out = append(out, tr)
	}
	return out, nil
}

// traceFor returns (creating if needed) the trace with the given ID.
func traceFor(byID map[uint64]*Trace, id uint64) *Trace {
	if tr, ok := byID[id]; ok {
		return tr
	}
	tr := &Trace{ID: id}
	byID[id] = tr
	return tr
}

// WriteText writes traces as indented span trees, one block per trace.
// Children print in creation order under their parent.
func WriteText(w io.Writer, traces []Trace) error {
	bw := bufio.NewWriter(w)
	for _, tr := range traces {
		fmt.Fprintf(bw, "trace %d %q (%d spans)\n", tr.ID, tr.Name, len(tr.Spans))
		children := make(map[uint64][]int)
		for i, sp := range tr.Spans {
			children[sp.Parent] = append(children[sp.Parent], i)
		}
		var dump func(parent uint64, depth int)
		dump = func(parent uint64, depth int) {
			for _, i := range children[parent] {
				sp := tr.Spans[i]
				fmt.Fprintf(bw, "%*s%s [%.3f–%.3f ms]", 2+2*depth, "", sp.Name, sp.StartNS/1e6, sp.EndNS/1e6)
				for _, a := range sp.Attrs {
					fmt.Fprintf(bw, " %s=%s", a.Key, a.Value)
				}
				bw.WriteByte('\n')
				dump(sp.ID, depth+1)
			}
		}
		dump(0, 0)
	}
	return bw.Flush()
}
