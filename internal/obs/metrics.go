package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"searchmem/internal/det"
	"searchmem/internal/stats"
)

// Unified metrics registry: counters, gauges, and log-scaled histograms with
// labeled series. Instruments are get-or-create by (name, labels) so
// concurrent producers share one series; snapshots are sorted by series key
// and defensively copied, so exporting is deterministic and can never alias
// registry internals (the aliasret invariant).

// Label is one dimension of a metric series ("cluster"="degraded/faulty").
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// seriesKey canonicalizes (name, sorted labels) into a map key.
func seriesKey(name string, labels []Label) string {
	k := name
	for _, l := range labels {
		k += "|" + l.Key + "=" + l.Value
	}
	return k
}

// sortLabels returns a key-sorted copy of labels.
func sortLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Registry holds the metric series for one system under observation.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter series for (name, labels), creating it at zero
// on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	sorted := sortLabels(labels)
	key := seriesKey(name, sorted)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{name: name, labels: sorted}
		r.counters[key] = c
	}
	return c
}

// Gauge returns the gauge series for (name, labels), creating it at zero on
// first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	sorted := sortLabels(labels)
	key := seriesKey(name, sorted)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{name: name, labels: sorted}
		r.gauges[key] = g
	}
	return g
}

// Histogram returns the histogram series for (name, labels), creating it
// empty on first use.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	sorted := sortLabels(labels)
	key := seriesKey(name, sorted)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[key]
	if !ok {
		h = &Histogram{name: name, labels: sorted, hist: stats.NewHistogram(8)}
		r.hists[key] = h
	}
	return h
}

// Counter is a monotonically increasing integer series.
type Counter struct {
	name   string
	labels []Label
	value  atomic.Int64
}

// Add increments the counter by n (n must be non-negative).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("obs: counter %q decremented by %d", c.name, n))
	}
	c.value.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.value.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.value.Load() }

// Gauge is a point-in-time float series.
type Gauge struct {
	name   string
	labels []Label
	bits   atomic.Uint64
}

// Set records the current value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last value set.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a log-scaled distribution series (stats.Histogram with 8
// sub-buckets per octave, ~9% quantile resolution).
type Histogram struct {
	name   string
	labels []Label
	mu     sync.Mutex
	hist   *stats.Histogram
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.hist.Add(v)
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.hist.Count()
}

// Mean returns the exact mean of all observations.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.hist.Mean()
}

// Quantile returns the approximate q-quantile (0 <= q <= 1).
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.hist.Quantile(q)
}

// CounterSnap is one counter series in a snapshot.
type CounterSnap struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  int64   `json:"value"`
}

// GaugeSnap is one gauge series in a snapshot.
type GaugeSnap struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// HistSnap is one histogram series in a snapshot, reduced to the summary
// statistics the serving tier reports.
type HistSnap struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Count  int64   `json:"count"`
	Mean   float64 `json:"mean"`
	P50    float64 `json:"p50"`
	P95    float64 `json:"p95"`
	P99    float64 `json:"p99"`
}

// Snapshot is a point-in-time copy of every series in a registry, each kind
// sorted by series key. It shares no memory with the registry.
type Snapshot struct {
	Counters   []CounterSnap `json:"counters"`
	Gauges     []GaugeSnap   `json:"gauges"`
	Histograms []HistSnap    `json:"histograms"`
}

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for _, k := range det.SortedKeys(r.counters) {
		c := r.counters[k]
		s.Counters = append(s.Counters, CounterSnap{
			Name: c.name, Labels: append([]Label(nil), c.labels...), Value: c.Value(),
		})
	}
	for _, k := range det.SortedKeys(r.gauges) {
		g := r.gauges[k]
		s.Gauges = append(s.Gauges, GaugeSnap{
			Name: g.name, Labels: append([]Label(nil), g.labels...), Value: g.Value(),
		})
	}
	for _, k := range det.SortedKeys(r.hists) {
		h := r.hists[k]
		s.Histograms = append(s.Histograms, HistSnap{
			Name: h.name, Labels: append([]Label(nil), h.labels...),
			Count: h.Count(), Mean: h.Mean(),
			P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
		})
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON. Field and series order are
// fixed, so output bytes are a pure function of the snapshot.
func (s Snapshot) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("obs: encoding metrics snapshot: %w", err)
	}
	return bw.Flush()
}
