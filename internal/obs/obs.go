// Package obs is the reproduction's observability subsystem: per-query
// distributed tracing over the serving tree, a unified metrics registry,
// and a GWP-style sampling profiler that reconstructs fleet-wide workload
// profiles from sparse observations of the simulated leaf execution.
//
// The paper's entire characterization (§II, Table I, Figure 3) was produced
// by always-on fleet profiling infrastructure (Google-Wide Profiling), not
// by exhaustive measurement; this package is the reproduction's analogue.
// Everything here follows the repository's determinism contract (DESIGN.md
// §9): time is virtual, randomness is seeded stats.RNG, snapshots and
// exports are keyed and ordered deterministically, and the same seed
// produces byte-identical export files.
//
// Tracing model: a Trace is one logical request (a query through the
// serving tree) holding a flat list of Spans with parent links. Spans carry
// virtual-time timestamps relative to the trace start, so a trace is a
// self-contained latency waterfall independent of when it was recorded.
// Spans are appended by a single-goroutine TraceBuilder — concurrent
// serving code first resolves its outcome deterministically (leaf order),
// then reconstructs the span tree — which keeps span identity and order
// independent of goroutine scheduling.
package obs

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// Attr is one span annotation. Values are strings so exports need no
// type-dependent encoding; use the constructors for deterministic
// formatting of other types.
type Attr struct {
	Key, Value string
}

// String returns a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Bool returns a boolean attribute ("true"/"false").
func Bool(key string, v bool) Attr { return Attr{Key: key, Value: strconv.FormatBool(v)} }

// Int returns an integer attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, Value: strconv.FormatInt(v, 10)} }

// Float returns a float attribute in shortest round-trip form, which is
// deterministic for identical values.
func Float(key string, v float64) Attr {
	return Attr{Key: key, Value: strconv.FormatFloat(v, 'g', -1, 64)}
}

// Span is one timed operation inside a trace. StartNS and EndNS are
// virtual-time nanoseconds relative to the trace start.
type Span struct {
	// ID identifies the span within its trace (1-based, assigned in
	// creation order). Parent is the enclosing span's ID, 0 for roots.
	ID, Parent uint64
	// Name identifies the operation ("frontend", "leaf[3]/primary", ...).
	Name string
	// StartNS and EndNS bound the span in virtual time.
	StartNS, EndNS float64
	// Attrs are the span's annotations, sorted by key.
	Attrs []Attr
}

// DurationNS returns the span's virtual duration.
func (s Span) DurationNS() float64 { return s.EndNS - s.StartNS }

// Attr returns the value of the named annotation, or "".
func (s Span) Attr(key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Trace is one recorded request: an ID, a name, and its spans in creation
// order (parents before children).
type Trace struct {
	// ID orders traces within a Tracer (1-based, assigned at Begin).
	ID uint64
	// Name labels the trace ("query", "fleetprof[r=0.1]", ...).
	Name string
	// Spans are the trace's spans in creation order.
	Spans []Span
}

// Tracer collects traces from concurrent producers. A nil *Tracer is a
// valid disabled tracer: Enabled reports false and Begin returns a nil
// builder, so instrumented code pays one nil check on the disabled path.
type Tracer struct {
	mu     sync.Mutex
	nextID uint64
	traces []Trace
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Enabled reports whether spans are being collected (nil-safe).
func (t *Tracer) Enabled() bool { return t != nil }

// Begin starts a new trace and returns its builder. Trace IDs are assigned
// in Begin order: deterministic for single-driver runs, arrival-ordered
// under concurrent load (see the determinism contract). A nil tracer
// returns a nil builder, on which every method is a no-op.
func (t *Tracer) Begin(name string) *TraceBuilder {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	return &TraceBuilder{tracer: t, trace: Trace{ID: id, Name: name}}
}

// Traces returns the finished traces ordered by ID. The outer structures
// are copied defensively; span Attrs are shared read-only.
func (t *Tracer) Traces() []Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return copyTraces(t.traces)
}

// Take returns the finished traces ordered by ID and clears the tracer,
// bounding memory for long-running collection loops.
func (t *Tracer) Take() []Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := copyTraces(t.traces)
	t.traces = nil
	return out
}

// SpanCount returns the total spans across finished traces.
func (t *Tracer) SpanCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for i := range t.traces {
		n += len(t.traces[i].Spans)
	}
	return n
}

// copyTraces deep-copies the trace list (span slices included) so callers
// can never mutate tracer state, and sorts by ID: Finish order can differ
// from Begin order under concurrency, and exports must not inherit that.
func copyTraces(in []Trace) []Trace {
	out := make([]Trace, len(in))
	for i, tr := range in {
		tr.Spans = append([]Span(nil), tr.Spans...)
		out[i] = tr
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TraceBuilder accumulates one trace's spans. It is single-goroutine by
// design: concurrent code resolves outcomes first (in deterministic
// structural order) and then replays them through the builder.
type TraceBuilder struct {
	tracer *Tracer
	trace  Trace
}

// TraceID returns the trace's ID (0 on a nil builder).
func (b *TraceBuilder) TraceID() uint64 {
	if b == nil {
		return 0
	}
	return b.trace.ID
}

// Span appends a span under parent (0 for a root span) and returns its ID
// for use as a later span's parent. Attrs are sorted by key so span
// equality and export bytes are independent of call-site argument order.
// A nil builder returns 0.
func (b *TraceBuilder) Span(parent uint64, name string, startNS, endNS float64, attrs ...Attr) uint64 {
	if b == nil {
		return 0
	}
	if endNS < startNS {
		panic(fmt.Sprintf("obs: span %q ends (%g) before it starts (%g)", name, endNS, startNS))
	}
	sorted := append([]Attr(nil), attrs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	id := uint64(len(b.trace.Spans)) + 1
	b.trace.Spans = append(b.trace.Spans, Span{
		ID: id, Parent: parent, Name: name,
		StartNS: startNS, EndNS: endNS, Attrs: sorted,
	})
	return id
}

// Finish hands the completed trace to the tracer. The builder must not be
// used afterwards. A nil builder is a no-op.
func (b *TraceBuilder) Finish() {
	if b == nil {
		return
	}
	t := b.tracer
	t.mu.Lock()
	t.traces = append(t.traces, b.trace)
	t.mu.Unlock()
	b.tracer = nil
}
