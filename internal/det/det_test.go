package det

import (
	"cmp"
	"testing"
)

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"c": 3, "a": 1, "b": 2}
	got := SortedKeys(m)
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if out := SortedKeys(map[int]bool{}); len(out) != 0 {
		t.Fatalf("empty map: got %v", out)
	}
}

func TestSortedKeysFunc(t *testing.T) {
	m := map[int]string{1: "a", 3: "c", 2: "b"}
	got := SortedKeysFunc(m, func(a, b int) int { return cmp.Compare(b, a) }) // descending
	want := []int{3, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
