// Package det holds small determinism helpers: sorted views over maps so
// that iteration order — and therefore rendered tables, float sums, and
// anything else order-sensitive — is identical run-to-run. The searchlint
// maporder/floatacc analyzers point here as the canonical fix.
package det

import (
	"cmp"
	"slices"
)

// SortedKeys returns m's keys in ascending order. Ranging over the result
// replaces the nondeterministic `for k := range m` whenever order can leak
// into output or accumulation.
func SortedKeys[M ~map[K]V, K cmp.Ordered, V any](m M) []K {
	keys := make([]K, 0, len(m))
	//lint:ignore maporder collecting keys for sorting is the one sanctioned map range
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// SortedKeysFunc returns m's keys ordered by less, for key types without a
// natural order (or when a non-natural order is wanted).
func SortedKeysFunc[M ~map[K]V, K comparable, V any](m M, less func(a, b K) int) []K {
	keys := make([]K, 0, len(m))
	//lint:ignore maporder collecting keys for sorting is the one sanctioned map range
	for k := range m {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, less)
	return keys
}
