package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strconv"

	"searchmem/internal/det"
	"strings"
)

// A Package is one parsed, type-checked package of the module under
// analysis.
type Package struct {
	// Path is the import path ("searchmem/internal/cache").
	Path string
	// Dir is the absolute directory holding the sources.
	Dir string
	// Files are the parsed non-test sources, in file-name order.
	Files []*ast.File
	// Types and Info carry the go/types results.
	Types *types.Package
	Info  *types.Info
}

// A Module is a loaded Go module: every non-test package, type-checked.
type Module struct {
	// Dir is the absolute module root (the directory holding go.mod).
	Dir string
	// Path is the module path from go.mod.
	Path string
	// Fset positions every file of every package.
	Fset *token.FileSet
	// Pkgs holds all packages sorted by import path.
	Pkgs []*Package
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			if unq, err := strconv.Unquote(p); err == nil {
				p = unq
			}
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// StdImporter returns an importer that type-checks standard-library
// dependencies from source. It keeps the module zero-dependency: no
// golang.org/x/tools, no export-data archives required.
func StdImporter(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "source", nil)
}

// moduleImporter resolves module-local import paths from already-checked
// packages and everything else through the standard-library source importer.
type moduleImporter struct {
	std   types.Importer
	local map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.local[path]; ok {
		return pkg, nil
	}
	return m.std.Import(path)
}

// newInfo allocates a fully-populated types.Info.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// LoadModule loads and type-checks every non-test package of the module
// containing dir. Directories named testdata or vendor, and directories
// whose name starts with "." or "_", are skipped (so analyzer fixtures with
// intentional violations are never linted).
func LoadModule(dir string) (*Module, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	mod := &Module{Dir: root, Path: modPath, Fset: token.NewFileSet()}

	// Discover and parse every package directory.
	type parsed struct {
		pkg     *Package
		imports []string // module-local imports only
	}
	byPath := make(map[string]*parsed)
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, err := parseDir(mod.Fset, path)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		p := &parsed{pkg: &Package{Path: importPath, Dir: path, Files: files}}
		for _, f := range files {
			for _, imp := range f.Imports {
				ip, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
					p.imports = append(p.imports, ip)
				}
			}
		}
		byPath[importPath] = p
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Type-check in dependency order.
	imp := &moduleImporter{
		std:   StdImporter(mod.Fset),
		local: make(map[string]*types.Package),
	}
	checked := make(map[string]bool)
	onStack := make(map[string]bool)
	var check func(path string) error
	check = func(path string) error {
		if checked[path] {
			return nil
		}
		if onStack[path] {
			return fmt.Errorf("lint: import cycle through %s", path)
		}
		onStack[path] = true
		defer delete(onStack, path)
		p := byPath[path]
		for _, dep := range p.imports {
			if byPath[dep] == nil {
				return fmt.Errorf("lint: %s imports %s, which has no sources in the module", path, dep)
			}
			if err := check(dep); err != nil {
				return err
			}
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, mod.Fset, p.pkg.Files, info)
		if err != nil {
			return fmt.Errorf("lint: type-checking %s: %w", path, err)
		}
		p.pkg.Types = tpkg
		p.pkg.Info = info
		imp.local[path] = tpkg
		checked[path] = true
		return nil
	}
	paths := det.SortedKeys(byPath)
	for _, path := range paths {
		if err := check(path); err != nil {
			return nil, err
		}
	}
	for _, path := range paths {
		mod.Pkgs = append(mod.Pkgs, byPath[path].pkg)
	}
	return mod, nil
}

// parseDir parses the non-test .go files of one directory, in name order.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Match selects packages by Go-style patterns relative to the module root:
// "./..." (or "all") selects everything, "./x/..." a subtree, and "./x" a
// single package. Absolute and unprefixed relative paths are accepted too.
func (m *Module) Match(patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	selected := make(map[*Package]bool)
	var out []*Package
	for _, pat := range patterns {
		matched := false
		if pat == "all" || pat == "./..." || pat == "..." {
			for _, p := range m.Pkgs {
				if !selected[p] {
					selected[p] = true
					out = append(out, p)
				}
			}
			continue
		}
		tree := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			tree = true
			pat = rest
		}
		rel := strings.TrimPrefix(filepath.ToSlash(filepath.Clean(pat)), "./")
		want := m.Path
		if rel != "" && rel != "." {
			want = m.Path + "/" + rel
		}
		for _, p := range m.Pkgs {
			if p.Path == want || (tree && strings.HasPrefix(p.Path, want+"/")) {
				matched = true
				if !selected[p] {
					selected[p] = true
					out = append(out, p)
				}
			}
		}
		if !matched {
			return nil, fmt.Errorf("lint: pattern %q matched no packages", pat)
		}
	}
	return out, nil
}

// LoadFile parses and type-checks a single standalone file (an analyzer
// test fixture). Imports resolve through imp, which should come from
// StdImporter so fixtures may use the standard library.
func LoadFile(fset *token.FileSet, imp types.Importer, filename string) (*Package, error) {
	f, err := parser.ParseFile(fset, filename, nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(f.Name.Name, fset, []*ast.File{f}, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", filename, err)
	}
	return &Package{
		Path:  f.Name.Name,
		Dir:   filepath.Dir(filename),
		Files: []*ast.File{f},
		Types: tpkg,
		Info:  info,
	}, nil
}
