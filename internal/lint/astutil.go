package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// rootIdent walks selector/index/star/paren chains down to the base
// identifier, or returns nil for expressions rooted elsewhere (calls,
// literals, slice expressions).
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether the variable at the root of expr is
// declared outside the [lo, hi) source range (so mutations to it escape
// the range). Expressions with no identifiable root variable report false.
func declaredOutside(pass *Pass, expr ast.Expr, lo, hi token.Pos) bool {
	id := rootIdent(expr)
	if id == nil {
		return false
	}
	obj := pass.ObjectOf(id)
	if obj == nil || !obj.Pos().IsValid() {
		return false
	}
	return obj.Pos() < lo || obj.Pos() >= hi
}

// calleeFunc resolves the package-level function a call or selector refers
// to, or nil for methods, builtins, and locals.
func calleeFunc(pass *Pass, sel *ast.SelectorExpr) *types.Func {
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil
	}
	return fn
}

// isBuiltin reports whether the call expression invokes the named builtin.
func isBuiltin(pass *Pass, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.ObjectOf(id).(*types.Builtin)
	return ok
}

// basicInfo returns the types.BasicInfo of expr's underlying basic type,
// or 0 for non-basic types.
func basicInfo(pass *Pass, expr ast.Expr) types.BasicInfo {
	t := pass.TypeOf(expr)
	if t == nil {
		return 0
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return 0
	}
	return b.Info()
}

// isSliceOrMap reports whether t's underlying type is a slice or map.
func isSliceOrMap(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}
