package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AliasRet flags the aliasing bug class PR 1 fixed in the serving cache:
// a method on a lock-guarded or cache-like type (a struct with a sync.Mutex
// / sync.RWMutex field or a map field) that lets an internal slice or map
// escape — by returning it, or by storing a caller-owned parameter slice/map
// into it — without a defensive copy. Once an internal slice is shared with
// a caller, mutation on either side corrupts the cache behind the lock.
//
// The check is a per-method taint walk: values reached through the receiver
// (s.data, s.data[k], locals assigned from them) are "internal"; returning
// an internal slice/map, or storing an uncopied slice/map parameter into
// internal state, is a finding. Copies break the taint: a call result
// (append([]T(nil), x...)) and explicit sub-slicing are never flagged.
var AliasRet = &Analyzer{
	Name: "aliasret",
	Doc:  "methods on mutex-guarded or cache-like types must not leak internal slices/maps or retain caller-owned ones without copying",
	Run:  runAliasRet,
}

func runAliasRet(pass *Pass) {
	guarded := guardedTypes(pass)
	if len(guarded) == 0 {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			recvObj, why := receiverOfGuarded(pass, fd, guarded)
			if recvObj == nil {
				continue
			}
			checkMethodAliasing(pass, fd, recvObj, why)
		}
	}
}

// guardedTypes returns the package's named struct types that carry a
// sync.Mutex/RWMutex field or a map field, keyed by their TypeName, with a
// short human reason.
func guardedTypes(pass *Pass) map[*types.TypeName]string {
	out := make(map[*types.TypeName]string)
	for _, obj := range pass.Pkg.Info.Defs {
		tn, ok := obj.(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			ft := st.Field(i).Type()
			if isSyncMutex(ft) {
				out[tn] = "mutex-guarded"
				break
			}
			if _, ok := ft.Underlying().(*types.Map); ok {
				out[tn] = "cache-like (map field)"
				break
			}
		}
	}
	return out
}

func isSyncMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// receiverOfGuarded returns the receiver variable of fd if its base type is
// guarded, along with the guard reason.
func receiverOfGuarded(pass *Pass, fd *ast.FuncDecl, guarded map[*types.TypeName]string) (types.Object, string) {
	fields := fd.Recv.List
	if len(fields) != 1 || len(fields[0].Names) != 1 {
		return nil, "" // unnamed receiver: the body cannot reach its state
	}
	id := fields[0].Names[0]
	obj := pass.Pkg.Info.Defs[id]
	if obj == nil {
		return nil, ""
	}
	t := obj.Type()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, ""
	}
	why, ok := guarded[named.Obj()]
	if !ok {
		return nil, ""
	}
	return obj, why
}

// checkMethodAliasing taints values reached through the receiver and
// reports escapes. The walk visits statements in source order, which is
// enough precision for this heuristic: copies assigned back to a parameter
// (p = append([]T(nil), p...)) kill the parameter before later stores.
func checkMethodAliasing(pass *Pass, fd *ast.FuncDecl, recvObj types.Object, why string) {
	recvName := recvObj.Name()
	typeName := recvTypeName(recvObj)

	// Caller-owned slice/map parameters.
	params := make(map[types.Object]bool)
	for _, field := range fd.Type.Params.List {
		for _, id := range field.Names {
			if obj := pass.Pkg.Info.Defs[id]; obj != nil && isSliceOrMap(obj.Type()) {
				params[obj] = true
			}
		}
	}

	tainted := make(map[types.Object]bool)
	killed := make(map[types.Object]bool)

	// chain resolves expr to its root identifier and the number of
	// selector/index steps taken. Calls and slice expressions block the
	// chain: their results are fresh (or deliberately windowed) values.
	chain := func(expr ast.Expr) (types.Object, int) {
		steps := 0
		for {
			switch e := expr.(type) {
			case *ast.Ident:
				return pass.ObjectOf(e), steps
			case *ast.SelectorExpr:
				steps++
				expr = e.X
			case *ast.IndexExpr:
				steps++
				expr = e.X
			case *ast.ParenExpr:
				expr = e.X
			case *ast.StarExpr:
				expr = e.X
			default:
				return nil, 0
			}
		}
	}
	internal := func(expr ast.Expr) bool {
		obj, steps := chain(expr)
		if obj == nil {
			return false
		}
		if obj == recvObj {
			return steps > 0 // the receiver itself is not a container
		}
		return tainted[obj]
	}
	reportStore := func(pos token.Pos, param types.Object, dst ast.Expr) {
		pass.Reportf(pos, "%s.%s stores caller-owned %s %q into %s %s state (%s) without copying; append([]T(nil), %s...) first",
			typeName, fd.Name.Name, typeKind(param.Type()), param.Name(), recvName, why, types.ExprString(dst), param.Name())
	}
	checkStoredValue := func(pos token.Pos, dst, val ast.Expr) {
		switch v := val.(type) {
		case *ast.Ident:
			if obj := pass.ObjectOf(v); obj != nil && params[obj] && !killed[obj] {
				reportStore(pos, obj, dst)
			}
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				if lit, ok := v.X.(*ast.CompositeLit); ok {
					checkCompositeLit(pass, pos, dst, lit, params, killed, reportStore)
				}
			}
		case *ast.CompositeLit:
			checkCompositeLit(pass, pos, dst, v, params, killed, reportStore)
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			pairs := len(n.Lhs)
			commaOK := len(n.Rhs) == 1 && len(n.Lhs) == 2
			for i := 0; i < pairs; i++ {
				var rhs ast.Expr
				switch {
				case i < len(n.Rhs) && len(n.Rhs) == len(n.Lhs):
					rhs = n.Rhs[i]
				case commaOK && i == 0:
					rhs = n.Rhs[0]
				default:
					continue
				}
				lhs := n.Lhs[i]
				if id, ok := lhs.(*ast.Ident); ok {
					// Rebinding a local or parameter, not writing state.
					obj := pass.ObjectOf(id)
					if obj == nil {
						continue
					}
					if internal(rhs) {
						tainted[obj] = true
					} else {
						delete(tainted, obj)
						if _, isCall := rhs.(*ast.CallExpr); isCall && params[obj] {
							killed[obj] = true // p = append([]T(nil), p...)
						}
					}
					continue
				}
				// Writing through a field/index chain into internal state.
				if obj, steps := chain(lhs); steps > 0 && (obj == recvObj || tainted[obj]) {
					checkStoredValue(n.Pos(), lhs, rhs)
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if internal(res) && isSliceOrMap(pass.TypeOf(res)) {
					pass.Reportf(n.Pos(), "%s.%s returns %s, a %s aliasing %s state (%s); return a copy (append([]T(nil), ...))",
						typeName, fd.Name.Name, types.ExprString(res), typeKind(pass.TypeOf(res)), recvName, why)
					continue
				}
				// Snapshot-struct escapes: returning a composite literal
				// (or &literal) whose fields carry internal slices/maps
				// aliases state just as directly as returning them bare.
				lit, ok := res.(*ast.CompositeLit)
				if !ok {
					if ue, isAddr := res.(*ast.UnaryExpr); isAddr && ue.Op == token.AND {
						lit, ok = ue.X.(*ast.CompositeLit)
					}
				}
				if ok {
					var visit func(l *ast.CompositeLit)
					visit = func(l *ast.CompositeLit) {
						for _, elt := range l.Elts {
							val := elt
							if kv, isKV := elt.(*ast.KeyValueExpr); isKV {
								val = kv.Value
							}
							if nested, isLit := val.(*ast.CompositeLit); isLit {
								visit(nested)
								continue
							}
							if internal(val) && isSliceOrMap(pass.TypeOf(val)) {
								pass.Reportf(n.Pos(), "%s.%s returns a composite literal carrying %s, a %s aliasing %s state (%s); copy it first (append([]T(nil), ...))",
									typeName, fd.Name.Name, types.ExprString(val), typeKind(pass.TypeOf(val)), recvName, why)
							}
						}
					}
					visit(lit)
				}
			}
		}
		return true
	})
}

// checkCompositeLit flags uncopied slice/map parameters stored through a
// composite literal (the &cacheEntry{docs: docs} pattern).
func checkCompositeLit(pass *Pass, pos token.Pos, dst ast.Expr, lit *ast.CompositeLit,
	params map[types.Object]bool, killed map[types.Object]bool,
	report func(token.Pos, types.Object, ast.Expr)) {
	for _, elt := range lit.Elts {
		val := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			val = kv.Value
		}
		if id, ok := val.(*ast.Ident); ok {
			if obj := pass.ObjectOf(id); obj != nil && params[obj] && !killed[obj] {
				report(pos, obj, dst)
			}
		}
	}
}

// recvTypeName names the receiver's base named type.
func recvTypeName(obj types.Object) string {
	t := obj.Type()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return "receiver"
}

func typeKind(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "value"
}
