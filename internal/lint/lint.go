// Package lint is a zero-dependency static-analysis framework for this
// module. It loads and type-checks every package using only the standard
// library (go/parser, go/types and the "source" importer for standard-library
// dependencies), runs a set of pluggable analyzers, and reports diagnostics
// in the familiar "file:line:col: [analyzer] message" shape.
//
// The analyzers mechanize the determinism and aliasing invariants the
// simulator depends on (see DESIGN.md, "Determinism & aliasing invariants"):
// simulation results must be bit-for-bit reproducible run-to-run, so wall
// clocks, the global math/rand source, map-iteration-order-dependent output
// and accumulation, and internal slices escaping lock-guarded caches are all
// findings.
//
// Findings can be suppressed, with a mandatory justification, by a comment
// on the offending line or on the line directly above it:
//
//	//lint:ignore walltime CLI progress timer, never feeds simulation state
//
// Several analyzers may be named, comma-separated. A directive without a
// reason is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"searchmem/internal/det"
)

// An Analyzer checks one invariant over a type-checked package.
type Analyzer struct {
	// Name is the identifier used in diagnostics and ignore directives.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run inspects pass.Pkg and reports findings via pass.Reportf.
	Run func(*Pass)
}

// A Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Chain is the hot call chain leading to the finding (root first),
	// set by interprocedural analyzers; empty for per-function findings.
	Chain []string
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	// Graph is the static call graph over every package of the Check run
	// (not just Pkg), shared by all passes. See callgraph.go.
	Graph *CallGraph

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportChain records a finding reached through a call chain (root first).
// The rendered message is prefixed with the chain so the plain-text output
// explains *why* the position is hot; the structured chain also rides the
// diagnostic for machine-readable output.
func (p *Pass) ReportChain(pos token.Pos, chain []string, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if len(chain) > 0 {
		msg = fmt.Sprintf("hot path (%s): %s", strings.Join(chain, " -> "), msg)
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  msg,
		Chain:    chain,
	})
}

// TypeOf returns the type of expr, or nil if unknown.
func (p *Pass) TypeOf(expr ast.Expr) types.Type { return p.Pkg.Info.TypeOf(expr) }

// ObjectOf returns the object an identifier denotes (definition or use),
// or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if obj := p.Pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Uses[id]
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos       token.Position
	file      string
	line      int
	analyzers map[string]bool
	reason    string
}

const ignorePrefix = "//lint:ignore"

// parseIgnores extracts the ignore directives of a file. Malformed
// directives (no analyzer, or no reason) are reported as findings of the
// pseudo-analyzer "lint" so they cannot silently suppress nothing.
func parseIgnores(fset *token.FileSet, file *ast.File, diags *[]Diagnostic) []ignoreDirective {
	var out []ignoreDirective
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
			names, reason, _ := strings.Cut(rest, " ")
			reason = strings.TrimSpace(reason)
			if names == "" || reason == "" {
				*diags = append(*diags, Diagnostic{
					Pos:      pos,
					Analyzer: "lint",
					Message:  "malformed ignore directive: want //lint:ignore <analyzer>[,<analyzer>] <reason>",
				})
				continue
			}
			d := ignoreDirective{
				pos:       pos,
				file:      pos.Filename,
				line:      pos.Line,
				analyzers: make(map[string]bool),
				reason:    reason,
			}
			for _, n := range strings.Split(names, ",") {
				d.analyzers[strings.TrimSpace(n)] = true
			}
			out = append(out, d)
		}
	}
	return out
}

// suppresses reports whether directive d covers diagnostic diag: same file,
// the named analyzer, and the diagnostic sits on the directive's own line
// (trailing comment) or on the line directly below (standalone comment).
func (d ignoreDirective) suppresses(diag Diagnostic) bool {
	if diag.Pos.Filename != d.file || !d.analyzers[diag.Analyzer] {
		return false
	}
	return diag.Pos.Line == d.line || diag.Pos.Line == d.line+1
}

// Check runs every analyzer over every package, applies //lint:ignore
// suppressions, and returns the surviving diagnostics sorted by position.
func Check(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	var directives []ignoreDirective
	graph := BuildCallGraph(fset, pkgs)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			directives = append(directives, parseIgnores(fset, f, &raw)...)
		}
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Fset: fset, Pkg: pkg, Graph: graph, diags: &raw}
			a.Run(pass)
		}
	}

	// A directive naming an analyzer that does not exist suppresses nothing,
	// silently — the classic rot path when analyzers are renamed. Validate
	// against the full registry (not the selected subset, so running one
	// analyzer does not flag directives aimed at the others).
	known := map[string]bool{"lint": true}
	for _, a := range Analyzers {
		known[a.Name] = true
	}
	for _, dir := range directives {
		for _, n := range det.SortedKeys(dir.analyzers) {
			if !known[n] {
				raw = append(raw, Diagnostic{
					Pos:      dir.pos,
					Analyzer: "lint",
					Message:  fmt.Sprintf("ignore directive names unknown analyzer %q and suppresses nothing", n),
				})
			}
		}
	}

	var out []Diagnostic
	seen := make(map[string]bool)
	for _, d := range raw {
		suppressed := false
		for _, dir := range directives {
			if dir.suppresses(d) {
				suppressed = true
				break
			}
		}
		if suppressed {
			continue
		}
		// Nested map ranges (and analyzers sharing a walk) can produce the
		// same finding twice; report each (pos, analyzer, message) once.
		if key := d.String(); !seen[key] {
			seen[key] = true
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// Analyzers is the full suite, in reporting order.
var Analyzers = []*Analyzer{
	Walltime,
	GlobalRand,
	MapOrder,
	FloatAcc,
	AliasRet,
	BatchAlias,
	HotAlloc,
}

// ByName returns the analyzers matching the comma-separated names list, or
// an error naming the first unknown entry. An empty list selects the full
// suite.
func ByName(names string) ([]*Analyzer, error) {
	if strings.TrimSpace(names) == "" {
		return Analyzers, nil
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		found := false
		for _, a := range Analyzers {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
	}
	return out, nil
}
