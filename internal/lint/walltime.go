package lint

import (
	"go/ast"
)

// wallFuncs are the package time functions that read or wait on the wall
// clock. Types and constants (time.Duration, time.Millisecond) stay legal:
// virtual time is denominated in time.Duration throughout the simulator.
var wallFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTicker": true,
	"NewTimer":  true,
}

// Walltime flags every use of the wall clock. Simulation and serving paths
// run on virtual time (seeded service-time models, not the host clock), so
// any time.Now/Since/Sleep reachable from them makes runs irreproducible
// and couples figures to host load. Deliberate wall-clock use — progress
// timers in CLIs — must carry a //lint:ignore walltime justification.
var Walltime = &Analyzer{
	Name: "walltime",
	Doc:  "wall-clock time (time.Now/Since/Sleep/...) is forbidden; simulation and serving use virtual time",
	Run: func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass, sel)
				if fn == nil || fn.Pkg().Path() != "time" || !wallFuncs[fn.Name()] {
					return true
				}
				pass.Reportf(sel.Pos(), "time.%s reads the wall clock; use virtual time (or justify with //lint:ignore walltime <reason>)", fn.Name())
				return true
			})
		}
	},
}
