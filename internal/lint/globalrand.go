package lint

import (
	"go/ast"
	"strings"
)

// randConstructors build explicitly-seeded generators and are therefore not
// draws from the shared global source.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// GlobalRand flags math/rand (and math/rand/v2) package-level functions:
// they draw from a process-global, unseeded-by-default source, so two runs
// with the same experiment seed diverge. All randomness must flow through
// the explicitly-seeded stats.RNG; only internal/stats, the module's single
// randomness authority, is exempt.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "math/rand top-level functions use the global source; all randomness must flow through the seeded stats.RNG",
	Run: func(pass *Pass) {
		if strings.HasSuffix(pass.Pkg.Path, "internal/stats") {
			return
		}
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass, sel)
				if fn == nil {
					return true
				}
				if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
					return true
				}
				if randConstructors[fn.Name()] {
					return true
				}
				pass.Reportf(sel.Pos(), "rand.%s draws from the global math/rand source; use the seeded stats.RNG instead", fn.Name())
				return true
			})
		}
	},
}
