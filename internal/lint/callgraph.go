package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the interprocedural backbone of the lint suite: a static
// call graph over the analyzed packages (DESIGN.md §13). Resolution is
// CHA-style (class-hierarchy analysis): a static call has exactly its named
// callee; an interface method call targets the matching method of *every*
// analyzed concrete type that implements the interface; a call through a
// plain function value (field, variable, parameter) has no resolvable target
// and is surfaced to analyzers as a dynamic site. Callees whose bodies live
// outside the analyzed packages (the standard library) appear as targets
// without nodes; the hotalloc analyzer judges those through its summary
// table.
//
// Soundness limits, by construction:
//   - CHA only sees types of the packages handed to Check. Linting a package
//     subset can therefore miss implementations (and report calls into
//     unanalyzed module code conservatively); `make lint` always loads ./...
//   - Function values are never resolved, even when only one function is
//     ever assigned; such sites are reported, not silently trusted.
//   - Reflection and linkname tricks are invisible (the module uses neither).

// SiteKind classifies how a call site's callee is resolved.
type SiteKind uint8

const (
	// SiteStatic is a direct call to a named function or concrete method.
	SiteStatic SiteKind = iota
	// SiteInterface is a method call through an interface value; Targets
	// holds the CHA-resolved implementations among analyzed types.
	SiteInterface
	// SiteDynamic is a call through a function value (variable, field,
	// parameter, method value); it has no resolvable targets.
	SiteDynamic
)

// CallSite is one call expression inside a function body (including bodies
// of nested function literals, which execute as part of — or on behalf of —
// their enclosing function).
type CallSite struct {
	// Call is the call expression.
	Call *ast.CallExpr
	// Kind classifies the resolution.
	Kind SiteKind
	// Targets are the resolved callees, sorted by full name. Static sites
	// have exactly one; interface sites have the CHA set (possibly empty);
	// dynamic sites have none.
	Targets []*types.Func
	// Iface is the interface method called at a SiteInterface site (the
	// abstract *types.Func, e.g. (io.ReaderAt).ReadAt), nil otherwise.
	Iface *types.Func
	// Label describes the callee for diagnostics ("(*Cache).touch", the
	// expression text of a dynamic callee, ...).
	Label string
	// Cold reports that the site sits on a failure-exit path (see
	// coldRanges) and so runs at most once per invocation, not per element.
	Cold bool
}

// CallNode is one function with a body in the analyzed packages.
type CallNode struct {
	// Fn is the function object (the canonical node key).
	Fn *types.Func
	// Decl is the syntax, Pkg the analyzed package holding it.
	Decl *ast.FuncDecl
	Pkg  *Package
	// Hot reports a //lint:hot annotation on the declaration.
	Hot bool
	// Sites are the call sites of the body in source order.
	Sites []*CallSite
	// cold are the failure-exit source ranges of the body.
	cold []posRange
}

// Name returns the function's display name — "pkg-local" for plain
// functions, "(*Recv).Method" for methods — matching the names used in
// diagnostic chains.
func (n *CallNode) Name() string { return displayName(n.Fn) }

// ColdAt reports whether pos lies on one of the node's failure-exit paths.
func (n *CallNode) ColdAt(pos token.Pos) bool {
	for _, r := range n.cold {
		if pos >= r.lo && pos < r.hi {
			return true
		}
	}
	return false
}

// CallGraph is the static call graph over a set of analyzed packages.
type CallGraph struct {
	fset  *token.FileSet
	nodes map[*types.Func]*CallNode
	order []*CallNode // deterministic: package path, then file position

	// concrete holds every non-interface named type of the analyzed
	// packages, the CHA candidate set.
	concrete []types.Type
}

// Node returns the graph node for fn, or nil when fn's body is not among the
// analyzed packages.
func (g *CallGraph) Node(fn *types.Func) *CallNode { return g.nodes[fn] }

// Nodes returns every node in deterministic order. The slice is shared:
// callers must treat it as read-only.
func (g *CallGraph) Nodes() []*CallNode {
	//lint:ignore aliasret analyzers iterate the node list read-only on every query; copying it per call is pure waste
	return g.order
}

// Fset returns the file set positioning the graph's syntax.
func (g *CallGraph) Fset() *token.FileSet { return g.fset }

// hotDirective marks a function whose call tree must stay allocation-free.
const hotDirective = "//lint:hot"

// BuildCallGraph constructs the call graph over pkgs. Every function or
// method declared with a body becomes a node; nested function literals are
// folded into their enclosing declaration.
func BuildCallGraph(fset *token.FileSet, pkgs []*Package) *CallGraph {
	g := &CallGraph{fset: fset, nodes: make(map[*types.Func]*CallNode)}

	// Collect CHA candidates: every non-interface named type.
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		names := scope.Names()
		sort.Strings(names)
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			t := tn.Type()
			if !types.IsInterface(t) {
				g.concrete = append(g.concrete, t)
			}
		}
	}

	// Create nodes, then resolve their call sites.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &CallNode{
					Fn:   fn,
					Decl: fd,
					Pkg:  pkg,
					Hot:  isHotAnnotated(fd),
					cold: coldRanges(fd.Body),
				}
				g.nodes[fn] = node
				g.order = append(g.order, node)
			}
		}
	}
	for _, node := range g.order {
		g.resolveSites(node)
	}
	return g
}

// isHotAnnotated reports whether the declaration's doc comment carries a
// //lint:hot directive.
func isHotAnnotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == hotDirective || strings.HasPrefix(c.Text, hotDirective+" ") {
			return true
		}
	}
	return false
}

// resolveSites walks node's body (and nested literals) and records one
// CallSite per call expression.
func (g *CallGraph) resolveSites(node *CallNode) {
	info := node.Pkg.Info
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		site := g.resolveCall(info, call)
		if site != nil {
			site.Cold = node.ColdAt(call.Pos())
			node.Sites = append(node.Sites, site)
		}
		return true
	})
}

// resolveCall classifies one call expression, or returns nil for non-call
// shapes sharing the syntax (type conversions, builtins — the analyzers
// handle those directly).
func (g *CallGraph) resolveCall(info *types.Info, call *ast.CallExpr) *CallSite {
	fun := ast.Unparen(call.Fun)
	// Generic instantiations: unwrap f[T](...) to f.
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		if tv, ok := info.Types[idx.X]; ok && tv.IsValue() {
			fun = idx.X
		}
	case *ast.IndexListExpr:
		fun = idx.X
	}
	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := objectOf(info, f).(type) {
		case *types.Builtin, *types.TypeName, nil:
			return nil // builtin or conversion: handled by the analyzers
		case *types.Func:
			return &CallSite{Call: call, Kind: SiteStatic, Targets: []*types.Func{obj}, Label: g.NameFor(obj)}
		default:
			// A variable of function type (local, parameter, global).
			return &CallSite{Call: call, Kind: SiteDynamic, Label: f.Name}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			switch sel.Kind() {
			case types.MethodVal:
				m, ok := sel.Obj().(*types.Func)
				if !ok {
					return nil
				}
				if types.IsInterface(sel.Recv()) {
					return &CallSite{
						Call:    call,
						Kind:    SiteInterface,
						Targets: g.implementersOf(sel.Recv(), m),
						Iface:   m,
						Label:   displayName(m),
					}
				}
				return &CallSite{Call: call, Kind: SiteStatic, Targets: []*types.Func{m}, Label: displayName(m)}
			default:
				// Method expression or func-typed field: dynamic.
				return &CallSite{Call: call, Kind: SiteDynamic, Label: types.ExprString(f)}
			}
		}
		// Qualified identifier: pkg.Func, pkg.Var, or a conversion.
		switch obj := objectOf(info, f.Sel).(type) {
		case *types.Func:
			return &CallSite{Call: call, Kind: SiteStatic, Targets: []*types.Func{obj}, Label: g.NameFor(obj)}
		case *types.TypeName, *types.Builtin, nil:
			return nil
		default:
			return &CallSite{Call: call, Kind: SiteDynamic, Label: types.ExprString(f)}
		}
	case *ast.FuncLit:
		// Immediately-invoked literal: its body is already folded into the
		// enclosing node's walk; no edge needed.
		return nil
	default:
		if tv, ok := info.Types[fun]; ok && tv.IsType() {
			return nil // conversion like []byte(s)
		}
		return &CallSite{Call: call, Kind: SiteDynamic, Label: types.ExprString(fun)}
	}
}

// implementersOf returns the concrete methods implementing interface method
// m among the analyzed named types, sorted by full name.
func (g *CallGraph) implementersOf(iface types.Type, m *types.Func) []*types.Func {
	i, ok := iface.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*types.Func
	seen := make(map[*types.Func]bool)
	for _, t := range g.concrete {
		var impl types.Type
		switch {
		case types.Implements(t, i):
			impl = t
		case types.Implements(types.NewPointer(t), i):
			impl = types.NewPointer(t)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, m.Pkg(), m.Name())
		if fn, ok := obj.(*types.Func); ok && !seen[fn] {
			seen[fn] = true
			out = append(out, fn)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].FullName() < out[b].FullName() })
	return out
}

// objectOf returns the object an identifier denotes in info (definition or
// use), or nil.
func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// displayName renders a function for diagnostics: methods as
// "(*Cache).touch", plain functions by bare name.
func displayName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		recv := types.TypeString(sig.Recv().Type(), func(*types.Package) string { return "" })
		if strings.HasPrefix(recv, "*") {
			return "(" + recv + ")." + fn.Name()
		}
		return recv + "." + fn.Name()
	}
	return fn.Name()
}

// NameFor renders fn for diagnostics, qualifying functions external to the
// analyzed packages with their package name ("fmt.Errorf") so call chains
// stay readable without import-path noise.
func (g *CallGraph) NameFor(fn *types.Func) string {
	name := displayName(fn)
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil &&
		g.nodes[fn] == nil && fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

// posRange is a half-open source position interval.
type posRange struct{ lo, hi token.Pos }

// coldRanges returns the failure-exit ranges of a function body: blocks that
// terminate the function rather than iterate. Two shapes qualify:
//
//   - a conditional block (if/else body, switch/select clause) whose
//     statement list ends in a return or a panic — the early-exit guard
//     idiom, taken at most once per call and usually only on corrupt input;
//   - any block whose statement list ends in a panic — assertion tails.
//
// The hotalloc analyzer exempts allocations and skips call edges inside
// these ranges: a path that leaves the kernel cannot run per element. This
// is a heuristic (a conditional return CAN be the common case); the dynamic
// AllocsPerRun oracle backstops it (DESIGN.md §13).
func coldRanges(body *ast.BlockStmt) []posRange {
	var out []posRange
	addList := func(list []ast.Stmt) {
		if len(list) == 0 {
			return
		}
		out = append(out, posRange{lo: list[0].Pos(), hi: list[len(list)-1].End()})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.IfStmt:
			if terminatesExit(s.Body.List) {
				addList(s.Body.List)
			}
			if eb, ok := s.Else.(*ast.BlockStmt); ok && terminatesExit(eb.List) {
				addList(eb.List)
			}
		case *ast.CaseClause:
			if terminatesExit(s.Body) {
				addList(s.Body)
			}
		case *ast.CommClause:
			if terminatesExit(s.Body) {
				addList(s.Body)
			}
		case *ast.BlockStmt:
			if endsInPanic(s.List) {
				addList(s.List)
			}
		}
		return true
	})
	return out
}

// terminatesExit reports whether a statement list ends by leaving the
// function: a return, or a panic call.
func terminatesExit(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		return isPanicCall(last.X)
	}
	return false
}

// endsInPanic reports whether a statement list ends with a panic call.
func endsInPanic(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	es, ok := list[len(list)-1].(*ast.ExprStmt)
	return ok && isPanicCall(es.X)
}

// isPanicCall reports whether expr is a call to the panic builtin.
func isPanicCall(expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
