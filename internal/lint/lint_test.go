package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

func parseSrc(t *testing.T, fset *token.FileSet, src string) *Package {
	t.Helper()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Path: "fixture", Files: []*ast.File{f}}
}

func TestMalformedIgnoreDirectives(t *testing.T) {
	fset := token.NewFileSet()
	pkg := parseSrc(t, fset, `package p

//lint:ignore walltime
var a int

//lint:ignore
var b int

//lint:ignore walltime a good reason
var c int
`)
	diags := Check(fset, []*Package{pkg}, nil)
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 malformed-directive findings: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer != "lint" {
			t.Errorf("malformed directive reported by %q, want pseudo-analyzer lint", d.Analyzer)
		}
	}
}

func TestSuppressionWindow(t *testing.T) {
	dir := ignoreDirective{
		file:      "f.go",
		line:      10,
		analyzers: map[string]bool{"walltime": true},
		reason:    "r",
	}
	mk := func(file string, line int, analyzer string) Diagnostic {
		return Diagnostic{Pos: token.Position{Filename: file, Line: line}, Analyzer: analyzer}
	}
	cases := []struct {
		d    Diagnostic
		want bool
	}{
		{mk("f.go", 10, "walltime"), true},  // trailing comment, same line
		{mk("f.go", 11, "walltime"), true},  // standalone comment, line above
		{mk("f.go", 12, "walltime"), false}, // too far below
		{mk("f.go", 9, "walltime"), false},  // directives never reach upward
		{mk("f.go", 10, "maporder"), false}, // other analyzer
		{mk("g.go", 10, "walltime"), false}, // other file
	}
	for i, c := range cases {
		if got := dir.suppresses(c.d); got != c.want {
			t.Errorf("case %d: suppresses(%+v) = %v, want %v", i, c.d.Pos, got, c.want)
		}
	}
}

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != len(Analyzers) {
		t.Fatalf("empty selector: got %d analyzers, err %v; want the full suite", len(all), err)
	}
	two, err := ByName("walltime, maporder")
	if err != nil || len(two) != 2 || two[0].Name != "walltime" || two[1].Name != "maporder" {
		t.Fatalf("ByName(walltime, maporder) = %v, %v", two, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) succeeded, want error")
	}
}

// TestLoadModuleSynthetic builds a toy module on disk and checks discovery,
// dependency-ordered type-checking, testdata skipping, and Match patterns.
func TestLoadModuleSynthetic(t *testing.T) {
	root := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module toy\n\ngo 1.22\n")
	write("a/a.go", "package a\n\nconst N = 3\n")
	write("b/b.go", "package b\n\nimport \"toy/a\"\n\nvar M = a.N * 2\n")
	write("b/testdata/ignored.go", "package broken // never parsed: would fail to type-check\nfunc (")

	mod, err := LoadModule(filepath.Join(root, "b"))
	if err != nil {
		t.Fatal(err)
	}
	if mod.Path != "toy" || mod.Dir != root {
		t.Fatalf("module = %q at %q, want toy at %q", mod.Path, mod.Dir, root)
	}
	if len(mod.Pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2 (a, b): %+v", len(mod.Pkgs), mod.Pkgs)
	}

	sub, err := mod.Match([]string{"./a"})
	if err != nil || len(sub) != 1 || sub[0].Path != "toy/a" {
		t.Fatalf("Match(./a) = %v, %v", sub, err)
	}
	all, err := mod.Match([]string{"./..."})
	if err != nil || len(all) != 2 {
		t.Fatalf("Match(./...) = %v, %v", all, err)
	}
	if _, err := mod.Match([]string{"./nosuch"}); err == nil {
		t.Fatal("Match(./nosuch) succeeded, want error")
	}
}
