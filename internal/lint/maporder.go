package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// accumTokens are the compound-assignment operators that fold a value into
// an existing variable.
var accumTokens = map[token.Token]bool{
	token.ADD_ASSIGN:     true,
	token.SUB_ASSIGN:     true,
	token.MUL_ASSIGN:     true,
	token.QUO_ASSIGN:     true,
	token.REM_ASSIGN:     true,
	token.AND_ASSIGN:     true,
	token.OR_ASSIGN:      true,
	token.XOR_ASSIGN:     true,
	token.SHL_ASSIGN:     true,
	token.SHR_ASSIGN:     true,
	token.AND_NOT_ASSIGN: true,
}

// writeMethods are output-sink method names (io.Writer, strings.Builder,
// bytes.Buffer, tabwriter, ...).
var writeMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
}

// MapOrder flags loops that range over a map while doing something whose
// result depends on iteration order: appending to an outer slice, writing
// output, or accumulating into an outer integer or string. Go randomizes
// map iteration order per run, so such loops corrupt rendered tables and
// orderings even when every element is itself deterministic. Fix by
// iterating sorted keys (det.SortedKeys). Float accumulation — the variant
// that also perturbs sums through non-associative rounding — is reported
// separately by floatacc.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "ranging over a map while appending, writing output, or accumulating depends on nondeterministic iteration order",
	Run: func(pass *Pass) {
		inspectMapRanges(pass, func(rs *ast.RangeStmt) {
			checkMapRangeBody(pass, rs, false)
		})
	},
}

// FloatAcc flags floating-point accumulation inside a map-range body.
// Beyond the ordering problem maporder reports, float addition is not
// associative: summing in map order yields run-to-run differing low bits,
// which the paper's derived metrics (MPKI ratios, QPS deltas) then amplify.
var FloatAcc = &Analyzer{
	Name: "floatacc",
	Doc:  "float += inside a map range accumulates in nondeterministic order; float addition is not associative",
	Run: func(pass *Pass) {
		inspectMapRanges(pass, func(rs *ast.RangeStmt) {
			checkMapRangeBody(pass, rs, true)
		})
	},
}

// inspectMapRanges invokes visit for every range statement over a map.
func inspectMapRanges(pass *Pass, visit func(*ast.RangeStmt)) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if isMapType(pass.TypeOf(rs.X)) {
				visit(rs)
			}
			return true
		})
	}
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRangeBody walks one map-range body. With wantFloat it reports
// float/complex accumulation (floatacc); otherwise appends, output writes,
// and integer/string accumulation (maporder). Diagnostics anchor at the
// range's `for` keyword so one //lint:ignore above the loop covers the
// whole body. Nested map ranges are skipped: they report on their own.
func checkMapRangeBody(pass *Pass, rs *ast.RangeStmt, wantFloat bool) {
	lo, hi := rs.Pos(), rs.End()
	report := func(pos token.Pos, desc string) {
		line := pass.Fset.Position(pos).Line
		if wantFloat {
			pass.Reportf(rs.For, "%s (line %d) inside map iteration: float addition is not associative, so the sum depends on nondeterministic map order; iterate sorted keys", desc, line)
			return
		}
		pass.Reportf(rs.For, "%s (line %d) depends on nondeterministic map iteration order; iterate sorted keys instead", desc, line)
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.RangeStmt); ok && inner != rs && isMapType(pass.TypeOf(inner.X)) {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, n, lo, hi, wantFloat, report)
		case *ast.CallExpr:
			if !wantFloat {
				checkOutputCall(pass, n, lo, hi, report)
			}
		}
		return true
	})
}

// checkAssign classifies one assignment inside a map-range body.
func checkAssign(pass *Pass, as *ast.AssignStmt, lo, hi token.Pos, wantFloat bool, report func(token.Pos, string)) {
	// Compound accumulation: x += v, x *= v, ...
	if accumTokens[as.Tok] && len(as.Lhs) == 1 {
		if declaredOutside(pass, as.Lhs[0], lo, hi) {
			reportAccum(pass, as.Lhs[0], as.Pos(), as.Tok.String(), wantFloat, report)
		}
		return
	}
	if as.Tok != token.ASSIGN {
		return // := declares per-iteration variables; nothing escapes
	}
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) {
			break
		}
		lhs := as.Lhs[i]
		// x = append(x, ...) growing a slice declared outside the loop.
		if call, ok := rhs.(*ast.CallExpr); ok && isBuiltin(pass, call, "append") {
			if !wantFloat && declaredOutside(pass, lhs, lo, hi) {
				report(as.Pos(), fmt.Sprintf("append to %s", types.ExprString(lhs)))
			}
			continue
		}
		// Spelled-out accumulation: x = x + v (or -, *, /).
		if bin, ok := rhs.(*ast.BinaryExpr); ok && declaredOutside(pass, lhs, lo, hi) {
			switch bin.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO:
			default:
				continue
			}
			ls := types.ExprString(lhs)
			if types.ExprString(bin.X) == ls || types.ExprString(bin.Y) == ls {
				reportAccum(pass, lhs, as.Pos(), "= "+ls+" "+bin.Op.String(), wantFloat, report)
			}
		}
	}
}

// reportAccum reports an accumulation if its element type matches the
// analyzer's class: float/complex for floatacc, integer/string for maporder.
func reportAccum(pass *Pass, lhs ast.Expr, pos token.Pos, op string, wantFloat bool, report func(token.Pos, string)) {
	info := basicInfo(pass, lhs)
	isFloat := info&(types.IsFloat|types.IsComplex) != 0
	isOrdered := info&(types.IsInteger|types.IsString) != 0
	if wantFloat && isFloat {
		report(pos, fmt.Sprintf("accumulation %s %s", types.ExprString(lhs), op))
	}
	if !wantFloat && isOrdered {
		report(pos, fmt.Sprintf("accumulation %s %s", types.ExprString(lhs), op))
	}
}

// checkOutputCall reports calls that emit output from inside a map range:
// fmt.Print/Fprint families and Write* methods on sinks declared outside
// the loop.
func checkOutputCall(pass *Pass, call *ast.CallExpr, lo, hi token.Pos, report func(token.Pos, string)) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if fn := calleeFunc(pass, sel); fn != nil {
		if fn.Pkg().Path() == "fmt" &&
			(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
			report(call.Pos(), fmt.Sprintf("output via fmt.%s", fn.Name()))
		}
		return
	}
	// Method call: a Write* sink that outlives the loop.
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || !writeMethods[fn.Name()] {
		return
	}
	if declaredOutside(pass, sel.X, lo, hi) {
		report(call.Pos(), fmt.Sprintf("write to %s via %s", types.ExprString(sel.X), fn.Name()))
	}
}
