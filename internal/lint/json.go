package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// jsonDiag is the machine-readable shape of one diagnostic, stable for CI
// annotation tooling: field order, indentation, and path relativization are
// all deterministic, so output is byte-for-byte reproducible.
type jsonDiag struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Analyzer string   `json:"analyzer"`
	Message  string   `json:"message"`
	Chain    []string `json:"chain,omitempty"`
}

// WriteJSON renders diags as an indented JSON array. File paths are made
// relative to base when possible (base is the module root in the CLI), so
// output does not leak absolute build paths and stays comparable across
// machines.
func WriteJSON(w io.Writer, diags []Diagnostic, base string) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if base != "" {
			if rel, err := filepath.Rel(base, file); err == nil {
				file = filepath.ToSlash(rel)
			}
		}
		out = append(out, jsonDiag{
			File:     file,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
			Chain:    d.Chain,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false) // keep "->" chains readable
	enc.SetIndent("", "\t")
	return enc.Encode(out)
}
