package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BatchAlias enforces the batch-lifetime contract of trace.BatchStream
// (DESIGN.md §11): the slice returned by NextBatch is a zero-copy window
// into stream internals, valid only until the next NextBatch call. Reading
// it in place — indexing, ranging, passing it down a call chain that
// finishes before the next batch — is the intended use. *Retaining* it is
// the bug class: returning it, storing it into a field, map, slice element
// or package-level variable, capturing it in a composite literal, or
// appending the slice itself as an element all keep an alias alive across
// the next NextBatch call, after which its contents are silently rewritten.
//
// The check is a taint walk: locals assigned from a call to a method named
// NextBatch are batch windows, and the taint follows plain rebinding and
// re-slicing (a subslice of a window is still the window). Any other call
// result is a fresh value — append([]T(nil), b...) kills the taint, which
// is also the prescribed fix.
//
// Since PR 7 the walk rides the call graph across function boundaries:
// passing a window to a static in-module callee consults a per-parameter
// summary of that callee (computed on demand, cycle-safe), so a helper that
// stores its slice argument into a field is flagged at the call site, with
// the retention spelled out; a helper that returns its argument propagates
// the taint into the caller. Calls through interfaces or function values
// are not resolved — handing a window to a callback remains the intended
// use and the callee is checked in its own right when analyzed.
var BatchAlias = &Analyzer{
	Name: "batchalias",
	Doc:  "slices returned by NextBatch must not outlive the next NextBatch call: no returning, storing, or element-appending a batch window, directly or through a callee",
	Run:  runBatchAlias,
}

func runBatchAlias(pass *Pass) {
	ctx := &baCtx{
		pass:       pass,
		summaries:  make(map[*types.Func]*baSummary),
		inProgress: make(map[*types.Func]bool),
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &baWalker{ctx: ctx, pkg: pass.Pkg, fd: fd, taint: make(map[types.Object]int)}
			w.walk()
		}
	}
}

// baCtx carries one batchalias run: the pass plus memoized callee summaries.
type baCtx struct {
	pass       *Pass
	summaries  map[*types.Func]*baSummary
	inProgress map[*types.Func]bool
}

// baSummary describes how a function treats its slice parameters.
type baSummary struct {
	// retains[i] describes the retention of parameter i ("stores it into
	// h.batch"), empty when the parameter never outlives the call.
	retains map[int]string
	// returnsParam[i] reports that the function may return an alias of
	// parameter i, so the caller's result carries the caller's taint.
	returnsParam map[int]bool
}

var emptySummary = &baSummary{}

// summaryFor computes (and memoizes) the parameter summary of a static
// in-module callee. Functions outside the call graph, and cycles, get the
// empty summary — a soundness limit traded for termination, backstopped by
// analyzing every package together in `make lint`.
func (ctx *baCtx) summaryFor(fn *types.Func) *baSummary {
	if s, ok := ctx.summaries[fn]; ok {
		return s
	}
	if ctx.inProgress[fn] || ctx.pass.Graph == nil {
		return emptySummary
	}
	node := ctx.pass.Graph.Node(fn)
	if node == nil {
		return emptySummary
	}
	ctx.inProgress[fn] = true
	defer delete(ctx.inProgress, fn)

	sum := &baSummary{retains: make(map[int]string), returnsParam: make(map[int]bool)}
	w := &baWalker{ctx: ctx, pkg: node.Pkg, fd: node.Decl, taint: make(map[types.Object]int), sum: sum}
	// Seed every slice-typed parameter with its index.
	idx := 0
	if node.Decl.Type.Params != nil {
		for _, field := range node.Decl.Type.Params.List {
			names := field.Names
			if len(names) == 0 {
				idx++ // unnamed parameter cannot be retained
				continue
			}
			for _, name := range names {
				if obj := node.Pkg.Info.Defs[name]; obj != nil {
					if _, ok := obj.Type().Underlying().(*types.Slice); ok {
						w.taint[obj] = idx
					}
				}
				idx++
			}
		}
	}
	w.walk()
	ctx.summaries[fn] = sum
	return sum
}

// record notes a retention (or return) of a parameter in the summary being
// built. The first description wins — one per parameter is enough for a
// diagnostic.
func (s *baSummary) record(origin int, desc string) {
	if origin >= 0 && s.retains[origin] == "" {
		s.retains[origin] = desc
	}
}

// baWalker walks one function body tracking aliases of batch windows (main
// mode, sum == nil, reporting diagnostics) or of slice parameters (summary
// mode, sum != nil, recording retention).
type baWalker struct {
	ctx *baCtx
	pkg *Package
	fd  *ast.FuncDecl
	// taint maps a variable to the origin it aliases: a parameter index in
	// summary mode, -1 for NextBatch windows in main mode.
	taint map[types.Object]int
	sum   *baSummary // nil in main mode
}

func (w *baWalker) objectOf(id *ast.Ident) types.Object { return objectOf(w.pkg.Info, id) }

// isNextBatchCall reports whether expr calls a method named NextBatch.
func (w *baWalker) isNextBatchCall(expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "NextBatch" {
		return false
	}
	fn, ok := w.objectOf(sel.Sel).(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// staticCallee resolves a call to a named in-module function or concrete
// method, or nil (builtins, interface methods, function values).
func (w *baWalker) staticCallee(call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.Ident:
		fn, _ := w.objectOf(f).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := w.pkg.Info.Selections[f]; ok {
			if sel.Kind() != types.MethodVal || types.IsInterface(sel.Recv()) {
				return nil
			}
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := w.objectOf(f.Sel).(*types.Func)
		return fn
	}
	return nil
}

// window unwraps re-slicing and parens down to a tainted variable: b[lo:hi]
// aliases the same backing window as b. Indexing is NOT unwrapped — b[i] is
// an element copy, which is free to escape.
func (w *baWalker) window(expr ast.Expr) types.Object {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			obj := w.objectOf(e)
			if obj != nil {
				if _, ok := w.taint[obj]; ok {
					return obj
				}
			}
			return nil
		case *ast.SliceExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// alias resolves expr to the tainted variable it aliases, following calls
// to callees that return their argument: alias(identity(b)) is (b,
// "identity"). via is empty for direct aliases.
func (w *baWalker) alias(expr ast.Expr) (types.Object, string) {
	if obj := w.window(expr); obj != nil {
		return obj, ""
	}
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	fn := w.staticCallee(call)
	if fn == nil {
		return nil, ""
	}
	sum := w.ctx.summaryFor(fn)
	for i, arg := range call.Args {
		if !sum.returnsParam[i] {
			continue
		}
		if obj := w.window(arg); obj != nil {
			return obj, displayName(fn)
		}
	}
	return nil, ""
}

// isPackageLevel reports whether obj is a package-level variable.
func isPackageLevel(obj types.Object) bool {
	return obj.Parent() != nil && obj.Parent().Parent() == types.Universe
}

// retained handles one retention event: reported in main mode, recorded in
// summary mode. mainMsg is the full diagnostic (already naming the window);
// sumDesc describes the retention from the parameter's point of view.
func (w *baWalker) retained(pos token.Pos, obj types.Object, mainMsg, sumDesc string) {
	if w.sum != nil {
		w.sum.record(w.taint[obj], sumDesc)
		return
	}
	w.ctx.pass.Reportf(pos, "%s", mainMsg)
}

func (w *baWalker) walk() {
	fnName := w.fd.Name.Name
	fix := func(obj types.Object) string {
		return "the batch is rewritten by the next NextBatch call — copy it first (append([]T(nil), " + obj.Name() + "...))"
	}

	// taintFrom taints lhs when rhs is a window source: a NextBatch call
	// (main mode only — a callee's own windows are its own pass's business),
	// an alias of a tainted variable, or a callee passing its argument back.
	taintFrom := func(lhsObj types.Object, rhs ast.Expr) bool {
		if w.sum == nil && w.isNextBatchCall(rhs) {
			w.taint[lhsObj] = -1
			return true
		}
		if obj, _ := w.alias(rhs); obj != nil {
			w.taint[lhsObj] = w.taint[obj]
			return true
		}
		return false
	}

	// checkComposite flags windows captured by a composite literal (struct
	// field, slice/map element): the literal outlives the window.
	checkComposite := func(lit *ast.CompositeLit) {
		for _, elt := range lit.Elts {
			val := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				val = kv.Value
			}
			if obj := w.window(val); obj != nil {
				w.retained(val.Pos(), obj,
					fnName+" captures NextBatch window \""+obj.Name()+"\" in a composite literal; "+fix(obj),
					"captures it in a composite literal")
			}
		}
	}

	// checkCallArgs flags windows handed to a static callee whose summary
	// retains the corresponding parameter.
	checkCallArgs := func(call *ast.CallExpr) {
		fn := w.staticCallee(call)
		if fn == nil {
			return
		}
		var sum *baSummary
		for i, arg := range call.Args {
			obj := w.window(arg)
			if obj == nil {
				continue
			}
			if sum == nil {
				sum = w.ctx.summaryFor(fn)
			}
			desc, ok := sum.retains[i]
			if !ok {
				continue
			}
			callee := displayName(fn)
			w.retained(arg.Pos(), obj,
				fnName+" passes NextBatch window \""+obj.Name()+"\" to "+callee+", which "+desc+"; "+fix(obj),
				"passes it to "+callee+", which "+desc)
		}
	}

	ast.Inspect(w.fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				switch {
				case len(n.Rhs) == len(n.Lhs):
					rhs = n.Rhs[i]
				case i == 0 && len(n.Rhs) == 1:
					rhs = n.Rhs[0] // comma-ok / multi-value call
				default:
					continue
				}
				if id, ok := lhs.(*ast.Ident); ok {
					obj := w.objectOf(id)
					if obj == nil {
						continue
					}
					// A package-level variable is a store, not a rebinding:
					// the alias outlives every call in the program.
					if isPackageLevel(obj) {
						if src, _ := w.alias(rhs); src != nil {
							w.retained(n.Pos(), src,
								fnName+" stores NextBatch window \""+src.Name()+"\" into package-level variable "+obj.Name()+"; "+fix(src),
								"stores it into package-level variable "+obj.Name())
						}
						continue
					}
					if !taintFrom(obj, rhs) {
						delete(w.taint, obj) // any other call/value is fresh
					}
					continue
				}
				// Store through a field or index: the destination outlives
				// the window regardless of what it belongs to.
				if obj := w.window(rhs); obj != nil {
					dest := types.ExprString(lhs)
					w.retained(n.Pos(), obj,
						fnName+" stores NextBatch window \""+obj.Name()+"\" into "+dest+"; "+fix(obj),
						"stores it into "+dest)
				}
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				if i < len(n.Values) {
					if obj := w.objectOf(id); obj != nil {
						taintFrom(obj, n.Values[i])
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				obj, via := w.alias(res)
				if obj == nil {
					continue
				}
				name := "\"" + obj.Name() + "\""
				if via != "" {
					name += " (via " + via + ")"
				}
				if w.sum != nil {
					// Returning a parameter alias is not retention — the
					// caller decides what the result's lifetime means.
					if origin := w.taint[obj]; origin >= 0 {
						w.sum.returnsParam[origin] = true
					}
					continue
				}
				w.ctx.pass.Reportf(n.Pos(), "%s returns NextBatch window %s, which is only valid until the next NextBatch call; return a copy (append([]T(nil), %s...))",
					fnName, name, obj.Name())
			}
		case *ast.CallExpr:
			if isBuiltinIn(w.pkg.Info, n, "append") && n.Ellipsis == token.NoPos {
				// append(dst, b) retains the window as an element;
				// append(dst, b...) copies its contents and is the fix.
				for _, arg := range n.Args[1:] {
					if obj := w.window(arg); obj != nil {
						w.retained(arg.Pos(), obj,
							fnName+" appends NextBatch window \""+obj.Name()+"\" as an element, retaining it past the next NextBatch call; append a copy (append([]T(nil), "+obj.Name()+"...))",
							"retains it as an appended element")
					}
				}
				return true
			}
			checkCallArgs(n)
		case *ast.CompositeLit:
			checkComposite(n)
		}
		return true
	})
}
