package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BatchAlias enforces the batch-lifetime contract of trace.BatchStream
// (DESIGN.md §11): the slice returned by NextBatch is a zero-copy window
// into stream internals, valid only until the next NextBatch call. Reading
// it in place — indexing, ranging, passing it down a call chain that
// finishes before the next batch — is the intended use. *Retaining* it is
// the bug class: returning it, storing it into a field, map or slice
// element, capturing it in a composite literal, or appending the slice
// itself as an element all keep an alias alive across the next NextBatch
// call, after which its contents are silently rewritten.
//
// The check is a per-function taint walk: locals assigned from a call to a
// method named NextBatch are batch windows, and the taint follows plain
// rebinding and re-slicing (a subslice of a window is still the window).
// Any other call result is a fresh value — append([]T(nil), b...) kills
// the taint, which is also the prescribed fix.
var BatchAlias = &Analyzer{
	Name: "batchalias",
	Doc:  "slices returned by NextBatch must not outlive the next NextBatch call: no returning, storing, or element-appending a batch window",
	Run:  runBatchAlias,
}

func runBatchAlias(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBatchAliasing(pass, fd)
		}
	}
}

// isNextBatchCall reports whether expr calls a method named NextBatch.
func isNextBatchCall(pass *Pass, expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "NextBatch" {
		return false
	}
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

func checkBatchAliasing(pass *Pass, fd *ast.FuncDecl) {
	fnName := fd.Name.Name
	tainted := make(map[types.Object]bool)

	// window unwraps re-slicing and parens: b[lo:hi] aliases the same
	// backing window as b. Indexing is NOT unwrapped — b[i] is an element
	// copy, which is free to escape.
	window := func(expr ast.Expr) types.Object {
		for {
			switch e := expr.(type) {
			case *ast.Ident:
				obj := pass.ObjectOf(e)
				if obj != nil && tainted[obj] {
					return obj
				}
				return nil
			case *ast.SliceExpr:
				expr = e.X
			case *ast.ParenExpr:
				expr = e.X
			default:
				return nil
			}
		}
	}

	// checkComposite flags batch windows captured by a composite literal
	// (struct field, slice/map element): the literal outlives the window.
	// Nested literals are visited by the enclosing Inspect walk.
	checkComposite := func(lit *ast.CompositeLit) {
		for _, elt := range lit.Elts {
			val := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				val = kv.Value
			}
			if obj := window(val); obj != nil {
				pass.Reportf(val.Pos(), "%s captures NextBatch window %q in a composite literal; the batch is rewritten by the next NextBatch call — copy it first (append([]T(nil), %s...))",
					fnName, obj.Name(), obj.Name())
			}
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				switch {
				case len(n.Rhs) == len(n.Lhs):
					rhs = n.Rhs[i]
				case i == 0 && len(n.Rhs) == 1:
					rhs = n.Rhs[0] // comma-ok / multi-value call
				default:
					continue
				}
				if id, ok := lhs.(*ast.Ident); ok {
					obj := pass.ObjectOf(id)
					if obj == nil {
						continue
					}
					switch {
					case isNextBatchCall(pass, rhs), window(rhs) != nil:
						tainted[obj] = true
					default:
						delete(tainted, obj) // any other call/value is fresh
					}
					continue
				}
				// Store through a field or index: the destination outlives
				// the window regardless of what it belongs to.
				if obj := window(rhs); obj != nil {
					pass.Reportf(n.Pos(), "%s stores NextBatch window %q into %s; the batch is rewritten by the next NextBatch call — copy it first (append([]T(nil), %s...))",
						fnName, obj.Name(), types.ExprString(lhs), obj.Name())
				}
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				if i < len(n.Values) {
					if obj := pass.ObjectOf(id); obj != nil &&
						(isNextBatchCall(pass, n.Values[i]) || window(n.Values[i]) != nil) {
						tainted[obj] = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if obj := window(res); obj != nil {
					pass.Reportf(n.Pos(), "%s returns NextBatch window %q, which is only valid until the next NextBatch call; return a copy (append([]T(nil), %s...))",
						fnName, obj.Name(), obj.Name())
				}
			}
		case *ast.CallExpr:
			if isBuiltin(pass, n, "append") && n.Ellipsis == token.NoPos {
				// append(dst, b) retains the window as an element;
				// append(dst, b...) copies its contents and is the fix.
				for _, arg := range n.Args[1:] {
					if obj := window(arg); obj != nil {
						pass.Reportf(arg.Pos(), "%s appends NextBatch window %q as an element, retaining it past the next NextBatch call; append a copy (append([]T(nil), %s...))",
							fnName, obj.Name(), obj.Name())
					}
				}
			}
		case *ast.CompositeLit:
			checkComposite(n)
		}
		return true
	})
}
