package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc enforces the zero-allocation contract of the batched hot kernels
// (DESIGN.md §13): a function annotated //lint:hot, and everything reachable
// from it in the call graph, must not allocate. The per-access cost figures
// the repo reports (sub-ns to a few ns) hold only while these paths stay off
// the garbage collector entirely; a single append or boxed argument in a
// helper three calls down silently multiplies the cost.
//
// Flagged inside hot-reachable functions: append (backing-array growth),
// make/new, slice and map composite literals, taking the address of a
// composite literal, map assignment, string concatenation and
// string<->[]byte/[]rune conversions, go statements, capturing function
// literals (closure allocation), and interface boxing of concrete arguments
// at call sites. Calls that cannot be proven allocation-free are findings
// too: calls through function values, interface calls with no analyzed
// implementation, and calls into standard-library packages without a "safe"
// summary. Every diagnostic carries the call chain from the //lint:hot root.
//
// Failure-exit paths — conditional blocks ending in return, and any block
// ending in panic — are exempt: they run at most once per invocation, not
// per element, and that is where kernels report corrupt input. This is a
// heuristic; the AllocsPerRun == 0 tests are the dynamic backstop.
//
// A //lint:ignore hotalloc <reason> directive on a *call* line both
// suppresses the finding and prunes the traversal through that call, so one
// justified directive fences off an entire cold or contractually-safe
// subtree (e.g. the buffered fallback adapter behind a batch interface).
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "functions marked //lint:hot and everything they reach must not allocate: no append growth, make/new, boxing, closures, or calls into allocating code",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	g := pass.Graph
	if g == nil {
		return
	}
	// Roots are the //lint:hot functions declared in THIS pass's package;
	// reachable helpers in other packages are scanned here too, but their
	// own roots are handled by their own pass, so no finding is duplicated
	// with an identical chain.
	var roots []*CallNode
	for _, n := range g.Nodes() {
		if n.Hot && n.Pkg == pass.Pkg {
			roots = append(roots, n)
		}
	}
	if len(roots) == 0 {
		return
	}
	ctx := &hotCtx{
		pass:       pass,
		g:          g,
		suppressed: hotallocSuppressedLines(g),
	}
	// Breadth-first from the roots: the first chain to reach a function is
	// a shortest one, which keeps diagnostics minimal.
	type entry struct {
		node  *CallNode
		chain []string
	}
	visited := make(map[*CallNode]bool)
	var queue []entry
	for _, r := range roots {
		if !visited[r] {
			visited[r] = true
			queue = append(queue, entry{r, []string{displayName(r.Fn)}})
		}
	}
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		ctx.scanAllocs(e.node, e.chain)
		for _, site := range e.node.Sites {
			if site.Cold || ctx.cut(site.Call.Pos()) {
				continue
			}
			ctx.checkBoxing(e.node, site, e.chain)
			for _, next := range ctx.judgeSite(e.node, site, e.chain) {
				if !visited[next] {
					visited[next] = true
					queue = append(queue, entry{next, append(append([]string(nil), e.chain...), displayName(next.Fn))})
				}
			}
		}
	}
}

// HotReachable returns every call-graph node reachable from a //lint:hot
// root through hot call sites — skipping cold failure-exit ranges and
// subtrees pruned by //lint:ignore hotalloc directives — across all analyzed
// packages, in deterministic order. The searchlint -escape mode uses the
// source extents of these functions to scope the compiler's escape-analysis
// output to hot code.
func HotReachable(g *CallGraph) []*CallNode {
	suppressed := hotallocSuppressedLines(g)
	cut := func(pos token.Pos) bool {
		p := g.fset.Position(pos)
		return suppressed[p.Filename][p.Line]
	}
	visited := make(map[*CallNode]bool)
	var queue, out []*CallNode
	for _, n := range g.Nodes() {
		if n.Hot {
			visited[n] = true
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		out = append(out, n)
		for _, site := range n.Sites {
			if site.Cold || cut(site.Call.Pos()) {
				continue
			}
			for _, fn := range site.Targets {
				if next := g.Node(fn); next != nil && !visited[next] {
					visited[next] = true
					queue = append(queue, next)
				}
			}
		}
	}
	return out
}

// hotCtx carries one hotalloc run.
type hotCtx struct {
	pass *Pass
	g    *CallGraph
	// suppressed maps file -> lines covered by a //lint:ignore hotalloc
	// directive. Report-level suppression happens in Check; this copy exists
	// so the traversal can also PRUNE through ignored call sites, and so
	// directives in *other* packages fence subtrees for every pass.
	suppressed map[string]map[int]bool
}

// cut reports whether pos sits on a line fenced by an ignore directive.
func (ctx *hotCtx) cut(pos token.Pos) bool {
	p := ctx.pass.Fset.Position(pos)
	return ctx.suppressed[p.Filename][p.Line]
}

func (ctx *hotCtx) report(pos token.Pos, chain []string, format string, args ...any) {
	if ctx.cut(pos) {
		return
	}
	ctx.pass.ReportChain(pos, chain, format, args...)
}

// hotallocSuppressedLines collects, across every package of the graph, the
// source lines covered by a //lint:ignore directive naming hotalloc (the
// directive's own line and the one below, matching suppression scope).
func hotallocSuppressedLines(g *CallGraph) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	seen := make(map[*Package]bool)
	var discard []Diagnostic
	for _, n := range g.Nodes() {
		if seen[n.Pkg] {
			continue
		}
		seen[n.Pkg] = true
		for _, f := range n.Pkg.Files {
			for _, dir := range parseIgnores(g.fset, f, &discard) {
				if !dir.analyzers["hotalloc"] {
					continue
				}
				m := out[dir.file]
				if m == nil {
					m = make(map[int]bool)
					out[dir.file] = m
				}
				m[dir.line] = true
				m[dir.line+1] = true
			}
		}
	}
	return out
}

// scanAllocs walks node's body and reports direct allocation sites outside
// cold ranges. Nested function-literal bodies are included: they execute on
// behalf of the enclosing function.
func (ctx *hotCtx) scanAllocs(node *CallNode, chain []string) {
	info := node.Pkg.Info
	// Composite literals already reported through an enclosing &lit are
	// skipped to avoid a double finding at the same expression.
	addrTaken := make(map[*ast.CompositeLit]bool)
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if node.ColdAt(x.Pos()) {
				return true
			}
			switch {
			case isBuiltinIn(info, x, "append"):
				ctx.report(x.Pos(), chain, "append may grow its backing array; preallocate capacity or justify with an ignore")
			case isBuiltinIn(info, x, "make"):
				ctx.report(x.Pos(), chain, "make allocates")
			case isBuiltinIn(info, x, "new"):
				ctx.report(x.Pos(), chain, "new allocates")
			default:
				ctx.checkConversion(info, x, chain)
			}
		case *ast.UnaryExpr:
			if x.Op != token.AND || node.ColdAt(x.Pos()) {
				return true
			}
			if lit, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
				addrTaken[lit] = true
				ctx.report(x.Pos(), chain, "taking the address of a composite literal allocates")
			}
		case *ast.CompositeLit:
			if node.ColdAt(x.Pos()) || addrTaken[x] {
				return true
			}
			if t := info.TypeOf(x); t != nil && isSliceOrMap(t) {
				ctx.report(x.Pos(), chain, "slice/map composite literal allocates")
			}
		case *ast.BinaryExpr:
			if x.Op != token.ADD || node.ColdAt(x.Pos()) {
				return true
			}
			tv, ok := info.Types[x]
			if ok && tv.Value == nil && isStringType(tv.Type) {
				ctx.report(x.Pos(), chain, "string concatenation allocates")
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if !ok || node.ColdAt(idx.Pos()) {
					continue
				}
				if t := info.TypeOf(idx.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						ctx.report(idx.Pos(), chain, "map assignment may allocate (bucket growth)")
					}
				}
			}
		case *ast.GoStmt:
			if !node.ColdAt(x.Pos()) {
				ctx.report(x.Pos(), chain, "go statement allocates a goroutine")
			}
		case *ast.FuncLit:
			if node.ColdAt(x.Pos()) {
				return true
			}
			if v := capturedVar(info, x); v != nil {
				ctx.report(x.Pos(), chain, "function literal captures %q; the closure allocates", v.Name())
			}
		}
		return true
	})
}

// checkConversion flags string<->[]byte/[]rune conversions, which copy.
func (ctx *hotCtx) checkConversion(info *types.Info, call *ast.CallExpr, chain []string) {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	dst, src := tv.Type, info.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	switch {
	case isStringType(dst) && isByteOrRuneSlice(src),
		isByteOrRuneSlice(dst) && isStringType(src):
		ctx.report(call.Pos(), chain, "string/[]byte conversion allocates a copy")
	case types.IsInterface(dst) && !types.IsInterface(src) && !isPointerShaped(src):
		ctx.report(call.Pos(), chain, "conversion to interface boxes the value on the heap")
	}
}

// checkBoxing flags concrete, non-pointer-shaped arguments passed to
// interface-typed parameters: the conversion boxes the value on the heap.
// Pointer-shaped values (*T, chan, map, func, unsafe.Pointer) fit the
// interface data word; interface-to-interface conversions do not allocate.
func (ctx *hotCtx) checkBoxing(node *CallNode, site *CallSite, chain []string) {
	info := node.Pkg.Info
	call := site.Call
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok || node.ColdAt(call.Pos()) {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // spread: no element conversion
			}
			pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) || isPointerShaped(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		ctx.report(arg.Pos(), chain, "passing %s argument as %s boxes it on the heap",
			types.TypeString(at, types.RelativeTo(node.Pkg.Types)), types.TypeString(pt, types.RelativeTo(node.Pkg.Types)))
	}
}

// judgeSite reports unprovable call sites and returns the in-module callees
// the traversal should descend into.
func (ctx *hotCtx) judgeSite(node *CallNode, site *CallSite, chain []string) []*CallNode {
	switch site.Kind {
	case SiteDynamic:
		ctx.report(site.Call.Pos(), chain, "call through function value %s cannot be proven allocation-free", site.Label)
		return nil
	case SiteInterface:
		if site.Iface != nil && safeIfaceMethods[site.Iface.FullName()] {
			return nil
		}
		if len(site.Targets) == 0 {
			ctx.report(site.Call.Pos(), chain, "interface call %s has no analyzed implementation and no safe summary", site.Label)
			return nil
		}
	}
	var next []*CallNode
	for _, fn := range site.Targets {
		if n := ctx.g.Node(fn); n != nil {
			next = append(next, n)
			continue
		}
		ctx.judgeExternal(fn, site, chain)
	}
	return next
}

// judgeExternal applies the standard-library summaries to a callee whose
// body is outside the analyzed packages.
func (ctx *hotCtx) judgeExternal(fn *types.Func, site *CallSite, chain []string) {
	pkg := fn.Pkg()
	if pkg == nil {
		return // error.Error and friends from the universe scope
	}
	path := pkg.Path()
	if safeStdPkgs[path] {
		return
	}
	name := ctx.g.NameFor(fn)
	if allocStdPkgs[path] {
		ctx.report(site.Call.Pos(), chain, "calls %s, which allocates", name)
		return
	}
	ctx.report(site.Call.Pos(), chain, "calls %s, which has no allocation summary; annotate, summarize, or suppress", name)
}

// safeStdPkgs are standard-library packages whose exported functions and
// methods never allocate on any path the module uses.
var safeStdPkgs = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync/atomic": true,
}

// allocStdPkgs are standard-library packages known to allocate in their
// common entry points; calling them on a hot path is always a finding.
var allocStdPkgs = map[string]bool{
	"bufio":   true,
	"bytes":   true,
	"errors":  true,
	"fmt":     true,
	"io":      true,
	"os":      true,
	"sort":    true,
	"strconv": true,
	"strings": true,
}

// safeIfaceMethods are interface methods whose contract forbids allocation
// regardless of the implementation behind them.
var safeIfaceMethods = map[string]bool{
	// ReadAt fills the caller-provided buffer; implementations used here
	// (os.File, the in-memory spill) do not allocate per call.
	"(io.ReaderAt).ReadAt": true,
}

// isBuiltinIn reports whether the call invokes the named builtin, resolved
// through info (the info of the package owning the syntax, which for
// cross-package graph nodes is not the pass's own package).
func isBuiltinIn(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	_, ok = obj.(*types.Builtin)
	return ok
}

// isStringType reports whether t's underlying type is string.
func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isByteOrRuneSlice reports whether t is []byte or []rune (underlying).
func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// isPointerShaped reports whether values of t fit an interface data word
// without boxing.
func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// capturedVar returns a variable the function literal captures from its
// enclosing function (forcing a heap-allocated closure), or nil. Package-
// level variables and struct fields do not force a closure.
func capturedVar(info *types.Info, lit *ast.FuncLit) *types.Var {
	var found *types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Parent() == nil {
			return true
		}
		if v.Parent().Parent() == types.Universe {
			return true // package-level
		}
		if v.Pos() < lit.Pos() || v.Pos() >= lit.End() {
			found = v
			return false
		}
		return true
	})
	return found
}
