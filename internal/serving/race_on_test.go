//go:build race

package serving

// raceDetectorOn reports whether the test binary was built with -race.
// The scan-engine equivalence test caps its client count under -race: the
// reference scan driver is O(clients) per query, and the detector's
// slowdown turns the 10k-client case into minutes without adding race
// coverage (the engine itself is single-threaded in virtual time).
const raceDetectorOn = true
