//go:build !race

package serving

// raceDetectorOn reports whether the test binary was built with -race.
const raceDetectorOn = false
