//go:build !race

// Allocation-regression oracles for the fleet load engine's per-event path
// (DESIGN.md §16). The searchlint hotalloc analyzer proves the //lint:hot
// kernels allocation-free statically; these tests pin the full event step —
// heap pop, Zipf draw, term synthesis, the pooled serial serve (cache probe,
// fan-out, hedging, merges, cache put with eviction), histogram add, heap
// push — at zero allocations dynamically. Excluded under -race because race
// instrumentation inserts allocations of its own.

package serving

import (
	"testing"

	"searchmem/internal/stats"
)

// requireZeroAllocs runs f through testing.AllocsPerRun (which performs one
// warm-up call before measuring, absorbing any one-time lazy growth) and
// fails if steady-state allocations are nonzero.
func requireZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(10, f); avg != 0 {
		t.Errorf("%s: %.1f allocs/op, want 0", name, avg)
	}
}

// eventStep builds one closed-loop event step over cluster c and warms it
// until every pooled structure has reached steady state: the cache at
// capacity (so each put recycles an evicted entry), the hedge-dedup map at
// its working size, and the scratch buffers touched on every path.
func eventStep(t *testing.T, c *Cluster, clients int) func() {
	t.Helper()
	c.driveMu.Lock()
	t.Cleanup(c.driveMu.Unlock)
	c.ensureScratch()
	e := newLoadEngine(clients, 4000, 0.9, 42)
	hist := stats.NewHistogram(8)
	step := func() {
		cl := e.popMin()
		r := c.serveSerial(e.drawTerms(cl))
		hist.Add(r.LatencyNS)
		e.next[cl] += r.LatencyNS
		e.push(cl)
	}
	for i := 0; i < 5000; i++ {
		step()
	}
	return step
}

// TestEventStepZeroAlloc pins the healthy serving path: cache hits, cache
// misses with full fan-out, and put-with-eviction churn (CacheSlots far
// below the active query set keeps the ring recycling on most misses).
func TestEventStepZeroAlloc(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheSlots = 64
	cfg.LeafCapacity = 256
	requireZeroAllocs(t, "closed-loop event step (healthy)", eventStep(t, NewCluster(cfg, nil), 128))
}

// TestEventStepZeroAllocFaulty pins the degraded path: fault injection,
// deadlines, hedged retries, and hedge-win dedup all active.
func TestEventStepZeroAllocFaulty(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheSlots = 64
	cfg.LeafCapacity = 256
	cfg.LeafDeadlineNS = 8e6
	cfg.HedgeDelayNS = 4e6
	requireZeroAllocs(t, "closed-loop event step (faulty)", eventStep(t, faultyCluster(cfg, 12, 7), 128))
}

// TestCachePutChurnZeroAlloc pins the ring cache alone: steady-state
// eviction must recycle the victim's entry and storage.
func TestCachePutChurnZeroAlloc(t *testing.T) {
	s := newCacheServer(32)
	docs := []uint32{1, 2, 3, 4}
	scores := []float32{4, 3, 2, 1}
	tag := uint64(0)
	for i := 0; i < 10000; i++ { // fill and churn well past capacity
		s.put(tag, docs, scores)
		tag++
	}
	requireZeroAllocs(t, "cache put with eviction", func() {
		s.put(tag, docs, scores)
		tag++
	})
	var gd []uint32
	var gs []float32
	requireZeroAllocs(t, "cache getInto", func() {
		s.getInto(tag-1, &gd, &gs)
	})
}
