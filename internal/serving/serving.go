// Package serving implements the search serving system of the paper's
// Figure 1: a front-end web server, cache servers, a root, intermediate
// parents, and leaf nodes each holding an index shard. Queries fan out down
// the tree; results propagate up with score-based merging at every level.
//
// Time is virtual: every component charges modeled latency to the query and
// parallel fan-out costs the maximum over children, which keeps simulations
// deterministic and fast while producing realistic latency distributions.
// Leaves within a parent execute on real goroutines, so the cluster is safe
// for concurrent use and exercisable under `go test -race`.
//
// The tier is fault tolerant: each leaf call carries a virtual-time deadline
// with one hedged retry to a sibling shard, and parents merge whatever
// arrived in time, marking the result Partial instead of stalling on slow or
// failed leaves. See FaultyExecutor for deterministic fault injection and
// Cluster.Metrics for per-stage observability.
package serving

import (
	"fmt"
	"sync"

	"searchmem/internal/obs"
	"searchmem/internal/search"
	"searchmem/internal/stats"
)

// Query is one user request.
type Query struct {
	// Terms are the query's term ids.
	Terms []uint32
}

// Result is an aggregated search response.
type Result struct {
	// Docs and Scores are the merged top-k, best first.
	Docs   []uint32
	Scores []float32
	// FromCache reports whether a cache server short-circuited the tree.
	FromCache bool
	// LatencyNS is the modeled end-to-end latency.
	LatencyNS float64
	// Partial reports that at least one leaf missed its deadline or failed
	// and the merge proceeded without it (always false for cache hits).
	Partial bool
	// LeavesAnswered counts the leaves whose results made the merge
	// (0 for cache hits, which never touch the leaf tier).
	LeavesAnswered int
}

// Executor evaluates a query against one shard and reports its modeled
// service latency.
type Executor interface {
	// Search returns the shard-local top-k with scores, plus the modeled
	// execution latency in nanoseconds.
	Search(terms []uint32) (docs []uint32, scores []float32, latencyNS float64)
}

// FallibleExecutor is an Executor whose calls can also fail outright
// (crashed shard, connection refused, corrupted response). The cluster
// treats a failed call like a missed deadline: it retries via hedging when
// enabled and otherwise drops the leaf from the merge.
type FallibleExecutor interface {
	Executor
	// SearchErr is Search with an error channel: latencyNS is still
	// meaningful on failure (it is when the parent detects the fault).
	SearchErr(terms []uint32) (docs []uint32, scores []float32, latencyNS float64, err error)
}

// BufferedExecutor is an optional Executor extension for allocation-free
// serving: SearchBuf evaluates the query into the caller's buffers (whose
// lengths must be at least the executor's result size) and returns the
// result count. Results, latencies, and any internal RNG draw sequence must
// be identical to Search/SearchErr on the same call sequence. The fleet
// load engine (RunLoad / RunScenario) uses it on the serial serve path;
// executors without it are called through Search and their results copied.
type BufferedExecutor interface {
	SearchBuf(terms []uint32, docs []uint32, scores []float32) (n int, latencyNS float64, err error)
}

// OutageExecutor is an Executor that can be administratively marked down
// and up again — the hook fleet scenarios use for correlated leaf-failure
// windows (rack loss, rolling restarts). See FaultyExecutor.SetDown.
type OutageExecutor interface {
	SetDown(down bool)
}

// searchLeaf dispatches to the fallible interface when available.
func searchLeaf(exec Executor, terms []uint32) ([]uint32, []float32, float64, error) {
	if fe, ok := exec.(FallibleExecutor); ok {
		return fe.SearchErr(terms)
	}
	docs, scores, lat := exec.Search(terms)
	return docs, scores, lat, nil
}

// searchLeafBuf is searchLeaf for the pooled serial path: buffered
// executors write straight into the caller's arrays, others fall back to
// the allocating interfaces (their result slices are returned as-is; the
// caller's buffers are then unused).
func searchLeafBuf(exec Executor, terms []uint32, docs []uint32, scores []float32) ([]uint32, []float32, float64, error) {
	if be, ok := exec.(BufferedExecutor); ok {
		n, lat, err := be.SearchBuf(terms, docs, scores)
		return docs[:n], scores[:n], lat, err
	}
	return searchLeaf(exec, terms)
}

// SyntheticExecutor is a deterministic stand-in for a real leaf engine:
// results derive from a hash of (term, shard), latency from a base cost
// plus per-term cost with deterministic jitter.
type SyntheticExecutor struct {
	// ShardID decorrelates results between leaves.
	ShardID uint32
	// TopK is the number of results returned.
	TopK int
	// BaseLatencyNS and PerTermNS build the service-time model.
	BaseLatencyNS, PerTermNS float64

	mu  sync.Mutex
	rng *stats.RNG
	tk  *search.TopK // reused by SearchBuf, guarded by mu
}

// NewSyntheticExecutor returns an executor for the given shard.
func NewSyntheticExecutor(shardID uint32, topK int) *SyntheticExecutor {
	return &SyntheticExecutor{
		ShardID:       shardID,
		TopK:          topK,
		BaseLatencyNS: 2e6, // 2 ms base service time
		PerTermNS:     8e5,
		rng:           stats.NewRNG(uint64(shardID)*0x9e37 + 5),
	}
}

// fill pushes the deterministic pseudo-results for terms: k docs scored by
// a hash chain over (shard, terms).
func (e *SyntheticExecutor) fill(tk *search.TopK, terms []uint32) {
	h := uint64(e.ShardID)*2654435761 + 1
	for _, t := range terms {
		h = h*6364136223846793005 + uint64(t)
	}
	x := h
	for i := 0; i < e.TopK*4; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		doc := uint32(x) % 1_000_000
		score := float32(x%10_000) / 100
		tk.Push(doc, score)
	}
}

// Search implements Executor.
func (e *SyntheticExecutor) Search(terms []uint32) ([]uint32, []float32, float64) {
	tk := search.NewTopK(e.TopK)
	e.fill(tk, terms)
	docs, scores := tk.Results()

	e.mu.Lock()
	jitter := e.rng.Exponential(0.15 * e.BaseLatencyNS)
	e.mu.Unlock()
	lat := e.BaseLatencyNS + float64(len(terms))*e.PerTermNS + jitter
	return docs, scores, lat
}

// SearchBuf implements BufferedExecutor: identical results and jitter draw
// sequence to Search, written into the caller's buffers via an internal
// reusable selector, with no allocation after the first call.
func (e *SyntheticExecutor) SearchBuf(terms []uint32, docs []uint32, scores []float32) (int, float64, error) {
	e.mu.Lock()
	if e.tk == nil {
		e.tk = search.NewTopK(e.TopK)
	} else {
		e.tk.Reset()
	}
	e.fill(e.tk, terms)
	n := e.tk.ResultsInto(docs, scores)
	jitter := e.rng.Exponential(0.15 * e.BaseLatencyNS)
	e.mu.Unlock()
	lat := e.BaseLatencyNS + float64(len(terms))*e.PerTermNS + jitter
	return n, lat, nil
}

// EngineExecutor adapts a real search.Session to the Executor interface.
// The session is guarded by a mutex (sessions are single-threaded).
type EngineExecutor struct {
	mu sync.Mutex
	// Session is the engine session evaluating queries.
	Session *search.Session
	// NSPerInstr converts the session's instruction cost to latency
	// (1/(IPC*freqGHz)).
	NSPerInstr float64
}

// Search implements Executor. Tree mode bypasses the engine's query cache:
// cache hits store ids only, and fabricated rank-order scores must never
// merge against real BM25 scores from sibling shards — the serving tier has
// its own result cache at the cache-server level.
func (e *EngineExecutor) Search(terms []uint32) ([]uint32, []float32, float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.Session.SkipCache = true
	before := e.Session.Instructions()
	r := e.Session.Execute(terms)
	lat := float64(e.Session.Instructions()-before) * e.NSPerInstr
	return r.Docs, r.Scores, lat
}

// Config shapes the serving tree.
type Config struct {
	// Leaves is the number of leaf nodes (index shards).
	Leaves int
	// Fanout is the number of leaves per intermediate parent.
	Fanout int
	// TopK is the merged result size at every level.
	TopK int
	// CacheSlots sizes the cache-server tier (0 disables it).
	CacheSlots int
	// NetworkHopNS is the one-way cost of each tree hop.
	NetworkHopNS float64
	// RootOverheadNS is the root's preprocessing cost (spell check etc.).
	RootOverheadNS float64
	// FrontendOverheadNS is the web server's cost.
	FrontendOverheadNS float64
	// LeafCapacity is how many concurrent queries the leaf tier absorbs
	// before queueing inflates service times (0 disables the queueing
	// model). Latency is scaled by 1/(1-rho) with rho the instantaneous
	// utilization, the standard M/M/1-style congestion signal.
	LeafCapacity int
	// LeafDeadlineNS is the parent's per-leaf virtual-time deadline:
	// leaves that cannot answer (even via a hedged retry) by the deadline
	// are dropped from the merge and the result is marked Partial. 0
	// disables deadlines; the parent then waits for every leaf.
	LeafDeadlineNS float64
	// HedgeDelayNS is the virtual time after which a parent issues one
	// hedged retry of a still-pending leaf call to the next sibling shard
	// in the same parent; a leaf failure detected earlier triggers the
	// retry immediately. 0 disables hedging.
	HedgeDelayNS float64
	// Name labels the cluster's metric series ("cluster" when empty), so
	// several clusters can share one registry without colliding.
	Name string
	// Registry receives the cluster's metrics; nil gets a private registry
	// (Cluster.Metrics works either way).
	Registry *obs.Registry
	// Tracer, when non-nil, records one distributed trace per served query.
	// The span tree is reconstructed from the deterministic fan-out
	// outcomes after the concurrent phase resolves, so span identity and
	// timestamps are scheduling-independent; trace IDs follow Serve order
	// (deterministic for single-driver runs).
	Tracer *obs.Tracer
}

// DefaultConfig returns a small but fully structured tree. Deadlines and
// hedging are off by default so the latency model matches the unhardened
// tier exactly.
func DefaultConfig() Config {
	return Config{
		Leaves:             12,
		Fanout:             4,
		TopK:               10,
		CacheSlots:         4096,
		NetworkHopNS:       2e5,
		RootOverheadNS:     3e5,
		FrontendOverheadNS: 1e5,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Leaves <= 0 || c.Fanout <= 0 || c.TopK <= 0 {
		return fmt.Errorf("serving: counts must be positive")
	}
	if c.CacheSlots < 0 {
		return fmt.Errorf("serving: negative cache slots")
	}
	if c.NetworkHopNS < 0 || c.RootOverheadNS < 0 || c.FrontendOverheadNS < 0 {
		return fmt.Errorf("serving: negative latencies")
	}
	if c.LeafDeadlineNS < 0 || c.HedgeDelayNS < 0 {
		return fmt.Errorf("serving: negative deadline or hedge delay")
	}
	return nil
}

// leaf is one leaf node.
type leaf struct {
	id   int
	exec Executor
}

// parent aggregates a group of leaves.
type parent struct {
	leaves []*leaf
}

// Cluster is the wired serving tree.
type Cluster struct {
	cfg     Config
	parents []*parent
	leaves  []*leaf // flat view in shard order, for outage injection
	cache   *cacheServer
	metrics *clusterMetrics
	reg     *obs.Registry

	// driveMu serializes the single-driver loops (RunLoad, RunScenario),
	// which share the preallocated scratch below; the concurrent Serve path
	// never touches either.
	driveMu sync.Mutex
	scratch *serveScratch

	mu sync.Mutex
	// Queries and CacheHits count served requests.
	Queries, CacheHits int64
	inflight           int64
}

// NewCluster wires a tree with the given executors (one per leaf; missing
// entries get synthetic executors).
func NewCluster(cfg Config, executors []Executor) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	name := cfg.Name
	if name == "" {
		name = "cluster"
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c := &Cluster{cfg: cfg, metrics: newClusterMetrics(reg, name), reg: reg}
	if cfg.CacheSlots > 0 {
		c.cache = newCacheServer(cfg.CacheSlots)
	}
	var cur *parent
	for i := 0; i < cfg.Leaves; i++ {
		if cur == nil || len(cur.leaves) == cfg.Fanout {
			cur = &parent{}
			c.parents = append(c.parents, cur)
		}
		var exec Executor
		if i < len(executors) && executors[i] != nil {
			exec = executors[i]
		} else {
			exec = NewSyntheticExecutor(uint32(i), cfg.TopK)
		}
		lf := &leaf{id: i, exec: exec}
		cur.leaves = append(cur.leaves, lf)
		c.leaves = append(c.leaves, lf)
	}
	return c
}

// SetLeafDown marks leaf's executor administratively down (or back up) when
// it supports outage injection, reporting whether it did. Fleet scenario
// timelines use this for correlated leaf-failure windows.
func (c *Cluster) SetLeafDown(leafID int, down bool) bool {
	if leafID < 0 || leafID >= len(c.leaves) {
		return false
	}
	o, ok := c.leaves[leafID].exec.(OutageExecutor)
	if ok {
		o.SetDown(down)
	}
	return ok
}

// FlushCache empties the cache tier in place — a shard-reload / cold-restart
// event. No-op when the cache tier is disabled.
func (c *Cluster) FlushCache() {
	if c.cache != nil {
		c.cache.flush()
	}
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Registry returns the metrics registry the cluster reports into (the one
// from Config.Registry, or the private one created in its absence).
func (c *Cluster) Registry() *obs.Registry { return c.reg }

// leafOutcome is one leaf call's contribution as seen by its parent.
type leafOutcome struct {
	docs   []uint32
	scores []float32
	// srcLeaf is the shard that produced the answer (the hedge sibling
	// when the hedge won).
	srcLeaf int
	// arrivalNS is when the answer reached the parent (virtual time from
	// fan-out start, congestion applied).
	arrivalNS float64
	// waitNS is how long the parent waited on this leaf before answering,
	// giving up, or hitting the deadline.
	waitNS float64
	// answered reports whether the leaf's docs made the merge.
	answered bool
	// hedged/hedgeWon/failed/timedOut feed the metrics registry. failed
	// marks a failed primary attempt even when the hedge recovered it;
	// timedOut marks a leaf dropped at the deadline.
	hedged, hedgeWon bool
	failed, timedOut bool
	// attemptLatNS[:attempts] are the raw service latencies of the primary
	// and (when issued) hedge attempts — a fixed array rather than a slice
	// so outcome records carry no per-query allocations.
	attemptLatNS [2]float64
	attempts     int
	// Trace-reconstruction timeline (virtual time from fan-out start):
	// the primary shard and its arrival, and — when hedged — the retry's
	// issue and arrival times plus the sibling shard it went to.
	primaryLeaf                   int
	primaryArrivalNS              float64
	hedgeIssuedNS, hedgeArrivalNS float64
	hedgeLeaf                     int
}

// attempt is one executor call's raw outcome.
type attempt struct {
	docs   []uint32
	scores []float32
	lat    float64
	err    error
}

// fanOutLeaves runs the parent's leaf calls with deadline and hedging
// semantics in virtual time. Primaries run as one parallel phase, hedged
// retries (to the next sibling shard, a stand-in for a replica) as a
// second: within each phase every executor is called at most once, so
// executors with internal RNG state draw in a deterministic order no
// matter how the goroutines are scheduled.
func (c *Cluster) fanOutLeaves(p *parent, terms []uint32, congestion float64) []leafOutcome {
	deadline, hedgeDelay := c.cfg.LeafDeadlineNS, c.cfg.HedgeDelayNS
	n := len(p.leaves)

	prim := make([]attempt, n)
	var wg sync.WaitGroup
	for li := range p.leaves {
		wg.Add(1)
		go func(li int) {
			defer wg.Done()
			a := &prim[li]
			a.docs, a.scores, a.lat, a.err = searchLeaf(p.leaves[li].exec, terms)
		}(li)
	}
	wg.Wait()

	// One hedged retry per leaf: issued at the hedge delay while the
	// primary is still pending, or immediately when the primary fails
	// first. Skipped when it could not possibly beat the deadline.
	hedgeAt := make([]float64, n)
	hedges := make([]attempt, n)
	for li := range p.leaves {
		hedgeAt[li] = -1
		if hedgeDelay <= 0 || n < 2 {
			continue
		}
		arrival := prim[li].lat * congestion
		issueAt := -1.0
		if prim[li].err != nil {
			issueAt = arrival
		} else if arrival > hedgeDelay {
			issueAt = hedgeDelay
		}
		if issueAt >= 0 && (deadline == 0 || issueAt < deadline) {
			hedgeAt[li] = issueAt
			wg.Add(1)
			go func(li int) {
				defer wg.Done()
				a := &hedges[li]
				a.docs, a.scores, a.lat, a.err = searchLeaf(p.leaves[(li+1)%n].exec, terms)
			}(li)
		}
	}
	wg.Wait()

	outs := make([]leafOutcome, n)
	resolveOutcomes(p, prim, hedges, hedgeAt, congestion, deadline, outs)
	return outs
}

// resolveOutcomes turns raw primary/hedge attempts into per-leaf outcomes
// in virtual time. outs is caller-owned scratch, fully overwritten. The
// logic is shared verbatim by the concurrent fan-out (Serve) and the serial
// fan-out (serveSerial) so the two paths cannot drift.
func resolveOutcomes(p *parent, prim, hedges []attempt, hedgeAt []float64, congestion, deadline float64, outs []leafOutcome) {
	n := len(p.leaves)
	for li := range p.leaves {
		out := &outs[li]
		*out = leafOutcome{}
		out.srcLeaf = p.leaves[li].id
		out.attemptLatNS[0] = prim[li].lat
		out.attempts = 1
		docs, scores := prim[li].docs, prim[li].scores
		arrival := prim[li].lat * congestion
		ok := prim[li].err == nil
		out.failed = !ok
		out.primaryArrivalNS = arrival
		out.hedgeIssuedNS = -1

		out.primaryLeaf = p.leaves[li].id

		if hedgeAt[li] >= 0 {
			h := hedges[li]
			out.attemptLatNS[1] = h.lat
			out.attempts = 2
			out.hedged = true
			hArrival := hedgeAt[li] + h.lat*congestion
			out.hedgeIssuedNS = hedgeAt[li]
			out.hedgeArrivalNS = hArrival
			out.hedgeLeaf = p.leaves[(li+1)%n].id
			if h.err == nil && (!ok || hArrival < arrival) {
				docs, scores, arrival, ok = h.docs, h.scores, hArrival, true
				out.srcLeaf = p.leaves[(li+1)%n].id
				out.hedgeWon = true
			} else if !ok && hArrival > arrival {
				// Both attempts failed; the parent learns at the later one.
				arrival = hArrival
			}
		}

		switch {
		case !ok:
			out.waitNS = arrival
			if deadline > 0 && out.waitNS > deadline {
				out.waitNS = deadline
			}
		case deadline > 0 && arrival > deadline:
			out.timedOut = true
			out.waitNS = deadline
		default:
			out.answered = true
			out.docs, out.scores = docs, scores
			out.arrivalNS, out.waitNS = arrival, arrival
		}
	}
}

// Serve runs one query through the full tree and returns the merged result
// with its modeled latency. Leaves execute on real goroutines; merging is
// deterministic (leaf order) regardless of scheduling.
func (c *Cluster) Serve(q Query) Result {
	c.mu.Lock()
	c.Queries++
	c.inflight++
	congestion := 1.0
	if c.cfg.LeafCapacity > 0 {
		rho := float64(c.inflight) / float64(c.cfg.LeafCapacity)
		if rho > 0.95 {
			rho = 0.95
		}
		congestion = 1 / (1 - rho)
	}
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.inflight--
		c.mu.Unlock()
	}()

	tb := c.cfg.Tracer.Begin("query")
	traced := tb != nil

	lat := c.cfg.FrontendOverheadNS
	tag := cacheTag(q.Terms)
	probed := false
	if c.cache != nil {
		probed = true
		if docs, scores, ok := c.cache.get(tag); ok {
			c.mu.Lock()
			c.CacheHits++
			c.mu.Unlock()
			c.metrics.recordCacheHit(c.cfg.FrontendOverheadNS, c.cfg.NetworkHopNS)
			res := Result{Docs: docs, Scores: scores, FromCache: true, LatencyNS: lat + c.cfg.NetworkHopNS}
			if traced {
				c.emitCacheHitTrace(tb, res)
			}
			return res
		}
		lat += c.cfg.NetworkHopNS // cache miss probe
	}
	lat += c.cfg.RootOverheadNS

	// Root fans out to parents, parents to leaves; parallel hops cost the
	// slowest child, parents give up on a leaf at the deadline.
	results := make([]branchResult, len(c.parents))
	var wg sync.WaitGroup
	for pi, p := range c.parents {
		wg.Add(1)
		go func(pi int, p *parent) {
			defer wg.Done()
			outs := c.fanOutLeaves(p, q.Terms, congestion)

			// Merge in leaf order so results are deterministic no matter
			// how the goroutines above were scheduled. A winning hedge
			// returns the sibling shard's docs, which duplicate the
			// sibling's own answer — dedupe only then, keeping the
			// no-hedging path allocation-free.
			var seen map[uint32]struct{}
			for _, o := range outs {
				if o.hedgeWon {
					seen = make(map[uint32]struct{}, len(p.leaves)*c.cfg.TopK)
					break
				}
			}
			tk := search.NewTopK(c.cfg.TopK)
			b := branchResult{}
			if traced {
				b.outs = outs
			}
			var wait float64
			for _, o := range outs {
				if o.waitNS > wait {
					wait = o.waitNS
				}
				b.events.observe(&o)
				if !o.answered {
					b.partial = true
					continue
				}
				b.answered++
				for i := range o.docs {
					// Disambiguate doc ids across shards.
					id := o.docs[i]*uint32(c.cfg.Leaves) + uint32(o.srcLeaf)
					if seen != nil {
						if _, dup := seen[id]; dup {
							continue
						}
						seen[id] = struct{}{}
					}
					tk.Push(id, o.scores[i])
				}
			}
			b.docs, b.scores = tk.Results()
			b.lat = wait + 2*c.cfg.NetworkHopNS
			results[pi] = b
		}(pi, p)
	}
	wg.Wait()

	tk := search.NewTopK(c.cfg.TopK)
	var worst float64
	partial := false
	answered := 0
	var events mergeEvents
	for _, b := range results {
		if b.lat > worst {
			worst = b.lat
		}
		partial = partial || b.partial
		answered += b.answered
		events.add(b.events)
		for i := range b.docs {
			tk.Push(b.docs[i], b.scores[i])
		}
	}
	docs, scores := tk.Results()
	lat += worst + 2*c.cfg.NetworkHopNS

	// Degraded merges are never cached: a later identical query should get
	// another chance at a full answer, not a pinned partial one.
	if c.cache != nil && !partial {
		c.cache.put(tag, docs, scores)
	}
	c.metrics.recordServe(c.cfg.FrontendOverheadNS, probed, c.cfg.NetworkHopNS,
		worst+2*c.cfg.NetworkHopNS, events, partial)
	res := Result{Docs: docs, Scores: scores, LatencyNS: lat, Partial: partial, LeavesAnswered: answered}
	if traced {
		c.emitServeTrace(tb, probed, congestion, results, res)
	}
	return res
}

// branchResult is one parent subtree's contribution to the root merge.
type branchResult struct {
	docs     []uint32
	scores   []float32
	lat      float64
	partial  bool
	answered int
	events   mergeEvents
	// outs is retained only when tracing, to reconstruct leaf spans.
	outs []leafOutcome
}

// emitCacheHitTrace records the two-span trace of a cache-served query.
func (c *Cluster) emitCacheHitTrace(tb *obs.TraceBuilder, res Result) {
	fe := c.cfg.FrontendOverheadNS
	root := tb.Span(0, "query", 0, res.LatencyNS,
		obs.Bool("from_cache", true), obs.Bool("partial", false))
	tb.Span(root, "frontend", 0, fe)
	tb.Span(root, "cache-probe", fe, fe+c.cfg.NetworkHopNS, obs.Bool("hit", true))
	tb.Finish()
}

// emitServeTrace reconstructs a full tree traversal's span tree from the
// resolved fan-out outcomes. The virtual timeline mirrors the latency
// model exactly: frontend, optional cache probe, root preprocessing, one
// hop down to each parent, one hop down to each leaf, congested leaf
// service, and the return hops; the root merge itself is free in the
// model, so its span is an instant marking where the result assembled.
// Because outcomes are resolved deterministically before any span exists,
// the emitted tree is identical no matter how the fan-out goroutines were
// scheduled.
func (c *Cluster) emitServeTrace(tb *obs.TraceBuilder, probed bool, congestion float64, branches []branchResult, res Result) {
	hop := c.cfg.NetworkHopNS
	fe := c.cfg.FrontendOverheadNS
	root := tb.Span(0, "query", 0, res.LatencyNS,
		obs.Bool("from_cache", false),
		obs.Bool("partial", res.Partial),
		obs.Int("leaves_answered", int64(res.LeavesAnswered)),
		obs.Float("congestion", congestion))
	tb.Span(root, "frontend", 0, fe)
	rootStart := fe
	if probed {
		tb.Span(root, "cache-probe", fe, fe+hop, obs.Bool("hit", false))
		rootStart += hop
	}
	fanStart := rootStart + c.cfg.RootOverheadNS
	tb.Span(root, "root", rootStart, fanStart)
	fan := tb.Span(root, "fanout", fanStart, res.LatencyNS,
		obs.Int("parents", int64(len(branches))))
	for pi := range branches {
		b := &branches[pi]
		pStart := fanStart + hop
		ps := tb.Span(fan, fmt.Sprintf("parent[%d]", pi), pStart, pStart+b.lat,
			obs.Int("leaves", int64(len(b.outs))),
			obs.Int("answered", int64(b.answered)),
			obs.Bool("partial", b.partial))
		leafStart := pStart + hop
		for li := range b.outs {
			o := &b.outs[li]
			tb.Span(ps, fmt.Sprintf("leaf[%d]/primary", o.primaryLeaf),
				leafStart, leafStart+o.primaryArrivalNS,
				obs.Int("shard", int64(o.primaryLeaf)),
				obs.Bool("failed", o.failed),
				obs.Bool("timed_out", o.timedOut),
				obs.Bool("answered", o.answered && !o.hedgeWon))
			if o.hedged {
				tb.Span(ps, fmt.Sprintf("leaf[%d]/hedge", o.primaryLeaf),
					leafStart+o.hedgeIssuedNS, leafStart+o.hedgeArrivalNS,
					obs.Int("shard", int64(o.hedgeLeaf)),
					obs.Bool("won", o.hedgeWon))
			}
		}
	}
	tb.Span(fan, "merge", res.LatencyNS, res.LatencyNS,
		obs.Int("results", int64(len(res.Docs))),
		obs.Bool("partial", res.Partial))
	tb.Finish()
}

// CacheHitRate returns the fraction of queries served by the cache tier.
func (c *Cluster) CacheHitRate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.Queries == 0 {
		return 0
	}
	return float64(c.CacheHits) / float64(c.Queries)
}

// cacheTag hashes query terms (FNV-1a).
func cacheTag(terms []uint32) uint64 {
	h := uint64(14695981039346656037)
	for _, t := range terms {
		h ^= uint64(t)
		h *= 1099511628211
	}
	return h
}

// cacheServer is the cache tier: a sharded LRU map keyed by query tag.
// Entries are defensively copied on both put and get: callers own the
// slices in a Result and may mutate them, and a cached entry must survive
// that (see TestCacheEntriesImmuneToCallerMutation).
//
// Eviction order lives in a fixed-capacity ring buffer (head/count over a
// slots-sized array). The previous slice queue — `order = order[1:]` plus
// append — slid a window through its backing array and re-allocated it
// every few evictions, so a long churny run paid an allocation and a copy
// of the whole queue per handful of inserts. The ring never re-allocates,
// and evicted entries are recycled into the next insert, so a full cache
// under churn runs at a zero-allocation steady state.
type cacheServer struct {
	mu    sync.Mutex
	slots int
	data  map[uint64]*cacheEntry
	order []uint64 // FIFO eviction ring (clock-less approximation of LRU)
	head  int      // ring index of the oldest entry
	count int      // live entries (== len(data))
}

type cacheEntry struct {
	docs   []uint32
	scores []float32
}

func newCacheServer(slots int) *cacheServer {
	return &cacheServer{
		slots: slots,
		data:  make(map[uint64]*cacheEntry, slots),
		order: make([]uint64, slots),
	}
}

func (s *cacheServer) get(tag uint64) ([]uint32, []float32, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.data[tag]
	if !ok {
		return nil, nil, false
	}
	return append([]uint32(nil), e.docs...), append([]float32(nil), e.scores...), true
}

// getInto copies the entry for tag into the caller's buffers (reusing their
// capacity) and reports whether it was present — the zero-allocation
// counterpart of get, used by the pooled serial serve path.
func (s *cacheServer) getInto(tag uint64, docs *[]uint32, scores *[]float32) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.data[tag]
	if !ok {
		return false
	}
	*docs = append((*docs)[:0], e.docs...)
	*scores = append((*scores)[:0], e.scores...)
	return true
}

func (s *cacheServer) put(tag uint64, docs []uint32, scores []float32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, exists := s.data[tag]; exists {
		// Same defensive-copy contract, reusing the entry's storage; the
		// FIFO position is unchanged, as before.
		e.docs = append(e.docs[:0], docs...)
		e.scores = append(e.scores[:0], scores...)
		return
	}
	var e *cacheEntry
	for s.count >= s.slots && s.count > 0 {
		victim := s.order[s.head]
		s.head++
		if s.head == s.slots {
			s.head = 0
		}
		s.count--
		e = s.data[victim] // recycle the victim's storage for the insert
		delete(s.data, victim)
	}
	if e == nil {
		e = &cacheEntry{}
	}
	e.docs = append(e.docs[:0], docs...)
	e.scores = append(e.scores[:0], scores...)
	s.data[tag] = e
	tail := s.head + s.count
	if tail >= s.slots {
		tail -= s.slots
	}
	s.order[tail] = tag
	s.count++
}

// flush empties the cache in place, keeping the map's storage — the
// shard-reload / cold-restart event of fleet scenarios.
func (s *cacheServer) flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	clear(s.data)
	s.head, s.count = 0, 0
}

// LoadStats summarizes a load-generation run.
type LoadStats struct {
	// Queries served and the cache-hit share.
	Queries   int64
	CacheHits int64
	// PartialResults counts queries answered with a degraded merge.
	PartialResults int64
	// MeanLatencyNS, P50, P95 and P99 describe the virtual latency
	// distribution.
	MeanLatencyNS, P50NS, P95NS, P99NS float64
	// QPS is modeled throughput: clients / mean latency for closed loops,
	// served queries / virtual duration for open-loop scenarios.
	QPS float64
}
