// Package serving implements the search serving system of the paper's
// Figure 1: a front-end web server, cache servers, a root, intermediate
// parents, and leaf nodes each holding an index shard. Queries fan out down
// the tree; results propagate up with score-based merging at every level.
//
// Time is virtual: every component charges modeled latency to the query and
// parallel fan-out costs the maximum over children, which keeps simulations
// deterministic and fast while producing realistic latency distributions.
// The cluster is safe for concurrent use so examples can drive it with real
// goroutines.
package serving

import (
	"fmt"
	"sync"

	"searchmem/internal/search"
	"searchmem/internal/stats"
)

// Query is one user request.
type Query struct {
	// Terms are the query's term ids.
	Terms []uint32
}

// Result is an aggregated search response.
type Result struct {
	// Docs and Scores are the merged top-k, best first.
	Docs   []uint32
	Scores []float32
	// FromCache reports whether a cache server short-circuited the tree.
	FromCache bool
	// LatencyNS is the modeled end-to-end latency.
	LatencyNS float64
}

// Executor evaluates a query against one shard and reports its modeled
// service latency.
type Executor interface {
	// Search returns the shard-local top-k with scores, plus the modeled
	// execution latency in nanoseconds.
	Search(terms []uint32) (docs []uint32, scores []float32, latencyNS float64)
}

// SyntheticExecutor is a deterministic stand-in for a real leaf engine:
// results derive from a hash of (term, shard), latency from a base cost
// plus per-term cost with deterministic jitter.
type SyntheticExecutor struct {
	// ShardID decorrelates results between leaves.
	ShardID uint32
	// TopK is the number of results returned.
	TopK int
	// BaseLatencyNS and PerTermNS build the service-time model.
	BaseLatencyNS, PerTermNS float64

	mu  sync.Mutex
	rng *stats.RNG
}

// NewSyntheticExecutor returns an executor for the given shard.
func NewSyntheticExecutor(shardID uint32, topK int) *SyntheticExecutor {
	return &SyntheticExecutor{
		ShardID:       shardID,
		TopK:          topK,
		BaseLatencyNS: 2e6, // 2 ms base service time
		PerTermNS:     8e5,
		rng:           stats.NewRNG(uint64(shardID)*0x9e37 + 5),
	}
}

// Search implements Executor.
func (e *SyntheticExecutor) Search(terms []uint32) ([]uint32, []float32, float64) {
	tk := search.NewTopK(e.TopK)
	h := uint64(e.ShardID)*2654435761 + 1
	for _, t := range terms {
		h = h*6364136223846793005 + uint64(t)
	}
	// Deterministic pseudo-results: k docs scored by a hash chain.
	x := h
	for i := 0; i < e.TopK*4; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		doc := uint32(x) % 1_000_000
		score := float32(x%10_000) / 100
		tk.Push(doc, score)
	}
	docs, scores := tk.Results()

	e.mu.Lock()
	jitter := e.rng.Exponential(0.15 * e.BaseLatencyNS)
	e.mu.Unlock()
	lat := e.BaseLatencyNS + float64(len(terms))*e.PerTermNS + jitter
	return docs, scores, lat
}

// EngineExecutor adapts a real search.Session to the Executor interface.
// The session is guarded by a mutex (sessions are single-threaded).
type EngineExecutor struct {
	mu sync.Mutex
	// Session is the engine session evaluating queries.
	Session *search.Session
	// NSPerInstr converts the session's instruction cost to latency
	// (1/(IPC*freqGHz)).
	NSPerInstr float64
}

// Search implements Executor.
func (e *EngineExecutor) Search(terms []uint32) ([]uint32, []float32, float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	before := e.Session.Instructions()
	r := e.Session.Execute(terms)
	lat := float64(e.Session.Instructions()-before) * e.NSPerInstr
	scores := r.Scores
	if scores == nil {
		// Query-cache hits store ids only; synthesize rank-order scores
		// so upstream merging stays well-defined.
		scores = make([]float32, len(r.Docs))
		for i := range scores {
			scores[i] = float32(len(r.Docs) - i)
		}
	}
	return r.Docs, scores, lat
}

// Config shapes the serving tree.
type Config struct {
	// Leaves is the number of leaf nodes (index shards).
	Leaves int
	// Fanout is the number of leaves per intermediate parent.
	Fanout int
	// TopK is the merged result size at every level.
	TopK int
	// CacheSlots sizes the cache-server tier (0 disables it).
	CacheSlots int
	// NetworkHopNS is the one-way cost of each tree hop.
	NetworkHopNS float64
	// RootOverheadNS is the root's preprocessing cost (spell check etc.).
	RootOverheadNS float64
	// FrontendOverheadNS is the web server's cost.
	FrontendOverheadNS float64
	// LeafCapacity is how many concurrent queries the leaf tier absorbs
	// before queueing inflates service times (0 disables the queueing
	// model). Latency is scaled by 1/(1-rho) with rho the instantaneous
	// utilization, the standard M/M/1-style congestion signal.
	LeafCapacity int
}

// DefaultConfig returns a small but fully structured tree.
func DefaultConfig() Config {
	return Config{
		Leaves:             12,
		Fanout:             4,
		TopK:               10,
		CacheSlots:         4096,
		NetworkHopNS:       2e5,
		RootOverheadNS:     3e5,
		FrontendOverheadNS: 1e5,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Leaves <= 0 || c.Fanout <= 0 || c.TopK <= 0 {
		return fmt.Errorf("serving: counts must be positive")
	}
	if c.CacheSlots < 0 {
		return fmt.Errorf("serving: negative cache slots")
	}
	if c.NetworkHopNS < 0 || c.RootOverheadNS < 0 || c.FrontendOverheadNS < 0 {
		return fmt.Errorf("serving: negative latencies")
	}
	return nil
}

// leaf is one leaf node.
type leaf struct {
	id   int
	exec Executor
}

// parent aggregates a group of leaves.
type parent struct {
	leaves []*leaf
}

// Cluster is the wired serving tree.
type Cluster struct {
	cfg     Config
	parents []*parent
	cache   *cacheServer

	mu sync.Mutex
	// Queries and CacheHits count served requests.
	Queries, CacheHits int64
	inflight           int64
}

// NewCluster wires a tree with the given executors (one per leaf; missing
// entries get synthetic executors).
func NewCluster(cfg Config, executors []Executor) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cluster{cfg: cfg}
	if cfg.CacheSlots > 0 {
		c.cache = newCacheServer(cfg.CacheSlots)
	}
	var cur *parent
	for i := 0; i < cfg.Leaves; i++ {
		if cur == nil || len(cur.leaves) == cfg.Fanout {
			cur = &parent{}
			c.parents = append(c.parents, cur)
		}
		var exec Executor
		if i < len(executors) && executors[i] != nil {
			exec = executors[i]
		} else {
			exec = NewSyntheticExecutor(uint32(i), cfg.TopK)
		}
		cur.leaves = append(cur.leaves, &leaf{id: i, exec: exec})
	}
	return c
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Serve runs one query through the full tree and returns the merged result
// with its modeled latency.
func (c *Cluster) Serve(q Query) Result {
	c.mu.Lock()
	c.Queries++
	c.inflight++
	congestion := 1.0
	if c.cfg.LeafCapacity > 0 {
		rho := float64(c.inflight) / float64(c.cfg.LeafCapacity)
		if rho > 0.95 {
			rho = 0.95
		}
		congestion = 1 / (1 - rho)
	}
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.inflight--
		c.mu.Unlock()
	}()

	lat := c.cfg.FrontendOverheadNS
	tag := cacheTag(q.Terms)
	if c.cache != nil {
		if docs, scores, ok := c.cache.get(tag); ok {
			c.mu.Lock()
			c.CacheHits++
			c.mu.Unlock()
			return Result{Docs: docs, Scores: scores, FromCache: true, LatencyNS: lat + c.cfg.NetworkHopNS}
		}
		lat += c.cfg.NetworkHopNS // cache miss probe
	}
	lat += c.cfg.RootOverheadNS

	// Root fans out to parents, parents to leaves; parallel hops cost the
	// slowest child. Real goroutines make the cluster exercisable under
	// concurrent load in examples.
	type branch struct {
		docs   []uint32
		scores []float32
		lat    float64
	}
	results := make([]branch, len(c.parents))
	var wg sync.WaitGroup
	for pi, p := range c.parents {
		wg.Add(1)
		go func(pi int, p *parent) {
			defer wg.Done()
			tk := search.NewTopK(c.cfg.TopK)
			var worst float64
			for _, lf := range p.leaves {
				docs, scores, leafLat := lf.exec.Search(q.Terms)
				if leafLat > worst {
					worst = leafLat
				}
				for i := range docs {
					// Disambiguate doc ids across shards.
					tk.Push(docs[i]*uint32(c.cfg.Leaves)+uint32(lf.id), scores[i])
				}
			}
			docs, scores := tk.Results()
			results[pi] = branch{docs: docs, scores: scores, lat: worst*congestion + 2*c.cfg.NetworkHopNS}
		}(pi, p)
	}
	wg.Wait()

	tk := search.NewTopK(c.cfg.TopK)
	var worst float64
	for _, b := range results {
		if b.lat > worst {
			worst = b.lat
		}
		for i := range b.docs {
			tk.Push(b.docs[i], b.scores[i])
		}
	}
	docs, scores := tk.Results()
	lat += worst + 2*c.cfg.NetworkHopNS

	if c.cache != nil {
		c.cache.put(tag, docs, scores)
	}
	return Result{Docs: docs, Scores: scores, LatencyNS: lat}
}

// CacheHitRate returns the fraction of queries served by the cache tier.
func (c *Cluster) CacheHitRate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.Queries == 0 {
		return 0
	}
	return float64(c.CacheHits) / float64(c.Queries)
}

// cacheTag hashes query terms (FNV-1a).
func cacheTag(terms []uint32) uint64 {
	h := uint64(14695981039346656037)
	for _, t := range terms {
		h ^= uint64(t)
		h *= 1099511628211
	}
	return h
}

// cacheServer is the cache tier: a sharded LRU map keyed by query tag.
type cacheServer struct {
	mu    sync.Mutex
	slots int
	data  map[uint64]*cacheEntry
	order []uint64 // FIFO eviction order (clock-less approximation of LRU)
}

type cacheEntry struct {
	docs   []uint32
	scores []float32
}

func newCacheServer(slots int) *cacheServer {
	return &cacheServer{slots: slots, data: make(map[uint64]*cacheEntry, slots)}
}

func (s *cacheServer) get(tag uint64) ([]uint32, []float32, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.data[tag]
	if !ok {
		return nil, nil, false
	}
	return e.docs, e.scores, true
}

func (s *cacheServer) put(tag uint64, docs []uint32, scores []float32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.data[tag]; exists {
		s.data[tag] = &cacheEntry{docs: docs, scores: scores}
		return
	}
	for len(s.data) >= s.slots && len(s.order) > 0 {
		victim := s.order[0]
		s.order = s.order[1:]
		delete(s.data, victim)
	}
	s.data[tag] = &cacheEntry{docs: docs, scores: scores}
	s.order = append(s.order, tag)
}

// LoadStats summarizes a load-generation run.
type LoadStats struct {
	// Queries served and the cache-hit share.
	Queries   int64
	CacheHits int64
	// MeanLatencyNS, P50, P95 and P99 describe the virtual latency
	// distribution.
	MeanLatencyNS, P50NS, P95NS, P99NS float64
	// QPS is modeled closed-loop throughput: clients / mean latency.
	QPS float64
}

// RunLoad drives the cluster with a closed-loop load of clients issuing
// queries drawn Zipf-popular from vocabSize (popular queries repeat, which
// is what makes the cache tier effective). It is deterministic given seed.
func RunLoad(c *Cluster, clients, queriesPerClient, vocabSize int, skew float64, seed uint64) LoadStats {
	if clients <= 0 || queriesPerClient <= 0 || vocabSize <= 0 {
		panic("serving: load parameters must be positive")
	}
	hist := stats.NewHistogram(8)
	var histMu sync.Mutex
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			rng := stats.NewRNG(seed + uint64(cl)*977)
			// Query popularity: a Zipf over "canned" query ids expanded
			// into term tuples, modeling repeated popular queries.
			qsel := stats.NewZipf(rng.Split(), uint64(vocabSize), skew)
			for i := 0; i < queriesPerClient; i++ {
				qid := qsel.Next()
				terms := []uint32{uint32(qid), uint32(qid>>3) % uint32(vocabSize)}
				r := c.Serve(Query{Terms: terms})
				histMu.Lock()
				hist.Add(r.LatencyNS)
				histMu.Unlock()
			}
		}(cl)
	}
	wg.Wait()

	mean := hist.Mean()
	st := LoadStats{
		Queries:       c.Queries,
		CacheHits:     c.CacheHits,
		MeanLatencyNS: mean,
		P50NS:         hist.Quantile(0.50),
		P95NS:         hist.Quantile(0.95),
		P99NS:         hist.Quantile(0.99),
	}
	if mean > 0 {
		st.QPS = float64(clients) / (mean * 1e-9)
	}
	return st
}
