package serving

import (
	"testing"

	"searchmem/internal/memsim"
	"searchmem/internal/search"
)

// fixedExec is a deterministic executor with a constant latency, optionally
// failing every call. Distinct Base values keep per-shard results disjoint.
type fixedExec struct {
	lat  float64
	base uint32
	fail bool
}

func (f *fixedExec) Search(terms []uint32) ([]uint32, []float32, float64) {
	docs, scores, lat, _ := f.SearchErr(terms)
	return docs, scores, lat
}

func (f *fixedExec) SearchErr(terms []uint32) ([]uint32, []float32, float64, error) {
	if f.fail {
		return nil, nil, f.lat, ErrInjectedFault
	}
	docs := []uint32{f.base, f.base + 1}
	scores := []float32{float32(f.base%97) + 2, float32(f.base % 97)}
	return docs, scores, f.lat, nil
}

// fixedCluster wires 4 leaves under one parent with the given latencies.
func fixedCluster(cfg Config, execs []Executor) *Cluster {
	cfg.Leaves = len(execs)
	cfg.Fanout = len(execs)
	cfg.CacheSlots = 0
	return NewCluster(cfg, execs)
}

func fourFixed(lats [4]float64) []Executor {
	execs := make([]Executor, 4)
	for i := range execs {
		execs[i] = &fixedExec{lat: lats[i], base: uint32(100 * (i + 1))}
	}
	return execs
}

// TestLatencyModelUnchangedWithoutFaults pins the seed latency formula:
// with deadlines and hedging disabled the fan-out costs the slowest leaf
// plus four network hops and the fixed overheads, exactly as before the
// fault-tolerance rework.
func TestLatencyModelUnchangedWithoutFaults(t *testing.T) {
	cfg := DefaultConfig()
	c := fixedCluster(cfg, fourFixed([4]float64{1e6, 3e6, 2e6, 2.5e6}))
	r := c.Serve(Query{Terms: []uint32{1, 2}})
	want := cfg.FrontendOverheadNS + cfg.RootOverheadNS + 3e6 + 4*cfg.NetworkHopNS
	if r.LatencyNS != want {
		t.Fatalf("latency = %v, want %v", r.LatencyNS, want)
	}
	if r.Partial {
		t.Fatal("healthy serve marked partial")
	}
	if r.LeavesAnswered != 4 {
		t.Fatalf("LeavesAnswered = %d, want 4", r.LeavesAnswered)
	}
}

func TestDeadlineDropsSlowLeaf(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LeafDeadlineNS = 5e6 // hedging off: the slow leaf cannot recover
	c := fixedCluster(cfg, fourFixed([4]float64{1e6, 20e6, 2e6, 2.5e6}))
	r := c.Serve(Query{Terms: []uint32{1, 2}})
	if !r.Partial {
		t.Fatal("slow leaf past the deadline did not mark the result partial")
	}
	if r.LeavesAnswered != 3 {
		t.Fatalf("LeavesAnswered = %d, want 3", r.LeavesAnswered)
	}
	// The parent gives up at the deadline, not at the slow leaf's latency.
	want := cfg.FrontendOverheadNS + cfg.RootOverheadNS + cfg.LeafDeadlineNS + 4*cfg.NetworkHopNS
	if r.LatencyNS != want {
		t.Fatalf("latency = %v, want %v", r.LatencyNS, want)
	}
	// The dropped leaf's docs must not appear in the merge.
	for _, d := range r.Docs {
		if src := d % uint32(c.cfg.Leaves); src == 1 {
			t.Fatalf("dropped leaf's doc %d in merge", d)
		}
	}
	m := c.Metrics()
	if m.LeafTimeouts != 1 || m.PartialResults != 1 {
		t.Fatalf("metrics: timeouts=%d partials=%d, want 1/1", m.LeafTimeouts, m.PartialResults)
	}
}

func TestHedgeRecoversSlowLeaf(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LeafDeadlineNS = 8e6
	cfg.HedgeDelayNS = 3e6
	c := fixedCluster(cfg, fourFixed([4]float64{1e6, 20e6, 2e6, 2.5e6}))
	r := c.Serve(Query{Terms: []uint32{1, 2}})
	if r.Partial {
		t.Fatal("hedged retry should have recovered the slow leaf")
	}
	if r.LeavesAnswered != 4 {
		t.Fatalf("LeavesAnswered = %d, want 4", r.LeavesAnswered)
	}
	// Slow leaf 1's answer arrives via its sibling (leaf 2, 2 ms) at
	// hedge-delay + sibling latency = 5 ms, which bounds the fan-out.
	want := cfg.FrontendOverheadNS + cfg.RootOverheadNS + (3e6 + 2e6) + 4*cfg.NetworkHopNS
	if r.LatencyNS != want {
		t.Fatalf("latency = %v, want %v", r.LatencyNS, want)
	}
	m := c.Metrics()
	if m.HedgesIssued != 1 || m.HedgeWins != 1 {
		t.Fatalf("metrics: hedges=%d wins=%d, want 1/1", m.HedgesIssued, m.HedgeWins)
	}
}

func TestFailedLeafRetriesImmediately(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LeafDeadlineNS = 8e6
	cfg.HedgeDelayNS = 3e6
	execs := fourFixed([4]float64{1e6, 1e6, 2e6, 2.5e6})
	execs[1].(*fixedExec).fail = true // fails fast at 1 ms, before the hedge delay
	c := fixedCluster(cfg, execs)
	r := c.Serve(Query{Terms: []uint32{1, 2}})
	if r.Partial || r.LeavesAnswered != 4 {
		t.Fatalf("failure not recovered: partial=%v answered=%d", r.Partial, r.LeavesAnswered)
	}
	// Retry issued at the failure (1 ms), answered by leaf 2 in 2 ms: the
	// recovered answer at 3 ms dominates the healthy leaves.
	want := cfg.FrontendOverheadNS + cfg.RootOverheadNS + 3e6 + 4*cfg.NetworkHopNS
	if r.LatencyNS != want {
		t.Fatalf("latency = %v, want %v", r.LatencyNS, want)
	}
	m := c.Metrics()
	if m.LeafFailures != 1 || m.HedgesIssued != 1 || m.HedgeWins != 1 {
		t.Fatalf("metrics: failures=%d hedges=%d wins=%d", m.LeafFailures, m.HedgesIssued, m.HedgeWins)
	}
}

func TestFailedLeafWithoutHedgingDegrades(t *testing.T) {
	cfg := DefaultConfig()
	execs := fourFixed([4]float64{1e6, 1e6, 2e6, 2.5e6})
	execs[0].(*fixedExec).fail = true
	c := fixedCluster(cfg, execs)
	r := c.Serve(Query{Terms: []uint32{3}})
	if !r.Partial || r.LeavesAnswered != 3 {
		t.Fatalf("partial=%v answered=%d, want true/3", r.Partial, r.LeavesAnswered)
	}
	if c.Metrics().LeafFailures != 1 {
		t.Fatal("failure not counted")
	}
}

func TestPartialResultsNotCached(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Leaves, cfg.Fanout = 4, 4
	execs := fourFixed([4]float64{1e6, 1e6, 2e6, 2.5e6})
	execs[0].(*fixedExec).fail = true
	c := NewCluster(cfg, execs)
	q := Query{Terms: []uint32{5, 6}}
	first := c.Serve(q)
	second := c.Serve(q)
	if !first.Partial || !second.Partial {
		t.Fatal("expected partial results")
	}
	if second.FromCache {
		t.Fatal("degraded result was cached and replayed")
	}
}

// TestCacheEntriesImmuneToCallerMutation is the regression test for the
// cache-aliasing bug: callers own Result slices and may mutate them; the
// cached entry (and later hits) must not see those writes.
func TestCacheEntriesImmuneToCallerMutation(t *testing.T) {
	c := testCluster(1024)
	q := Query{Terms: []uint32{21, 22}}
	first := c.Serve(q)
	want := append([]uint32(nil), first.Docs...)
	for i := range first.Docs {
		first.Docs[i] = 4_000_000 + uint32(i) // caller scribbles over its result
		first.Scores[i] = -1
	}
	second := c.Serve(q)
	if !second.FromCache {
		t.Fatal("repeat query missed cache")
	}
	for i := range want {
		if second.Docs[i] != want[i] {
			t.Fatalf("cache corrupted by caller mutation: doc[%d]=%d, want %d", i, second.Docs[i], want[i])
		}
		if second.Scores[i] < 0 {
			t.Fatalf("cache scores corrupted: %v", second.Scores)
		}
	}
	// Mutating a cache hit must not corrupt later hits either.
	second.Docs[0] = 9_999_999
	third := c.Serve(q)
	if third.Docs[0] != want[0] {
		t.Fatalf("cache corrupted by hit mutation: %d, want %d", third.Docs[0], want[0])
	}
}

// TestEngineLeafScoresStableAcrossRepeats is the regression test for the
// fabricated-score bug: repeated queries used to hit the engine's query
// cache, which stores ids only, and the executor fabricated rank-order
// scores (k..1) that merged wrongly against real BM25 scores from sibling
// shards. With the engine cache bypassed in tree mode, a repeat of the same
// query must reproduce the identical merged docs and scores.
func TestEngineLeafScoresStableAcrossRepeats(t *testing.T) {
	cfg := search.DefaultConfig()
	cfg.Corpus.NumDocs = 2000
	cfg.Corpus.VocabSize = 3000
	cfg.Corpus.AvgDocLen = 30
	space := memsim.NewSpace(nil)
	eng, _ := search.Build(cfg, space, nil)
	exec := &EngineExecutor{Session: eng.NewSession(0, nil), NSPerInstr: 0.3}

	cc := DefaultConfig()
	cc.Leaves, cc.Fanout = 2, 2
	cc.TopK = 30 // large enough that every candidate survives the merge
	cc.CacheSlots = 0
	// The sibling shard returns two fixed docs, so every engine doc (and
	// its real BM25 score) is guaranteed a slot in the merged top-k.
	cluster := NewCluster(cc, []Executor{exec, &fixedExec{lat: 2e6, base: 50}})

	q := Query{Terms: []uint32{1, 2}}
	first := cluster.Serve(q)
	second := cluster.Serve(q)
	if len(first.Docs) != len(second.Docs) {
		t.Fatalf("result sizes differ: %d vs %d", len(first.Docs), len(second.Docs))
	}
	for i := range first.Docs {
		if first.Docs[i] != second.Docs[i] || first.Scores[i] != second.Scores[i] {
			t.Fatalf("merge unstable at %d: (%d, %v) vs (%d, %v)",
				i, first.Docs[i], first.Scores[i], second.Docs[i], second.Scores[i])
		}
	}
}

// TestEngineExecutorScoresAreReal drives the executor directly: every call
// must return real scores, never rank-order placeholders from a cache hit.
func TestEngineExecutorScoresAreReal(t *testing.T) {
	cfg := search.DefaultConfig()
	cfg.Corpus.NumDocs = 2000
	cfg.Corpus.VocabSize = 3000
	cfg.Corpus.AvgDocLen = 30
	space := memsim.NewSpace(nil)
	eng, _ := search.Build(cfg, space, nil)
	exec := &EngineExecutor{Session: eng.NewSession(0, nil), NSPerInstr: 0.3}

	_, s1, _ := exec.Search([]uint32{1, 2})
	_, s2, _ := exec.Search([]uint32{1, 2})
	if len(s1) == 0 || len(s1) != len(s2) {
		t.Fatalf("score lengths: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("scores changed between identical calls: %v vs %v", s1, s2)
		}
	}
}

func faultyCluster(cfg Config, n int, seed uint64) *Cluster {
	execs := make([]Executor, n)
	for i := range execs {
		execs[i] = &FaultyExecutor{
			Inner:    NewSyntheticExecutor(uint32(i), cfg.TopK),
			SlowProb: 0.10, SlowFactor: 8,
			FailProb: 0.02,
			FlapProb: 0.01,
			Seed:     seed + uint64(i)*7919,
		}
	}
	cfg.Leaves = n
	return NewCluster(cfg, execs)
}

// TestRaceFaultInjectedLoad is the -race stress test: the closed-loop load
// drives the concurrent per-query leaf fan-out with fault injection,
// deadlines and hedging all enabled (client concurrency is modeled in
// virtual time; TestConcurrentServe covers truly concurrent Serve calls).
func TestRaceFaultInjectedLoad(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LeafDeadlineNS = 8e6
	cfg.HedgeDelayNS = 4e6
	cfg.LeafCapacity = 64
	c := faultyCluster(cfg, 12, 3)
	st := RunLoad(c, 8, 60, 500, 1.1, 3)
	if st.Queries != 480 {
		t.Fatalf("queries = %d", st.Queries)
	}
	m := c.Metrics()
	if m.Queries != 480 {
		t.Fatalf("metrics queries = %d", m.Queries)
	}
	if m.LeafService.Count == 0 || m.Merge.Count == 0 {
		t.Fatal("stage metrics not recorded")
	}
}

// TestRunLoadDeterministic asserts identical LoadStats across two runs with
// the same seed — including the exact fault and hedge counters — for both a
// single client and a multi-client closed loop. Multi-client determinism is
// the regression pin for the virtual-completion-order event loop: the old
// goroutine-per-client driver drew per-executor jitter RNGs in scheduling
// order, so hedge counts drifted run to run under -race.
func TestRunLoadDeterministic(t *testing.T) {
	for _, clients := range []int{1, 8, 10000} {
		qpc := 300
		if clients >= 10000 {
			qpc = 2 // same total-order property, scale-stressed heap
		}
		run := func() (LoadStats, Metrics) {
			cfg := DefaultConfig()
			cfg.LeafDeadlineNS = 8e6
			cfg.HedgeDelayNS = 4e6
			cl := faultyCluster(cfg, 12, 11)
			st := RunLoad(cl, clients, qpc, 400, 1.1, 9)
			return st, cl.Metrics()
		}
		a, am := run()
		b, bm := run()
		if a != b {
			t.Fatalf("clients=%d: LoadStats differ across identical runs:\n%+v\n%+v", clients, a, b)
		}
		if am.HedgesIssued != bm.HedgesIssued || am.LeafTimeouts != bm.LeafTimeouts || am.LeafFailures != bm.LeafFailures {
			t.Fatalf("clients=%d: fault counters differ across identical runs:\n%+v\n%+v", clients, am, bm)
		}
		if a.PartialResults == 0 {
			t.Fatal("fault injection produced no partial results")
		}
	}
}

// TestDeadlineBoundsTailUnderSlowInjection checks the degradation contract:
// with a 10% slow-leaf injection, the load completes, partial results are
// reported, and P99 stays bounded by the deadline plus the fixed overheads
// (hedging cannot push the fan-out past the deadline).
func TestDeadlineBoundsTailUnderSlowInjection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheSlots = 0
	cfg.LeafDeadlineNS = 6e6
	cfg.HedgeDelayNS = 3e6
	execs := make([]Executor, 12)
	for i := range execs {
		execs[i] = &FaultyExecutor{
			Inner:    NewSyntheticExecutor(uint32(i), cfg.TopK),
			SlowProb: 0.10, SlowFactor: 16,
			Seed: 100 + uint64(i)*7919,
		}
	}
	c := NewCluster(cfg, execs)
	st := RunLoad(c, 4, 200, 300, 1.1, 17)
	if st.Queries != 800 {
		t.Fatalf("queries = %d", st.Queries)
	}
	if st.PartialResults == 0 {
		t.Fatal("no partial results under 10% slow injection")
	}
	// Histogram quantiles sit at bucket midpoints (<= ~6% high for 8
	// sub-buckets), hence the tolerance.
	bound := cfg.FrontendOverheadNS + cfg.RootOverheadNS + cfg.LeafDeadlineNS + 4*cfg.NetworkHopNS
	if st.P99NS > bound*1.07 {
		t.Fatalf("P99 %.2f ms exceeds deadline-implied bound %.2f ms", st.P99NS/1e6, bound/1e6)
	}
	m := c.Metrics()
	if m.HedgesIssued == 0 {
		t.Fatal("slow injection issued no hedges")
	}
	if m.LeafTimeouts == 0 {
		t.Fatal("16x stragglers should overrun the deadline sometimes")
	}
}

// TestMetricsSnapshot sanity-checks the per-stage registry on a healthy
// cached load.
func TestMetricsSnapshot(t *testing.T) {
	c := testCluster(4096)
	RunLoad(c, 2, 100, 200, 1.1, 5)
	m := c.Metrics()
	if m.Queries != 200 || m.Queries != c.Queries {
		t.Fatalf("metrics queries = %d, cluster %d", m.Queries, c.Queries)
	}
	if m.CacheHits != c.CacheHits {
		t.Fatalf("metrics cache hits = %d, cluster %d", m.CacheHits, c.CacheHits)
	}
	if m.Frontend.Count != 200 {
		t.Fatalf("frontend count = %d", m.Frontend.Count)
	}
	if m.CacheProbe.Count != 200 { // every query probes the cache tier
		t.Fatalf("probe count = %d", m.CacheProbe.Count)
	}
	// Each non-cached query costs one attempt per leaf (no hedging here).
	wantAttempts := (m.Queries - m.CacheHits) * int64(c.cfg.Leaves)
	if m.LeafService.Count != wantAttempts {
		t.Fatalf("leaf-service count = %d, want %d", m.LeafService.Count, wantAttempts)
	}
	if m.Merge.Count != m.Queries-m.CacheHits {
		t.Fatalf("merge count = %d", m.Merge.Count)
	}
	if m.LeafService.P50NS <= 0 || m.LeafService.P99NS < m.LeafService.P50NS {
		t.Fatalf("leaf-service quantiles: %+v", m.LeafService)
	}
	if len(m.Stages()) != 4 {
		t.Fatal("expected 4 stages")
	}
	for _, s := range m.Stages() {
		if s.String() == "" {
			t.Fatal("empty stage string")
		}
	}
}

// TestFaultyExecutorDeterministic: outcomes depend only on (Seed, terms),
// never on call order, which is what keeps concurrent simulations
// reproducible.
func TestFaultyExecutorDeterministic(t *testing.T) {
	mk := func() *FaultyExecutor {
		return &FaultyExecutor{
			Inner:    &fixedExec{lat: 1e6, base: 7},
			SlowProb: 0.3, FailProb: 0.2, FlapProb: 0.1,
			Seed: 42,
		}
	}
	a, b := mk(), mk()
	// Drain a's stream in a different order than b's: results must match
	// per-terms regardless.
	terms := [][]uint32{{1}, {2}, {3}, {4}, {5}}
	type outcome struct {
		lat float64
		err bool
	}
	got := map[int]outcome{}
	for i, tm := range terms {
		_, _, lat, err := a.SearchErr(tm)
		got[i] = outcome{lat, err != nil}
	}
	for i := len(terms) - 1; i >= 0; i-- {
		_, _, lat, err := b.SearchErr(terms[i])
		if o := got[i]; o.lat != lat || o.err != (err != nil) {
			t.Fatalf("terms %v order-dependent: (%v,%v) vs (%v,%v)", terms[i], o.lat, o.err, lat, err != nil)
		}
	}
	// Faults actually fire at these probabilities over a modest stream.
	var fails int
	for i := 0; i < 200; i++ {
		if _, _, _, err := a.SearchErr([]uint32{uint32(i), uint32(i * 3)}); err != nil {
			fails++
		}
	}
	if fails == 0 || fails == 200 {
		t.Fatalf("degenerate fault stream: %d/200 failures", fails)
	}
}
