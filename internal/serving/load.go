package serving

import (
	"math"
	"sort"

	"searchmem/internal/stats"
)

// loadEngine is the event-driven core of RunLoad and RunScenario: client
// state lives in preallocated struct-of-arrays (~36 bytes per client, so a
// million modeled users fit in ~36 MB), and pending issue events sit in an
// indexed binary min-heap of client ids keyed by (next issue time, id).
// Pop and push are O(log n) against the old driver's O(n) linear min-scan,
// and the whole per-event path — pop, Zipf draw, term synthesis, histogram
// add, push — is allocation-free (//lint:hot kernels plus the ZeroAlloc
// oracle in alloc_test.go).
type loadEngine struct {
	next   []float64   // virtual time of each client's next issue event
	rng    []stats.RNG // per-client random stream (query popularity, think time)
	issued []int32     // queries issued so far per client
	heap   []int32     // binary min-heap of client ids, keyed by next[id]
	hn     int         // live heap size
	shape  *stats.ZipfShape
	vocab  uint32
	terms  [2]uint32 // scratch for the current query's term tuple
}

// newLoadEngine seeds per-client state exactly as the scan driver did:
// client cl's popularity stream is NewRNG(seed+cl*977).Split(), reproduced
// here through a stack RNG so construction allocates only the four arrays.
func newLoadEngine(clients, vocabSize int, skew float64, seed uint64) *loadEngine {
	e := &loadEngine{
		next:   make([]float64, clients),
		rng:    make([]stats.RNG, clients),
		issued: make([]int32, clients),
		heap:   make([]int32, clients),
		shape:  stats.NewZipfShape(uint64(vocabSize), skew),
		vocab:  uint32(vocabSize),
	}
	var seeder stats.RNG
	for cl := 0; cl < clients; cl++ {
		seeder.Seed(seed + uint64(cl)*977)
		e.rng[cl].Seed(seeder.Uint64())
		e.heap[cl] = int32(cl)
	}
	// All keys are zero and ids increase slot to slot, so the array is
	// already a valid min-heap under the (key, id) order.
	e.hn = clients
	return e
}

// less orders pending events by (issue time, client id). The id tie-break
// reproduces the scan driver's "first strictly smaller wins" rule — on
// equal times the lowest-indexed client goes first — so the heap pops the
// exact issue sequence the linear scan produced.
//
//lint:hot
func (e *loadEngine) less(a, b int32) bool {
	if e.next[a] != e.next[b] {
		return e.next[a] < e.next[b]
	}
	return a < b
}

// siftDown restores the heap property below slot i.
//
//lint:hot
func (e *loadEngine) siftDown(i int) {
	id := e.heap[i]
	for {
		l := 2*i + 1
		if l >= e.hn {
			break
		}
		if r := l + 1; r < e.hn && e.less(e.heap[r], e.heap[l]) {
			l = r
		}
		if !e.less(e.heap[l], id) {
			break
		}
		e.heap[i] = e.heap[l]
		i = l
	}
	e.heap[i] = id
}

// popMin removes and returns the client with the earliest pending event.
//
//lint:hot
func (e *loadEngine) popMin() int32 {
	top := e.heap[0]
	e.hn--
	if e.hn > 0 {
		e.heap[0] = e.heap[e.hn]
		e.siftDown(0)
	}
	return top
}

// push re-enqueues a client after its next-event time changed.
//
//lint:hot
func (e *loadEngine) push(id int32) {
	i := e.hn
	e.hn++
	for i > 0 {
		p := (i - 1) / 2
		if !e.less(id, e.heap[p]) {
			break
		}
		e.heap[i] = e.heap[p]
		i = p
	}
	e.heap[i] = id
}

// heapify rebuilds the heap over all clients in O(n) after their keys
// changed wholesale (open-loop first arrivals).
func (e *loadEngine) heapify() {
	for i := range e.heap {
		e.heap[i] = int32(i)
	}
	e.hn = len(e.heap)
	for i := e.hn/2 - 1; i >= 0; i-- {
		e.siftDown(i)
	}
}

// drawTerms synthesizes the client's next query: a Zipf-popular query id
// expanded into the same two-term tuple the scan driver used.
//
//lint:hot
func (e *loadEngine) drawTerms(cl int32) []uint32 {
	qid := e.shape.Next(&e.rng[cl])
	e.terms[0] = uint32(qid)
	e.terms[1] = uint32(qid>>3) % e.vocab
	return e.terms[:]
}

// RunLoad drives the cluster with a closed-loop load of clients issuing
// queries drawn Zipf-popular from vocabSize (popular queries repeat, which
// is what makes the cache tier effective). The closed loop runs in virtual
// time: every client always has exactly one query in flight (zero think
// time), so queries are issued one at a time in virtual-completion order
// and the cluster is told the standing occupancy is `clients`. The query
// interleaving — and with it every executor's service-jitter RNG draw
// sequence — is therefore a pure function of the seed, never of goroutine
// scheduling, for any client count (DESIGN.md §8).
//
// Since PR 10 the driver is the event-heap engine (DESIGN.md §16): results
// are bit-identical to the original linear-scan driver, retained as
// RunLoadScan and pinned equal by TestRunLoadMatchesScanEngine, at
// O(log n) instead of O(n) per issued query.
func RunLoad(c *Cluster, clients, queriesPerClient, vocabSize int, skew float64, seed uint64) LoadStats {
	if clients <= 0 || queriesPerClient <= 0 || vocabSize <= 0 {
		panic("serving: load parameters must be positive")
	}
	fs := RunScenario(c, Scenario{
		Clients:          clients,
		QueriesPerClient: queriesPerClient,
		VocabSize:        vocabSize,
		Skew:             skew,
		Seed:             seed,
	})
	return fs.LoadStats
}

// RunLoadScan is the pre-PR-10 reference driver: a per-query O(clients)
// linear min-scan over client completion times, issuing through the
// concurrent Serve path. It is retained as the equivalence baseline for
// the event-heap engine (TestRunLoadMatchesScanEngine pins RunLoad ==
// RunLoadScan bit-exactly) and as the benchmark's before side; new code
// should call RunLoad.
func RunLoadScan(c *Cluster, clients, queriesPerClient, vocabSize int, skew float64, seed uint64) LoadStats {
	if clients <= 0 || queriesPerClient <= 0 || vocabSize <= 0 {
		panic("serving: load parameters must be positive")
	}
	hist := stats.NewHistogram(8)
	var partials int64
	type client struct {
		qsel   *stats.Zipf
		nextNS float64 // virtual time at which the client's next query issues
		issued int
	}
	cls := make([]client, clients)
	for cl := range cls {
		rng := stats.NewRNG(seed + uint64(cl)*977)
		// Query popularity: a Zipf over "canned" query ids expanded
		// into term tuples, modeling repeated popular queries.
		cls[cl].qsel = stats.NewZipf(rng.Split(), uint64(vocabSize), skew)
	}
	// Serve charges congestion from the live in-flight count; park the
	// other clients' standing queries there so each sequential call sees
	// the full closed-loop occupancy.
	c.mu.Lock()
	c.inflight = int64(clients) - 1
	c.mu.Unlock()
	for done := 0; done < clients*queriesPerClient; done++ {
		cl := -1
		for i := range cls {
			if cls[i].issued >= queriesPerClient {
				continue
			}
			if cl < 0 || cls[i].nextNS < cls[cl].nextNS {
				cl = i
			}
		}
		qid := cls[cl].qsel.Next()
		terms := []uint32{uint32(qid), uint32(qid>>3) % uint32(vocabSize)}
		r := c.Serve(Query{Terms: terms})
		hist.Add(r.LatencyNS)
		if r.Partial {
			partials++
		}
		cls[cl].nextNS += r.LatencyNS
		cls[cl].issued++
	}
	c.mu.Lock()
	c.inflight = 0
	c.mu.Unlock()

	mean := hist.Mean()
	st := LoadStats{
		Queries:        c.Queries,
		CacheHits:      c.CacheHits,
		PartialResults: partials,
		MeanLatencyNS:  mean,
		P50NS:          hist.Quantile(0.50),
		P95NS:          hist.Quantile(0.95),
		P99NS:          hist.Quantile(0.99),
	}
	if mean > 0 {
		st.QPS = float64(clients) / (mean * 1e-9)
	}
	return st
}

// Burst multiplies a RateCurve's arrival rate by Factor inside
// [StartNS, EndNS) — a flash crowd.
type Burst struct {
	StartNS, EndNS float64
	Factor         float64
}

// RateCurve is a time-varying arrival-rate model for open-loop scenarios:
// a base rate modulated by a sinusoidal diurnal cycle and stacked
// multiplicative burst windows.
type RateCurve struct {
	// BaseQPS is the mean offered load in queries per virtual second.
	BaseQPS float64
	// DiurnalAmplitude in [0, 1) scales a sine modulation with period
	// DiurnalPeriodNS: rate(t) = BaseQPS * (1 + A*sin(2πt/T)). Zero
	// amplitude or period disables it.
	DiurnalAmplitude float64
	DiurnalPeriodNS  float64
	// Bursts are flash-crowd windows; overlapping windows stack
	// multiplicatively.
	Bursts []Burst
}

// At returns the offered rate in queries per second at virtual time t.
func (rc *RateCurve) At(tNS float64) float64 {
	r := rc.BaseQPS
	if rc.DiurnalAmplitude != 0 && rc.DiurnalPeriodNS > 0 {
		r *= 1 + rc.DiurnalAmplitude*math.Sin(2*math.Pi*tNS/rc.DiurnalPeriodNS)
	}
	for i := range rc.Bursts {
		b := &rc.Bursts[i]
		if tNS >= b.StartNS && tNS < b.EndNS {
			r *= b.Factor
		}
	}
	if r < 1e-6 {
		r = 1e-6 // rate floor keeps interarrival draws finite
	}
	return r
}

// FleetEvent is one scheduled operational event on a scenario timeline.
type FleetEvent struct {
	// AtNS is the virtual time at which the event fires (applied before
	// the first query issued at or after it).
	AtNS float64
	// FlushCache empties the cache tier — a shard reload / cold restart.
	FlushCache bool
	// OutageLeaves > 0 marks leaves [OutageLeaf, OutageLeaf+OutageLeaves)
	// administratively down for OutageDurationNS — a correlated failure
	// such as a rack or a whole parent going dark. Executors must support
	// outage injection (OutageExecutor, e.g. FaultyExecutor); others are
	// skipped silently.
	OutageLeaf, OutageLeaves int
	OutageDurationNS         float64
}

// Scenario describes one fleet load run for RunScenario.
type Scenario struct {
	// Clients is the modeled user population.
	Clients int
	// QueriesPerClient bounds each client's issue budget. Closed loop
	// (Arrival == nil) requires it > 0; open loop treats 0 as unlimited,
	// with the horizon as the only bound.
	QueriesPerClient int
	// VocabSize and Skew shape query popularity (Zipf), as in RunLoad.
	VocabSize int
	Skew      float64
	// Seed makes the run reproducible; same-cluster-state same-scenario
	// runs are byte-identical.
	Seed uint64
	// Arrival switches the loop open: clients issue by a Poisson process
	// following the rate curve (per-client exponential interarrivals with
	// mean clients/rate(t)), decoupled from completions, and the
	// congestion model is fed the live in-flight count. nil keeps the
	// closed loop, bit-identical to RunLoad.
	Arrival *RateCurve
	// DurationNS is the open-loop horizon in virtual time (required with
	// Arrival): no queries issue at or after it.
	DurationNS float64
	// Events is the operational timeline (cache flushes, outage windows).
	Events []FleetEvent
}

// FleetStats extends LoadStats with fleet-scenario accounting.
type FleetStats struct {
	LoadStats
	// Served counts the queries this run issued (LoadStats.Queries is the
	// cluster's cumulative counter, which may span earlier runs).
	Served int64
	// EventsProcessed counts engine events: query issues, open-loop
	// completion pops, and timeline actions.
	EventsProcessed int64
	// DurationNS is the virtual time spanned by the run (latest query
	// completion).
	DurationNS float64
	// PeakInflight is the maximum concurrent occupancy the congestion
	// model saw (always Clients for closed loops).
	PeakInflight int64
	// OfferedQPS is the configured mean arrival rate (0 for closed loops,
	// where load is completion-driven).
	OfferedQPS float64
}

// action is one expanded timeline step; an outage window becomes a down
// action and an up action.
type action struct {
	at          float64
	kind        uint8
	leaf, count int
}

// Same-instant ordering: flushes first, then recoveries, then outages —
// so a window starting exactly when another ends leaves the leaves down.
const (
	actFlush = iota
	actUp
	actDown
)

// buildTimeline expands and deterministically orders the scenario events.
func buildTimeline(events []FleetEvent) []action {
	var acts []action
	for _, ev := range events {
		if ev.FlushCache {
			acts = append(acts, action{at: ev.AtNS, kind: actFlush})
		}
		if ev.OutageLeaves > 0 {
			acts = append(acts, action{at: ev.AtNS, kind: actDown, leaf: ev.OutageLeaf, count: ev.OutageLeaves})
			acts = append(acts, action{at: ev.AtNS + ev.OutageDurationNS, kind: actUp, leaf: ev.OutageLeaf, count: ev.OutageLeaves})
		}
	}
	sort.Slice(acts, func(i, j int) bool {
		if acts[i].at != acts[j].at {
			return acts[i].at < acts[j].at
		}
		if acts[i].kind != acts[j].kind {
			return acts[i].kind < acts[j].kind
		}
		return acts[i].leaf < acts[j].leaf
	})
	return acts
}

// applyAction executes one timeline step against the cluster.
func (c *Cluster) applyAction(a action) {
	switch a.kind {
	case actFlush:
		c.FlushCache()
	case actDown, actUp:
		for i := 0; i < a.count; i++ {
			c.SetLeafDown(a.leaf+i, a.kind == actDown)
		}
	}
}

// compPush and compPop maintain a plain min-heap of completion times: the
// open-loop engine's view of which issued queries are still in flight.
func compPush(h *[]float64, v float64) {
	*h = append(*h, v)
	a := *h
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if a[p] <= a[i] {
			break
		}
		a[p], a[i] = a[i], a[p]
		i = p
	}
}

func compPop(h *[]float64) {
	a := *h
	n := len(a) - 1
	a[0] = a[n]
	*h = a[:n]
	a = a[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		if r := l + 1; r < n && a[r] < a[l] {
			l = r
		}
		if a[l] >= a[i] {
			break
		}
		a[i], a[l] = a[l], a[i]
		i = l
	}
}

// RunScenario drives the cluster through one fleet scenario on the
// event-driven engine. Closed-loop scenarios (Arrival == nil) issue queries
// in exactly the order RunLoad always has; open-loop scenarios issue by the
// rate curve with congestion fed by the live in-flight count, so offered
// load beyond capacity visibly inflates the tail. The run is
// single-threaded in virtual time: results are a pure function of (cluster
// state, scenario), independent of GOMAXPROCS and scheduling (DESIGN.md
// §16).
func RunScenario(c *Cluster, sc Scenario) FleetStats {
	if sc.Clients <= 0 || sc.VocabSize <= 0 || sc.Skew <= 0 {
		panic("serving: scenario requires positive clients, vocab size, and skew")
	}
	open := sc.Arrival != nil
	if open {
		if sc.DurationNS <= 0 || sc.Arrival.BaseQPS <= 0 {
			panic("serving: open-loop scenario requires a positive horizon and base rate")
		}
	} else if sc.QueriesPerClient <= 0 {
		panic("serving: closed-loop scenario requires QueriesPerClient > 0")
	}

	c.driveMu.Lock()
	defer c.driveMu.Unlock()
	c.ensureScratch()

	e := newLoadEngine(sc.Clients, sc.VocabSize, sc.Skew, sc.Seed)
	acts := buildTimeline(sc.Events)
	hist := stats.NewHistogram(8)
	var partials, events, served, peak int64
	var lastNS float64
	inflight := 0
	var comp []float64

	if open {
		// Stagger first arrivals by the t=0 rate; each draw comes from the
		// owning client's stream, ahead of its popularity draws.
		r0 := sc.Arrival.At(0)
		for cl := range e.next {
			e.next[cl] = e.rng[cl].Exponential(float64(sc.Clients) / r0 * 1e9)
		}
		e.heapify()
		// Sized for the under-capacity steady state; overload grows it.
		comp = make([]float64, 0, sc.Clients)
	} else {
		// Closed loop: park the other clients' standing queries in the
		// congestion signal, as RunLoad always did.
		c.mu.Lock()
		c.inflight = int64(sc.Clients) - 1
		c.mu.Unlock()
		peak = int64(sc.Clients)
	}

	ai := 0
	for e.hn > 0 {
		cl := e.popMin()
		t := e.next[cl]
		if open && t >= sc.DurationNS {
			break // heap order: every remaining arrival is at or past the horizon
		}
		for ai < len(acts) && acts[ai].at <= t {
			c.applyAction(acts[ai])
			ai++
			events++
		}
		if open {
			for len(comp) > 0 && comp[0] <= t {
				compPop(&comp)
				inflight--
				events++
			}
			c.mu.Lock()
			c.inflight = int64(inflight)
			c.mu.Unlock()
		}
		r := c.serveSerial(e.drawTerms(cl))
		events++
		served++
		hist.Add(r.LatencyNS)
		if r.Partial {
			partials++
		}
		if t+r.LatencyNS > lastNS {
			lastNS = t + r.LatencyNS
		}
		e.issued[cl]++
		if open {
			compPush(&comp, t+r.LatencyNS)
			inflight++
			if int64(inflight) > peak {
				peak = int64(inflight)
			}
			e.next[cl] = t + e.rng[cl].Exponential(float64(sc.Clients)/sc.Arrival.At(t)*1e9)
		} else {
			e.next[cl] = t + r.LatencyNS
		}
		if sc.QueriesPerClient <= 0 || int(e.issued[cl]) < sc.QueriesPerClient {
			e.push(cl)
		}
	}

	c.mu.Lock()
	queries, hits := c.Queries, c.CacheHits
	c.inflight = 0
	c.mu.Unlock()

	mean := hist.Mean()
	fs := FleetStats{
		LoadStats: LoadStats{
			Queries:        queries,
			CacheHits:      hits,
			PartialResults: partials,
			MeanLatencyNS:  mean,
			P50NS:          hist.Quantile(0.50),
			P95NS:          hist.Quantile(0.95),
			P99NS:          hist.Quantile(0.99),
		},
		Served:          served,
		EventsProcessed: events,
		DurationNS:      lastNS,
		PeakInflight:    peak,
	}
	if open {
		fs.OfferedQPS = sc.Arrival.BaseQPS
		if lastNS > 0 {
			fs.QPS = float64(served) / (lastNS * 1e-9)
		}
	} else if mean > 0 {
		fs.QPS = float64(sc.Clients) / (mean * 1e-9)
	}
	return fs
}
