package serving

import (
	"reflect"
	"strconv"
	"testing"

	"searchmem/internal/obs"
)

// tracedCluster wires a small faulty cluster with tracing and a shared
// registry, sized so deadlines and hedges actually fire.
func tracedCluster(tracer *obs.Tracer, reg *obs.Registry) *Cluster {
	cfg := DefaultConfig()
	cfg.Leaves, cfg.Fanout = 8, 4
	cfg.LeafDeadlineNS = 8e6
	cfg.HedgeDelayNS = 3e6
	cfg.Name = "traced"
	cfg.Tracer = tracer
	cfg.Registry = reg
	execs := make([]Executor, cfg.Leaves)
	for i := range execs {
		execs[i] = &FaultyExecutor{
			Inner:      NewSyntheticExecutor(uint32(i), cfg.TopK),
			SlowProb:   0.2,
			SlowFactor: 6,
			FailProb:   0.1,
			Seed:       uint64(i) * 7919,
		}
	}
	return NewCluster(cfg, execs)
}

func serveTracedQueries(t *testing.T) ([]obs.Trace, []Result) {
	t.Helper()
	tracer := obs.NewTracer()
	c := tracedCluster(tracer, obs.NewRegistry())
	var results []Result
	for q := 0; q < 6; q++ {
		terms := []uint32{uint32(q) * 17, uint32(q)*31 + 2}
		results = append(results, c.Serve(Query{Terms: terms}))
	}
	// Re-serve the first query: it was cached (unless partial), so the
	// trace set also covers the cache-hit path.
	results = append(results, c.Serve(Query{Terms: []uint32{0, 2}}))
	return tracer.Traces(), results
}

func TestServeTraceMatchesLatencyModel(t *testing.T) {
	traces, results := serveTracedQueries(t)
	if len(traces) != len(results) {
		t.Fatalf("%d traces for %d queries", len(traces), len(results))
	}
	sawHedge, sawCacheHit := false, false
	for i, tr := range traces {
		if tr.Name != "query" || len(tr.Spans) == 0 {
			t.Fatalf("trace %d malformed: %+v", i, tr)
		}
		root := tr.Spans[0]
		if root.Parent != 0 || root.Name != "query" {
			t.Fatalf("trace %d: first span is %q (parent %d), want root query", i, root.Name, root.Parent)
		}
		// The root span covers the query's exact modeled latency.
		if root.StartNS != 0 || root.EndNS != results[i].LatencyNS {
			t.Errorf("trace %d: root span [%g, %g], result latency %g",
				i, root.StartNS, root.EndNS, results[i].LatencyNS)
		}
		if got := root.Attr("partial"); got != strconv.FormatBool(results[i].Partial) {
			t.Errorf("trace %d: partial attr %q, result %v", i, got, results[i].Partial)
		}
		if results[i].FromCache {
			sawCacheHit = true
			if root.Attr("from_cache") != "true" || len(tr.Spans) != 3 {
				t.Errorf("trace %d: cache hit trace has %d spans: %+v", i, len(tr.Spans), tr.Spans)
			}
			continue
		}
		// Full traversal: every span nests inside its parent's window and
		// parent links point at already-created spans.
		byID := map[uint64]obs.Span{}
		leaves, hedges := 0, 0
		for _, sp := range tr.Spans {
			byID[sp.ID] = sp
			if sp.Parent != 0 {
				p, ok := byID[sp.Parent]
				if !ok {
					t.Fatalf("trace %d: span %q references unseen parent %d", i, sp.Name, sp.Parent)
				}
				if sp.StartNS < p.StartNS {
					t.Errorf("trace %d: span %q starts before parent %q", i, sp.Name, p.Name)
				}
			}
			switch {
			case len(sp.Name) > 5 && sp.Name[:5] == "leaf[" && sp.Name[len(sp.Name)-8:] == "/primary":
				leaves++
			case len(sp.Name) > 5 && sp.Name[:5] == "leaf[" && sp.Name[len(sp.Name)-6:] == "/hedge":
				hedges++
				sawHedge = true
			}
		}
		if leaves != 8 {
			t.Errorf("trace %d: %d primary leaf spans, want 8", i, leaves)
		}
		_ = hedges
	}
	if !sawHedge {
		t.Error("no hedge spans across traced queries; fault injection should trigger hedging")
	}
	if !sawCacheHit {
		t.Error("no cache-hit trace recorded")
	}
}

func TestServeTraceDeterministic(t *testing.T) {
	a, _ := serveTracedQueries(t)
	b, _ := serveTracedQueries(t)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same-seed single-driver runs produced different traces")
	}
}

func TestServeUntracedRecordsNothing(t *testing.T) {
	c := tracedCluster(nil, nil)
	c.Serve(Query{Terms: []uint32{1, 2}})
	// Config.Tracer was nil: tracing is fully disabled, and the private
	// registry still captures metrics.
	if got := c.Metrics().Queries; got != 1 {
		t.Fatalf("metrics queries = %d, want 1", got)
	}
}

func TestSharedRegistryLabelsClusters(t *testing.T) {
	reg := obs.NewRegistry()
	c1 := tracedCluster(nil, reg)
	cfg := DefaultConfig()
	cfg.Name = "other"
	cfg.Registry = reg
	c2 := NewCluster(cfg, nil)
	c1.Serve(Query{Terms: []uint32{1}})
	c2.Serve(Query{Terms: []uint32{1}})
	c2.Serve(Query{Terms: []uint32{2}})

	snap := reg.Snapshot()
	byCluster := map[string]int64{}
	for _, cs := range snap.Counters {
		if cs.Name != "serving_queries_total" {
			continue
		}
		for _, l := range cs.Labels {
			if l.Key == "cluster" {
				byCluster[l.Value] = cs.Value
			}
		}
	}
	if byCluster["traced"] != 1 || byCluster["other"] != 2 {
		t.Fatalf("per-cluster query counters = %v, want traced=1 other=2", byCluster)
	}
}
