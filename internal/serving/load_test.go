package serving

import (
	"math"
	"testing"

	"searchmem/internal/stats"
)

// healthyFaultFree builds a cluster whose leaves support outage injection
// (FaultyExecutor) but inject no random faults, so scenario tests can
// attribute every partial result to the timeline.
func healthyFaultFree(cfg Config, n int, seed uint64) *Cluster {
	execs := make([]Executor, n)
	for i := range execs {
		execs[i] = &FaultyExecutor{
			Inner: NewSyntheticExecutor(uint32(i), cfg.TopK),
			Seed:  seed + uint64(i)*7919,
		}
	}
	cfg.Leaves = n
	return NewCluster(cfg, execs)
}

// TestRunLoadMatchesScanEngine is the event-heap engine's acceptance test:
// RunLoad (heap + serial serve path) must be bit-exact with RunLoadScan
// (linear min-scan + concurrent Serve) — same LoadStats and the same
// Metrics snapshot, per config, per client count.
func TestRunLoadMatchesScanEngine(t *testing.T) {
	hedged := DefaultConfig()
	hedged.LeafDeadlineNS = 8e6
	hedged.HedgeDelayNS = 4e6
	cases := []struct {
		name string
		mk   func() *Cluster
	}{
		{"healthy-cached", func() *Cluster { return testCluster(4096) }},
		{"faulty-hedged", func() *Cluster { return faultyCluster(hedged, 12, 7) }},
	}
	clientCounts := []int{1, 8, 97}
	if !testing.Short() && !raceDetectorOn {
		clientCounts = append(clientCounts, 10000)
	}
	for _, cc := range cases {
		for _, clients := range clientCounts {
			qpc := 50
			switch {
			case clients >= 10000:
				qpc = 2
			case clients >= 97:
				qpc = 4
			}
			ca := cc.mk()
			a := RunLoad(ca, clients, qpc, 400, 1.1, 9)
			cb := cc.mk()
			b := RunLoadScan(cb, clients, qpc, 400, 1.1, 9)
			if a != b {
				t.Fatalf("%s clients=%d: heap engine %+v != scan engine %+v", cc.name, clients, a, b)
			}
			if ma, mb := ca.Metrics(), cb.Metrics(); ma != mb {
				t.Fatalf("%s clients=%d: heap metrics %+v != scan metrics %+v", cc.name, clients, ma, mb)
			}
		}
	}
}

// TestServeSerialMatchesServe pins the pooled serial serve path against the
// concurrent Serve query by query: same docs, scores, latency, and flags
// for the same cluster state, including cache hits, hedges, and dedup.
func TestServeSerialMatchesServe(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheSlots = 64
	cfg.LeafDeadlineNS = 8e6
	cfg.HedgeDelayNS = 4e6
	cfg.LeafCapacity = 32
	ca := faultyCluster(cfg, 12, 3)
	cb := faultyCluster(cfg, 12, 3)
	cb.driveMu.Lock()
	defer cb.driveMu.Unlock()
	cb.ensureScratch()

	rng := stats.NewRNG(41)
	zipf := stats.NewZipf(rng.Split(), 300, 1.1)
	for q := 0; q < 400; q++ {
		qid := zipf.Next()
		terms := []uint32{uint32(qid), uint32(qid>>3) % 300}
		ra := ca.Serve(Query{Terms: terms})
		rb := cb.serveSerial(terms)
		if ra.LatencyNS != rb.LatencyNS || ra.Partial != rb.Partial ||
			ra.FromCache != rb.FromCache || ra.LeavesAnswered != rb.LeavesAnswered {
			t.Fatalf("query %d: Serve %+v != serveSerial %+v", q, ra, rb)
		}
		if len(ra.Docs) != len(rb.Docs) {
			t.Fatalf("query %d: result sizes %d != %d", q, len(ra.Docs), len(rb.Docs))
		}
		for i := range ra.Docs {
			if ra.Docs[i] != rb.Docs[i] || ra.Scores[i] != rb.Scores[i] {
				t.Fatalf("query %d result %d: (%d,%v) != (%d,%v)",
					q, i, ra.Docs[i], ra.Scores[i], rb.Docs[i], rb.Scores[i])
			}
		}
	}
	if ma, mb := ca.Metrics(), cb.Metrics(); ma != mb {
		t.Fatalf("metrics diverged: %+v != %+v", ma, mb)
	}
}

// TestRunLoadDeterministicAtScale re-runs the determinism pin at a client
// count where the old scan driver would be quadratic: two fresh runs at 10k
// clients must produce identical stats.
func TestRunLoadDeterministicAtScale(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LeafDeadlineNS = 8e6
	cfg.HedgeDelayNS = 4e6
	a := RunLoad(faultyCluster(cfg, 12, 3), 10000, 2, 400, 1.1, 9)
	b := RunLoad(faultyCluster(cfg, 12, 3), 10000, 2, 400, 1.1, 9)
	if a != b {
		t.Fatalf("10k-client runs diverged:\n%+v\n%+v", a, b)
	}
	if a.Queries != 20000 {
		t.Fatalf("Queries = %d, want 20000", a.Queries)
	}
}

// TestClosedLoopScenarioMatchesRunLoad guards the wrapper: a closed-loop
// Scenario is RunLoad.
func TestClosedLoopScenarioMatchesRunLoad(t *testing.T) {
	a := RunLoad(testCluster(256), 16, 30, 200, 1.1, 5)
	fs := RunScenario(testCluster(256), Scenario{
		Clients: 16, QueriesPerClient: 30, VocabSize: 200, Skew: 1.1, Seed: 5,
	})
	if a != fs.LoadStats {
		t.Fatalf("RunLoad %+v != closed-loop RunScenario %+v", a, fs.LoadStats)
	}
	if fs.Served != 480 || fs.PeakInflight != 16 || fs.OfferedQPS != 0 {
		t.Fatalf("closed-loop fleet accounting wrong: %+v", fs)
	}
}

// TestScenarioDeterministic runs the full open-loop mix — diurnal curve,
// flash-crowd burst, cache flush, correlated outage — twice on fresh
// clusters and requires byte-identical FleetStats and Metrics.
func TestScenarioDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheSlots = 512
	cfg.LeafDeadlineNS = 8e6
	cfg.HedgeDelayNS = 4e6
	cfg.LeafCapacity = 64
	sc := Scenario{
		Clients:   500,
		VocabSize: 400,
		Skew:      1.1,
		Seed:      17,
		Arrival: &RateCurve{
			BaseQPS:          2000,
			DiurnalAmplitude: 0.5,
			DiurnalPeriodNS:  4e8,
			Bursts:           []Burst{{StartNS: 1e8, EndNS: 1.5e8, Factor: 3}},
		},
		DurationNS: 5e8,
		Events: []FleetEvent{
			{AtNS: 2e8, FlushCache: true},
			{AtNS: 3e8, OutageLeaf: 0, OutageLeaves: 4, OutageDurationNS: 5e7},
		},
	}
	ca := faultyCluster(cfg, 12, 3)
	a := RunScenario(ca, sc)
	cb := faultyCluster(cfg, 12, 3)
	b := RunScenario(cb, sc)
	if a != b {
		t.Fatalf("scenario runs diverged:\n%+v\n%+v", a, b)
	}
	if ma, mb := ca.Metrics(), cb.Metrics(); ma != mb {
		t.Fatalf("scenario metrics diverged:\n%+v\n%+v", ma, mb)
	}
	if a.Served == 0 || a.EventsProcessed <= a.Served || a.DurationNS <= 0 {
		t.Fatalf("implausible fleet accounting: %+v", a)
	}
}

// TestRateCurveAt checks the arrival-rate model point by point: diurnal
// peak and trough, multiplicative burst stacking, and the rate floor.
func TestRateCurveAt(t *testing.T) {
	rc := &RateCurve{BaseQPS: 1000, DiurnalAmplitude: 0.4, DiurnalPeriodNS: 4e9}
	if got := rc.At(0); math.Abs(got-1000) > 1e-9 {
		t.Fatalf("At(0) = %v, want 1000", got)
	}
	if got := rc.At(1e9); math.Abs(got-1400) > 1e-6 { // sin peak at T/4
		t.Fatalf("At(T/4) = %v, want 1400", got)
	}
	if got := rc.At(3e9); math.Abs(got-600) > 1e-6 { // trough at 3T/4
		t.Fatalf("At(3T/4) = %v, want 600", got)
	}
	rc.Bursts = []Burst{
		{StartNS: 0.9e9, EndNS: 1.1e9, Factor: 2},
		{StartNS: 1e9, EndNS: 1.2e9, Factor: 3},
	}
	if got := rc.At(1e9); math.Abs(got-1400*6) > 1e-5 {
		t.Fatalf("stacked bursts At(T/4) = %v, want %v", got, 1400*6.0)
	}
	single := 1000 * (1 + 0.4*math.Sin(2*math.Pi*0.95e9/4e9)) * 2
	if got := rc.At(0.95e9); math.Abs(got-single) > 1e-6 {
		t.Fatalf("single burst At = %v, want %v", got, single)
	}
	floor := &RateCurve{BaseQPS: 1, DiurnalAmplitude: 0.99999999, DiurnalPeriodNS: 4e9}
	if got := floor.At(3e9); got < 1e-6 {
		t.Fatalf("rate floor violated: %v", got)
	}
}

// TestOpenLoopOverloadInflatesTail drives the same cluster shape at an
// offered load far beyond leaf capacity and checks that the open loop lets
// queueing feedback through: higher peak occupancy and a worse tail than
// the uncongested run.
func TestOpenLoopOverloadInflatesTail(t *testing.T) {
	mk := func(qps float64) FleetStats {
		cfg := DefaultConfig()
		cfg.CacheSlots = 0 // every query does leaf work
		cfg.LeafCapacity = 40
		return RunScenario(NewCluster(cfg, nil), Scenario{
			Clients:    300,
			VocabSize:  400,
			Skew:       1.1,
			Seed:       11,
			Arrival:    &RateCurve{BaseQPS: qps},
			DurationNS: 3e8,
		})
	}
	calm := mk(200)
	hot := mk(8000)
	if hot.PeakInflight <= calm.PeakInflight || hot.PeakInflight < 5 {
		t.Fatalf("overload PeakInflight %d not above calm %d", hot.PeakInflight, calm.PeakInflight)
	}
	if hot.P99NS <= calm.P99NS {
		t.Fatalf("overload P99 %.0f not above calm %.0f", hot.P99NS, calm.P99NS)
	}
	if calm.OfferedQPS != 200 || hot.OfferedQPS != 8000 {
		t.Fatalf("OfferedQPS not recorded: %v / %v", calm.OfferedQPS, hot.OfferedQPS)
	}
}

// TestFlushCacheColdRestart checks both the direct API and the scenario
// event: a flush makes a previously cached query miss, and a flush-heavy
// timeline serves fewer cache hits than the same run without it.
func TestFlushCacheColdRestart(t *testing.T) {
	c := testCluster(256)
	terms := []uint32{1, 2}
	c.Serve(Query{Terms: terms})
	if r := c.Serve(Query{Terms: terms}); !r.FromCache {
		t.Fatal("second serve should hit the cache")
	}
	c.FlushCache()
	if r := c.Serve(Query{Terms: terms}); r.FromCache {
		t.Fatal("serve after FlushCache should miss")
	}

	sc := Scenario{Clients: 50, QueriesPerClient: 40, VocabSize: 100, Skew: 1.2, Seed: 23}
	warm := RunScenario(testCluster(1024), sc)
	sc.Events = []FleetEvent{
		{AtNS: 1e7, FlushCache: true},
		{AtNS: 2e7, FlushCache: true},
		{AtNS: 3e7, FlushCache: true},
	}
	cold := RunScenario(testCluster(1024), sc)
	if cold.CacheHits >= warm.CacheHits {
		t.Fatalf("flush timeline should reduce hits: cold %d >= warm %d", cold.CacheHits, warm.CacheHits)
	}
}

// TestOutageWindowDegrades checks correlated leaf failure: with hedging off
// and no random faults, partial results appear exactly because of the
// outage window, and service recovers after it.
func TestOutageWindowDegrades(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheSlots = 0
	sc := Scenario{Clients: 20, QueriesPerClient: 50, VocabSize: 200, Skew: 1.1, Seed: 7}
	clean := RunScenario(healthyFaultFree(cfg, 12, 1), sc)
	if clean.PartialResults != 0 {
		t.Fatalf("fault-free run produced %d partials", clean.PartialResults)
	}
	sc.Events = []FleetEvent{{AtNS: 2e7, OutageLeaf: 0, OutageLeaves: 6, OutageDurationNS: 4e7}}
	hit := RunScenario(healthyFaultFree(cfg, 12, 1), sc)
	if hit.PartialResults == 0 {
		t.Fatal("outage window produced no partial results")
	}
	if hit.PartialResults >= hit.Served {
		t.Fatalf("no recovery after outage: %d partials of %d served", hit.PartialResults, hit.Served)
	}
}

// TestSetLeafDown covers the administrative hook's edges: only
// outage-capable executors accept it, out-of-range leaves are rejected.
func TestSetLeafDown(t *testing.T) {
	c := healthyFaultFree(DefaultConfig(), 12, 1)
	if !c.SetLeafDown(0, true) || !c.SetLeafDown(11, true) {
		t.Fatal("outage-capable leaf rejected SetLeafDown")
	}
	if c.SetLeafDown(-1, true) || c.SetLeafDown(12, true) {
		t.Fatal("out-of-range leaf accepted SetLeafDown")
	}
	plain := testCluster(0)
	if plain.SetLeafDown(0, true) {
		t.Fatal("plain synthetic leaf accepted SetLeafDown")
	}
}

// TestBufferedExecutorMatchesSearch pins SearchBuf against Search /
// SearchErr call by call on both executor types: identical results,
// latencies (internal jitter RNG advancing in lockstep), and errors.
func TestBufferedExecutorMatchesSearch(t *testing.T) {
	mkSyn := func() *SyntheticExecutor {
		e := NewSyntheticExecutor(3, 10)
		e.BaseLatencyNS = 1e6
		e.PerTermNS = 1e5
		return e
	}
	a, b := mkSyn(), mkSyn()
	docs := make([]uint32, 10)
	scores := make([]float32, 10)
	for q := 0; q < 200; q++ {
		terms := []uint32{uint32(q * 31), uint32(q), uint32(q % 7)}
		d, s, lat := a.Search(terms)
		n, blat, err := b.SearchBuf(terms, docs, scores)
		if err != nil || n != len(d) || lat != blat {
			t.Fatalf("query %d: SearchBuf (n=%d lat=%v err=%v) != Search (n=%d lat=%v)", q, n, blat, err, len(d), lat)
		}
		for i := range d {
			if d[i] != docs[i] || s[i] != scores[i] {
				t.Fatalf("query %d result %d: (%d,%v) != (%d,%v)", q, i, docs[i], scores[i], d[i], s[i])
			}
		}
	}

	mkFaulty := func() *FaultyExecutor {
		return &FaultyExecutor{
			Inner:    mkSyn(),
			SlowProb: 0.2, SlowFactor: 8,
			FailProb: 0.1,
			FlapProb: 0.1,
			Seed:     99,
		}
	}
	fa, fb := mkFaulty(), mkFaulty()
	var failures int
	for q := 0; q < 300; q++ {
		terms := []uint32{uint32(q * 131), uint32(q)}
		d, s, lat, errA := fa.SearchErr(terms)
		n, blat, errB := fb.SearchBuf(terms, docs, scores)
		if (errA == nil) != (errB == nil) || lat != blat {
			t.Fatalf("query %d: SearchBuf (lat=%v err=%v) != SearchErr (lat=%v err=%v)", q, blat, errB, lat, errA)
		}
		if errA != nil {
			failures++
			continue
		}
		if n != len(d) {
			t.Fatalf("query %d: n=%d want %d", q, n, len(d))
		}
		for i := range d {
			if d[i] != docs[i] || s[i] != scores[i] {
				t.Fatalf("query %d result %d mismatch", q, i)
			}
		}
	}
	if failures == 0 {
		t.Fatal("fault injection never fired; test not covering error paths")
	}

	// An administratively down executor fails fast on both interfaces
	// without consuming fault draws.
	fa.SetDown(true)
	fb.SetDown(true)
	if _, _, _, err := fa.SearchErr([]uint32{1}); err == nil {
		t.Fatal("down executor served SearchErr")
	}
	if _, _, err := fb.SearchBuf([]uint32{1}, docs, scores); err == nil {
		t.Fatal("down executor served SearchBuf")
	}
	fa.SetDown(false)
	fb.SetDown(false)
	_, _, lat, errA := fa.SearchErr([]uint32{4, 5})
	_, blat, errB := fb.SearchBuf([]uint32{4, 5}, docs, scores)
	if lat != blat || (errA == nil) != (errB == nil) {
		t.Fatal("streams diverged after an outage window")
	}
}

// TestCacheRingEviction covers the FIFO ring across wrap-around: oldest
// entries evict in insertion order and live count never exceeds slots.
func TestCacheRingEviction(t *testing.T) {
	s := newCacheServer(4)
	one := []uint32{1}
	sc := []float32{1}
	for tag := uint64(1); tag <= 4; tag++ {
		s.put(tag, one, sc)
	}
	s.put(5, one, sc) // evicts 1
	s.put(6, one, sc) // evicts 2
	for _, tag := range []uint64{3, 4, 5, 6} {
		if _, _, ok := s.get(tag); !ok {
			t.Fatalf("tag %d missing after wrap-around", tag)
		}
	}
	for _, tag := range []uint64{1, 2} {
		if _, _, ok := s.get(tag); ok {
			t.Fatalf("tag %d should have been evicted", tag)
		}
	}
	if s.count != 4 || len(s.data) != 4 {
		t.Fatalf("count=%d len(data)=%d, want 4/4", s.count, len(s.data))
	}
}

// TestCacheRingBoundedUnderChurn is the regression test for the eviction
// leak the ring replaced (`order = order[1:]` grew the backing array
// without bound): sustained churn must leave the ring at its fixed size.
func TestCacheRingBoundedUnderChurn(t *testing.T) {
	s := newCacheServer(8)
	docs := []uint32{1, 2, 3}
	scores := []float32{3, 2, 1}
	for tag := uint64(0); tag < 100000; tag++ {
		s.put(tag, docs, scores)
	}
	if len(s.order) != 8 || cap(s.order) != 8 {
		t.Fatalf("order ring grew: len=%d cap=%d, want 8/8", len(s.order), cap(s.order))
	}
	if s.count != 8 || len(s.data) != 8 {
		t.Fatalf("count=%d len(data)=%d, want 8/8", s.count, len(s.data))
	}
	for tag := uint64(100000 - 8); tag < 100000; tag++ {
		if _, _, ok := s.get(tag); !ok {
			t.Fatalf("recent tag %d missing", tag)
		}
	}
}

// TestCacheOverwriteKeepsPosition: re-putting a live tag must not consume a
// ring slot or refresh its FIFO position.
func TestCacheOverwriteKeepsPosition(t *testing.T) {
	s := newCacheServer(2)
	s.put(10, []uint32{1}, []float32{1})
	s.put(20, []uint32{2}, []float32{2})
	s.put(10, []uint32{9}, []float32{9}) // overwrite, still the oldest
	if d, _, ok := s.get(10); !ok || d[0] != 9 {
		t.Fatalf("overwrite not visible: %v %v", d, ok)
	}
	s.put(30, []uint32{3}, []float32{3}) // evicts 10, the oldest
	if _, _, ok := s.get(10); ok {
		t.Fatal("overwritten tag should still evict first")
	}
	if _, _, ok := s.get(20); !ok {
		t.Fatal("tag 20 evicted out of order")
	}
	if s.count != 2 || len(s.data) != 2 {
		t.Fatalf("count=%d len(data)=%d, want 2/2", s.count, len(s.data))
	}
}

// TestCacheFlush: flush empties the tier in place and it keeps working.
func TestCacheFlush(t *testing.T) {
	s := newCacheServer(4)
	for tag := uint64(1); tag <= 4; tag++ {
		s.put(tag, []uint32{uint32(tag)}, []float32{1})
	}
	s.flush()
	if s.count != 0 || len(s.data) != 0 {
		t.Fatalf("flush left count=%d len(data)=%d", s.count, len(s.data))
	}
	if _, _, ok := s.get(2); ok {
		t.Fatal("entry survived flush")
	}
	s.put(7, []uint32{7}, []float32{7})
	if d, _, ok := s.get(7); !ok || d[0] != 7 {
		t.Fatal("cache unusable after flush")
	}
}

// TestRunScenarioPanics pins the validation contract.
func TestRunScenarioPanics(t *testing.T) {
	cases := []struct {
		name string
		sc   Scenario
	}{
		{"zero clients", Scenario{VocabSize: 10, Skew: 1.1, QueriesPerClient: 1}},
		{"zero vocab", Scenario{Clients: 1, Skew: 1.1, QueriesPerClient: 1}},
		{"zero skew", Scenario{Clients: 1, VocabSize: 10, QueriesPerClient: 1}},
		{"closed no budget", Scenario{Clients: 1, VocabSize: 10, Skew: 1.1}},
		{"open no horizon", Scenario{Clients: 1, VocabSize: 10, Skew: 1.1, Arrival: &RateCurve{BaseQPS: 10}}},
		{"open no rate", Scenario{Clients: 1, VocabSize: 10, Skew: 1.1, Arrival: &RateCurve{}, DurationNS: 1e9}},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: RunScenario did not panic", tc.name)
				}
			}()
			RunScenario(testCluster(0), tc.sc)
		}()
	}
}
