package serving

import (
	"fmt"
	"sync"

	"searchmem/internal/stats"
)

// StageMetrics is a point-in-time summary of one serving-pipeline stage.
type StageMetrics struct {
	// Name identifies the stage (frontend, cache-probe, leaf-service,
	// merge).
	Name string
	// Count is the number of observations.
	Count int64
	// MeanNS/P50NS/P95NS/P99NS describe the stage's virtual-latency
	// distribution.
	MeanNS, P50NS, P95NS, P99NS float64
}

// String implements fmt.Stringer.
func (s StageMetrics) String() string {
	return fmt.Sprintf("%-12s n=%-7d mean=%.2fms p50=%.2fms p95=%.2fms p99=%.2fms",
		s.Name, s.Count, s.MeanNS/1e6, s.P50NS/1e6, s.P95NS/1e6, s.P99NS/1e6)
}

// Metrics is a snapshot of the cluster's per-stage latency distributions
// and fault-tolerance counters.
type Metrics struct {
	// Frontend, CacheProbe, LeafService and Merge are the pipeline stages.
	// LeafService observes every leaf attempt (primaries and hedges, raw
	// service time before congestion); Merge observes the fan-out span a
	// query spent below the root (parent wait plus tree hops).
	Frontend, CacheProbe, LeafService, Merge StageMetrics
	// Queries and CacheHits mirror the cluster counters.
	Queries, CacheHits int64
	// HedgesIssued and HedgeWins count hedged retries and the share that
	// answered before the primary.
	HedgesIssued, HedgeWins int64
	// LeafFailures counts failed primary leaf attempts (including ones a
	// hedge later recovered); LeafTimeouts counts leaves dropped from a
	// merge at the deadline.
	LeafFailures, LeafTimeouts int64
	// PartialResults counts queries answered with a degraded merge.
	PartialResults int64
}

// Stages returns the pipeline stages in serving order.
func (m Metrics) Stages() []StageMetrics {
	return []StageMetrics{m.Frontend, m.CacheProbe, m.LeafService, m.Merge}
}

// stageAcc accumulates one stage (counter + latency histogram).
type stageAcc struct {
	count int64
	hist  *stats.Histogram
}

func newStageAcc() stageAcc { return stageAcc{hist: stats.NewHistogram(8)} }

func (s *stageAcc) observe(ns float64) {
	s.count++
	s.hist.Add(ns)
}

func (s *stageAcc) snapshot(name string) StageMetrics {
	return StageMetrics{
		Name:   name,
		Count:  s.count,
		MeanNS: s.hist.Mean(),
		P50NS:  s.hist.Quantile(0.50),
		P95NS:  s.hist.Quantile(0.95),
		P99NS:  s.hist.Quantile(0.99),
	}
}

// mergeEvents carries a query's fault-tolerance event counts and leaf
// attempt latencies from the fan-out to the registry so the registry lock
// is taken once per query.
type mergeEvents struct {
	hedges, hedgeWins  int64
	failures, timeouts int64
	attemptLatenciesNS []float64
}

func (e *mergeEvents) observe(o *leafOutcome) {
	if o.hedged {
		e.hedges++
	}
	if o.hedgeWon {
		e.hedgeWins++
	}
	if o.failed {
		e.failures++
	}
	if o.timedOut {
		e.timeouts++
	}
	e.attemptLatenciesNS = append(e.attemptLatenciesNS, o.attemptLatenciesNS...)
}

func (e *mergeEvents) add(o mergeEvents) {
	e.hedges += o.hedges
	e.hedgeWins += o.hedgeWins
	e.failures += o.failures
	e.timeouts += o.timeouts
	e.attemptLatenciesNS = append(e.attemptLatenciesNS, o.attemptLatenciesNS...)
}

// metricsRegistry is the cluster's concurrent-safe metrics store.
type metricsRegistry struct {
	mu                 sync.Mutex
	frontend, probe    stageAcc
	leafSvc, merge     stageAcc
	queries, cacheHits int64
	hedges, hedgeWins  int64
	failures, timeouts int64
	partials           int64
}

func newMetricsRegistry() *metricsRegistry {
	return &metricsRegistry{
		frontend: newStageAcc(),
		probe:    newStageAcc(),
		leafSvc:  newStageAcc(),
		merge:    newStageAcc(),
	}
}

// recordCacheHit logs a query short-circuited by the cache tier.
func (m *metricsRegistry) recordCacheHit(frontendNS, probeNS float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queries++
	m.cacheHits++
	m.frontend.observe(frontendNS)
	m.probe.observe(probeNS)
}

// recordServe logs a full tree traversal.
func (m *metricsRegistry) recordServe(frontendNS float64, probed bool, probeNS, mergeNS float64, ev mergeEvents, partial bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queries++
	m.frontend.observe(frontendNS)
	if probed {
		m.probe.observe(probeNS)
	}
	for _, lat := range ev.attemptLatenciesNS {
		m.leafSvc.observe(lat)
	}
	m.merge.observe(mergeNS)
	m.hedges += ev.hedges
	m.hedgeWins += ev.hedgeWins
	m.failures += ev.failures
	m.timeouts += ev.timeouts
	if partial {
		m.partials++
	}
}

// Metrics returns a snapshot of the per-stage metrics registry.
func (c *Cluster) Metrics() Metrics {
	m := c.metrics
	m.mu.Lock()
	defer m.mu.Unlock()
	return Metrics{
		Frontend:       m.frontend.snapshot("frontend"),
		CacheProbe:     m.probe.snapshot("cache-probe"),
		LeafService:    m.leafSvc.snapshot("leaf-service"),
		Merge:          m.merge.snapshot("merge"),
		Queries:        m.queries,
		CacheHits:      m.cacheHits,
		HedgesIssued:   m.hedges,
		HedgeWins:      m.hedgeWins,
		LeafFailures:   m.failures,
		LeafTimeouts:   m.timeouts,
		PartialResults: m.partials,
	}
}
