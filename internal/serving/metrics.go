package serving

import (
	"fmt"

	"searchmem/internal/obs"
)

// StageMetrics is a point-in-time summary of one serving-pipeline stage.
type StageMetrics struct {
	// Name identifies the stage (frontend, cache-probe, leaf-service,
	// merge).
	Name string
	// Count is the number of observations.
	Count int64
	// MeanNS/P50NS/P95NS/P99NS describe the stage's virtual-latency
	// distribution.
	MeanNS, P50NS, P95NS, P99NS float64
}

// String implements fmt.Stringer.
func (s StageMetrics) String() string {
	return fmt.Sprintf("%-12s n=%-7d mean=%.2fms p50=%.2fms p95=%.2fms p99=%.2fms",
		s.Name, s.Count, s.MeanNS/1e6, s.P50NS/1e6, s.P95NS/1e6, s.P99NS/1e6)
}

// Metrics is a snapshot of the cluster's per-stage latency distributions
// and fault-tolerance counters.
type Metrics struct {
	// Frontend, CacheProbe, LeafService and Merge are the pipeline stages.
	// LeafService observes every leaf attempt (primaries and hedges, raw
	// service time before congestion); Merge observes the fan-out span a
	// query spent below the root (parent wait plus tree hops).
	Frontend, CacheProbe, LeafService, Merge StageMetrics
	// Queries and CacheHits mirror the cluster counters.
	Queries, CacheHits int64
	// HedgesIssued and HedgeWins count hedged retries and the share that
	// answered before the primary.
	HedgesIssued, HedgeWins int64
	// LeafFailures counts failed primary leaf attempts (including ones a
	// hedge later recovered); LeafTimeouts counts leaves dropped from a
	// merge at the deadline.
	LeafFailures, LeafTimeouts int64
	// PartialResults counts queries answered with a degraded merge.
	PartialResults int64
}

// Stages returns the pipeline stages in serving order.
func (m Metrics) Stages() []StageMetrics {
	return []StageMetrics{m.Frontend, m.CacheProbe, m.LeafService, m.Merge}
}

// mergeEvents carries a query's fault-tolerance event counts and leaf
// attempt latencies from the fan-out to the instruments so shared state is
// touched once per query.
type mergeEvents struct {
	hedges, hedgeWins  int64
	failures, timeouts int64
	attemptLatenciesNS []float64
}

func (e *mergeEvents) observe(o *leafOutcome) {
	if o.hedged {
		e.hedges++
	}
	if o.hedgeWon {
		e.hedgeWins++
	}
	if o.failed {
		e.failures++
	}
	if o.timedOut {
		e.timeouts++
	}
	e.attemptLatenciesNS = append(e.attemptLatenciesNS, o.attemptLatNS[:o.attempts]...)
}

// reset clears the record for reuse, keeping the latency slice's capacity —
// the serial serve path reuses one mergeEvents across queries.
func (e *mergeEvents) reset() {
	*e = mergeEvents{attemptLatenciesNS: e.attemptLatenciesNS[:0]}
}

func (e *mergeEvents) add(o mergeEvents) {
	e.hedges += o.hedges
	e.hedgeWins += o.hedgeWins
	e.failures += o.failures
	e.timeouts += o.timeouts
	e.attemptLatenciesNS = append(e.attemptLatenciesNS, o.attemptLatenciesNS...)
}

// clusterMetrics holds the cluster's instrument handles in the unified
// obs.Registry (counters are atomic, histograms carry their own locks, so
// there is no registry-wide lock on the serve path). Series are labeled
// with the cluster name so several clusters — the degraded experiment's
// healthy/faulty pair, the SLO experiment's base/rebalanced pair — can
// share one registry and one export file.
type clusterMetrics struct {
	queries, cacheHits *obs.Counter
	hedges, hedgeWins  *obs.Counter
	failures, timeouts *obs.Counter
	partials           *obs.Counter
	frontend, probe    *obs.Histogram
	leafSvc, merge     *obs.Histogram
}

func newClusterMetrics(reg *obs.Registry, cluster string) *clusterMetrics {
	lbl := obs.L("cluster", cluster)
	counter := func(name string) *obs.Counter {
		return reg.Counter("serving_"+name+"_total", lbl)
	}
	stage := func(name string) *obs.Histogram {
		return reg.Histogram("serving_stage_latency_ns", lbl, obs.L("stage", name))
	}
	return &clusterMetrics{
		queries:   counter("queries"),
		cacheHits: counter("cache_hits"),
		hedges:    counter("hedges_issued"),
		hedgeWins: counter("hedge_wins"),
		failures:  counter("leaf_failures"),
		timeouts:  counter("leaf_timeouts"),
		partials:  counter("partial_results"),
		frontend:  stage("frontend"),
		probe:     stage("cache-probe"),
		leafSvc:   stage("leaf-service"),
		merge:     stage("merge"),
	}
}

// recordCacheHit logs a query short-circuited by the cache tier.
func (m *clusterMetrics) recordCacheHit(frontendNS, probeNS float64) {
	m.queries.Inc()
	m.cacheHits.Inc()
	m.frontend.Observe(frontendNS)
	m.probe.Observe(probeNS)
}

// recordServe logs a full tree traversal.
func (m *clusterMetrics) recordServe(frontendNS float64, probed bool, probeNS, mergeNS float64, ev mergeEvents, partial bool) {
	m.queries.Inc()
	m.frontend.Observe(frontendNS)
	if probed {
		m.probe.Observe(probeNS)
	}
	for _, lat := range ev.attemptLatenciesNS {
		m.leafSvc.Observe(lat)
	}
	m.merge.Observe(mergeNS)
	m.hedges.Add(ev.hedges)
	m.hedgeWins.Add(ev.hedgeWins)
	m.failures.Add(ev.failures)
	m.timeouts.Add(ev.timeouts)
	if partial {
		m.partials.Inc()
	}
}

// stage reduces one histogram instrument to a StageMetrics summary.
func stage(h *obs.Histogram, name string) StageMetrics {
	return StageMetrics{
		Name:   name,
		Count:  h.Count(),
		MeanNS: h.Mean(),
		P50NS:  h.Quantile(0.50),
		P95NS:  h.Quantile(0.95),
		P99NS:  h.Quantile(0.99),
	}
}

// Metrics returns a snapshot of the cluster's per-stage metrics. The same
// series are exportable as JSON through the registry (Cluster.Registry).
func (c *Cluster) Metrics() Metrics {
	m := c.metrics
	return Metrics{
		Frontend:       stage(m.frontend, "frontend"),
		CacheProbe:     stage(m.probe, "cache-probe"),
		LeafService:    stage(m.leafSvc, "leaf-service"),
		Merge:          stage(m.merge, "merge"),
		Queries:        m.queries.Value(),
		CacheHits:      m.cacheHits.Value(),
		HedgesIssued:   m.hedges.Value(),
		HedgeWins:      m.hedgeWins.Value(),
		LeafFailures:   m.failures.Value(),
		LeafTimeouts:   m.timeouts.Value(),
		PartialResults: m.partials.Value(),
	}
}
