package serving

import "searchmem/internal/search"

// serveScratch holds every buffer the serial serve path needs, preallocated
// once per cluster and reused query to query. It is owned by the
// single-driver loops (RunLoad / RunScenario) under Cluster.driveMu; the
// concurrent Serve path never touches it. Sizes derive from the config:
// fan-out buffers cover the widest parent, result buffers cover TopK.
type serveScratch struct {
	prim, hedges []attempt // per-leaf attempt slots
	hedgeAt      []float64
	outs         []leafOutcome
	primDocs     [][]uint32 // per-leaf primary result buffers (TopK each)
	primScores   [][]float32
	hedgeDocs    [][]uint32 // per-leaf hedge result buffers
	hedgeScores  [][]float32
	bdocs        []uint32 // branch-merge drain (one parent at a time)
	bscores      []float32
	docs         []uint32 // root-merge drain
	scores       []float32
	cdocs        []uint32 // cache-hit copy buffers
	cscores      []float32
	tk, rootTK   *search.TopK
	seen         map[uint32]struct{} // hedge-win dedup, cleared per use
	events       mergeEvents
}

func newServeScratch(cfg Config) *serveScratch {
	f := cfg.Fanout
	if cfg.Leaves < f {
		f = cfg.Leaves
	}
	k := cfg.TopK
	s := &serveScratch{
		prim:        make([]attempt, f),
		hedges:      make([]attempt, f),
		hedgeAt:     make([]float64, f),
		outs:        make([]leafOutcome, f),
		primDocs:    make([][]uint32, f),
		primScores:  make([][]float32, f),
		hedgeDocs:   make([][]uint32, f),
		hedgeScores: make([][]float32, f),
		bdocs:       make([]uint32, k),
		bscores:     make([]float32, k),
		docs:        make([]uint32, k),
		scores:      make([]float32, k),
		cdocs:       make([]uint32, 0, k),
		cscores:     make([]float32, 0, k),
		tk:          search.NewTopK(k),
		rootTK:      search.NewTopK(k),
		seen:        make(map[uint32]struct{}, f*k),
		events:      mergeEvents{attemptLatenciesNS: make([]float64, 0, 2*cfg.Leaves)},
	}
	docBack := make([]uint32, 2*f*k)
	scoreBack := make([]float32, 2*f*k)
	for i := 0; i < f; i++ {
		s.primDocs[i] = docBack[i*k : (i+1)*k]
		s.primScores[i] = scoreBack[i*k : (i+1)*k]
		s.hedgeDocs[i] = docBack[(f+i)*k : (f+i+1)*k]
		s.hedgeScores[i] = scoreBack[(f+i)*k : (f+i+1)*k]
	}
	return s
}

// ensureScratch lazily builds the scratch; callers must hold driveMu.
func (c *Cluster) ensureScratch() {
	if c.scratch == nil {
		c.scratch = newServeScratch(c.cfg)
	}
}

// fanOutSerial is fanOutLeaves without goroutines, writing into scratch.
// Per executor, the call order matches the concurrent phases exactly —
// primaries in leaf order, then hedges in leaf order, each executor called
// at most once per phase (a leaf's hedge goes to its own distinct sibling)
// — so executors with internal RNG state draw the same sequences and the
// resolved outcomes are identical to fanOutLeaves's.
func (c *Cluster) fanOutSerial(p *parent, terms []uint32, congestion float64, s *serveScratch) []leafOutcome {
	deadline, hedgeDelay := c.cfg.LeafDeadlineNS, c.cfg.HedgeDelayNS
	n := len(p.leaves)

	prim := s.prim[:n]
	for li := range p.leaves {
		a := &prim[li]
		a.docs, a.scores, a.lat, a.err = searchLeafBuf(p.leaves[li].exec, terms, s.primDocs[li], s.primScores[li])
	}

	hedgeAt := s.hedgeAt[:n]
	hedges := s.hedges[:n]
	for li := range p.leaves {
		hedgeAt[li] = -1
		if hedgeDelay <= 0 || n < 2 {
			continue
		}
		arrival := prim[li].lat * congestion
		issueAt := -1.0
		if prim[li].err != nil {
			issueAt = arrival
		} else if arrival > hedgeDelay {
			issueAt = hedgeDelay
		}
		if issueAt >= 0 && (deadline == 0 || issueAt < deadline) {
			hedgeAt[li] = issueAt
			a := &hedges[li]
			a.docs, a.scores, a.lat, a.err = searchLeafBuf(p.leaves[(li+1)%n].exec, terms, s.hedgeDocs[li], s.hedgeScores[li])
		}
	}

	outs := s.outs[:n]
	resolveOutcomes(p, prim, hedges, hedgeAt, congestion, deadline, outs)
	return outs
}

// serveSerial is Serve on the preallocated scratch path: the same latency
// model, merges, counters, and metrics, with zero allocations per query
// (enforced by the ZeroAlloc oracle in alloc_test.go). Callers must hold
// driveMu; the returned Result's slices alias the scratch and are valid
// only until the next serveSerial call. Traced clusters fall back to the
// concurrent Serve — results are identical, and tracing needs the retained
// per-leaf outcome slices that path builds.
func (c *Cluster) serveSerial(terms []uint32) Result {
	if c.cfg.Tracer != nil {
		return c.Serve(Query{Terms: terms})
	}
	s := c.scratch

	c.mu.Lock()
	c.Queries++
	c.inflight++
	congestion := 1.0
	if c.cfg.LeafCapacity > 0 {
		rho := float64(c.inflight) / float64(c.cfg.LeafCapacity)
		if rho > 0.95 {
			rho = 0.95
		}
		congestion = 1 / (1 - rho)
	}
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.inflight--
		c.mu.Unlock()
	}()

	lat := c.cfg.FrontendOverheadNS
	tag := cacheTag(terms)
	probed := false
	if c.cache != nil {
		probed = true
		if c.cache.getInto(tag, &s.cdocs, &s.cscores) {
			c.mu.Lock()
			c.CacheHits++
			c.mu.Unlock()
			c.metrics.recordCacheHit(c.cfg.FrontendOverheadNS, c.cfg.NetworkHopNS)
			// The Result aliasing the scratch buffers is serveSerial's
			// documented contract (valid until the next call on this
			// cluster); copying here would put an allocation on the
			// zero-alloc event path.
			//lint:ignore aliasret serveSerial results alias per-cluster scratch by contract; callers must consume before the next call
			return Result{Docs: s.cdocs, Scores: s.cscores, FromCache: true, LatencyNS: lat + c.cfg.NetworkHopNS}
		}
		lat += c.cfg.NetworkHopNS // cache miss probe
	}
	lat += c.cfg.RootOverheadNS

	// Parents run one after another (virtual time makes concurrency a
	// modeling question, not an execution one): each branch merges in leaf
	// order into the branch selector, then feeds the root selector, in the
	// same order Serve pushes branch results after its barrier.
	s.events.reset()
	s.rootTK.Reset()
	var worst float64
	partial := false
	answered := 0
	for _, p := range c.parents {
		outs := c.fanOutSerial(p, terms, congestion, s)

		var seen map[uint32]struct{}
		for i := range outs {
			if outs[i].hedgeWon {
				clear(s.seen)
				seen = s.seen
				break
			}
		}
		s.tk.Reset()
		var wait float64
		bpartial := false
		banswered := 0
		for i := range outs {
			o := &outs[i]
			if o.waitNS > wait {
				wait = o.waitNS
			}
			s.events.observe(o)
			if !o.answered {
				bpartial = true
				continue
			}
			banswered++
			for j := range o.docs {
				// Disambiguate doc ids across shards.
				id := o.docs[j]*uint32(c.cfg.Leaves) + uint32(o.srcLeaf)
				if seen != nil {
					if _, dup := seen[id]; dup {
						continue
					}
					seen[id] = struct{}{}
				}
				s.tk.Push(id, o.scores[j])
			}
		}
		bn := s.tk.ResultsInto(s.bdocs, s.bscores)
		blat := wait + 2*c.cfg.NetworkHopNS
		if blat > worst {
			worst = blat
		}
		partial = partial || bpartial
		answered += banswered
		for j := 0; j < bn; j++ {
			s.rootTK.Push(s.bdocs[j], s.bscores[j])
		}
	}

	n := s.rootTK.ResultsInto(s.docs, s.scores)
	lat += worst + 2*c.cfg.NetworkHopNS
	docs, scores := s.docs[:n], s.scores[:n]

	// Degraded merges are never cached: a later identical query should get
	// another chance at a full answer, not a pinned partial one.
	if c.cache != nil && !partial {
		c.cache.put(tag, docs, scores)
	}
	c.metrics.recordServe(c.cfg.FrontendOverheadNS, probed, c.cfg.NetworkHopNS,
		worst+2*c.cfg.NetworkHopNS, s.events, partial)
	return Result{Docs: docs, Scores: scores, LatencyNS: lat, Partial: partial, LeavesAnswered: answered}
}
