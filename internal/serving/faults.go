package serving

import (
	"errors"
	"sync/atomic"

	"searchmem/internal/stats"
)

// ErrInjectedFault is returned by FaultyExecutor for injected failures.
var ErrInjectedFault = errors.New("serving: injected leaf fault")

// FaultyExecutor wraps an Executor with deterministic fault injection. Each
// call independently draws three faults, in order:
//
//   - flap (probability FlapProb): the shard is unreachable; the call fails
//     fast after FlapLatencyNS without doing any work.
//   - slow (probability SlowProb): the call's service latency is multiplied
//     by SlowFactor (a straggler).
//   - fail (probability FailProb): the call does its full work, then fails
//     (crash before responding), so the fault is detected only after the
//     whole service time.
//
// Randomness is derived from (Seed, terms) via stats.RNG, not from shared
// mutable state: a given query against a given shard always behaves the
// same no matter how goroutines are scheduled, which keeps simulations
// reproducible under concurrency. Hedged retries recover because the
// sibling shard carries a different Seed.
type FaultyExecutor struct {
	// Inner is the wrapped executor.
	Inner Executor
	// SlowProb and SlowFactor shape straggler injection (SlowFactor
	// defaults to 4 when unset).
	SlowProb   float64
	SlowFactor float64
	// FailProb is the probability of a post-work failure.
	FailProb float64
	// FlapProb and FlapLatencyNS shape fail-fast unavailability
	// (FlapLatencyNS defaults to 1e5, about one network hop).
	FlapProb      float64
	FlapLatencyNS float64
	// Seed decorrelates fault streams between shards.
	Seed uint64

	// down marks the shard administratively unavailable: every call fails
	// fast at the flap latency, without consuming any fault draws, until
	// SetDown(false). Fleet scenarios use it for correlated outage windows.
	down atomic.Bool
}

// SetDown implements OutageExecutor: it marks the shard down (or back up)
// for all subsequent calls, from any goroutine.
func (f *FaultyExecutor) SetDown(down bool) { f.down.Store(down) }

// callSeed derives the per-call fault-stream seed from (Seed, terms).
func (f *FaultyExecutor) callSeed(terms []uint32) uint64 {
	h := f.Seed*0x9e3779b97f4a7c15 + 0x1234567
	for _, t := range terms {
		h = h*6364136223846793005 + uint64(t) + 1
	}
	return h
}

// flapLatency is the fail-fast latency for flaps and outage windows.
func (f *FaultyExecutor) flapLatency() float64 {
	if f.FlapLatencyNS > 0 {
		return f.FlapLatencyNS
	}
	return 1e5
}

// SearchErr implements FallibleExecutor.
func (f *FaultyExecutor) SearchErr(terms []uint32) ([]uint32, []float32, float64, error) {
	if f.down.Load() {
		return nil, nil, f.flapLatency(), ErrInjectedFault
	}
	var rng stats.RNG
	rng.Seed(f.callSeed(terms))
	if rng.Bool(f.FlapProb) {
		return nil, nil, f.flapLatency(), ErrInjectedFault
	}
	docs, scores, lat := f.Inner.Search(terms)
	if rng.Bool(f.SlowProb) {
		factor := f.SlowFactor
		if factor <= 0 {
			factor = 4
		}
		lat *= factor
	}
	if rng.Bool(f.FailProb) {
		return nil, nil, lat, ErrInjectedFault
	}
	return docs, scores, lat, nil
}

// SearchBuf implements BufferedExecutor: the same fault draws in the same
// order as SearchErr (flap → inner call → slow → fail), with the inner
// executor's results written into the caller's buffers when it is buffered
// too, and copied otherwise. The fault stream derives from (Seed, terms)
// through a stack-allocated RNG, so the call is allocation-free.
func (f *FaultyExecutor) SearchBuf(terms []uint32, docs []uint32, scores []float32) (int, float64, error) {
	if f.down.Load() {
		return 0, f.flapLatency(), ErrInjectedFault
	}
	var rng stats.RNG
	rng.Seed(f.callSeed(terms))
	if rng.Bool(f.FlapProb) {
		return 0, f.flapLatency(), ErrInjectedFault
	}
	var n int
	var lat float64
	if be, ok := f.Inner.(BufferedExecutor); ok {
		var err error
		n, lat, err = be.SearchBuf(terms, docs, scores)
		if err != nil {
			// Keep the draw order identical to SearchErr even on an inner
			// failure (Search has no error channel, so SearchErr always
			// draws slow and fail after the inner call).
			rng.Bool(f.SlowProb)
			rng.Bool(f.FailProb)
			return 0, lat, err
		}
	} else {
		d, s, l := f.Inner.Search(terms)
		n = copy(docs, d)
		copy(scores, s)
		lat = l
	}
	if rng.Bool(f.SlowProb) {
		factor := f.SlowFactor
		if factor <= 0 {
			factor = 4
		}
		lat *= factor
	}
	if rng.Bool(f.FailProb) {
		return 0, lat, ErrInjectedFault
	}
	return n, lat, nil
}

// Search implements Executor; failures surface as empty results.
func (f *FaultyExecutor) Search(terms []uint32) ([]uint32, []float32, float64) {
	docs, scores, lat, err := f.SearchErr(terms)
	if err != nil {
		return nil, nil, lat
	}
	return docs, scores, lat
}
