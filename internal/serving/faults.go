package serving

import (
	"errors"

	"searchmem/internal/stats"
)

// ErrInjectedFault is returned by FaultyExecutor for injected failures.
var ErrInjectedFault = errors.New("serving: injected leaf fault")

// FaultyExecutor wraps an Executor with deterministic fault injection. Each
// call independently draws three faults, in order:
//
//   - flap (probability FlapProb): the shard is unreachable; the call fails
//     fast after FlapLatencyNS without doing any work.
//   - slow (probability SlowProb): the call's service latency is multiplied
//     by SlowFactor (a straggler).
//   - fail (probability FailProb): the call does its full work, then fails
//     (crash before responding), so the fault is detected only after the
//     whole service time.
//
// Randomness is derived from (Seed, terms) via stats.RNG, not from shared
// mutable state: a given query against a given shard always behaves the
// same no matter how goroutines are scheduled, which keeps simulations
// reproducible under concurrency. Hedged retries recover because the
// sibling shard carries a different Seed.
type FaultyExecutor struct {
	// Inner is the wrapped executor.
	Inner Executor
	// SlowProb and SlowFactor shape straggler injection (SlowFactor
	// defaults to 4 when unset).
	SlowProb   float64
	SlowFactor float64
	// FailProb is the probability of a post-work failure.
	FailProb float64
	// FlapProb and FlapLatencyNS shape fail-fast unavailability
	// (FlapLatencyNS defaults to 1e5, about one network hop).
	FlapProb      float64
	FlapLatencyNS float64
	// Seed decorrelates fault streams between shards.
	Seed uint64
}

// callRNG derives the per-call fault stream from (Seed, terms).
func (f *FaultyExecutor) callRNG(terms []uint32) *stats.RNG {
	h := f.Seed*0x9e3779b97f4a7c15 + 0x1234567
	for _, t := range terms {
		h = h*6364136223846793005 + uint64(t) + 1
	}
	return stats.NewRNG(h)
}

// SearchErr implements FallibleExecutor.
func (f *FaultyExecutor) SearchErr(terms []uint32) ([]uint32, []float32, float64, error) {
	rng := f.callRNG(terms)
	if rng.Bool(f.FlapProb) {
		flap := f.FlapLatencyNS
		if flap <= 0 {
			flap = 1e5
		}
		return nil, nil, flap, ErrInjectedFault
	}
	docs, scores, lat := f.Inner.Search(terms)
	if rng.Bool(f.SlowProb) {
		factor := f.SlowFactor
		if factor <= 0 {
			factor = 4
		}
		lat *= factor
	}
	if rng.Bool(f.FailProb) {
		return nil, nil, lat, ErrInjectedFault
	}
	return docs, scores, lat, nil
}

// Search implements Executor; failures surface as empty results.
func (f *FaultyExecutor) Search(terms []uint32) ([]uint32, []float32, float64) {
	docs, scores, lat, err := f.SearchErr(terms)
	if err != nil {
		return nil, nil, lat
	}
	return docs, scores, lat
}
