package serving

import (
	"sync"
	"testing"

	"searchmem/internal/memsim"
	"searchmem/internal/search"
)

func testCluster(cacheSlots int) *Cluster {
	cfg := DefaultConfig()
	cfg.CacheSlots = cacheSlots
	return NewCluster(cfg, nil)
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{},
		{Leaves: 4, Fanout: 0, TopK: 10},
		{Leaves: 4, Fanout: 2, TopK: 0},
		{Leaves: 4, Fanout: 2, TopK: 10, NetworkHopNS: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTreeShape(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Leaves = 10
	cfg.Fanout = 4
	c := NewCluster(cfg, nil)
	if len(c.parents) != 3 { // 4+4+2
		t.Fatalf("parents = %d, want 3", len(c.parents))
	}
	total := 0
	for _, p := range c.parents {
		total += len(p.leaves)
	}
	if total != 10 {
		t.Fatalf("leaves = %d", total)
	}
}

func TestServeBasics(t *testing.T) {
	c := testCluster(0)
	r := c.Serve(Query{Terms: []uint32{1, 2}})
	if len(r.Docs) != c.Config().TopK {
		t.Fatalf("got %d results", len(r.Docs))
	}
	if r.LatencyNS <= 0 {
		t.Fatal("no latency modeled")
	}
	if r.FromCache {
		t.Fatal("uncached cluster returned cache hit")
	}
	// Scores sorted best-first.
	for i := 1; i < len(r.Scores); i++ {
		if r.Scores[i] > r.Scores[i-1] {
			t.Fatalf("scores unsorted: %v", r.Scores)
		}
	}
}

func TestServeDeterministicResults(t *testing.T) {
	a := testCluster(0).Serve(Query{Terms: []uint32{7, 9}})
	b := testCluster(0).Serve(Query{Terms: []uint32{7, 9}})
	if len(a.Docs) != len(b.Docs) {
		t.Fatal("result sizes differ")
	}
	for i := range a.Docs {
		if a.Docs[i] != b.Docs[i] {
			t.Fatal("results nondeterministic")
		}
	}
}

func TestCacheShortCircuit(t *testing.T) {
	c := testCluster(1024)
	q := Query{Terms: []uint32{5, 6}}
	first := c.Serve(q)
	second := c.Serve(q)
	if first.FromCache {
		t.Fatal("cold cache hit")
	}
	if !second.FromCache {
		t.Fatal("repeat query missed cache")
	}
	if second.LatencyNS >= first.LatencyNS {
		t.Fatalf("cache hit not faster: %v vs %v", second.LatencyNS, first.LatencyNS)
	}
	for i := range first.Docs {
		if second.Docs[i] != first.Docs[i] {
			t.Fatal("cached result differs")
		}
	}
	if c.CacheHitRate() != 0.5 {
		t.Fatalf("hit rate %v", c.CacheHitRate())
	}
}

func TestCacheEviction(t *testing.T) {
	s := newCacheServer(2)
	s.put(1, []uint32{1}, []float32{1})
	s.put(2, []uint32{2}, []float32{1})
	s.put(3, []uint32{3}, []float32{1})
	if _, _, ok := s.get(1); ok {
		t.Fatal("oldest entry not evicted")
	}
	if _, _, ok := s.get(3); !ok {
		t.Fatal("newest entry missing")
	}
	// Overwrite existing key must not grow the map.
	s.put(3, []uint32{9}, []float32{2})
	if docs, _, _ := s.get(3); docs[0] != 9 {
		t.Fatal("overwrite failed")
	}
}

func TestMergePrefersBestScores(t *testing.T) {
	// With TopK=3 and many leaves, merged scores must dominate any single
	// leaf's weakest results.
	cfg := DefaultConfig()
	cfg.TopK = 3
	c := NewCluster(cfg, nil)
	r := c.Serve(Query{Terms: []uint32{11}})
	leafDocs, leafScores, _ := NewSyntheticExecutor(0, 3).Search([]uint32{11})
	_ = leafDocs
	if r.Scores[0] < leafScores[0] {
		t.Fatalf("merged best %v below leaf 0 best %v", r.Scores[0], leafScores[0])
	}
}

func TestConcurrentServe(t *testing.T) {
	c := testCluster(4096)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c.Serve(Query{Terms: []uint32{uint32(g), uint32(i % 10)}})
			}
		}(g)
	}
	wg.Wait()
	if c.Queries != 400 {
		t.Fatalf("queries = %d", c.Queries)
	}
}

func TestRunLoad(t *testing.T) {
	c := testCluster(4096)
	st := RunLoad(c, 4, 100, 500, 1.1, 42)
	if st.Queries != 400 {
		t.Fatalf("queries %d", st.Queries)
	}
	if st.CacheHits == 0 {
		t.Fatal("Zipf-popular load produced no cache hits")
	}
	if st.QPS <= 0 || st.MeanLatencyNS <= 0 {
		t.Fatalf("throughput stats: %+v", st)
	}
	if !(st.P50NS <= st.P95NS && st.P95NS <= st.P99NS) {
		t.Fatalf("percentiles unordered: %+v", st)
	}
}

func TestCacheReducesMeanLatency(t *testing.T) {
	with := RunLoad(testCluster(8192), 2, 200, 100, 1.2, 7)
	without := RunLoad(testCluster(0), 2, 200, 100, 1.2, 7)
	if with.MeanLatencyNS >= without.MeanLatencyNS {
		t.Fatalf("cache tier did not cut latency: %v vs %v",
			with.MeanLatencyNS, without.MeanLatencyNS)
	}
}

func TestEngineExecutor(t *testing.T) {
	cfg := search.DefaultConfig()
	cfg.Corpus.NumDocs = 2000
	cfg.Corpus.VocabSize = 3000
	cfg.Corpus.AvgDocLen = 30
	space := memsim.NewSpace(nil)
	eng, _ := search.Build(cfg, space, nil)
	exec := &EngineExecutor{Session: eng.NewSession(0, nil), NSPerInstr: 0.3}
	docs, scores, lat := exec.Search([]uint32{1, 2})
	if len(docs) != len(scores) {
		t.Fatal("mismatched results")
	}
	if lat <= 0 {
		t.Fatal("no latency modeled")
	}
	// Wire it as a leaf.
	cc := DefaultConfig()
	cc.Leaves = 2
	cluster := NewCluster(cc, []Executor{exec})
	r := cluster.Serve(Query{Terms: []uint32{1, 2}})
	if len(r.Docs) == 0 {
		t.Fatal("no merged results with engine leaf")
	}
}

func TestRunLoadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad load accepted")
		}
	}()
	RunLoad(testCluster(0), 0, 1, 1, 1, 1)
}

func TestQueueingInflatesLatencyUnderLoad(t *testing.T) {
	mk := func(clients int) LoadStats {
		cfg := DefaultConfig()
		cfg.CacheSlots = 0
		cfg.LeafCapacity = 4
		c := NewCluster(cfg, nil)
		return RunLoad(c, clients, 120, 5000, 0.6, 11)
	}
	light, heavy := mk(1), mk(16)
	if heavy.MeanLatencyNS <= light.MeanLatencyNS {
		t.Fatalf("no congestion: %v vs %v", heavy.MeanLatencyNS, light.MeanLatencyNS)
	}
	if heavy.P99NS <= light.P99NS {
		t.Fatalf("tail did not grow: %v vs %v", heavy.P99NS, light.P99NS)
	}
}

func TestQueueingDisabledByDefault(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.LeafCapacity != 0 {
		t.Fatal("queueing should be opt-in")
	}
	c := NewCluster(cfg, nil)
	r := c.Serve(Query{Terms: []uint32{1}})
	if r.LatencyNS <= 0 {
		t.Fatal("latency missing")
	}
}
