package core

import (
	"math"
	"strings"
	"testing"

	"searchmem/internal/dram"
	"searchmem/internal/model"
)

// syntheticCurve is a paper-shaped analytic hit curve for tests: data hit
// rises with capacity toward a ceiling, code saturates by 16 MiB, the L4
// captures heap locality by ~1 GiB.
type syntheticCurve struct{}

func (syntheticCurve) DataHitRate(c int64) float64 {
	mib := float64(c) / (1 << 20)
	h := 0.8 * (1 - math.Exp(-mib/18))
	return h
}

func (syntheticCurve) CodeHitRate(c int64) float64 {
	mib := float64(c) / (1 << 20)
	if mib >= 16 {
		return 1
	}
	return mib / 16
}

func (syntheticCurve) L4HitRate(l4, l3 int64) float64 {
	mib := float64(l4) / (1 << 20)
	return 0.92 * (1 - math.Exp(-mib/350))
}

func testEvaluator() Evaluator {
	return Evaluator{
		Curve: syntheticCurve{},
		Params: Params{
			TL3NS:       14.4,
			TMEMNS:      65,
			IPCLine:     model.Equation1,
			SMTSpeedup:  func(n int) float64 { return []float64{1, 1, 1.37}[min(n, 2)] },
			CoreAreaMiB: 4,
			Power:       model.PowerModel{SocketWatts: 145, BaselineCores: 18, CorePowerFrac: 0.0377},
			InstrPenalty: func(codeHit float64) float64 {
				return 1 - 0.3*(1-codeHit)
			},
		},
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// plt1Baseline is the paper's 18-core, 45 MiB, SMT-2 reference.
func plt1Baseline() Design {
	return Design{Cores: 18, L3MiB: 45, SMTWays: 2}
}

func TestDesignValidate(t *testing.T) {
	bad := []Design{
		{},
		{Cores: 18, L3MiB: 45},            // SMT missing
		{Cores: 18, SMTWays: 2},           // L3 missing
		{Cores: 0, L3MiB: 45, SMTWays: 2}, // cores missing
		{Cores: 18, L3MiB: 45, SMTWays: 2, L4: &dram.L4Design{}}, // invalid L4
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := plt1Baseline().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDesignString(t *testing.T) {
	d := plt1Baseline()
	if !strings.Contains(d.String(), "18 cores") {
		t.Fatalf("string: %s", d.String())
	}
	l4 := dram.BaselineL4(1 << 30)
	d.L4 = &l4
	if !strings.Contains(d.String(), "1024 MiB L4") {
		t.Fatalf("string with L4: %s", d.String())
	}
}

func TestEvaluateBaseline(t *testing.T) {
	e := testEvaluator()
	s := e.Evaluate(plt1Baseline())
	if s.QPS <= 0 {
		t.Fatal("no throughput")
	}
	if math.Abs(s.AreaMiB-117) > 1e-9 {
		t.Fatalf("baseline area %v, want 117", s.AreaMiB)
	}
	if s.AMATNS <= e.Params.TL3NS || s.AMATNS >= e.Params.TMEMNS {
		t.Fatalf("AMAT %v out of range", s.AMATNS)
	}
	if math.Abs(s.RelPower-1) > 1e-9 {
		t.Fatalf("baseline relative power %v", s.RelPower)
	}
}

func TestL4ImprovesDesign(t *testing.T) {
	e := testEvaluator()
	rebalanced := Design{Cores: 23, L3MiB: 23, SMTWays: 2}
	noL4 := e.Evaluate(rebalanced)
	l4 := dram.BaselineL4(1 << 30)
	withL4 := rebalanced
	withL4.L4 = &l4
	got := e.Evaluate(withL4)
	if got.QPS <= noL4.QPS {
		t.Fatalf("L4 did not help: %v vs %v", got.QPS, noL4.QPS)
	}
	if got.AMATNS >= noL4.AMATNS {
		t.Fatal("L4 did not cut AMAT")
	}
	// The paper's headline: rebalance + 1 GiB L4 beats the baseline by a
	// decent margin.
	base := e.Evaluate(plt1Baseline())
	imp, _ := Relative(base, got)
	if imp < 0.10 || imp > 0.60 {
		t.Fatalf("combined improvement %v out of plausible band", imp)
	}
}

func TestRelativeEnergy(t *testing.T) {
	e := testEvaluator()
	base := e.Evaluate(plt1Baseline())
	better := e.Evaluate(Design{Cores: 23, L3MiB: 23, SMTWays: 2})
	imp, energy := Relative(base, better)
	if imp <= 0 {
		t.Fatalf("rebalance should improve: %v", imp)
	}
	// More cores cost power, but QPS rises at least as fast: energy per
	// query must not balloon (the paper argues the trade is
	// energy-neutral-ish).
	if energy <= 0 || energy > 1.1 {
		t.Fatalf("energy per query %v", energy)
	}
}

func TestExploreFindsInteriorOptimum(t *testing.T) {
	e := testEvaluator()
	best, frontier := e.Explore(plt1Baseline(), Constraint{}, nil)
	if len(frontier) == 0 {
		t.Fatal("empty frontier")
	}
	if best.QPS <= e.Evaluate(plt1Baseline()).QPS {
		t.Fatal("exploration found nothing better than the baseline")
	}
	// Iso-area must hold for everything on the frontier.
	for _, s := range frontier {
		if s.AreaMiB > 117+1e-6 {
			t.Fatalf("design %v exceeds area budget: %v", s.Design, s.AreaMiB)
		}
	}
	// With the instruction penalty active, the optimum is interior: not
	// the minimum cache point.
	if best.Design.L3PerCoreMiB() <= 0.26 {
		t.Fatalf("optimum degenerate at %v MiB/core", best.Design.L3PerCoreMiB())
	}
}

func TestExploreWithL4(t *testing.T) {
	e := testEvaluator()
	best, _ := e.Explore(plt1Baseline(), Constraint{}, []int64{256, 1024})
	if best.Design.L4 == nil {
		t.Fatal("L4 designs should win the exploration")
	}
	if best.Design.L4.CapacityBytes != 1<<30 {
		t.Fatalf("best L4 %d MiB, expected the 1 GiB point", best.Design.L4.CapacityBytes>>20)
	}
	base := e.Evaluate(plt1Baseline())
	imp, _ := Relative(base, best)
	if imp < 0.15 {
		t.Fatalf("best combined design only %+.1f%%", 100*imp)
	}
}

func TestExploreIsoPower(t *testing.T) {
	e := testEvaluator()
	// The paper's iso-power observation: capping power at the baseline
	// forces core count <= 18, shrinking area while keeping performance
	// within a few percent.
	best, frontier := e.Explore(plt1Baseline(), Constraint{MaxRelPower: 1.0}, nil)
	for _, s := range frontier {
		if s.RelPower > 1+1e-9 {
			t.Fatalf("iso-power violated: %v", s.RelPower)
		}
		if s.Design.Cores > 18 {
			t.Fatalf("iso-power frontier has %d cores", s.Design.Cores)
		}
	}
	base := e.Evaluate(plt1Baseline())
	imp, _ := Relative(base, best)
	if imp < -0.05 {
		t.Fatalf("iso-power best is %v below baseline", imp)
	}
}

func TestExploreMinL3Floor(t *testing.T) {
	e := testEvaluator()
	_, frontier := e.Explore(plt1Baseline(), Constraint{MinL3MiB: 18}, nil)
	for _, s := range frontier {
		if s.Design.L3MiB < 18 {
			t.Fatalf("floor violated: %v", s.Design.L3MiB)
		}
	}
}

func TestEvaluatePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid design accepted")
		}
	}()
	testEvaluator().Evaluate(Design{})
}
