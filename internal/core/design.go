// Package core implements the paper's primary contribution as a reusable
// library: the state-sharing-enabled SoC cache hierarchy optimized for OLDI
// workloads (§IV). A Design couples a core count, an L3 allocation, and an
// optional latency-optimized eDRAM L4; an Evaluator scores designs under
// iso-area (and optionally iso-power) constraints using the calibrated
// performance, area, and power models, and Explore searches the design
// space the way §IV-B/§IV-C do.
package core

import (
	"fmt"
	"math"

	"searchmem/internal/dram"
	"searchmem/internal/model"
)

// Design is one SoC + package configuration.
type Design struct {
	// Cores is the core count.
	Cores int
	// L3MiB is the total shared L3 capacity.
	L3MiB float64
	// L4 is the optional on-package eDRAM cache (nil = none).
	L4 *dram.L4Design
	// SMTWays is the SMT configuration (throughput multiplier via the
	// platform's SMT model).
	SMTWays int
}

// String implements fmt.Stringer.
func (d Design) String() string {
	s := fmt.Sprintf("%d cores, %.1f MiB L3, SMT-%d", d.Cores, d.L3MiB, d.SMTWays)
	if d.L4 != nil {
		s += fmt.Sprintf(", %d MiB L4 @ %.0f ns", d.L4.CapacityBytes>>20, d.L4.HitLatencyNS)
	}
	return s
}

// Validate reports whether the design is well-formed.
func (d Design) Validate() error {
	if d.Cores <= 0 {
		return fmt.Errorf("core: design needs cores")
	}
	if d.L3MiB <= 0 {
		return fmt.Errorf("core: design needs L3 capacity")
	}
	if d.SMTWays <= 0 {
		return fmt.Errorf("core: design needs SMT ways")
	}
	if d.L4 != nil {
		if err := d.L4.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// L3PerCoreMiB returns the L3 capacity per core.
func (d Design) L3PerCoreMiB() float64 { return d.L3MiB / float64(d.Cores) }

// HitCurve supplies workload hit rates as a function of capacity: the
// functional-simulation half of the paper's methodology. Implementations
// come from measured stack-distance profiles (internal/experiments) or any
// analytical stand-in.
type HitCurve interface {
	// DataHitRate returns the post-L2 data hit rate at an L3 capacity.
	DataHitRate(capacityBytes int64) float64
	// CodeHitRate returns the post-L2 instruction hit rate.
	CodeHitRate(capacityBytes int64) float64
	// L4HitRate returns the L4 hit rate at an L4 capacity behind the
	// given L3 capacity.
	L4HitRate(l4CapacityBytes, l3CapacityBytes int64) float64
}

// Params bundles the calibrated model constants an Evaluator needs.
type Params struct {
	// TL3NS and TMEMNS are the L3 and memory round-trip latencies.
	TL3NS, TMEMNS float64
	// IPCLine maps AMAT (ns) to IPC (Equation 1 or a refit line).
	IPCLine interface{ Eval(float64) float64 }
	// SMTSpeedup returns the throughput multiplier for n SMT ways.
	SMTSpeedup func(n int) float64
	// CoreAreaMiB is one core's area in L3-equivalent MiB (~4 on PLT1).
	CoreAreaMiB float64
	// Power is the socket power model (§IV-C).
	Power model.PowerModel
	// InstrPenalty, when non-nil, adds the instruction-side CPI penalty
	// for code missing the L3 (the "18 MiB floor"); it receives the code
	// hit rate and returns an IPC multiplier <= 1.
	InstrPenalty func(codeHit float64) float64
}

// Evaluator scores designs.
type Evaluator struct {
	Curve  HitCurve
	Params Params
}

// Score is one design's evaluation.
type Score struct {
	Design Design
	// QPS is relative throughput (arbitrary units; compare ratios).
	QPS float64
	// AreaMiB is die area in L3-equivalent MiB.
	AreaMiB float64
	// AMATNS is the modeled post-L2 access time.
	AMATNS float64
	// RelPower is socket power relative to the power model's baseline.
	RelPower float64
	// EnergyPerQuery is relative joules per query (power/QPS, both
	// relative to the baseline design).
	EnergyPerQuery float64
}

// Evaluate scores one design.
func (e Evaluator) Evaluate(d Design) Score {
	if err := d.Validate(); err != nil {
		panic(err)
	}
	l3 := int64(d.L3MiB * (1 << 20))
	hData := e.Curve.DataHitRate(l3)
	var amat float64
	if d.L4 != nil {
		hL4 := e.Curve.L4HitRate(d.L4.CapacityBytes, l3)
		amat = model.AMATWithL4(hData, hL4, e.Params.TL3NS,
			d.L4.EffectiveHitLatencyNS(), e.Params.TMEMNS, d.L4.MissPenaltyNS)
	} else {
		amat = model.AMATL3(hData, e.Params.TL3NS, e.Params.TMEMNS)
	}
	ipc := e.Params.IPCLine.Eval(amat)
	if ipc < 0.05 {
		ipc = 0.05
	}
	if e.Params.InstrPenalty != nil {
		ipc *= e.Params.InstrPenalty(e.Curve.CodeHitRate(l3))
	}
	smt := 1.0
	if e.Params.SMTSpeedup != nil {
		smt = e.Params.SMTSpeedup(d.SMTWays)
	}
	area := model.AreaModel{CoreAreaMiB: e.Params.CoreAreaMiB}
	s := Score{
		Design:  d,
		QPS:     float64(d.Cores) * ipc * smt,
		AreaMiB: area.Area(d.Cores, d.L3PerCoreMiB()),
		AMATNS:  amat,
	}
	base := e.Params.Power.SocketPower(e.Params.Power.BaselineCores)
	if base > 0 {
		s.RelPower = e.Params.Power.SocketPower(d.Cores) / base
	}
	return s
}

// Relative finishes a Score against a baseline: EnergyPerQuery and the
// improvement fraction.
func Relative(baseline, design Score) (improvement float64, energy float64) {
	improvement = model.Improvement(baseline.QPS, design.QPS)
	if baseline.QPS > 0 && baseline.RelPower > 0 {
		energy = model.EnergyPerQuery(design.RelPower/baseline.RelPower, design.QPS/baseline.QPS)
	}
	return improvement, energy
}

// Constraint restricts the design space during exploration.
type Constraint struct {
	// MaxAreaMiB bounds die area (iso-area uses the baseline's area).
	MaxAreaMiB float64
	// MaxRelPower bounds socket power relative to baseline (0 = none):
	// the paper's iso-power variant uses 1.0.
	MaxRelPower float64
	// MinL3MiB floors the shared cache (the instruction working set makes
	// capacities below ~18 MiB detrimental; exploration can rediscover
	// this, but a floor prunes the space).
	MinL3MiB float64
}

// Explore sweeps core counts and per-core L3 allocations (and optionally L4
// capacities) under the constraint, returning the best design and the full
// frontier evaluated. The L3 allocation granularity is 0.25 MiB/core,
// matching Figure 10.
func (e Evaluator) Explore(baseline Design, cons Constraint, l4Sizes []int64) (best Score, frontier []Score) {
	if cons.MaxAreaMiB <= 0 {
		cons.MaxAreaMiB = e.Evaluate(baseline).AreaMiB
	}
	area := model.AreaModel{CoreAreaMiB: e.Params.CoreAreaMiB}
	baseScore := e.Evaluate(baseline)
	best = baseScore
	for cpc := 0.25; cpc <= 3.0+1e-9; cpc += 0.25 {
		n := int(math.Floor(area.CoresFor(cons.MaxAreaMiB, cpc)))
		if n < 1 {
			continue
		}
		l3 := float64(n) * cpc
		if cons.MinL3MiB > 0 && l3 < cons.MinL3MiB {
			continue
		}
		candidates := []Design{{Cores: n, L3MiB: l3, SMTWays: baseline.SMTWays}}
		for _, l4MiB := range l4Sizes {
			l4 := dram.BaselineL4(l4MiB << 20)
			candidates = append(candidates, Design{
				Cores: n, L3MiB: l3, SMTWays: baseline.SMTWays, L4: &l4,
			})
		}
		for _, d := range candidates {
			s := e.Evaluate(d)
			if s.AreaMiB > cons.MaxAreaMiB+1e-9 {
				continue
			}
			if cons.MaxRelPower > 0 && s.RelPower > cons.MaxRelPower+1e-9 {
				continue
			}
			frontier = append(frontier, s)
			if s.QPS > best.QPS {
				best = s
			}
		}
	}
	return best, frontier
}
