package cpu

import (
	"math"
	"testing"
)

// paperishCore returns core parameters in the PLT1 (Haswell-like) regime.
func paperishCore() CoreParams {
	// Overlap factors and fixed CPI components are calibrated so that the
	// S1-leaf event rates land on the paper's Figure 3 breakdown at
	// CPI = 0.78 (IPC 1.28); see TestPaperFigure3Anchor.
	return CoreParams{
		Width:                4,
		FreqGHz:              2.5,
		MispredPenaltyCycles: 12.7,
		L2LatencyCycles:      12,
		L3LatencyCycles:      36,
		MemLatencyNS:         65,
		MemOverlap:           0.078,
		FEOverlap:            0.143,
		FEBandwidthCPI:       0.076,
		CoreStallCPI:         0.066,
	}
}

func TestBreakdownSumsToOne(t *testing.T) {
	p := paperishCore()
	r := EventRates{
		BranchMispredicts: 0.0075,
		L1IMisses:         0.03, L2IMisses: 0.011,
		L1DMisses: 0.04, L2DMisses: 0.012,
		L3AMATNS: 55,
	}
	bd, ipc := p.Evaluate(r)
	if math.Abs(bd.Sum()-1) > 1e-9 {
		t.Fatalf("breakdown sums to %v", bd.Sum())
	}
	if ipc <= 0 || ipc > float64(p.Width) {
		t.Fatalf("IPC %v out of range", ipc)
	}
	if bd.String() == "" {
		t.Fatal("empty breakdown string")
	}
}

func TestIdealWorkloadRetiresEverything(t *testing.T) {
	p := paperishCore()
	p.FEBandwidthCPI = 0
	p.CoreStallCPI = 0
	bd, ipc := p.Evaluate(EventRates{})
	if math.Abs(bd.Retiring-1) > 1e-9 {
		t.Fatalf("no-stall workload retires %v", bd.Retiring)
	}
	if math.Abs(ipc-4) > 1e-9 {
		t.Fatalf("no-stall IPC %v, want width", ipc)
	}
}

func TestMemoryStallsGrowWithAMAT(t *testing.T) {
	p := paperishCore()
	r := EventRates{L2DMisses: 0.012, L3AMATNS: 40}
	_, fast := p.Evaluate(r)
	r.L3AMATNS = 80
	bdSlow, slow := p.Evaluate(r)
	if slow >= fast {
		t.Fatalf("higher AMAT did not lower IPC: %v vs %v", slow, fast)
	}
	if bdSlow.BEMemory <= 0 {
		t.Fatal("no memory-bound slots at 80 ns AMAT")
	}
}

func TestMispredictsCreateBadSpec(t *testing.T) {
	p := paperishCore()
	bd, _ := p.Evaluate(EventRates{BranchMispredicts: 0.009})
	if bd.BadSpec < 0.05 {
		t.Fatalf("9 mispredicts/KI yields only %v bad-spec", bd.BadSpec)
	}
}

func TestICacheMissesCreateFELatency(t *testing.T) {
	p := paperishCore()
	bd, _ := p.Evaluate(EventRates{L1IMisses: 0.05, L2IMisses: 0.012})
	if bd.FELatency < 0.05 {
		t.Fatalf("icache misses yield only %v FE-latency", bd.FELatency)
	}
}

// TestPaperFigure3Anchor checks that with S1-leaf-like event rates the model
// lands near the paper's breakdown: retiring 32%, bad-spec 15.4%, FE-latency
// 13.8%, FE-bandwidth 9.7%, BE-core 8.5%, BE-memory 20.5%.
func TestPaperFigure3Anchor(t *testing.T) {
	p := paperishCore()
	// Event rates in the neighbourhood of Table I / §III for an S1 leaf:
	// branch MPKI ~9.5, L1I MPKI ~30, L2I MPKI ~11, L1D MPKI ~40,
	// L2D MPKI ~12, AMAT_L3 ~55 ns.
	r := EventRates{
		BranchMispredicts: 0.0095,
		L1IMisses:         0.030, L2IMisses: 0.011,
		L1DMisses: 0.040, L2DMisses: 0.0115,
		L3AMATNS: 55,
	}
	bd, ipc := p.Evaluate(r)
	checks := []struct {
		name      string
		got, want float64
		tol       float64
	}{
		{"retiring", bd.Retiring, 0.32, 0.06},
		{"badspec", bd.BadSpec, 0.154, 0.05},
		{"fe-latency", bd.FELatency, 0.138, 0.06},
		{"fe-bandwidth", bd.FEBandwidth, 0.097, 0.04},
		{"be-core", bd.BECore, 0.085, 0.04},
		{"be-memory", bd.BEMemory, 0.205, 0.06},
		{"ipc", ipc, 1.27, 0.25},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > c.tol {
			t.Errorf("%s = %.3f, paper %.3f (tol %.3f)", c.name, c.got, c.want, c.tol)
		}
	}
}

func TestCoreParamsValidate(t *testing.T) {
	bad := []CoreParams{
		{},
		{Width: 4},
		{Width: 4, FreqGHz: 2, MemOverlap: 1.5},
		{Width: 4, FreqGHz: 2, FEOverlap: -0.1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := paperishCore().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluatePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid params accepted")
		}
	}()
	CoreParams{}.Evaluate(EventRates{})
}

func TestCyclesFromNS(t *testing.T) {
	p := CoreParams{Width: 4, FreqGHz: 2.5}
	if got := p.CyclesFromNS(10); math.Abs(got-25) > 1e-12 {
		t.Fatalf("CyclesFromNS(10) = %v, want 25", got)
	}
}

func TestIPCWrapper(t *testing.T) {
	p := paperishCore()
	r := EventRates{L2DMisses: 0.01, L3AMATNS: 50}
	_, want := p.Evaluate(r)
	if got := p.IPC(r); got != want {
		t.Fatal("IPC wrapper mismatch")
	}
}
