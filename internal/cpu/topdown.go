package cpu

import "fmt"

// CoreParams describes the core microarchitecture constants feeding the
// Top-Down slot-accounting model [Yasin, ISPASS'14] that the paper uses to
// attribute execution slots (Figure 3).
type CoreParams struct {
	// Width is the issue width in slots per cycle (4 for the PLT1-like
	// Haswell core).
	Width int
	// FreqGHz converts nanosecond memory latencies to core cycles.
	FreqGHz float64
	// MispredPenaltyCycles is the pipeline refill cost of a branch
	// misprediction.
	MispredPenaltyCycles float64
	// L2LatencyCycles and L3LatencyCycles are load-to-use latencies of
	// the respective levels.
	L2LatencyCycles, L3LatencyCycles float64
	// MemLatencyNS is the total round-trip main-memory latency (the
	// paper's tMEM).
	MemLatencyNS float64
	// MemOverlap is the fraction of post-L2 stall cycles that actually
	// block the pipeline. The paper's key observation (Figure 8) is that
	// search has so little memory-level parallelism that this stays high.
	MemOverlap float64
	// FEOverlap is the equivalent blocking fraction for instruction-fetch
	// stalls (decoupled front-ends hide part of them).
	FEOverlap float64
	// FEBandwidthCPI is the fixed decode/deliver inefficiency component
	// (Top-Down's "front-end bandwidth").
	FEBandwidthCPI float64
	// CoreStallCPI is the fixed back-end core component (execution-unit
	// contention, dependency serialization).
	CoreStallCPI float64
}

// Validate reports whether the parameters are usable.
func (p CoreParams) Validate() error {
	if p.Width <= 0 {
		return fmt.Errorf("cpu: core width must be positive")
	}
	if p.FreqGHz <= 0 {
		return fmt.Errorf("cpu: core frequency must be positive")
	}
	if p.MemOverlap < 0 || p.MemOverlap > 1 || p.FEOverlap < 0 || p.FEOverlap > 1 {
		return fmt.Errorf("cpu: overlap factors must be in [0,1]")
	}
	return nil
}

// CyclesFromNS converts a latency in nanoseconds to core cycles.
func (p CoreParams) CyclesFromNS(ns float64) float64 { return ns * p.FreqGHz }

// EventRates carries the per-instruction event frequencies measured by the
// cache simulator and branch predictor for one workload.
type EventRates struct {
	// BranchMispredicts is mispredicted branches per instruction.
	BranchMispredicts float64
	// L1IMisses and L2IMisses are instruction-fetch misses per
	// instruction at the L1-I and (unified) L2.
	L1IMisses, L2IMisses float64
	// L1DMisses and L2DMisses are data misses per instruction at the
	// L1-D and L2 (L2DMisses is also the L3 data access rate).
	L1DMisses, L2DMisses float64
	// L3IMisses is instruction fetches per instruction that miss even the
	// L3 and fetch from memory: near zero on adequate L3s (the paper's
	// finding), but the dominant penalty when the shared cache shrinks
	// below the code working set (the "18 MiB floor" of §IV-B).
	L3IMisses float64
	// L3AMATNS is the average post-L2 memory access time in nanoseconds:
	// the paper's AMAT_L3 = h*tL3 + (1-h)*tMEM, optionally extended with
	// an L4 term (internal/model computes it).
	L3AMATNS float64
}

// Breakdown is the first two levels of the Top-Down hierarchy as fractions
// of all issue slots; the six fields sum to 1.
type Breakdown struct {
	Retiring    float64
	BadSpec     float64
	FELatency   float64
	FEBandwidth float64
	BECore      float64
	BEMemory    float64
}

// Sum returns the total of all categories (1.0 up to rounding).
func (b Breakdown) Sum() float64 {
	return b.Retiring + b.BadSpec + b.FELatency + b.FEBandwidth + b.BECore + b.BEMemory
}

// String implements fmt.Stringer.
func (b Breakdown) String() string {
	return fmt.Sprintf("retiring=%.1f%% badspec=%.1f%% fe-lat=%.1f%% fe-bw=%.1f%% be-core=%.1f%% be-mem=%.1f%%",
		100*b.Retiring, 100*b.BadSpec, 100*b.FELatency, 100*b.FEBandwidth, 100*b.BECore, 100*b.BEMemory)
}

// Evaluate runs the slot-accounting model: each event class contributes
// stall cycles per instruction; fractions are cycles relative to total CPI,
// with the retiring share being the ideal-issue component. It returns the
// breakdown and the resulting single-thread IPC.
func (p CoreParams) Evaluate(r EventRates) (Breakdown, float64) {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	w := float64(p.Width)
	cRetire := 1 / w
	cBadSpec := r.BranchMispredicts * p.MispredPenaltyCycles
	memCycles := p.CyclesFromNS(p.MemLatencyNS)
	cFELat := (r.L1IMisses*p.L2LatencyCycles + r.L2IMisses*p.L3LatencyCycles +
		r.L3IMisses*(memCycles-p.L3LatencyCycles)) * p.FEOverlap
	cFEBW := p.FEBandwidthCPI
	cBECore := p.CoreStallCPI
	cBEMem := (r.L1DMisses*p.L2LatencyCycles + r.L2DMisses*p.CyclesFromNS(r.L3AMATNS)) * p.MemOverlap

	cpi := cRetire + cBadSpec + cFELat + cFEBW + cBECore + cBEMem
	bd := Breakdown{
		Retiring:    cRetire / cpi,
		BadSpec:     cBadSpec / cpi,
		FELatency:   cFELat / cpi,
		FEBandwidth: cFEBW / cpi,
		BECore:      cBECore / cpi,
		BEMemory:    cBEMem / cpi,
	}
	return bd, 1 / cpi
}

// IPC is a convenience wrapper returning only the modeled IPC.
func (p CoreParams) IPC(r EventRates) float64 {
	_, ipc := p.Evaluate(r)
	return ipc
}
