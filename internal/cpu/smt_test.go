package cpu

import (
	"math"
	"testing"
)

func TestSMTSpeedupBasics(t *testing.T) {
	m := SMTModel{A: 0.3}
	if m.Speedup(1) != 1 || m.Speedup(0) != 1 {
		t.Fatal("n <= 1 must be speedup 1")
	}
	if m.Speedup(2) <= 1 {
		t.Fatal("SMT-2 should help with modest contention")
	}
	// Diminishing returns: marginal speedup shrinks.
	d1 := m.Speedup(2) - m.Speedup(1)
	d2 := m.Speedup(4) - m.Speedup(2)
	if d2 >= 2*d1 {
		t.Fatalf("no diminishing returns: %v then %v", d1, d2)
	}
}

func TestSMTNeverSuperlinear(t *testing.T) {
	m := SMTModel{A: 0.1, B: 0.01}
	for n := 1; n <= 16; n++ {
		if s := m.Speedup(n); s > float64(n) {
			t.Fatalf("speedup(%d) = %v exceeds n", n, s)
		}
	}
}

func TestFitSMTSinglePoint(t *testing.T) {
	// PLT1: SMT-2 measured at 1.37x.
	m, err := FitSMT(map[int]float64{2: 1.37})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Speedup(2); math.Abs(got-1.37) > 1e-9 {
		t.Fatalf("fit does not reproduce its input: %v", got)
	}
}

func TestFitSMTPaperPLT2(t *testing.T) {
	// PLT2: SMT-2 = 1.76x, SMT-8 = 3.24x (the paper's POWER8 numbers).
	m, err := FitSMT(map[int]float64{2: 1.76, 8: 3.24})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Speedup(2); math.Abs(got-1.76) > 0.02 {
		t.Fatalf("SMT-2 = %v, want 1.76", got)
	}
	if got := m.Speedup(8); math.Abs(got-3.24) > 0.05 {
		t.Fatalf("SMT-8 = %v, want 3.24", got)
	}
	// SMT-4 must fall between, with diminishing returns.
	s4 := m.Speedup(4)
	if s4 <= m.Speedup(2) || s4 >= m.Speedup(8) {
		t.Fatalf("SMT-4 = %v not between SMT-2 and SMT-8", s4)
	}
}

func TestFitSMTErrors(t *testing.T) {
	if _, err := FitSMT(nil); err == nil {
		t.Fatal("empty fit accepted")
	}
	if _, err := FitSMT(map[int]float64{1: 1.0}); err == nil {
		t.Fatal("n=1-only fit accepted")
	}
}

func TestSMTValidate(t *testing.T) {
	if err := (SMTModel{A: -1}).Validate(); err == nil {
		t.Fatal("negative A accepted")
	}
	if err := (SMTModel{A: 0.2, B: 0.01}).Validate(); err != nil {
		t.Fatal(err)
	}
}
