package cpu

import (
	"fmt"

	"searchmem/internal/cache"
	"searchmem/internal/trace"
)

// TLBConfig describes a two-level TLB for one page size. The huge-page
// experiment (Figure 2c) compares 4 KiB against 2 MiB pages on the
// PLT1-like platform and 64 KiB against 16 MiB pages on the PLT2-like one.
type TLBConfig struct {
	// PageSize in bytes; must be a power of two.
	PageSize int
	// L1Entries/L1Assoc describe the first-level TLB.
	L1Entries, L1Assoc int
	// L2Entries/L2Assoc describe the second-level (shared) TLB.
	L2Entries, L2Assoc int
	// WalkLatencyNS is the page-table walk cost on a full TLB miss.
	WalkLatencyNS float64
	// L2LatencyNS is the extra cost of an L1-miss/L2-hit translation.
	L2LatencyNS float64
}

// Validate reports whether the TLB configuration is consistent.
func (c TLBConfig) Validate() error {
	if c.PageSize <= 0 || c.PageSize&(c.PageSize-1) != 0 {
		return fmt.Errorf("cpu: TLB page size %d must be a positive power of two", c.PageSize)
	}
	if c.L1Entries <= 0 || c.L2Entries <= 0 {
		return fmt.Errorf("cpu: TLB entry counts must be positive")
	}
	if c.L1Assoc <= 0 || c.L1Assoc > c.L1Entries || c.L1Entries%c.L1Assoc != 0 {
		return fmt.Errorf("cpu: bad L1 TLB associativity %d for %d entries", c.L1Assoc, c.L1Entries)
	}
	if c.L2Assoc <= 0 || c.L2Assoc > c.L2Entries || c.L2Entries%c.L2Assoc != 0 {
		return fmt.Errorf("cpu: bad L2 TLB associativity %d for %d entries", c.L2Assoc, c.L2Entries)
	}
	return nil
}

// TLB is a functional two-level translation lookaside buffer. Entries are
// modeled with the cache package: one "block" per page.
type TLB struct {
	cfg TLBConfig
	l1  *cache.Cache
	l2  *cache.Cache

	// L1Hits, L2Hits, and Walks partition all translations.
	L1Hits, L2Hits, Walks int64
}

// NewTLB builds a TLB; it panics on an invalid configuration.
func NewTLB(cfg TLBConfig) *TLB {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	mk := func(entries, assoc int, name string) *cache.Cache {
		return cache.New(cache.Config{
			Name:      name,
			Size:      int64(entries) * int64(cfg.PageSize),
			BlockSize: cfg.PageSize,
			Assoc:     assoc,
		})
	}
	return &TLB{
		cfg: cfg,
		l1:  mk(cfg.L1Entries, cfg.L1Assoc, "TLB-L1"),
		l2:  mk(cfg.L2Entries, cfg.L2Assoc, "TLB-L2"),
	}
}

// Config returns the TLB's configuration.
func (t *TLB) Config() TLBConfig { return t.cfg }

// Translate looks up vaddr and returns the translation latency in
// nanoseconds (0 for an L1 hit).
func (t *TLB) Translate(vaddr uint64) float64 {
	page := t.l1.BlockAddr(vaddr)
	if t.l1.Access(page, trace.Heap, trace.Read) {
		t.L1Hits++
		return 0
	}
	if t.l2.Access(page, trace.Heap, trace.Read) {
		t.L2Hits++
		t.l1.Fill(page, trace.Heap, false)
		return t.cfg.L2LatencyNS
	}
	t.Walks++
	t.l2.Fill(page, trace.Heap, false)
	t.l1.Fill(page, trace.Heap, false)
	return t.cfg.WalkLatencyNS
}

// Translations returns the total number of lookups.
func (t *TLB) Translations() int64 { return t.L1Hits + t.L2Hits + t.Walks }

// WalkRate returns the fraction of translations requiring a page walk.
func (t *TLB) WalkRate() float64 {
	n := t.Translations()
	if n == 0 {
		return 0
	}
	return float64(t.Walks) / float64(n)
}

// AvgLatencyNS returns the mean translation overhead per lookup.
func (t *TLB) AvgLatencyNS() float64 {
	n := t.Translations()
	if n == 0 {
		return 0
	}
	total := float64(t.L2Hits)*t.cfg.L2LatencyNS + float64(t.Walks)*t.cfg.WalkLatencyNS
	return total / float64(n)
}

// Reset clears contents and statistics.
func (t *TLB) Reset() {
	t.l1.Reset()
	t.l2.Reset()
	t.L1Hits, t.L2Hits, t.Walks = 0, 0, 0
}
