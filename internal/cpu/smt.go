package cpu

import (
	"fmt"

	"searchmem/internal/det"
	"searchmem/internal/stats"
)

// SMTModel predicts the throughput speedup of running n hardware threads on
// one core relative to one thread.
//
// Additional threads fill the issue slots a single thread wastes on stalls
// (Figure 3 shows 68% of slots are wasted), but they also contend for
// private caches, fetch bandwidth and execution units. The model captures
// this with a quadratic contention denominator:
//
//	speedup(n) = n / (1 + A*(n-1) + B*(n-1)^2)
//
// A is first-order resource contention; B grows with thread count and
// captures saturation. The platform presets in internal/platform are
// calibrated against the paper's measurements (PLT1 SMT-2 = 1.37x; PLT2
// SMT-2 = 1.76x and SMT-8 = 3.24x).
type SMTModel struct {
	A, B float64
}

// Speedup returns the modeled throughput ratio of n threads vs 1.
// n <= 1 returns 1.
func (m SMTModel) Speedup(n int) float64 {
	if n <= 1 {
		return 1
	}
	k := float64(n - 1)
	return float64(n) / (1 + m.A*k + m.B*k*k)
}

// Validate reports whether the model is physically sensible (speedup must
// not be negative or exceed n).
func (m SMTModel) Validate() error {
	if m.A < 0 || m.B < 0 {
		return fmt.Errorf("cpu: SMT contention coefficients must be non-negative")
	}
	return nil
}

// FitSMT calibrates an SMTModel from measured (threads, speedup) points.
// With one point B is fixed at 0; with two or more points A and B are
// solved by least squares on the linearized form
//
//	n/speedup - 1 = A*(n-1) + B*(n-1)^2.
func FitSMT(points map[int]float64) (SMTModel, error) {
	type obs struct{ k, y float64 }
	var data []obs
	// Sorted iteration keeps the least-squares float sums below
	// bit-identical run-to-run (map order would perturb their low bits).
	for _, n := range det.SortedKeys(points) {
		sp := points[n]
		if n < 2 || sp <= 0 {
			continue
		}
		k := float64(n - 1)
		data = append(data, obs{k: k, y: float64(n)/sp - 1})
	}
	switch len(data) {
	case 0:
		return SMTModel{}, fmt.Errorf("cpu: FitSMT needs at least one point with n >= 2")
	case 1:
		return SMTModel{A: data[0].y / data[0].k}, nil
	}
	// Least squares for y = A*k + B*k^2 (no intercept).
	var s11, s12, s22, b1, b2 float64
	for _, d := range data {
		s11 += d.k * d.k
		s12 += d.k * d.k * d.k
		s22 += d.k * d.k * d.k * d.k
		b1 += d.k * d.y
		b2 += d.k * d.k * d.y
	}
	det := s11*s22 - s12*s12
	if det == 0 {
		return SMTModel{}, stats.ErrDegenerate
	}
	a := (b1*s22 - b2*s12) / det
	b := (b2*s11 - b1*s12) / det
	if a < 0 {
		a = 0
	}
	if b < 0 {
		b = 0
	}
	return SMTModel{A: a, B: b}, nil
}
