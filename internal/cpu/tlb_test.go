package cpu

import (
	"math"
	"testing"

	"searchmem/internal/stats"
)

func tlb4K() TLBConfig {
	return TLBConfig{
		PageSize:  4 << 10,
		L1Entries: 64, L1Assoc: 4,
		L2Entries: 1536, L2Assoc: 6,
		WalkLatencyNS: 30,
		L2LatencyNS:   3,
	}
}

func TestTLBValidate(t *testing.T) {
	bad := []TLBConfig{
		{PageSize: 0},
		{PageSize: 3000, L1Entries: 64, L1Assoc: 4, L2Entries: 64, L2Assoc: 4},
		{PageSize: 4096, L1Entries: 0, L1Assoc: 4, L2Entries: 64, L2Assoc: 4},
		{PageSize: 4096, L1Entries: 64, L1Assoc: 5, L2Entries: 64, L2Assoc: 4},
		{PageSize: 4096, L1Entries: 64, L1Assoc: 4, L2Entries: 64, L2Assoc: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := tlb4K().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTLBHitPath(t *testing.T) {
	tlb := NewTLB(tlb4K())
	if lat := tlb.Translate(0x1000); lat != 30 {
		t.Fatalf("cold translation latency %v, want walk (30)", lat)
	}
	if lat := tlb.Translate(0x1008); lat != 0 {
		t.Fatalf("same-page translation latency %v, want 0", lat)
	}
	if tlb.L1Hits != 1 || tlb.Walks != 1 {
		t.Fatalf("counters: %+v", tlb)
	}
}

func TestTLBL2Path(t *testing.T) {
	tlb := NewTLB(tlb4K())
	// Touch enough pages to overflow the 64-entry L1 but stay in L2,
	// then revisit the first page.
	for p := uint64(0); p < 512; p++ {
		tlb.Translate(p << 12)
	}
	lat := tlb.Translate(0)
	if lat != 3 {
		t.Fatalf("L2 hit latency %v, want 3", lat)
	}
	if tlb.L2Hits == 0 {
		t.Fatal("no L2 hits recorded")
	}
}

func TestHugePagesCutWalks(t *testing.T) {
	// The Figure 2c experiment in miniature: a large random working set
	// causes frequent walks at 4 KiB pages and nearly none at 2 MiB.
	run := func(pageSize int) float64 {
		cfg := tlb4K()
		cfg.PageSize = pageSize
		tlb := NewTLB(cfg)
		rng := stats.NewRNG(7)
		const footprint = 1 << 30 // 1 GiB
		for i := 0; i < 100000; i++ {
			tlb.Translate(rng.Uint64n(footprint))
		}
		return tlb.WalkRate()
	}
	small, huge := run(4<<10), run(2<<20)
	if huge >= small {
		t.Fatalf("huge pages did not reduce walk rate: %v vs %v", huge, small)
	}
	if small < 0.5 {
		t.Fatalf("4K walk rate %v suspiciously low for 1 GiB random set", small)
	}
	if huge > 0.1 {
		t.Fatalf("2M walk rate %v too high (512 pages fit in the TLB)", huge)
	}
}

func TestTLBAvgLatency(t *testing.T) {
	tlb := NewTLB(tlb4K())
	tlb.Translate(0) // walk: 30
	tlb.Translate(0) // L1 hit: 0
	want := 15.0
	if got := tlb.AvgLatencyNS(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("avg latency %v, want %v", got, want)
	}
	if tlb.Translations() != 2 {
		t.Fatalf("translations %d", tlb.Translations())
	}
}

func TestTLBReset(t *testing.T) {
	tlb := NewTLB(tlb4K())
	tlb.Translate(0)
	tlb.Reset()
	if tlb.Translations() != 0 || tlb.WalkRate() != 0 || tlb.AvgLatencyNS() != 0 {
		t.Fatal("reset incomplete")
	}
	if lat := tlb.Translate(0); lat != 30 {
		t.Fatal("contents survived reset")
	}
}

func TestTLBPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid TLB config accepted")
		}
	}()
	NewTLB(TLBConfig{})
}
