// Package cpu models the core-side microarchitecture: branch predictors,
// TLBs, hardware prefetchers, the Top-Down slot-accounting model used for
// Figure 3, and the SMT throughput model used for Figure 2b.
//
// The cache hierarchy itself lives in internal/cache; this package supplies
// everything the paper measures with core performance counters.
package cpu

import (
	"fmt"
)

// Branch is one dynamic conditional branch: its instruction address and
// whether it was taken. The synthetic code generator (internal/codegen)
// emits these alongside the instruction-fetch trace.
type Branch struct {
	PC    uint64
	Taken bool
}

// Predictor is a conditional branch direction predictor.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the resolved direction.
	Update(pc uint64, taken bool)
	// Name identifies the predictor in reports.
	Name() string
}

// PredictorStats drives a predictor over a branch stream and accumulates
// accuracy statistics.
type PredictorStats struct {
	P                        Predictor
	Predictions, Mispredicts int64
}

// Observe processes one branch and reports whether it mispredicted, so
// per-branch observers (the obs sampling profiler) can attribute outcomes
// without a second prediction pass.
func (s *PredictorStats) Observe(b Branch) bool {
	pred := s.P.Predict(b.PC)
	mispredict := pred != b.Taken
	if mispredict {
		s.Mispredicts++
	}
	s.Predictions++
	s.P.Update(b.PC, b.Taken)
	return mispredict
}

// MPKI returns mispredictions per kilo-instruction.
func (s *PredictorStats) MPKI(instructions int64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(instructions) * 1000
}

// Accuracy returns the fraction of correct predictions.
func (s *PredictorStats) Accuracy() float64 {
	if s.Predictions == 0 {
		return 0
	}
	return 1 - float64(s.Mispredicts)/float64(s.Predictions)
}

// counter2 is a saturating 2-bit counter: 0-1 predict not-taken, 2-3 taken.
type counter2 = uint8

func counterPredict(c counter2) bool { return c >= 2 }

func counterUpdate(c counter2, taken bool) counter2 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Bimodal is a classic per-PC 2-bit counter table.
type Bimodal struct {
	table []counter2
	mask  uint64
}

// NewBimodal returns a bimodal predictor with 2^bits entries.
func NewBimodal(bits uint) *Bimodal {
	if bits == 0 || bits > 24 {
		panic(fmt.Sprintf("cpu: bimodal bits %d out of range (1-24)", bits))
	}
	n := uint64(1) << bits
	t := make([]counter2, n)
	for i := range t {
		t[i] = 2 // weakly taken, the conventional reset state
	}
	return &Bimodal{table: t, mask: n - 1}
}

// Name implements Predictor.
func (b *Bimodal) Name() string { return "bimodal" }

// Predict implements Predictor.
func (b *Bimodal) Predict(pc uint64) bool {
	return counterPredict(b.table[(pc>>2)&b.mask])
}

// Update implements Predictor.
func (b *Bimodal) Update(pc uint64, taken bool) {
	idx := (pc >> 2) & b.mask
	b.table[idx] = counterUpdate(b.table[idx], taken)
}

// Gshare XORs global branch history with the PC to index a shared 2-bit
// counter table: the workhorse predictor class of the platforms the paper
// measures.
type Gshare struct {
	table   []counter2
	mask    uint64
	history uint64
}

// NewGshare returns a gshare predictor with 2^bits entries and bits of
// global history.
func NewGshare(bits uint) *Gshare {
	if bits == 0 || bits > 24 {
		panic(fmt.Sprintf("cpu: gshare bits %d out of range (1-24)", bits))
	}
	n := uint64(1) << bits
	t := make([]counter2, n)
	for i := range t {
		t[i] = 2
	}
	return &Gshare{table: t, mask: n - 1}
}

// Name implements Predictor.
func (g *Gshare) Name() string { return "gshare" }

func (g *Gshare) index(pc uint64) uint64 {
	return ((pc >> 2) ^ g.history) & g.mask
}

// Predict implements Predictor.
func (g *Gshare) Predict(pc uint64) bool {
	return counterPredict(g.table[g.index(pc)])
}

// Update implements Predictor.
func (g *Gshare) Update(pc uint64, taken bool) {
	idx := g.index(pc)
	g.table[idx] = counterUpdate(g.table[idx], taken)
	g.history <<= 1
	if taken {
		g.history |= 1
	}
	g.history &= g.mask
}

// Tournament combines a bimodal and a gshare predictor with a per-PC
// chooser, as in Alpha 21264-class designs.
type Tournament struct {
	bimodal *Bimodal
	gshare  *Gshare
	chooser []counter2 // >= 2 selects gshare
	mask    uint64
}

// NewTournament returns a tournament predictor; each component table has
// 2^bits entries.
func NewTournament(bits uint) *Tournament {
	n := uint64(1) << bits
	ch := make([]counter2, n)
	for i := range ch {
		ch[i] = 2
	}
	return &Tournament{
		bimodal: NewBimodal(bits),
		gshare:  NewGshare(bits),
		chooser: ch,
		mask:    n - 1,
	}
}

// Name implements Predictor.
func (t *Tournament) Name() string { return "tournament" }

// Predict implements Predictor.
func (t *Tournament) Predict(pc uint64) bool {
	if counterPredict(t.chooser[(pc>>2)&t.mask]) {
		return t.gshare.Predict(pc)
	}
	return t.bimodal.Predict(pc)
}

// Update implements Predictor.
func (t *Tournament) Update(pc uint64, taken bool) {
	bp := t.bimodal.Predict(pc)
	gp := t.gshare.Predict(pc)
	idx := (pc >> 2) & t.mask
	// Train the chooser toward whichever component was right.
	if bp != gp {
		t.chooser[idx] = counterUpdate(t.chooser[idx], gp == taken)
	}
	t.bimodal.Update(pc, taken)
	t.gshare.Update(pc, taken)
}

// StaticTaken always predicts taken; a lower bound useful in tests and
// ablations.
type StaticTaken struct{}

// Name implements Predictor.
func (StaticTaken) Name() string { return "static-taken" }

// Predict implements Predictor.
func (StaticTaken) Predict(uint64) bool { return true }

// Update implements Predictor.
func (StaticTaken) Update(uint64, bool) {}
