package cpu

import (
	"searchmem/internal/cache"
	"searchmem/internal/trace"
)

// Prefetcher inspects the demand-access stream and proposes block addresses
// to bring into the cache ahead of use. PLT1-like platforms enable a
// next/adjacent-line pair plus an L2 streamer (§II-E); the reproduction
// models both families.
type Prefetcher interface {
	// OnAccess observes one demand access (block-aligned byte address and
	// whether it hit in the L1) and appends prefetch candidate byte
	// addresses to out, returning the extended slice.
	OnAccess(byteAddr uint64, hit bool, out []uint64) []uint64
	// Name identifies the prefetcher in reports.
	Name() string
}

// NextLine prefetches the sequentially next block(s): the simplest spatial
// prefetcher (the "adjacent line" L2 prefetcher on PLT1). With OnEveryAccess
// set it fires on hits too and runs Degree blocks deep, modeling
// aggressive-default engines like POWER8's, whose useless fills pollute the
// caches and waste bandwidth (the paper measures a net degradation there).
type NextLine struct {
	// BlockSize is the prefetch granularity in bytes.
	BlockSize uint64
	// Degree is how many sequential blocks to fetch (0 = 1).
	Degree int
	// OnEveryAccess fires on hits as well as misses.
	OnEveryAccess bool
}

// Name implements Prefetcher.
func (NextLine) Name() string { return "next-line" }

// OnAccess implements Prefetcher.
func (p NextLine) OnAccess(byteAddr uint64, hit bool, out []uint64) []uint64 {
	if hit && !p.OnEveryAccess {
		return out
	}
	degree := p.Degree
	if degree <= 0 {
		degree = 1
	}
	for i := 1; i <= degree; i++ {
		out = append(out, byteAddr+uint64(i)*p.BlockSize)
	}
	return out
}

// AdjacentLine fetches the other half of an aligned block pair on a miss:
// the L2 "adjacent line" (buddy/pair) prefetcher of PLT1, distinct from
// NextLine in that it never crosses the pair boundary and so cannot run
// ahead of a stream.
type AdjacentLine struct {
	// BlockSize is the line size in bytes.
	BlockSize uint64
}

// Name implements Prefetcher.
func (AdjacentLine) Name() string { return "adjacent-line" }

// OnAccess implements Prefetcher.
func (p AdjacentLine) OnAccess(byteAddr uint64, hit bool, out []uint64) []uint64 {
	if hit {
		return out
	}
	return append(out, byteAddr^p.BlockSize) // buddy line within the aligned pair
}

// streamEntry tracks one detected sequential stream.
type streamEntry struct {
	lastBlock uint64
	dir       int64 // +1 ascending, -1 descending
	conf      int8  // confirmations observed
}

// Stream is a stride/stream prefetcher: it watches per-region access
// patterns and, after two same-direction sequential accesses, runs ahead of
// the stream by Degree blocks. Posting-list scans through the shard segment
// are exactly the pattern it accelerates.
type Stream struct {
	// BlockSize is the prefetch granularity in bytes.
	BlockSize uint64
	// RegionShift groups addresses into tracking regions (default 12, a
	// 4 KiB page, set by NewStream).
	RegionShift uint
	// Degree is how many blocks ahead to prefetch once a stream is
	// confirmed.
	Degree int
	// MaxEntries bounds the tracking table.
	MaxEntries int

	table map[uint64]*streamEntry
	order []uint64 // FIFO of region keys for eviction
}

// NewStream returns a stream prefetcher with conventional parameters.
func NewStream(blockSize uint64, degree int) *Stream {
	return &Stream{
		BlockSize:   blockSize,
		RegionShift: 12,
		Degree:      degree,
		MaxEntries:  64,
		table:       make(map[uint64]*streamEntry),
	}
}

// Name implements Prefetcher.
func (s *Stream) Name() string { return "stream" }

// OnAccess implements Prefetcher.
func (s *Stream) OnAccess(byteAddr uint64, hit bool, out []uint64) []uint64 {
	block := byteAddr / s.BlockSize
	region := byteAddr >> s.RegionShift
	e, ok := s.table[region]
	if !ok {
		if len(s.table) >= s.MaxEntries {
			// Evict the oldest tracked region.
			oldest := s.order[0]
			s.order = s.order[1:]
			delete(s.table, oldest)
		}
		s.table[region] = &streamEntry{lastBlock: block}
		s.order = append(s.order, region)
		return out
	}
	switch {
	case block == e.lastBlock+1:
		if e.dir == 1 {
			if e.conf < 8 {
				e.conf++
			}
		} else {
			e.dir, e.conf = 1, 1
		}
	case block+1 == e.lastBlock:
		if e.dir == -1 {
			if e.conf < 8 {
				e.conf++
			}
		} else {
			e.dir, e.conf = -1, 1
		}
	case block == e.lastBlock:
		return out // same block; no new information
	default:
		e.conf = 0 // stream broken
	}
	e.lastBlock = block
	if e.conf >= 2 {
		for i := 1; i <= s.Degree; i++ {
			next := int64(block) + e.dir*int64(i)
			if next > 0 {
				out = append(out, uint64(next)*s.BlockSize)
			}
		}
	}
	return out
}

// Engine couples one or more prefetchers per core with a cache hierarchy:
// demand accesses flow through the hierarchy, prefetch candidates are
// installed via InstallPrefetch.
type Engine struct {
	h       *cache.Hierarchy
	perCore [][]Prefetcher
	scratch []uint64
	// Issued counts prefetch candidates proposed (before dedup in the
	// hierarchy install path).
	Issued int64
}

// NewEngine builds an engine; newPrefetchers is invoked once per core so
// each core gets private prefetcher state.
func NewEngine(h *cache.Hierarchy, cores int, newPrefetchers func() []Prefetcher) *Engine {
	e := &Engine{h: h}
	for i := 0; i < cores; i++ {
		e.perCore = append(e.perCore, newPrefetchers())
	}
	return e
}

// Access runs one access through the hierarchy with prefetching and returns
// the demand access's servicing level.
func (e *Engine) Access(a trace.Access) cache.HitLevel {
	core := int(a.Thread) / e.h.Config().ThreadsPerCore % e.h.Config().Cores
	lvl := e.h.Access(a)
	if a.Kind == trace.Fetch {
		return lvl // modeled prefetchers are data-side
	}
	e.scratch = e.scratch[:0]
	for _, p := range e.perCore[core] {
		e.scratch = p.OnAccess(a.Addr, lvl == cache.HitL1, e.scratch)
	}
	for _, addr := range e.scratch {
		e.Issued++
		e.h.InstallPrefetch(core, addr, a.Seg)
	}
	return lvl
}

// Drain runs an entire stream through the engine.
func (e *Engine) Drain(s trace.Stream) {
	var a trace.Access
	for s.Next(&a) {
		e.Access(a)
	}
}
