package cpu

import (
	"testing"

	"searchmem/internal/stats"
)

func TestBimodalLearnsBias(t *testing.T) {
	p := NewBimodal(12)
	s := PredictorStats{P: p}
	// A branch taken 100% of the time must be learned almost perfectly.
	for i := 0; i < 1000; i++ {
		s.Observe(Branch{PC: 0x400100, Taken: true})
	}
	if s.Accuracy() < 0.99 {
		t.Fatalf("bimodal accuracy on constant branch: %v", s.Accuracy())
	}
}

func TestBimodalAlternatingIsHard(t *testing.T) {
	p := NewBimodal(12)
	s := PredictorStats{P: p}
	// Strict alternation defeats a 2-bit counter (~50% accuracy).
	for i := 0; i < 2000; i++ {
		s.Observe(Branch{PC: 0x400100, Taken: i%2 == 0})
	}
	if s.Accuracy() > 0.7 {
		t.Fatalf("bimodal should not learn alternation, accuracy %v", s.Accuracy())
	}
}

func TestGshareLearnsAlternation(t *testing.T) {
	p := NewGshare(12)
	s := PredictorStats{P: p}
	for i := 0; i < 4000; i++ {
		s.Observe(Branch{PC: 0x400100, Taken: i%2 == 0})
	}
	if s.Accuracy() < 0.95 {
		t.Fatalf("gshare should learn alternation via history, accuracy %v", s.Accuracy())
	}
}

func TestGshareLearnsShortPattern(t *testing.T) {
	p := NewGshare(14)
	s := PredictorStats{P: p}
	pattern := []bool{true, true, false, true, false, false}
	for i := 0; i < 12000; i++ {
		s.Observe(Branch{PC: 0x7f0040, Taken: pattern[i%len(pattern)]})
	}
	if s.Accuracy() < 0.9 {
		t.Fatalf("gshare accuracy on periodic pattern: %v", s.Accuracy())
	}
}

func TestPredictorsOnRandomBranches(t *testing.T) {
	// Data-dependent (random) branches bound every predictor near the
	// base rate — this is what gives search its high branch MPKI.
	rng := stats.NewRNG(5)
	outcomes := make([]bool, 20000)
	for i := range outcomes {
		outcomes[i] = rng.Bool(0.5)
	}
	for _, p := range []Predictor{NewBimodal(12), NewGshare(12), NewTournament(12)} {
		s := PredictorStats{P: p}
		rng2 := stats.NewRNG(9)
		for _, taken := range outcomes {
			pc := 0x400000 + rng2.Uint64n(64)*4
			s.Observe(Branch{PC: pc, Taken: taken})
		}
		if s.Accuracy() > 0.6 {
			t.Fatalf("%s cannot beat 60%% on random outcomes, got %v", p.Name(), s.Accuracy())
		}
	}
}

func TestTournamentAtLeastAsGoodAsComponents(t *testing.T) {
	// On a mix of biased and history-correlated branches the tournament
	// should approach the better component per branch.
	run := func(p Predictor) float64 {
		s := PredictorStats{P: p}
		for i := 0; i < 20000; i++ {
			// Branch A: strongly biased. Branch B: alternating.
			s.Observe(Branch{PC: 0x1000, Taken: true})
			s.Observe(Branch{PC: 0x2000, Taken: i%2 == 0})
		}
		return s.Accuracy()
	}
	tourn := run(NewTournament(12))
	bim := run(NewBimodal(12))
	if tourn < bim {
		t.Fatalf("tournament (%v) worse than bimodal (%v)", tourn, bim)
	}
	if tourn < 0.9 {
		t.Fatalf("tournament accuracy %v on mixed workload", tourn)
	}
}

func TestStaticTaken(t *testing.T) {
	s := PredictorStats{P: StaticTaken{}}
	s.Observe(Branch{PC: 1, Taken: true})
	s.Observe(Branch{PC: 1, Taken: false})
	if s.Mispredicts != 1 || s.Predictions != 2 {
		t.Fatalf("static stats: %+v", s)
	}
	if (StaticTaken{}).Name() != "static-taken" {
		t.Fatal("name")
	}
}

func TestMPKIComputation(t *testing.T) {
	s := PredictorStats{P: StaticTaken{}}
	for i := 0; i < 10; i++ {
		s.Observe(Branch{PC: 1, Taken: false}) // all mispredict
	}
	if got := s.MPKI(1000); got != 10 {
		t.Fatalf("MPKI = %v, want 10", got)
	}
	if s.MPKI(0) != 0 {
		t.Fatal("zero instructions must give MPKI 0")
	}
}

func TestPredictorPanicsOnBadBits(t *testing.T) {
	for _, f := range []func(){
		func() { NewBimodal(0) },
		func() { NewBimodal(30) },
		func() { NewGshare(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestAccuracyEmpty(t *testing.T) {
	s := PredictorStats{P: StaticTaken{}}
	if s.Accuracy() != 0 {
		t.Fatal("empty accuracy must be 0")
	}
}

func TestPredictorNames(t *testing.T) {
	if NewBimodal(4).Name() != "bimodal" || NewGshare(4).Name() != "gshare" || NewTournament(4).Name() != "tournament" {
		t.Fatal("predictor names wrong")
	}
}
