package cpu

import (
	"testing"

	"searchmem/internal/cache"
	"searchmem/internal/stats"
	"searchmem/internal/trace"
)

func TestNextLineOnMissOnly(t *testing.T) {
	p := NextLine{BlockSize: 64}
	out := p.OnAccess(128, true, nil)
	if len(out) != 0 {
		t.Fatal("next-line prefetched on a hit")
	}
	out = p.OnAccess(128, false, nil)
	if len(out) != 1 || out[0] != 192 {
		t.Fatalf("next-line candidates: %v", out)
	}
}

func TestStreamDetectsAscending(t *testing.T) {
	p := NewStream(64, 2)
	var got []uint64
	for b := uint64(0); b < 8; b++ {
		got = p.OnAccess(b*64, false, got[:0])
	}
	// After two confirmations the stream issues 2-ahead prefetches.
	if len(got) != 2 {
		t.Fatalf("confirmed stream issued %d candidates, want 2: %v", len(got), got)
	}
	if got[0] != 8*64 || got[1] != 9*64 {
		t.Fatalf("candidates %v, want next blocks", got)
	}
}

func TestStreamDetectsDescending(t *testing.T) {
	p := NewStream(64, 1)
	var got []uint64
	for b := uint64(100); b > 90; b-- {
		got = p.OnAccess(b*64, false, got[:0])
	}
	if len(got) != 1 || got[0] != 90*64 {
		t.Fatalf("descending candidates %v", got)
	}
}

func TestStreamBrokenPatternStops(t *testing.T) {
	p := NewStream(64, 2)
	var out []uint64
	p.OnAccess(0, false, nil)
	p.OnAccess(64, false, nil)
	p.OnAccess(128, false, nil) // confirmed
	out = p.OnAccess(64*40, false, nil)
	if len(out) != 0 {
		t.Fatalf("broken stream still prefetching: %v", out)
	}
}

func TestStreamSameBlockNoInfo(t *testing.T) {
	p := NewStream(64, 2)
	p.OnAccess(0, false, nil)
	p.OnAccess(64, false, nil)
	p.OnAccess(128, false, nil)
	out := p.OnAccess(128, false, nil) // repeat same block
	if len(out) != 0 {
		t.Fatal("same-block access issued prefetches")
	}
	// Stream must still be alive afterwards.
	out = p.OnAccess(192, false, nil)
	if len(out) == 0 {
		t.Fatal("stream lost after same-block access")
	}
}

func TestStreamTableEviction(t *testing.T) {
	p := NewStream(64, 1)
	p.MaxEntries = 4
	// Touch 10 distinct regions; the table must stay bounded.
	for r := uint64(0); r < 10; r++ {
		p.OnAccess(r<<12, false, nil)
	}
	if len(p.table) > 4 {
		t.Fatalf("table grew to %d entries", len(p.table))
	}
}

func TestEngineImprovesSequentialScan(t *testing.T) {
	// A shard-like sequential scan: with a stream prefetcher the L2 should
	// service most demand accesses that would otherwise go to memory.
	mkHier := func() *cache.Hierarchy {
		return cache.NewHierarchy(cache.HierarchyConfig{
			Cores: 1, ThreadsPerCore: 1,
			L1I: cache.Config{Size: 1 << 10, BlockSize: 64, Assoc: 2},
			L1D: cache.Config{Size: 1 << 10, BlockSize: 64, Assoc: 2},
			L2:  cache.Config{Size: 8 << 10, BlockSize: 64, Assoc: 4},
			L3:  cache.Config{Size: 32 << 10, BlockSize: 64, Assoc: 8},
		})
	}
	scan := func() []trace.Access {
		var accs []trace.Access
		for i := uint64(0); i < 4096; i++ {
			accs = append(accs, trace.Access{Addr: 1<<30 + i*64, Size: 8, Seg: trace.Shard, Kind: trace.Read})
		}
		return accs
	}

	base := mkHier()
	base.Drain(trace.NewSliceStream(scan()))
	baseMemStalls := base.MemReads

	pfH := mkHier()
	eng := NewEngine(pfH, 1, func() []Prefetcher {
		return []Prefetcher{NewStream(64, 4)}
	})
	eng.Drain(trace.NewSliceStream(scan()))

	// Demand misses reaching memory must drop sharply: most lines arrive
	// via prefetch before the demand access.
	demandMem := pfH.MemReads - pfH.PrefetchMemReads
	if demandMem >= baseMemStalls/2 {
		t.Fatalf("prefetching left %d demand memory reads (baseline %d)", demandMem, baseMemStalls)
	}
	if eng.Issued == 0 || pfH.PrefetchFills == 0 {
		t.Fatal("engine issued no prefetches")
	}
}

func TestEnginePollutionOnRandom(t *testing.T) {
	// On a random stream, prefetching must not reduce demand accuracy much
	// but must cost extra bandwidth — the PLT2 degradation mechanism.
	mkHier := func() *cache.Hierarchy {
		return cache.NewHierarchy(cache.HierarchyConfig{
			Cores: 1, ThreadsPerCore: 1,
			L1I: cache.Config{Size: 1 << 10, BlockSize: 64, Assoc: 2},
			L1D: cache.Config{Size: 1 << 10, BlockSize: 64, Assoc: 2},
			L2:  cache.Config{Size: 8 << 10, BlockSize: 64, Assoc: 4},
			L3:  cache.Config{Size: 32 << 10, BlockSize: 64, Assoc: 8},
		})
	}
	randTrace := func() []trace.Access {
		rng := stats.NewRNG(3)
		var accs []trace.Access
		for i := 0; i < 8000; i++ {
			accs = append(accs, trace.Access{Addr: rng.Uint64n(1 << 24), Size: 8, Seg: trace.Heap, Kind: trace.Read})
		}
		return accs
	}
	h := mkHier()
	eng := NewEngine(h, 1, func() []Prefetcher { return []Prefetcher{NextLine{BlockSize: 64}} })
	eng.Drain(trace.NewSliceStream(randTrace()))
	if h.PrefetchMemReads == 0 {
		t.Fatal("random stream issued no wasted prefetch bandwidth")
	}
}

func TestEngineIgnoresFetches(t *testing.T) {
	h := cache.NewHierarchy(cache.HierarchyConfig{
		Cores: 1, ThreadsPerCore: 1,
		L1I: cache.Config{Size: 1 << 10, BlockSize: 64, Assoc: 2},
		L1D: cache.Config{Size: 1 << 10, BlockSize: 64, Assoc: 2},
		L2:  cache.Config{Size: 8 << 10, BlockSize: 64, Assoc: 4},
		L3:  cache.Config{Size: 32 << 10, BlockSize: 64, Assoc: 8},
	})
	eng := NewEngine(h, 1, func() []Prefetcher { return []Prefetcher{NextLine{BlockSize: 64}} })
	for i := uint64(0); i < 100; i++ {
		eng.Access(trace.Access{Addr: i * 64, Size: 4, Seg: trace.Code, Kind: trace.Fetch})
	}
	if eng.Issued != 0 {
		t.Fatal("data prefetcher fired on instruction fetches")
	}
}

func TestPrefetcherNames(t *testing.T) {
	if (NextLine{}).Name() != "next-line" || NewStream(64, 1).Name() != "stream" {
		t.Fatal("prefetcher names wrong")
	}
}

func TestAdjacentLineBuddy(t *testing.T) {
	p := AdjacentLine{BlockSize: 64}
	if out := p.OnAccess(0, false, nil); len(out) != 1 || out[0] != 64 {
		t.Fatalf("even line buddy: %v", out)
	}
	if out := p.OnAccess(64, false, nil); len(out) != 1 || out[0] != 0 {
		t.Fatalf("odd line buddy: %v", out)
	}
	// Pair-bounded: the buddy of line 2 is line 3, never line 4.
	if out := p.OnAccess(128, false, nil); out[0] != 192 {
		t.Fatalf("pair boundary crossed: %v", out)
	}
	if out := p.OnAccess(128, true, nil); len(out) != 0 {
		t.Fatal("adjacent-line fired on a hit")
	}
	if p.Name() != "adjacent-line" {
		t.Fatal("name")
	}
}

func TestNextLineAggressiveVariant(t *testing.T) {
	p := NextLine{BlockSize: 64, Degree: 3, OnEveryAccess: true}
	out := p.OnAccess(0, true, nil)
	if len(out) != 3 || out[0] != 64 || out[2] != 192 {
		t.Fatalf("aggressive next-line: %v", out)
	}
}
