package memsim

import (
	"testing"

	"searchmem/internal/trace"
)

func collectSpace() (*Space, *[]trace.Access) {
	var accs []trace.Access
	s := NewSpace(func(a trace.Access) { accs = append(accs, a) })
	return s, &accs
}

func TestArenaLayout(t *testing.T) {
	s, _ := collectSpace()
	a := s.NewArena("shard0", trace.Shard, 1024)
	b := s.NewArena("shard1", trace.Shard, 1024)
	h := s.NewArena("heap0", trace.Heap, 1024)
	if a.Base() != ShardBase {
		t.Fatalf("first shard arena at 0x%x", a.Base())
	}
	if b.Base() != ShardBase+1024 {
		t.Fatalf("second shard arena at 0x%x", b.Base())
	}
	if h.Base() != HeapBase {
		t.Fatalf("heap arena at 0x%x", h.Base())
	}
	if a.Segment() != trace.Shard || a.Name() != "shard0" || a.Size() != 1024 {
		t.Fatal("arena metadata wrong")
	}
}

func TestAllocAlignment(t *testing.T) {
	s, _ := collectSpace()
	a := s.NewArena("h", trace.Heap, 1024)
	p1 := a.Alloc(3, 0)
	p2 := a.Alloc(8, 8)
	if p1 != a.Base() {
		t.Fatalf("first alloc at 0x%x", p1)
	}
	if p2%8 != 0 || p2 < p1+3 {
		t.Fatalf("aligned alloc at 0x%x", p2)
	}
	if a.Used() != (p2-a.Base())+8 {
		t.Fatalf("used = %d", a.Used())
	}
}

func TestAllocExhaustionPanics(t *testing.T) {
	s, _ := collectSpace()
	a := s.NewArena("h", trace.Heap, 16)
	a.Alloc(16, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("exhausted arena did not panic")
		}
	}()
	a.Alloc(1, 0)
}

func TestReadWriteRoundTrip(t *testing.T) {
	s, accs := collectSpace()
	a := s.NewArena("h", trace.Heap, 64)
	addr := a.Alloc(16, 8)
	a.WriteU32(1, addr, 0xdeadbeef)
	a.WriteU64(1, addr+8, 0x0123456789abcdef)
	if got := a.ReadU32(1, addr); got != 0xdeadbeef {
		t.Fatalf("ReadU32 = %x", got)
	}
	if got := a.ReadU64(1, addr+8); got != 0x0123456789abcdef {
		t.Fatalf("ReadU64 = %x", got)
	}
	a.WriteU8(2, addr, 7)
	if got := a.ReadU8(2, addr); got != 7 {
		t.Fatalf("ReadU8 = %d", got)
	}
	// 6 recorded accesses with correct metadata.
	if len(*accs) != 6 {
		t.Fatalf("recorded %d accesses", len(*accs))
	}
	first := (*accs)[0]
	if first.Kind != trace.Write || first.Seg != trace.Heap || first.Thread != 1 || first.Size != 4 || first.Addr != addr {
		t.Fatalf("first access: %+v", first)
	}
}

func TestVarintAccess(t *testing.T) {
	s, accs := collectSpace()
	a := s.NewArena("sh", trace.Shard, 64)
	addr := a.Alloc(16, 0)
	buf := make([]byte, 16)
	// 300 encodes to 2 bytes.
	n := putUvarintHelper(buf, 300)
	a.WriteRaw(addr, buf[:n])
	v, got := a.ReadUvarint(3, addr)
	if v != 300 || got != 2 {
		t.Fatalf("varint read: v=%d n=%d", v, got)
	}
	last := (*accs)[len(*accs)-1]
	if last.Size != 2 || last.Seg != trace.Shard {
		t.Fatalf("varint access: %+v", last)
	}
}

func putUvarintHelper(buf []byte, v uint64) int {
	i := 0
	for v >= 0x80 {
		buf[i] = byte(v) | 0x80
		v >>= 7
		i++
	}
	buf[i] = byte(v)
	return i + 1
}

func TestBoundsChecking(t *testing.T) {
	s, _ := collectSpace()
	a := s.NewArena("h", trace.Heap, 64)
	cases := []func(){
		func() { a.ReadU8(0, a.Base()-1) },
		func() { a.ReadU32(0, a.Base()+61) },
		func() { a.ReadU64(0, a.Base()+60) },
		func() { a.Touch(0, a.Base()+60, 8, trace.Read) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: out-of-bounds access allowed", i)
				}
			}()
			f()
		}()
	}
}

func TestMutedRecorder(t *testing.T) {
	count := 0
	s := NewSpace(func(trace.Access) { count++ })
	a := s.NewArena("h", trace.Heap, 64)
	addr := a.Alloc(8, 0)
	s.SetRecorder(nil)
	a.WriteU32(0, addr, 1)
	a.ReadU32(0, addr)
	if count != 0 {
		t.Fatalf("muted recorder got %d accesses", count)
	}
	s.SetRecorder(func(trace.Access) { count++ })
	a.ReadU32(0, addr)
	if count != 1 {
		t.Fatal("re-attached recorder missed the access")
	}
}

func TestThreadStacks(t *testing.T) {
	s, accs := collectSpace()
	s0 := s.ThreadStackArena(0, 4096)
	s1 := s.ThreadStackArena(1, 4096)
	if s1.Base()-s0.Base() != StackStride {
		t.Fatalf("stack stride: 0x%x", s1.Base()-s0.Base())
	}
	s0.Touch(0, s0.Base(), 64, trace.Write)
	if (*accs)[0].Seg != trace.Stack {
		t.Fatal("stack access mislabeled")
	}
}

func TestFootprintAccounting(t *testing.T) {
	s, _ := collectSpace()
	h1 := s.NewArena("h1", trace.Heap, 1024)
	h2 := s.NewArena("h2", trace.Heap, 2048)
	h1.Alloc(100, 0)
	h2.Alloc(200, 0)
	if got := s.FootprintBytes(trace.Heap); got != 300 {
		t.Fatalf("heap footprint %d, want 300", got)
	}
	if got := s.ReservedBytes(trace.Heap); got != 3072 {
		t.Fatalf("heap reserved %d, want 3072", got)
	}
	if got := s.FootprintBytes(trace.Shard); got != 0 {
		t.Fatalf("shard footprint %d, want 0", got)
	}
}

func TestWriteReadRaw(t *testing.T) {
	s, accs := collectSpace()
	a := s.NewArena("sh", trace.Shard, 64)
	addr := a.Alloc(8, 0)
	a.WriteRaw(addr, []byte{1, 2, 3})
	got := a.ReadRaw(addr, 3)
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatal("raw round trip failed")
	}
	if len(*accs) != 0 {
		t.Fatal("raw access was recorded")
	}
}

func TestBadArenaPanics(t *testing.T) {
	s, _ := collectSpace()
	for i, f := range []func(){
		func() { s.NewArena("bad", trace.Heap, 0) },
		func() {
			a := s.NewArena("h", trace.Heap, 64)
			a.Alloc(-1, 0)
		},
		func() {
			a := s.NewArena("h2", trace.Heap, 64)
			a.Alloc(8, 3)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
