// Package memsim provides instrumented memory arenas: flat byte regions at
// realistic virtual addresses whose every read and write emits a trace
// access.
//
// It is this reproduction's substitute for the paper's Pin-based tracing:
// instead of instrumenting a production binary, the search-engine substrate
// (internal/search) keeps its data structures *inside* arenas, so the
// address stream it generates has genuine layout, spatial locality, and
// segment attribution (code/heap/shard/stack).
package memsim

import (
	"encoding/binary"
	"fmt"

	"searchmem/internal/trace"
)

// Segment base addresses, loosely mirroring a Linux x86-64 layout: text
// low, a large mmap'd shard region, the heap above it, and per-thread
// stacks high.
const (
	CodeBase  uint64 = 0x0000_0000_0040_0000
	ShardBase uint64 = 0x0000_2000_0000_0000
	HeapBase  uint64 = 0x0000_5500_0000_0000
	StackBase uint64 = 0x0000_7fff_0000_0000
	// StackStride separates per-thread stacks.
	StackStride uint64 = 8 << 20
)

// baseFor returns the starting address of a segment's region.
func baseFor(seg trace.Segment) uint64 {
	switch seg {
	case trace.Code:
		return CodeBase
	case trace.Shard:
		return ShardBase
	case trace.Heap:
		return HeapBase
	case trace.Stack:
		return StackBase
	default:
		panic(fmt.Sprintf("memsim: unknown segment %v", seg))
	}
}

// Recorder receives every instrumented access. A nil Recorder disables
// recording (used to warm structures or to measure footprint only).
type Recorder func(trace.Access)

// Space is one simulated virtual address space. Arenas are carved out of
// per-segment regions in allocation order.
type Space struct {
	rec    Recorder
	next   [trace.NumSegments]uint64
	arenas []*Arena
}

// NewSpace returns an empty address space recording into rec (which may be
// nil).
func NewSpace(rec Recorder) *Space {
	s := &Space{rec: rec}
	for seg := trace.Segment(0); seg < trace.NumSegments; seg++ {
		s.next[seg] = baseFor(seg)
	}
	return s
}

// SetRecorder swaps the access recorder; passing nil mutes recording.
// Useful to build/warm structures silently and then record steady state,
// exactly as the paper traces servers "already in steady state".
func (s *Space) SetRecorder(rec Recorder) { s.rec = rec }

// record emits one access if a recorder is attached.
func (s *Space) record(a trace.Access) {
	if s.rec != nil {
		s.rec(a)
	}
}

// NewArena carves a backed arena of the given size out of seg's region.
func (s *Space) NewArena(name string, seg trace.Segment, size int) *Arena {
	if size <= 0 {
		panic(fmt.Sprintf("memsim: arena %q size must be positive", name))
	}
	base := s.next[seg]
	s.next[seg] = base + uint64(size)
	a := &Arena{name: name, seg: seg, base: base, buf: make([]byte, size), space: s}
	s.arenas = append(s.arenas, a)
	return a
}

// NewPhantomArena carves an arena that records accesses but has no backing
// bytes: Touch works, data accessors panic. Synthetic workloads with
// multi-hundred-MiB footprints (the SPEC-like profiles) use phantom arenas
// so footprint costs no host memory.
func (s *Space) NewPhantomArena(name string, seg trace.Segment, size int64) *Arena {
	if size <= 0 {
		panic(fmt.Sprintf("memsim: phantom arena %q size must be positive", name))
	}
	base := s.next[seg]
	s.next[seg] = base + uint64(size)
	a := &Arena{name: name, seg: seg, base: base, phantomSize: size, space: s}
	s.arenas = append(s.arenas, a)
	return a
}

// ThreadStackArena returns a small backed arena inside thread's stack
// region. Each thread gets its own disjoint stack addresses.
func (s *Space) ThreadStackArena(thread uint8, size int) *Arena {
	base := StackBase + uint64(thread)*StackStride
	a := &Arena{
		name:  fmt.Sprintf("stack[t%d]", thread),
		seg:   trace.Stack,
		base:  base,
		buf:   make([]byte, size),
		space: s,
		// A thread's stack is reserved in full at creation; footprint
		// accounting (Figure 4) counts it as allocated.
		used: uint64(size),
	}
	s.arenas = append(s.arenas, a)
	return a
}

// FootprintBytes returns the total bytes allocated (Alloc'd) inside arenas
// of seg — the "allocated memory footprint" of Figure 4.
func (s *Space) FootprintBytes(seg trace.Segment) uint64 {
	var total uint64
	for _, a := range s.arenas {
		if a.seg == seg {
			total += a.used
		}
	}
	return total
}

// ReservedBytes returns the total arena capacity reserved for seg.
func (s *Space) ReservedBytes(seg trace.Segment) uint64 {
	var total uint64
	for _, a := range s.arenas {
		if a.seg == seg {
			total += uint64(len(a.buf))
		}
	}
	return total
}

// Arena is one contiguous, byte-backed, instrumented memory region.
type Arena struct {
	name        string
	seg         trace.Segment
	base        uint64
	used        uint64
	buf         []byte
	phantomSize int64 // non-zero for unbacked (phantom) arenas
	space       *Space
}

// Name returns the arena's name.
func (a *Arena) Name() string { return a.name }

// Segment returns the arena's segment.
func (a *Arena) Segment() trace.Segment { return a.seg }

// Base returns the arena's first virtual address.
func (a *Arena) Base() uint64 { return a.base }

// Size returns the arena's capacity in bytes.
func (a *Arena) Size() int {
	if a.phantomSize > 0 {
		return int(a.phantomSize)
	}
	return len(a.buf)
}

// Phantom reports whether the arena is unbacked.
func (a *Arena) Phantom() bool { return a.phantomSize > 0 }

// Used returns the bytes handed out by Alloc.
func (a *Arena) Used() uint64 { return a.used }

// Alloc reserves n bytes aligned to align (a power of two; 0 or 1 for no
// alignment) and returns their virtual address. It panics when the arena is
// exhausted: arena sizes are part of experiment configuration and running
// out indicates a mis-sized setup, not a runtime condition to handle.
func (a *Arena) Alloc(n int, align int) uint64 {
	if n < 0 {
		panic(fmt.Sprintf("memsim: %s: negative allocation", a.name))
	}
	if align > 1 {
		if align&(align-1) != 0 {
			panic(fmt.Sprintf("memsim: %s: alignment %d not a power of two", a.name, align))
		}
		mask := uint64(align - 1)
		a.used = (a.used + mask) &^ mask
	}
	if a.used+uint64(n) > uint64(a.Size()) {
		panic(fmt.Sprintf("memsim: arena %q exhausted (%d of %d bytes used, need %d more)",
			a.name, a.used, a.Size(), n))
	}
	addr := a.base + a.used
	a.used += uint64(n)
	return addr
}

// off converts a virtual address inside the arena to a buffer offset,
// bounds-checking the access.
func (a *Arena) off(addr uint64, n int) int {
	if addr < a.base || addr+uint64(n) > a.base+uint64(a.Size()) {
		panic(fmt.Sprintf("memsim: %s: access 0x%x+%d outside [0x%x, 0x%x)",
			a.name, addr, n, a.base, a.base+uint64(a.Size())))
	}
	return int(addr - a.base)
}

// data returns the backing buffer, panicking for phantom arenas.
func (a *Arena) data() []byte {
	if a.phantomSize > 0 {
		panic(fmt.Sprintf("memsim: %s: data access on phantom arena", a.name))
	}
	return a.buf
}

// Touch records an access without transferring data (used for modeled
// structures whose contents are irrelevant, e.g. stack frames).
func (a *Arena) Touch(thread uint8, addr uint64, n int, kind trace.Kind) {
	a.off(addr, n) // bounds check even when muted
	a.space.record(trace.Access{Addr: addr, Size: uint16(n), Seg: a.seg, Kind: kind, Thread: thread})
}

// ReadU8 reads one byte.
func (a *Arena) ReadU8(thread uint8, addr uint64) byte {
	o := a.off(addr, 1)
	a.space.record(trace.Access{Addr: addr, Size: 1, Seg: a.seg, Kind: trace.Read, Thread: thread})
	return a.data()[o]
}

// ReadU32 reads a little-endian uint32.
func (a *Arena) ReadU32(thread uint8, addr uint64) uint32 {
	o := a.off(addr, 4)
	a.space.record(trace.Access{Addr: addr, Size: 4, Seg: a.seg, Kind: trace.Read, Thread: thread})
	return binary.LittleEndian.Uint32(a.data()[o:])
}

// ReadU64 reads a little-endian uint64.
func (a *Arena) ReadU64(thread uint8, addr uint64) uint64 {
	o := a.off(addr, 8)
	a.space.record(trace.Access{Addr: addr, Size: 8, Seg: a.seg, Kind: trace.Read, Thread: thread})
	return binary.LittleEndian.Uint64(a.data()[o:])
}

// WriteU8 writes one byte.
func (a *Arena) WriteU8(thread uint8, addr uint64, v byte) {
	o := a.off(addr, 1)
	a.space.record(trace.Access{Addr: addr, Size: 1, Seg: a.seg, Kind: trace.Write, Thread: thread})
	a.data()[o] = v
}

// WriteU32 writes a little-endian uint32.
func (a *Arena) WriteU32(thread uint8, addr uint64, v uint32) {
	o := a.off(addr, 4)
	a.space.record(trace.Access{Addr: addr, Size: 4, Seg: a.seg, Kind: trace.Write, Thread: thread})
	binary.LittleEndian.PutUint32(a.data()[o:], v)
}

// WriteU64 writes a little-endian uint64.
func (a *Arena) WriteU64(thread uint8, addr uint64, v uint64) {
	o := a.off(addr, 8)
	a.space.record(trace.Access{Addr: addr, Size: 8, Seg: a.seg, Kind: trace.Write, Thread: thread})
	binary.LittleEndian.PutUint64(a.data()[o:], v)
}

// ReadUvarint decodes a varint at addr, recording one access covering the
// bytes consumed. It returns the value and encoded length.
func (a *Arena) ReadUvarint(thread uint8, addr uint64) (uint64, int) {
	o := a.off(addr, 1)
	v, n := binary.Uvarint(a.data()[o:])
	if n <= 0 {
		panic(fmt.Sprintf("memsim: %s: bad varint at 0x%x", a.name, addr))
	}
	a.off(addr, n)
	a.space.record(trace.Access{Addr: addr, Size: uint16(n), Seg: a.seg, Kind: trace.Read, Thread: thread})
	return v, n
}

// WriteRaw copies bytes into the arena without recording (setup-time
// serialization; steady-state reads are what get traced).
func (a *Arena) WriteRaw(addr uint64, data []byte) {
	o := a.off(addr, len(data))
	copy(a.data()[o:], data)
}

// ReadRaw returns a view of n bytes without recording.
func (a *Arena) ReadRaw(addr uint64, n int) []byte {
	o := a.off(addr, n)
	return a.data()[o : o+n]
}
