package experiments

import (
	"testing"
)

// TestHeadlineShapes verifies the paper's §IV headline results at full
// scale: the cache-for-cores optimum is interior and near 1 MiB/core, and
// the L4 configurations order and land near the paper's improvements.
// This is the most expensive test in the repository (runs the Figure 10 and
// 14 pipelines); skipped under -short.
func TestHeadlineShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale headline reproduction")
	}
	if raceDetectorOn {
		t.Skip("full-scale headline reproduction exceeds the race-mode time budget; the parallel engine's race coverage lives in TestSharingContextsConcurrent and the serving/workload race tests")
	}
	opts := Full()
	opts.Logf = t.Logf
	ctx := NewContext(opts)

	// --- Figure 10: interior optimum in the cache-for-cores trade-off ---
	res, err := ByIDMust("fig10").Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	fig := res.(*Figure)
	s := fig.Get("SMT on (quantized)")
	if s == nil {
		t.Fatal("missing series")
	}
	bestX, bestY := 0.0, -1.0
	for i := range s.X {
		if s.Y[i] > bestY {
			bestX, bestY = s.X[i], s.Y[i]
		}
	}
	// Paper: optimum at 1 MiB/core, +14%. Accept an optimum in
	// [0.5, 1.25] MiB/core with improvement between +8% and +40%.
	if bestX < 0.5 || bestX > 1.25 {
		t.Errorf("fig10 optimum at %v MiB/core, paper ~1", bestX)
	}
	if bestY < 0.08 || bestY > 0.40 {
		t.Errorf("fig10 optimum improvement %v, paper +14%%", bestY)
	}
	// The baseline split (2.25 MiB/core) must be ~0 and the optimum must
	// be an interior point or the smallest c must not dominate by much.
	if y := s.Y[len(s.Y)-1]; bestX == 2.25 {
		t.Errorf("no benefit found from trading cache for cores (best at 2.25, y=%v)", y)
	}

	// --- Figure 11: crossing slopes ---
	res, err = ByIDMust("fig11").Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	fig = res.(*Figure)
	cores, l3 := fig.Get("Cores"), fig.Get("L3 Cache")
	if cores == nil || l3 == nil {
		t.Fatal("fig11 series missing")
	}
	// At the most aggressive point the core gain is large positive and
	// the L3 loss clearly negative.
	pointAt := func(s *Series, x float64) float64 {
		for i := range s.X {
			if s.X[i] == x {
				return s.Y[i]
			}
		}
		t.Fatalf("series %s has no point at %v", s.Name, x)
		return 0
	}
	if g := pointAt(cores, 0.5); g < 0.2 {
		t.Errorf("fig11 core gain at 0.5 MiB/core = %v, want > 0.2", g)
	}
	if l := pointAt(l3, 0.5); l > -0.05 {
		t.Errorf("fig11 L3 loss at 0.5 MiB/core = %v, want < -0.05", l)
	}

	// --- Figure 14: L4 configurations ---
	res, err = ByIDMust("fig14").Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	fig = res.(*Figure)
	at := func(name string, mb float64) float64 {
		sr := fig.Get(name)
		if sr == nil {
			t.Fatalf("fig14 series %q missing", name)
		}
		for i := range sr.X {
			if sr.X[i] == mb {
				return sr.Y[i]
			}
		}
		t.Fatalf("fig14 %s has no point at %v MiB", name, mb)
		return 0
	}
	base1g := at("Baseline", 1024)
	pess1g := at("Pessimistic", 1024)
	assoc1g := at("Associative", 1024)
	fut1g := at("Future", 1024)

	// Paper: +27% baseline, +23% pessimistic, ~+1pp associative, +38%
	// future. Accept the same ordering with magnitudes in band.
	if base1g < 0.15 || base1g > 0.45 {
		t.Errorf("1 GiB baseline improvement %v, paper +27%%", base1g)
	}
	if !(pess1g < base1g) {
		t.Errorf("pessimistic (%v) not below baseline (%v)", pess1g, base1g)
	}
	if pess1g < 0.10 {
		t.Errorf("pessimistic 1 GiB %v, paper +23%%", pess1g)
	}
	if assoc1g < base1g-0.005 {
		t.Errorf("associative (%v) below direct-mapped (%v)", assoc1g, base1g)
	}
	if assoc1g > base1g+0.05 {
		t.Errorf("associative gain over direct too large: %v vs %v", assoc1g, base1g)
	}
	if !(fut1g > base1g) {
		t.Errorf("future (%v) not above baseline (%v): trend reversed", fut1g, base1g)
	}
	// Larger L4s must not hurt.
	if at("Baseline", 2048) < base1g-0.01 {
		t.Errorf("2 GiB L4 worse than 1 GiB")
	}
	// And capacity matters: 128 MiB strictly below 1 GiB.
	if at("Baseline", 128) >= base1g {
		t.Errorf("128 MiB L4 not below 1 GiB")
	}
}
