package experiments

import (
	"fmt"
	"strings"
	"testing"

	"searchmem/internal/obs"
)

// TestSameSeedByteIdenticalOutput is the end-to-end property the searchlint
// analyzers exist to protect: two experiment runs with the same seed must
// render byte-identical tables — the exact stream cmd/searchsim prints —
// whether the sweep engine runs serial or parallel (DESIGN.md §10).
// Each run uses a fresh Context so nothing is shared but the seed.
func TestSameSeedByteIdenticalOutput(t *testing.T) {
	// A cross-section of the pipeline: measured workload characterization
	// (table1), MPKI curves (fig2a), the L4 headline (fig6b), the SMT
	// model (fig13), the fault-injected serving tier (degraded), the
	// tiered-memory sweeps (figT1/figT2), whose DRAM bank state and
	// page-migration engine must replay identically under the parallel
	// engine, the policy/predictor sweeps (figP1/figP2), whose seeded
	// BRRIP insertion and predictor tables must do the same, and the
	// fleet-scale serving sweeps (figF1/figF2), whose open-loop event
	// engine and shared metrics registry must render identically however
	// the points are scheduled.
	ids := []string{"table1", "fig2a", "fig6b", "fig13", "degraded", "figT1", "figT2", "figP1", "figP2", "figF1", "figF2"}
	if testing.Short() {
		ids = []string{"table1", "fig13", "figP2"}
	} else if raceDetectorOn {
		// The tier, policy, and fleet sweeps push this package past the
		// default race-mode time budget (the seed id list alone is ~8 min
		// under -race). Byte-identity does not depend on instrumentation,
		// and the sweep engines' race coverage lives in the tier tests and
		// TestSharingContextsConcurrent.
		ids = ids[:len(ids)-6]
	}

	render := func(parallel bool) string {
		opts := Fast()
		opts.Seed = 42
		opts.Parallel = parallel
		ctx := NewContext(opts)
		var b strings.Builder
		for _, id := range ids {
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %s not registered", id)
			}
			res, err := e.Run(ctx)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			// Mirror cmd/searchsim's output framing.
			fmt.Fprintf(&b, "=== %s (%s) — %s\n%s\n", e.ID, e.PaperRef, e.Title, res.Render())
		}
		return b.String()
	}

	serial := render(false)
	for _, r := range []struct{ name, got string }{
		{"parallel", render(true)},
		{"parallel repeat", render(true)},
	} {
		if r.got == serial {
			continue
		}
		// Pinpoint the first divergence for the report.
		a, b := strings.Split(serial, "\n"), strings.Split(r.got, "\n")
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				t.Fatalf("%s run diverges from serial at line %d:\n serial: %q\n %s: %q", r.name, i+1, a[i], r.name, b[i])
			}
		}
		t.Fatalf("%s run diverges from serial in length: %d vs %d lines", r.name, len(a), len(b))
	}
}

// TestSameSeedByteIdenticalExports extends the determinism contract to the
// observability exports (DESIGN.md §9): two same-seed fleetprof runs with a
// tracer and metrics registry attached must render the same table AND write
// byte-identical Chrome-trace JSON and metrics-snapshot JSON — the exact
// files cmd/searchsim -trace/-metrics produces.
func TestSameSeedByteIdenticalExports(t *testing.T) {
	if testing.Short() {
		t.Skip("fleetprof measurement is slow in -short mode")
	}
	run := func() (render, traceJSON, metricsJSON string) {
		opts := Fast()
		opts.Seed = 42
		opts.Tracer = obs.NewTracer()
		opts.Metrics = obs.NewRegistry()
		ctx := NewContext(opts)
		e, ok := ByID("fleetprof")
		if !ok {
			t.Fatal("fleetprof not registered")
		}
		res, err := e.Run(ctx)
		if err != nil {
			t.Fatalf("fleetprof: %v", err)
		}
		var tb, mb strings.Builder
		if err := obs.WriteChromeTrace(&tb, opts.Tracer.Take()); err != nil {
			t.Fatalf("trace export: %v", err)
		}
		if err := opts.Metrics.Snapshot().WriteJSON(&mb); err != nil {
			t.Fatalf("metrics export: %v", err)
		}
		return res.Render(), tb.String(), mb.String()
	}
	r1, t1, m1 := run()
	r2, t2, m2 := run()
	if r1 != r2 {
		t.Error("same-seed fleetprof runs rendered different tables")
	}
	if t1 != t2 {
		t.Error("same-seed fleetprof runs exported different Chrome-trace JSON")
	}
	if m1 != m2 {
		t.Error("same-seed fleetprof runs exported different metrics JSON")
	}
	if !strings.Contains(t1, `"name":"access-stream"`) {
		t.Error("trace export missing profiler access-stream spans")
	}
	if !strings.Contains(m1, "fleetprof_topdown_err_pp") {
		t.Error("metrics export missing fleetprof gauges")
	}
}
