package experiments

import (
	"fmt"

	"searchmem/internal/workload"
)

func init() {
	register(Experiment{
		ID:       "splitl2",
		Title:    "Split I/D L2 caches what-if (extension)",
		PaperRef: "§V (extension)",
		Run:      runSplitL2,
	})
}

// runSplitL2 reproduces the §V analysis: splitting the unified 256 KiB L2
// into 128 KiB instruction and data halves. The paper's conclusion — the
// improved L2 instruction hit rate is offset by the decreased L2 data hit
// rate — should fall out of the simulated rates.
func runSplitL2(c *Context) (Result, error) {
	o := c.Opts
	run := func(split bool) workload.Metrics {
		plat := c.PLT1()
		mc := workload.MeasureConfig{
			Platform: plat,
			Cores:    1, SMTWays: 1, Threads: 1,
			Budget:         o.Budget,
			Seed:           o.Seed + 31,
			WarmupFraction: 1.5,
		}
		mc.SplitL2 = split
		return workload.Measure(c.Leaf(), mc)
	}
	// Both variants replay the same recording — identical keys, so the pair
	// parallelizes without perturbing recording order.
	ms := runPoints(c, 0, 2, func(i int) workload.Metrics { return run(i == 1) })
	unified, split := ms[0], ms[1]

	t := &Table{
		Title:   "Split I/D L2 what-if (256 KiB unified vs 128+128 KiB split)",
		Headers: []string{"metric", "unified", "split"},
		Note: "paper §V: unlikely to be beneficial — the improved L2 instruction " +
			"hit rate is offset by the decrease in L2 hit rate for data",
	}
	rows := []struct {
		name string
		u, s float64
	}{
		{"L2 instr MPKI", unified.L2InstrMPKI, split.L2InstrMPKI},
		{"L2 data MPKI", unified.L2DataMPKI, split.L2DataMPKI},
		{"L2 total MPKI", unified.L2InstrMPKI + unified.L2DataMPKI, split.L2InstrMPKI + split.L2DataMPKI},
		{"modeled IPC", unified.IPC, split.IPC},
	}
	for _, r := range rows {
		t.AddRow(r.name, fmt.Sprintf("%.2f", r.u), fmt.Sprintf("%.2f", r.s))
	}
	return t, nil
}
