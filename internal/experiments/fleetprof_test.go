package experiments

import "testing"

// TestFleetProfSamplingConverges checks the experiment's headline claims:
// the rate-1.0 estimate is exactly the exhaustive profile (error zero by
// construction), estimator error shrinks monotonically as the sampling rate
// grows, and the Top-Down breakdown stays within 2 percentage points of
// exact at the default fleet rate.
func TestFleetProfSamplingConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("fleetprof measurement is slow in -short mode")
	}
	opts := Fast()
	opts.Seed = 7
	res := runFleetProfiles(NewContext(opts))

	if res.rates[0] != 1.0 {
		t.Fatalf("first rate is %g, want the exact reference 1.0", res.rates[0])
	}
	if err := res.topDownErrPP(0); err != 0 {
		t.Errorf("exact reference Top-Down error = %g pp, want exactly 0", err)
	}
	if err := res.rateErrFrac(0); err != 0 {
		t.Errorf("exact reference scalar error = %g, want exactly 0", err)
	}

	// Rates are listed descending, so error must be non-decreasing down the
	// list: sparser sampling can only get worse.
	for i := 1; i < len(res.rates); i++ {
		if res.topDownErrPP(i) < res.topDownErrPP(i-1) {
			t.Errorf("Top-Down error not monotone: r=%.2f gives %.3f pp < r=%.2f's %.3f pp",
				res.rates[i], res.topDownErrPP(i), res.rates[i-1], res.topDownErrPP(i-1))
		}
		if res.rateErrFrac(i) < res.rateErrFrac(i-1) {
			t.Errorf("scalar error not monotone: r=%.2f gives %.4f < r=%.2f's %.4f",
				res.rates[i], res.rateErrFrac(i), res.rates[i-1], res.rateErrFrac(i-1))
		}
	}

	for i, r := range res.rates {
		if r != fleetProfDefaultRate {
			continue
		}
		if err := res.topDownErrPP(i); err > 2.0 {
			t.Errorf("Top-Down error at default rate %.2f = %.3f pp, want <= 2", r, err)
		}
		if est := res.ests[i]; est.SampledAccesses == 0 || est.Windows == 0 {
			t.Errorf("default-rate estimate observed nothing: %+v", est)
		}
	}
}
