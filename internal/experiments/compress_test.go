package experiments

import (
	"fmt"
	"strings"
	"testing"

	"searchmem/internal/obs"
)

// renderIDs runs the given experiments in a fresh context and returns the
// concatenated rendered output, framed exactly as cmd/searchsim prints it.
func renderIDs(t *testing.T, opts Options, ids []string) string {
	t.Helper()
	ctx := NewContext(opts)
	var b strings.Builder
	for _, id := range ids {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %s not registered", id)
		}
		res, err := e.Run(ctx)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		fmt.Fprintf(&b, "=== %s (%s) — %s\n%s\n", e.ID, e.PaperRef, e.Title, res.Render())
	}
	return b.String()
}

// TestCompressedReplayByteIdentical is the tentpole equivalence proof at the
// experiment level: with -trace-compress (and with spill-to-disk on top),
// rendered output is byte-for-byte the flat-storage output. fig6b exercises
// the batched Cursor profile path, fig13 the scalar replay path through the
// SMT model, table1 the measured characterization, figT1 the tiered-memory
// sweep (post-L4 traffic driven into internal/mem), figP1 the
// replacement-policy grid (seeded BRRIP insertion under batched replay),
// and figF1 the fleet-scale serving sweep, whose perf-model probe replays
// the same recordings the storage backend holds.
func TestCompressedReplayByteIdentical(t *testing.T) {
	ids := []string{"table1", "fig6b", "fig13", "figT1", "figP1", "figF1"}
	if testing.Short() {
		ids = []string{"fig6b", "fig13"}
	} else if raceDetectorOn {
		// Same race-mode time-budget trade as TestSameSeedByteIdenticalOutput.
		ids = ids[:len(ids)-3]
	}

	base := Fast()
	base.Seed = 42
	flat := renderIDs(t, base, ids)

	variants := []struct {
		name string
		mut  func(*Options)
	}{
		{"compress", func(o *Options) { o.TraceCompress = true }},
		{"compress tiny blocks", func(o *Options) { o.TraceCompress = true; o.TraceBlockLen = 257 }},
		{"compress+spill", func(o *Options) {
			o.TraceCompress = true
			o.TraceSpillDir = t.TempDir()
		}},
	}
	for _, v := range variants {
		opts := base
		v.mut(&opts)
		got := renderIDs(t, opts, ids)
		if got == flat {
			continue
		}
		a, b := strings.Split(flat, "\n"), strings.Split(got, "\n")
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				t.Fatalf("%s diverges from flat at line %d:\n flat: %q\n %s: %q", v.name, i+1, a[i], v.name, b[i])
			}
		}
		t.Fatalf("%s diverges from flat in length: %d vs %d lines", v.name, len(a), len(b))
	}
}

// TestReportTraceStoresDeterministic checks the store gauges published into
// a -metrics registry are a pure function of the recorded streams: two
// same-seed compressed runs export identical snapshots.
func TestReportTraceStoresDeterministic(t *testing.T) {
	run := func() string {
		opts := Fast()
		opts.Seed = 42
		opts.TraceCompress = true
		ctx := NewContext(opts)
		if _, err := mustByID(t, "fig13").Run(ctx); err != nil {
			t.Fatalf("fig13: %v", err)
		}
		reg := obs.NewRegistry()
		ctx.ReportTraceStores(reg)
		var b strings.Builder
		if err := reg.Snapshot().WriteJSON(&b); err != nil {
			t.Fatalf("export: %v", err)
		}
		s := b.String()
		if !strings.Contains(s, "trace_store_bytes") {
			t.Fatalf("snapshot missing trace_store_bytes gauge:\n%s", s)
		}
		return s
	}
	if a, b := run(), run(); a != b {
		t.Error("same-seed runs exported different trace-store gauges")
	}
}

func mustByID(t *testing.T, id string) Experiment {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	return e
}
