package experiments

import (
	"fmt"

	"searchmem/internal/mem"
	"searchmem/internal/model"
	"searchmem/internal/obs"
	"searchmem/internal/trace"
	"searchmem/internal/workload"
)

// This file extends the paper's hierarchy question below the eDRAM L4: with
// the shard too large for any cache, which of its bytes deserve near (DDR)
// versus far (CXL-attached) memory? The tier sweeps drive the internal/mem
// tiered-memory model — a DRAM bank/row-buffer near tier plus a
// page-granular far tier with epoch-based placement — behind the rebalanced
// L3+L4 hierarchy of §IV, exactly the way Figures 13/14 sweep L4 geometry:
// all configurations ride the single-pass MeasureMulti kernel over the
// shared sweep recording, sharded across the parallel engine with
// byte-identical output.

func init() {
	register(Experiment{
		ID:       "figT1",
		Title:    "Tiered memory: near:far capacity split x placement policy",
		PaperRef: "extension (Mahar et al., PAPERS.md)",
		Run:      runFigT1,
	})
	register(Experiment{
		ID:       "figT2",
		Title:    "Tiered memory: placement-epoch sensitivity at a fixed split",
		PaperRef: "extension (Mahar et al., PAPERS.md)",
		Run:      runFigT2,
	})
}

// tierFracs is the default near:far capacity grid (fraction of the touched
// page population provisioned near).
var tierFracs = []float64{0.5, 0.25, 0.125}

// tierPolicies is the default policy grid.
var tierPolicies = []mem.PagePolicy{mem.PolicyStatic, mem.PolicyLRUEpoch, mem.PolicyFreqThreshold}

// tierPageBytes is the placement granularity used by the sweeps.
const tierPageBytes = 4096

// tierBase returns the shared measurement shape: the rebalanced 23 MiB L3
// with the paper's 512 MiB direct-mapped L4 in front of the tiered memory
// system, at sweep scale (same shape as sweepL4).
func tierBase(c *Context) workload.MeasureConfig {
	o := c.Opts
	return workload.MeasureConfig{
		Platform: c.PLT1().ScaleCaches(workload.SweepScale),
		Cores:    min(o.Threads, 8), SMTWays: 2,
		Threads:        min(o.Threads, 16),
		L3Size:         workload.SimUnits(23 << 20),
		L4Size:         workload.SimUnits(512 << 20),
		Budget:         o.Budget * 2,
		Seed:           o.Seed,
		WarmupFraction: 1.0,
	}
}

// tierPoint is one measured sweep configuration.
type tierPoint struct {
	nearFrac float64
	policy   mem.PagePolicy
	m        workload.Metrics
}

// tierSweepData is the memoized outcome shared by figT1, figT2, and the
// acceptance tests.
type tierSweepData struct {
	baseline workload.Metrics // all-near: DRAM model, no far tier
	epochLen int64
	points   []tierPoint
}

// tierFracsFor resolves the capacity grid, honoring Options.TierNearFrac.
func tierFracsFor(o Options) []float64 {
	if o.TierNearFrac > 0 {
		return []float64{o.TierNearFrac}
	}
	return tierFracs
}

// tierPoliciesFor resolves the policy grid, honoring Options.TierPolicy.
func tierPoliciesFor(o Options) ([]mem.PagePolicy, error) {
	if o.TierPolicy == "" {
		return tierPolicies, nil
	}
	p, err := mem.ParsePolicy(o.TierPolicy)
	if err != nil {
		return nil, err
	}
	return []mem.PagePolicy{p}, nil
}

// tierSweep measures the all-near baseline, derives the near-tier page
// budgets from its touched-page population, and sweeps the capacity-split x
// policy grid. Memoized per context; both phases ride measureMultiSharded.
func tierSweep(c *Context) (*tierSweepData, error) {
	c.curveMu.Lock()
	defer c.curveMu.Unlock()
	key := curveKey{kind: "tiersweep"}
	if cached, ok := c.curves[key]; ok {
		return cached.(*tierSweepData), nil
	}
	o := c.Opts
	pols, err := tierPoliciesFor(o)
	if err != nil {
		return nil, err
	}
	fracs := tierFracsFor(o)

	// Phase 1: the all-near baseline. Its page census sizes the splits and
	// its traffic volume sizes the placement epoch.
	base := tierBase(c)
	base.Mem = &mem.Config{PageBytes: tierPageBytes}
	baseline := measureMultiSharded(c, c.Sweep(), []workload.MeasureConfig{base})[0]
	if baseline.Mem == nil || baseline.Mem.Pages == 0 {
		return nil, fmt.Errorf("tier sweep: baseline measured no touched pages")
	}
	totalPages := baseline.Mem.Pages
	epochLen := o.TierEpochLen
	if epochLen <= 0 {
		// Several placement epochs per measured run, with a floor so tiny
		// -short runs still cross at least one boundary.
		epochLen = (baseline.Mem.Reads + baseline.Mem.Writes) / 8
		if epochLen < 256 {
			epochLen = 256
		}
	}
	o.logf("figT1: baseline pages %d, AMAT %.1f ns, epoch %d", totalPages, baseline.AMATNS, epochLen)

	// Phase 2: the grid. All configs share the replay keys with the
	// baseline, so the recording is already pinned.
	var mcs []workload.MeasureConfig
	var pts []tierPoint
	for _, frac := range fracs {
		nearPages := int64(float64(totalPages) * frac)
		if nearPages < 1 {
			nearPages = 1
		}
		for _, pol := range pols {
			mc := tierBase(c)
			mc.Mem = &mem.Config{
				PageBytes: tierPageBytes,
				Far: &mem.FarConfig{
					NearPages: nearPages,
					Policy:    pol,
					EpochLen:  epochLen,
				},
			}
			mcs = append(mcs, mc)
			pts = append(pts, tierPoint{nearFrac: frac, policy: pol})
		}
	}
	for i, m := range measureMultiSharded(c, c.Sweep(), mcs) {
		pts[i].m = m
		o.logf("figT1: near %.3f %s: AMAT %.1f ns, far-shard-pages %.0f%%",
			pts[i].nearFrac, pts[i].policy, m.AMATNS, 100*m.Mem.FarPageFrac(trace.Shard))
	}
	data := &tierSweepData{baseline: baseline, epochLen: epochLen, points: pts}
	c.curves[key] = data
	return data, nil
}

// tierDollars prices a provisioned split at paper scale: the simulated page
// population scaled back to paper bytes, near pages at DDR cost and the
// rest at far-tier cost.
func tierDollars(totalPages, nearPages int64) float64 {
	near := workload.PaperUnits(nearPages * tierPageBytes)
	far := workload.PaperUnits((totalPages - nearPages) * tierPageBytes)
	return mem.DefaultCost.Dollars(near, far)
}

// tierQPSRel converts AMAT to relative QPS via Equation 1 (cores and SMT
// are constant across the sweep, so IPC ratio is QPS ratio).
func tierQPSRel(amatNS, baseAMATNS float64) float64 {
	return model.IPCFromAMAT(amatNS) / model.IPCFromAMAT(baseAMATNS)
}

// migrationGBs converts migration volume to bandwidth over the mem model's
// own virtual duration ((Reads+Writes) * ArrivalNS).
func migrationGBs(st *mem.Stats, arrivalNS float64) float64 {
	durNS := float64(st.Reads+st.Writes) * arrivalNS
	if durNS <= 0 {
		return 0
	}
	return float64(st.MigratedBytes) / durNS // bytes/ns = GB/s
}

func runFigT1(c *Context) (Result, error) {
	data, err := tierSweep(c)
	if err != nil {
		return nil, err
	}
	base := data.baseline
	baseDollars := tierDollars(base.Mem.Pages, base.Mem.Pages)
	arrival := mem.Config{}.ArrivalNS()

	t := &Table{
		Title: "Figure T1: near:far capacity split x placement policy (tiered memory behind the 512 MiB L4)",
		Headers: []string{"near", "policy", "AMAT ns", "dAMAT", "row-hit",
			"far shard pages", "far reads", "mig GB/s", "QPS/mem$"},
		Note: fmt.Sprintf("all-near baseline AMAT %s ns; QPS via Eq. 1; memory dollars at %s/GiB near, %s/GiB far (paper-scale capacity); epoch %d transactions",
			trimFloat(base.AMATNS), trimFloat(mem.DefaultCost.NearDollarsPerGiB), trimFloat(mem.DefaultCost.FarDollarsPerGiB), data.epochLen),
	}
	t.AddRow("100%", "all-near", trimFloat(base.AMATNS), pct(0), pct(base.Mem.RowHitRate()),
		pct(0), pct(0), "0", trimFloat(1.0))
	for _, p := range data.points {
		st := p.m.Mem
		rel := tierQPSRel(p.m.AMATNS, base.AMATNS)
		dollars := tierDollars(base.Mem.Pages, st.NearPages)
		qpd := rel * baseDollars / dollars
		t.AddRow(
			pct(p.nearFrac),
			p.policy.String(),
			trimFloat(p.m.AMATNS),
			pct(p.m.AMATNS/base.AMATNS-1),
			pct(st.RowHitRate()),
			pct(st.FarPageFrac(trace.Shard)),
			pct(st.FarReadFrac()),
			trimFloat(migrationGBs(st, arrival)),
			trimFloat(qpd),
		)
	}
	reportTierMetrics(c, data)
	return t, nil
}

// reportTierMetrics publishes per-point tier gauges into the run's metrics
// registry (cmd/searchsim -metrics). Every value is a pure function of the
// measured sweep, so the registry stays byte-deterministic for a fixed seed.
func reportTierMetrics(c *Context, data *tierSweepData) {
	reg := c.Opts.Metrics
	if reg == nil {
		return
	}
	base := data.baseline
	reg.Gauge("tier_baseline_amat_ns").Set(base.AMATNS)
	reg.Gauge("tier_baseline_row_hit_rate").Set(base.Mem.RowHitRate())
	arrival := mem.Config{}.ArrivalNS()
	baseDollars := tierDollars(base.Mem.Pages, base.Mem.Pages)
	for _, p := range data.points {
		st := p.m.Mem
		ln := obs.L("near", pct(p.nearFrac))
		lp := obs.L("policy", p.policy.String())
		reg.Gauge("tier_amat_ns", ln, lp).Set(p.m.AMATNS)
		reg.Gauge("tier_row_hit_rate", ln, lp).Set(st.RowHitRate())
		reg.Gauge("tier_far_shard_page_frac", ln, lp).Set(st.FarPageFrac(trace.Shard))
		reg.Gauge("tier_far_read_frac", ln, lp).Set(st.FarReadFrac())
		reg.Gauge("tier_migration_gbs", ln, lp).Set(migrationGBs(st, arrival))
		reg.Gauge("tier_qps_per_mem_dollar", ln, lp).Set(
			tierQPSRel(p.m.AMATNS, base.AMATNS) * baseDollars / tierDollars(base.Mem.Pages, st.NearPages))
	}
}

func runFigT2(c *Context) (Result, error) {
	data, err := tierSweep(c)
	if err != nil {
		return nil, err
	}
	o := c.Opts
	pols, err := tierPoliciesFor(o)
	if err != nil {
		return nil, err
	}
	// Dynamic policies only: static never migrates, so epoch length is
	// moot for it.
	var dyn []mem.PagePolicy
	for _, p := range pols {
		if p != mem.PolicyStatic {
			dyn = append(dyn, p)
		}
	}
	if len(dyn) == 0 {
		return nil, fmt.Errorf("figT2: no dynamic policy selected (TierPolicy %q)", o.TierPolicy)
	}
	base := data.baseline
	frac := 0.25
	if o.TierNearFrac > 0 {
		frac = o.TierNearFrac
	}
	nearPages := int64(float64(base.Mem.Pages) * frac)
	if nearPages < 1 {
		nearPages = 1
	}

	epochs := []int64{data.epochLen / 4, data.epochLen, data.epochLen * 4}
	if epochs[0] < 64 {
		epochs[0] = 64
	}
	var mcs []workload.MeasureConfig
	type cell struct {
		pol   mem.PagePolicy
		epoch int64
	}
	var cells []cell
	for _, pol := range dyn {
		for _, ep := range epochs {
			mc := tierBase(c)
			mc.Mem = &mem.Config{
				PageBytes: tierPageBytes,
				Far: &mem.FarConfig{
					NearPages: nearPages,
					Policy:    pol,
					EpochLen:  ep,
				},
			}
			mcs = append(mcs, mc)
			cells = append(cells, cell{pol: pol, epoch: ep})
		}
	}
	arrival := mem.Config{}.ArrivalNS()
	t := &Table{
		Title: fmt.Sprintf("Figure T2: placement-epoch sensitivity at a %s near split", pct(frac)),
		Headers: []string{"policy", "epoch", "AMAT ns", "dAMAT", "migrations",
			"mig GB/s", "far reads"},
		Note: fmt.Sprintf("all-near baseline AMAT %s ns; short epochs react faster but migrate more", trimFloat(base.AMATNS)),
	}
	for i, m := range measureMultiSharded(c, c.Sweep(), mcs) {
		st := m.Mem
		t.AddRow(
			cells[i].pol.String(),
			fmt.Sprintf("%d", cells[i].epoch),
			trimFloat(m.AMATNS),
			pct(m.AMATNS/base.AMATNS-1),
			fmt.Sprintf("%d", st.Migrations),
			trimFloat(migrationGBs(st, arrival)),
			pct(st.FarReadFrac()),
		)
	}
	return t, nil
}
