package experiments

import (
	"fmt"

	"searchmem/internal/cache"
	"searchmem/internal/trace"
	"searchmem/internal/workload"
)

func init() {
	register(Experiment{
		ID:       "fig6a",
		Title:    "Cache misses across the hierarchy by access type",
		PaperRef: "Figure 6a",
		Run:      runFig6a,
	})
	register(Experiment{
		ID:       "fig6b",
		Title:    "Working-set hit-rate curve vs L3 capacity",
		PaperRef: "Figure 6b",
		Run:      runFig6b,
	})
	register(Experiment{
		ID:       "fig6c",
		Title:    "Working-set MPKI curve vs L3 capacity",
		PaperRef: "Figure 6c",
		Run:      runFig6c,
	})
	register(Experiment{
		ID:       "fig7a",
		Title:    "MPKI reduction when eliminating conflict misses",
		PaperRef: "Figure 7a",
		Run:      runFig7a,
	})
	register(Experiment{
		ID:       "fig7b",
		Title:    "MPKI sensitivity to cache block size",
		PaperRef: "Figure 7b",
		Run:      runFig7b,
	})
}

// runFig6a simulates the PLT1-like hierarchy and reports per-level MPKI
// broken down by segment.
func runFig6a(c *Context) (Result, error) {
	o := c.Opts
	m := workload.Measure(c.Leaf(), workload.MeasureConfig{
		Platform: c.PLT1(),
		Cores:    1, SMTWays: 1, Threads: 1,
		Budget:         o.Budget,
		Seed:           o.Seed,
		WarmupFraction: 2.0,
	})
	t := &Table{
		Title:   "Figure 6a: per-level MPKI by access type (S1 leaf, PLT1-like)",
		Headers: []string{"level", "code", "heap", "shard", "stack"},
		Note:    "shared L3 eliminates instruction misses; heap and shard survive to memory",
	}
	ki := float64(m.Instructions) / 1000
	for _, lvl := range []struct {
		name string
		st   cache.AccessStats
	}{{"L1", m.L1}, {"L2", m.L2}, {"L3", m.L3}} {
		t.AddRow(lvl.name,
			fmt.Sprintf("%.2f", float64(lvl.st.SegMisses(trace.Code))/ki),
			fmt.Sprintf("%.2f", float64(lvl.st.SegMisses(trace.Heap))/ki),
			fmt.Sprintf("%.2f", float64(lvl.st.SegMisses(trace.Shard))/ki),
			fmt.Sprintf("%.2f", float64(lvl.st.SegMisses(trace.Stack))/ki))
	}
	return t, nil
}

// sweepCapacities are the paper's Figure 6b/6c x values (MiB).
var sweepCapacities = []int64{4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048}

// segProfileResult is the memoized outcome of segProfile.
type segProfileResult struct {
	sds   *segmentStackDists
	instr int64
}

// segProfile synthesizes the capacity-sweep trace once (memoized in the
// Replayer), then profiles every segment's stack distances in one batched
// pass over a read-only View of the shared recording: each decoded window
// is routed access-by-access to the owning segment's profiler. A segment's
// profiler sees exactly the subsequence a per-segment FilterSegment pass
// would deliver, in the same order, so the profile is unchanged — but the
// 4x re-decode of the trace (once per segment) is gone. Figures 6b and 6c
// share the result via the context's curve cache.
func segProfile(c *Context) (*segmentStackDists, int64) {
	c.curveMu.Lock()
	defer c.curveMu.Unlock()
	key := curveKey{kind: "segprof"}
	if cached, ok := c.curves[key]; ok {
		r := cached.(segProfileResult)
		return r.sds, r.instr
	}
	o := c.Opts
	l2eff := int64(o.Threads) * workload.SimUnits(256<<10)
	sh, st := c.Sweep().Trace(o.Threads, o.Budget*4, o.Seed)
	sds := newSegmentStackDists(l2eff)
	v := sh.Cursor()
	for {
		b := v.NextBatch()
		if len(b) == 0 {
			break
		}
		for i := range b {
			sds.Observe(b[i])
		}
	}
	c.curves[key] = segProfileResult{sds: sds, instr: st.Instructions}
	return sds, st.Instructions
}

// runFig6b sweeps L3 capacity (paper units) over the sweep profile's
// per-segment reuse profiles.
func runFig6b(c *Context) (Result, error) {
	o := c.Opts
	l2eff := int64(o.Threads) * workload.SimUnits(256<<10)
	sds, _ := segProfile(c)
	fig := &Figure{
		Title:  "Figure 6b: working-set hit rate vs L3 capacity (paper MiB)",
		XLabel: "L3 MiB", YLabel: "hit rate",
		Note: "code saturates by 16 MiB; heap ~95% at 1 GiB; shard barely cacheable",
	}
	for _, mb := range sweepCapacities {
		capSim := workload.SimUnits(mb << 20)
		fig.Add("code", float64(mb), sds.hitRate(trace.Code, capSim))
		fig.Add("heap", float64(mb), sds.hitRate(trace.Heap, capSim))
		fig.Add("shard", float64(mb), sds.hitRate(trace.Shard, capSim))
		// Combined: weighted by post-L2 miss volume.
		var miss, base float64
		for seg := trace.Segment(0); seg < trace.NumSegments; seg++ {
			miss += sds.sds[seg].Misses(seg, capSim)
			base += sds.sds[seg].Misses(seg, l2eff)
		}
		comb := 0.0
		if base > 0 {
			comb = 1 - miss/base
			if comb < 0 {
				comb = 0
			}
		}
		fig.Add("combined", float64(mb), comb)
	}
	return fig, nil
}

// runFig6c is the MPKI view of the same sweep.
func runFig6c(c *Context) (Result, error) {
	sds, instr := segProfile(c)
	fig := &Figure{
		Title:  "Figure 6c: working-set MPKI vs L3 capacity (paper MiB)",
		XLabel: "L3 MiB", YLabel: "MPKI",
		Note: "paper: combined MPKI 3.51 at 32 MiB falling to 1.37 at 1 GiB; reproduced absolute MPKIs are inflated by compulsory misses (runs are ~10^7 instructions vs the paper's 1.35x10^11), the capacity-driven shape is the comparison target",
	}
	for _, mb := range sweepCapacities {
		capSim := workload.SimUnits(mb << 20)
		fig.Add("code", float64(mb), sds.mpki(trace.Code, capSim, instr))
		fig.Add("heap", float64(mb), sds.mpki(trace.Heap, capSim, instr))
		fig.Add("shard", float64(mb), sds.mpki(trace.Shard, capSim, instr))
		fig.Add("combined", float64(mb), sds.combinedMPKI(capSim, instr))
	}
	return fig, nil
}

// runFig7a compares the default hierarchy against fully-associative caches
// of the same capacities.
func runFig7a(c *Context) (Result, error) {
	o := c.Opts
	base := workload.MeasureConfig{
		Platform: c.PLT1(),
		Cores:    1, SMTWays: 1, Threads: 1,
		Budget:         o.Budget,
		Seed:           o.Seed,
		WarmupFraction: 1.5,
	}
	faPlat := c.PLT1()
	faPlat.L1I.Assoc, faPlat.L1D.Assoc, faPlat.L2.Assoc, faPlat.L3.Assoc = 0, 0, 0, 0
	faCfg := base
	faCfg.Platform = faPlat
	leaf := c.Leaf()
	// Both variants replay the same recording (identical keys, different
	// simulated hierarchies), so they parallelize cleanly.
	ms := runPoints(c, 0, 2, func(i int) workload.Metrics {
		if i == 0 {
			return workload.Measure(leaf, base)
		}
		return workload.Measure(leaf, faCfg)
	})
	def, fa := ms[0], ms[1]

	t := &Table{
		Title:   "Figure 7a: MPKI decrease with fully-associative caches",
		Headers: []string{"cache", "default MPKI", "fully-assoc MPKI", "decrease"},
		Note:    "paper: ~7.4% at L1, <1% at L2/L3 — conflicts are not the problem",
	}
	rows := []struct {
		name string
		d, f float64
	}{
		{"L1-I", def.L1IMPKI, fa.L1IMPKI},
		{"L1-D", def.L1DMPKI, fa.L1DMPKI},
		{"L2", def.L2InstrMPKI + def.L2DataMPKI, fa.L2InstrMPKI + fa.L2DataMPKI},
		{"L3", def.L3LoadMPKI + def.L3InstrMPKI, fa.L3LoadMPKI + fa.L3InstrMPKI},
	}
	for _, r := range rows {
		dec := 0.0
		if r.d > 0 {
			dec = (r.d - r.f) / r.d
		}
		t.AddRow(r.name, fmt.Sprintf("%.2f", r.d), fmt.Sprintf("%.2f", r.f), pct(dec))
	}
	return t, nil
}

// runFig7b sweeps the block size of every cache level.
func runFig7b(c *Context) (Result, error) {
	o := c.Opts
	fig := &Figure{
		Title:  "Figure 7b: MPKI vs cache block size (all caches)",
		XLabel: "block size", YLabel: "MPKI",
		Note: "paper: 64 B near-optimal with limited benefit from larger lines; the reproduction's sequential shard scans give larger lines more benefit than production's more irregular accesses",
		// Block sizes are sub-MiB byte counts: render them with adaptive
		// units instead of raw floats.
		XFormat: func(x float64) string { return mib(int64(x)) },
	}
	blockSizes := []int{32, 64, 128, 256, 512, 1024}
	leaf := c.Leaf()
	ms := runPoints(c, 0, len(blockSizes), func(i int) workload.Metrics {
		bs := blockSizes[i]
		plat := c.PLT1()
		for _, cfg := range []*cache.Config{&plat.L1I, &plat.L1D, &plat.L2, &plat.L3} {
			cfg.BlockSize = bs
			// Keep blocks/ways divisibility.
			blocks := cfg.Size / int64(bs)
			if cfg.Assoc > 0 && blocks%int64(cfg.Assoc) != 0 {
				blocks -= blocks % int64(cfg.Assoc)
				cfg.Size = blocks * int64(bs)
			}
		}
		return workload.Measure(leaf, workload.MeasureConfig{
			Platform: plat,
			Cores:    1, SMTWays: 1, Threads: 1,
			Budget:         o.Budget,
			Seed:           o.Seed,
			WarmupFraction: 1.5,
		})
	})
	for i, m := range ms {
		bs := float64(blockSizes[i])
		fig.Add("L1-I", bs, m.L1IMPKI)
		fig.Add("L1-D", bs, m.L1DMPKI)
		fig.Add("L2", bs, m.L2InstrMPKI+m.L2DataMPKI)
		fig.Add("L3", bs, m.L3LoadMPKI+m.L3InstrMPKI)
	}
	return fig, nil
}
