package experiments

import (
	"fmt"
	"math"

	"searchmem/internal/cpu"
	"searchmem/internal/model"
	"searchmem/internal/stats"
	"searchmem/internal/workload"
)

func init() {
	register(Experiment{
		ID:       "fig8a",
		Title:    "IPC vs L3 hit rate (CAT partitioning sweep)",
		PaperRef: "Figure 8a",
		Run:      runFig8a,
	})
	register(Experiment{
		ID:       "fig8b",
		Title:    "IPC vs L3 average memory access time (Equation 1)",
		PaperRef: "Figure 8b",
		Run:      runFig8b,
	})
	register(Experiment{
		ID:       "fig9",
		Title:    "QPS vs L3-equivalent area across core/cache splits",
		PaperRef: "Figure 9",
		Run:      runFig9,
	})
	register(Experiment{
		ID:       "fig10",
		Title:    "Performance when trading L3 capacity for cores",
		PaperRef: "Figure 10",
		Run:      runFig10,
	})
	register(Experiment{
		ID:       "fig11",
		Title:    "Decomposition: core gains vs L3-capacity losses",
		PaperRef: "Figure 11",
		Run:      runFig11,
	})
}

// catSweep measures (hit rate, AMAT, IPC) at each CAT way allocation on a
// loaded multi-threaded system, as the paper's CAT experiments are.
func catSweep(c *Context) (xsHit, xsAMAT, ysIPC []float64) {
	o := c.Opts
	threads := min(o.Threads, 16)
	cores := (threads + 1) / 2
	// The ten way-allocations differ only in L3 partitioning, so they ride
	// the single-pass MeasureMulti kernel: the shared leaf recording is
	// decoded once per batch per shard instead of once per point.
	base := workload.MeasureConfig{
		Platform: c.PLT1(),
		Cores:    cores, SMTWays: 2, Threads: threads,
		Budget:         o.Budget * 2,
		Seed:           o.Seed,
		WarmupFraction: 1.5,
	}
	mcs := make([]workload.MeasureConfig, 10)
	for i := range mcs {
		mcs[i] = base
		mcs[i].L3Ways = 2 + 2*i
	}
	for _, m := range measureMultiSharded(c, c.Leaf(), mcs) {
		xsHit = append(xsHit, m.L3HitRate)
		xsAMAT = append(xsAMAT, m.AMATNS)
		ysIPC = append(ysIPC, m.IPC)
	}
	return
}

func runFig8a(c *Context) (Result, error) {
	hits, _, ipcs := catSweep(c)
	fig := &Figure{
		Title:  "Figure 8a: IPC vs L3 hit rate (CAT ways 2..20)",
		XLabel: "L3 hit rate", YLabel: "IPC",
	}
	for i := range hits {
		fig.Add("IPC", round3(hits[i]), ipcs[i])
	}
	if line, err := stats.FitLine(hits, ipcs); err == nil {
		fig.Note = fmt.Sprintf("linear fit: IPC = %.3f*h + %.3f (R2 = %.3f); paper reports a strong linear relationship",
			line.Slope, line.Intercept, line.R2)
	}
	return fig, nil
}

func runFig8b(c *Context) (Result, error) {
	_, amats, ipcs := catSweep(c)
	fig := &Figure{
		Title:  "Figure 8b: IPC vs AMAT_L3",
		XLabel: "AMAT ns", YLabel: "IPC",
	}
	for i := range amats {
		fig.Add("IPC", round3(amats[i]), ipcs[i])
	}
	if line, err := stats.FitLine(amats, ipcs); err == nil {
		fig.Note = fmt.Sprintf(
			"fit: IPC = %.2e*AMAT + %.3f (R2 = %.3f); paper Equation 1: IPC = -8.62e-03*AMAT + 1.78",
			line.Slope, line.Intercept, line.R2)
	}
	return fig, nil
}

func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

// hitCurve measures the combined post-L2 hit-rate curve of the micro leaf
// at the given thread count (the h(C) function behind Figures 9-11 and 14).
// The run must span several re-touch intervals of the static-rank table for
// long-distance reuse to register, so it uses an extended budget; the
// result is cached in the context.
func hitCurve(c *Context, threads int) *l3Curve {
	c.curveMu.Lock()
	defer c.curveMu.Unlock()
	key := curveKey{kind: "l3curve", arg: int64(threads)}
	if cached, ok := c.curves[key]; ok {
		return cached.(*l3Curve)
	}
	o := c.Opts
	sd, _ := combinedCurveFromRun(c.Leaf(), threads, o.Budget*8, o.Seed+77)
	c.curves[key] = sd
	return sd
}

// perfModel converts an L3 (and optional L4) operating point into IPC via
// the calibrated Top-Down core model: data misses through AMAT, instruction
// misses through the front-end latency term. This mechanistic composition is
// what gives the paper's "L3 must hold more than the instruction working
// set" floor (§IV-B) — Equation 1 alone cannot see instruction misses.
type perfModel struct {
	curve *l3Curve
	base  workload.Metrics
	core  cpu.CoreParams
	tL3   float64
	tMEM  float64
}

// newPerfModel measures the baseline operating point once (cached per
// context) and binds it to the hit-rate curve.
func newPerfModel(c *Context) *perfModel {
	pmKey := curveKey{kind: "perfmodel"}
	c.curveMu.Lock()
	if cached, ok := c.curves[pmKey]; ok {
		c.curveMu.Unlock()
		return cached.(*perfModel)
	}
	c.curveMu.Unlock()

	o := c.Opts
	threads := min(o.Threads, 16)
	// The model needs three recordings with *different* keys (curve run,
	// warmup, measured run). Pin their recording order to the serial
	// engine's before any parallel group can race replays against them.
	c.Leaf().Record(threads, o.Budget*8, o.Seed+77)
	c.Leaf().Record(threads, o.Budget*3, o.Seed^0xbeef)
	c.Leaf().Record(threads, o.Budget*2, o.Seed)
	curve := hitCurve(c, threads)
	plat := c.PLT1()
	base := workload.Measure(c.Leaf(), workload.MeasureConfig{
		Platform: plat,
		Cores:    (threads + 1) / 2, SMTWays: 2, Threads: threads,
		Budget:         o.Budget * 2,
		Seed:           o.Seed,
		WarmupFraction: 1.5,
	})
	pm := &perfModel{curve: curve, base: base, core: plat.Core, tL3: plat.L3LatencyNS, tMEM: plat.MemLatencyNS}
	c.curveMu.Lock()
	c.curves[pmKey] = pm
	c.curveMu.Unlock()
	return pm
}

// ipcAt returns modeled IPC with the given L3 capacity and optional L4
// (hL4 = 0 disables it).
func (p *perfModel) ipcAt(l3 int64, hL4, tL4, l4Pen float64) float64 {
	hData := p.curve.dataHitRate(l3)
	hCode := p.curve.codeHitRate(l3)
	amat := model.AMATWithL4(hData, hL4, p.tL3, tL4, p.tMEM, l4Pen)
	rates := cpu.EventRates{
		BranchMispredicts: p.base.BranchMPKI / 1000,
		L1IMisses:         p.base.L1IMPKI / 1000,
		L2IMisses:         p.base.L2InstrMPKI / 1000,
		L1DMisses:         p.base.L1DMPKI / 1000,
		L2DMisses:         p.base.L2DataMPKI / 1000,
		L3IMisses:         p.base.L2InstrMPKI / 1000 * (1 - hCode),
		L3AMATNS:          amat,
	}
	return p.core.IPC(rates)
}

// baseRates returns the baseline event rates (shared with the design-space
// exploration).
func (p *perfModel) baseRates() cpu.EventRates {
	return cpu.EventRates{
		BranchMispredicts: p.base.BranchMPKI / 1000,
		L1IMisses:         p.base.L1IMPKI / 1000,
		L2IMisses:         p.base.L2InstrMPKI / 1000,
		L1DMisses:         p.base.L1DMPKI / 1000,
		L2DMisses:         p.base.L2DataMPKI / 1000,
	}
}

// qps returns relative throughput of n cores at an operating point.
func (p *perfModel) qps(n float64, l3 int64, smt float64) float64 {
	return n * p.ipcAt(l3, 0, 0, 0) * smt
}

// qpsWithL4 adds an L4 at the operating point.
func (p *perfModel) qpsWithL4(n float64, l3 int64, smt, hL4, tL4, l4Pen float64) float64 {
	return n * p.ipcAt(l3, hL4, tL4, l4Pen) * smt
}

func runFig9(c *Context) (Result, error) {
	pm := newPerfModel(c)
	plat := c.PLT1()
	area := model.AreaModel{CoreAreaMiB: plat.CoreAreaL3MiB}
	fig := &Figure{
		Title:  "Figure 9: QPS vs L3-equivalent area (core count x L3 ways)",
		XLabel: "area (L3-equivalent MiB)", YLabel: "normalized QPS",
		Note: "each series is one core count; points are CAT allocations of 2..20 ways (2.25 MiB/way)",
	}
	var base float64
	for cores := 4; cores <= 18; cores++ {
		name := fmt.Sprintf("%d cores", cores)
		for ways := 2; ways <= 20; ways += 2 {
			l3 := int64(ways) * 2304 << 10 // 2.25 MiB per way
			q := pm.qps(float64(cores), l3, 1)
			if base == 0 {
				base = q
			}
			fig.Add(name, math.Round(area.Area(cores, float64(l3)/(1<<20)/float64(cores))*100)/100, q/base)
		}
	}
	return fig, nil
}

// fig10Design evaluates one (c MiB/core) point of the trade-off.
type fig10Design struct {
	l3PerCore float64
	cores     float64
	l3Total   int64
	qps       float64
}

// tradeoffSweep computes the Figure 10 designs at fixed total area.
func tradeoffSweep(c *Context, pm *perfModel, smt float64, quantize bool) []fig10Design {
	plat := c.PLT1()
	area := model.AreaModel{CoreAreaMiB: plat.CoreAreaL3MiB}
	totalArea := area.Area(18, 2.5) // the PLT1 baseline floor plan
	var out []fig10Design
	for _, cpc := range []float64{2.25, 2.0, 1.75, 1.5, 1.25, 1.0, 0.75, 0.5} {
		n := area.CoresFor(totalArea, cpc)
		if quantize {
			n = math.Floor(n)
		}
		l3 := int64(n * cpc * (1 << 20))
		out = append(out, fig10Design{
			l3PerCore: cpc,
			cores:     n,
			l3Total:   l3,
			qps:       pm.qps(n, l3, smt),
		})
	}
	return out
}

// baselineQPS is the 18-core, 45 MiB, SMT-on reference.
func baselineQPS(pm *perfModel, smt float64) float64 {
	return pm.qps(18, 45<<20, smt)
}

func runFig10(c *Context) (Result, error) {
	pm := newPerfModel(c)
	smtOn := c.PLT1().SMT.Speedup(2)
	fig := &Figure{
		Title:  "Figure 10: QPS change when trading L3 capacity for cores (iso-area)",
		XLabel: "L3 MiB per core", YLabel: "QPS improvement (fraction)",
		Note: "paper: optimum +14% at 1 MiB/core with 23 cores (SMT on, quantized)",
	}
	type variant struct {
		name     string
		smt      float64
		quantize bool
	}
	for _, v := range []variant{
		{"SMT on", smtOn, false},
		{"SMT on (quantized)", smtOn, true},
		{"SMT off", 1, false},
		{"SMT off (quantized)", 1, true},
	} {
		base := baselineQPS(pm, v.smt)
		for _, d := range tradeoffSweep(c, pm, v.smt, v.quantize) {
			fig.Add(v.name, d.l3PerCore, model.Improvement(base, d.qps))
		}
	}
	return fig, nil
}

func runFig11(c *Context) (Result, error) {
	pm := newPerfModel(c)
	smt := c.PLT1().SMT.Speedup(2)
	base := baselineQPS(pm, smt)
	fig := &Figure{
		Title:  "Figure 11: decomposed effect of repurposing L3 transistors",
		XLabel: "L3 MiB per core", YLabel: "QPS change (fraction)",
		Note: "cores: gain from added cores at baseline hit rate; L3: loss from reduced capacity at 18 cores",
	}
	for _, d := range tradeoffSweep(c, pm, smt, false) {
		coresOnly := pm.qps(d.cores, 45<<20, smt)
		l3Only := pm.qps(18, int64(d.l3PerCore*18*(1<<20)), smt)
		fig.Add("Cores", d.l3PerCore, model.Improvement(base, coresOnly))
		fig.Add("L3 Cache", d.l3PerCore, model.Improvement(base, l3Only))
	}
	return fig, nil
}
