package experiments

import (
	"fmt"

	"searchmem/internal/platform"
	"searchmem/internal/workload"
)

func init() {
	register(Experiment{
		ID:       "table1",
		Title:    "Key performance metrics for search, SPEC CPU2006, and CloudSuite",
		PaperRef: "Table I",
		Run:      runTable1,
	})
	register(Experiment{
		ID:       "table2",
		Title:    "Key attributes of PLT1 and PLT2 platforms",
		PaperRef: "Table II",
		Run:      runTable2,
	})
}

// table1Column is one workload column of Table I.
type table1Column struct {
	name  string
	plat  platform.Platform
	build func() workload.Runner
}

func runTable1(c *Context) (Result, error) {
	o := c.Opts
	shrink := o.Shrink
	plt1, plt2 := c.PLT1(), c.PLT2()
	cols := []table1Column{
		{"S1 leaf", plt1, func() workload.Runner { return c.Leaf() }},
		{"S2 leaf", plt1, func() workload.Runner { return workload.S2Leaf(shrink).Build() }},
		{"S3 leaf", plt1, func() workload.Runner { return workload.S3Leaf(shrink).Build() }},
		{"S1 root", plt1, func() workload.Runner { return workload.S1Root(shrink).Build() }},
		{"S2 root", plt1, func() workload.Runner { return workload.S2Root(shrink).Build() }},
		{"S3 root", plt1, func() workload.Runner { return workload.S3Root(shrink).Build() }},
		{"S1 leaf PLT1", plt1, func() workload.Runner { return c.Leaf() }},
		{"S1 leaf PLT2", plt2, func() workload.Runner { return c.Leaf() }},
		{"400.perlbench", plt1, func() workload.Runner { return workload.SPECPerlbench().Build() }},
		{"429.mcf", plt1, func() workload.Runner { return workload.SPECMcf().Build() }},
		{"445.gobmk", plt1, func() workload.Runner { return workload.SPECGobmk().Build() }},
		{"471.omnetpp", plt1, func() workload.Runner { return workload.SPECOmnetpp().Build() }},
		{"CloudSuite WS", plt1, func() workload.Runner { return workload.CloudSuiteWebSearch().Build() }},
	}

	t := &Table{
		Title:   "Table I: per-core IPC, L3 load MPKI, L2 instr MPKI, branch MPKI",
		Headers: []string{"workload", "IPC", "L3$ load MPKI", "L2$ instr MPKI", "branch MPKI"},
		Note:    "simulated reproduction; paper S1 leaf fleet: 1.34 / 2.20 / 11.83 / 8.98",
	}
	// Columns on the shared leaf replay identical keys; the rest build
	// private workloads, so the columns are independent. The worker cap
	// bounds peak memory from concurrent builds.
	ms := runPoints(c, 4, len(cols), func(i int) workload.Metrics {
		col := cols[i]
		o.logf("table1: measuring %s...", col.name)
		return workload.Measure(col.build(), workload.MeasureConfig{
			Platform: col.plat,
			Cores:    1, SMTWays: 1, Threads: 1,
			Budget:         o.Budget,
			Seed:           o.Seed,
			WarmupFraction: 2.0,
		})
	})
	for i, m := range ms {
		t.AddRow(cols[i].name,
			fmt.Sprintf("%.2f", m.IPC),
			fmt.Sprintf("%.2f", m.L3LoadMPKI),
			fmt.Sprintf("%.2f", m.L2InstrMPKI),
			fmt.Sprintf("%.2f", m.BranchMPKI))
	}
	return t, nil
}

func runTable2(c *Context) (Result, error) {
	t := &Table{
		Title:   "Table II: platform attributes",
		Headers: []string{"attribute", "PLT1", "PLT2"},
	}
	p1, p2 := c.PLT1(), c.PLT2()
	rows := []struct {
		name string
		f    func(platform.Platform) string
	}{
		{"Microarchitecture", func(p platform.Platform) string { return p.Microarch }},
		{"Number of sockets", func(p platform.Platform) string { return fmt.Sprintf("%d", p.Sockets) }},
		{"Cores per socket", func(p platform.Platform) string { return fmt.Sprintf("%d", p.CoresPerSocket) }},
		{"SMT", func(p platform.Platform) string { return fmt.Sprintf("%d", p.SMTWays) }},
		{"Cache block size", func(p platform.Platform) string { return fmt.Sprintf("%d B", p.CacheBlock) }},
		{"L1-I$ (per core)", func(p platform.Platform) string { return fmt.Sprintf("%d KiB", p.L1I.Size>>10) }},
		{"L1-D$ (per core)", func(p platform.Platform) string { return fmt.Sprintf("%d KiB", p.L1D.Size>>10) }},
		{"Private L2$ (per core)", func(p platform.Platform) string { return fmt.Sprintf("%d KiB", p.L2.Size>>10) }},
		{"Shared L3$ (per socket)", func(p platform.Platform) string { return fmt.Sprintf("%d MiB", p.L3.Size>>20) }},
	}
	for _, r := range rows {
		t.AddRow(r.name, r.f(p1), r.f(p2))
	}
	return t, nil
}
