package experiments

import (
	"fmt"

	"searchmem/internal/core"
	"searchmem/internal/model"
)

func init() {
	register(Experiment{
		ID:       "explore",
		Title:    "Design-space exploration with the measured hit curves (extension)",
		PaperRef: "§IV (extension)",
		Run:      runExplore,
	})
}

// measuredCurve adapts the measured stack-distance profiles to the
// core.HitCurve interface: L3 rates from the micro-scale combined curve, L4
// rates from the Figure 13 functional sweep.
type measuredCurve struct {
	pm *perfModel
	l4 []l4Point
}

// DataHitRate implements core.HitCurve.
func (m measuredCurve) DataHitRate(c int64) float64 { return m.pm.curve.dataHitRate(c) }

// CodeHitRate implements core.HitCurve.
func (m measuredCurve) CodeHitRate(c int64) float64 { return m.pm.curve.codeHitRate(c) }

// L4HitRate implements core.HitCurve with log-linear interpolation over the
// simulated sweep points.
func (m measuredCurve) L4HitRate(l4Cap, l3Cap int64) float64 {
	mib := l4Cap >> 20
	var below, above *l4Point
	for i := range m.l4 {
		p := &m.l4[i]
		if p.capMiB <= mib && (below == nil || p.capMiB > below.capMiB) {
			below = p
		}
		if p.capMiB >= mib && (above == nil || p.capMiB < above.capMiB) {
			above = p
		}
	}
	switch {
	case below == nil && above == nil:
		return 0
	case below == nil:
		return above.hitRate * float64(mib) / float64(above.capMiB)
	case above == nil || below.capMiB == above.capMiB:
		return below.hitRate
	default:
		frac := float64(mib-below.capMiB) / float64(above.capMiB-below.capMiB)
		return below.hitRate + frac*(above.hitRate-below.hitRate)
	}
}

func runExplore(c *Context) (Result, error) {
	pm := newPerfModel(c)
	l4Points := sweepL4(c, 0)
	curve := measuredCurve{pm: pm, l4: l4Points}
	plat := c.PLT1()

	ev := core.Evaluator{
		Curve: curve,
		Params: core.Params{
			TL3NS:       plat.L3LatencyNS,
			TMEMNS:      plat.MemLatencyNS,
			IPCLine:     ipcLineFromPerfModel(pm),
			SMTSpeedup:  plat.SMT.Speedup,
			CoreAreaMiB: plat.CoreAreaL3MiB,
			Power: model.PowerModel{
				SocketWatts:   145,
				BaselineCores: plat.CoresPerSocket,
				CorePowerFrac: plat.CorePowerFrac,
			},
			InstrPenalty: func(codeHit float64) float64 {
				// Instruction misses that escape the L3 stall the
				// front end; the penalty mirrors perfModel's L3I term.
				miss := (1 - codeHit) * pm.base.L2InstrMPKI / 1000
				extra := miss * (pm.core.CyclesFromNS(pm.core.MemLatencyNS) - pm.core.L3LatencyCycles) * pm.core.FEOverlap
				base := 1 / pm.base.IPC
				return base / (base + extra)
			},
		},
	}
	baseline := core.Design{Cores: plat.CoresPerSocket, L3MiB: 45, SMTWays: 2}
	baseScore := ev.Evaluate(baseline)

	t := &Table{
		Title:   "Design-space exploration under the measured hit curves",
		Headers: []string{"constraint", "best design", "QPS vs baseline", "rel power", "energy/query"},
		Note:    "paper §IV: iso-area optimum 23 cores / 1 MiB/core (+14%), +1 GiB L4 (+27%); iso-power 18 cores / 1 MiB/core within 5% at -23% area",
	}
	addRow := func(name string, s core.Score) {
		imp, energy := core.Relative(baseScore, s)
		t.AddRow(name, s.Design.String(), pct(imp),
			fmt.Sprintf("%.2f", s.RelPower), fmt.Sprintf("%.2f", energy))
	}

	isoArea, _ := ev.Explore(baseline, core.Constraint{}, nil)
	addRow("iso-area, no L4", isoArea)
	isoAreaL4, _ := ev.Explore(baseline, core.Constraint{}, []int64{256, 512, 1024, 2048})
	addRow("iso-area + L4", isoAreaL4)
	isoPower, _ := ev.Explore(baseline, core.Constraint{MaxRelPower: 1.0}, nil)
	addRow("iso-power, no L4", isoPower)
	return t, nil
}

// ipcLineFromPerfModel adapts the mechanistic per-capacity IPC to the
// Eval(amat) interface the evaluator expects: it refits a line over the
// operating AMAT range so exploration stays fast.
func ipcLineFromPerfModel(pm *perfModel) interface{ Eval(float64) float64 } {
	// Sample AMAT->IPC pairs at representative data hit rates.
	type line struct{ slope, intercept float64 }
	var xs, ys []float64
	for _, h := range []float64{0.3, 0.45, 0.6, 0.75, 0.9} {
		amat := model.AMATL3(h, pm.tL3, pm.tMEM)
		// Hold instruction effects constant here; the evaluator's
		// InstrPenalty carries them separately.
		rates := pm.baseRates()
		rates.L3AMATNS = amat
		rates.L3IMisses = 0
		xs = append(xs, amat)
		ys = append(ys, pm.core.IPC(rates))
	}
	// Least squares.
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	slope := (n*sxy - sx*sy) / (n*sxx - sx*sx)
	l := line{slope: slope, intercept: (sy - slope*sx) / n}
	return evalFunc(func(amat float64) float64 { return l.intercept + l.slope*amat })
}

// evalFunc adapts a func to the Eval interface.
type evalFunc func(float64) float64

// Eval implements the evaluator's IPC line interface.
func (f evalFunc) Eval(x float64) float64 { return f(x) }
