package experiments

import (
	"searchmem/internal/memsim"
	"searchmem/internal/trace"
	"searchmem/internal/workload"
)

func init() {
	register(Experiment{
		ID:       "fig3",
		Title:    "Top-Down breakdown of an S1 leaf on PLT1",
		PaperRef: "Figure 3",
		Run:      runFig3,
	})
	register(Experiment{
		ID:       "fig4",
		Title:    "Allocated memory footprint as cores scale",
		PaperRef: "Figure 4",
		Run:      runFig4,
	})
	register(Experiment{
		ID:       "fig5",
		Title:    "Accessed working set for heap and shard as threads scale",
		PaperRef: "Figure 5",
		Run:      runFig5,
	})
}

func runFig3(c *Context) (Result, error) {
	o := c.Opts
	m := workload.Measure(c.Leaf(), workload.MeasureConfig{
		Platform: c.PLT1(),
		Cores:    1, SMTWays: 1, Threads: 1,
		Budget:         o.Budget,
		Seed:           o.Seed,
		WarmupFraction: 2.0,
	})
	t := &Table{
		Title:   "Figure 3: Top-Down execution-slot breakdown (S1 leaf, PLT1)",
		Headers: []string{"category", "reproduced", "paper"},
		Note:    "slots as % of issue slots; paper values from Figure 3",
	}
	bd := m.Breakdown
	rows := []struct {
		name  string
		got   float64
		paper string
	}{
		{"Retiring", bd.Retiring, "32.0%"},
		{"Bad Speculation", bd.BadSpec, "15.4%"},
		{"FrontEnd: Latency", bd.FELatency, "13.8%"},
		{"FrontEnd: BW", bd.FEBandwidth, "9.7%"},
		{"BackEnd: Core", bd.BECore, "8.5%"},
		{"BackEnd: Memory", bd.BEMemory, "20.5%"},
	}
	for _, r := range rows {
		t.AddRow(r.name, pct(r.got), r.paper)
	}
	return t, nil
}

// runFig4 measures the allocated footprint per segment as the number of
// active cores (sessions) scales: per-thread state (accumulators, stacks)
// grows linearly but the shared index structures dominate, so the heap
// grows sublinearly — the paper's key observation.
func runFig4(c *Context) (Result, error) {
	o := c.Opts
	fig := &Figure{
		Title:  "Figure 4: allocated footprint vs cores (MiB, code/stack/heap)",
		XLabel: "cores", YLabel: "footprint MiB",
		Note: "shard (not shown) dominates at 100s of GiB-equivalent; heap ~10x code/stack and sublinear",
	}
	coreCounts := []int{6, 16, 26, 36}
	// Each point builds and drives a private workload instance, so points are
	// independent; the worker cap bounds peak memory from concurrent builds.
	spaces := runPoints(c, 2, len(coreCounts), func(i int) *memsim.Space {
		cores := coreCounts[i]
		// A fresh workload instance sized for this many sessions.
		wl := workload.S1Leaf(o.Shrink)
		wl.Engine.MaxSessions = cores + 1
		r := wl.Build()
		// Activate one session per core (warm run binds them).
		r.Run(cores, int64(cores)*20_000, o.Seed, workload.Sinks{})
		return r.Space()
	})
	for i, space := range spaces {
		cores := coreCounts[i]
		fig.Add("code", float64(cores), float64(space.FootprintBytes(trace.Code))/(1<<20))
		fig.Add("stack", float64(cores), float64(space.FootprintBytes(trace.Stack))/(1<<20))
		fig.Add("heap", float64(cores), float64(space.FootprintBytes(trace.Heap))/(1<<20))
	}
	return fig, nil
}

// runFig5 measures the accessed working set per segment as threads scale on
// the sweep profile, in paper-equivalent GiB.
func runFig5(c *Context) (Result, error) {
	o := c.Opts
	fig := &Figure{
		Title:  "Figure 5: accessed working set vs threads (paper-equivalent GiB)",
		XLabel: "threads", YLabel: "working set GiB",
		Note: "heap grows sublinearly toward ~1 GiB (shared structures); shard grows with threads",
	}
	var threadCounts []int
	for _, threads := range []int{1, 2, 4, 8, 16} {
		if threads > o.Threads*2 {
			break
		}
		threadCounts = append(threadCounts, threads)
	}
	sets := runPoints(c, 2, len(threadCounts), func(i int) *trace.WorkingSet {
		threads := threadCounts[i]
		wl := workload.S1LeafSweep(o.Shrink)
		r := wl.Build()
		ws := trace.NewWorkingSet(64)
		budget := o.Budget / 2 * int64(threads)
		r.Run(threads, budget, o.Seed, workload.Sinks{Access: ws.Observe})
		return ws
	})
	for i, ws := range sets {
		threads := threadCounts[i]
		fig.Add("heap", float64(threads),
			float64(workload.PaperUnits(int64(ws.Bytes(trace.Heap))))/(1<<30))
		fig.Add("shard", float64(threads),
			float64(workload.PaperUnits(int64(ws.Bytes(trace.Shard))))/(1<<30))
	}
	return fig, nil
}

// combinedCurveFromRun runs a workload into a single global-distance
// profiler (for combined L3 curves at micro scale).
func combinedCurveFromRun(r workload.Runner, threads int, budget int64, seed uint64) (*l3Curve, int64) {
	sd := newL3Curve()
	st := r.Run(threads, budget, seed, workload.Sinks{Access: sd.Observe})
	return sd, st.Instructions
}
