package experiments

import (
	"fmt"

	"searchmem/internal/cache"
	"searchmem/internal/mem"
	"searchmem/internal/obs"
	"searchmem/internal/workload"
)

// This file sweeps the batched kernel's replacement-policy zoo and the
// cache-level predictor. figP1 asks the paper's question one knob deeper
// than Figures 8-11: with shapes fixed at the rebalanced L3 + 512 MiB L4,
// how much of the remaining MPKI is replacement policy rather than
// capacity, per level? figP2 measures the level predictor (PAPERS.md,
// Jalili & Erez): how much of the probe chain can confident predictions
// skip, and what the mispredict penalty costs in attributed-MPKI error.
// Both ride the single-pass MeasureMulti kernel over the shared sweep
// recording, byte-identical serial vs parallel.

func init() {
	register(Experiment{
		ID:       "figP1",
		Title:    "Replacement-policy zoo x hierarchy level",
		PaperRef: "extension (RRIP, Jaleel et al.; PAPERS.md)",
		Run:      runFigP1,
	})
	register(Experiment{
		ID:       "figP2",
		Title:    "Cache-level predictor: table size x confidence threshold",
		PaperRef: "extension (Jalili & Erez, PAPERS.md)",
		Run:      runFigP2,
	})
}

// polVariant is one replacement configuration: a parsed policy plus the
// dead-block insertion flag ("srrip+db").
type polVariant struct {
	name string
	pol  cache.Policy
	db   bool
}

// polVariants is the default policy grid (LRU is the baseline row, not a
// grid entry).
var polVariants = []polVariant{
	{"srrip", cache.SRRIP, false},
	{"brrip", cache.BRRIP, false},
	{"drrip", cache.DRRIP, false},
	{"srrip+db", cache.SRRIP, true},
}

// polLevels is the level grid: the levels whose replacement policy the
// paper's capacity story leaves as the open knob. (L1s are latency-bound
// and tiny; policy barely moves them.)
var polLevels = []string{"L2", "L3", "L4"}

// ParsePolicyVariant resolves a figP1 grid name: a cache.Policy name or the
// dead-block composite "srrip+db". Shared with cmd/searchsim flag
// validation so unknown -policy values fail fast instead of running LRU.
func ParsePolicyVariant(name string) (cache.Policy, bool, error) {
	if name == "srrip+db" {
		return cache.SRRIP, true, nil
	}
	p, err := cache.ParsePolicy(name)
	if err != nil {
		return 0, false, fmt.Errorf("%w (or %q)", err, "srrip+db")
	}
	return p, false, nil
}

// polVariantsFor resolves the policy grid, honoring Options.CachePolicy.
func polVariantsFor(o Options) ([]polVariant, error) {
	if o.CachePolicy == "" {
		return polVariants, nil
	}
	p, db, err := ParsePolicyVariant(o.CachePolicy)
	if err != nil {
		return nil, err
	}
	return []polVariant{{name: o.CachePolicy, pol: p, db: db}}, nil
}

// polLevelsFor resolves the level grid, honoring Options.PolicyLevel.
func polLevelsFor(o Options) ([]string, error) {
	if o.PolicyLevel == "" {
		return polLevels, nil
	}
	for _, l := range polLevels {
		if l == o.PolicyLevel {
			return []string{l}, nil
		}
	}
	return nil, fmt.Errorf("unknown policy level %q (want L2, L3, or L4)", o.PolicyLevel)
}

// polBase is the shared measurement shape: tierBase's rebalanced L3 +
// 512 MiB L4 with the DRAM model attached (so AMAT uses the measured
// effective read latency, not the flat constant), except the L4 is 8-way —
// tierBase's paper-faithful direct-mapped L4 has no victim choice, which
// would make every L4 policy row identical by construction.
func polBase(c *Context) workload.MeasureConfig {
	mc := tierBase(c)
	mc.L4Assoc = 8
	mc.Mem = &mem.Config{PageBytes: tierPageBytes}
	return mc
}

// applyLevelPolicy routes one grid cell onto the MeasureConfig's per-level
// policy knobs.
func applyLevelPolicy(mc *workload.MeasureConfig, level string, v polVariant) {
	switch level {
	case "L2":
		mc.L2Policy = v.pol
	case "L3":
		mc.L3Policy = v.pol
	case "L4":
		mc.L4Policy = v.pol
	default:
		panic("unknown policy level " + level)
	}
	mc.DeadBlock = v.db
}

// levelMPKI extracts the modified level's demand MPKI from a measurement.
func levelMPKI(m workload.Metrics, level string) float64 {
	switch level {
	case "L2":
		return m.L2.MPKI(m.Instructions)
	case "L3":
		return m.L3.MPKI(m.Instructions)
	case "L4":
		return m.L4.MPKI(m.Instructions)
	}
	panic("unknown policy level " + level)
}

// polPoint is one measured grid cell.
type polPoint struct {
	level   string
	variant polVariant
	m       workload.Metrics
}

// polSweepData is the memoized figP1 outcome.
type polSweepData struct {
	baseline workload.Metrics // all-LRU
	points   []polPoint
}

// polSweep measures the all-LRU baseline and the level x policy grid in one
// MeasureMulti pass over the shared sweep recording. Memoized per context.
func polSweep(c *Context) (*polSweepData, error) {
	c.curveMu.Lock()
	defer c.curveMu.Unlock()
	key := curveKey{kind: "polsweep"}
	if cached, ok := c.curves[key]; ok {
		return cached.(*polSweepData), nil
	}
	o := c.Opts
	variants, err := polVariantsFor(o)
	if err != nil {
		return nil, err
	}
	levels, err := polLevelsFor(o)
	if err != nil {
		return nil, err
	}
	mcs := []workload.MeasureConfig{polBase(c)} // index 0: all-LRU baseline
	var pts []polPoint
	for _, level := range levels {
		for _, v := range variants {
			mc := polBase(c)
			applyLevelPolicy(&mc, level, v)
			mcs = append(mcs, mc)
			pts = append(pts, polPoint{level: level, variant: v})
		}
	}
	ms := measureMultiSharded(c, c.Sweep(), mcs)
	for i := range pts {
		pts[i].m = ms[i+1]
		o.logf("figP1: %s %s: MPKI %.3f, IPC %.3f",
			pts[i].level, pts[i].variant.name, levelMPKI(pts[i].m, pts[i].level), pts[i].m.IPC)
	}
	data := &polSweepData{baseline: ms[0], points: pts}
	c.curves[key] = data
	return data, nil
}

func runFigP1(c *Context) (Result, error) {
	data, err := polSweep(c)
	if err != nil {
		return nil, err
	}
	base := data.baseline
	t := &Table{
		Title:   "Figure P1: replacement policy x hierarchy level (rebalanced L3 + 8-way 512 MiB L4, DRAM model attached)",
		Headers: []string{"level", "policy", "MPKI", "dMPKI", "AMAT ns", "IPC", "dIPC"},
		Note: fmt.Sprintf("dMPKI is the modified level's demand MPKI vs the all-LRU baseline (L2 %s / L3 %s / L4 %s); IPC via the calibrated core model with the DRAM model's effective read latency",
			trimFloat(base.L2.MPKI(base.Instructions)), trimFloat(base.L3.MPKI(base.Instructions)), trimFloat(base.L4.MPKI(base.Instructions))),
	}
	for _, level := range polLevels {
		// Baseline row per level so each block reads against its own LRU.
		seen := false
		for _, p := range data.points {
			if p.level != level {
				continue
			}
			if !seen {
				t.AddRow(level, "lru", trimFloat(levelMPKI(base, level)), pct(0),
					trimFloat(base.AMATNS), trimFloat(base.IPC), pct(0))
				seen = true
			}
			baseMPKI := levelMPKI(base, level)
			mpki := levelMPKI(p.m, level)
			dm := 0.0
			if baseMPKI > 0 {
				dm = mpki/baseMPKI - 1
			}
			t.AddRow(level, p.variant.name, trimFloat(mpki), pct(dm),
				trimFloat(p.m.AMATNS), trimFloat(p.m.IPC), pct(p.m.IPC/base.IPC-1))
		}
	}
	reportPolicyMetrics(c, data)
	return t, nil
}

// reportPolicyMetrics publishes per-cell figP1 gauges into the run's metrics
// registry; every value is a pure function of the measured sweep.
func reportPolicyMetrics(c *Context, data *polSweepData) {
	reg := c.Opts.Metrics
	if reg == nil {
		return
	}
	reg.Gauge("policy_baseline_ipc").Set(data.baseline.IPC)
	reg.Gauge("policy_baseline_amat_ns").Set(data.baseline.AMATNS)
	for _, p := range data.points {
		ll := obs.L("level", p.level)
		lp := obs.L("policy", p.variant.name)
		reg.Gauge("policy_mpki", ll, lp).Set(levelMPKI(p.m, p.level))
		reg.Gauge("policy_amat_ns", ll, lp).Set(p.m.AMATNS)
		reg.Gauge("policy_ipc", ll, lp).Set(p.m.IPC)
	}
}

// predGrid is the default figP2 grid.
var (
	predBitsGrid = []int{10, 12, 14}
	predConfGrid = []int{1, 2, 3}
)

// predPoint is one measured predictor configuration.
type predPoint struct {
	bits, conf int
	block      bool // block-indexed instead of per-PC keys
	m          workload.Metrics
}

// predSweepData is the memoized figP2 outcome.
type predSweepData struct {
	baseline workload.Metrics // predictor off
	points   []predPoint
}

// predSweep measures the predictor-off baseline and the table-size x
// confidence grid (plus one block-indexed row at the default shape) in one
// MeasureMulti pass. Memoized per context.
func predSweep(c *Context) (*predSweepData, error) {
	c.curveMu.Lock()
	defer c.curveMu.Unlock()
	key := curveKey{kind: "predsweep"}
	if cached, ok := c.curves[key]; ok {
		return cached.(*predSweepData), nil
	}
	o := c.Opts
	bitsGrid, confGrid := predBitsGrid, predConfGrid
	if o.PredBits > 0 {
		bitsGrid = []int{o.PredBits}
	}
	if o.PredConf > 0 {
		confGrid = []int{o.PredConf}
	}
	mcs := []workload.MeasureConfig{polBase(c)} // index 0: predictor off
	var pts []predPoint
	for _, bits := range bitsGrid {
		for _, conf := range confGrid {
			mc := polBase(c)
			mc.Predictor = &cache.PredictorConfig{TableBits: uint(bits), ConfThreshold: uint8(conf)}
			mcs = append(mcs, mc)
			pts = append(pts, predPoint{bits: bits, conf: conf})
		}
	}
	// One block-indexed row at the grid's last shape, isolating the keying
	// choice (per-PC vs block address) from table geometry.
	lastBits, lastConf := bitsGrid[len(bitsGrid)-1], confGrid[len(confGrid)-1]
	mcBlock := polBase(c)
	mcBlock.Predictor = &cache.PredictorConfig{
		TableBits: uint(lastBits), ConfThreshold: uint8(lastConf), IndexBlock: true,
	}
	mcs = append(mcs, mcBlock)
	pts = append(pts, predPoint{bits: lastBits, conf: lastConf, block: true})

	ms := measureMultiSharded(c, c.Sweep(), mcs)
	for i := range pts {
		pts[i].m = ms[i+1]
		o.logf("figP2: bits %d conf %d block=%v: skip %.1f%%, mispredict %.2f%%",
			pts[i].bits, pts[i].conf, pts[i].block,
			100*pts[i].m.Pred.SkipRate(), 100*pts[i].m.Pred.MispredictRate())
	}
	data := &predSweepData{baseline: ms[0], points: pts}
	c.curves[key] = data
	return data, nil
}

func runFigP2(c *Context) (Result, error) {
	data, err := predSweep(c)
	if err != nil {
		return nil, err
	}
	base := data.baseline
	baseMPKI := base.L3.MPKI(base.Instructions)
	t := &Table{
		Title: "Figure P2: cache-level predictor, table size x confidence threshold",
		Headers: []string{"bits", "conf", "keys", "coverage", "pred hit", "mispredict",
			"probe skip", "dMPKI", "dAMAT"},
		Note: fmt.Sprintf("predictor-off baseline: L3 MPKI %s, AMAT %s ns; prediction overlays probe accounting on the authoritative chain, so dMPKI and dAMAT are exact-zero cross-checks; probe skip is serial probes avoided vs the full chain, net of mispredict penalties",
			trimFloat(baseMPKI), trimFloat(base.AMATNS)),
	}
	for _, p := range data.points {
		keys := "per-PC"
		if p.block {
			keys = "block"
		}
		ps := p.m.Pred
		dm := 0.0
		if baseMPKI > 0 {
			dm = p.m.L3.MPKI(p.m.Instructions)/baseMPKI - 1
		}
		t.AddRow(
			fmt.Sprintf("%d", p.bits),
			fmt.Sprintf("%d", p.conf),
			keys,
			pct(ps.CoverageRate()),
			pct(ps.HitRate()),
			pct(ps.MispredictRate()),
			pct(ps.SkipRate()),
			pct(dm),
			pct(p.m.AMATNS/base.AMATNS-1),
		)
	}
	reportPredictorMetrics(c, data)
	return t, nil
}

// reportPredictorMetrics publishes per-point figP2 gauges.
func reportPredictorMetrics(c *Context, data *predSweepData) {
	reg := c.Opts.Metrics
	if reg == nil {
		return
	}
	reg.Gauge("pred_baseline_l3_mpki").Set(data.baseline.L3.MPKI(data.baseline.Instructions))
	for _, p := range data.points {
		keys := "per-PC"
		if p.block {
			keys = "block"
		}
		lb := obs.L("bits", fmt.Sprintf("%d", p.bits))
		lc := obs.L("conf", fmt.Sprintf("%d", p.conf))
		lk := obs.L("keys", keys)
		reg.Gauge("pred_coverage", lb, lc, lk).Set(p.m.Pred.CoverageRate())
		reg.Gauge("pred_hit_rate", lb, lc, lk).Set(p.m.Pred.HitRate())
		reg.Gauge("pred_skip_rate", lb, lc, lk).Set(p.m.Pred.SkipRate())
		reg.Gauge("pred_l3_mpki", lb, lc, lk).Set(p.m.L3.MPKI(p.m.Instructions))
	}
}
