package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"searchmem/internal/workload"
)

// This file is the deterministic parallel sweep engine (DESIGN.md §10).
//
// A sweep evaluates one configuration ("point") per index over a memoized
// workload recording. Points are independent cache simulations, so they fan
// out across worker goroutines; determinism is preserved because
//
//   - results land in a slot-per-index slice (collection order never depends
//     on scheduling), and
//   - every converted sweep drives its shared runner through a Replayer with
//     a uniform key set per group (or pre-records heterogeneous keys via
//     Replayer.Record before fanning out), so recording order — the only
//     stateful part — is identical to the serial engine's.
//
// With Options.Parallel off, runPoints degenerates to a plain serial loop
// over the same point function, byte-identical by construction.

// sweepWorkers picks the worker count for an n-point sweep. Serial mode and
// degenerate sweeps get 1. Parallel mode uses GOMAXPROCS but never fewer
// than 2 workers, so the concurrent paths are exercised (and race-checked)
// even on single-core hosts; maxWorkers > 0 caps the fan-out for
// memory-heavy sweeps that build fresh workloads per point.
func (c *Context) sweepWorkers(n, maxWorkers int) int {
	if !c.Opts.Parallel || n <= 1 {
		return 1
	}
	w := runtime.GOMAXPROCS(0)
	if w < 2 {
		w = 2
	}
	if maxWorkers > 0 && w > maxWorkers {
		w = maxWorkers
	}
	if w > n {
		w = n
	}
	return w
}

// runPoints evaluates point(0..n-1) and returns the results in index order.
// Under Options.Parallel the points run on sweepWorkers(n, maxWorkers)
// goroutines with work-stealing over an atomic counter; otherwise they run
// in a serial loop. A panicking point does not wedge the sweep: workers
// capture per-index panics and the lowest-index one is re-raised after all
// workers finish, so failure behavior is deterministic too.
func runPoints[T any](c *Context, maxWorkers, n int, point func(i int) T) []T {
	out := make([]T, n)
	workers := c.sweepWorkers(n, maxWorkers)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = point(i)
		}
		return out
	}

	// Workers collect results (and panics) into worker-local slices merged
	// after the barrier. Storing straight into out[i] from every worker
	// false-shares cache lines whenever T is small — adjacent indices live
	// on one line, and the work-stealing counter hands adjacent indices to
	// different workers — which showed up as parallel sweeps barely pacing
	// their serial equivalents. Collection order still never affects the
	// result: each value lands in its own index slot at merge time.
	type indexed struct {
		i int
		v T
	}
	type failure struct {
		i int
		r any
	}
	vals := make([][]indexed, workers)
	fails := make([][]failure, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var locals []indexed
			var panics []failure
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					break
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panics = append(panics, failure{i: i, r: r})
						}
					}()
					locals = append(locals, indexed{i: i, v: point(i)})
				}()
			}
			vals[w], fails[w] = locals, panics
		}(w)
	}
	wg.Wait()
	worst := failure{i: -1}
	for _, fs := range fails {
		for _, f := range fs {
			if worst.i < 0 || f.i < worst.i {
				worst = f
			}
		}
	}
	if worst.i >= 0 {
		panic(fmt.Sprintf("sweep point %d: %v", worst.i, worst.r))
	}
	for _, vs := range vals {
		for _, e := range vs {
			out[e.i] = e.v
		}
	}
	return out
}

// measureMultiSharded evaluates one MeasureConfig per index through
// workload.MeasureMulti, sharding the list into contiguous groups across
// the sweep workers. Each group simulates all its hierarchies in a single
// pass over the shared recording — decoded once per batch, not once per
// configuration — and groups replay concurrently under Options.Parallel.
// The replay keys (all configs of a MeasureMulti call share them) are
// pre-recorded serially, so recording order matches the serial engine and
// results are byte-identical for any worker count.
func measureMultiSharded(c *Context, r *workload.Replayer, mcs []workload.MeasureConfig) []workload.Metrics {
	n := len(mcs)
	if n == 0 {
		return nil
	}
	workload.PreRecord(r, mcs[0])
	workers := c.sweepWorkers(n, 0)
	if workers <= 1 {
		return workload.MeasureMulti(r, mcs)
	}
	parts := runPoints(c, 0, workers, func(w int) []workload.Metrics {
		return workload.MeasureMulti(r, mcs[w*n/workers:(w+1)*n/workers])
	})
	out := make([]workload.Metrics, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
