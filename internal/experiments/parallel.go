package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the deterministic parallel sweep engine (DESIGN.md §10).
//
// A sweep evaluates one configuration ("point") per index over a memoized
// workload recording. Points are independent cache simulations, so they fan
// out across worker goroutines; determinism is preserved because
//
//   - results land in a slot-per-index slice (collection order never depends
//     on scheduling), and
//   - every converted sweep drives its shared runner through a Replayer with
//     a uniform key set per group (or pre-records heterogeneous keys via
//     Replayer.Record before fanning out), so recording order — the only
//     stateful part — is identical to the serial engine's.
//
// With Options.Parallel off, runPoints degenerates to a plain serial loop
// over the same point function, byte-identical by construction.

// sweepWorkers picks the worker count for an n-point sweep. Serial mode and
// degenerate sweeps get 1. Parallel mode uses GOMAXPROCS but never fewer
// than 2 workers, so the concurrent paths are exercised (and race-checked)
// even on single-core hosts; maxWorkers > 0 caps the fan-out for
// memory-heavy sweeps that build fresh workloads per point.
func (c *Context) sweepWorkers(n, maxWorkers int) int {
	if !c.Opts.Parallel || n <= 1 {
		return 1
	}
	w := runtime.GOMAXPROCS(0)
	if w < 2 {
		w = 2
	}
	if maxWorkers > 0 && w > maxWorkers {
		w = maxWorkers
	}
	if w > n {
		w = n
	}
	return w
}

// runPoints evaluates point(0..n-1) and returns the results in index order.
// Under Options.Parallel the points run on sweepWorkers(n, maxWorkers)
// goroutines with work-stealing over an atomic counter; otherwise they run
// in a serial loop. A panicking point does not wedge the sweep: workers
// capture per-index panics and the lowest-index one is re-raised after all
// workers finish, so failure behavior is deterministic too.
func runPoints[T any](c *Context, maxWorkers, n int, point func(i int) T) []T {
	out := make([]T, n)
	workers := c.sweepWorkers(n, maxWorkers)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = point(i)
		}
		return out
	}

	panics := make([]any, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panics[i] = r
						}
					}()
					out[i] = point(i)
				}()
			}
		}()
	}
	wg.Wait()
	for i, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("sweep point %d: %v", i, p))
		}
	}
	return out
}
