package experiments

import (
	"searchmem/internal/cache"
	"searchmem/internal/trace"
)

// cacheStackDist augments the one-pass stack-distance profiler with
// cross-segment totals and the post-L2 hit-rate conventions shared by the
// capacity-sweep experiments.
type cacheStackDist struct {
	*cache.StackDist
}

// newL3Curve returns a fresh combined-curve profiler at 64 B blocks.
func newL3Curve() *l3Curve {
	return &l3Curve{sd: &cacheStackDist{cache.NewStackDist(64)}}
}

// TotalMisses sums misses at a capacity across segments.
func (s *cacheStackDist) TotalMisses(capacity int64) float64 {
	var m float64
	for seg := trace.Segment(0); seg < trace.NumSegments; seg++ {
		m += s.Misses(seg, capacity)
	}
	return m
}

// SegHitRate returns a segment's post-L2 hit rate at a capacity, optionally
// excluding cold misses (steady-state view for finite working sets; see
// DESIGN.md and the calibration tests).
func (s *cacheStackDist) SegHitRate(seg trace.Segment, capacity int64, excludeCold bool) float64 {
	var cold float64
	if excludeCold {
		cold = float64(s.ColdMisses(seg))
	}
	l2eff := s.l2eff()
	base := s.Misses(seg, l2eff) - cold
	if base <= 0 {
		return 1
	}
	h := 1 - (s.Misses(seg, capacity)-cold)/base
	if h < 0 {
		return 0
	}
	if h > 1 {
		return 1
	}
	return h
}

// l2eff is the aggregate private-cache capacity assumed in front of the
// modeled L3 (16 threads' worth of 256 KiB L2s at micro scale).
func (s *cacheStackDist) l2eff() int64 { return 16 * 256 << 10 }

// segmentStackDists is a per-segment profiler set (segment-local reuse
// distances; see calibration notes on why per-segment curves use local
// distances at sweep scale).
type segmentStackDists struct {
	sds   [trace.NumSegments]*cache.StackDist
	l2eff int64
}

func newSegmentStackDists(l2eff int64) *segmentStackDists {
	s := &segmentStackDists{l2eff: l2eff}
	for i := range s.sds {
		s.sds[i] = cache.NewStackDist(64)
	}
	return s
}

// Observe routes an access to its segment's profiler.
func (s *segmentStackDists) Observe(a trace.Access) { s.sds[a.Seg].Observe(a) }

// hitRate returns a segment's post-L2 hit rate at a capacity. Cold misses
// are excluded for code and heap (finite, amortized working sets) and
// included for the shard (structural cold misses), matching the paper's
// steady-state traces.
func (s *segmentStackDists) hitRate(seg trace.Segment, capacity int64) float64 {
	sd := s.sds[seg]
	var cold float64
	if seg == trace.Code || seg == trace.Heap {
		cold = float64(sd.ColdMisses(seg))
	}
	base := sd.Misses(seg, s.l2eff) - cold
	if base <= 0 {
		return 1
	}
	h := 1 - (sd.Misses(seg, capacity)-cold)/base
	if h < 0 {
		return 0
	}
	if h > 1 {
		return 1
	}
	return h
}

// mpki returns a segment's misses per kilo-instruction at a capacity.
func (s *segmentStackDists) mpki(seg trace.Segment, capacity int64, instructions int64) float64 {
	return s.sds[seg].SegMPKI(seg, capacity, instructions)
}

// combinedMPKI sums per-segment MPKIs.
func (s *segmentStackDists) combinedMPKI(capacity int64, instructions int64) float64 {
	var m float64
	for seg := trace.Segment(0); seg < trace.NumSegments; seg++ {
		m += s.mpki(seg, capacity, instructions)
	}
	return m
}
