package experiments

import (
	"strings"
	"sync"
	"testing"
)

// TestSweepWorkers pins the worker-count policy: serial unless Parallel,
// never a single worker in parallel mode (the concurrent paths must be
// exercised even on one-core hosts), capped by maxWorkers and point count.
func TestSweepWorkers(t *testing.T) {
	serial := NewContext(Options{Shrink: 1, Budget: 1, Threads: 1})
	if w := serial.sweepWorkers(10, 0); w != 1 {
		t.Errorf("serial context got %d workers, want 1", w)
	}
	par := NewContext(Options{Shrink: 1, Budget: 1, Threads: 1, Parallel: true})
	if w := par.sweepWorkers(10, 0); w < 2 {
		t.Errorf("parallel context got %d workers, want >= 2", w)
	}
	if w := par.sweepWorkers(1, 0); w != 1 {
		t.Errorf("1-point sweep got %d workers, want 1", w)
	}
	if w := par.sweepWorkers(10, 2); w != 2 {
		t.Errorf("capped sweep got %d workers, want 2", w)
	}
	if w := par.sweepWorkers(3, 64); w > 3 {
		t.Errorf("3-point sweep got %d workers, want <= 3", w)
	}
}

// TestRunPointsOrdered checks results land in index order regardless of
// scheduling, in both modes.
func TestRunPointsOrdered(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		c := NewContext(Options{Shrink: 1, Budget: 1, Threads: 1, Parallel: parallel})
		got := runPoints(c, 0, 100, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("parallel=%v: point %d = %d, want %d", parallel, i, v, i*i)
			}
		}
	}
}

// TestRunPointsPanicDeterministic checks a panicking point surfaces as a
// panic naming the lowest failing index after all points finish.
func TestRunPointsPanicDeterministic(t *testing.T) {
	c := NewContext(Options{Shrink: 1, Budget: 1, Threads: 1, Parallel: true})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("runPoints swallowed the point panic")
		}
		if s, ok := r.(string); !ok || !strings.HasPrefix(s, "sweep point 3:") {
			t.Fatalf("panic %v, want the lowest failing index (3)", r)
		}
	}()
	runPoints(c, 0, 8, func(i int) int {
		if i >= 3 {
			panic("boom")
		}
		return i
	})
}

// TestSharingContextsConcurrent races two contexts that share one workload
// cache (Sharing) across different experiments touching the same memoized
// sweep recording — the scenario the race detector must bless. Outputs are
// checked per-context for self-consistency, not byte-compared: the contexts
// interleave new recordings, which the Sharing contract excludes from the
// byte-identical guarantee.
func TestSharingContextsConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-experiment run is slow in -short mode")
	}
	opts := Fast()
	opts.Seed = 7
	ctx1 := NewContext(opts)
	ctx2 := ctx1.Sharing(opts)

	var wg sync.WaitGroup
	for _, job := range []struct {
		ctx *Context
		id  string
	}{
		{ctx1, "fig6b"},
		{ctx2, "fig13"},
	} {
		wg.Add(1)
		go func(ctx *Context, id string) {
			defer wg.Done()
			e, ok := ByID(id)
			if !ok {
				t.Errorf("experiment %s not registered", id)
				return
			}
			res, err := e.Run(ctx)
			if err != nil {
				t.Errorf("%s: %v", id, err)
				return
			}
			if res.Render() == "" {
				t.Errorf("%s rendered empty output", id)
			}
		}(job.ctx, job.id)
	}
	wg.Wait()
}

// TestMibAdaptiveUnits pins the adaptive rendering that replaced the old
// b>>20 truncation (which rendered every sub-MiB value as "0").
func TestMibAdaptiveUnits(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{0, "0 B"},
		{64, "64 B"},
		{1023, "1023 B"},
		{1 << 10, "1 KiB"},
		{1536, "1.5 KiB"},
		{256 << 10, "256 KiB"},
		{1 << 20, "1 MiB"},
		{23 << 20, "23 MiB"},
		{1 << 30, "1 GiB"},
		{3 << 29, "1.5 GiB"},
	}
	for _, c := range cases {
		if got := mib(c.in); got != c.want {
			t.Errorf("mib(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestFigureXFormatGolden renders a figure with a byte-count x-axis and pins
// the exact output: block sizes must read as units, not truncated zeros.
func TestFigureXFormatGolden(t *testing.T) {
	fig := &Figure{
		Title:  "block sweep",
		XLabel: "block size", YLabel: "MPKI",
		XFormat: func(x float64) string { return mib(int64(x)) },
	}
	fig.Add("L2", 64, 1.5)
	fig.Add("L2", 1024, 0.75)
	fig.Add("L2", 2<<20, 0.5)
	got := fig.Render()
	want := "block sweep\n" +
		"(y: MPKI)\n" +
		"block size  L2  \n" +
		"----------  ----\n" +
		"64 B        1.5 \n" +
		"1 KiB       0.75\n" +
		"2 MiB       0.5 \n"
	if got != want {
		t.Errorf("rendered figure:\n%s\nwant:\n%s", got, want)
	}
}
