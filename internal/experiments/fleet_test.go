package experiments

import (
	"strings"
	"testing"
)

// TestFleetQPSShape runs figF1 at fast scale (restricted to the steady
// scenario) and checks the physics the figure exists to show: with offered
// load rising past each design's capacity knee, the open-loop P99 must
// grow, and every point must have served queries.
func TestFleetQPSShape(t *testing.T) {
	opts := Fast()
	opts.Seed = 5
	opts.FleetScenario = "steady"
	opts.FleetClients = 2000
	ctx := NewContext(opts)
	res, err := runFleetQPS(ctx)
	if err != nil {
		t.Fatal(err)
	}
	fig := res.(*Figure)
	if len(fig.Series) != 3 {
		t.Fatalf("want 3 series (steady x {base, rebal, rebal+l4}), got %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.X) != 5 {
			t.Fatalf("series %s has %d points, want 5", s.Name, len(s.X))
		}
		for i, y := range s.Y {
			if y <= 0 {
				t.Fatalf("series %s point %d: non-positive P99 %v", s.Name, i, y)
			}
		}
		if s.Y[len(s.Y)-1] <= s.Y[0] {
			t.Fatalf("series %s: overload P99 %.2fms not above light-load %.2fms",
				s.Name, s.Y[len(s.Y)-1], s.Y[0])
		}
	}
	if !strings.Contains(fig.Note, "2000 modeled users") {
		t.Fatalf("note does not reflect the client override: %q", fig.Note)
	}
}

// TestFleetQPSUnknownScenario pins the fail-fast contract the CLI relies on.
func TestFleetQPSUnknownScenario(t *testing.T) {
	opts := Fast()
	opts.FleetScenario = "lunch-rush"
	if _, err := runFleetQPS(NewContext(opts)); err == nil {
		t.Fatal("unknown scenario did not error")
	}
}

// TestFleetCapacityShape runs figF2 at fast scale and checks the sizing
// logic: every answer is a swept fleet size (or 0 for unreachable), some
// SLO is reachable, and a looser SLO never needs a bigger fleet.
func TestFleetCapacityShape(t *testing.T) {
	opts := Fast()
	opts.Seed = 5
	opts.FleetClients = 2000
	ctx := NewContext(opts)
	res, err := runFleetCapacity(ctx)
	if err != nil {
		t.Fatal(err)
	}
	fig := res.(*Figure)
	if len(fig.Series) != 3 {
		t.Fatalf("want 3 SLO series, got %d", len(fig.Series))
	}
	grid := map[float64]bool{0: true, 8: true, 12: true, 16: true, 24: true, 32: true, 48: true, 64: true}
	reachable := false
	for _, s := range fig.Series {
		if len(s.X) != 4 {
			t.Fatalf("series %s has %d traffic points, want 4", s.Name, len(s.X))
		}
		for _, y := range s.Y {
			if !grid[y] {
				t.Fatalf("series %s: %v is not a swept fleet size", s.Name, y)
			}
			if y > 0 {
				reachable = true
			}
		}
	}
	if !reachable {
		t.Fatal("no SLO reachable at any traffic level; sizing sweep is degenerate")
	}
	tight, loose := fig.Get("SLO 15ms"), fig.Get("SLO 30ms")
	for i := range tight.Y {
		if tight.Y[i] != 0 && loose.Y[i] != 0 && loose.Y[i] > tight.Y[i] {
			t.Fatalf("traffic %v: loose SLO needs %v leaves, tight only %v", tight.X[i], loose.Y[i], tight.Y[i])
		}
	}
}
