package experiments

import (
	"strings"
	"testing"

	"searchmem/internal/mem"
	"searchmem/internal/obs"
	"searchmem/internal/trace"
)

// TestTierSweepAcceptance pins the tiered-memory headline: at least one
// near:far split in the figT1 grid keeps >=75% of the shard's touched pages
// in the far tier while degrading AMAT by <=10% over the all-near baseline —
// i.e. most shard bytes can live in cheap memory nearly for free, because
// post-L4 shard traffic is cold (the same cold-miss structure §III-C
// measures).
func TestTierSweepAcceptance(t *testing.T) {
	c := NewContext(Fast())
	data, err := tierSweep(c)
	if err != nil {
		t.Fatalf("tierSweep: %v", err)
	}
	base := data.baseline
	if base.Mem == nil || base.Mem.Pages == 0 {
		t.Fatal("baseline carries no mem stats")
	}
	if base.Mem.FarReads != 0 || base.Mem.FarPages != 0 {
		t.Fatal("all-near baseline touched the far tier")
	}
	if rh := base.Mem.RowHitRate(); rh <= 0 || rh >= 1 {
		t.Fatalf("baseline row-buffer hit rate %v not in (0,1)", rh)
	}

	found := false
	for _, p := range data.points {
		st := p.m.Mem
		if st == nil {
			t.Fatalf("point near=%v policy=%v carries no mem stats", p.nearFrac, p.policy)
		}
		farFrac := st.FarPageFrac(trace.Shard)
		dAMAT := p.m.AMATNS/base.AMATNS - 1
		if farFrac >= 0.75 && dAMAT <= 0.10 {
			found = true
		}
		// Every point's QPS-per-memory-dollar inputs must be well-formed:
		// positive dollars (both tiers priced) and a positive QPS ratio.
		if d := tierDollars(base.Mem.Pages, st.NearPages); d <= 0 {
			t.Fatalf("point near=%v policy=%v: non-positive memory dollars %v", p.nearFrac, p.policy, d)
		}
		if rel := tierQPSRel(p.m.AMATNS, base.AMATNS); rel <= 0 || rel > 1 {
			t.Fatalf("point near=%v policy=%v: QPS ratio %v outside (0,1]", p.nearFrac, p.policy, rel)
		}
	}
	if !found {
		for _, p := range data.points {
			t.Logf("near=%v policy=%v farShard=%.3f dAMAT=%.3f",
				p.nearFrac, p.policy, p.m.Mem.FarPageFrac(trace.Shard), p.m.AMATNS/base.AMATNS-1)
		}
		t.Fatal("no sweep point holds >=75% of shard pages far within 10% AMAT degradation")
	}
}

// TestFigT1RendersCostColumn checks the sweep table reports the Eq. 1
// QPS-per-memory-dollar economics next to AMAT, and that a far-tier point
// beats the all-near baseline on it (that is the entire argument for
// tiering: nearly-flat AMAT over a much cheaper memory bill).
func TestFigT1RendersCostColumn(t *testing.T) {
	c := NewContext(Fast())
	res, err := mustByID(t, "figT1").Run(c)
	if err != nil {
		t.Fatalf("figT1: %v", err)
	}
	out := res.Render()
	if !strings.Contains(out, "QPS/mem$") {
		t.Fatalf("figT1 table missing QPS/mem$ column:\n%s", out)
	}
	if !strings.Contains(out, "row-hit") || !strings.Contains(out, "mig GB/s") {
		t.Fatalf("figT1 table missing row-buffer or migration columns:\n%s", out)
	}

	data, err := tierSweep(c) // memoized: same sweep the table rendered
	if err != nil {
		t.Fatalf("tierSweep: %v", err)
	}
	base := data.baseline
	baseDollars := tierDollars(base.Mem.Pages, base.Mem.Pages)
	better := false
	for _, p := range data.points {
		qpd := tierQPSRel(p.m.AMATNS, base.AMATNS) * baseDollars / tierDollars(base.Mem.Pages, p.m.Mem.NearPages)
		if qpd > 1 {
			better = true
			break
		}
	}
	if !better {
		t.Fatal("no tiered point beats the all-near baseline on QPS per memory dollar")
	}
}

// TestTierOptionsRestrictGrid checks the cmd/searchsim knobs: TierNearFrac
// and TierPolicy collapse the sweep to one point, and TierEpochLen overrides
// the derived epoch.
func TestTierOptionsRestrictGrid(t *testing.T) {
	opts := Fast()
	opts.TierNearFrac = 0.25
	opts.TierPolicy = "freq"
	opts.TierEpochLen = 512
	c := NewContext(opts)
	data, err := tierSweep(c)
	if err != nil {
		t.Fatalf("tierSweep: %v", err)
	}
	if len(data.points) != 1 {
		t.Fatalf("restricted sweep has %d points, want 1", len(data.points))
	}
	p := data.points[0]
	if p.nearFrac != 0.25 || p.policy != mem.PolicyFreqThreshold {
		t.Fatalf("restricted point is near=%v policy=%v", p.nearFrac, p.policy)
	}
	if data.epochLen != 512 {
		t.Fatalf("epoch length %d, want the 512 override", data.epochLen)
	}

	bad := Fast()
	bad.TierPolicy = "hotness-oracle"
	if _, err := tierSweep(NewContext(bad)); err == nil {
		t.Fatal("unknown TierPolicy accepted")
	}
}

// TestTierMetricsPublished checks figT1 publishes its per-point gauges into
// an attached -metrics registry.
func TestTierMetricsPublished(t *testing.T) {
	opts := Fast()
	opts.Metrics = obs.NewRegistry()
	c := NewContext(opts)
	if _, err := mustByID(t, "figT1").Run(c); err != nil {
		t.Fatalf("figT1: %v", err)
	}
	var b strings.Builder
	if err := opts.Metrics.Snapshot().WriteJSON(&b); err != nil {
		t.Fatalf("export: %v", err)
	}
	for _, name := range []string{
		"tier_baseline_amat_ns", "tier_amat_ns", "tier_far_shard_page_frac",
		"tier_qps_per_mem_dollar", "tier_migration_gbs",
	} {
		if !strings.Contains(b.String(), name) {
			t.Fatalf("metrics export missing %s:\n%s", name, b.String())
		}
	}
}
