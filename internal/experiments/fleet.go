package experiments

import (
	"fmt"

	"searchmem/internal/dram"
	"searchmem/internal/obs"
	"searchmem/internal/serving"
)

func init() {
	register(Experiment{
		ID:       "figF1",
		Title:    "Fleet scenarios: offered load vs P99 on the event-driven engine",
		PaperRef: "§IV-B (extension)",
		Run:      runFleetQPS,
	})
	register(Experiment{
		ID:       "figF2",
		Title:    "Capacity planning: leaves required per P99 SLO vs traffic",
		PaperRef: "§IV-B (extension)",
		Run:      runFleetCapacity,
	})
}

// fleetSLONS is the headline tail objective the capacity readouts quote.
const fleetSLONS = 20e6

// FleetScenarios lists the fleet scenario names figF1 sweeps, in run order
// (cmd/searchsim validates -fleet-scenario against it).
func FleetScenarios() []string {
	return []string{"steady", "diurnal", "flash", "reload", "outage"}
}

// fleetScenario builds the arrival curve and operational timeline for one
// named scenario: every scenario offers the same mean load (rate), so P99
// differences are attributable to the shape alone.
//
//   - steady:  constant Poisson arrivals.
//   - diurnal: ±25% sinusoidal rate over two periods in the horizon.
//   - flash:   a 3x flash crowd in [0.4, 0.5) of the horizon.
//   - reload:  cache flushes (shard reload / cold restart) at 1/4, 1/2, 3/4.
//   - outage:  a quarter of the leaves dark in [0.4, 0.6) of the horizon.
func fleetScenario(name string, rate, durNS float64, leaves int) (*serving.RateCurve, []serving.FleetEvent) {
	rc := &serving.RateCurve{BaseQPS: rate}
	var evs []serving.FleetEvent
	switch name {
	case "steady":
	case "diurnal":
		rc.DiurnalAmplitude = 0.25
		rc.DiurnalPeriodNS = durNS / 2
	case "flash":
		rc.Bursts = []serving.Burst{{StartNS: 0.4 * durNS, EndNS: 0.5 * durNS, Factor: 3}}
	case "reload":
		evs = []serving.FleetEvent{
			{AtNS: 0.25 * durNS, FlushCache: true},
			{AtNS: 0.50 * durNS, FlushCache: true},
			{AtNS: 0.75 * durNS, FlushCache: true},
		}
	case "outage":
		evs = []serving.FleetEvent{{
			AtNS: 0.4 * durNS, OutageLeaf: 0, OutageLeaves: leaves / 4,
			OutageDurationNS: 0.2 * durNS,
		}}
	}
	return rc, evs
}

// fleetCluster builds a serving tree whose leaf service time scales with
// the per-instruction cost of the design under test. Leaves are wrapped in
// fault-free FaultyExecutors so outage windows can mark them down; the
// wrapper draws no faults of its own and leaves the synthetic jitter
// streams untouched, keeping scenarios comparable. The leaf deadline sits
// well above the SLO: a deadline below it would pin P99 at the deadline and
// hide the congestion knee the figures exist to locate (overload would
// surface only as partial results).
func fleetCluster(o Options, name string, leaves, leafCap int, scale float64, reg *obs.Registry) *serving.Cluster {
	cfg := serving.DefaultConfig()
	cfg.Leaves = leaves
	cfg.LeafCapacity = leafCap
	cfg.LeafDeadlineNS = 40e6
	cfg.HedgeDelayNS = 5e6
	cfg.Name = name
	cfg.Registry = reg
	execs := make([]serving.Executor, leaves)
	for i := range execs {
		e := serving.NewSyntheticExecutor(uint32(i), cfg.TopK)
		e.BaseLatencyNS *= scale
		e.PerTermNS *= scale
		execs[i] = &serving.FaultyExecutor{Inner: e, Seed: o.Seed + uint64(i)*7919}
	}
	return serving.NewCluster(cfg, execs)
}

// fleetClients picks the modeled user population: the CLI override, or a
// shrink-scaled default.
func fleetClients(o Options) int {
	if o.FleetClients > 0 {
		return o.FleetClients
	}
	n := 100_000 / o.Shrink
	if n < 1000 {
		n = 1000
	}
	return n
}

// runFleetQPS is figF1: open-loop fleet scenarios at increasing fractions
// of each design's measured capacity, re-asking the paper's §IV-B claim —
// the rebalanced design sustains more load within the tail SLO — at fleet
// scale on the event-driven engine. One series per (scenario, design), x =
// offered load as a fraction of the design's uncongested capacity, y = P99.
func runFleetQPS(c *Context) (Result, error) {
	o := c.Opts
	scens := FleetScenarios()
	if o.FleetScenario != "" {
		found := false
		for _, s := range scens {
			if s == o.FleetScenario {
				scens = []string{s}
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown fleet scenario %q (have %v)", o.FleetScenario, FleetScenarios())
		}
	}
	// The iso-area designs of §IV-B: QPS scales with cores x IPC, so each
	// leaf's concurrency budget scales with its core count and its service
	// time with 1/IPC. The rebalanced processor trades L3 for cores (18 ->
	// 23 at 1 MiB/core); the headline +27% adds the 1 GiB direct-mapped L4
	// (Figure 14's operating point, reusing the memoized fig13 sweep).
	pm := newPerfModel(c)
	l4 := dram.BaselineL4(1024 << 20)
	hL4 := l4HitAt(sweepL4(c, 0), 1024)
	designs := []struct {
		name  string
		cores int
		scale float64
	}{
		{"base", 18, 1 / pm.ipcAt(45<<20, 0, 0, 0)},
		{"rebal", 23, 1 / pm.ipcAt(23<<20, 0, 0, 0)},
		{"rebal+l4", 23, 1 / pm.ipcAt(23<<20, hL4, l4.HitLatencyNS, l4.MissPenaltyNS)},
	}
	fracs := []float64{0.4, 0.6, 0.8, 1.0, 1.3}
	const leaves, capPerCore = 16, 4
	clients := fleetClients(o)
	durNS := 2e9 / float64(o.Shrink)

	// Probe each design's uncongested closed-loop latency once, serially.
	// Under the 1/(1-rho) congestion law, effective completions peak at
	// rho = 1/2 — occupancy LeafCapacity/2 at twice the base latency — so
	// the stability boundary the load fractions are anchored to is
	// LeafCapacity/4 queries per mean uncongested service time.
	ref := make([]float64, len(designs))
	for i, d := range designs {
		st := serving.RunLoad(fleetCluster(o, "fleet/probe/"+d.name, leaves, capPerCore*d.cores, d.scale, nil),
			4, 200, 3000, 0.9, o.Seed+61)
		ref[i] = float64(capPerCore*d.cores) / 4 / (st.MeanLatencyNS * 1e-9)
		o.logf("figF1: %s capacity ~%.0f QPS (probe mean %.2f ms)", d.name, ref[i], st.MeanLatencyNS/1e6)
	}

	type point struct {
		scen   string
		design int
		frac   float64
		fs     serving.FleetStats
	}
	n := len(scens) * len(designs) * len(fracs)
	pts := runPoints(c, 0, n, func(i int) point {
		scen := scens[i/(len(designs)*len(fracs))]
		di := i / len(fracs) % len(designs)
		frac := fracs[i%len(fracs)]
		rate := ref[di] * frac
		rc, evs := fleetScenario(scen, rate, durNS, leaves)
		name := fmt.Sprintf("fleet/%s/%s/load%d", scen, designs[di].name, int(frac*100))
		cl := fleetCluster(o, name, leaves, capPerCore*designs[di].cores, designs[di].scale, o.Metrics)
		fs := serving.RunScenario(cl, serving.Scenario{
			Clients:   clients,
			VocabSize: 3000,
			Skew:      0.9,
			Seed:      o.Seed + 67,
			Arrival:   rc, DurationNS: durNS, Events: evs,
		})
		o.logf("figF1 %s/%s frac=%.1f: served=%d p99=%.2fms peak=%d",
			scen, designs[di].name, frac, fs.Served, fs.P99NS/1e6, fs.PeakInflight)
		return point{scen: scen, design: di, frac: frac, fs: fs}
	})

	fig := &Figure{
		Title:  "figF1: fleet scenarios — offered load vs P99 (event-driven open loop)",
		XLabel: "load (fraction of design capacity)",
		YLabel: "P99 ms",
	}
	for _, p := range pts {
		fig.Add(p.scen+"/"+designs[p.design].name, p.frac, p.fs.P99NS/1e6)
	}

	// Headline: the highest steady-state fraction each design serves within
	// the SLO, converted back to absolute QPS.
	capAt := func(di int) float64 {
		best := 0.0
		for _, p := range pts {
			if p.scen == "steady" && p.design == di && p.fs.P99NS <= fleetSLONS && p.frac > best {
				best = p.frac
			}
		}
		return best * ref[di]
	}
	baseQPS, rebalQPS, l4QPS := capAt(0), capAt(1), capAt(2)
	if len(scens) == len(FleetScenarios()) && baseQPS > 0 {
		fig.Note = fmt.Sprintf(
			"paper §IV-B at fleet scale (paper: rebalance alone +14%%, with 1 GiB L4 +27%%): within the %.0f ms P99 SLO (steady), base sustains %.0f QPS, rebalanced %.0f (%+.0f%%), rebalanced+L4 %.0f (%+.0f%%); %d modeled users per point",
			fleetSLONS/1e6, baseQPS, rebalQPS, 100*(rebalQPS/baseQPS-1), l4QPS, 100*(l4QPS/baseQPS-1), clients)
	} else {
		fig.Note = fmt.Sprintf("%d modeled users per point; capacities anchored at base %.0f / rebal %.0f / rebal+l4 %.0f QPS", clients, ref[0], ref[1], ref[2])
	}
	return fig, nil
}

// runFleetCapacity is figF2: how many leaves the rebalanced design needs to
// hold each P99 SLO at each traffic level. LeafCapacity scales with the
// fleet size (4 concurrent queries absorbed per leaf), so adding leaves
// buys both fan-out width and congestion headroom. One series per SLO,
// x = offered QPS, y = the smallest swept fleet that holds it (0 = none).
func runFleetCapacity(c *Context) (Result, error) {
	o := c.Opts
	pm := newPerfModel(c)
	scale := 1 / pm.ipcAt(23<<20, 0, 0, 0)
	traffics := []float64{2000, 4000, 8000, 16000}
	leavesGrid := []int{8, 12, 16, 24, 32, 48, 64}
	sloMS := []float64{15, 20, 30}
	clients := fleetClients(o)
	durNS := 2e9 / float64(o.Shrink)

	type point struct{ p99 float64 }
	n := len(traffics) * len(leavesGrid)
	pts := runPoints(c, 0, n, func(i int) point {
		traffic := traffics[i/len(leavesGrid)]
		leaves := leavesGrid[i%len(leavesGrid)]
		// Private registry: 28 sizing probes would drown the shared export.
		cl := fleetCluster(o, "fleet/size", leaves, 4*leaves, scale, nil)
		rc, _ := fleetScenario("steady", traffic, durNS, leaves)
		fs := serving.RunScenario(cl, serving.Scenario{
			Clients:   clients,
			VocabSize: 3000,
			Skew:      0.9,
			Seed:      o.Seed + 71,
			Arrival:   rc, DurationNS: durNS,
		})
		o.logf("figF2 traffic=%.0f leaves=%d: p99=%.2fms", traffic, leaves, fs.P99NS/1e6)
		return point{p99: fs.P99NS}
	})

	fig := &Figure{
		Title:  "figF2: capacity planning — leaves required per P99 SLO (rebalanced design)",
		XLabel: "offered QPS",
		YLabel: "leaves",
		Note: fmt.Sprintf("smallest fleet in %v holding the SLO at steady offered load (0 = none does); %d modeled users per point",
			leavesGrid, clients),
	}
	for ti, traffic := range traffics {
		for _, slo := range sloMS {
			need := 0
			for li, leaves := range leavesGrid {
				if pts[ti*len(leavesGrid)+li].p99 <= slo*1e6 {
					need = leaves
					break
				}
			}
			fig.Add(fmt.Sprintf("SLO %gms", slo), traffic, float64(need))
		}
	}
	return fig, nil
}
