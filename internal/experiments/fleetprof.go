package experiments

import (
	"fmt"
	"math"

	"searchmem/internal/cache"
	"searchmem/internal/cpu"
	"searchmem/internal/obs"
	"searchmem/internal/trace"
	"searchmem/internal/workload"
)

func init() {
	register(Experiment{
		ID:       "fleetprof",
		Title:    "GWP-style sampled fleet profiling vs exhaustive observation",
		PaperRef: "§II methodology (Google-Wide Profiling)",
		Run:      runFleetProf,
	})
}

// fleetProfRates are the sampling rates swept, descending so the table
// reads from exact to sparsest. Rate 1.0 is the exact reference: the same
// estimator fed every event.
var fleetProfRates = []float64{1.00, 0.50, 0.10, 0.02}

// fleetProfDefaultRate is the always-on fleet rate the acceptance bound
// (Top-Down within 2 pp of exact) is checked at.
const fleetProfDefaultRate = 0.10

// fleetProfResult carries the numeric estimates for the table and tests.
type fleetProfResult struct {
	rates []float64
	ests  []obs.FleetEstimate
}

// exact returns the rate-1.0 reference estimate.
func (r fleetProfResult) exact() obs.FleetEstimate { return r.ests[0] }

// topDownErrPP returns the mean absolute Top-Down category error, in
// percentage points, of the i-th rate against the exact reference.
func (r fleetProfResult) topDownErrPP(i int) float64 {
	e, s := breakdownSlots(r.exact().Breakdown), breakdownSlots(r.ests[i].Breakdown)
	var sum float64
	for k := range e {
		sum += math.Abs(s[k] - e[k])
	}
	return 100 * sum / float64(len(e))
}

// rateErrFrac returns the mean absolute relative error of the i-th rate's
// scalar metrics (IPC, MPKIs) against the exact reference.
func (r fleetProfResult) rateErrFrac(i int) float64 {
	e, s := r.exact(), r.ests[i]
	pairs := [][2]float64{
		{s.IPC, e.IPC},
		{s.BranchMPKI, e.BranchMPKI},
		{s.L1IMPKI, e.L1IMPKI},
		{s.L1DMPKI, e.L1DMPKI},
		{s.L2InstrMPKI, e.L2InstrMPKI},
		{s.L3LoadMPKI, e.L3LoadMPKI},
	}
	var sum float64
	n := 0
	for _, p := range pairs {
		if p[1] == 0 {
			continue
		}
		sum += math.Abs(p[0]-p[1]) / p[1]
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// breakdownSlots flattens a Breakdown into its six category fractions in
// presentation order.
func breakdownSlots(b cpu.Breakdown) [6]float64 {
	return [6]float64{b.Retiring, b.BadSpec, b.FELatency, b.FEBandwidth, b.BECore, b.BEMemory}
}

// runFleetProfiles measures the S1 leaf once with one profiler per rate
// attached to the same event stream, so every estimate observes the
// identical execution and differs only in what it attributed.
func runFleetProfiles(c *Context) fleetProfResult {
	o := c.Opts
	plat := c.PLT1()
	leaf := c.Leaf()

	profs := make([]*obs.Profiler, len(fleetProfRates))
	for i, r := range fleetProfRates {
		profs[i] = obs.NewProfiler(obs.ProfilerConfig{
			Rate: r,
			Seed: o.Seed + 1 + uint64(i)*101,
			// Remember enough windows for a readable trace export without
			// unbounded span growth at high rates.
			RecordWindows: 512,
		})
	}
	o.logf("fleetprof: measuring S1 leaf with %d samplers attached...", len(profs))
	m := workload.Measure(leaf, workload.MeasureConfig{
		Platform: plat,
		Cores:    1, SMTWays: 1, Threads: 1,
		Budget:         o.Budget,
		Seed:           o.Seed,
		WarmupFraction: 2.0,
		AccessObserver: func(a trace.Access, lvl cache.HitLevel) {
			for _, p := range profs {
				p.ObserveAccess(a, lvl)
			}
		},
		BranchObserver: func(t uint8, mis bool) {
			for _, p := range profs {
				p.ObserveBranch(t, mis)
			}
		},
	})

	core := plat.Core
	if ov := leaf.MemOverlap(); ov > 0 {
		core.MemOverlap = ov
	}
	res := fleetProfResult{rates: fleetProfRates}
	for i, p := range profs {
		res.ests = append(res.ests, p.Estimate(core, plat.L3LatencyNS, plat.MemLatencyNS, m.Instructions))
		p.EmitTrace(o.Tracer, fmt.Sprintf("fleetprof[r=%s]", trimFloat(fleetProfRates[i])))
	}
	return res
}

// runFleetProf reproduces the paper's implicit methodology claim: the fleet
// profiles behind Table I and Figure 3 come from sparse GWP sampling, and
// sparse sampling recovers the exhaustive profile. Rows are the profile
// metrics, columns the sampling rates, with summary error rows underneath.
func runFleetProf(c *Context) (Result, error) {
	res := runFleetProfiles(c)

	t := &Table{
		Title:   "Sampled fleet profile vs exhaustive observation (S1 leaf, PLT1)",
		Headers: []string{"metric"},
		Note: "r=1.00 attributes every event (exact); sparse windows rescale through always-on totals (GWP §II). " +
			"Estimator error shrinks with rate; Top-Down categories stay within 2 pp of exact at r=0.10.",
	}
	for i, r := range res.rates {
		h := fmt.Sprintf("r=%.2f", r)
		if i == 0 {
			h += " (exact)"
		}
		t.Headers = append(t.Headers, h)
	}
	row := func(name string, f func(e obs.FleetEstimate) string) {
		cells := []string{name}
		for _, e := range res.ests {
			cells = append(cells, f(e))
		}
		t.AddRow(cells...)
	}
	row("IPC", func(e obs.FleetEstimate) string { return fmt.Sprintf("%.3f", e.IPC) })
	row("branch MPKI", func(e obs.FleetEstimate) string { return fmt.Sprintf("%.2f", e.BranchMPKI) })
	row("L1I MPKI", func(e obs.FleetEstimate) string { return fmt.Sprintf("%.2f", e.L1IMPKI) })
	row("L1D MPKI", func(e obs.FleetEstimate) string { return fmt.Sprintf("%.2f", e.L1DMPKI) })
	row("L2 instr MPKI", func(e obs.FleetEstimate) string { return fmt.Sprintf("%.2f", e.L2InstrMPKI) })
	row("L3 load MPKI", func(e obs.FleetEstimate) string { return fmt.Sprintf("%.2f", e.L3LoadMPKI) })
	row("L3 hit rate", func(e obs.FleetEstimate) string { return pct(e.L3HitRate) })
	tdRows := []struct {
		name string
		get  func(cpu.Breakdown) float64
	}{
		{"retiring", func(b cpu.Breakdown) float64 { return b.Retiring }},
		{"bad speculation", func(b cpu.Breakdown) float64 { return b.BadSpec }},
		{"front-end latency", func(b cpu.Breakdown) float64 { return b.FELatency }},
		{"front-end bandwidth", func(b cpu.Breakdown) float64 { return b.FEBandwidth }},
		{"back-end core", func(b cpu.Breakdown) float64 { return b.BECore }},
		{"back-end memory", func(b cpu.Breakdown) float64 { return b.BEMemory }},
	}
	for _, td := range tdRows {
		get := td.get
		row("topdown "+td.name, func(e obs.FleetEstimate) string { return pct(get(e.Breakdown)) })
	}
	row("sampled accesses", func(e obs.FleetEstimate) string { return fmt.Sprintf("%d", e.SampledAccesses) })
	row("sampling windows", func(e obs.FleetEstimate) string { return fmt.Sprintf("%d", e.Windows) })

	errTD := []string{"topdown mean |err| pp"}
	errRates := []string{"scalar mean |rel err|"}
	for i := range res.rates {
		errTD = append(errTD, fmt.Sprintf("%.3f", res.topDownErrPP(i)))
		errRates = append(errRates, pct(res.rateErrFrac(i)))
	}
	t.AddRow(errTD...)
	t.AddRow(errRates...)

	if reg := c.Opts.Metrics; reg != nil {
		for i, r := range res.rates {
			lbl := obs.L("rate", trimFloat(r))
			reg.Gauge("fleetprof_ipc", lbl).Set(res.ests[i].IPC)
			reg.Gauge("fleetprof_topdown_err_pp", lbl).Set(res.topDownErrPP(i))
			reg.Gauge("fleetprof_scalar_rel_err", lbl).Set(res.rateErrFrac(i))
		}
	}
	return t, nil
}
