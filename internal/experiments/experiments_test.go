package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every table and figure in the paper's evaluation must be present.
	want := []string{
		"table1", "table2",
		"fig2a", "fig2b", "fig2c",
		"fig3", "fig4", "fig5",
		"fig6a", "fig6b", "fig6c",
		"fig7a", "fig7b",
		"fig8a", "fig8b",
		"fig9", "fig10", "fig11",
		"fig13", "fig14",
		"explore",                       // §IV extension: design-space search
		"splitl2",                       // §V extension: split I/D L2 what-if
		"missclass", "bandwidth", "slo", // §II-§IV extensions
		"degraded",       // §II extension: fault-tolerant serving tier
		"fleetprof",      // §II methodology: GWP-style sampled profiling
		"figT1", "figT2", // tiered-memory extension (Mahar et al.)
		"figP1", "figP2", // policy zoo + level predictor (Jaleel; Jalili & Erez)
		"figF1", "figF2", // fleet-scale serving scenarios (event-driven engine)
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(IDs()), len(want))
	}
}

func TestByID(t *testing.T) {
	e, ok := ByID("table1")
	if !ok || e.ID != "table1" || e.PaperRef != "Table I" {
		t.Fatalf("ByID(table1) = %+v, %v", e, ok)
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown id found")
	}
	if len(All()) != len(IDs()) {
		t.Fatal("All/IDs mismatch")
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "T", Headers: []string{"a", "bee"}, Note: "n"}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	out := tb.Render()
	for _, want := range []string{"T\n", "a    bee", "333", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFigureRender(t *testing.T) {
	f := &Figure{Title: "F", XLabel: "x", YLabel: "y"}
	f.Add("s1", 1, 0.5)
	f.Add("s1", 2, 0.75)
	f.Add("s2", 1, 0.25)
	out := f.Render()
	for _, want := range []string{"F", "s1", "s2", "0.5", "0.75", "0.25"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if s := f.Get("s1"); s == nil || len(s.X) != 2 {
		t.Fatal("Get failed")
	}
	if f.Get("zzz") != nil {
		t.Fatal("Get found missing series")
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{1: "1", 1.5: "1.5", 0.25: "0.25", 0: "0", -2.5: "-2.5"}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

// TestAllExperimentsFast runs every registered experiment at fast scale and
// checks it produces a non-empty rendering without error. This is the
// end-to-end smoke test of the whole reproduction pipeline.
func TestAllExperimentsFast(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	opts := Fast()
	opts.Logf = t.Logf
	ctx := NewContext(opts)
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run(ctx)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := res.Render()
			if len(out) < 20 {
				t.Fatalf("%s: suspiciously short output:\n%s", e.ID, out)
			}
		})
	}
}

func TestTable2Exact(t *testing.T) {
	ctx := NewContext(Fast())
	res, err := ByIDMust("table2").Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	// Table II attributes, verbatim from the paper.
	for _, want := range []string{
		"Intel Haswell", "IBM POWER8", "18", "12", "64 B", "128 B",
		"32 KiB", "256 KiB", "512 KiB", "45 MiB", "96 MiB",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 missing %q", want)
		}
	}
}

// ByIDMust is a test helper.
func ByIDMust(id string) Experiment {
	e, ok := ByID(id)
	if !ok {
		panic("missing experiment " + id)
	}
	return e
}

func TestFig2bAnchors(t *testing.T) {
	ctx := NewContext(Fast())
	res, err := ByIDMust("fig2b").Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	fig := res.(*Figure)
	p1 := fig.Get("PLT1 (Haswell)")
	if p1 == nil || p1.Y[0] < 1.3 || p1.Y[0] > 1.45 {
		t.Fatalf("PLT1 SMT-2 = %v, want ~1.37", p1)
	}
	p2 := fig.Get("PLT2 (POWER8)")
	if p2 == nil || len(p2.Y) != 3 {
		t.Fatal("PLT2 series incomplete")
	}
	if p2.Y[2] < 3.0 || p2.Y[2] > 3.5 {
		t.Fatalf("PLT2 SMT-8 = %v, want ~3.24", p2.Y[2])
	}
}
