//go:build !race

package experiments

// raceDetectorOn reports whether the test binary was built with -race.
const raceDetectorOn = false
