package experiments

import (
	"searchmem/internal/cpu"
	"searchmem/internal/model"
	"searchmem/internal/stats"
	"searchmem/internal/trace"
	"searchmem/internal/workload"
)

func init() {
	register(Experiment{
		ID:       "fig2a",
		Title:    "Search throughput scalability with core count (SMT off)",
		PaperRef: "Figure 2a",
		Run:      runFig2a,
	})
	register(Experiment{
		ID:       "fig2b",
		Title:    "SMT throughput improvement on PLT1 and PLT2",
		PaperRef: "Figure 2b",
		Run:      runFig2b,
	})
	register(Experiment{
		ID:       "fig2c",
		Title:    "Huge pages and hardware prefetching impact",
		PaperRef: "Figure 2c",
		Run:      runFig2c,
	})
}

// runFig2a reproduces near-linear QPS scaling with core count on a
// 4-socket PLT1 system: throughput is cores x IPC, with IPC degrading only
// through the mild per-core L3 capacity reduction (the paper's footnote 1).
func runFig2a(c *Context) (Result, error) {
	o := c.Opts
	// Measure the L3 hit-rate curve once (it changes only slowly with
	// capacity per core in this regime).
	r := c.Leaf()
	sd := newL3Curve()
	r.Run(min(o.Threads, 8), o.Budget, o.Seed, workload.Sinks{Access: sd.Observe})
	plat := c.PLT1()
	tm := model.ThroughputModel{
		TL3NS: plat.L3LatencyNS, TMEMNS: plat.MemLatencyNS,
		IPCLine: model.Equation1, SMTSpeedup: 1,
	}
	fig := &Figure{
		Title:  "Figure 2a: normalized QPS vs core count (SMT off)",
		XLabel: "cores", YLabel: "normalized QPS",
		Note: "4-socket PLT1: total L3 = sockets*45 MiB shared by all cores",
	}
	baseQPS := 0.0
	for _, cores := range []int{8, 16, 24, 32, 40, 48, 56, 64, 72} {
		sockets := (cores + 17) / 18
		if sockets > 4 {
			sockets = 4
		}
		totalL3 := int64(sockets) * plat.L3.Size
		h := sd.combinedHitRate(totalL3)
		q := tm.QPS(float64(cores), h)
		if baseQPS == 0 {
			baseQPS = q / float64(cores) * 8 // normalize so 8 cores = 1
		}
		fig.Add("QPS", float64(cores), q/baseQPS)
	}
	return fig, nil
}

// runFig2b reports the calibrated SMT models' speedups.
func runFig2b(c *Context) (Result, error) {
	fig := &Figure{
		Title:  "Figure 2b: SMT speedup over single-thread",
		XLabel: "SMT ways", YLabel: "speedup",
		Note: "paper: PLT1 SMT-2 = 1.37x; PLT2 SMT-2 = 1.76x, SMT-8 = 3.24x",
	}
	p1, p2 := c.PLT1(), c.PLT2()
	fig.Add("PLT1 (Haswell)", 2, p1.SMT.Speedup(2))
	for _, n := range []int{2, 4, 8} {
		fig.Add("PLT2 (POWER8)", float64(n), p2.SMT.Speedup(n))
	}
	return fig, nil
}

// runFig2c measures the huge-page benefit with the two-level TLB model at
// paper-scale footprints, and the prefetcher benefit with the prefetch
// engine on the simulated hierarchy.
func runFig2c(c *Context) (Result, error) {
	o := c.Opts
	t := &Table{
		Title:   "Figure 2c: QPS improvement from huge pages and hardware prefetching",
		Headers: []string{"platform", "huge pages", "prefetching"},
		Note:    "paper: ~+10% pages on both; +5% prefetch PLT1, slight degradation PLT2",
	}
	for _, platName := range []string{"PLT1", "PLT2"} {
		plat := c.PLT1()
		if platName == "PLT2" {
			plat = c.PLT2()
		}
		// Huge pages: drive both TLB configurations with a paper-scale
		// address stream (sequential shard scans + random heap touches
		// over a multi-GiB footprint).
		small := cpu.NewTLB(plat.TLBFor(plat.SmallPage))
		huge := cpu.NewTLB(plat.TLBFor(plat.HugePage))
		rng := stats.NewRNG(o.Seed + 11)
		const heapFoot = 4 << 30   // paper-scale heap region
		const shardFoot = 64 << 30 // paper-scale shard region
		var scan uint64
		nAccesses := int(o.Budget / 12)
		for i := 0; i < nAccesses; i++ {
			var vaddr uint64
			switch {
			case rng.Bool(0.45): // sequential shard scan
				scan += 48
				if scan >= shardFoot {
					scan = 0
				}
				vaddr = 1<<44 + scan
			case rng.Bool(0.7): // heap structure access
				vaddr = 1<<42 + rng.Uint64n(heapFoot)
			default: // random shard jump (snippets)
				vaddr = 1<<44 + rng.Uint64n(shardFoot)
			}
			small.Translate(vaddr)
			huge.Translate(vaddr)
		}
		// Translation overhead per access -> added CPI -> QPS delta. The
		// walk-overlap constant is the fraction of page-walk latency the
		// out-of-order core cannot hide; it is calibrated per platform so
		// the huge-page gain lands at the paper's ~10% (POWER8's hardware
		// table walker overlaps far more than Haswell's).
		const accPerInstr = 0.35
		baseCPI, walkOverlap := 1/1.28, 0.052
		if platName == "PLT2" {
			baseCPI, walkOverlap = 1/2.0, 0.0035
		}
		cpiSmall := baseCPI + small.AvgLatencyNS()*plat.Core.FreqGHz*accPerInstr*walkOverlap
		cpiHuge := baseCPI + huge.AvgLatencyNS()*plat.Core.FreqGHz*accPerInstr*walkOverlap
		pagesGain := cpiSmall/cpiHuge - 1

		// Prefetching: run the leaf workload through the hierarchy with
		// and without the platform's prefetchers and compare modeled IPC.
		pfGain, err := prefetchGain(c, plat.Name == "PLT2")
		if err != nil {
			return nil, err
		}
		t.AddRow(platName, pct(pagesGain), pct(pfGain))
	}
	return t, nil
}

// prefetchGain measures the IPC effect of enabling hardware prefetchers.
func prefetchGain(c *Context, plt2 bool) (float64, error) {
	o := c.Opts
	plat := c.PLT1()
	blockSize := uint64(64)
	if plt2 {
		plat = c.PLT2()
		blockSize = 128
	}
	if plt2 {
		// Keep the footprint-to-cache ratio in the production regime:
		// the full 96 MiB L3 would swallow the scaled-down shard and hide
		// the prefetch pollution the paper measures on POWER8.
		plat = plat.ScaleCaches(8)
	}
	mc := workload.MeasureConfig{
		Platform: plat,
		Cores:    1, SMTWays: 1, Threads: 1,
		Budget:         o.Budget,
		Seed:           o.Seed + 23,
		WarmupFraction: 1.0,
	}
	r1 := c.Leaf()
	off := workload.Measure(r1, mc)
	mcOn := mc
	if plt2 {
		// POWER8's aggressive default engine: deep next-line ramping on
		// every access. With 128 B lines the useless fills pollute the
		// private caches and waste bandwidth (the paper measures a slight
		// degradation and disables it).
		mcOn.Prefetchers = func() []cpu.Prefetcher {
			return []cpu.Prefetcher{cpu.NextLine{BlockSize: blockSize, Degree: 5, OnEveryAccess: true}}
		}
	} else {
		mcOn.Prefetchers = func() []cpu.Prefetcher {
			return []cpu.Prefetcher{cpu.NewStream(blockSize, 2), cpu.NextLine{BlockSize: blockSize}}
		}
	}
	on := workload.Measure(c.Leaf(), mcOn)
	gain := on.IPC/off.IPC - 1
	// Useless prefetches cost memory bandwidth: every extra DRAM read
	// queues behind demand misses. 128 B lines (PLT2) move twice the data
	// per wasted prefetch, which is how the paper's POWER8 ends up with a
	// net degradation and disables its prefetch engine.
	ki := float64(on.Instructions) / 1000
	extraPerKI := (float64(on.MemReads+on.MemWrites) - float64(off.MemReads+off.MemWrites)) / ki
	if extraPerKI > 0 {
		perRead := 0.0006
		if plt2 {
			perRead = 0.0035
		}
		gain -= extraPerKI * perRead
	}
	return gain, nil
}

// --- shared helper: combined post-L2 hit-rate curve ---

// l3Curve wraps a stack-distance profiler with the post-L2 normalization
// used for L3 hit-rate curves (DESIGN.md: hits among post-L2 misses).
type l3Curve struct {
	sd *cacheStackDist
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (l *l3Curve) Observe(a trace.Access) { l.sd.Observe(a) }

// combinedHitRate returns the modeled L3 hit rate at the given capacity.
func (l *l3Curve) combinedHitRate(capacity int64) float64 {
	l2eff := int64(16 * 256 << 10)
	base := l.sd.TotalMisses(l2eff)
	if base <= 0 {
		return 1
	}
	h := 1 - l.sd.TotalMisses(capacity)/base
	if h < 0 {
		return 0
	}
	return h
}

func (l *l3Curve) segHitRate(seg trace.Segment, capacity int64, excludeCold bool) float64 {
	return l.sd.SegHitRate(seg, capacity, excludeCold)
}

// dataHitRate returns the post-L2 hit rate of all data segments combined.
func (l *l3Curve) dataHitRate(capacity int64) float64 {
	var miss, base float64
	for _, seg := range []trace.Segment{trace.Heap, trace.Shard, trace.Stack} {
		miss += l.sd.Misses(seg, capacity)
		base += l.sd.Misses(seg, l.sd.l2eff())
	}
	if base <= 0 {
		return 1
	}
	h := 1 - miss/base
	if h < 0 {
		return 0
	}
	return h
}

// codeHitRate returns the post-L2 instruction hit rate (cold-excluded:
// the code working set is finite and fully amortized in steady state).
func (l *l3Curve) codeHitRate(capacity int64) float64 {
	return l.sd.SegHitRate(trace.Code, capacity, true)
}
