// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment is a registered, parameterized runner that
// returns a renderable result (a table or a set of series) whose rows match
// the paper's presentation.
//
// Experiments accept an Options scale so the same code serves fast unit
// tests (shrunken profiles, short budgets) and the full benchmark harness
// (bench_test.go / cmd/searchsim).
package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"searchmem/internal/det"
	"searchmem/internal/obs"
	"searchmem/internal/platform"
	"searchmem/internal/workload"
)

// Options scales an experiment run.
type Options struct {
	// Shrink divides workload sizes (1 = full calibrated scale).
	Shrink int
	// Budget is the measured instruction budget per configuration.
	Budget int64
	// Threads is the trace thread count for multi-threaded measurements.
	Threads int
	// Seed varies the input streams.
	Seed uint64
	// Parallel fans sweep points across worker goroutines (see parallel.go).
	// Rendered output is byte-identical to a serial run; only wall-clock and
	// the interleaving of Logf progress lines change.
	Parallel bool
	// TraceCompress stores workload recordings block-compressed
	// (delta+varint blocks, trace.Compressed) instead of flat, so replay
	// memory stays bounded at paper-scale traces. Rendered output is
	// byte-identical to flat storage (see DESIGN.md §12).
	TraceCompress bool
	// TraceSpillDir, when non-empty (and TraceCompress is set), spills
	// finished compressed blocks to unlinked temp files in this directory,
	// bounding even the recording phase's RSS to one encoding block.
	TraceSpillDir string
	// TraceBlockLen overrides the accesses-per-block geometry
	// (0 = trace.DefaultBlockLen).
	TraceBlockLen int
	// TierNearFrac, when positive, restricts the tiered-memory sweeps
	// (figT1/figT2) to one near:far capacity split instead of the default
	// grid (cmd/searchsim -tier-near).
	TierNearFrac float64
	// TierPolicy, when non-empty, restricts the tiered-memory sweeps to one
	// placement policy ("static", "lru-epoch", "freq"; cmd/searchsim
	// -tier-policy).
	TierPolicy string
	// TierEpochLen overrides the placement-epoch length in memory
	// transactions (0 = derived from the measured traffic so several epochs
	// fit in the run; cmd/searchsim -tier-epoch).
	TierEpochLen int64
	// CachePolicy, when non-empty, restricts the replacement-policy sweep
	// (figP1) to one policy ("lru", "srrip", "brrip", "drrip", or
	// "srrip+db"; cmd/searchsim -policy).
	CachePolicy string
	// PolicyLevel, when non-empty, restricts figP1 to one hierarchy level
	// ("L2", "L3", or "L4"; cmd/searchsim -policy-level).
	PolicyLevel string
	// PredBits, when positive, restricts the predictor sweep (figP2) to one
	// table size in index bits (cmd/searchsim -pred-bits).
	PredBits int
	// PredConf, when positive, restricts figP2 to one confidence threshold
	// in [1, 3] (cmd/searchsim -pred-conf).
	PredConf int
	// FleetScenario, when non-empty, restricts the fleet-scale serving
	// sweep (figF1) to one scenario (see FleetScenarios; cmd/searchsim
	// -fleet-scenario).
	FleetScenario string
	// FleetClients, when positive, overrides the modeled user population
	// of the fleet-scale sweeps (figF1/figF2; cmd/searchsim -fleet-clients).
	FleetClients int
	// Verbose enables progress output via Logf.
	Logf func(format string, args ...any)
	// Tracer, when non-nil, collects distributed traces from experiments
	// that drive the serving tree or the sampling profiler (exported via
	// cmd/searchsim -trace).
	Tracer *obs.Tracer
	// Metrics, when non-nil, is the shared registry experiment clusters
	// report into (exported via cmd/searchsim -metrics).
	Metrics *obs.Registry
}

// Fast returns options for quick runs (unit tests).
func Fast() Options {
	return Options{Shrink: 8, Budget: 800_000, Threads: 4, Seed: 1, Parallel: true}
}

// Full returns options at calibrated scale (benchmarks, cmd/searchsim).
func Full() Options {
	return Options{Shrink: 1, Budget: 6_000_000, Threads: 16, Seed: 1, Parallel: true}
}

// logf logs progress when a logger is attached.
func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Result is a renderable experiment outcome.
type Result interface {
	Render() string
}

// Experiment is one registered reproduction.
type Experiment struct {
	// ID is the lookup key ("table1", "fig6b", ...).
	ID string
	// Title describes the artifact.
	Title string
	// PaperRef cites the paper's table/figure.
	PaperRef string
	// Run executes the experiment within a context.
	Run func(*Context) (Result, error)
}

// registry holds all experiments in registration order.
var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns the registered experiments in order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids in order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.ID
	}
	return out
}

// Context carries options and caches expensive workload builds across
// experiments in one session.
type Context struct {
	Opts Options

	rc *runnerCache

	curveMu sync.Mutex
	curves  map[curveKey]any
}

// runnerCache memoizes built workloads, each wrapped in a recording Replayer
// so sweep points can re-run the same (threads, budget, seed) key without
// re-executing the stateful workload. The cache can be shared across
// Contexts via Sharing.
type runnerCache struct {
	mu sync.Mutex
	m  map[string]*workload.Replayer
}

// curveKey identifies one memoized derived profile (hit curve, perf model,
// segment stack-distance profile, L4 sweep, ...). kind namespaces the entry;
// arg carries the per-kind parameter (thread count, associativity, ...).
type curveKey struct {
	kind string
	arg  int64
}

// NewContext returns a context with the given options.
func NewContext(opts Options) *Context {
	if opts.Shrink <= 0 {
		opts.Shrink = 1
	}
	if opts.Budget <= 0 {
		opts.Budget = 6_000_000
	}
	if opts.Threads <= 0 {
		opts.Threads = 16
	}
	return &Context{
		Opts:   opts,
		rc:     &runnerCache{m: make(map[string]*workload.Replayer)},
		curves: make(map[curveKey]any),
	}
}

// Sharing returns a fresh Context that shares this context's built workloads
// and their memoized recordings but keeps independent derived-curve caches.
// The two contexts may run experiments concurrently (the shared cache is
// race-clean), with one caveat: opts should agree with the parent's
// Shrink/Budget/Threads/Seed, and byte-identical output is only guaranteed
// per-context when the contexts do not interleave *new* recordings — already
// recorded keys replay identically from any number of contexts.
func (c *Context) Sharing(opts Options) *Context {
	nc := NewContext(opts)
	nc.rc = c.rc
	return nc
}

// runner builds (or returns the cached) replay-wrapped runner for a search
// profile.
func (c *Context) runner(key string, build func() workload.SearchWorkload) *workload.Replayer {
	c.rc.mu.Lock()
	defer c.rc.mu.Unlock()
	if r, ok := c.rc.m[key]; ok {
		return r
	}
	c.Opts.logf("building workload %s (shrink %d)...", key, c.Opts.Shrink)
	r := workload.NewReplayer(build().Build())
	if c.Opts.TraceCompress {
		r.SetStore(workload.StoreConfig{
			Compress: true,
			BlockLen: c.Opts.TraceBlockLen,
			SpillDir: c.Opts.TraceSpillDir,
		})
	}
	c.rc.m[key] = r
	return r
}

// TraceStores returns the recording-storage footprint of every built
// runner, keyed by runner-cache key.
func (c *Context) TraceStores() map[string]workload.StoreStats {
	c.rc.mu.Lock()
	defer c.rc.mu.Unlock()
	out := make(map[string]workload.StoreStats, len(c.rc.m))
	for key, r := range c.rc.m {
		out[key] = r.StoreStats()
	}
	return out
}

// ReportTraceStores publishes per-runner recording-storage gauges into reg:
// trace_store_accesses, trace_store_bytes, and trace_store_spilled_bytes,
// labeled runner=<cache key>. The values are pure functions of the recorded
// streams, so a registry holding only these stays byte-deterministic for a
// fixed seed. Process-memory high-water gauges (nondeterministic) are
// deliberately separate — see MemGauges.
func (c *Context) ReportTraceStores(reg *obs.Registry) {
	if reg == nil {
		return
	}
	stores := c.TraceStores()
	for _, key := range det.SortedKeys(stores) {
		st := stores[key]
		l := obs.L("runner", key)
		reg.Gauge("trace_store_accesses", l).Set(float64(st.Accesses))
		reg.Gauge("trace_store_bytes", l).Set(float64(st.StoredBytes))
		reg.Gauge("trace_store_spilled_bytes", l).Set(float64(st.SpilledBytes))
	}
}

// MemGauges publishes the Go runtime's memory counters into reg:
// process_peak_sys_bytes (high-water of OS memory the runtime obtained —
// the RSS proxy that bounded-memory replay is judged by) and
// process_heap_inuse_bytes (live heap at the time of the call). These are
// environmental, not deterministic; keep them out of registries whose
// exports must be byte-identical across runs (cmd/searchsim routes them to
// a separate stderr-only registry).
func MemGauges(reg *obs.Registry) {
	if reg == nil {
		return
	}
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	reg.Gauge("process_peak_sys_bytes").Set(float64(m.Sys))
	reg.Gauge("process_heap_inuse_bytes").Set(float64(m.HeapInuse))
}

// Leaf returns the cached S1-leaf micro runner (replay-wrapped: repeated
// measurements with the same key replay one recording).
func (c *Context) Leaf() *workload.Replayer {
	return c.runner("s1-leaf", func() workload.SearchWorkload { return workload.S1Leaf(c.Opts.Shrink) })
}

// Sweep returns the cached S1-leaf capacity-sweep runner (replay-wrapped).
func (c *Context) Sweep() *workload.Replayer {
	return c.runner("s1-leaf-sweep", func() workload.SearchWorkload { return workload.S1LeafSweep(c.Opts.Shrink) })
}

// PLT1 returns the PLT1 platform (full scale: experiments on micro profiles
// simulate the real cache sizes).
func (c *Context) PLT1() platform.Platform { return platform.PLT1() }

// PLT2 returns the PLT2 platform.
func (c *Context) PLT2() platform.Platform { return platform.PLT2() }

// --- renderable result types ---

// Table is a titled grid.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	// Note is appended under the table (provenance, units).
	Note string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render implements Result with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

// Series is one named line of (x, y) points.
type Series struct {
	Name string
	X, Y []float64
}

// Figure is a titled set of series sharing an x-axis.
type Figure struct {
	Title          string
	XLabel, YLabel string
	Series         []Series
	Note           string
	// XFormat, when non-nil, renders x-axis values (e.g. byte counts via
	// mib); trimFloat otherwise.
	XFormat func(x float64) string
}

// Add appends a point to the named series, creating it on first use.
func (f *Figure) Add(name string, x, y float64) {
	for i := range f.Series {
		if f.Series[i].Name == name {
			f.Series[i].X = append(f.Series[i].X, x)
			f.Series[i].Y = append(f.Series[i].Y, y)
			return
		}
	}
	f.Series = append(f.Series, Series{Name: name, X: []float64{x}, Y: []float64{y}})
}

// Get returns the named series, or nil.
func (f *Figure) Get(name string) *Series {
	for i := range f.Series {
		if f.Series[i].Name == name {
			return &f.Series[i]
		}
	}
	return nil
}

// Render implements Result: one row per x value, one column per series.
func (f *Figure) Render() string {
	// Collect the union of x values.
	xs := map[float64]struct{}{}
	for _, s := range f.Series {
		for _, x := range s.X {
			xs[x] = struct{}{}
		}
	}
	sorted := det.SortedKeys(xs)

	t := Table{Title: fmt.Sprintf("%s\n(y: %s)", f.Title, f.YLabel), Note: f.Note}
	t.Headers = append(t.Headers, f.XLabel)
	for _, s := range f.Series {
		t.Headers = append(t.Headers, s.Name)
	}
	xfmt := f.XFormat
	if xfmt == nil {
		xfmt = trimFloat
	}
	for _, x := range sorted {
		row := []string{xfmt(x)}
		for _, s := range f.Series {
			cell := ""
			for i := range s.X {
				if s.X[i] == x {
					cell = trimFloat(s.Y[i])
					break
				}
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	return t.Render()
}

// trimFloat formats a float compactly.
func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// pct formats a fraction as a percentage string.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// mib formats a byte count with an adaptive binary unit. The old
// fixed-MiB rendering (b>>20) truncated every sub-MiB value — block sizes,
// small partitions — to "0"; picking the unit by magnitude keeps those
// legible without changing how MiB-scale capacities read.
func mib(b int64) string {
	switch {
	case b < 1<<10:
		return fmt.Sprintf("%d B", b)
	case b < 1<<20:
		return trimFloat(float64(b)/(1<<10)) + " KiB"
	case b < 1<<30:
		return trimFloat(float64(b)/(1<<20)) + " MiB"
	default:
		return trimFloat(float64(b)/(1<<30)) + " GiB"
	}
}
