package experiments

import (
	"fmt"

	"searchmem/internal/cache"
	"searchmem/internal/dram"
	"searchmem/internal/serving"
	"searchmem/internal/trace"
	"searchmem/internal/workload"
)

func init() {
	register(Experiment{
		ID:       "missclass",
		Title:    "L3 miss classification by segment (cold/capacity/conflict)",
		PaperRef: "§III-C (extension)",
		Run:      runMissClass,
	})
	register(Experiment{
		ID:       "bandwidth",
		Title:    "DRAM bandwidth utilization: production search vs CloudSuite",
		PaperRef: "§II-D (extension)",
		Run:      runBandwidth,
	})
	register(Experiment{
		ID:       "slo",
		Title:    "Per-query latency under the rebalanced design",
		PaperRef: "§IV-B (extension)",
		Run:      runSLO,
	})
	register(Experiment{
		ID:       "degraded",
		Title:    "Serving tree under fault injection: deadlines, hedging, partial results",
		PaperRef: "§II (extension)",
		Run:      runDegraded,
	})
}

// runMissClass reproduces the §III-C discussion as numbers: shard misses
// are mostly cold, heap misses mostly capacity, and conflicts are a small
// share everywhere.
func runMissClass(c *Context) (Result, error) {
	o := c.Opts
	plat := c.PLT1()
	// Classify the 16-thread sweep trace against a paper-equivalent L3
	// (32 MiB-paper at sweep scale): the GiB-scale heap working set is
	// what produces the paper's capacity misses. Cold/capacity/conflict
	// proportions are driven by block-level reuse, which upstream L1/L2
	// filtering preserves (Mattson inclusion).
	l3 := plat.L3
	l3.Size = workload.SimUnits(32 << 20)
	l3.Assoc = 16 // keep blocks/ways divisibility at the scaled size
	cl := cache.NewClassifier(l3)
	c.Sweep().Run(min(o.Threads, 16), o.Budget*2, o.Seed+41, workload.Sinks{Access: cl.Observe})

	t := &Table{
		Title:   "L3 miss classification by segment (32 MiB-paper, sweep scale)",
		Headers: []string{"segment", "cold", "capacity", "conflict", "hits"},
		Note:    "paper §III-C: shard accesses mostly cold, heap mostly capacity, conflicts minor, no coherence misses (no read-write sharing)",
	}
	for seg := trace.Segment(0); seg < trace.NumSegments; seg++ {
		total := cl.Misses(seg) + cl.Hits[seg]
		if total == 0 {
			continue
		}
		t.AddRow(seg.String(),
			fmt.Sprintf("%d", cl.Counts[seg][cache.MissCold]),
			fmt.Sprintf("%d", cl.Counts[seg][cache.MissCapacity]),
			fmt.Sprintf("%d", cl.Counts[seg][cache.MissConflict]),
			fmt.Sprintf("%d", cl.Hits[seg]))
	}
	t.AddRow("conflict share", "", "", pct(cl.ClassShare(cache.MissConflict)), "")
	return t, nil
}

// runBandwidth reproduces the §II-D bandwidth contrast: production search
// consumes 40-50% of peak DRAM bandwidth, CloudSuite ~1%.
func runBandwidth(c *Context) (Result, error) {
	o := c.Opts
	plat := c.PLT1()
	measure := func(r workload.Runner) (util float64, gbs float64) {
		m := workload.Measure(r, workload.MeasureConfig{
			Platform: plat,
			Cores:    1, SMTWays: 1, Threads: 1,
			Budget:         o.Budget,
			Seed:           o.Seed + 43,
			WarmupFraction: 1.5,
		})
		// Socket-level bandwidth: per-core transaction rate scaled to all
		// cores running at the modeled IPC.
		instrPerSec := m.IPC * plat.Core.FreqGHz * 1e9 * float64(plat.CoresPerSocket) * plat.SMT.Speedup(2)
		transPerSec := m.DRAMPerKI / 1000 * instrPerSec
		gbs = transPerSec * float64(plat.CacheBlock) / 1e9
		return dram.Utilization(gbs, dram.DDR4), gbs
	}
	sUtil, sGBs := measure(c.Leaf())
	cUtil, cGBs := measure(workload.CloudSuiteWebSearch().Build())
	t := &Table{
		Title:   "Socket DRAM bandwidth at full load (modeled)",
		Headers: []string{"workload", "GB/s", "of peak"},
		Note:    "paper §II-D: production search 40-50% of peak DRAM bandwidth; CloudSuite ~1%; >100% of peak = the modeled stream oversubscribes the device",
	}
	t.AddRow("S1 leaf", fmt.Sprintf("%.1f", sGBs), pct(sUtil))
	t.AddRow("CloudSuite WS", fmt.Sprintf("%.1f", cGBs), pct(cUtil))
	return t, nil
}

// runSLO checks the paper's §IV-B claim that the rebalanced design keeps
// per-query latency within the service-level objective: leaf service times
// scale with 1/IPC, so a design with equal-or-better IPC cannot blow the
// tail; the serving tree quantifies it end to end.
func runSLO(c *Context) (Result, error) {
	pm := newPerfModel(c)
	ipcBase := pm.ipcAt(45<<20, 0, 0, 0)
	ipcRebal := pm.ipcAt(23<<20, 0, 0, 0)

	run := func(name string, nsPerInstrScale float64, seed uint64) serving.LoadStats {
		cfg := serving.DefaultConfig()
		cfg.Leaves = 16
		cfg.LeafCapacity = 32
		cfg.Name = "slo/" + name
		cfg.Registry = c.Opts.Metrics
		cl := serving.NewCluster(cfg, scaledExecutors(16, nsPerInstrScale))
		return serving.RunLoad(cl, 8, 250, 3000, 0.9, seed)
	}
	base := run("base", 1/ipcBase, 7)
	rebal := run("rebal", 1/ipcRebal, 7)

	t := &Table{
		Title:   "Per-query latency: baseline vs rebalanced (23-core) design",
		Headers: []string{"design", "mean ms", "p95 ms", "p99 ms"},
		Note:    "paper §IV-B: average and tail latency remain well within the SLO after rebalancing",
	}
	t.AddRow("18-core baseline",
		fmt.Sprintf("%.2f", base.MeanLatencyNS/1e6),
		fmt.Sprintf("%.2f", base.P95NS/1e6),
		fmt.Sprintf("%.2f", base.P99NS/1e6))
	t.AddRow("23-core rebalanced",
		fmt.Sprintf("%.2f", rebal.MeanLatencyNS/1e6),
		fmt.Sprintf("%.2f", rebal.P95NS/1e6),
		fmt.Sprintf("%.2f", rebal.P99NS/1e6))
	return t, nil
}

// runDegraded exercises the fault-tolerant serving tier: the same
// Zipf-popular load against a healthy tree and one with 10% stragglers,
// 2% post-work failures, and 1% flapping shards, with per-leaf deadlines
// and hedged retries bounding the tail. Per-stage metrics come from the
// cluster's registry.
func runDegraded(c *Context) (Result, error) {
	degradedConfig := func(name string) serving.Config {
		cfg := serving.DefaultConfig()
		cfg.Leaves = 16
		cfg.LeafDeadlineNS = 8e6
		cfg.HedgeDelayNS = 4e6
		cfg.Name = "degraded/" + name
		cfg.Registry = c.Opts.Metrics
		return cfg
	}
	faultyExecutors := func(cfg serving.Config) []serving.Executor {
		var execs []serving.Executor
		for i := 0; i < cfg.Leaves; i++ {
			execs = append(execs, &serving.FaultyExecutor{
				Inner:    serving.NewSyntheticExecutor(uint32(i), cfg.TopK),
				SlowProb: 0.10, SlowFactor: 8,
				FailProb: 0.02,
				FlapProb: 0.01,
				Seed:     c.Opts.Seed + uint64(i)*7919,
			})
		}
		return execs
	}
	run := func(faulty bool) (serving.LoadStats, serving.Metrics) {
		name := "healthy"
		if faulty {
			name = "faulty"
		}
		cfg := degradedConfig(name)
		var execs []serving.Executor
		if faulty {
			execs = faultyExecutors(cfg)
		}
		cl := serving.NewCluster(cfg, execs)
		st := serving.RunLoad(cl, 8, 250, 3000, 0.9, c.Opts.Seed+47)
		return st, cl.Metrics()
	}
	healthy, hm := run(false)
	faulty, fm := run(true)

	// Traced showcase: a fresh faulty cluster served three fixed queries,
	// so span timestamps and trace IDs are independent of the load mix
	// above.
	if c.Opts.Tracer != nil {
		cfg := degradedConfig("traced")
		cfg.Tracer = c.Opts.Tracer
		cl := serving.NewCluster(cfg, faultyExecutors(cfg))
		for q := uint32(0); q < 3; q++ {
			cl.Serve(serving.Query{Terms: []uint32{q*19 + 1, q*53 + 2}})
		}
	}

	t := &Table{
		Title:   "Serving tree with 8 ms leaf deadline + 4 ms hedging (16 leaves)",
		Headers: []string{"load", "p50 ms", "p95 ms", "p99 ms", "partial", "hedges", "hedge wins", "timeouts", "failures"},
		Note:    "10% stragglers/2% failures/1% flaps: hedged retries recover most faults; the rest degrade to partial results with the tail pinned at the deadline",
	}
	row := func(name string, st serving.LoadStats, m serving.Metrics) {
		t.AddRow(name,
			fmt.Sprintf("%.2f", st.P50NS/1e6),
			fmt.Sprintf("%.2f", st.P95NS/1e6),
			fmt.Sprintf("%.2f", st.P99NS/1e6),
			fmt.Sprintf("%d", st.PartialResults),
			fmt.Sprintf("%d", m.HedgesIssued),
			fmt.Sprintf("%d", m.HedgeWins),
			fmt.Sprintf("%d", m.LeafTimeouts),
			fmt.Sprintf("%d", m.LeafFailures))
	}
	row("healthy", healthy, hm)
	row("faulty", faulty, fm)
	return t, nil
}

// scaledExecutors builds synthetic leaves whose service time scales with
// the per-instruction cost of the design under test.
func scaledExecutors(n int, scale float64) []serving.Executor {
	out := make([]serving.Executor, n)
	for i := range out {
		e := serving.NewSyntheticExecutor(uint32(i), 10)
		e.BaseLatencyNS *= scale
		e.PerTermNS *= scale
		out[i] = e
	}
	return out
}
