//go:build race

package experiments

// raceDetectorOn reports whether the test binary was built with -race.
// Full()-scale numeric tests skip under the race detector: its ~10-20x
// slowdown blows the package test timeout without adding race coverage
// (the dedicated concurrency tests exercise the parallel engine's sharing
// paths at Fast() scale).
const raceDetectorOn = true
