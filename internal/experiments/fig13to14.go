package experiments

import (
	"fmt"

	"searchmem/internal/dram"
	"searchmem/internal/model"
	"searchmem/internal/trace"
	"searchmem/internal/workload"
)

func init() {
	register(Experiment{
		ID:       "fig13",
		Title:    "L4 capacity sweep: hit rate and MPKI by segment",
		PaperRef: "Figure 13",
		Run:      runFig13,
	})
	register(Experiment{
		ID:       "fig14",
		Title:    "QPS improvement combining the L4 with cache-for-cores",
		PaperRef: "Figure 14",
		Run:      runFig14,
	})
}

// fig13Capacities are the paper's L4 sizes in MiB (Figure 13 extends to
// 8 GiB).
var fig13Capacities = []int64{64, 128, 256, 512, 1024, 2048, 4096, 8192}

// l4Point is one simulated L4 size.
type l4Point struct {
	capMiB  int64
	hitRate float64
	segHits [trace.NumSegments]int64
	segMiss [trace.NumSegments]int64
	instr   int64
	// dramFilter is the fraction of post-L3 reads absorbed (the paper's
	// ~50% energy argument).
	dramFilter float64
}

// sweepL4 simulates the direct-mapped victim L4 at each capacity behind a
// 23 MiB-paper L3 (the rebalanced design of §IV-B). The capacities differ
// only in L4 geometry, so contiguous shards of the sweep run through the
// single-pass MeasureMulti kernel (one trace decode per shard, all its
// hierarchies advanced per batch) and shards fan out across workers. The
// result is memoized per associativity, so Figures 13 and 14 share one
// simulation.
func sweepL4(c *Context, assoc int) []l4Point {
	c.curveMu.Lock()
	defer c.curveMu.Unlock()
	key := curveKey{kind: "l4sweep", arg: int64(assoc)}
	if cached, ok := c.curves[key]; ok {
		return cached.([]l4Point)
	}
	o := c.Opts
	base := workload.MeasureConfig{
		Platform: c.PLT1().ScaleCaches(workload.SweepScale),
		Cores:    min(o.Threads, 8), SMTWays: 2,
		Threads:        min(o.Threads, 16),
		L3Size:         workload.SimUnits(23 << 20),
		L4Assoc:        assoc,
		Budget:         o.Budget * 2,
		Seed:           o.Seed,
		WarmupFraction: 1.0,
	}
	mcs := make([]workload.MeasureConfig, len(fig13Capacities))
	for i, mb := range fig13Capacities {
		mcs[i] = base
		mcs[i].L4Size = workload.SimUnits(mb << 20)
	}
	out := make([]l4Point, len(mcs))
	for i, m := range measureMultiSharded(c, c.Sweep(), mcs) {
		mb := fig13Capacities[i]
		p := l4Point{capMiB: mb, hitRate: m.L4HitRate, instr: m.Instructions}
		for seg := trace.Segment(0); seg < trace.NumSegments; seg++ {
			p.segHits[seg] = m.L4.SegHits(seg)
			p.segMiss[seg] = m.L4.SegMisses(seg)
		}
		tr := dram.Traffic{
			L4Hits:   m.L4.TotalHits(),
			L4Misses: m.L4.TotalMisses(),
		}
		p.dramFilter = tr.DRAMFilterRate()
		o.logf("fig13: L4 %d MiB-paper: hit %.2f filter %.2f", mb, p.hitRate, p.dramFilter)
		out[i] = p
	}
	c.curves[key] = out
	return out
}

func runFig13(c *Context) (Result, error) {
	points := sweepL4(c, 0) // 0 = direct-mapped per the paper's design
	fig := &Figure{
		Title:  "Figure 13: direct-mapped L4 sweep behind a 23 MiB L3 (paper MiB)",
		XLabel: "L4 MiB", YLabel: "hit rate / MPKI",
		Note: "paper: 1 GiB captures most heap locality; ~50% of DRAM reads filtered; shard dominates remaining misses",
	}
	for _, p := range points {
		fig.Add("hit-rate combined", float64(p.capMiB), p.hitRate)
		for _, seg := range []trace.Segment{trace.Code, trace.Heap, trace.Shard} {
			h, m := p.segHits[seg], p.segMiss[seg]
			if h+m > 0 {
				fig.Add("hit-rate "+seg.String(), float64(p.capMiB), float64(h)/float64(h+m))
			}
			if p.instr > 0 {
				fig.Add("MPKI "+seg.String(), float64(p.capMiB),
					float64(m)/float64(p.instr)*1000)
			}
		}
		fig.Add("DRAM-read filter", float64(p.capMiB), p.dramFilter)
	}
	return fig, nil
}

// fig14Sizes are the L4 capacities of Figure 14 (MiB).
var fig14Sizes = []int64{128, 256, 512, 1024, 2048}

// l4HitAt interpolates the simulated L4 hit rate at a capacity.
func l4HitAt(points []l4Point, mb int64) float64 {
	for _, p := range points {
		if p.capMiB == mb {
			return p.hitRate
		}
	}
	return 0
}

func runFig14(c *Context) (Result, error) {
	// The rebalanced processor: 23 cores, 1 MiB/core of L3 (§IV-B),
	// versus the 18-core 45 MiB baseline. The L4 hit rates come from the
	// functional simulation (Figure 13); timing from the L4 designs.
	pm := newPerfModel(c)
	smt := c.PLT1().SMT.Speedup(2)
	base := baselineQPS(pm, smt)
	const l3Rebalanced = 23 << 20

	direct := sweepL4(c, 0)
	assoc := sweepL4(c, -1)

	fig := &Figure{
		Title:  "Figure 14: QPS improvement over the 18-core PLT1 baseline",
		XLabel: "L4 MiB", YLabel: "QPS improvement (fraction)",
		Note: "paper: rebalance alone +14%; with 1 GiB 40 ns L4 +27%; pessimistic +23%; future +38%",
	}
	rebalanceOnly := model.Improvement(base, pm.qps(23, l3Rebalanced, smt))
	// Future configuration: +10% memory latency and +10% L3 misses,
	// applied by scaling the model's latency constants and miss volumes.
	fut := *pm
	fut.tMEM *= 1.10
	futCore := fut.core
	futCore.MemLatencyNS *= 1.10
	fut.core = futCore
	futBase := fut.qps(18, 45<<20, smt) // note: fut curve unchanged; latency carries the trend

	for _, mb := range fig14Sizes {
		// Baseline L4: 40 ns hit, parallel lookup.
		d := dram.BaselineL4(mb << 20)
		q := pm.qpsWithL4(23, l3Rebalanced, smt, l4HitAt(direct, mb), d.HitLatencyNS, d.MissPenaltyNS)
		fig.Add("Baseline", float64(mb), model.Improvement(base, q))

		// Pessimistic: 60 ns hit + 5 ns serialized miss penalty.
		p := dram.PessimisticL4(mb << 20)
		q = pm.qpsWithL4(23, l3Rebalanced, smt, l4HitAt(direct, mb), p.HitLatencyNS, p.MissPenaltyNS)
		fig.Add("Pessimistic", float64(mb), model.Improvement(base, q))

		// Associative: fully-associative functional sim, baseline timing.
		a := dram.AssociativeL4(mb << 20)
		q = pm.qpsWithL4(23, l3Rebalanced, smt, l4HitAt(assoc, mb), a.HitLatencyNS, a.MissPenaltyNS)
		fig.Add("Associative", float64(mb), model.Improvement(base, q))

		// Future: the same L4 under the degraded memory system.
		q = fut.qpsWithL4(23, l3Rebalanced, smt, l4HitAt(direct, mb), d.HitLatencyNS, d.MissPenaltyNS)
		fig.Add("Future", float64(mb), model.Improvement(futBase, q))
	}
	fig.Note += fmt.Sprintf("; rebalance-only floor: %s", pct(rebalanceOnly))
	return fig, nil
}
