// Package search implements the search-engine substrate: a synthetic
// corpus, an inverted index with varint-compressed posting lists serialized
// into an instrumented shard arena, BM25 query evaluation with heap-resident
// scoring structures, top-k selection, snippet extraction, and a query
// cache.
//
// It is the workload generator of this reproduction: executing queries
// against the engine emits the shard/heap/stack address streams (via
// internal/memsim) and the code/branch streams (via internal/codegen) that
// the paper captured from production leaf servers with Pin.
package search

import (
	"fmt"

	"searchmem/internal/stats"
)

// CorpusConfig describes the synthetic document collection.
type CorpusConfig struct {
	// NumDocs is the number of documents in this leaf's shard.
	NumDocs int
	// VocabSize is the number of distinct terms.
	VocabSize int
	// AvgDocLen is the mean document length in terms; lengths follow a
	// bounded Pareto around it, matching the heavy tail of real corpora.
	AvgDocLen int
	// TermZipfSkew sets term popularity inside documents. Real text is
	// near 1.0 (Zipf's law).
	TermZipfSkew float64
	// Seed drives generation.
	Seed uint64
}

// DefaultCorpusConfig returns a small but structurally realistic corpus
// suitable for tests; experiments scale NumDocs and VocabSize up.
func DefaultCorpusConfig() CorpusConfig {
	return CorpusConfig{
		NumDocs:      20000,
		VocabSize:    30000,
		AvgDocLen:    80,
		TermZipfSkew: 1.0,
		Seed:         0x5ea7c4,
	}
}

// Validate reports whether the configuration is usable.
func (c CorpusConfig) Validate() error {
	if c.NumDocs <= 0 || c.VocabSize <= 0 || c.AvgDocLen <= 0 {
		return fmt.Errorf("search: corpus counts must be positive")
	}
	if c.NumDocs >= 1<<31 || c.VocabSize >= 1<<31 {
		return fmt.Errorf("search: corpus too large for 32-bit ids")
	}
	if c.TermZipfSkew <= 0 {
		return fmt.Errorf("search: term zipf skew must be positive")
	}
	return nil
}

// Corpus is a generated document collection held in ordinary Go memory;
// it exists only during index construction (the paper's indexing system is
// a batch pipeline distinct from the serving system under study).
type Corpus struct {
	cfg CorpusConfig
	// Docs[d] is the term sequence of document d.
	Docs [][]uint32
	// TotalTerms is the summed document length.
	TotalTerms int64
}

// GenerateCorpus synthesizes a corpus from cfg.
func GenerateCorpus(cfg CorpusConfig) *Corpus {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	rng := stats.NewRNG(cfg.Seed)
	termDist := stats.NewZipf(rng.Split(), uint64(cfg.VocabSize), cfg.TermZipfSkew)
	c := &Corpus{cfg: cfg, Docs: make([][]uint32, cfg.NumDocs)}
	minLen := float64(cfg.AvgDocLen) / 3
	maxLen := float64(cfg.AvgDocLen) * 12
	for d := range c.Docs {
		// Bounded Pareto with alpha tuned so the mean lands near
		// AvgDocLen for these bounds.
		n := int(rng.Pareto(minLen, maxLen, 1.75))
		doc := make([]uint32, n)
		for i := range doc {
			doc[i] = uint32(termDist.Next())
		}
		c.Docs[d] = doc
		c.TotalTerms += int64(n)
	}
	return c
}

// Config returns the corpus configuration.
func (c *Corpus) Config() CorpusConfig { return c.cfg }

// AvgDocLen returns the realized mean document length.
func (c *Corpus) AvgDocLen() float64 {
	if len(c.Docs) == 0 {
		return 0
	}
	return float64(c.TotalTerms) / float64(len(c.Docs))
}

// posting is one (document, term-frequency) pair during construction.
type posting struct {
	doc uint32
	tf  uint32
}

// buildPostings inverts the corpus into per-term posting lists, sorted by
// document id (documents are processed in id order, so lists sort
// naturally).
func buildPostings(c *Corpus) [][]posting {
	lists := make([][]posting, c.cfg.VocabSize)
	// Count term frequencies per document with a reusable scratch map.
	tfs := make(map[uint32]uint32, c.cfg.AvgDocLen)
	for d, doc := range c.Docs {
		for k := range tfs {
			delete(tfs, k)
		}
		for _, t := range doc {
			tfs[t]++
		}
		//lint:ignore maporder each lists[t] gains one posting per document and documents are visited in id order, so every list stays doc-sorted regardless of term order (panic-checked below)
		for t, tf := range tfs {
			lists[t] = append(lists[t], posting{doc: uint32(d), tf: tf})
		}
	}
	// Map iteration above randomizes intra-document term order, but lists
	// stay sorted by doc because docs are visited in order; verify cheaply.
	for t, list := range lists {
		for i := 1; i < len(list); i++ {
			if list[i].doc < list[i-1].doc {
				panic(fmt.Sprintf("search: posting list %d not sorted", t))
			}
		}
	}
	return lists
}
