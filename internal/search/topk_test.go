package search

import (
	"sort"
	"testing"
	"testing/quick"

	"searchmem/internal/stats"
)

// oracleTopK computes the expected result by full sort.
func oracleTopK(docs []uint32, scores []float32, k int) []uint32 {
	type pair struct {
		doc   uint32
		score float32
	}
	ps := make([]pair, len(docs))
	for i := range docs {
		ps[i] = pair{docs[i], scores[i]}
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].score != ps[j].score {
			return ps[i].score > ps[j].score
		}
		return ps[i].doc < ps[j].doc
	})
	if len(ps) > k {
		ps = ps[:k]
	}
	out := make([]uint32, len(ps))
	for i, p := range ps {
		out[i] = p.doc
	}
	return out
}

func TestTopKMatchesSortOracle(t *testing.T) {
	prop := func(seed uint64, n uint8) bool {
		rng := stats.NewRNG(seed)
		k := 1 + rng.Intn(10)
		tk := NewTopK(k)
		docs := make([]uint32, int(n)+1)
		scores := make([]float32, len(docs))
		for i := range docs {
			docs[i] = uint32(i)
			scores[i] = float32(rng.Intn(50)) / 10 // repeated scores force tie-breaks
			tk.Push(docs[i], scores[i])
		}
		got, gotScores := tk.Results()
		want := oracleTopK(docs, scores, k)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		// Scores must be ordered non-increasing.
		for i := 1; i < len(gotScores); i++ {
			if gotScores[i] > gotScores[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKFewerThanK(t *testing.T) {
	tk := NewTopK(10)
	tk.Push(3, 1.0)
	tk.Push(7, 2.0)
	docs, scores := tk.Results()
	if len(docs) != 2 || docs[0] != 7 || docs[1] != 3 {
		t.Fatalf("results: %v", docs)
	}
	if scores[0] != 2.0 || scores[1] != 1.0 {
		t.Fatalf("scores: %v", scores)
	}
}

func TestTopKReset(t *testing.T) {
	tk := NewTopK(2)
	tk.Push(1, 5)
	tk.Reset()
	if tk.Len() != 0 {
		t.Fatal("reset did not empty")
	}
	tk.Push(2, 1)
	docs, _ := tk.Results()
	if len(docs) != 1 || docs[0] != 2 {
		t.Fatalf("after reset: %v", docs)
	}
}

func TestTopKTieBreaksByDocID(t *testing.T) {
	tk := NewTopK(2)
	tk.Push(9, 1.0)
	tk.Push(4, 1.0)
	tk.Push(6, 1.0)
	docs, _ := tk.Results()
	if docs[0] != 4 || docs[1] != 6 {
		t.Fatalf("tie break order: %v", docs)
	}
}

// TestTopKSaturatedPushDoesNotAllocate is the regression test for the
// saturated-push hot path: Push used to append the candidate past k and
// truncate, reallocating both backing arrays on the first saturated push
// and copying on every one after.
func TestTopKSaturatedPushDoesNotAllocate(t *testing.T) {
	const k = 8 // append growth lands cap exactly at k, exposing the realloc
	const runs = 64
	tks := make([]*TopK, runs+1)
	for i := range tks {
		tks[i] = NewTopK(k)
		for j := 0; j < k; j++ {
			tks[i].Push(uint32(j), float32(j))
		}
	}
	i := 0
	avg := testing.AllocsPerRun(runs, func() {
		tks[i].Push(uint32(100+i), float32(k+1)) // beats the root
		tks[i].Push(uint32(200+i), -1)           // loses to the root
		i++
	})
	if avg != 0 {
		t.Fatalf("saturated Push allocates %.1f times per call pair, want 0", avg)
	}
}

func BenchmarkTopKPushSaturated(b *testing.B) {
	rng := stats.NewRNG(1)
	scores := make([]float32, 4096)
	for i := range scores {
		scores[i] = float32(rng.Intn(10_000)) / 100
	}
	tk := NewTopK(10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk.Push(uint32(i), scores[i&4095])
	}
}

func TestTopKPanicsOnZeroK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 accepted")
		}
	}()
	NewTopK(0)
}
