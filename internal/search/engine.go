package search

import (
	"fmt"
	"math"

	"searchmem/internal/codegen"
	"searchmem/internal/memsim"
	"searchmem/internal/trace"
)

// Hot function ids pinned per engine phase: the inner loops of posting
// decode, candidate selection, and snippet generation each live in one hot
// function, while per-query orchestration walks the wider (Zipf-popular)
// service code — reproducing the paper's hot-core/large-tail code profile.
const (
	fnDecode  = 1
	fnSelect  = 2
	fnSnippet = 3
)

// Result is one query's outcome.
type Result struct {
	// Docs are the top-k documents, best first.
	Docs []uint32
	// Scores are the corresponding scores (nil when served from the
	// query cache, which stores ids only).
	Scores []float32
	// FromCache reports whether the result came from the query cache.
	FromCache bool
}

// Session is per-hardware-thread query-execution state: an accumulator
// table in the heap, a top-k selector, and an optional code walker. Sessions
// are not safe for concurrent use; create one per simulated thread.
type Session struct {
	eng    *Engine
	thread uint8
	walker *codegen.Walker

	accumBase  uint64
	accumEpoch uint32
	touched    []uint32
	topk       *TopK

	// SkipCache disables the query cache for this session (used by
	// verification oracles).
	SkipCache bool

	// Statistics.
	Queries, CacheHits int64
	PostingsDecoded    int64
	CandidatesScored   int64
	AccumDrops         int64
	instrsModeled      int64
}

// NewSession creates the n-th session (n < MaxSessions) for a hardware
// thread. walker may be nil to skip instruction-side modeling.
func (e *Engine) NewSession(thread uint8, walker *codegen.Walker) *Session {
	if e.sessions >= e.cfg.MaxSessions {
		panic(fmt.Sprintf("search: session limit %d exceeded", e.cfg.MaxSessions))
	}
	base := e.accumBase + uint64(e.sessions*e.cfg.AccumSlots*accumSlot)
	e.sessions++
	return &Session{
		eng:       e,
		thread:    thread,
		walker:    walker,
		accumBase: base,
		topk:      NewTopK(e.cfg.TopK),
	}
}

// Instructions returns the instructions retired by this session: the
// walker's count when code modeling is active, otherwise the modeled cost.
func (s *Session) Instructions() int64 {
	if s.walker != nil {
		return s.walker.Instructions
	}
	return s.instrsModeled
}

// code charges n instructions to the session. With a walker attached, a
// HotCodeFrac share of phase work (fn >= 0) runs in the phase's pinned hot
// function and the rest walks the wide Zipf-popular service code; fn < 0
// charges everything to the wide code (query orchestration).
func (s *Session) code(fn int, n int) {
	if n <= 0 {
		return
	}
	if s.walker == nil {
		s.instrsModeled += int64(n)
		return
	}
	if fn < 0 {
		s.walker.Run(n)
		return
	}
	hot := int(float64(n) * s.eng.cfg.HotCodeFrac)
	if hot > 0 {
		s.walker.RunFunc(fn, hot)
	}
	if n-hot > 0 {
		s.walker.Run(n - hot)
	}
}

// hashTerms produces the query-cache tag (FNV-1a over the term ids).
func hashTerms(terms []uint32) uint64 {
	h := uint64(14695981039346656037)
	for _, t := range terms {
		for i := 0; i < 4; i++ {
			h ^= uint64(t >> (8 * i) & 0xff)
			h *= 1099511628211
		}
	}
	if h == 0 {
		h = 1 // 0 marks an empty cache slot
	}
	return h
}

// Execute runs one query through the full pipeline: cache probe, posting
// scan + BM25 accumulation, candidate selection, feature-based final
// scoring, snippet extraction, and cache fill.
func (s *Session) Execute(terms []uint32) Result {
	s.Queries++
	e := s.eng
	// Query parse / RPC handling: wide service code, not a hot loop.
	s.code(-1, e.cfg.InstrsPerQuery/2)

	tag := hashTerms(terms)
	if !s.SkipCache {
		if docs, ok := e.cacheProbe(s.thread, tag); ok {
			s.CacheHits++
			return Result{Docs: docs, FromCache: true}
		}
	}

	// Term-at-a-time scoring into the accumulator table.
	s.accumEpoch++
	s.touched = s.touched[:0]
	for _, term := range terms {
		if term >= uint32(e.cfg.Corpus.VocabSize) {
			continue
		}
		off, df, _ := e.dictEntry(s.thread, term)
		if df == 0 {
			continue
		}
		n := int(df)
		addr := e.postingsBase + off
		doc := uint32(0)
		if n > e.cfg.MaxPostingsPerTerm {
			// Long list: enter at a query-dependent skip block so bounded
			// scans cover the whole document space.
			numBlocks := (n + SkipInterval - 1) / SkipInterval
			block := SkipBlockFor(tag, term, numBlocks)
			byteOff, restart := e.skipEntry(s.thread, term, block)
			addr += byteOff
			doc = restart
			remaining := n - block*SkipInterval
			n = e.cfg.MaxPostingsPerTerm
			if n > remaining {
				n = remaining
			}
		}
		idf := e.idf(df)
		for i := 0; i < n; i++ {
			delta, k := e.shard.ReadUvarint(s.thread, addr)
			addr += uint64(k)
			tf, k2 := e.shard.ReadUvarint(s.thread, addr)
			addr += uint64(k2)
			doc += uint32(delta)
			dl := e.docLen(s.thread, doc)
			contrib := e.bm25(idf, uint32(tf), dl) * e.staticBoost(s.thread, doc)
			if !s.accumAdd(doc, contrib) {
				s.AccumDrops++
			}
			s.PostingsDecoded++
			if i&15 == 15 {
				s.code(fnDecode, 16*e.cfg.InstrsPerPosting)
			}
		}
		s.code(fnDecode, (n%16)*e.cfg.InstrsPerPosting)
	}

	// Candidate selection over touched accumulator slots.
	s.topk.Reset()
	for i, slot := range s.touched {
		doc, score := s.accumRead(slot)
		s.topk.Push(doc, score)
		s.CandidatesScored++
		if i&31 == 31 {
			s.code(fnSelect, 32*4)
		}
	}
	docs, scores := s.topk.Results()

	// Final scoring: ranking features, then snippets from the shard.
	for i, doc := range docs {
		scores[i] += e.featureBoost(s.thread, doc)
		s.code(fnSelect, e.cfg.InstrsPerScore)
	}
	sortByScore(docs, scores)
	for _, doc := range docs {
		s.snippet(doc)
	}

	if !s.SkipCache {
		e.cacheInsert(s.thread, tag, docs)
	}
	// Result assembly / response serialization: wide service code again.
	s.code(-1, e.cfg.InstrsPerQuery/2)
	return Result{Docs: docs, Scores: scores}
}

// sortByScore reorders the (docs, scores) pairs best-first after the
// feature boost (insertion sort: k is small).
func sortByScore(docs []uint32, scores []float32) {
	for i := 1; i < len(docs); i++ {
		d, sc := docs[i], scores[i]
		j := i - 1
		for j >= 0 && (scores[j] < sc || (scores[j] == sc && docs[j] > d)) {
			docs[j+1], scores[j+1] = docs[j], scores[j]
			j--
		}
		docs[j+1], scores[j+1] = d, sc
	}
}

// snippet scans the leading content terms of a result document, emitting
// shard reads (and the snippet loop's code cost).
func (s *Session) snippet(doc uint32) {
	e := s.eng
	off, nBytes := e.contentRef(s.thread, doc)
	addr := e.contentBase + off
	end := addr + uint64(nBytes)
	for i := 0; i < e.cfg.SnippetTerms && addr < end; i++ {
		_, k := e.shard.ReadUvarint(s.thread, addr)
		addr += uint64(k)
	}
	s.code(fnSnippet, e.cfg.SnippetTerms*e.cfg.InstrsPerSnippetTerm)
}

// --- accumulator table (epoch-tagged open addressing in the heap) ---

// accumAdd folds delta into doc's accumulator, claiming a slot on first
// touch. It returns false when probing exhausts (the posting is dropped,
// which production early-termination also does under pressure).
func (s *Session) accumAdd(doc uint32, delta float32) bool {
	e := s.eng
	mask := uint32(e.cfg.AccumSlots - 1)
	slot := (doc * 2654435761) & mask
	const maxProbe = 64
	for p := 0; p < maxProbe; p++ {
		addr := s.accumBase + uint64(slot)*accumSlot
		word := e.heap.ReadU64(s.thread, addr) // docID | epoch
		slotDoc := uint32(word)
		slotEpoch := uint32(word >> 32)
		if slotEpoch != s.accumEpoch {
			// Free (stale) slot: claim it.
			e.heap.WriteU64(s.thread, addr, uint64(doc)|uint64(s.accumEpoch)<<32)
			e.heap.WriteU32(s.thread, addr+8, math.Float32bits(delta))
			s.touched = append(s.touched, slot)
			return true
		}
		if slotDoc == doc {
			old := math.Float32frombits(e.heap.ReadU32(s.thread, addr+8))
			e.heap.WriteU32(s.thread, addr+8, math.Float32bits(old+delta))
			return true
		}
		slot = (slot + 1) & mask
	}
	return false
}

// accumRead returns the (doc, score) stored in a touched slot.
func (s *Session) accumRead(slot uint32) (uint32, float32) {
	addr := s.accumBase + uint64(slot)*accumSlot
	word := s.eng.heap.ReadU64(s.thread, addr)
	score := math.Float32frombits(s.eng.heap.ReadU32(s.thread, addr+8))
	return uint32(word), score
}

// --- query cache (direct-mapped, in the heap) ---

// cacheProbe looks the tag up, returning the cached result ids on a hit.
func (e *Engine) cacheProbe(tid uint8, tag uint64) ([]uint32, bool) {
	if e.cfg.QueryCacheSlots == 0 {
		return nil, false
	}
	slotBytes := uint64(e.cacheSlotBytes())
	addr := e.cacheBase + (tag%uint64(e.cfg.QueryCacheSlots))*slotBytes
	if e.heap.ReadU64(tid, addr) != tag {
		return nil, false
	}
	count := e.heap.ReadU32(tid, addr+8)
	if count > uint32(e.cfg.TopK) {
		return nil, false
	}
	docs := make([]uint32, count)
	for i := range docs {
		docs[i] = e.heap.ReadU32(tid, addr+12+uint64(i)*4)
	}
	return docs, true
}

// cacheInsert stores a result, overwriting whatever occupied the slot.
func (e *Engine) cacheInsert(tid uint8, tag uint64, docs []uint32) {
	if e.cfg.QueryCacheSlots == 0 {
		return
	}
	slotBytes := uint64(e.cacheSlotBytes())
	addr := e.cacheBase + (tag%uint64(e.cfg.QueryCacheSlots))*slotBytes
	e.heap.WriteU64(tid, addr, tag)
	e.heap.WriteU32(tid, addr+8, uint32(len(docs)))
	for i, d := range docs {
		e.heap.WriteU32(tid, addr+12+uint64(i)*4, d)
	}
}

// TouchStack emits one stack-frame access pattern for sessions without a
// code walker (walkers emit their own stack traffic).
func (s *Session) TouchStack(stack *memsim.Arena) {
	stack.Touch(s.thread, stack.Base(), 64, trace.Write)
}
