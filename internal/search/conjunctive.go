package search

// Conjunctive (AND) evaluation: document-at-a-time intersection of posting
// lists, the second workhorse query mode of production engines next to the
// term-at-a-time disjunction in Execute. The rarest term drives; candidate
// documents are verified against every other list with forward-only scans.
// Memory behaviour: mostly sequential shard reads over the driving list
// with skippy forward reads over the others — a harsher shard pattern and a
// lighter accumulator load than Execute.

// postingCursor walks one serialized posting list through the instrumented
// shard.
type postingCursor struct {
	eng    *Engine
	tid    uint8
	addr   uint64
	end    uint64
	doc    uint32
	tf     uint32
	df     uint32
	idf    float64
	opened bool
}

// openCursor positions a cursor at the start of term's posting list,
// returning false for absent terms.
func (e *Engine) openCursor(tid uint8, term uint32) (postingCursor, bool) {
	if term >= uint32(e.cfg.Corpus.VocabSize) {
		return postingCursor{}, false
	}
	off, df, nBytes := e.dictEntry(tid, term)
	if df == 0 {
		return postingCursor{}, false
	}
	return postingCursor{
		eng:  e,
		tid:  tid,
		addr: e.postingsBase + off,
		end:  e.postingsBase + off + uint64(nBytes),
		df:   df,
		idf:  e.idf(df),
	}, true
}

// next advances to the following posting; false at end of list.
func (c *postingCursor) next() bool {
	if c.addr >= c.end {
		return false
	}
	delta, n := c.eng.shard.ReadUvarint(c.tid, c.addr)
	c.addr += uint64(n)
	tf, n2 := c.eng.shard.ReadUvarint(c.tid, c.addr)
	c.addr += uint64(n2)
	if c.opened {
		c.doc += uint32(delta)
	} else {
		c.doc = uint32(delta)
		c.opened = true
	}
	c.tf = uint32(tf)
	return true
}

// advanceTo moves forward until doc >= target; false at end of list.
func (c *postingCursor) advanceTo(target uint32) bool {
	for !c.opened || c.doc < target {
		if !c.next() {
			return false
		}
	}
	return true
}

// ExecuteConjunctive evaluates terms as an AND query: only documents
// containing every term are scored. Results rank by summed BM25 (with the
// static-rank factor) plus the feature boost, exactly as Execute's final
// stage. The query cache is not consulted (conjunctive and disjunctive
// results must not alias under the same tag).
func (s *Session) ExecuteConjunctive(terms []uint32) Result {
	s.Queries++
	e := s.eng
	s.code(-1, e.cfg.InstrsPerQuery/2)

	// Open all cursors; an absent term makes the intersection empty.
	cursors := make([]postingCursor, 0, len(terms))
	for _, t := range terms {
		cur, ok := e.openCursor(s.thread, t)
		if !ok {
			s.code(-1, e.cfg.InstrsPerQuery/2)
			return Result{}
		}
		cursors = append(cursors, cur)
	}
	if len(cursors) == 0 {
		s.code(-1, e.cfg.InstrsPerQuery/2)
		return Result{}
	}
	// Drive with the rarest term (fewest postings).
	lead := 0
	for i := range cursors {
		if cursors[i].df < cursors[lead].df {
			lead = i
		}
	}
	cursors[0], cursors[lead] = cursors[lead], cursors[0]

	s.topk.Reset()
	scanned := 0
	exhausted := false
	for !exhausted && scanned < e.cfg.MaxPostingsPerTerm && cursors[0].next() {
		candidate := cursors[0].doc
		match := true
		for i := 1; i < len(cursors); i++ {
			if !cursors[i].advanceTo(candidate) {
				// A verification list ran out: no future candidate can
				// contain its term, so the intersection is complete.
				match = false
				exhausted = true
				break
			}
			if cursors[i].doc != candidate {
				match = false
				break
			}
		}
		scanned++
		if scanned&15 == 15 {
			s.code(fnDecode, 16*e.cfg.InstrsPerPosting)
		}
		if !match {
			continue
		}
		// Score the match: all terms contribute.
		dl := e.docLen(s.thread, candidate)
		boost := e.staticBoost(s.thread, candidate)
		var score float32
		for i := range cursors {
			score += e.bm25(cursors[i].idf, cursors[i].tf, dl) * boost
		}
		s.topk.Push(candidate, score)
		s.CandidatesScored++
	}
	docs, scores := s.topk.Results()
	for i, doc := range docs {
		scores[i] += e.featureBoost(s.thread, doc)
		s.code(fnSelect, e.cfg.InstrsPerScore)
	}
	sortByScore(docs, scores)
	for _, doc := range docs {
		s.snippet(doc)
	}
	s.code(-1, e.cfg.InstrsPerQuery/2)
	return Result{Docs: docs, Scores: scores}
}
