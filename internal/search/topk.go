package search

// TopK maintains the k highest-scoring (doc, score) pairs seen, with
// deterministic tie-breaking (lower document id wins a score tie). It is a
// bounded binary min-heap: the root is the weakest kept result.
type TopK struct {
	k      int
	docs   []uint32
	scores []float32
}

// NewTopK returns an empty selector for k results.
func NewTopK(k int) *TopK {
	if k <= 0 {
		panic("search: TopK requires k > 0")
	}
	return &TopK{k: k}
}

// Reset empties the selector for reuse.
func (t *TopK) Reset() {
	t.docs = t.docs[:0]
	t.scores = t.scores[:0]
}

// Len returns the number of results currently held.
func (t *TopK) Len() int { return len(t.docs) }

// worse reports whether entry i ranks below entry j (lower score, or equal
// score with higher doc id).
func (t *TopK) worse(i, j int) bool {
	if t.scores[i] != t.scores[j] {
		return t.scores[i] < t.scores[j]
	}
	return t.docs[i] > t.docs[j]
}

// Push offers one candidate.
func (t *TopK) Push(doc uint32, score float32) {
	if len(t.docs) < t.k {
		t.docs = append(t.docs, doc)
		t.scores = append(t.scores, score)
		t.up(len(t.docs) - 1)
		return
	}
	// Saturated: compare against the root (the current weakest) directly —
	// no append past k, no truncation, no allocation on the hot path.
	if score < t.scores[0] || (score == t.scores[0] && doc >= t.docs[0]) {
		return
	}
	t.docs[0], t.scores[0] = doc, score
	t.down(0)
}

func (t *TopK) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !t.worse(i, p) {
			break
		}
		t.swap(i, p)
		i = p
	}
}

func (t *TopK) down(i int) {
	n := len(t.docs)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && t.worse(l, min) {
			min = l
		}
		if r < n && t.worse(r, min) {
			min = r
		}
		if min == i {
			return
		}
		t.swap(i, min)
		i = min
	}
}

func (t *TopK) swap(i, j int) {
	t.docs[i], t.docs[j] = t.docs[j], t.docs[i]
	t.scores[i], t.scores[j] = t.scores[j], t.scores[i]
}

// Results returns the kept results ordered best-first, emptying the
// selector.
func (t *TopK) Results() (docs []uint32, scores []float32) {
	n := len(t.docs)
	docs = make([]uint32, n)
	scores = make([]float32, n)
	t.drainInto(docs, scores)
	return docs, scores
}

// ResultsInto drains the kept results best-first into the caller's buffers
// (whose lengths must be at least Len) and returns the result count. It is
// the zero-allocation counterpart of Results, used by the serving tier's
// pooled merge path. The ordering is identical to Results.
func (t *TopK) ResultsInto(docs []uint32, scores []float32) int {
	n := len(t.docs)
	if len(docs) < n || len(scores) < n {
		panic("search: ResultsInto buffers smaller than Len")
	}
	t.drainInto(docs, scores)
	return n
}

func (t *TopK) drainInto(docs []uint32, scores []float32) {
	for i := len(t.docs) - 1; i >= 0; i-- {
		docs[i], scores[i] = t.docs[0], t.scores[0]
		last := len(t.docs) - 1
		t.swap(0, last)
		t.docs = t.docs[:last]
		t.scores = t.scores[:last]
		t.down(0)
	}
}
