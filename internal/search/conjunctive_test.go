package search

import (
	"sort"
	"testing"

	"searchmem/internal/stats"
	"searchmem/internal/trace"
)

// oracleConjunctive recomputes the AND result independently from the corpus.
func oracleConjunctive(e *Engine, c *Corpus, terms []uint32) []uint32 {
	type cand struct {
		doc   uint32
		score float32
	}
	// Per-term document frequencies and tfs.
	tf := make([]map[uint32]uint32, len(terms))
	df := make([]uint32, len(terms))
	for i, term := range terms {
		tf[i] = map[uint32]uint32{}
		for d, doc := range c.Docs {
			count := uint32(0)
			for _, w := range doc {
				if w == term {
					count++
				}
			}
			if count > 0 {
				tf[i][uint32(d)] = count
				df[i]++
			}
		}
		if df[i] == 0 {
			return nil
		}
	}
	// Mirror the engine: the rarest term drives (ties: first), and only
	// its first MaxPostingsPerTerm postings (in doc order) are candidates.
	lead := 0
	for i := range terms {
		if df[i] < df[lead] {
			lead = i
		}
	}
	leadDocs := make([]uint32, 0, len(tf[lead]))
	for d := range tf[lead] {
		leadDocs = append(leadDocs, d)
	}
	sort.Slice(leadDocs, func(i, j int) bool { return leadDocs[i] < leadDocs[j] })
	if len(leadDocs) > e.Config().MaxPostingsPerTerm {
		leadDocs = leadDocs[:e.Config().MaxPostingsPerTerm]
	}
	var cands []cand
	for _, doc := range leadDocs {
		inAll := true
		for i := range terms {
			if _, ok := tf[i][doc]; !ok {
				inAll = false
				break
			}
		}
		if !inAll {
			continue
		}
		dl := QuantizedDocLen(len(c.Docs[doc]))
		boost := 1 + float32(e.StaticWord(doc)%64)/256
		var score float32
		for i := range terms {
			score += e.bm25(e.idf(df[i]), tf[i][doc], dl) * boost
		}
		cands = append(cands, cand{doc, score})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].doc < cands[j].doc
	})
	if len(cands) > e.Config().TopK {
		cands = cands[:e.Config().TopK]
	}
	for i := range cands {
		cands[i].score += float32(e.FeatureWord(cands[i].doc)%1024) / 4096
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].doc < cands[j].doc
	})
	out := make([]uint32, len(cands))
	for i, cd := range cands {
		out[i] = cd.doc
	}
	return out
}

func TestConjunctiveMatchesOracle(t *testing.T) {
	eng, corpus := buildTestEngine(t, nil)
	sess := eng.NewSession(0, nil)
	rng := stats.NewRNG(33)
	checked := 0
	for q := 0; q < 40 && checked < 12; q++ {
		// Popular terms so intersections are non-empty often.
		terms := []uint32{uint32(rng.Intn(40)), uint32(rng.Intn(40))}
		if terms[0] == terms[1] {
			continue
		}
		got := sess.ExecuteConjunctive(terms)
		want := oracleConjunctive(eng, corpus, terms)
		if len(want) > 0 {
			checked++
		}
		if len(got.Docs) != len(want) {
			t.Fatalf("query %v: got %d docs, want %d", terms, len(got.Docs), len(want))
		}
		for i := range want {
			if got.Docs[i] != want[i] {
				t.Fatalf("query %v rank %d: got %d, want %d", terms, i, got.Docs[i], want[i])
			}
		}
	}
	if checked < 5 {
		t.Fatalf("only %d non-empty intersections exercised", checked)
	}
}

func TestConjunctiveSubsetOfDisjunctive(t *testing.T) {
	eng, corpus := buildTestEngine(t, nil)
	sess := eng.NewSession(0, nil)
	terms := []uint32{3, 9}
	and := sess.ExecuteConjunctive(terms)
	// Every AND result must contain every term.
	for _, doc := range and.Docs {
		for _, term := range terms {
			found := false
			for _, w := range corpus.Docs[doc] {
				if w == term {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("doc %d in AND result lacks term %d", doc, term)
			}
		}
	}
}

func TestConjunctiveAbsentTerm(t *testing.T) {
	eng, _ := buildTestEngine(t, nil)
	sess := eng.NewSession(0, nil)
	if r := sess.ExecuteConjunctive([]uint32{1, 1 << 30}); len(r.Docs) != 0 {
		t.Fatal("out-of-vocab conjunct returned results")
	}
	if r := sess.ExecuteConjunctive(nil); len(r.Docs) != 0 {
		t.Fatal("empty conjunction returned results")
	}
}

func TestConjunctiveEmitsShardTraffic(t *testing.T) {
	eng, _ := buildTestEngine(t, nil)
	var shard int
	eng.Space().SetRecorder(func(a trace.Access) {
		if a.Seg == trace.Shard {
			shard++
		}
	})
	sess := eng.NewSession(0, nil)
	sess.ExecuteConjunctive([]uint32{1, 2})
	if shard == 0 {
		t.Fatal("conjunctive evaluation emitted no shard accesses")
	}
}

func TestConjunctiveThreeTerms(t *testing.T) {
	eng, corpus := buildTestEngine(t, nil)
	sess := eng.NewSession(0, nil)
	rng := stats.NewRNG(55)
	checked := 0
	for q := 0; q < 60 && checked < 6; q++ {
		terms := []uint32{uint32(rng.Intn(25)), uint32(rng.Intn(25)), uint32(rng.Intn(25))}
		if terms[0] == terms[1] || terms[1] == terms[2] || terms[0] == terms[2] {
			continue
		}
		got := sess.ExecuteConjunctive(terms)
		want := oracleConjunctive(eng, corpus, terms)
		if len(want) > 0 {
			checked++
		}
		if len(got.Docs) != len(want) {
			t.Fatalf("query %v: got %d docs, want %d", terms, len(got.Docs), len(want))
		}
		for i := range want {
			if got.Docs[i] != want[i] {
				t.Fatalf("query %v rank %d: got %d, want %d", terms, i, got.Docs[i], want[i])
			}
		}
	}
	if checked < 3 {
		t.Skipf("only %d non-empty 3-way intersections found", checked)
	}
}
