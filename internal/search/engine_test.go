package search

import (
	"sort"
	"testing"

	"searchmem/internal/memsim"
	"searchmem/internal/stats"
	"searchmem/internal/trace"
)

// testEngineConfig returns a small engine for fast tests.
func testEngineConfig() Config {
	cfg := DefaultConfig()
	cfg.Corpus = CorpusConfig{
		NumDocs:      2000,
		VocabSize:    3000,
		AvgDocLen:    40,
		TermZipfSkew: 1.0,
		Seed:         0x7e57,
	}
	cfg.MaxPostingsPerTerm = 512
	cfg.AccumSlots = 1 << 13
	return cfg
}

func buildTestEngine(t *testing.T, rec memsim.Recorder) (*Engine, *Corpus) {
	t.Helper()
	space := memsim.NewSpace(rec)
	return Build(testEngineConfig(), space, nil)
}

// oracleSearch recomputes the expected result independently from the corpus.
func oracleSearch(e *Engine, c *Corpus, terms []uint32) []uint32 {
	type hit struct {
		doc uint32
		tf  uint32
	}
	scores := map[uint32]float32{}
	for _, term := range terms {
		var list []hit
		for d, doc := range c.Docs {
			tf := uint32(0)
			for _, w := range doc {
				if w == term {
					tf++
				}
			}
			if tf > 0 {
				list = append(list, hit{uint32(d), tf})
			}
		}
		df := uint32(len(list))
		if df == 0 {
			continue
		}
		if len(list) > e.Config().MaxPostingsPerTerm {
			numBlocks := (len(list) + SkipInterval - 1) / SkipInterval
			block := SkipBlockFor(hashTerms(terms), term, numBlocks)
			start := block * SkipInterval
			end := start + e.Config().MaxPostingsPerTerm
			if end > len(list) {
				end = len(list)
			}
			list = list[start:end]
		}
		idf := e.idf(df)
		for _, h := range list {
			boost := 1 + float32(e.StaticWord(h.doc)%64)/256
			scores[h.doc] += e.bm25(idf, h.tf, QuantizedDocLen(len(c.Docs[h.doc]))) * boost
		}
	}
	type cand struct {
		doc   uint32
		score float32
	}
	var cands []cand
	for d, s := range scores {
		cands = append(cands, cand{d, s})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].doc < cands[j].doc
	})
	if len(cands) > e.Config().TopK {
		cands = cands[:e.Config().TopK]
	}
	// Feature boost and re-rank, as the engine does for its final stage.
	for i := range cands {
		cands[i].score += float32(e.FeatureWord(cands[i].doc)%1024) / 4096
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].doc < cands[j].doc
	})
	out := make([]uint32, len(cands))
	for i, cd := range cands {
		out[i] = cd.doc
	}
	return out
}

func TestExecuteMatchesOracle(t *testing.T) {
	eng, corpus := buildTestEngine(t, nil)
	sess := eng.NewSession(0, nil)
	sess.SkipCache = true
	rng := stats.NewRNG(21)
	for q := 0; q < 25; q++ {
		nTerms := 1 + rng.Intn(3)
		terms := make([]uint32, nTerms)
		for i := range terms {
			terms[i] = uint32(rng.Intn(eng.Config().Corpus.VocabSize))
		}
		got := sess.Execute(terms)
		want := oracleSearch(eng, corpus, terms)
		if len(got.Docs) != len(want) {
			t.Fatalf("query %v: got %d docs, want %d\ngot:  %v\nwant: %v",
				terms, len(got.Docs), len(want), got.Docs, want)
		}
		for i := range want {
			if got.Docs[i] != want[i] {
				t.Fatalf("query %v: rank %d: got doc %d, want %d\ngot:  %v\nwant: %v",
					terms, i, got.Docs[i], want[i], got.Docs, want)
			}
		}
	}
	if sess.AccumDrops != 0 {
		t.Fatalf("accumulator dropped %d postings in a sized test", sess.AccumDrops)
	}
}

func TestQueryCacheHit(t *testing.T) {
	eng, _ := buildTestEngine(t, nil)
	sess := eng.NewSession(0, nil)
	terms := []uint32{5, 17}
	first := sess.Execute(terms)
	second := sess.Execute(terms)
	if first.FromCache {
		t.Fatal("first execution hit an empty cache")
	}
	if !second.FromCache {
		t.Fatal("identical query missed the cache")
	}
	if len(second.Docs) != len(first.Docs) {
		t.Fatalf("cached result length %d != %d", len(second.Docs), len(first.Docs))
	}
	for i := range first.Docs {
		if second.Docs[i] != first.Docs[i] {
			t.Fatal("cached result differs")
		}
	}
	if sess.CacheHits != 1 {
		t.Fatalf("cache hits = %d", sess.CacheHits)
	}
}

func TestCacheDisabled(t *testing.T) {
	cfg := testEngineConfig()
	cfg.QueryCacheSlots = 0
	space := memsim.NewSpace(nil)
	eng, _ := Build(cfg, space, nil)
	sess := eng.NewSession(0, nil)
	terms := []uint32{5, 17}
	sess.Execute(terms)
	r := sess.Execute(terms)
	if r.FromCache {
		t.Fatal("disabled cache produced a hit")
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []uint32 {
		eng, _ := buildTestEngine(t, nil)
		sess := eng.NewSession(0, nil)
		r := sess.Execute([]uint32{3, 9, 40})
		return r.Docs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic result size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic results")
		}
	}
}

func TestTraceEmission(t *testing.T) {
	var bySeg [trace.NumSegments]int
	var kinds [trace.NumKinds]int
	eng, _ := buildTestEngine(t, nil)
	var accs []trace.Access
	eng.Space().SetRecorder(func(a trace.Access) {
		bySeg[a.Seg]++
		kinds[a.Kind]++
		accs = append(accs, a)
	})
	sess := eng.NewSession(2, nil)
	sess.Execute([]uint32{1, 2})
	if bySeg[trace.Shard] == 0 {
		t.Fatal("no shard accesses")
	}
	if bySeg[trace.Heap] == 0 {
		t.Fatal("no heap accesses")
	}
	if kinds[trace.Read] == 0 || kinds[trace.Write] == 0 {
		t.Fatal("missing read or write accesses")
	}
	for _, a := range accs {
		if a.Thread != 2 {
			t.Fatalf("access from wrong thread: %+v", a)
		}
	}
}

func TestPostingScanIsSequential(t *testing.T) {
	// Within one term's scan, shard posting reads move strictly forward —
	// the spatial locality the paper attributes to shard accesses.
	eng, _ := buildTestEngine(t, nil)
	var shardReads []uint64
	eng.Space().SetRecorder(func(a trace.Access) {
		if a.Seg == trace.Shard {
			shardReads = append(shardReads, a.Addr)
		}
	})
	sess := eng.NewSession(0, nil)
	sess.SkipCache = true
	sess.Execute([]uint32{1}) // single popular term: one scan + snippets
	if len(shardReads) < 10 {
		t.Fatalf("only %d shard reads", len(shardReads))
	}
	// The scan phase (before snippets) must be monotonically increasing;
	// count order violations across the whole stream and require them to
	// be limited to snippet jumps (top-k of them at most, plus 1).
	violations := 0
	for i := 1; i < len(shardReads); i++ {
		if shardReads[i] < shardReads[i-1] {
			violations++
		}
	}
	if violations > eng.Config().TopK+1 {
		t.Fatalf("%d order violations in shard stream", violations)
	}
}

func TestSessionLimit(t *testing.T) {
	cfg := testEngineConfig()
	cfg.MaxSessions = 2
	space := memsim.NewSpace(nil)
	eng, _ := Build(cfg, space, nil)
	eng.NewSession(0, nil)
	eng.NewSession(1, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("session limit not enforced")
		}
	}()
	eng.NewSession(2, nil)
}

func TestStatsAccounting(t *testing.T) {
	eng, _ := buildTestEngine(t, nil)
	sess := eng.NewSession(0, nil)
	sess.SkipCache = true
	sess.Execute([]uint32{1, 2, 3})
	if sess.Queries != 1 {
		t.Fatalf("queries = %d", sess.Queries)
	}
	if sess.PostingsDecoded == 0 || sess.CandidatesScored == 0 {
		t.Fatalf("no work recorded: %+v", sess)
	}
	if sess.Instructions() == 0 {
		t.Fatal("no instructions modeled")
	}
}

func TestOutOfVocabTermIgnored(t *testing.T) {
	eng, _ := buildTestEngine(t, nil)
	sess := eng.NewSession(0, nil)
	sess.SkipCache = true
	r := sess.Execute([]uint32{1 << 30})
	if len(r.Docs) != 0 {
		t.Fatalf("out-of-vocab query returned %d docs", len(r.Docs))
	}
}

func TestFootprintsPopulated(t *testing.T) {
	eng, corpus := buildTestEngine(t, nil)
	space := eng.Space()
	if space.FootprintBytes(trace.Shard) == 0 {
		t.Fatal("no shard footprint")
	}
	if space.FootprintBytes(trace.Heap) == 0 {
		t.Fatal("no heap footprint")
	}
	if eng.ShardBytes() <= 0 || eng.HeapBytes() <= 0 {
		t.Fatal("arena sizes unset")
	}
	// The serialized shard must hold at least ~1 byte per corpus term
	// (postings + content).
	if int64(eng.ShardBytes()) < corpus.TotalTerms {
		t.Fatalf("shard %d bytes too small for %d corpus terms", eng.ShardBytes(), corpus.TotalTerms)
	}
}

func TestCorpusValidate(t *testing.T) {
	bad := []CorpusConfig{
		{},
		{NumDocs: 10, VocabSize: 10, AvgDocLen: 10, TermZipfSkew: 0},
		{NumDocs: 1 << 31, VocabSize: 10, AvgDocLen: 10, TermZipfSkew: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestConfigValidateEngine(t *testing.T) {
	bad := []func(Config) Config{
		func(c Config) Config { c.AccumSlots = 100; return c },
		func(c Config) Config { c.QueryCacheSlots = 3; return c },
		func(c Config) Config { c.TopK = 0; return c },
		func(c Config) Config { c.MaxSessions = 0; return c },
		func(c Config) Config { c.B = 2; return c },
		func(c Config) Config { c.SnippetTerms = -1; return c },
	}
	for i, mut := range bad {
		if err := mut(testEngineConfig()).Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := testEngineConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCorpusStats(t *testing.T) {
	c := GenerateCorpus(CorpusConfig{NumDocs: 500, VocabSize: 1000, AvgDocLen: 60, TermZipfSkew: 1, Seed: 9})
	if len(c.Docs) != 500 {
		t.Fatalf("doc count %d", len(c.Docs))
	}
	avg := c.AvgDocLen()
	if avg < 20 || avg > 200 {
		t.Fatalf("avg doc len %v implausible for target 60", avg)
	}
	if c.Config().NumDocs != 500 {
		t.Fatal("config not retained")
	}
}

func TestHashTermsNonZeroAndSensitive(t *testing.T) {
	if hashTerms([]uint32{}) == 0 || hashTerms([]uint32{0}) == 0 {
		t.Fatal("hash returned reserved 0")
	}
	if hashTerms([]uint32{1, 2}) == hashTerms([]uint32{2, 1}) {
		t.Fatal("hash insensitive to order")
	}
}

func TestSkipListEntry(t *testing.T) {
	// A corpus where one term's posting list far exceeds SkipInterval, so
	// bounded scans must enter via the skip table.
	cfg := DefaultConfig()
	cfg.Corpus = CorpusConfig{
		NumDocs:      SkipInterval*3 + 500,
		VocabSize:    1200,
		AvgDocLen:    18,
		TermZipfSkew: 1.2,
		Seed:         0x51a9,
	}
	cfg.MaxPostingsPerTerm = 256
	cfg.AccumSlots = 1 << 12
	space := memsim.NewSpace(nil)
	eng, corpus := Build(cfg, space, nil)

	// Find a term with df > SkipInterval (term 0 is the most popular).
	var longTerm uint32 = 0
	_, df, _ := eng.dictEntry(0, longTerm)
	if int(df) <= SkipInterval {
		t.Skipf("most popular term df=%d, need > %d", df, SkipInterval)
	}

	sess := eng.NewSession(0, nil)
	sess.SkipCache = true
	got := sess.Execute([]uint32{longTerm})
	want := oracleSearch(eng, corpus, []uint32{longTerm})
	if len(got.Docs) != len(want) {
		t.Fatalf("sizes differ: %d vs %d", len(got.Docs), len(want))
	}
	for i := range want {
		if got.Docs[i] != want[i] {
			t.Fatalf("rank %d: %d vs %d", i, got.Docs[i], want[i])
		}
	}
	// Different queries sharing the term should enter different blocks:
	// verify at least two distinct entry docs across query variations.
	entries := map[int]bool{}
	for q := uint32(0); q < 12; q++ {
		tag := hashTerms([]uint32{longTerm, 1000 + q})
		numBlocks := (int(df) + SkipInterval - 1) / SkipInterval
		entries[SkipBlockFor(tag, longTerm, numBlocks)] = true
	}
	if len(entries) < 2 {
		t.Fatalf("skip-block selection degenerate: %v", entries)
	}
}

func TestSkipBlockForBounds(t *testing.T) {
	for _, nb := range []int{1, 2, 7, 100} {
		for tag := uint64(0); tag < 50; tag++ {
			b := SkipBlockFor(tag, 7, nb)
			if b < 0 || b >= nb {
				t.Fatalf("block %d out of [0,%d)", b, nb)
			}
		}
	}
	if SkipBlockFor(99, 1, 0) != 0 || SkipBlockFor(99, 1, 1) != 0 {
		t.Fatal("degenerate block counts must return 0")
	}
}
