package search

import (
	"encoding/binary"
	"fmt"
	"math"

	"searchmem/internal/codegen"
	"searchmem/internal/memsim"
	"searchmem/internal/stats"
	"searchmem/internal/trace"
)

// Record sizes of the serialized structures.
const (
	dictRecBytes   = 24 // postings off u64 | docFreq u32 | bytes u32 | skip off u64
	metaRecBytes   = 16 // content offset u64 | content bytes u32 | doc length u32
	staticRecBytes = 16 // pagerank-class static signals, read per candidate
	skipRecBytes   = 16 // block byte offset u64 | restart doc u32 | pad u32
	accumSlot      = 12 // docID u32 | epoch u32 | score f32
	// SkipInterval is the posting count per skip block. Long posting
	// lists are entered at a query-dependent skip block rather than
	// always at the head, so bounded scans cover the whole document
	// space (as WAND-style skipping does in production rankers).
	SkipInterval = 4096
)

// Config describes a full search-engine instance.
type Config struct {
	// Corpus is the document collection to index.
	Corpus CorpusConfig
	// MaxPostingsPerTerm bounds how much of a posting list one query
	// scans (early termination, as production rankers do).
	MaxPostingsPerTerm int
	// TopK is the number of results returned per query.
	TopK int
	// FeatureBytes is the per-document ranking-feature blob size; blobs
	// live in the heap and are read for final scoring of top candidates.
	FeatureBytes int
	// AccumSlots is the per-session score-accumulator table size (a power
	// of two).
	AccumSlots int
	// MaxSessions bounds concurrent sessions (arena space for their
	// accumulators is reserved at build time).
	MaxSessions int
	// QueryCacheSlots sizes the in-heap query result cache (a power of
	// two; 0 disables caching).
	QueryCacheSlots int
	// SnippetTerms is how many content terms are scanned per result for
	// snippet extraction.
	SnippetTerms int
	// HotCodeFrac is the fraction of each phase's instructions spent in
	// that phase's pinned hot function; the rest walks the wide
	// (Zipf-popular) service code. It is the main calibration knob for
	// the paper's large instruction working set (L2 instruction MPKI ~12
	// despite hot inner loops).
	HotCodeFrac float64
	// K1 and B are the BM25 parameters.
	K1, B float64
	// Instruction-cost model: modeled instructions charged per unit of
	// work, used to drive the code walker and to form MPKI denominators.
	InstrsPerQuery       int
	InstrsPerPosting     int
	InstrsPerScore       int
	InstrsPerSnippetTerm int
}

// DefaultConfig returns a test-sized engine configuration.
func DefaultConfig() Config {
	return Config{
		Corpus:               DefaultCorpusConfig(),
		MaxPostingsPerTerm:   4096,
		TopK:                 10,
		FeatureBytes:         96,
		AccumSlots:           1 << 15,
		MaxSessions:          16,
		QueryCacheSlots:      1 << 12,
		SnippetTerms:         32,
		K1:                   1.2,
		B:                    0.75,
		HotCodeFrac:          0.20,
		InstrsPerQuery:       2400,
		InstrsPerPosting:     20,
		InstrsPerScore:       40,
		InstrsPerSnippetTerm: 8,
	}
}

// Validate reports whether the configuration is consistent.
func (c Config) Validate() error {
	if err := c.Corpus.Validate(); err != nil {
		return err
	}
	if c.MaxPostingsPerTerm <= 0 || c.TopK <= 0 || c.FeatureBytes <= 0 {
		return fmt.Errorf("search: limits must be positive")
	}
	if c.AccumSlots <= 0 || c.AccumSlots&(c.AccumSlots-1) != 0 {
		return fmt.Errorf("search: AccumSlots must be a positive power of two")
	}
	if c.QueryCacheSlots < 0 || (c.QueryCacheSlots > 0 && c.QueryCacheSlots&(c.QueryCacheSlots-1) != 0) {
		return fmt.Errorf("search: QueryCacheSlots must be zero or a power of two")
	}
	if c.MaxSessions <= 0 || c.MaxSessions > 256 {
		return fmt.Errorf("search: MaxSessions out of range")
	}
	if c.K1 <= 0 || c.B < 0 || c.B > 1 {
		return fmt.Errorf("search: BM25 parameters out of range")
	}
	if c.SnippetTerms < 0 {
		return fmt.Errorf("search: SnippetTerms must be non-negative")
	}
	if c.HotCodeFrac < 0 || c.HotCodeFrac > 1 {
		return fmt.Errorf("search: HotCodeFrac must be in [0,1]")
	}
	return nil
}

// Engine is a built, immutable (post-construction) search index bound to an
// instrumented address space. Query execution happens through Sessions.
type Engine struct {
	cfg   Config
	space *memsim.Space
	shard *memsim.Arena // posting lists + document content
	heap  *memsim.Arena // dictionary, doc metadata, features, query cache

	postingsBase uint64
	contentBase  uint64
	dictBase     uint64
	skipBase     uint64
	normsBase    uint64
	staticBase   uint64
	metaBase     uint64
	featBase     uint64
	cacheBase    uint64
	accumBase    uint64

	numDocs   uint32
	avgDocLen float64
	sessions  int

	prog *codegen.Program
}

// Build generates a corpus, indexes it, and serializes everything into
// arenas carved from space. prog may be nil to skip instruction-side
// modeling. It returns the engine and the generated corpus (kept only for
// verification; the serving path never touches it).
func Build(cfg Config, space *memsim.Space, prog *codegen.Program) (*Engine, *Corpus) {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	corpus := GenerateCorpus(cfg.Corpus)
	lists := buildPostings(corpus)

	// Serialize posting lists: per list, (docDelta, tf) uvarint pairs,
	// with a skip entry every SkipInterval postings recording the byte
	// offset and the restart document (the previous posting's doc, so
	// delta decoding can resume mid-list).
	var postings []byte
	var skips []byte
	dictRecs := make([]byte, cfg.Corpus.VocabSize*dictRecBytes)
	var tmp [2 * binary.MaxVarintLen64]byte
	var skipTmp [skipRecBytes]byte
	for t, list := range lists {
		off := uint64(len(postings))
		skipOff := uint64(len(skips))
		prev := uint32(0)
		for i, p := range list {
			if i%SkipInterval == 0 {
				binary.LittleEndian.PutUint64(skipTmp[:], uint64(len(postings))-off)
				binary.LittleEndian.PutUint32(skipTmp[8:], prev)
				binary.LittleEndian.PutUint32(skipTmp[12:], 0)
				skips = append(skips, skipTmp[:]...)
			}
			n := binary.PutUvarint(tmp[:], uint64(p.doc-prev))
			n += binary.PutUvarint(tmp[n:], uint64(p.tf))
			postings = append(postings, tmp[:n]...)
			prev = p.doc
		}
		rec := dictRecs[t*dictRecBytes:]
		binary.LittleEndian.PutUint64(rec, off)
		binary.LittleEndian.PutUint32(rec[8:], uint32(len(list)))
		binary.LittleEndian.PutUint32(rec[12:], uint32(uint64(len(postings))-off))
		binary.LittleEndian.PutUint64(rec[16:], skipOff)
	}

	// Serialize document content (term-id uvarints) and metadata.
	var content []byte
	metaRecs := make([]byte, cfg.Corpus.NumDocs*metaRecBytes)
	for d, doc := range corpus.Docs {
		off := uint64(len(content))
		for _, term := range doc {
			n := binary.PutUvarint(tmp[:], uint64(term))
			content = append(content, tmp[:n]...)
		}
		rec := metaRecs[d*metaRecBytes:]
		binary.LittleEndian.PutUint64(rec, off)
		binary.LittleEndian.PutUint32(rec[8:], uint32(uint64(len(content))-off))
		binary.LittleEndian.PutUint32(rec[12:], uint32(len(doc)))
	}

	// Lay out the shard arena: postings then content.
	shard := space.NewArena("shard", trace.Shard, len(postings)+len(content))
	e := &Engine{
		cfg:       cfg,
		space:     space,
		shard:     shard,
		numDocs:   uint32(cfg.Corpus.NumDocs),
		avgDocLen: corpus.AvgDocLen(),
		prog:      prog,
	}
	e.postingsBase = shard.Alloc(len(postings), 0)
	shard.WriteRaw(e.postingsBase, postings)
	e.contentBase = shard.Alloc(len(content), 0)
	shard.WriteRaw(e.contentBase, content)

	// Lay out the heap arena: dictionary, doc metadata, features, query
	// cache, then per-session accumulator tables.
	cacheBytes := 0
	if cfg.QueryCacheSlots > 0 {
		cacheBytes = cfg.QueryCacheSlots * e.cacheSlotBytes()
	}
	heapBytes := len(dictRecs) + len(skips) + len(metaRecs) + cfg.Corpus.NumDocs + cfg.Corpus.NumDocs*staticRecBytes +
		cfg.Corpus.NumDocs*cfg.FeatureBytes + cacheBytes +
		cfg.MaxSessions*cfg.AccumSlots*accumSlot + 64*cfg.MaxSessions
	heap := space.NewArena("heap", trace.Heap, heapBytes)
	e.heap = heap

	e.dictBase = heap.Alloc(len(dictRecs), 8)
	heap.WriteRaw(e.dictBase, dictRecs)
	e.skipBase = heap.Alloc(len(skips), 8)
	heap.WriteRaw(e.skipBase, skips)

	// Quantized document-length norms: one byte per document, read on
	// every posting scored (so it must stay cache-resident, as real
	// engines arrange). dl is reconstructed as norm << 2.
	norms := make([]byte, cfg.Corpus.NumDocs)
	for d, doc := range corpus.Docs {
		n := (len(doc) + 2) >> 2
		if n > 255 {
			n = 255
		}
		norms[d] = byte(n)
	}
	e.normsBase = heap.Alloc(len(norms), 8)
	heap.WriteRaw(e.normsBase, norms)

	// Static document-rank records (pagerank-class signals): read for
	// every posting scored. This table is the bulk of the hot shared heap
	// working set whose reuse the paper finds is only capturable by
	// GiB-scale caches (§III-B).
	srng := stats.NewRNG(cfg.Corpus.Seed ^ 0x57a71c)
	statics := make([]byte, cfg.Corpus.NumDocs*staticRecBytes)
	for d := 0; d < cfg.Corpus.NumDocs; d++ {
		binary.LittleEndian.PutUint64(statics[d*staticRecBytes:], srng.Uint64())
		binary.LittleEndian.PutUint64(statics[d*staticRecBytes+8:], srng.Uint64())
	}
	e.staticBase = heap.Alloc(len(statics), 8)
	heap.WriteRaw(e.staticBase, statics)

	e.metaBase = heap.Alloc(len(metaRecs), 8)
	heap.WriteRaw(e.metaBase, metaRecs)

	// Ranking features: deterministic pseudo-random blobs.
	featBytes := cfg.Corpus.NumDocs * cfg.FeatureBytes
	e.featBase = heap.Alloc(featBytes, 8)
	frng := stats.NewRNG(cfg.Corpus.Seed ^ 0xfea7)
	blob := make([]byte, cfg.FeatureBytes)
	for d := 0; d < cfg.Corpus.NumDocs; d++ {
		for i := 0; i < len(blob); i += 8 {
			binary.LittleEndian.PutUint64(blob[i:], frng.Uint64())
		}
		heap.WriteRaw(e.featBase+uint64(d*cfg.FeatureBytes), blob)
	}

	if cacheBytes > 0 {
		e.cacheBase = heap.Alloc(cacheBytes, 8)
	}
	e.accumBase = heap.Alloc(cfg.MaxSessions*cfg.AccumSlots*accumSlot, 64)
	return e, corpus
}

// cacheSlotBytes returns the query-cache slot size: tag u64 | count u32 |
// TopK result ids, rounded up to 8.
func (e *Engine) cacheSlotBytes() int {
	n := 8 + 4 + 4*e.cfg.TopK
	return (n + 7) &^ 7
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// NumDocs returns the number of indexed documents.
func (e *Engine) NumDocs() int { return int(e.numDocs) }

// Space returns the engine's address space.
func (e *Engine) Space() *memsim.Space { return e.space }

// ShardBytes returns the serialized shard size.
func (e *Engine) ShardBytes() int { return e.shard.Size() }

// HeapBytes returns the heap arena size.
func (e *Engine) HeapBytes() int { return e.heap.Size() }

// dictEntry reads one term's dictionary record through the instrumented
// heap (two 8-byte reads, as a real lookup would issue; the skip-table
// offset rides in the third word, read only for long lists).
func (e *Engine) dictEntry(tid uint8, term uint32) (off uint64, docFreq, nBytes uint32) {
	addr := e.dictBase + uint64(term)*dictRecBytes
	off = e.heap.ReadU64(tid, addr)
	word := e.heap.ReadU64(tid, addr+8)
	return off, uint32(word), uint32(word >> 32)
}

// skipEntry reads skip block b of a term whose dictionary record sits at
// skipOff, returning the posting-byte offset and the restart document.
func (e *Engine) skipEntry(tid uint8, term uint32, block int) (byteOff uint64, restartDoc uint32) {
	dictAddr := e.dictBase + uint64(term)*dictRecBytes
	skipOff := e.heap.ReadU64(tid, dictAddr+16)
	addr := e.skipBase + skipOff + uint64(block)*skipRecBytes
	byteOff = e.heap.ReadU64(tid, addr)
	restartDoc = e.heap.ReadU32(tid, addr+8)
	return byteOff, restartDoc
}

// SkipBlockFor deterministically selects which skip block a query scans for
// a long posting list: a hash of the query tag and term, so results are
// reproducible and verification oracles can mirror the choice.
func SkipBlockFor(queryTag uint64, term uint32, numBlocks int) int {
	if numBlocks <= 1 {
		return 0
	}
	h := queryTag ^ (uint64(term)+0x9e3779b97f4a7c15)*0xbf58476d1ce4e5b9
	h ^= h >> 29
	h *= 0x94d049bb133111eb
	h ^= h >> 32
	return int(h % uint64(numBlocks))
}

// docLen reads one document's quantized length from the norms array (the
// hot per-posting scoring path).
func (e *Engine) docLen(tid uint8, doc uint32) uint32 {
	return uint32(e.heap.ReadU8(tid, e.normsBase+uint64(doc))) << 2
}

// QuantizedDocLen returns the engine's quantized length for a raw document
// length (exposed so verification oracles can mirror the scoring math).
func QuantizedDocLen(rawLen int) uint32 {
	n := (rawLen + 2) >> 2
	if n > 255 {
		n = 255
	}
	return uint32(n) << 2
}

// contentRef reads one document's content location.
func (e *Engine) contentRef(tid uint8, doc uint32) (off uint64, nBytes uint32) {
	addr := e.metaBase + uint64(doc)*metaRecBytes
	off = e.heap.ReadU64(tid, addr)
	nBytes = e.heap.ReadU32(tid, addr+8)
	return off, nBytes
}

// idf returns the BM25 inverse document frequency for a document frequency.
func (e *Engine) idf(docFreq uint32) float64 {
	n := float64(e.numDocs)
	df := float64(docFreq)
	return math.Log(1 + (n-df+0.5)/(df+0.5))
}

// bm25 returns one term's BM25 contribution for a document.
func (e *Engine) bm25(idf float64, tf, dl uint32) float32 {
	k1, b := e.cfg.K1, e.cfg.B
	tfF := float64(tf)
	norm := tfF * (k1 + 1) / (tfF + k1*(1-b+b*float64(dl)/e.avgDocLen))
	return float32(idf * norm)
}

// staticBoost reads the document's static-rank record (the hot per-posting
// path) and folds it into a multiplicative score factor in [1, 1.25).
func (e *Engine) staticBoost(tid uint8, doc uint32) float32 {
	w := e.heap.ReadU64(tid, e.staticBase+uint64(doc)*staticRecBytes)
	return 1 + float32(w%64)/256
}

// StaticWord returns doc's first static-rank word without recording
// (verification oracles).
func (e *Engine) StaticWord(doc uint32) uint64 {
	return binary.LittleEndian.Uint64(e.heap.ReadRaw(e.staticBase+uint64(doc)*staticRecBytes, 8))
}

// featureBoost folds the first feature word of a document into a small
// deterministic score adjustment, standing in for the learned-ranking stage.
func (e *Engine) featureBoost(tid uint8, doc uint32) float32 {
	base := e.featBase + uint64(doc)*uint64(e.cfg.FeatureBytes)
	// The final ranker reads the whole blob; fold only the first word.
	e.heap.Touch(tid, base+8, e.cfg.FeatureBytes-8, trace.Read)
	w := e.heap.ReadU64(tid, base)
	return float32(w%1024) / 4096
}

// FeatureWord returns the first feature word of doc without recording
// (verification/diagnostics only).
func (e *Engine) FeatureWord(doc uint32) uint64 {
	return binary.LittleEndian.Uint64(e.heap.ReadRaw(e.featBase+uint64(doc)*uint64(e.cfg.FeatureBytes), 8))
}
