package cache

// Equivalence tests for the batched replay kernels: AccessBatch /
// DrainBatch / MultiSim must be observationally identical to the scalar
// per-access path — same stats, same HitLevel per access, and bit-identical
// internal cache state (tag/stamp/meta arrays, occupancy, recency clock,
// line buffer, FA list order) regardless of policy, partitioning, batch
// size, or how many hierarchies share one decode pass.

import (
	"reflect"
	"testing"

	"searchmem/internal/stats"
	"searchmem/internal/trace"
)

// equivTrace generates a seeded access pattern with hot, warm and cold
// regions so the hierarchy sees hits at every level, evictions, dirty
// writebacks, instruction fetches and unaligned multi-block accesses.
func batchEquivTrace(seed uint64, n, threads int) []trace.Access {
	rng := stats.NewRNG(seed)
	accs := make([]trace.Access, 0, n)
	for i := 0; i < n; i++ {
		seg := trace.Segment(rng.Intn(trace.NumSegments))
		kind := trace.Kind(rng.Intn(trace.NumKinds))
		var addr uint64
		switch rng.Intn(4) {
		case 0: // hot: fits L1, mostly hits
			addr = uint64(rng.Intn(1 << 10))
		case 1: // warm: fits L3 but not the private levels
			addr = 1<<20 + uint64(rng.Intn(12<<10))
		case 2: // same-block run: consecutive fetch-style reuse
			addr = 1 << 16
		default: // cold: misses everywhere, forces evictions
			addr = 1<<30 + uint64(rng.Intn(1<<19))
		}
		size := uint16(1 << rng.Intn(7)) // 1..64 B, may straddle blocks
		accs = append(accs, trace.Access{
			Addr: addr, Size: size, Seg: seg, Kind: kind,
			Thread: uint8(rng.Intn(threads)),
		})
	}
	return accs
}

// cacheSnap captures a cache's complete observable and internal state.
type cacheSnap struct {
	Stats  AccessStats
	Tags   []uint64
	Stamps []uint64
	Meta   []uint8
	Occ    []uint16
	Clock  uint64
	Last   uint64
	PSEL   int32
	DB     []uint8
	FAList []Line // fully-associative store in recency order
}

func snapCache(c *Cache) cacheSnap {
	s := cacheSnap{
		Stats: c.Stats,
		Tags:  append([]uint64(nil), c.tags...),
		Occ:   append([]uint16(nil), c.occ...),
		Clock: c.clock,
		Last:  c.lastBlock,
		PSEL:  c.psel,
		DB:    append([]uint8(nil), c.db...),
	}
	s.Stamps = append([]uint64(nil), c.stamps...)
	s.Meta = append([]uint8(nil), c.meta...)
	if c.assoc == 0 {
		for idx := c.faHead; idx >= 0; idx = c.faNodes[idx].next {
			s.FAList = append(s.FAList, c.faNodes[idx].line)
		}
	}
	return s
}

// snapHierarchy captures every cache in the hierarchy plus memory traffic.
func snapHierarchy(h *Hierarchy) map[string]any {
	m := map[string]any{
		"MemReads":  h.MemReads,
		"MemWrites": h.MemWrites,
		"PrefFills": h.PrefetchFills,
		"PrefReads": h.PrefetchMemReads,
		"L3":        snapCache(h.l3),
	}
	for i, c := range h.l1i {
		m["L1I"+string(rune('0'+i))] = snapCache(c)
	}
	for i, c := range h.l1d {
		m["L1D"+string(rune('0'+i))] = snapCache(c)
	}
	for i, c := range h.l2 {
		m["L2"+string(rune('0'+i))] = snapCache(c)
	}
	for i, c := range h.l2i {
		m["L2I"+string(rune('0'+i))] = snapCache(c)
	}
	if h.l4 != nil {
		m["L4"] = snapCache(h.l4)
	}
	if h.pred != nil {
		m["Pred"] = map[string]any{
			"Tags":      append([]uint16(nil), h.pred.tags...),
			"Level":     append([]uint8(nil), h.pred.level...),
			"Conf":      append([]uint8(nil), h.pred.conf...),
			"Stats":     h.pred.Stats,
			"LastFetch": h.lastFetch,
		}
	}
	return m
}

// equivConfigs is the hierarchy matrix the batched kernels must match the
// scalar path on: every policy (including the RRIP family and dead-block
// insertion), way-partitioning, a fully-associative level, split L2s, both
// L4 victim modes, and the level predictor in both indexing modes.
func equivConfigs() map[string]HierarchyConfig {
	withPolicy := func(p Policy) HierarchyConfig {
		cfg := tinyHierarchy(2, nil)
		cfg.L1I.Policy, cfg.L1D.Policy, cfg.L2.Policy, cfg.L3.Policy = p, p, p, p
		if p.Stochastic() {
			cfg.L1I.Seed, cfg.L1D.Seed, cfg.L2.Seed, cfg.L3.Seed = 11, 12, 13, 14
		}
		return cfg
	}
	l4 := &Config{Size: 32 << 10, BlockSize: 64, Assoc: 4, Seed: 7}
	cfgs := map[string]HierarchyConfig{
		"lru":    withPolicy(LRU),
		"fifo":   withPolicy(FIFO),
		"random": withPolicy(Random),
		"srrip":  withPolicy(SRRIP),
		"brrip":  withPolicy(BRRIP),
		"drrip":  withPolicy(DRRIP),
		"l4":     tinyHierarchy(2, l4),
	}
	db := withPolicy(SRRIP)
	db.L2.DeadBlock, db.L3.DeadBlock = true, true
	cfgs["srrip+db"] = db
	aw := tinyHierarchy(2, nil)
	aw.L3.AllocWays = 3
	cfgs["allocways"] = aw
	fa := tinyHierarchy(2, nil)
	fa.L3.Assoc = 0 // fully-associative shared L3
	cfgs["fullyassoc"] = fa
	sp := tinyHierarchy(2, l4)
	sp.SplitL2 = true
	cfgs["splitl2"] = sp
	fm := tinyHierarchy(1, l4)
	fm.L4FillOnMiss = true
	cfgs["l4fillonmiss"] = fm
	// Level predictor, per-PC keys, with an L4 (jump-to-L4 + bypass paths).
	// A tiny low-confidence table maximizes acted-on predictions — and so
	// mispredict-fallback coverage — on the small equivalence trace.
	pp := tinyHierarchy(2, l4)
	pp.Predictor = &PredictorConfig{TableBits: 8, ConfThreshold: 1, Seed: 5}
	cfgs["pred"] = pp
	// Block-indexed predictor without an L4 (jump-to-L3 + L3-bottom bypass),
	// stacked on an RRIP L3 so the paths compose.
	pb := withPolicy(SRRIP)
	pb.Predictor = &PredictorConfig{TableBits: 8, ConfThreshold: 1, Seed: 9, IndexBlock: true}
	cfgs["predblock"] = pb
	return cfgs
}

// TestBatchedHierarchyEquivalence drains the same trace through the scalar
// path and through AccessBatch at several batch sizes, requiring identical
// HitLevel sequences and bit-identical end state.
func TestBatchedHierarchyEquivalence(t *testing.T) {
	tr := batchEquivTrace(42, 20000, 4)
	for name, cfg := range equivConfigs() {
		t.Run(name, func(t *testing.T) {
			ref := NewHierarchy(cfg)
			refLevels := make([]HitLevel, 0, len(tr))
			for _, a := range tr {
				refLevels = append(refLevels, ref.Access(a))
			}
			refSnap := snapHierarchy(ref)

			for _, bs := range []int{1, 3, 64, 1000, len(tr)} {
				h := NewHierarchy(cfg)
				levels := make([]HitLevel, 0, len(tr))
				for lo := 0; lo < len(tr); lo += bs {
					hi := lo + bs
					if hi > len(tr) {
						hi = len(tr)
					}
					levels = h.AccessBatch(tr[lo:hi], levels)
				}
				if !reflect.DeepEqual(levels, refLevels) {
					t.Fatalf("batch size %d: HitLevel sequence diverges from scalar", bs)
				}
				if got := snapHierarchy(h); !reflect.DeepEqual(got, refSnap) {
					t.Fatalf("batch size %d: internal state diverges from scalar", bs)
				}
			}
		})
	}
}

// TestDrainBatchedAdapterEquivalence checks Drain's two entry points: a
// zero-copy Shared view (BatchStream fast path) and a scalar generator
// wrapped by trace.Batched both match the per-access reference.
func TestDrainBatchedAdapterEquivalence(t *testing.T) {
	tr := batchEquivTrace(7, 8000, 2)
	cfg := tinyHierarchy(2, &Config{Size: 32 << 10, BlockSize: 64, Assoc: 4})

	ref := NewHierarchy(cfg)
	for _, a := range tr {
		ref.Access(a)
	}
	refSnap := snapHierarchy(ref)

	viaView := NewHierarchy(cfg)
	viaView.Drain(trace.NewShared(tr).View())
	if !reflect.DeepEqual(snapHierarchy(viaView), refSnap) {
		t.Fatal("Drain(Shared view) diverges from scalar replay")
	}

	viaAdapter := NewHierarchy(cfg)
	i := 0
	gen := trace.FuncStream(func(a *trace.Access) bool {
		if i >= len(tr) {
			return false
		}
		*a = tr[i]
		i++
		return true
	})
	viaAdapter.DrainBatch(trace.Batched(gen))
	if !reflect.DeepEqual(snapHierarchy(viaAdapter), refSnap) {
		t.Fatal("DrainBatch(Batched adapter) diverges from scalar replay")
	}
}

// TestCacheAccessBatchEquivalence checks the single-cache kernel against
// Access per covered block, including the returned hit count.
func TestCacheAccessBatchEquivalence(t *testing.T) {
	tr := batchEquivTrace(99, 12000, 1)
	cfgs := map[string]Config{
		"lru":       {Size: 8 << 10, BlockSize: 64, Assoc: 4},
		"fifo":      {Size: 8 << 10, BlockSize: 64, Assoc: 4, Policy: FIFO},
		"random":    {Size: 8 << 10, BlockSize: 64, Assoc: 4, Policy: Random, Seed: 3},
		"srrip":     {Size: 8 << 10, BlockSize: 64, Assoc: 4, Policy: SRRIP},
		"brrip":     {Size: 8 << 10, BlockSize: 64, Assoc: 4, Policy: BRRIP, Seed: 4},
		"drrip":     {Size: 8 << 10, BlockSize: 64, Assoc: 4, Policy: DRRIP, Seed: 5},
		"srrip+db":  {Size: 8 << 10, BlockSize: 64, Assoc: 4, Policy: SRRIP, DeadBlock: true},
		"allocways": {Size: 8 << 10, BlockSize: 64, Assoc: 8, AllocWays: 5},
		"fa":        {Size: 8 << 10, BlockSize: 64, Assoc: 0},
	}
	// Both sides probe a chunk and then fill its missing blocks through the
	// identical helper, so the only difference under test is the probe
	// kernel itself (AccessBatch vs an Access loop).
	fillChunk := func(c *Cache, chunk []trace.Access) {
		for _, a := range chunk {
			size := uint64(a.Size)
			if size == 0 {
				size = 1
			}
			first := c.BlockAddr(a.Addr)
			last := c.BlockAddr(a.Addr + size - 1)
			for b := first; b <= last; b++ {
				if !c.Contains(b) {
					c.Fill(b, a.Seg, a.Kind == trace.Write)
				}
			}
		}
	}
	const chunk = 512
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			ref := New(cfg)
			var refHits int64
			for lo := 0; lo < len(tr); lo += chunk {
				hi := min(lo+chunk, len(tr))
				for _, a := range tr[lo:hi] {
					size := uint64(a.Size)
					if size == 0 {
						size = 1
					}
					first := ref.BlockAddr(a.Addr)
					last := ref.BlockAddr(a.Addr + size - 1)
					for b := first; b <= last; b++ {
						if ref.Access(b, a.Seg, a.Kind) {
							refHits++
						}
					}
				}
				fillChunk(ref, tr[lo:hi])
			}

			got := New(cfg)
			var gotHits int64
			for lo := 0; lo < len(tr); lo += chunk {
				hi := min(lo+chunk, len(tr))
				gotHits += got.AccessBatch(tr[lo:hi])
				fillChunk(got, tr[lo:hi])
			}

			if gotHits != refHits {
				t.Fatalf("hit count: batched %d, scalar %d", gotHits, refHits)
			}
			if !reflect.DeepEqual(snapCache(got), snapCache(ref)) {
				t.Fatal("internal state diverges from scalar probing")
			}
			if ref.Stats.TotalHits() == 0 || ref.Stats.TotalMisses() == 0 {
				t.Fatal("degenerate trace: want both hits and misses")
			}
		})
	}
}

// TestMultiSimEquivalence drives N differently-shaped hierarchies through
// one MultiSim pass and requires each to end bit-identical to draining it
// alone — the single-decode sweep must not change any result.
func TestMultiSimEquivalence(t *testing.T) {
	tr := batchEquivTrace(1234, 15000, 4)
	sh := trace.NewShared(tr)

	cfgs := make([]HierarchyConfig, 0, 6)
	for i := 0; i < 6; i++ {
		cfg := tinyHierarchy(2, nil)
		cfg.L3.Size = int64(8+4*i) << 10
		if i%2 == 1 {
			cfg.L3.Policy = FIFO
		}
		if i == 3 {
			cfg.L3.AllocWays = 3
		}
		cfgs = append(cfgs, cfg)
	}

	refs := make([]map[string]any, len(cfgs))
	for i, cfg := range cfgs {
		h := NewHierarchy(cfg)
		h.DrainBatch(sh.View())
		refs[i] = snapHierarchy(h)
	}

	hs := make([]*Hierarchy, len(cfgs))
	for i, cfg := range cfgs {
		hs[i] = NewHierarchy(cfg)
	}
	NewMultiSim(hs...).Drain(sh.View())
	for i, h := range hs {
		if !reflect.DeepEqual(snapHierarchy(h), refs[i]) {
			t.Fatalf("config %d: MultiSim result diverges from independent drain", i)
		}
	}
}
