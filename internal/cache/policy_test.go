package cache

import (
	"strings"
	"testing"

	"searchmem/internal/stats"
	"searchmem/internal/trace"
)

// allPolicies enumerates every valid Policy value.
func allPolicies() []Policy {
	ps := make([]Policy, 0, int(numPolicies))
	for p := LRU; p < numPolicies; p++ {
		ps = append(ps, p)
	}
	return ps
}

// seededCfg returns a small valid config for p (seeding stochastic ones).
func seededCfg(p Policy, assoc int) Config {
	cfg := Config{Name: "test", Size: 1024, BlockSize: 64, Assoc: assoc, Policy: p}
	if p.Stochastic() {
		cfg.Seed = 7
	}
	return cfg
}

// TestPolicyParseRoundTrip pins String ↔ ParsePolicy for every policy: the
// CLI flags parse with ParsePolicy, so an unknown name must be an error, not
// a silent LRU default.
func TestPolicyParseRoundTrip(t *testing.T) {
	for _, p := range allPolicies() {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", p.String(), got, err, p)
		}
		// Case-insensitive: flags are typed by hand.
		if got, err := ParsePolicy(strings.ToLower(p.String())); err != nil || got != p {
			t.Errorf("ParsePolicy(lower %q) = %v, %v; want %v", p.String(), got, err, p)
		}
	}
	for _, bad := range []string{"", "lru2", "MRU", "policy(3)", "rrip"} {
		if p, err := ParsePolicy(bad); err == nil {
			t.Errorf("ParsePolicy(%q) accepted as %v; want error", bad, p)
		}
	}
	if !strings.Contains(PolicyNames(), "DRRIP") || !strings.Contains(PolicyNames(), "LRU") {
		t.Errorf("PolicyNames() = %q missing policies", PolicyNames())
	}
}

// TestPolicyValidate is the table-driven validation matrix for the policy
// zoo: unknown values, missing seeds for every stochastic policy, and the
// structural restrictions (fully-associative stores, DeadBlock).
func TestPolicyValidate(t *testing.T) {
	for _, p := range allPolicies() {
		if err := seededCfg(p, 4).Validate(); err != nil {
			t.Errorf("%s: valid config rejected: %v", p, err)
		}
		if p.Stochastic() {
			cfg := seededCfg(p, 4)
			cfg.Seed = 0
			if err := cfg.Validate(); err == nil {
				t.Errorf("%s: Seed 0 accepted for stochastic policy", p)
			}
		}
		cfg := seededCfg(p, 0) // fully associative
		err := cfg.Validate()
		if p == LRU || p == FIFO {
			if err != nil {
				t.Errorf("%s: fully-associative config rejected: %v", p, err)
			}
		} else if err == nil {
			t.Errorf("%s: fully-associative config accepted", p)
		}
		cfg = seededCfg(p, 4)
		cfg.DeadBlock = true
		err = cfg.Validate()
		if p.RRIP() {
			if err != nil {
				t.Errorf("%s: DeadBlock config rejected: %v", p, err)
			}
		} else if err == nil {
			t.Errorf("%s: DeadBlock accepted for non-RRIP policy", p)
		}
	}
	bad := Config{Name: "test", Size: 1024, BlockSize: 64, Assoc: 4, Policy: Policy(17)}
	if err := bad.Validate(); err == nil {
		t.Error("unknown Policy value accepted")
	}
	if !strings.Contains(Policy(17).String(), "policy(17)") {
		t.Errorf("unknown policy String() = %q", Policy(17))
	}
}

// TestSRRIPVictimSelection walks the textbook SRRIP example on one set:
// inserts land at RRPV 2, hits promote to 0, and the victim is the leftmost
// way aged to RRPV 3.
func TestSRRIPVictimSelection(t *testing.T) {
	// 256 B / 64 B / 4-way = one set of 4 ways.
	c := New(Config{Name: "srrip", Size: 256, BlockSize: 64, Assoc: 4, Policy: SRRIP})
	for b := uint64(0); b < 4; b++ {
		c.Fill(b, trace.Heap, false)
	}
	// All at RRPV 2; promote block 0 to RRPV 0.
	if !c.Access(0, trace.Heap, trace.Read) {
		t.Fatal("block 0 should hit")
	}
	// Victim: leftmost of the RRPV-2 ways — block 1, not the reused block 0.
	ev, ok := c.Fill(100, trace.Heap, false)
	if !ok || ev.BlockAddr != 1 {
		t.Fatalf("SRRIP evicted %+v, want block 1", ev)
	}
	if !c.Contains(0) {
		t.Fatal("reused block evicted by SRRIP")
	}
	// Aging ran: block 0 is now RRPV 1, blocks 2,3 at RRPV 3, the fresh
	// block 100 at RRPV 2. Next fill evicts block 2 (leftmost RRPV 3).
	ev, ok = c.Fill(101, trace.Heap, false)
	if !ok || ev.BlockAddr != 2 {
		t.Fatalf("SRRIP second eviction %+v, want block 2", ev)
	}
}

// TestBRRIPBimodalInsertion checks BRRIP inserts mostly at "distant" with a
// seeded minority at "long", and that the stream is a pure function of Seed.
func TestBRRIPBimodalInsertion(t *testing.T) {
	mk := func(seed uint64) (*Cache, map[uint64]int) {
		c := New(Config{Name: "brrip", Size: 256, BlockSize: 64, Assoc: 4, Policy: BRRIP, Seed: seed})
		counts := map[uint64]int{}
		for b := uint64(0); b < 400; b++ {
			c.Fill(b, trace.Heap, false)
			counts[c.stamps[c.lastIdx]]++
		}
		return c, counts
	}
	_, counts := mk(3)
	if counts[rrpvMax] == 0 || counts[rrpvLong] == 0 {
		t.Fatalf("BRRIP insertion not bimodal: %v", counts)
	}
	if counts[rrpvMax] < counts[rrpvLong] {
		t.Fatalf("BRRIP should insert mostly distant: %v", counts)
	}
	a, _ := mk(3)
	b, _ := mk(3)
	if a.stamps[0] != b.stamps[0] || a.tags[0] != b.tags[0] || a.Stats != b.Stats {
		t.Fatal("same-seed BRRIP runs diverged")
	}
}

// TestDRRIPSetDueling drives misses into the two leader-set families and
// checks PSEL votes move the right way.
func TestDRRIPSetDueling(t *testing.T) {
	// 16 KiB / 64 B / 4-way = 64 sets: sets 0,32 are SRRIP leaders, sets
	// 17,49 BRRIP leaders under the duelMask constituency.
	c := New(Config{Name: "drrip", Size: 16 << 10, BlockSize: 64, Assoc: 4, Policy: DRRIP, Seed: 9})
	p0 := c.psel
	for i := uint64(0); i < 32; i++ {
		c.Fill(i*64, trace.Heap, false) // block i*64 → set 0 (mod 64)
	}
	if c.psel <= p0 {
		t.Fatalf("SRRIP-leader misses should raise PSEL: %d -> %d", p0, c.psel)
	}
	up := c.psel
	for i := uint64(0); i < 64; i++ {
		c.Fill(i*64+17, trace.Heap, false) // set 17: BRRIP leader
	}
	if c.psel >= up {
		t.Fatalf("BRRIP-leader misses should lower PSEL: %d -> %d", up, c.psel)
	}
}

// TestDeadBlockInsertion trains the dead-block table by streaming a block
// through without reuse and checks its next arrival is inserted "distant",
// while a reused block keeps its normal insertion.
func TestDeadBlockInsertion(t *testing.T) {
	cfg := Config{Name: "db", Size: 256, BlockSize: 64, Assoc: 4, Policy: SRRIP, DeadBlock: true}
	c := New(cfg)
	dead := uint64(42)
	// Two fill→evict round trips with no intervening hit push the counter
	// to dbDeadAt.
	for round := 0; round < 2; round++ {
		c.Fill(dead, trace.Shard, false)
		for b := uint64(100 + 10*round); c.Contains(dead); b++ {
			c.Fill(b, trace.Shard, false)
		}
	}
	if got := c.db[dbHash(dead)]; got < dbDeadAt {
		t.Fatalf("dead-block counter %d after two dead round trips, want >= %d", got, dbDeadAt)
	}
	c.Fill(dead, trace.Shard, false)
	if c.stamps[c.lastIdx] != rrpvMax {
		t.Fatalf("predicted-dead block inserted at RRPV %d, want %d", c.stamps[c.lastIdx], rrpvMax)
	}
	// A reused block trains the counter back down.
	c2 := New(cfg)
	live := uint64(7)
	for round := 0; round < 3; round++ {
		c2.Fill(live, trace.Heap, false)
		c2.Access(live, trace.Heap, trace.Read)
		for b := uint64(200 + 10*round); c2.Contains(live); b++ {
			c2.Fill(b, trace.Heap, false)
		}
	}
	if got := c2.db[dbHash(live)]; got >= dbDeadAt {
		t.Fatalf("reused block predicted dead (counter %d)", got)
	}
	c2.Fill(live, trace.Heap, false)
	if c2.stamps[c2.lastIdx] != rrpvLong {
		t.Fatalf("live block inserted at RRPV %d, want %d", c2.stamps[c2.lastIdx], rrpvLong)
	}
}

// checkLineBuffer asserts the line-buffer invariant (cache.go): lastBlock is
// either invalid or actually resident at lastIdx. A violation means a future
// probe of the stale block would return a false hit — silently wrong MPKI.
func checkLineBuffer(t *testing.T, c *Cache, op string) {
	t.Helper()
	if c.lastBlock == invalidTag {
		return
	}
	if int(c.lastIdx) >= len(c.tags) || c.tags[c.lastIdx] != c.lastBlock {
		t.Fatalf("%s: line buffer stale: lastBlock=%d lastIdx=%d tags[lastIdx]=%d",
			op, c.lastBlock, c.lastIdx, c.tags[c.lastIdx])
	}
}

// TestLineBufferInvalidatedOnEviction is the staleness regression the policy
// zoo could have introduced: evict the most recently hit block (the one the
// line buffer points at) through every replacement policy and immediately
// re-probe it — a stale buffer would return a false hit.
func TestLineBufferInvalidatedOnEviction(t *testing.T) {
	for _, p := range allPolicies() {
		cfg := seededCfg(p, 4)
		cfg.Size = 256 // one 4-way set
		if p.RRIP() {
			cfg.DeadBlock = true // exercise the reuse-bit path too
		}
		c := New(cfg)
		for b := uint64(0); b < 4; b++ {
			c.Fill(b, trace.Heap, false)
		}
		for victim := uint64(0); victim < 4; victim++ {
			// Make the line buffer point at the victim...
			if !c.Access(victim, trace.Heap, trace.Read) {
				continue // already evicted by a previous iteration
			}
			// ...then force evictions until it leaves the set.
			for b := uint64(100 * (victim + 1)); c.Contains(victim); b++ {
				c.Fill(b, trace.Heap, false)
				checkLineBuffer(t, c, p.String()+"/fill")
			}
			if c.Access(victim, trace.Heap, trace.Read) {
				t.Fatalf("%s: stale line buffer produced a false hit for evicted block %d", p, victim)
			}
			c.Fill(victim, trace.Heap, false)
		}
	}
}

// TestLineBufferInvalidatedOnInvalidate pins the Invalidate path (used by
// inclusive back-invalidation): invalidating the last-hit block must clear
// the buffer.
func TestLineBufferInvalidatedOnInvalidate(t *testing.T) {
	for _, p := range allPolicies() {
		c := New(seededCfg(p, 4))
		c.Fill(5, trace.Heap, false)
		c.Access(5, trace.Heap, trace.Read) // buffer → block 5
		if _, present := c.Invalidate(5); !present {
			t.Fatalf("%s: block 5 not present", p)
		}
		checkLineBuffer(t, c, p.String()+"/invalidate")
		if c.Access(5, trace.Heap, trace.Read) {
			t.Fatalf("%s: false hit on invalidated last-hit block", p)
		}
	}
}

// TestLineBufferInvariantUnderRandomOps hammers every policy with a random
// mix of accesses, fills and invalidations, checking the invariant after
// every operation (the audit's executable form).
func TestLineBufferInvariantUnderRandomOps(t *testing.T) {
	for _, p := range allPolicies() {
		cfg := seededCfg(p, 2)
		cfg.Size = 512 // 4 sets × 2 ways: high conflict pressure
		c := New(cfg)
		rng := stats.NewRNG(uint64(p) + 100)
		for i := 0; i < 5000; i++ {
			block := rng.Uint64n(64)
			op := "access"
			switch rng.Intn(3) {
			case 0:
				if !c.Access(block, trace.Heap, trace.Kind(rng.Intn(trace.NumKinds))) {
					c.Fill(block, trace.Heap, false)
					op = "miss-fill"
				}
			case 1:
				c.Fill(block, trace.Heap, rng.Bool(0.3))
				op = "fill"
			default:
				c.Invalidate(block)
				op = "invalidate"
			}
			checkLineBuffer(t, c, p.String()+"/"+op)
		}
	}
}

// TestHierarchyBackInvalidationClearsLineBuffer drives the full inclusive
// hierarchy path: an L3 eviction back-invalidates an L1-resident block the
// L1 line buffer points at, and the next access must miss in L1.
func TestHierarchyBackInvalidationClearsLineBuffer(t *testing.T) {
	cfg := tinyHierarchy(1, nil) // L3Inclusive is set by the helper
	h := NewHierarchy(cfg)
	target := trace.Access{Addr: 0, Size: 8, Seg: trace.Heap, Kind: trace.Read}
	h.Access(target) // L1-D line buffer now points at block 0
	// Evict block 0 from the L3 (16 KiB, 64 B, 8-way → 32 sets): 8 new
	// blocks in set 0 push it out, back-invalidating the L1-D copy. The
	// interfering accesses are instruction fetches so they route through
	// the L1-I and leave the L1-D — and its line buffer — untouched.
	for i := uint64(1); i <= 8; i++ {
		h.Access(trace.Access{Addr: i * 32 * 64, Size: 8, Seg: trace.Code, Kind: trace.Fetch})
	}
	if h.l1d[0].Contains(0) {
		t.Fatal("back-invalidation did not remove the L1 copy")
	}
	checkLineBuffer(t, h.l1d[0], "back-invalidate")
	if lvl := h.Access(target); lvl == HitL1 {
		t.Fatal("stale L1 line buffer produced a false hit after back-invalidation")
	}
}

// TestZeroAccessStatsGuards locks the division guards: empty AccessStats and
// PredictorStats must report zeros, not NaN, so experiment cells for
// untouched levels render deterministically.
func TestZeroAccessStatsGuards(t *testing.T) {
	var s AccessStats
	if r := s.HitRate(); r != 0 {
		t.Errorf("empty HitRate = %v, want 0", r)
	}
	for seg := 0; seg < trace.NumSegments; seg++ {
		if r := s.SegHitRate(trace.Segment(seg)); r != 0 {
			t.Errorf("empty SegHitRate(%d) = %v, want 0", seg, r)
		}
		if r := s.SegMPKI(trace.Segment(seg), 0); r != 0 {
			t.Errorf("empty SegMPKI(%d) = %v, want 0", seg, r)
		}
	}
	if r := s.MPKI(0); r != 0 {
		t.Errorf("empty MPKI = %v, want 0", r)
	}
	for k := 0; k < trace.NumKinds; k++ {
		if r := s.KindMPKI(trace.Kind(k), 0); r != 0 {
			t.Errorf("empty KindMPKI(%d) = %v, want 0", k, r)
		}
	}
	var p PredictorStats
	for name, r := range map[string]float64{
		"CoverageRate":   p.CoverageRate(),
		"HitRate":        p.HitRate(),
		"MispredictRate": p.MispredictRate(),
		"SkipRate":       p.SkipRate(),
	} {
		if r != 0 {
			t.Errorf("empty PredictorStats.%s = %v, want 0", name, r)
		}
	}
	// A hierarchy without a predictor reports zero-valued stats too.
	h := NewHierarchy(tinyHierarchy(1, nil))
	if h.PredictorStats() != (PredictorStats{}) {
		t.Error("predictor-less hierarchy reports non-zero predictor stats")
	}
}
