package cache

import (
	"fmt"

	"searchmem/internal/trace"
)

// MissClass categorizes a cache miss per the classic 3C model.
type MissClass uint8

const (
	// MissCold is a first-ever touch of the block: unavoidable at any size.
	MissCold MissClass = iota
	// MissCapacity would also miss in a fully-associative cache of the
	// same capacity: the working set simply does not fit.
	MissCapacity
	// MissConflict hits in the fully-associative shadow but missed in the
	// real cache: lost to limited associativity.
	MissConflict

	// NumMissClasses is the number of classes.
	NumMissClasses = 3
)

// String implements fmt.Stringer.
func (m MissClass) String() string {
	switch m {
	case MissCold:
		return "cold"
	case MissCapacity:
		return "capacity"
	case MissConflict:
		return "conflict"
	default:
		return fmt.Sprintf("missclass(%d)", uint8(m))
	}
}

// Classifier decomposes one cache's misses into cold/capacity/conflict by
// running a fully-associative LRU shadow cache of equal capacity alongside
// the real cache. It backs the paper's §III-C analysis ("conflict misses are
// not as significant as capacity misses"; shard accesses are mostly cold).
type Classifier struct {
	real   *Cache
	shadow *Cache
	seen   map[uint64]struct{}

	// Counts tallies misses per segment and class; Hits tallies real-cache
	// hits per segment.
	Counts [trace.NumSegments][NumMissClasses]int64
	Hits   [trace.NumSegments]int64
}

// NewClassifier builds a classifier for a standalone cache config. The
// shadow uses the same capacity and block size with full associativity.
func NewClassifier(cfg Config) *Classifier {
	shadowCfg := Config{
		Name:      cfg.Name + "-shadow",
		Size:      cfg.Size,
		BlockSize: cfg.BlockSize,
		Assoc:     0,
		Policy:    LRU,
	}
	if cfg.AllocWays != 0 && cfg.Assoc != 0 {
		// Way partitioning reduces usable capacity; mirror it in the shadow.
		shadowCfg.Size = cfg.Size * int64(cfg.AllocWays) / int64(cfg.Assoc)
	}
	return &Classifier{
		real:   New(cfg),
		shadow: New(shadowCfg),
		seen:   make(map[uint64]struct{}),
	}
}

// Observe runs one access through the classifier (block-splitting spans).
func (cl *Classifier) Observe(a trace.Access) {
	size := uint64(a.Size)
	if size == 0 {
		size = 1
	}
	first := cl.real.BlockAddr(a.Addr)
	last := cl.real.BlockAddr(a.Addr + size - 1)
	for b := first; b <= last; b++ {
		cl.observeBlock(b, a.Seg, a.Kind)
	}
}

func (cl *Classifier) observeBlock(block uint64, seg trace.Segment, kind trace.Kind) {
	realHit := cl.real.Access(block, seg, kind)
	shadowHit := cl.shadow.touch(block, kind == trace.Write)
	_, wasSeen := cl.seen[block]
	if !realHit {
		cl.real.Fill(block, seg, kind == trace.Write)
	}
	if !shadowHit {
		cl.shadow.Fill(block, seg, kind == trace.Write)
	}
	if realHit {
		cl.Hits[seg]++
	} else {
		switch {
		case !wasSeen:
			cl.Counts[seg][MissCold]++
		case !shadowHit:
			cl.Counts[seg][MissCapacity]++
		default:
			cl.Counts[seg][MissConflict]++
		}
	}
	if !wasSeen {
		cl.seen[block] = struct{}{}
	}
}

// Drain consumes an entire stream.
func (cl *Classifier) Drain(s trace.Stream) {
	var a trace.Access
	for s.Next(&a) {
		cl.Observe(a)
	}
}

// Misses returns total misses for seg across classes.
func (cl *Classifier) Misses(seg trace.Segment) int64 {
	var t int64
	for c := 0; c < NumMissClasses; c++ {
		t += cl.Counts[seg][c]
	}
	return t
}

// TotalMisses returns misses across all segments.
func (cl *Classifier) TotalMisses() int64 {
	var t int64
	for seg := trace.Segment(0); seg < trace.NumSegments; seg++ {
		t += cl.Misses(seg)
	}
	return t
}

// ClassShare returns the fraction of all misses in the given class, or 0
// with no misses.
func (cl *Classifier) ClassShare(class MissClass) float64 {
	total := cl.TotalMisses()
	if total == 0 {
		return 0
	}
	var n int64
	for seg := trace.Segment(0); seg < trace.NumSegments; seg++ {
		n += cl.Counts[seg][class]
	}
	return float64(n) / float64(total)
}
