package cache

import (
	"testing"
	"testing/quick"

	"searchmem/internal/stats"
	"searchmem/internal/trace"
)

// tinyHierarchy returns a small, fast hierarchy for tests.
func tinyHierarchy(cores int, l4 *Config) HierarchyConfig {
	return HierarchyConfig{
		Cores:          cores,
		ThreadsPerCore: 1,
		L1I:            Config{Size: 1 << 10, BlockSize: 64, Assoc: 2},
		L1D:            Config{Size: 1 << 10, BlockSize: 64, Assoc: 2},
		L2:             Config{Size: 4 << 10, BlockSize: 64, Assoc: 4},
		L3:             Config{Size: 16 << 10, BlockSize: 64, Assoc: 8},
		L3Inclusive:    true,
		L4:             l4,
	}
}

func TestHierarchyValidate(t *testing.T) {
	bad := []HierarchyConfig{
		{},
		{Cores: 1}, // missing thread count and caches
		func() HierarchyConfig {
			h := tinyHierarchy(1, nil)
			h.L1I.BlockSize = 128 // differs from L1D
			h.L1I.Size = 2 << 10
			return h
		}(),
		func() HierarchyConfig {
			h := tinyHierarchy(1, nil)
			h.L3.BlockSize = 32 // shrinks down the hierarchy
			return h
		}(),
		func() HierarchyConfig {
			h := tinyHierarchy(1, nil)
			h.L4 = &Config{Size: 64 << 10, BlockSize: 128, Assoc: 1}
			return h
		}(),
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid hierarchy accepted", i)
		}
	}
	if err := tinyHierarchy(2, &Config{Size: 64 << 10, BlockSize: 64, Assoc: 1}).Validate(); err != nil {
		t.Errorf("valid hierarchy rejected: %v", err)
	}
}

func TestHierarchyBasicFlow(t *testing.T) {
	h := NewHierarchy(tinyHierarchy(1, nil))
	a := trace.Access{Addr: 0x1000, Size: 8, Seg: trace.Heap, Kind: trace.Read}
	h.Access(a)
	// First access misses everywhere and reads memory.
	if h.MemReads != 1 {
		t.Fatalf("MemReads = %d, want 1", h.MemReads)
	}
	if h.L1DStats().TotalMisses() != 1 || h.L2Stats().TotalMisses() != 1 || h.L3Stats().TotalMisses() != 1 {
		t.Fatal("first access should miss at all levels")
	}
	// Second access hits in L1.
	h.Access(a)
	if h.L1DStats().TotalHits() != 1 {
		t.Fatalf("second access did not hit L1: %+v", h.L1DStats())
	}
	if h.MemReads != 1 {
		t.Fatalf("second access re-read memory")
	}
}

func TestFetchRoutesToL1I(t *testing.T) {
	h := NewHierarchy(tinyHierarchy(1, nil))
	h.Access(trace.Access{Addr: 0x400000, Size: 4, Seg: trace.Code, Kind: trace.Fetch})
	if h.L1IStats().Accesses() != 1 {
		t.Fatal("fetch did not reach L1-I")
	}
	if h.L1DStats().Accesses() != 0 {
		t.Fatal("fetch leaked into L1-D")
	}
	h.Access(trace.Access{Addr: 0x400000, Size: 4, Seg: trace.Code, Kind: trace.Fetch})
	if h.L1IStats().TotalHits() != 1 {
		t.Fatal("refetch did not hit L1-I")
	}
}

func TestSpanningAccessSplits(t *testing.T) {
	h := NewHierarchy(tinyHierarchy(1, nil))
	// 8 bytes starting 4 bytes before a block boundary: two blocks.
	h.Access(trace.Access{Addr: 60, Size: 8, Seg: trace.Heap, Kind: trace.Read})
	if got := h.L1DStats().Accesses(); got != 2 {
		t.Fatalf("spanning access made %d probes, want 2", got)
	}
}

func TestPrivateCachesPerCore(t *testing.T) {
	h := NewHierarchy(tinyHierarchy(2, nil))
	// Same address from two different threads on two cores: the second
	// thread's L1 must miss (no coherence, but caches are private).
	h.Access(trace.Access{Addr: 0x2000, Size: 8, Seg: trace.Heap, Kind: trace.Read, Thread: 0})
	h.Access(trace.Access{Addr: 0x2000, Size: 8, Seg: trace.Heap, Kind: trace.Read, Thread: 1})
	if h.L1DStats().TotalMisses() != 2 {
		t.Fatalf("private L1s should both miss, got %+v", h.L1DStats())
	}
	// But the shared L3 serves the second core.
	if h.L3Stats().TotalHits() != 1 {
		t.Fatalf("L3 should hit for the second core: %+v", h.L3Stats())
	}
	if h.MemReads != 1 {
		t.Fatalf("memory read twice for a shared block")
	}
}

func TestSMTThreadsShareCore(t *testing.T) {
	cfg := tinyHierarchy(1, nil)
	cfg.ThreadsPerCore = 2
	h := NewHierarchy(cfg)
	h.Access(trace.Access{Addr: 0x2000, Size: 8, Seg: trace.Heap, Kind: trace.Read, Thread: 0})
	h.Access(trace.Access{Addr: 0x2000, Size: 8, Seg: trace.Heap, Kind: trace.Read, Thread: 1})
	// SMT sibling shares the L1: second access hits.
	if h.L1DStats().TotalHits() != 1 {
		t.Fatalf("SMT sibling missed the shared L1: %+v", h.L1DStats())
	}
}

func TestInclusionBackInvalidation(t *testing.T) {
	cfg := tinyHierarchy(1, nil)
	cfg.L3 = Config{Size: 1 << 10, BlockSize: 64, Assoc: 1} // direct-mapped, 16 sets
	cfg.L3Inclusive = true
	h := NewHierarchy(cfg)
	// Block 0 lands in L1, L2 and L3. Block 16 collides with it in the
	// direct-mapped L3, evicting it; inclusion must kill the L1/L2 copies.
	hot := trace.Access{Addr: 0, Size: 8, Seg: trace.Heap, Kind: trace.Read}
	h.Access(hot)
	h.Access(trace.Access{Addr: 16 * 64, Size: 8, Seg: trace.Heap, Kind: trace.Read})
	if h.L3().Contains(0) {
		t.Fatal("direct-mapped L3 kept both colliding blocks")
	}
	before := h.MemReads
	h.Access(hot)
	if h.MemReads != before+1 {
		t.Fatal("back-invalidated block still hit in a private cache")
	}
	total := h.L1DStats().BackInvalidations + h.L2Stats().BackInvalidations
	if total == 0 {
		t.Fatal("no back-invalidations recorded")
	}
}

func TestNonInclusiveKeepsL1(t *testing.T) {
	cfg := tinyHierarchy(1, nil)
	cfg.L3Inclusive = false
	h := NewHierarchy(cfg)
	hot := trace.Access{Addr: 0, Size: 8, Seg: trace.Heap, Kind: trace.Read}
	h.Access(hot)
	// A stream that thrashes L3 but maps to a different L1 set than the
	// hot block (L1 has 8 sets; use addresses = 64*(8k+1)).
	for i := uint64(0); i < 4096; i++ {
		h.Access(trace.Access{Addr: (8*i + 1) * 64, Size: 8, Seg: trace.Heap, Kind: trace.Read})
	}
	l1Before := h.L1DStats().TotalHits()
	h.Access(hot)
	if h.L1DStats().TotalHits() != l1Before+1 {
		t.Fatal("non-inclusive hierarchy lost an L1 line it should have kept")
	}
}

func TestDirtyWritebackReachesMemory(t *testing.T) {
	h := NewHierarchy(tinyHierarchy(1, nil))
	// Write a block, then thrash everything so it is evicted everywhere.
	h.Access(trace.Access{Addr: 0, Size: 8, Seg: trace.Heap, Kind: trace.Write})
	for i := uint64(1); i <= 8192; i++ {
		h.Access(trace.Access{Addr: i * 64, Size: 8, Seg: trace.Heap, Kind: trace.Read})
	}
	if h.MemWrites == 0 {
		t.Fatal("dirty data never written back to memory")
	}
}

func TestL4VictimFill(t *testing.T) {
	l4 := &Config{Name: "L4", Size: 1 << 20, BlockSize: 64, Assoc: 1}
	h := NewHierarchy(tinyHierarchy(1, l4))
	// Touch a working set bigger than L3 (16 KiB) but smaller than L4
	// (1 MiB), twice. The second pass should hit mostly in L4.
	const blocks = 2048 // 128 KiB
	for pass := 0; pass < 2; pass++ {
		for i := uint64(0); i < blocks; i++ {
			h.Access(trace.Access{Addr: i * 64, Size: 8, Seg: trace.Heap, Kind: trace.Read})
		}
	}
	l4Stats := h.L4Stats()
	if l4Stats.TotalHits() == 0 {
		t.Fatal("L4 victim cache never hit")
	}
	hitRate := l4Stats.HitRate()
	if hitRate < 0.4 {
		t.Fatalf("L4 hit rate %.2f too low for re-streamed working set", hitRate)
	}
	// Memory reads must be well below 2 passes' worth.
	if h.MemReads >= 2*blocks {
		t.Fatalf("L4 filtered nothing: MemReads=%d", h.MemReads)
	}
}

func TestL4FillOnMissAblation(t *testing.T) {
	l4 := &Config{Name: "L4", Size: 1 << 20, BlockSize: 64, Assoc: 1}
	cfg := tinyHierarchy(1, l4)
	cfg.L4FillOnMiss = true
	h := NewHierarchy(cfg)
	const blocks = 2048
	for pass := 0; pass < 2; pass++ {
		for i := uint64(0); i < blocks; i++ {
			h.Access(trace.Access{Addr: i * 64, Size: 8, Seg: trace.Heap, Kind: trace.Read})
		}
	}
	if h.L4Stats().TotalHits() == 0 {
		t.Fatal("fill-on-miss L4 never hit")
	}
}

func TestL4DirtyEvictionWritesMemory(t *testing.T) {
	// Small L4 forces dirty victims out of the L4 to memory.
	l4 := &Config{Name: "L4", Size: 32 << 10, BlockSize: 64, Assoc: 1}
	h := NewHierarchy(tinyHierarchy(1, l4))
	for i := uint64(0); i < 8192; i++ {
		h.Access(trace.Access{Addr: i * 64, Size: 8, Seg: trace.Heap, Kind: trace.Write})
	}
	if h.MemWrites == 0 {
		t.Fatal("dirty blocks evicted from L4 never reached memory")
	}
}

func TestDRAMAccessesAndReset(t *testing.T) {
	h := NewHierarchy(tinyHierarchy(1, nil))
	for i := uint64(0); i < 100; i++ {
		h.Access(trace.Access{Addr: i * 64, Size: 8, Seg: trace.Shard, Kind: trace.Read})
	}
	if h.DRAMAccesses() != h.MemReads+h.MemWrites || h.DRAMAccesses() == 0 {
		t.Fatalf("DRAMAccesses inconsistent")
	}
	h.Reset()
	if h.DRAMAccesses() != 0 || h.L1DStats().Accesses() != 0 || h.L3Stats().Accesses() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestHierarchyDeterminism(t *testing.T) {
	mk := func() int64 {
		h := NewHierarchy(tinyHierarchy(2, nil))
		rng := stats.NewRNG(5)
		z := stats.NewZipf(rng, 4096, 0.8)
		for i := 0; i < 20000; i++ {
			h.Access(trace.Access{
				Addr:   z.Next() * 64,
				Size:   8,
				Seg:    trace.Heap,
				Kind:   trace.Read,
				Thread: uint8(i % 2),
			})
		}
		return h.MemReads + h.L3Stats().TotalHits()*1000
	}
	if mk() != mk() {
		t.Fatal("identical runs diverged")
	}
}

func TestLargerL3NeverMoreMemReads(t *testing.T) {
	// Hierarchy-level monotonicity: growing the L3 must not increase
	// memory traffic on the same trace.
	run := func(l3Size int64) int64 {
		cfg := tinyHierarchy(1, nil)
		cfg.L3 = Config{Size: l3Size, BlockSize: 64, Assoc: 8}
		h := NewHierarchy(cfg)
		rng := stats.NewRNG(17)
		z := stats.NewZipf(rng, 8192, 0.9)
		for i := 0; i < 50000; i++ {
			h.Access(trace.Access{Addr: z.Next() * 64, Size: 8, Seg: trace.Heap, Kind: trace.Read})
		}
		return h.MemReads
	}
	small, big := run(16<<10), run(256<<10)
	if big > small {
		t.Fatalf("bigger L3 increased memory reads: %d > %d", big, small)
	}
}

func TestHierarchyDrain(t *testing.T) {
	h := NewHierarchy(tinyHierarchy(1, nil))
	accs := []trace.Access{
		{Addr: 0, Size: 8, Seg: trace.Heap, Kind: trace.Read},
		{Addr: 0, Size: 8, Seg: trace.Heap, Kind: trace.Read},
	}
	h.Drain(trace.NewSliceStream(accs))
	if h.L1DStats().Accesses() != 2 {
		t.Fatal("drain did not process all accesses")
	}
}

func TestHitLevels(t *testing.T) {
	h := NewHierarchy(tinyHierarchy(1, &Config{Size: 64 << 10, BlockSize: 64, Assoc: 1}))
	a := trace.Access{Addr: 0, Size: 8, Seg: trace.Heap, Kind: trace.Read}
	if lvl := h.Access(a); lvl != HitMemory {
		t.Fatalf("cold access level %v", lvl)
	}
	if lvl := h.Access(a); lvl != HitL1 {
		t.Fatalf("warm access level %v", lvl)
	}
	for _, want := range []struct {
		l HitLevel
		s string
	}{{HitL1, "L1"}, {HitL2, "L2"}, {HitL3, "L3"}, {HitL4, "L4"}, {HitMemory, "memory"}, {HitLevel(9), "level(9)"}} {
		if want.l.String() != want.s {
			t.Errorf("%d.String() = %q", want.l, want.l.String())
		}
	}
}

func TestHitLevelL4(t *testing.T) {
	// Fill a block, thrash it out of the small L3 into the L4, re-access.
	cfg := tinyHierarchy(1, &Config{Size: 1 << 20, BlockSize: 64, Assoc: 1})
	cfg.L3 = Config{Size: 1 << 10, BlockSize: 64, Assoc: 1} // tiny L3, 16 sets
	h := NewHierarchy(cfg)
	h.Access(trace.Access{Addr: 0, Size: 8, Seg: trace.Heap, Kind: trace.Read})
	// Collide in L3 set 0 and in the L1/L2 sets enough to evict block 0
	// everywhere (inclusive back-invalidation does it via the L3).
	h.Access(trace.Access{Addr: 16 * 64, Size: 8, Seg: trace.Heap, Kind: trace.Read})
	if lvl := h.Access(trace.Access{Addr: 0, Size: 8, Seg: trace.Heap, Kind: trace.Read}); lvl != HitL4 {
		t.Fatalf("victim re-access level %v, want L4", lvl)
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	h := NewHierarchy(tinyHierarchy(1, &Config{Size: 64 << 10, BlockSize: 64, Assoc: 1}))
	a := trace.Access{Addr: 0x40, Size: 8, Seg: trace.Heap, Kind: trace.Read}
	h.Access(a)
	h.ResetStats()
	if h.L1DStats().Accesses() != 0 || h.MemReads != 0 {
		t.Fatal("stats not cleared")
	}
	if lvl := h.Access(a); lvl != HitL1 {
		t.Fatal("contents lost by ResetStats")
	}
}

func TestInstallPrefetchDirect(t *testing.T) {
	h := NewHierarchy(tinyHierarchy(1, nil))
	h.InstallPrefetch(0, 0x1000, trace.Shard)
	if h.PrefetchFills != 1 || h.PrefetchMemReads != 1 {
		t.Fatalf("prefetch counters: %d fills, %d mem", h.PrefetchFills, h.PrefetchMemReads)
	}
	// Demand access now hits in L2.
	if lvl := h.Access(trace.Access{Addr: 0x1000, Size: 8, Seg: trace.Shard, Kind: trace.Read}); lvl != HitL2 {
		t.Fatalf("prefetched block serviced at %v, want L2", lvl)
	}
	// Re-prefetching a resident block is a no-op.
	h.InstallPrefetch(0, 0x1000, trace.Shard)
	if h.PrefetchFills != 1 {
		t.Fatal("duplicate prefetch counted")
	}
	// Out-of-range core is ignored.
	h.InstallPrefetch(99, 0x2000, trace.Shard)
	if h.PrefetchFills != 1 {
		t.Fatal("invalid core prefetch accepted")
	}
}

func TestAggregateL1StatsAndL4Accessors(t *testing.T) {
	l4 := &Config{Size: 64 << 10, BlockSize: 64, Assoc: 1}
	h := NewHierarchy(tinyHierarchy(2, l4))
	if !h.HasL4() || h.L4() == nil || h.L3() == nil {
		t.Fatal("accessors broken")
	}
	h.Access(trace.Access{Addr: 0, Size: 4, Seg: trace.Code, Kind: trace.Fetch})
	h.Access(trace.Access{Addr: 0x4000, Size: 8, Seg: trace.Heap, Kind: trace.Read, Thread: 1})
	combined := h.L1Stats()
	if combined.Accesses() != 2 {
		t.Fatalf("combined L1 accesses %d", combined.Accesses())
	}
	if h.Config().Cores != 2 {
		t.Fatal("Config accessor broken")
	}
	noL4 := NewHierarchy(tinyHierarchy(1, nil))
	if noL4.HasL4() || noL4.L4() != nil {
		t.Fatal("phantom L4")
	}
	if noL4.L4Stats().Accesses() != 0 {
		t.Fatal("L4 stats on missing L4")
	}
}

func TestSplitL2(t *testing.T) {
	cfg := tinyHierarchy(1, nil)
	cfg.SplitL2 = true
	h := NewHierarchy(cfg)
	// A fetch and a load to addresses colliding in a unified L2 must not
	// evict each other when split.
	h.Access(trace.Access{Addr: 0x100, Size: 4, Seg: trace.Code, Kind: trace.Fetch})
	h.Access(trace.Access{Addr: 0x100, Size: 8, Seg: trace.Heap, Kind: trace.Read})
	// Both must be L2-resident in their own halves after L1 invalidation
	// is irrelevant: probe L2Stats by re-access after flushing L1 via
	// conflicting fills.
	s := h.L2Stats()
	if s.Accesses() != 2 {
		t.Fatalf("split L2 saw %d accesses", s.Accesses())
	}
	if s.KindMisses(trace.Fetch) != 1 || s.KindMisses(trace.Read) != 1 {
		t.Fatalf("split L2 kind misses: %+v", s)
	}
	// ResetStats and Reset cover the split caches.
	h.ResetStats()
	if h.L2Stats().Accesses() != 0 {
		t.Fatal("split L2 stats survived reset")
	}
	h.Reset()
	if lvl := h.Access(trace.Access{Addr: 0x100, Size: 4, Seg: trace.Code, Kind: trace.Fetch}); lvl != HitMemory {
		t.Fatalf("split L2 contents survived Reset: %v", lvl)
	}
}

func TestSplitL2HalvesCapacity(t *testing.T) {
	cfg := tinyHierarchy(1, nil)
	cfg.SplitL2 = true
	h := NewHierarchy(cfg)
	if got := h.l2[0].Config().Size; got != cfg.L2.Size/2 {
		t.Fatalf("L2-D size %d, want half of %d", got, cfg.L2.Size)
	}
	if got := h.l2i[0].Config().Size; got != cfg.L2.Size/2 {
		t.Fatalf("L2-I size %d", got)
	}
}

// TestHierarchyConservationProperty: at every level, hits + misses equals
// the probes that reached it, for arbitrary access streams.
func TestHierarchyConservationProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		h := NewHierarchy(tinyHierarchy(2, &Config{Size: 64 << 10, BlockSize: 64, Assoc: 1}))
		var probes int64
		for i := 0; i < 3000; i++ {
			a := trace.Access{
				Addr:   rng.Uint64n(1 << 22),
				Size:   uint16(1 + rng.Intn(16)),
				Seg:    trace.Segment(rng.Intn(trace.NumSegments)),
				Kind:   trace.Kind(rng.Intn(trace.NumKinds)),
				Thread: uint8(rng.Intn(2)),
			}
			h.Access(a)
			first := a.Addr >> 6
			last := (a.Addr + uint64(a.Size) - 1) >> 6
			probes += int64(last - first + 1)
		}
		l1 := h.L1Stats()
		if l1.Accesses() != probes {
			return false
		}
		// L2 demand probes equal L1 misses; L3 probes equal L2 misses.
		if h.L2Stats().Accesses() != l1.TotalMisses() {
			return false
		}
		if h.L3Stats().Accesses() != h.L2Stats().TotalMisses() {
			return false
		}
		// Post-L3 demand reads are partitioned by the L4 and memory.
		return h.L4Stats().Accesses() == h.L3Stats().TotalMisses() &&
			h.L4Stats().TotalMisses() == h.MemReads-h.PrefetchMemReads
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
