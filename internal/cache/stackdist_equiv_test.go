package cache

import (
	"math"
	"testing"

	"searchmem/internal/stats"
	"searchmem/internal/trace"
)

// equivTrace builds a deterministic block-aligned stream with a hot set
// (short reuse distances), a rotating medium set (long distances), and a
// cold sequential scan (compulsory misses) — the three regimes the sweep
// experiments see.
func equivTrace(n int) []trace.Access {
	rng := stats.NewRNG(0xe9)
	var out []trace.Access
	var scan uint64
	medium := uint64(0)
	for i := 0; i < n; i++ {
		var addr uint64
		seg := trace.Heap
		switch {
		case rng.Bool(0.5): // hot set: 32 blocks
			addr = rng.Uint64n(32) * 64
		case rng.Bool(0.5): // medium set: 2048 blocks, round robin
			addr = 1<<20 + (medium%2048)*64
			medium++
		default: // cold scan
			scan += 64
			addr = 1<<30 + scan
			seg = trace.Shard
		}
		out = append(out, trace.Access{Addr: addr, Size: 1, Seg: seg, Kind: trace.Read})
	}
	return out
}

// TestStackDistMatchesFAReplay is the equivalence proof behind the
// capacity-sweep fast path: at power-of-two capacities, the one-pass
// stack-distance profile must agree EXACTLY with a full fully-associative
// LRU replay at each capacity (Mattson's inclusion property). This is what
// licenses routing capacity-only sweeps through StackDist instead of N
// replays.
func TestStackDistMatchesFAReplay(t *testing.T) {
	tr := equivTrace(30_000)
	sd := NewStackDist(64)
	for _, a := range tr {
		sd.Observe(a)
	}
	for _, capBlocks := range []int64{1, 4, 16, 64, 256, 1024, 4096, 16384} {
		capBytes := capBlocks * 64
		c := New(Config{Name: "fa", Size: capBytes, BlockSize: 64, Assoc: 0, Policy: LRU})
		var hits [trace.NumSegments]int64
		for _, a := range tr {
			block := c.BlockAddr(a.Addr)
			if c.Access(block, a.Seg, a.Kind) {
				hits[a.Seg]++
			} else {
				c.Fill(block, a.Seg, false)
			}
		}
		for seg := trace.Segment(0); seg < trace.NumSegments; seg++ {
			got := sd.Hits(seg, capBytes)
			if math.Abs(got-float64(hits[seg])) > 1e-9 {
				t.Errorf("cap %d blocks, seg %s: StackDist hits %.1f, FA-LRU replay hits %d",
					capBlocks, seg, got, hits[seg])
			}
		}
	}
}

// sampledTrace builds an aperiodic bimodal stream: a 16-block hot loop whose
// reuse distances survive systematic thinning, plus a never-reused cold
// scan. On such a stream, sampled and exhaustive profiles must agree once
// counts are stride-rescaled.
func sampledTrace(n int) []trace.Access {
	rng := stats.NewRNG(0x5a11)
	var out []trace.Access
	var scan, hot uint64
	for i := 0; i < n; i++ {
		if rng.Bool(0.5) {
			hot++
			out = append(out, trace.Access{Addr: (hot % 16) * 64, Size: 1, Seg: trace.Heap, Kind: trace.Read})
		} else {
			scan += 64
			out = append(out, trace.Access{Addr: 1<<30 + scan, Size: 1, Seg: trace.Shard, Kind: trace.Read})
		}
	}
	return out
}

// TestSampledMPKIRescaled pins the trace.Sample contract: metrics computed
// from a stride-n thinned stream must rescale their counts by n (StackDist
// SetStride) before dividing by the EXHAUSTIVE run's instruction count —
// otherwise MPKI comes out ~n times too low. Sampled-and-rescaled MPKI must
// land within a few percent of the exhaustive value on a stream whose reuse
// structure survives thinning.
func TestSampledMPKIRescaled(t *testing.T) {
	const n = 40_000
	const stride = 4
	const instructions = int64(n) * 3 // the same denominator for both profiles
	tr := sampledTrace(n)

	exhaustive := NewStackDist(64)
	exhaustive.Drain(trace.NewSliceStream(tr))

	sampled := NewStackDist(64)
	sampled.Drain(trace.Sample(trace.NewSliceStream(tr), stride))

	const capBytes = 64 * 64 // 64 blocks: hot loop hits, cold scan misses
	full := exhaustive.SegMPKI(trace.Shard, capBytes, instructions) +
		exhaustive.SegMPKI(trace.Heap, capBytes, instructions)

	// Without rescaling, the thinned numerator is ~stride times too small.
	raw := sampled.SegMPKI(trace.Shard, capBytes, instructions) +
		sampled.SegMPKI(trace.Heap, capBytes, instructions)
	if raw > full*0.5 {
		t.Fatalf("unscaled sampled MPKI %.3f vs exhaustive %.3f: expected ~%dx undercount", raw, full, stride)
	}

	sampled.SetStride(stride)
	scaled := sampled.SegMPKI(trace.Shard, capBytes, instructions) +
		sampled.SegMPKI(trace.Heap, capBytes, instructions)
	if full <= 0 {
		t.Fatal("exhaustive MPKI is zero; test trace broken")
	}
	if rel := math.Abs(scaled-full) / full; rel > 0.05 {
		t.Errorf("stride-rescaled MPKI %.3f vs exhaustive %.3f: relative error %.3f > 0.05", scaled, full, rel)
	}

	// Hit RATES are ratios and must be stride-invariant (close, not exact:
	// thinning shortens distances slightly).
	hf := exhaustive.HitRate(trace.Heap, capBytes)
	hs := sampled.HitRate(trace.Heap, capBytes)
	if math.Abs(hf-hs) > 0.05 {
		t.Errorf("heap hit rate drifted under sampling: %.3f vs %.3f", hs, hf)
	}
	// And SetStride must not change a profile's own hit rate.
	if got := sampled.HitRate(trace.Heap, capBytes); math.Abs(got-hs) > 1e-12 {
		t.Errorf("SetStride changed HitRate: %v vs %v", got, hs)
	}
}
