package cache

import "searchmem/internal/trace"

// MultiSim advances N independent hierarchies over one trace in a single
// pass: each decoded batch is replayed through every hierarchy before the
// next batch is fetched. Capacity/associativity sweeps evaluate many
// configurations over the same memoized trace; draining them one-by-one
// streams the full recording (hundreds of MiB) from DRAM once per
// configuration, while MultiSim streams it once total — each batch (128 KiB
// of accesses) stays CPU-cache-resident while all N hierarchies consume it.
//
// Determinism: each hierarchy is an independent state machine that observes
// exactly the access sequence a standalone Drain would deliver, in the same
// order — the batch boundaries only decide when the shared stream is
// decoded, never what each hierarchy sees. Results are therefore
// bit-identical to N separate drains regardless of N, batch size, or the
// order hierarchies appear in the slice.
//
// MultiSim is not safe for concurrent use (neither are its hierarchies).
type MultiSim struct {
	hs []*Hierarchy
}

// NewMultiSim builds a driver over the given hierarchies. The slice is
// retained; it must not be mutated afterwards.
func NewMultiSim(hs ...*Hierarchy) *MultiSim {
	return &MultiSim{hs: hs}
}

// Hierarchies returns the driven hierarchies in drive order.
func (m *MultiSim) Hierarchies() []*Hierarchy { return m.hs }

// DrainSlice replays one batch through every hierarchy. The batch is
// read-only (it may be a zero-copy window of a shared immutable trace) and
// fully consumed before return, honoring the trace.BatchStream contract.
func (m *MultiSim) DrainSlice(batch []trace.Access) {
	for _, h := range m.hs {
		h.AccessBatch(batch, nil)
	}
}

// Drain replays an entire batched stream through every hierarchy,
// single-pass: the stream is decoded once per batch, not once per
// hierarchy.
//
//lint:hot
func (m *MultiSim) Drain(bs trace.BatchStream) {
	for {
		b := bs.NextBatch()
		if len(b) == 0 {
			return
		}
		m.DrainSlice(b)
	}
}
