// Package cache implements the trace-driven functional cache simulator used
// throughout the reproduction.
//
// It mirrors the simulator described in §III-A of the paper: inclusive and
// non-inclusive caches, configurable allocation policies, associativities and
// block sizes, LRU replacement, no coherence (production search has
// negligible read-write sharing between threads), and miss-rate/MPKI output
// rather than timing (timing comes from the analytical model in
// internal/model).
package cache

import (
	"fmt"

	"searchmem/internal/trace"
)

// AccessStats accumulates hit/miss counts per segment and access kind for
// one cache (or one aggregated level).
type AccessStats struct {
	Hits   [trace.NumSegments][trace.NumKinds]int64
	Misses [trace.NumSegments][trace.NumKinds]int64
	// WritebackFills counts blocks installed by dirty writebacks from an
	// upper level rather than by demand fills (kept separate so they do
	// not distort demand hit rates).
	WritebackFills int64
	// BackInvalidations counts lines invalidated to preserve inclusion.
	BackInvalidations int64
	// PredHits counts level-prediction verifications this cache confirmed;
	// PredMispredicts counts mispredictions charged to it (a wasted
	// verification probe here, or — for a wrong memory bypass — the access
	// this level serviced). PredSkips counts serial probes of this cache a
	// verified prediction avoided. All three are overlay accounting: the
	// Hits/Misses counters are measured by the authoritative probe chain
	// and are identical predictor-on and predictor-off (DESIGN.md §15).
	PredHits, PredMispredicts, PredSkips int64
}

// Add accumulates other into s.
func (s *AccessStats) Add(other *AccessStats) {
	for seg := 0; seg < trace.NumSegments; seg++ {
		for k := 0; k < trace.NumKinds; k++ {
			s.Hits[seg][k] += other.Hits[seg][k]
			s.Misses[seg][k] += other.Misses[seg][k]
		}
	}
	s.WritebackFills += other.WritebackFills
	s.BackInvalidations += other.BackInvalidations
	s.PredHits += other.PredHits
	s.PredMispredicts += other.PredMispredicts
	s.PredSkips += other.PredSkips
}

// record tallies one probe outcome.
func (s *AccessStats) record(seg trace.Segment, kind trace.Kind, hit bool) {
	if hit {
		s.Hits[seg][kind]++
	} else {
		s.Misses[seg][kind]++
	}
}

// SegHits returns total hits for one segment across kinds.
func (s AccessStats) SegHits(seg trace.Segment) int64 {
	var t int64
	for k := 0; k < trace.NumKinds; k++ {
		t += s.Hits[seg][k]
	}
	return t
}

// SegMisses returns total misses for one segment across kinds.
func (s AccessStats) SegMisses(seg trace.Segment) int64 {
	var t int64
	for k := 0; k < trace.NumKinds; k++ {
		t += s.Misses[seg][k]
	}
	return t
}

// TotalHits returns hits across all segments and kinds.
func (s AccessStats) TotalHits() int64 {
	var t int64
	for seg := 0; seg < trace.NumSegments; seg++ {
		t += s.SegHits(trace.Segment(seg))
	}
	return t
}

// TotalMisses returns misses across all segments and kinds.
func (s AccessStats) TotalMisses() int64 {
	var t int64
	for seg := 0; seg < trace.NumSegments; seg++ {
		t += s.SegMisses(trace.Segment(seg))
	}
	return t
}

// Accesses returns the total number of demand probes.
func (s AccessStats) Accesses() int64 { return s.TotalHits() + s.TotalMisses() }

// HitRate returns the overall demand hit rate, or 0 with no accesses.
func (s AccessStats) HitRate() float64 {
	a := s.Accesses()
	if a == 0 {
		return 0
	}
	return float64(s.TotalHits()) / float64(a)
}

// SegHitRate returns the hit rate for one segment, or 0 with no accesses.
func (s AccessStats) SegHitRate(seg trace.Segment) float64 {
	h, m := s.SegHits(seg), s.SegMisses(seg)
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// MPKI returns total misses per kilo-instruction.
func (s AccessStats) MPKI(instructions int64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(s.TotalMisses()) / float64(instructions) * 1000
}

// SegMPKI returns one segment's misses per kilo-instruction.
func (s AccessStats) SegMPKI(seg trace.Segment, instructions int64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(s.SegMisses(seg)) / float64(instructions) * 1000
}

// KindMisses returns total misses for one access kind across segments.
func (s AccessStats) KindMisses(kind trace.Kind) int64 {
	var t int64
	for seg := 0; seg < trace.NumSegments; seg++ {
		t += s.Misses[seg][kind]
	}
	return t
}

// KindMPKI returns one kind's misses per kilo-instruction (e.g. the paper's
// "L2 instruction MPKI" is KindMPKI(trace.Fetch, instrs)).
func (s AccessStats) KindMPKI(kind trace.Kind, instructions int64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(s.KindMisses(kind)) / float64(instructions) * 1000
}

// String implements fmt.Stringer with a compact per-segment summary.
func (s AccessStats) String() string {
	return fmt.Sprintf("hits=%d misses=%d hitRate=%.2f%%",
		s.TotalHits(), s.TotalMisses(), 100*s.HitRate())
}
