package cache

import (
	"testing"
	"testing/quick"

	"searchmem/internal/stats"
	"searchmem/internal/trace"
)

func smallCfg(assoc int) Config {
	return Config{Name: "test", Size: 1024, BlockSize: 64, Assoc: assoc}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Size: 0, BlockSize: 64, Assoc: 4},
		{Size: 1024, BlockSize: 0, Assoc: 4},
		{Size: 1024, BlockSize: 48, Assoc: 4},
		{Size: 1024, BlockSize: 64, Assoc: -1},
		{Size: 1024, BlockSize: 64, Assoc: 5},               // 16 blocks not divisible by 5
		{Size: 1024, BlockSize: 64, Assoc: 4, AllocWays: 5}, // AllocWays > Assoc
		{Size: 32, BlockSize: 64, Assoc: 0},                 // smaller than a block
		{Size: 1024, BlockSize: 64, Assoc: 0, AllocWays: 2},
		{Size: 1024, BlockSize: 64, Assoc: 0, Policy: Random},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	good := []Config{
		smallCfg(4),
		smallCfg(1),  // direct-mapped
		smallCfg(0),  // fully associative
		smallCfg(16), // single set
		{Size: 45 << 20, BlockSize: 64, Assoc: 20}, // PLT1 L3: non-power-of-two sets
	}
	for i, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("case %d: valid config rejected: %v", i, err)
		}
	}
}

func TestBasicHitMiss(t *testing.T) {
	for _, assoc := range []int{0, 1, 4} {
		c := New(smallCfg(assoc))
		if c.Access(5, trace.Heap, trace.Read) {
			t.Fatalf("assoc=%d: empty cache hit", assoc)
		}
		c.Fill(5, trace.Heap, false)
		if !c.Access(5, trace.Heap, trace.Read) {
			t.Fatalf("assoc=%d: filled block missed", assoc)
		}
		if c.Stats.TotalHits() != 1 || c.Stats.TotalMisses() != 1 {
			t.Fatalf("assoc=%d: stats %+v", assoc, c.Stats)
		}
	}
}

func TestLRUEviction(t *testing.T) {
	// 1024 B / 64 B / 16-way = one set of 16 ways.
	c := New(smallCfg(16))
	for b := uint64(0); b < 16; b++ {
		c.Fill(b, trace.Heap, false)
	}
	// Touch block 0 so block 1 becomes LRU.
	if !c.Access(0, trace.Heap, trace.Read) {
		t.Fatal("block 0 should hit")
	}
	ev, ok := c.Fill(100, trace.Heap, false)
	if !ok || ev.BlockAddr != 1 {
		t.Fatalf("expected eviction of block 1, got %+v ok=%v", ev, ok)
	}
	if c.Contains(1) {
		t.Fatal("evicted block still present")
	}
	if !c.Contains(0) || !c.Contains(100) {
		t.Fatal("resident blocks missing")
	}
}

func TestFIFOIgnoresReuse(t *testing.T) {
	cfg := smallCfg(16)
	cfg.Policy = FIFO
	c := New(cfg)
	for b := uint64(0); b < 16; b++ {
		c.Fill(b, trace.Heap, false)
	}
	// Reusing block 0 must NOT save it under FIFO.
	c.Access(0, trace.Heap, trace.Read)
	ev, ok := c.Fill(100, trace.Heap, false)
	if !ok || ev.BlockAddr != 0 {
		t.Fatalf("FIFO should evict oldest (0), got %+v", ev)
	}
}

func TestRandomPolicyEvictsWithinSet(t *testing.T) {
	cfg := smallCfg(16)
	cfg.Policy = Random
	cfg.Seed = 3
	c := New(cfg)
	for b := uint64(0); b < 16; b++ {
		c.Fill(b, trace.Heap, false)
	}
	ev, ok := c.Fill(100, trace.Heap, false)
	if !ok || ev.BlockAddr >= 16 {
		t.Fatalf("random eviction out of range: %+v ok=%v", ev, ok)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	// 1024 B direct-mapped has 16 sets: blocks 0 and 16 collide.
	c := New(smallCfg(1))
	c.Fill(0, trace.Heap, false)
	ev, ok := c.Fill(16, trace.Heap, false)
	if !ok || ev.BlockAddr != 0 {
		t.Fatalf("direct-mapped conflict not evicted: %+v ok=%v", ev, ok)
	}
	// Non-colliding block must not evict.
	if _, ok := c.Fill(1, trace.Heap, false); ok {
		t.Fatal("non-conflicting fill evicted")
	}
}

func TestDirtyWritebackFlag(t *testing.T) {
	for _, assoc := range []int{0, 16} {
		c := New(smallCfg(assoc))
		c.Fill(7, trace.Heap, true)
		// Fill the rest, then force eviction of everything; the dirty line
		// must come out dirty.
		for b := uint64(100); b < 116; b++ {
			c.Fill(b, trace.Heap, false)
		}
		found := false
		c2 := New(smallCfg(assoc))
		c2.OnEvict = func(l Line) {
			if l.BlockAddr == 7 && l.Dirty {
				found = true
			}
		}
		c2.Fill(7, trace.Heap, true)
		for b := uint64(100); b < 132; b++ {
			c2.Fill(b, trace.Heap, false)
		}
		if !found {
			t.Fatalf("assoc=%d: dirty eviction not observed", assoc)
		}
	}
}

func TestWriteMarksDirty(t *testing.T) {
	for _, assoc := range []int{0, 4} {
		c := New(smallCfg(assoc))
		c.Fill(3, trace.Heap, false)
		c.Access(3, trace.Heap, trace.Write)
		line, present := c.Invalidate(3)
		if !present || !line.Dirty {
			t.Fatalf("assoc=%d: write did not mark dirty: %+v", assoc, line)
		}
	}
}

func TestMarkDirty(t *testing.T) {
	for _, assoc := range []int{0, 4} {
		c := New(smallCfg(assoc))
		if c.MarkDirty(9) {
			t.Fatalf("assoc=%d: MarkDirty on absent block", assoc)
		}
		c.Fill(9, trace.Heap, false)
		if !c.MarkDirty(9) {
			t.Fatalf("assoc=%d: MarkDirty on resident block failed", assoc)
		}
		line, _ := c.Invalidate(9)
		if !line.Dirty {
			t.Fatalf("assoc=%d: dirty flag lost", assoc)
		}
	}
}

func TestInvalidate(t *testing.T) {
	for _, assoc := range []int{0, 4} {
		c := New(smallCfg(assoc))
		if _, present := c.Invalidate(11); present {
			t.Fatalf("assoc=%d: invalidate on empty cache", assoc)
		}
		c.Fill(11, trace.Shard, true)
		line, present := c.Invalidate(11)
		if !present || line.BlockAddr != 11 || !line.Dirty || line.Seg != trace.Shard {
			t.Fatalf("assoc=%d: bad invalidated line %+v", assoc, line)
		}
		if c.Contains(11) {
			t.Fatalf("assoc=%d: block present after invalidate", assoc)
		}
	}
}

func TestFillExistingDoesNotEvict(t *testing.T) {
	for _, assoc := range []int{0, 4} {
		c := New(smallCfg(assoc))
		c.Fill(5, trace.Heap, false)
		if _, ok := c.Fill(5, trace.Heap, true); ok {
			t.Fatalf("assoc=%d: refill evicted", assoc)
		}
		// The refill's dirty flag must stick.
		line, _ := c.Invalidate(5)
		if !line.Dirty {
			t.Fatalf("assoc=%d: refill dropped dirty flag", assoc)
		}
		if c.Occupancy() != 0 {
			t.Fatalf("assoc=%d: occupancy %d", assoc, c.Occupancy())
		}
	}
}

func TestCATPartitioning(t *testing.T) {
	// 16 ways but only 4 allocatable: effective capacity is 4 blocks.
	cfg := smallCfg(16)
	cfg.AllocWays = 4
	c := New(cfg)
	if c.EffectiveSize() != 256 {
		t.Fatalf("effective size %d, want 256", c.EffectiveSize())
	}
	for b := uint64(0); b < 5; b++ {
		c.Fill(b, trace.Heap, false)
	}
	if c.Occupancy() != 4 {
		t.Fatalf("CAT cache holds %d blocks, want 4", c.Occupancy())
	}
	if c.Contains(0) {
		t.Fatal("LRU victim not evicted under partitioning")
	}
}

func TestFullyAssocLRUOrder(t *testing.T) {
	c := New(smallCfg(0)) // 16 blocks
	for b := uint64(0); b < 16; b++ {
		c.Fill(b, trace.Heap, false)
	}
	// Touch 0..7, making 8 the LRU.
	for b := uint64(0); b < 8; b++ {
		c.Access(b, trace.Heap, trace.Read)
	}
	ev, ok := c.Fill(999, trace.Heap, false)
	if !ok || ev.BlockAddr != 8 {
		t.Fatalf("FA LRU evicted %+v, want block 8", ev)
	}
}

func TestResetClears(t *testing.T) {
	for _, assoc := range []int{0, 4} {
		c := New(smallCfg(assoc))
		c.Fill(1, trace.Heap, false)
		c.Access(1, trace.Heap, trace.Read)
		c.Reset()
		if c.Occupancy() != 0 || c.Stats.Accesses() != 0 {
			t.Fatalf("assoc=%d: reset incomplete", assoc)
		}
		if c.Access(1, trace.Heap, trace.Read) {
			t.Fatalf("assoc=%d: hit after reset", assoc)
		}
	}
}

// TestLRUInclusionProperty verifies Mattson's inclusion property: on the
// same trace, a larger fully-associative LRU cache never has fewer hits.
func TestLRUInclusionProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		z := stats.NewZipf(rng, 512, 0.8)
		blocks := make([]uint64, 4000)
		for i := range blocks {
			blocks[i] = z.Next()
		}
		hits := func(capBlocks int64) int64 {
			c := New(Config{Name: "p", Size: capBlocks * 64, BlockSize: 64, Assoc: 0})
			var h int64
			for _, b := range blocks {
				if c.Access(b, trace.Heap, trace.Read) {
					h++
				} else {
					c.Fill(b, trace.Heap, false)
				}
			}
			return h
		}
		prev := int64(-1)
		for _, capBlocks := range []int64{4, 16, 64, 256, 1024} {
			h := hits(capBlocks)
			if h < prev {
				return false
			}
			prev = h
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestStatsConservation: hits + misses == accesses, for arbitrary streams.
func TestStatsConservation(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		c := New(smallCfg(4))
		const n = 2000
		for i := 0; i < n; i++ {
			b := rng.Uint64n(64)
			seg := trace.Segment(rng.Intn(trace.NumSegments))
			kind := trace.Kind(rng.Intn(trace.NumKinds))
			if !c.Access(b, seg, kind) {
				c.Fill(b, seg, kind == trace.Write)
			}
		}
		return c.Stats.Accesses() == n &&
			c.Stats.TotalHits()+c.Stats.TotalMisses() == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestSetAssocVsFullyAssocSameCapacity: on a uniform stream a fully
// associative cache hits at least nearly as often as a set-associative one
// of the same size (conflicts only hurt).
func TestFullAssocNoWorseOnAverage(t *testing.T) {
	rng := stats.NewRNG(99)
	z := stats.NewZipf(rng, 2048, 0.9)
	blocks := make([]uint64, 30000)
	for i := range blocks {
		blocks[i] = z.Next()
	}
	run := func(assoc int) int64 {
		c := New(Config{Name: "x", Size: 16 << 10, BlockSize: 64, Assoc: assoc})
		var h int64
		for _, b := range blocks {
			if c.Access(b, trace.Heap, trace.Read) {
				h++
			} else {
				c.Fill(b, trace.Heap, false)
			}
		}
		return h
	}
	faHits, dmHits := run(0), run(1)
	if faHits < dmHits {
		t.Fatalf("fully-assoc hits %d < direct-mapped hits %d on Zipf stream", faHits, dmHits)
	}
}

func TestOccupancyNeverExceedsCapacity(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		for _, assoc := range []int{0, 1, 4} {
			c := New(smallCfg(assoc))
			for i := 0; i < 500; i++ {
				c.Fill(rng.Uint64n(1000), trace.Heap, rng.Bool(0.3))
				if c.Occupancy() > 16 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "LRU" || FIFO.String() != "FIFO" || Random.String() != "random" {
		t.Fatal("policy strings wrong")
	}
	if Policy(9).String() != "policy(9)" {
		t.Fatal("unknown policy string wrong")
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid config did not panic")
		}
	}()
	New(Config{Size: -1, BlockSize: 64, Assoc: 1})
}
