//go:build !race

// Allocation-regression oracles for the //lint:hot simulator kernels. The
// searchlint hotalloc analyzer proves these paths allocation-free statically;
// these tests pin the same property dynamically with testing.AllocsPerRun so
// a regression that slips past the analyzer (compiler change, unsummarized
// callee, heuristic blind spot) still fails CI. Excluded under -race because
// race instrumentation inserts allocations of its own.

package cache

import (
	"testing"

	"searchmem/internal/det"
	"searchmem/internal/trace"
)

// requireZeroAllocs runs f through testing.AllocsPerRun (which performs one
// warm-up call before measuring, absorbing any one-time lazy growth) and
// fails if steady-state allocations are nonzero.
func requireZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(10, f); avg != 0 {
		t.Errorf("%s: %.1f allocs/op, want 0", name, avg)
	}
}

// TestCacheAccessBatchZeroAlloc pins the standalone single-level kernel,
// including the fully-associative path whose free/node arrays are
// preallocated in New precisely so this holds.
func TestCacheAccessBatchZeroAlloc(t *testing.T) {
	batch := batchEquivTrace(11, 4096, 2)
	configs := map[string]Config{
		"setassoc": {Size: 8 << 10, BlockSize: 64, Assoc: 4},
		"fifo":     {Size: 8 << 10, BlockSize: 64, Assoc: 4, Policy: FIFO},
		"random":   {Size: 8 << 10, BlockSize: 64, Assoc: 4, Policy: Random, Seed: 3},
		"srrip":    {Size: 8 << 10, BlockSize: 64, Assoc: 4, Policy: SRRIP},
		"brrip":    {Size: 8 << 10, BlockSize: 64, Assoc: 4, Policy: BRRIP, Seed: 5},
		"drrip":    {Size: 8 << 10, BlockSize: 64, Assoc: 4, Policy: DRRIP, Seed: 6},
		"srrip+db": {Size: 8 << 10, BlockSize: 64, Assoc: 4, Policy: SRRIP, DeadBlock: true},
		"fa":       {Size: 4 << 10, BlockSize: 64, Assoc: 0},
	}
	for _, name := range det.SortedKeys(configs) {
		c := New(configs[name])
		requireZeroAllocs(t, name, func() {
			c.AccessBatch(batch)
		})
	}
}

// TestHierarchyAccessBatchZeroAlloc drives the full-hierarchy batched kernel
// across every equivalence-suite configuration (policies, L4 variants, split
// L2s, fully-associative levels), both with nil levels and with a
// caller-provided cap-sized levels slice (the documented no-growth contract).
func TestHierarchyAccessBatchZeroAlloc(t *testing.T) {
	batch := batchEquivTrace(12, 4096, 2)
	cfgs := equivConfigs()
	for _, name := range det.SortedKeys(cfgs) {
		h := NewHierarchy(cfgs[name])
		requireZeroAllocs(t, name+"/nil-levels", func() {
			h.AccessBatch(batch, nil)
		})
		levels := make([]HitLevel, 0, len(batch))
		requireZeroAllocs(t, name+"/cap-levels", func() {
			levels = h.AccessBatch(batch, levels[:0])
		})
		if len(levels) != len(batch) {
			t.Fatalf("%s: %d levels for %d accesses", name, len(levels), len(batch))
		}
	}
}

// TestMultiSimDrainZeroAlloc pins the sweep driver end to end: one shared
// flat recording decoded once per batch, replayed through several
// hierarchies per batch.
func TestMultiSimDrainZeroAlloc(t *testing.T) {
	shared := trace.NewShared(batchEquivTrace(13, 20_000, 2))
	m := NewMultiSim(
		NewHierarchy(tinyHierarchy(2, nil)),
		NewHierarchy(tinyHierarchy(2, &Config{Size: 32 << 10, BlockSize: 64, Assoc: 4})),
	)
	v := shared.View()
	requireZeroAllocs(t, "multisim", func() {
		v.Rewind()
		m.Drain(v)
	})
}
