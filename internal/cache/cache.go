package cache

import (
	"fmt"

	"searchmem/internal/stats"
	"searchmem/internal/trace"
)

// Policy selects the replacement policy of a cache.
type Policy uint8

const (
	// LRU evicts the least-recently-used line (the paper's simulator uses
	// LRU everywhere).
	LRU Policy = iota
	// FIFO evicts the oldest-filled line regardless of reuse.
	FIFO
	// Random evicts a uniformly random line (ablation baseline).
	Random
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// Config describes one cache.
type Config struct {
	// Name is used in reports ("L1-I", "L3", ...).
	Name string
	// Size is the capacity in bytes.
	Size int64
	// BlockSize is the line size in bytes (a power of two).
	BlockSize int
	// Assoc is the number of ways per set; 0 requests a fully-associative
	// cache and 1 a direct-mapped one.
	Assoc int
	// Policy is the replacement policy (fully-associative caches support
	// LRU and FIFO only).
	Policy Policy
	// AllocWays, when non-zero, restricts allocation to the first
	// AllocWays ways of each set. This models Intel CAT way-partitioning
	// exactly as the paper uses it: capacity and associativity shrink
	// together (§III-D, §IV-B).
	AllocWays int
	// Seed seeds the Random replacement policy.
	Seed uint64
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	if c.Size <= 0 {
		return fmt.Errorf("cache %q: size must be positive", c.Name)
	}
	if c.BlockSize <= 0 || c.BlockSize&(c.BlockSize-1) != 0 {
		return fmt.Errorf("cache %q: block size %d must be a positive power of two", c.Name, c.BlockSize)
	}
	if c.Assoc < 0 {
		return fmt.Errorf("cache %q: negative associativity", c.Name)
	}
	blocks := c.Size / int64(c.BlockSize)
	if blocks == 0 {
		return fmt.Errorf("cache %q: size smaller than one block", c.Name)
	}
	if c.Assoc > 0 {
		if blocks%int64(c.Assoc) != 0 {
			return fmt.Errorf("cache %q: %d blocks not divisible by %d ways", c.Name, blocks, c.Assoc)
		}
		if c.AllocWays < 0 || c.AllocWays > c.Assoc {
			return fmt.Errorf("cache %q: AllocWays %d out of range [0,%d]", c.Name, c.AllocWays, c.Assoc)
		}
	} else {
		if c.AllocWays != 0 {
			return fmt.Errorf("cache %q: AllocWays unsupported for fully-associative caches", c.Name)
		}
		if c.Policy == Random {
			return fmt.Errorf("cache %q: random replacement unsupported for fully-associative caches", c.Name)
		}
	}
	return nil
}

// Line describes a block held in (or evicted from) a cache.
type Line struct {
	// BlockAddr is the address of the block in block units (addr >> log2(blockSize)).
	BlockAddr uint64
	// Dirty reports whether the block holds unwritten modifications.
	Dirty bool
	// Seg is the segment of the access that installed the block.
	Seg trace.Segment
}

// slot is one way of one set in the array-backed store.
type slot struct {
	tag   uint64 // full block address (cheaper than true tag extraction)
	stamp uint64 // recency (LRU) or fill-order (FIFO) stamp
	seg   trace.Segment
	valid bool
	dirty bool
}

// faNode is one entry of the fully-associative store's intrusive LRU list.
type faNode struct {
	line       Line
	prev, next int32
}

// Cache is a single functional cache. It is not safe for concurrent use.
type Cache struct {
	cfg        Config
	blockShift uint
	numSets    int
	assoc      int
	allocWays  int

	// array-backed set-associative storage (assoc > 0)
	slots []slot
	clock uint64

	// map-backed fully-associative storage (assoc == 0)
	faCap   int
	faIndex map[uint64]int32
	faNodes []faNode
	faHead  int32 // most recent
	faTail  int32 // least recent
	faFree  []int32

	rng *stats.RNG

	// Stats accumulates demand hit/miss counts.
	Stats AccessStats

	// OnEvict, when set, is invoked for every valid line evicted by a
	// fill (demand or writeback). It is the hook the hierarchy uses for
	// inclusive back-invalidation and L4 victim fills.
	OnEvict func(Line)
}

// New builds a cache from cfg. It panics on an invalid configuration;
// callers constructing configs from external input should call
// cfg.Validate first.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cache{cfg: cfg, rng: stats.NewRNG(cfg.Seed ^ 0x5eedcafe)}
	for bs := cfg.BlockSize; bs > 1; bs >>= 1 {
		c.blockShift++
	}
	blocks := int(cfg.Size / int64(cfg.BlockSize))
	if cfg.Assoc == 0 {
		c.faCap = blocks
		c.faIndex = make(map[uint64]int32, blocks)
		c.faHead, c.faTail = -1, -1
		return c
	}
	c.assoc = cfg.Assoc
	c.allocWays = cfg.AllocWays
	if c.allocWays == 0 {
		c.allocWays = cfg.Assoc
	}
	c.numSets = blocks / cfg.Assoc
	c.slots = make([]slot, blocks)
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// BlockAddr converts a byte address to this cache's block address.
func (c *Cache) BlockAddr(addr uint64) uint64 { return addr >> c.blockShift }

// BlockShift returns log2(block size).
func (c *Cache) BlockShift() uint { return c.blockShift }

// EffectiveSize returns the allocatable capacity in bytes (reduced when
// way-partitioning is active).
func (c *Cache) EffectiveSize() int64 {
	if c.assoc == 0 {
		return c.cfg.Size
	}
	return c.cfg.Size * int64(c.allocWays) / int64(c.assoc)
}

// Access probes for block; on a hit it updates recency (and dirtiness for
// writes) and returns true. On a miss it records the miss and returns false
// WITHOUT filling: the hierarchy decides when and what to fill so that fill
// ordering across levels is explicit.
func (c *Cache) Access(block uint64, seg trace.Segment, kind trace.Kind) bool {
	hit := c.touch(block, kind == trace.Write)
	c.Stats.record(seg, kind, hit)
	return hit
}

// touch probes and updates recency/dirty without recording stats.
func (c *Cache) touch(block uint64, write bool) bool {
	if c.assoc == 0 {
		idx, ok := c.faIndex[block]
		if !ok {
			return false
		}
		if write {
			c.faNodes[idx].line.Dirty = true
		}
		if c.cfg.Policy == LRU {
			c.faMoveToFront(idx)
		}
		return true
	}
	set := c.setFor(block)
	for i := range set {
		if set[i].valid && set[i].tag == block {
			if write {
				set[i].dirty = true
			}
			if c.cfg.Policy == LRU {
				c.clock++
				set[i].stamp = c.clock
			}
			return true
		}
	}
	return false
}

// Contains reports whether block is present without perturbing recency or
// stats.
func (c *Cache) Contains(block uint64) bool {
	if c.assoc == 0 {
		_, ok := c.faIndex[block]
		return ok
	}
	set := c.setFor(block)
	for i := range set {
		if set[i].valid && set[i].tag == block {
			return true
		}
	}
	return false
}

// Fill installs block (e.g. after a miss was serviced by a lower level).
// If a valid line is displaced it is returned with ok = true, and OnEvict
// (if set) is invoked for it. Filling a block that is already present only
// updates its metadata.
func (c *Cache) Fill(block uint64, seg trace.Segment, dirty bool) (evicted Line, ok bool) {
	if c.assoc == 0 {
		return c.faFill(block, seg, dirty)
	}
	set := c.setFor(block)
	// Already present (e.g. race between writeback and demand fill).
	for i := range set {
		if set[i].valid && set[i].tag == block {
			set[i].dirty = set[i].dirty || dirty
			return Line{}, false
		}
	}
	victim := -1
	for i := 0; i < c.allocWays; i++ {
		if !set[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		switch c.cfg.Policy {
		case Random:
			victim = c.rng.Intn(c.allocWays)
		default: // LRU and FIFO both evict the minimum stamp
			victim = 0
			for i := 1; i < c.allocWays; i++ {
				if set[i].stamp < set[victim].stamp {
					victim = i
				}
			}
		}
		evicted = Line{BlockAddr: set[victim].tag, Dirty: set[victim].dirty, Seg: set[victim].seg}
		ok = true
	}
	c.clock++
	set[victim] = slot{tag: block, stamp: c.clock, seg: seg, valid: true, dirty: dirty}
	if ok && c.OnEvict != nil {
		c.OnEvict(evicted)
	}
	return evicted, ok
}

// Invalidate removes block if present, returning its line. Used for
// inclusive back-invalidation.
func (c *Cache) Invalidate(block uint64) (line Line, present bool) {
	if c.assoc == 0 {
		idx, ok := c.faIndex[block]
		if !ok {
			return Line{}, false
		}
		line = c.faNodes[idx].line
		c.faRemove(idx)
		return line, true
	}
	set := c.setFor(block)
	for i := range set {
		if set[i].valid && set[i].tag == block {
			line = Line{BlockAddr: set[i].tag, Dirty: set[i].dirty, Seg: set[i].seg}
			set[i] = slot{}
			return line, true
		}
	}
	return Line{}, false
}

// MarkDirty sets the dirty bit if block is present, returning whether it
// was. Used for writebacks landing on a resident line.
func (c *Cache) MarkDirty(block uint64) bool {
	if c.assoc == 0 {
		if idx, ok := c.faIndex[block]; ok {
			c.faNodes[idx].line.Dirty = true
			return true
		}
		return false
	}
	set := c.setFor(block)
	for i := range set {
		if set[i].valid && set[i].tag == block {
			set[i].dirty = true
			return true
		}
	}
	return false
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	if c.assoc == 0 {
		return len(c.faIndex)
	}
	n := 0
	for i := range c.slots {
		if c.slots[i].valid {
			n++
		}
	}
	return n
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	c.Stats = AccessStats{}
	c.clock = 0
	if c.assoc == 0 {
		c.faIndex = make(map[uint64]int32, c.faCap)
		c.faNodes = c.faNodes[:0]
		c.faFree = c.faFree[:0]
		c.faHead, c.faTail = -1, -1
		return
	}
	for i := range c.slots {
		c.slots[i] = slot{}
	}
}

func (c *Cache) setFor(block uint64) []slot {
	s := int(block % uint64(c.numSets))
	return c.slots[s*c.assoc : (s+1)*c.assoc]
}

// --- fully-associative store ---

func (c *Cache) faFill(block uint64, seg trace.Segment, dirty bool) (evicted Line, ok bool) {
	if idx, present := c.faIndex[block]; present {
		c.faNodes[idx].line.Dirty = c.faNodes[idx].line.Dirty || dirty
		return Line{}, false
	}
	if len(c.faIndex) >= c.faCap {
		victim := c.faTail
		evicted = c.faNodes[victim].line
		ok = true
		c.faRemove(victim)
	}
	var idx int32
	if n := len(c.faFree); n > 0 {
		idx = c.faFree[n-1]
		c.faFree = c.faFree[:n-1]
		c.faNodes[idx] = faNode{line: Line{BlockAddr: block, Dirty: dirty, Seg: seg}}
	} else {
		idx = int32(len(c.faNodes))
		c.faNodes = append(c.faNodes, faNode{line: Line{BlockAddr: block, Dirty: dirty, Seg: seg}})
	}
	c.faPushFront(idx)
	c.faIndex[block] = idx
	if ok && c.OnEvict != nil {
		c.OnEvict(evicted)
	}
	return evicted, ok
}

func (c *Cache) faPushFront(idx int32) {
	c.faNodes[idx].prev = -1
	c.faNodes[idx].next = c.faHead
	if c.faHead >= 0 {
		c.faNodes[c.faHead].prev = idx
	}
	c.faHead = idx
	if c.faTail < 0 {
		c.faTail = idx
	}
}

func (c *Cache) faUnlink(idx int32) {
	n := c.faNodes[idx]
	if n.prev >= 0 {
		c.faNodes[n.prev].next = n.next
	} else {
		c.faHead = n.next
	}
	if n.next >= 0 {
		c.faNodes[n.next].prev = n.prev
	} else {
		c.faTail = n.prev
	}
}

func (c *Cache) faMoveToFront(idx int32) {
	if c.faHead == idx {
		return
	}
	c.faUnlink(idx)
	c.faPushFront(idx)
}

func (c *Cache) faRemove(idx int32) {
	delete(c.faIndex, c.faNodes[idx].line.BlockAddr)
	c.faUnlink(idx)
	c.faFree = append(c.faFree, idx)
}
