package cache

import (
	"fmt"
	"strings"

	"searchmem/internal/stats"
	"searchmem/internal/trace"
)

// Policy selects the replacement policy of a cache.
type Policy uint8

const (
	// LRU evicts the least-recently-used line (the paper's simulator uses
	// LRU everywhere).
	LRU Policy = iota
	// FIFO evicts the oldest-filled line regardless of reuse.
	FIFO
	// Random evicts a uniformly random line (ablation baseline).
	Random
	// SRRIP is static re-reference interval prediction (Jaleel et al.):
	// 2-bit RRPVs, insertion at "long" (RRPV 2), promotion to "imminent"
	// (RRPV 0) on hit, eviction of the leftmost "distant" (RRPV 3) way.
	SRRIP
	// BRRIP is bimodal RRIP: like SRRIP but inserting at "distant" except
	// for a seeded 1-in-32 chance of "long", which protects the cache from
	// scanning patterns larger than it.
	BRRIP
	// DRRIP set-duels SRRIP against BRRIP: a few leader sets run each
	// policy and a saturating PSEL counter, trained on leader-set misses,
	// picks the insertion policy for all follower sets.
	DRRIP

	// numPolicies bounds the valid Policy values for validation.
	numPolicies
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case Random:
		return "random"
	case SRRIP:
		return "SRRIP"
	case BRRIP:
		return "BRRIP"
	case DRRIP:
		return "DRRIP"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// ParsePolicy converts a policy name (as printed by Policy.String, matched
// case-insensitively) back to its value. Unknown names are an error — CLI
// flags must reject them rather than silently falling back to LRU.
func ParsePolicy(name string) (Policy, error) {
	for p := LRU; p < numPolicies; p++ {
		if strings.EqualFold(name, p.String()) {
			return p, nil
		}
	}
	return 0, fmt.Errorf("cache: unknown replacement policy %q (valid: %s)", name, PolicyNames())
}

// PolicyNames lists the valid policy names, comma-separated, for flag help
// and error messages.
func PolicyNames() string {
	names := make([]string, 0, int(numPolicies))
	for p := LRU; p < numPolicies; p++ {
		names = append(names, p.String())
	}
	return strings.Join(names, ", ")
}

// Stochastic reports whether the policy consumes the seeded RNG (and so
// requires an explicit non-zero Seed for reproducibility): Random victim
// choice, and BRRIP's bimodal insertion (which DRRIP inherits).
func (p Policy) Stochastic() bool {
	return p == Random || p == BRRIP || p == DRRIP
}

// RRIP reports whether the policy keeps 2-bit re-reference predictions in
// the stamp array instead of recency/fill-order stamps.
func (p Policy) RRIP() bool {
	return p == SRRIP || p == BRRIP || p == DRRIP
}

// Config describes one cache.
type Config struct {
	// Name is used in reports ("L1-I", "L3", ...).
	Name string
	// Size is the capacity in bytes.
	Size int64
	// BlockSize is the line size in bytes (a power of two).
	BlockSize int
	// Assoc is the number of ways per set; 0 requests a fully-associative
	// cache and 1 a direct-mapped one.
	Assoc int
	// Policy is the replacement policy (fully-associative caches support
	// LRU and FIFO only).
	Policy Policy
	// AllocWays, when non-zero, restricts allocation to the first
	// AllocWays ways of each set. This models Intel CAT way-partitioning
	// exactly as the paper uses it: capacity and associativity shrink
	// together (§III-D, §IV-B).
	AllocWays int
	// Seed seeds the stochastic policies (Random victim choice, BRRIP and
	// DRRIP bimodal insertion). Required non-zero for those policies.
	Seed uint64
	// DeadBlock enables dead-block-aware insertion for the RRIP policies:
	// a small tag-hashed counter table, trained on evictions, predicts
	// blocks that will not be reused and inserts them at "distant" RRPV so
	// they are evicted first (the cache-hierarchy survey's dead-block
	// bypassing, restricted to insertion-priority form).
	DeadBlock bool
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	if c.Size <= 0 {
		return fmt.Errorf("cache %q: size must be positive", c.Name)
	}
	if c.BlockSize <= 0 || c.BlockSize&(c.BlockSize-1) != 0 {
		return fmt.Errorf("cache %q: block size %d must be a positive power of two", c.Name, c.BlockSize)
	}
	if c.Assoc < 0 {
		return fmt.Errorf("cache %q: negative associativity", c.Name)
	}
	if c.Policy >= numPolicies {
		return fmt.Errorf("cache %q: unknown replacement policy %d (valid: %s)", c.Name, uint8(c.Policy), PolicyNames())
	}
	if c.Policy.Stochastic() && c.Seed == 0 {
		return fmt.Errorf("cache %q: stochastic policy %s requires a non-zero Seed", c.Name, c.Policy)
	}
	if c.DeadBlock && !c.Policy.RRIP() {
		return fmt.Errorf("cache %q: DeadBlock insertion requires an RRIP policy, got %s", c.Name, c.Policy)
	}
	blocks := c.Size / int64(c.BlockSize)
	if blocks == 0 {
		return fmt.Errorf("cache %q: size smaller than one block", c.Name)
	}
	if c.Assoc > 0 {
		if blocks%int64(c.Assoc) != 0 {
			return fmt.Errorf("cache %q: %d blocks not divisible by %d ways", c.Name, blocks, c.Assoc)
		}
		if c.AllocWays < 0 || c.AllocWays > c.Assoc {
			return fmt.Errorf("cache %q: AllocWays %d out of range [0,%d]", c.Name, c.AllocWays, c.Assoc)
		}
	} else {
		if c.AllocWays != 0 {
			return fmt.Errorf("cache %q: AllocWays unsupported for fully-associative caches", c.Name)
		}
		if c.Policy != LRU && c.Policy != FIFO {
			return fmt.Errorf("cache %q: policy %s unsupported for fully-associative caches (LRU and FIFO only)", c.Name, c.Policy)
		}
	}
	return nil
}

// Line describes a block held in (or evicted from) a cache.
type Line struct {
	// BlockAddr is the address of the block in block units (addr >> log2(blockSize)).
	BlockAddr uint64
	// Dirty reports whether the block holds unwritten modifications.
	Dirty bool
	// Seg is the segment of the access that installed the block.
	Seg trace.Segment
}

// The set-associative store is split structure-of-arrays style: the tags
// and stamps the hot probe loop scans live in their own dense arrays (one
// 8-way set of tags is exactly one 64-byte line), while the rarely-read
// valid/dirty/segment flags are packed into one meta byte per way. The old
// array-of-slots layout pulled 24 bytes per way (three lines per 8-way set
// scan); the SoA split is a large part of the batched kernel's speedup.
const (
	metaValid    = 1 << 0
	metaDirty    = 1 << 1
	metaSegShift = 2 // segment (2 bits) in bits 2-3
	// metaReused marks a line that hit at least once since its fill; the
	// dead-block predictor trains on it at eviction time.
	metaReused = 1 << 4
)

// RRIP parameters. RRPVs live in the same stamps array LRU uses for recency
// (values 0..rrpvMax), so the policies share the SoA layout and the batched
// kernels' inlined probes.
const (
	// rrpvMax is the "distant re-reference" value evicted first.
	rrpvMax = 3
	// rrpvLong is SRRIP's insertion value ("long re-reference interval").
	rrpvLong = 2
	// brripInterval is BRRIP's bimodal rate: 1 in brripInterval fills
	// insert at rrpvLong, the rest at rrpvMax.
	brripInterval = 32
	// duelMask/duelSRRIP/duelBRRIP carve DRRIP leader sets out of the set
	// index: set ≡ duelSRRIP (mod duelMask+1) always inserts SRRIP-style,
	// set ≡ duelBRRIP inserts BRRIP-style; the rest follow PSEL.
	duelMask  = 31
	duelSRRIP = 0
	duelBRRIP = 17
	// pselMax saturates the DRRIP policy-selection counter; values above
	// the midpoint mean the SRRIP leaders are missing more (use BRRIP).
	pselMax = 1023
	// Dead-block predictor table: dbBits-entry 2-bit counters, indexed by
	// a multiplicative hash of the block address. A counter at or above
	// dbDeadAt predicts the block dead on arrival.
	dbBits   = 10
	dbMax    = 3
	dbDeadAt = 2
)

// dbHash maps a block address into the dead-block counter table.
func dbHash(block uint64) uint64 {
	return block * 0x9e3779b97f4a7c15 >> (64 - dbBits)
}

// packMeta builds the meta byte for a valid line.
func packMeta(seg trace.Segment, dirty bool) uint8 {
	m := uint8(metaValid) | uint8(seg)<<metaSegShift
	if dirty {
		m |= metaDirty
	}
	return m
}

// metaSeg extracts the installing segment from a meta byte.
func metaSeg(m uint8) trace.Segment { return trace.Segment(m >> metaSegShift & 3) }

// faNode is one entry of the fully-associative store's intrusive LRU list.
type faNode struct {
	line       Line
	prev, next int32
}

// Cache is a single functional cache. It is not safe for concurrent use.
type Cache struct {
	cfg        Config
	blockShift uint
	numSets    int
	assoc      int
	allocWays  int

	// array-backed set-associative storage (assoc > 0), SoA-split: way w of
	// set s lives at index s*assoc+w in each array.
	tags   []uint64 // full block address (cheaper than true tag extraction)
	stamps []uint64 // recency (LRU) or fill-order (FIFO) stamp
	meta   []uint8  // metaValid | metaDirty | segment<<metaSegShift
	occ    []uint16 // valid lines per set; == allocWays lets fills skip the free-way scan
	clock  uint64
	isLRU  bool // cfg.Policy == LRU, hoisted out of the hot probe
	isRRIP bool // cfg.Policy.RRIP(), hoisted out of the hot probe
	isDB   bool // cfg.DeadBlock, hoisted out of the hot probe

	// DRRIP set-dueling state: PSEL counts SRRIP-leader misses up and
	// BRRIP-leader misses down; followers insert BRRIP-style while it sits
	// above the midpoint.
	psel int32
	// Dead-block predictor counters (nil unless cfg.DeadBlock).
	db []uint8

	// Set indexing: block % numSets, strength-reduced to block & setMask
	// when the set count is a power of two (pow2Sets). The hardware divide
	// the modulo otherwise compiles to costs tens of cycles per probe —
	// more than the set scan itself — so this is one of the kernel's
	// biggest wins. Both forms pick the same set; results are identical.
	pow2Sets bool
	setMask  uint64

	// One-entry line buffer (the software analogue of a hardware L0/way
	// predictor): the block and slot index of the most recent hit or fill.
	// Consecutive same-block references — instruction fetch runs walking a
	// 64-byte line, stack push/pop bursts — skip the set scan entirely.
	// Invariant: lastBlock == invalidTag, or tags[lastIdx] == lastBlock
	// (blocks are unique within a cache, so eviction/invalidation of
	// lastBlock is detected by address comparison alone). Purely a probe
	// shortcut: replacement state updates are identical either way.
	lastBlock uint64
	lastIdx   int32

	// map-backed fully-associative storage (assoc == 0)
	faCap   int
	faIndex map[uint64]int32
	faNodes []faNode
	faHead  int32 // most recent
	faTail  int32 // least recent
	faFree  []int32

	rng *stats.RNG

	// Stats accumulates demand hit/miss counts.
	Stats AccessStats

	// OnEvict, when set, is invoked for every valid line evicted by a
	// fill (demand or writeback). It is the hook the hierarchy uses for
	// inclusive back-invalidation and L4 victim fills.
	OnEvict func(Line)
}

// New builds a cache from cfg. It panics on an invalid configuration;
// callers constructing configs from external input should call
// cfg.Validate first.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cache{
		cfg:       cfg,
		rng:       stats.NewRNG(cfg.Seed ^ 0x5eedcafe),
		isLRU:     cfg.Policy == LRU,
		isRRIP:    cfg.Policy.RRIP(),
		isDB:      cfg.DeadBlock,
		psel:      pselMax / 2,
		lastBlock: invalidTag,
	}
	if cfg.DeadBlock {
		c.db = make([]uint8, 1<<dbBits)
	}
	for bs := cfg.BlockSize; bs > 1; bs >>= 1 {
		c.blockShift++
	}
	blocks := int(cfg.Size / int64(cfg.BlockSize))
	if cfg.Assoc == 0 {
		c.faCap = blocks
		c.faIndex = make(map[uint64]int32, blocks)
		// faNodes never outgrows faCap (a fill appends only while every
		// node is live and below capacity) and faFree holds at most every
		// node, so full capacity up front keeps fills allocation-free.
		c.faNodes = make([]faNode, 0, blocks)
		c.faFree = make([]int32, 0, blocks)
		c.faHead, c.faTail = -1, -1
		return c
	}
	c.assoc = cfg.Assoc
	c.allocWays = cfg.AllocWays
	if c.allocWays == 0 {
		c.allocWays = cfg.Assoc
	}
	c.numSets = blocks / cfg.Assoc
	if c.numSets&(c.numSets-1) == 0 {
		c.pow2Sets = true
		c.setMask = uint64(c.numSets - 1)
	}
	c.tags = make([]uint64, blocks)
	c.stamps = make([]uint64, blocks)
	c.meta = make([]uint8, blocks)
	c.occ = make([]uint16, c.numSets)
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// BlockAddr converts a byte address to this cache's block address.
func (c *Cache) BlockAddr(addr uint64) uint64 { return addr >> c.blockShift }

// BlockShift returns log2(block size).
func (c *Cache) BlockShift() uint { return c.blockShift }

// EffectiveSize returns the allocatable capacity in bytes (reduced when
// way-partitioning is active).
func (c *Cache) EffectiveSize() int64 {
	if c.assoc == 0 {
		return c.cfg.Size
	}
	return c.cfg.Size * int64(c.allocWays) / int64(c.assoc)
}

// Access probes for block; on a hit it updates recency (and dirtiness for
// writes) and returns true. On a miss it records the miss and returns false
// WITHOUT filling: the hierarchy decides when and what to fill so that fill
// ordering across levels is explicit.
func (c *Cache) Access(block uint64, seg trace.Segment, kind trace.Kind) bool {
	hit := c.touch(block, kind == trace.Write)
	c.Stats.record(seg, kind, hit)
	return hit
}

// AccessBatch probes every access of batch (splitting unaligned references
// across covered blocks exactly like Hierarchy.Access does) and returns the
// number of block probes that hit. It is observationally identical to
// calling Access per covered block but hoists the block shift and the policy
// check out of the loop and inlines the set scan over the SoA tag array.
// Fully-associative caches take the generic per-block path. The batch is
// read-only (it may alias a shared immutable trace).
//
//lint:hot
func (c *Cache) AccessBatch(batch []trace.Access) int64 {
	shift := c.blockShift
	var hits int64
	for i := range batch {
		a := &batch[i]
		size := uint64(a.Size)
		if size == 0 {
			size = 1
		}
		first := a.Addr >> shift
		last := (a.Addr + size - 1) >> shift
		for b := first; b <= last; b++ {
			hit := false
			if b == c.lastBlock {
				idx := c.lastIdx
				if a.Kind == trace.Write {
					c.meta[idx] |= metaDirty
				}
				c.promote(int(idx))
				hit = true
			} else if c.assoc != 0 {
				base := c.setBase(b)
				tags := c.tags[base : base+c.assoc]
				for w := range tags {
					if tags[w] == b {
						idx := base + w
						if a.Kind == trace.Write {
							c.meta[idx] |= metaDirty
						}
						c.promote(idx)
						c.lastBlock, c.lastIdx = b, int32(idx)
						hit = true
						break
					}
				}
			} else {
				hit = c.touch(b, a.Kind == trace.Write)
			}
			if hit {
				c.Stats.Hits[a.Seg][a.Kind]++
				hits++
			} else {
				c.Stats.Misses[a.Seg][a.Kind]++
			}
		}
	}
	return hits
}

// promote updates replacement state for a hit on slot idx: LRU bumps the
// recency stamp, RRIP promotes to "imminent" (RRPV 0) and feeds the
// dead-block predictor's reuse bit; FIFO and Random ignore hits. Small and
// call-free so the batched kernels' inlined probes keep it in registers.
func (c *Cache) promote(idx int) {
	if c.isLRU {
		c.clock++
		c.stamps[idx] = c.clock
	} else if c.isRRIP {
		c.stamps[idx] = 0
		if c.isDB {
			c.meta[idx] |= metaReused
		}
	}
}

// touch probes and updates recency/dirty without recording stats.
func (c *Cache) touch(block uint64, write bool) bool {
	if c.assoc == 0 {
		idx, ok := c.faIndex[block]
		if !ok {
			return false
		}
		if write {
			c.faNodes[idx].line.Dirty = true
		}
		if c.cfg.Policy == LRU {
			c.faMoveToFront(idx)
		}
		return true
	}
	if block == c.lastBlock {
		i := c.lastIdx
		if write {
			c.meta[i] |= metaDirty
		}
		c.promote(int(i))
		return true
	}
	base := c.setBase(block)
	if w := c.findWay(base, block); w >= 0 {
		i := base + w
		if write {
			c.meta[i] |= metaDirty
		}
		c.promote(i)
		c.lastBlock, c.lastIdx = block, int32(i)
		return true
	}
	return false
}

// Contains reports whether block is present without perturbing recency or
// stats.
func (c *Cache) Contains(block uint64) bool {
	if c.assoc == 0 {
		_, ok := c.faIndex[block]
		return ok
	}
	return c.findWay(c.setBase(block), block) >= 0
}

// Fill installs block (e.g. after a miss was serviced by a lower level).
// If a valid line is displaced it is returned with ok = true, and OnEvict
// (if set) is invoked for it. Filling a block that is already present only
// updates its metadata.
func (c *Cache) Fill(block uint64, seg trace.Segment, dirty bool) (evicted Line, ok bool) {
	if c.assoc == 0 {
		return c.faFill(block, seg, dirty)
	}
	// Already present (e.g. race between writeback and demand fill).
	base := c.setBase(block)
	if w := c.findWay(base, block); w >= 0 {
		if dirty {
			c.meta[base+w] |= metaDirty
		}
		return Line{}, false
	}
	return c.fillAbsent(block, seg, dirty)
}

// fillAbsent installs a block known not to be resident — which every
// hierarchy fill path has just established by probing — skipping Fill's
// presence re-scan. When the set is at capacity (the steady state,
// detected from the occupancy counter) the free-way scan is skipped too,
// leaving only the victim selection. Same victim choice as always; the
// scans are skipped exactly when they would find nothing.
func (c *Cache) fillAbsent(block uint64, seg trace.Segment, dirty bool) (evicted Line, ok bool) {
	if c.assoc == 0 {
		return c.faFill(block, seg, dirty)
	}
	set := c.setIndex(block)
	base := set * c.assoc
	victim := -1
	if int(c.occ[set]) < c.allocWays {
		// A free way exists (empty ways hold invalidTag in the tags array).
		tg := c.tags[base : base+c.allocWays]
		for w := range tg {
			if tg[w] == invalidTag {
				victim = w
				break
			}
		}
		c.occ[set]++
	} else {
		switch {
		case c.isRRIP:
			// Evict the leftmost way with the maximum RRPV, after aging
			// every way up so that maximum reaches "distant" (3). One
			// scan + one conditional sweep is equivalent to the textbook
			// "repeat until a 3 is found" loop: aging preserves order, so
			// the first way to reach 3 is the leftmost current maximum.
			st := c.stamps[base : base+c.allocWays]
			victim = 0
			maxv := st[0]
			for w := 1; w < len(st); w++ {
				if s := st[w]; s > maxv {
					victim, maxv = w, s
				}
			}
			if d := rrpvMax - maxv; d != 0 {
				for w := range st {
					st[w] += d
				}
			}
		case c.cfg.Policy == Random:
			victim = c.rng.Intn(c.allocWays)
		default: // LRU and FIFO both evict the minimum stamp
			st := c.stamps[base : base+c.allocWays]
			victim = 0
			best := st[0]
			for w := 1; w < len(st); w++ {
				if s := st[w]; s < best {
					victim, best = w, s
				}
			}
		}
		i := base + victim
		evicted = Line{BlockAddr: c.tags[i], Dirty: c.meta[i]&metaDirty != 0, Seg: metaSeg(c.meta[i])}
		ok = true
		if c.isDB {
			// Train the dead-block predictor on the evicted line's fate:
			// lines that left without a single hit push their address hash
			// toward "dead", reused lines pull it back.
			hsh := dbHash(c.tags[i])
			if c.meta[i]&metaReused != 0 {
				if c.db[hsh] > 0 {
					c.db[hsh]--
				}
			} else if c.db[hsh] < dbMax {
				c.db[hsh]++
			}
		}
		if c.tags[i] == c.lastBlock {
			c.lastBlock = invalidTag
		}
	}
	c.clock++
	i := base + victim
	c.tags[i] = block
	if c.isRRIP {
		c.stamps[i] = c.rripInsert(set, block)
	} else {
		c.stamps[i] = c.clock
	}
	c.meta[i] = packMeta(seg, dirty)
	c.lastBlock, c.lastIdx = block, int32(i)
	if ok && c.OnEvict != nil {
		//lint:ignore hotalloc eviction hook: the hierarchy's handlers (back-invalidation, L4 victim fill) run on preallocated stores, pinned by the AllocsPerRun oracle
		c.OnEvict(evicted)
	}
	return evicted, ok
}

// rripInsert picks the insertion RRPV for a fill into set: SRRIP inserts at
// "long", BRRIP at "distant" except a seeded 1-in-brripInterval chance of
// "long", and DRRIP picks between the two per set via set-dueling (leader
// sets also train PSEL — a fill is a miss, so a fill into a leader set is a
// vote against its policy). A dead-block-predicted address overrides to
// "distant" so it is the set's first victim. Every fill path (demand and
// writeback) goes through here, keeping the RNG consumption — and so the
// whole simulation — identical between scalar and batched replay.
func (c *Cache) rripInsert(set int, block uint64) uint64 {
	bimodal := false
	switch c.cfg.Policy {
	case BRRIP:
		bimodal = true
	case DRRIP:
		switch set & duelMask {
		case duelSRRIP:
			if c.psel < pselMax {
				c.psel++
			}
		case duelBRRIP:
			bimodal = true
			if c.psel > 0 {
				c.psel--
			}
		default:
			bimodal = c.psel > pselMax/2
		}
	}
	ins := uint64(rrpvLong)
	if bimodal && c.rng.Intn(brripInterval) != 0 {
		ins = rrpvMax
	}
	if c.isDB && c.db[dbHash(block)] >= dbDeadAt {
		ins = rrpvMax
	}
	return ins
}

// Invalidate removes block if present, returning its line. Used for
// inclusive back-invalidation.
func (c *Cache) Invalidate(block uint64) (line Line, present bool) {
	if c.assoc == 0 {
		idx, ok := c.faIndex[block]
		if !ok {
			return Line{}, false
		}
		line = c.faNodes[idx].line
		c.faRemove(idx)
		return line, true
	}
	set := c.setIndex(block)
	base := set * c.assoc
	if w := c.findWay(base, block); w >= 0 {
		i := base + w
		line = Line{BlockAddr: c.tags[i], Dirty: c.meta[i]&metaDirty != 0, Seg: metaSeg(c.meta[i])}
		c.tags[i] = invalidTag
		c.stamps[i] = 0
		c.meta[i] = 0
		c.occ[set]--
		if block == c.lastBlock {
			c.lastBlock = invalidTag
		}
		return line, true
	}
	return Line{}, false
}

// MarkDirty sets the dirty bit if block is present, returning whether it
// was. Used for writebacks landing on a resident line.
func (c *Cache) MarkDirty(block uint64) bool {
	if c.assoc == 0 {
		if idx, ok := c.faIndex[block]; ok {
			c.faNodes[idx].line.Dirty = true
			return true
		}
		return false
	}
	base := c.setBase(block)
	if w := c.findWay(base, block); w >= 0 {
		c.meta[base+w] |= metaDirty
		return true
	}
	return false
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	if c.assoc == 0 {
		return len(c.faIndex)
	}
	n := 0
	for i := range c.meta {
		if c.meta[i]&metaValid != 0 {
			n++
		}
	}
	return n
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	c.Stats = AccessStats{}
	c.clock = 0
	c.lastBlock = invalidTag
	c.psel = pselMax / 2
	for i := range c.db {
		c.db[i] = 0
	}
	if c.assoc == 0 {
		c.faIndex = make(map[uint64]int32, c.faCap)
		c.faNodes = c.faNodes[:0]
		c.faFree = c.faFree[:0]
		c.faHead, c.faTail = -1, -1
		return
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
		c.stamps[i] = 0
		c.meta[i] = 0
	}
	for i := range c.occ {
		c.occ[i] = 0
	}
}

// invalidTag marks an empty way in the tags array, so the hot probe loop can
// compare tags alone without consulting the valid bit. No simulated address
// can reach it: block addresses are byte addresses shifted right, and the
// workload's flat address space sits far below 2^64.
const invalidTag = ^uint64(0)

// setIndex returns the set a block maps to.
func (c *Cache) setIndex(block uint64) int {
	if c.pow2Sets {
		return int(block & c.setMask)
	}
	return int(block % uint64(c.numSets))
}

// setBase returns the index of way 0 of block's set.
func (c *Cache) setBase(block uint64) int {
	return c.setIndex(block) * c.assoc
}

// findWay scans block's set and returns the way holding it, or -1. The scan
// touches only the dense tags array — for an 8-way set of 64-bit tags that
// is a single cache line.
func (c *Cache) findWay(base int, block uint64) int {
	tags := c.tags[base : base+c.assoc]
	for w := range tags {
		if tags[w] == block {
			return w
		}
	}
	return -1
}

// --- fully-associative store ---

func (c *Cache) faFill(block uint64, seg trace.Segment, dirty bool) (evicted Line, ok bool) {
	if idx, present := c.faIndex[block]; present {
		c.faNodes[idx].line.Dirty = c.faNodes[idx].line.Dirty || dirty
		return Line{}, false
	}
	if len(c.faIndex) >= c.faCap {
		victim := c.faTail
		evicted = c.faNodes[victim].line
		ok = true
		c.faRemove(victim)
	}
	var idx int32
	if n := len(c.faFree); n > 0 {
		idx = c.faFree[n-1]
		c.faFree = c.faFree[:n-1]
		c.faNodes[idx] = faNode{line: Line{BlockAddr: block, Dirty: dirty, Seg: seg}}
	} else {
		idx = int32(len(c.faNodes))
		c.faNodes = append(c.faNodes, faNode{line: Line{BlockAddr: block, Dirty: dirty, Seg: seg}})
	}
	c.faPushFront(idx)
	c.faIndex[block] = idx
	if ok && c.OnEvict != nil {
		c.OnEvict(evicted)
	}
	return evicted, ok
}

func (c *Cache) faPushFront(idx int32) {
	c.faNodes[idx].prev = -1
	c.faNodes[idx].next = c.faHead
	if c.faHead >= 0 {
		c.faNodes[c.faHead].prev = idx
	}
	c.faHead = idx
	if c.faTail < 0 {
		c.faTail = idx
	}
}

func (c *Cache) faUnlink(idx int32) {
	n := c.faNodes[idx]
	if n.prev >= 0 {
		c.faNodes[n.prev].next = n.next
	} else {
		c.faHead = n.next
	}
	if n.next >= 0 {
		c.faNodes[n.next].prev = n.prev
	} else {
		c.faTail = n.prev
	}
}

func (c *Cache) faMoveToFront(idx int32) {
	if c.faHead == idx {
		return
	}
	c.faUnlink(idx)
	c.faPushFront(idx)
}

func (c *Cache) faRemove(idx int32) {
	delete(c.faIndex, c.faNodes[idx].line.BlockAddr)
	c.faUnlink(idx)
	c.faFree = append(c.faFree, idx)
}
