package cache

import (
	"fmt"

	"searchmem/internal/trace"
)

// This file implements cache-level prediction after Jalili & Erez ("Reducing
// Load Latency with Cache Level Prediction", PAPERS.md): a small tag-indexed
// table of saturating counters predicts which hierarchy level will service an
// L1 miss. Confident predictions of L3/L4 jump straight to that level and
// verify with a single probe; confident memory predictions bypass the caches
// outright, with the in-flight presence check (the hardware runs it in
// parallel with memory scheduling, off the serial probe path) catching
// resident blocks. Mispredictions fall back to the full probe chain.
//
// Level prediction changes where the hardware looks *first*, never where the
// data lives: a jump that verifies services the same block the serial chain
// would have found, and every fill lands exactly where the chain's would. So
// the simulator keeps the functional probe chain (missPath) authoritative —
// contents, per-level hit/miss statistics, and memory traffic are identical
// predictor-on and predictor-off, byte for byte — and the predictor overlays
// *probe accounting* on top: which serial probes a verified prediction
// avoided, and what failed verifications cost. That is also the determinism
// argument: the overlay adds no randomness and no state the batched kernel
// orders differently, and both the scalar and batched kernels share this one
// path. See DESIGN.md §15.

// PredictorConfig configures the hierarchy's cache-level predictor.
type PredictorConfig struct {
	// TableBits is log2 of the prediction-table entry count (0 selects the
	// default of 14, i.e. 16384 entries; valid range 4..24).
	TableBits uint
	// ConfThreshold is the saturating-counter confidence (0..3) a matching
	// entry needs before its prediction is acted on. 0 selects the default
	// of 2; higher values trade coverage for fewer mispredictions.
	ConfThreshold uint8
	// Seed perturbs the table hash so independent runs disagree only where
	// aliasing does; 0 is a valid (unsalted) seed.
	Seed uint64
	// IndexBlock keys the table by the missing block address instead of
	// the default per-PC key (the thread's most recent instruction-fetch
	// block — the trace carries no program counter, and the last fetch
	// block identifies the code that issued the access). Per-PC is the
	// paper's choice: a scan loop's single PC predicts "memory" for every
	// new block it touches, which per-block keys can never do.
	IndexBlock bool
}

// predictor defaults and limits.
const (
	predDefaultBits = 14
	predDefaultConf = 2
	predConfMax     = 3
	predMinBits     = 4
	predMaxBits     = 24
)

// Validate reports whether the predictor configuration is consistent.
func (pc PredictorConfig) Validate() error {
	if pc.TableBits != 0 && (pc.TableBits < predMinBits || pc.TableBits > predMaxBits) {
		return fmt.Errorf("predictor: TableBits %d out of range [%d,%d] (0 = default %d)",
			pc.TableBits, predMinBits, predMaxBits, predDefaultBits)
	}
	if pc.ConfThreshold > predConfMax {
		return fmt.Errorf("predictor: ConfThreshold %d out of range [0,%d]", pc.ConfThreshold, predConfMax)
	}
	return nil
}

// withDefaults fills zero fields with the default table geometry.
func (pc PredictorConfig) withDefaults() PredictorConfig {
	if pc.TableBits == 0 {
		pc.TableBits = predDefaultBits
	}
	if pc.ConfThreshold == 0 {
		pc.ConfThreshold = predDefaultConf
	}
	return pc
}

// PredictorStats counts the level predictor's outcomes. All fields count
// post-L1 block probes (the only accesses the predictor sees).
type PredictorStats struct {
	// Lookups is the number of predictions consulted (every L1 miss).
	Lookups int64
	// Jumps is the number of confident L3/L4 predictions acted on;
	// Bypasses the number of confident memory predictions acted on.
	Jumps, Bypasses int64
	// Verified counts jumps/bypasses the access's actual servicing level
	// confirmed; Mispredicts counts the rest (which fall back to the full
	// probe chain after the wasted verification).
	Verified, Mispredicts int64
	// ProbesPerformed and ProbesBaseline count, over the acted-on
	// predictions only, the serial post-L1 cache probes the predicted
	// hardware issues vs. what the full L2→L3(→L4) chain issues for the
	// same accesses (a verified jump issues one, a verified bypass none, a
	// mispredict the wasted verify plus the full chain). Their ratio is
	// the probe-skip rate where the mechanism engages; multiply by
	// CoverageRate's probe share for whole-stream savings. Unacted lookups
	// run the chain untouched and contribute to neither counter.
	ProbesPerformed, ProbesBaseline int64
}

// Add accumulates other into s.
func (s *PredictorStats) Add(other *PredictorStats) {
	s.Lookups += other.Lookups
	s.Jumps += other.Jumps
	s.Bypasses += other.Bypasses
	s.Verified += other.Verified
	s.Mispredicts += other.Mispredicts
	s.ProbesPerformed += other.ProbesPerformed
	s.ProbesBaseline += other.ProbesBaseline
}

// CoverageRate is the fraction of lookups that produced a confident,
// actionable prediction, or 0 with no lookups.
func (s PredictorStats) CoverageRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Jumps+s.Bypasses) / float64(s.Lookups)
}

// HitRate is the fraction of acted-on predictions that verified, or 0 when
// none were acted on.
func (s PredictorStats) HitRate() float64 {
	acted := s.Jumps + s.Bypasses
	if acted == 0 {
		return 0
	}
	return float64(s.Verified) / float64(acted)
}

// MispredictRate is the fraction of lookups whose acted-on prediction failed
// verification, or 0 with no lookups.
func (s PredictorStats) MispredictRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Lookups)
}

// SkipRate is the fraction of baseline chain probes the predictor avoided
// across the acted-on predictions (negative if mispredictions cost more
// probes than jumps saved), or 0 with no baseline probes. Whole-stream
// savings are this times the acted-on share of traffic (CoverageRate,
// weighted by chain depth).
func (s PredictorStats) SkipRate() float64 {
	if s.ProbesBaseline == 0 {
		return 0
	}
	return 1 - float64(s.ProbesPerformed)/float64(s.ProbesBaseline)
}

// levelPredictor is the tag-indexed counter table. Entry i predicts that
// keys hashing to i will be serviced by level[i], with conf[i] confidence;
// the 16-bit partial tag filters most aliases.
type levelPredictor struct {
	cfg   PredictorConfig
	shift uint // 64 - TableBits: the hash's top bits index the table
	tags  []uint16
	level []uint8
	conf  []uint8

	// Stats accumulates the predictor's counters.
	Stats PredictorStats
}

// newLevelPredictor builds the table for an already-defaulted config.
func newLevelPredictor(pc PredictorConfig) *levelPredictor {
	n := 1 << pc.TableBits
	return &levelPredictor{
		cfg:   pc,
		shift: 64 - pc.TableBits,
		tags:  make([]uint16, n),
		level: make([]uint8, n),
		conf:  make([]uint8, n),
	}
}

// slot hashes a key to its table index and partial tag. One multiplicative
// hash provides both: the top bits index (well-mixed by the multiply), a
// middle slice tags. Entries start conf==0, so a fresh table acts on nothing
// even where a zero tag happens to match.
func (p *levelPredictor) slot(key uint64) (int, uint16) {
	x := (key ^ p.cfg.Seed) * 0x9e3779b97f4a7c15
	return int(x >> p.shift), uint16(x >> 24)
}

// lookup returns the prediction for key and whether it is confident enough
// to act on. The bar is asymmetric because the mispredict costs are: a wrong
// bypass is caught by the parallel presence check at no serial cost, so
// memory predictions act at the configured threshold, while a wrong jump
// wastes a serial verification probe, so cache-level predictions act only at
// counter saturation. It counts the lookup either way; train must be called
// with the access's actual level.
func (p *levelPredictor) lookup(key uint64) (HitLevel, bool) {
	p.Stats.Lookups++
	i, tag := p.slot(key)
	if p.tags[i] != tag {
		return 0, false
	}
	lvl := HitLevel(p.level[i])
	need := uint8(predConfMax)
	if lvl == HitMemory {
		need = p.cfg.ConfThreshold
	}
	return lvl, p.conf[i] >= need
}

// train updates key's entry with the observed servicing level: confirmations
// climb the saturating counter, contradictions drain it and retarget the
// level once empty. Aliases (tag mismatch) drain the incumbent before taking
// the entry over, so a hot entry is not evicted by one stray key.
func (p *levelPredictor) train(key uint64, actual HitLevel) {
	i, tag := p.slot(key)
	switch {
	case p.tags[i] != tag:
		if p.conf[i] > 0 {
			p.conf[i]--
			return
		}
		p.tags[i] = tag
		p.level[i] = uint8(actual)
		p.conf[i] = 1
	case HitLevel(p.level[i]) == actual:
		if p.conf[i] < predConfMax {
			p.conf[i]++
		}
	case p.conf[i] > 0:
		p.conf[i]--
	default:
		p.level[i] = uint8(actual)
		p.conf[i] = 1
	}
}

// reset clears the table and counters.
func (p *levelPredictor) reset() {
	for i := range p.tags {
		p.tags[i] = 0
		p.level[i] = 0
		p.conf[i] = 0
	}
	p.Stats = PredictorStats{}
}

// chainProbes returns how many post-L1 probes the full chain issues for an
// access serviced at lvl (memory probes every cache level on the way down).
func (h *Hierarchy) chainProbes(lvl HitLevel) int64 {
	switch lvl {
	case HitL2:
		return 1
	case HitL3:
		return 2
	case HitL4:
		return 3
	default:
		return h.memProbes
	}
}

// predictPath services an access that already missed (and recorded its miss)
// in l1: the functional probe chain (missPath) runs authoritatively, and the
// predictor overlays probe accounting on its outcome. A confident L3/L4
// prediction that matches the actual servicing level is a verified jump —
// one serial probe (the verification at the target) instead of the chain's
// walk, with PredSkips recorded at the levels whose probes it avoided and a
// PredHit at the target. A confident memory prediction that the access
// confirms is a verified bypass — zero serial probes; the presence check
// that guards against resident blocks runs in parallel with memory
// scheduling, off the serial path, like the L4's own lookup (§IV-C). A
// confident prediction the access contradicts is a mispredict: a cache-level
// prediction wasted its verification probe and then walked the full chain
// (one extra probe); a memory prediction was caught by the parallel check at
// no extra serial cost. The predictor is trained with the actual servicing
// level on every access. Shared by the scalar and batched kernels, which is
// what makes predictor-on replay scalar ≡ batched by construction.
//
//lint:hot
func (h *Hierarchy) predictPath(l1, l2 *Cache, thread uint8, byteAddr uint64, seg trace.Segment, kind trace.Kind) HitLevel {
	p := h.pred
	key := byteAddr >> h.l1Shift
	if h.trackFetch {
		// The per-PC stand-in: the thread's last instruction-fetch block
		// names the code that issued the access, and the target segment
		// separates the load sites within that block (a 64 B code block
		// holds ~16 instructions whose loads can have very different
		// destinies — a hot scoring structure vs. a cold shard posting).
		key = h.lastFetch[thread]<<2 | uint64(seg)&3
	}
	pred, confident := p.lookup(key)
	if pred == HitL4 && h.l4 == nil {
		pred = HitMemory // stale L4 prediction on a hierarchy without one
	}
	actual := h.missPath(l1, l2, byteAddr, seg, kind)
	base := h.chainProbes(actual)
	switch {
	case !confident || pred <= HitL2:
		// No confident prediction, or it names the level the chain starts
		// at anyway: the serial chain ran as-is, nothing was attempted.
	case pred == actual:
		p.Stats.ProbesBaseline += base
		p.Stats.Verified++
		if pred == HitMemory {
			p.Stats.Bypasses++
			l2.Stats.PredSkips++
			h.l3.Stats.PredSkips++
			if h.l4 != nil {
				h.l4.Stats.PredSkips++
			}
		} else {
			p.Stats.Jumps++
			p.Stats.ProbesPerformed++ // the single verification probe
			l2.Stats.PredSkips++
			if pred == HitL4 {
				h.l3.Stats.PredSkips++
				h.l4.Stats.PredHits++
			} else {
				h.l3.Stats.PredHits++
			}
		}
	case pred == HitMemory:
		// Wrong bypass, caught by the parallel presence check: the access
		// is serviced by the level that holds the block at the chain's
		// ordinary serial cost.
		p.Stats.Bypasses++
		p.Stats.Mispredicts++
		p.Stats.ProbesBaseline += base
		p.Stats.ProbesPerformed += base
		switch actual {
		case HitL2:
			l2.Stats.PredMispredicts++
		case HitL4:
			h.l4.Stats.PredMispredicts++
		default:
			h.l3.Stats.PredMispredicts++
		}
	default:
		// Wrong jump: the verification probe at the predicted level missed
		// (or the block was already serviced above it), then the full
		// chain ran — one wasted serial probe. Charged to the predicted
		// level, whose probe was the wasted one.
		p.Stats.Jumps++
		p.Stats.Mispredicts++
		p.Stats.ProbesBaseline += base
		p.Stats.ProbesPerformed += base + 1
		if pred == HitL4 {
			h.l4.Stats.PredMispredicts++
		} else {
			h.l3.Stats.PredMispredicts++
		}
	}
	p.train(key, actual)
	return actual
}
