package cache

import (
	"fmt"

	"searchmem/internal/trace"
)

// HierarchyConfig describes a full multi-core cache hierarchy: per-core
// private L1-I/L1-D/L2 caches, a shared L3, and an optional shared L4
// operating as a memory-side victim cache for L3 evictions (§IV-C).
type HierarchyConfig struct {
	// Cores is the number of cores; each gets private L1/L2 caches.
	Cores int
	// ThreadsPerCore maps trace thread ids onto cores: thread t runs on
	// core t/ThreadsPerCore (SMT threads share their core's caches).
	ThreadsPerCore int
	// L1I, L1D and L2 are per-core cache templates.
	L1I, L1D, L2 Config
	// SplitL2 gives each core separate L2 instruction and data caches of
	// half the unified capacity each (the §V "Split I/D L2 caches"
	// what-if). The L2 template's capacity is divided; all other
	// parameters carry over.
	SplitL2 bool
	// L3 is the shared last-level SRAM cache.
	L3 Config
	// L3Inclusive enables inclusion: L3 evictions back-invalidate copies
	// in the private caches (the paper notes this effect for PLT1's L3).
	L3Inclusive bool
	// L4, when non-nil, adds the paper's eDRAM L4. It must use the same
	// block size as the L3 (the paper keeps them equal to simplify the
	// victim path).
	L4 *Config
	// L4FillOnMiss fills the L4 on memory fetches instead of on L3
	// evictions (ablation of the victim-fill design choice).
	L4FillOnMiss bool
	// Predictor, when non-nil, attaches a cache-level predictor to the
	// post-L1 path: confident predictions jump straight to the predicted
	// level (or bypass to memory) and verify there, skipping the
	// intermediate serial probes. Functional behaviour — contents, hit/
	// miss statistics, memory traffic — is unchanged; the predictor
	// overlays probe accounting (Jalili & Erez, see DESIGN.md §15).
	Predictor *PredictorConfig
}

// Validate reports whether the hierarchy configuration is consistent.
func (hc HierarchyConfig) Validate() error {
	if hc.Cores <= 0 {
		return fmt.Errorf("hierarchy: cores must be positive, got %d", hc.Cores)
	}
	if hc.ThreadsPerCore <= 0 {
		return fmt.Errorf("hierarchy: threads per core must be positive, got %d", hc.ThreadsPerCore)
	}
	for _, cfg := range []Config{hc.L1I, hc.L1D, hc.L2, hc.L3} {
		if err := cfg.Validate(); err != nil {
			return err
		}
	}
	if hc.L1I.BlockSize != hc.L1D.BlockSize {
		return fmt.Errorf("hierarchy: L1-I and L1-D block sizes differ")
	}
	if hc.L2.BlockSize < hc.L1D.BlockSize || hc.L3.BlockSize < hc.L2.BlockSize {
		return fmt.Errorf("hierarchy: block sizes must not shrink down the hierarchy")
	}
	if hc.L4 != nil {
		if err := hc.L4.Validate(); err != nil {
			return err
		}
		if hc.L4.BlockSize != hc.L3.BlockSize {
			return fmt.Errorf("hierarchy: L4 block size %d must equal L3 block size %d",
				hc.L4.BlockSize, hc.L3.BlockSize)
		}
	}
	if hc.Predictor != nil {
		if err := hc.Predictor.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Hierarchy is a functional multi-level cache simulator. It is not safe for
// concurrent use; the trace interleaving (trace.Interleave) models
// multi-threaded execution instead.
type Hierarchy struct {
	cfg HierarchyConfig

	l1i, l1d, l2 []*Cache
	l2i          []*Cache // only with SplitL2
	l3           *Cache
	l4           *Cache

	// Thread-indexed routing tables, precomputed at construction so the hot
	// kernels replace the per-access core division (coreFor) with one load:
	// dataL1/dataL2 route loads and stores, fetchL1/fetchL2 route
	// instruction fetches (fetchL2 differs from dataL2 only under SplitL2).
	dataL1, dataL2   [256]*Cache
	fetchL1, fetchL2 [256]*Cache
	// l1Shift is the shared L1 block shift (L1-I and L1-D block sizes are
	// validated equal), hoisted out of the batch loop.
	l1Shift uint

	// MemReads counts demand fetches that reached main memory; MemWrites
	// counts dirty writebacks that reached main memory. Together they are
	// the DRAM traffic the L4 is designed to filter (Figure 13).
	MemReads, MemWrites int64
	// PrefetchFills counts blocks installed by InstallPrefetch;
	// PrefetchMemReads counts the subset that had to read main memory
	// (prefetch bandwidth cost).
	PrefetchFills, PrefetchMemReads int64

	// mem, when non-nil, observes every main-memory transaction.
	mem MemSink

	// Level-predictor state (nil/false without cfg.Predictor). trackFetch
	// is hoisted so the batched kernel pays one predictable branch when the
	// predictor is off; lastFetch[t] is thread t's most recent fetch block,
	// the per-PC stand-in key. memProbes is the number of post-L1 probes a
	// full chain performs on a memory-serviced access (2, or 3 with an L4),
	// precomputed for the probe-skip accounting.
	pred       *levelPredictor
	trackFetch bool
	lastFetch  [256]uint64
	memProbes  int64
}

// MemSink observes every main-memory transaction the hierarchy issues:
// demand and prefetch fetches that missed all cache levels (MemRead) and
// dirty writebacks that fell out of the bottom of the hierarchy (MemWrite).
// It is how a main-memory timing model (internal/mem's tiered system)
// attaches below the functional simulator without the cache package
// depending on it. Calls are made on the hierarchy's replay goroutine in
// trace order, so a sink advancing virtual time stays deterministic.
type MemSink interface {
	MemRead(addr uint64, seg trace.Segment)
	MemWrite(addr uint64, seg trace.Segment)
}

// SetMemSink attaches a main-memory observer (nil detaches). Attach before
// replay: the sink sees only transactions issued after the call.
func (h *Hierarchy) SetMemSink(ms MemSink) { h.mem = ms }

// HitLevel identifies the hierarchy level that serviced an access.
type HitLevel uint8

const (
	// HitL1 through HitMemory name the servicing level in depth order.
	HitL1 HitLevel = iota + 1
	HitL2
	HitL3
	HitL4
	HitMemory
)

// String implements fmt.Stringer.
func (l HitLevel) String() string {
	switch l {
	case HitL1:
		return "L1"
	case HitL2:
		return "L2"
	case HitL3:
		return "L3"
	case HitL4:
		return "L4"
	case HitMemory:
		return "memory"
	default:
		return fmt.Sprintf("level(%d)", uint8(l))
	}
}

// NewHierarchy builds a hierarchy; it panics on invalid configuration.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	h := &Hierarchy{cfg: cfg}
	for c := 0; c < cfg.Cores; c++ {
		mk := func(t Config, kind string) *Cache {
			t.Name = fmt.Sprintf("%s[core%d]", kind, c)
			t.Seed ^= uint64(c+1) * 0x9e3779b9
			return New(t)
		}
		h.l1i = append(h.l1i, mk(cfg.L1I, "L1-I"))
		h.l1d = append(h.l1d, mk(cfg.L1D, "L1-D"))
		if cfg.SplitL2 {
			half := cfg.L2
			half.Size /= 2
			blocks := half.Size / int64(half.BlockSize)
			if half.Assoc > 0 {
				blocks -= blocks % int64(half.Assoc)
				half.Size = blocks * int64(half.BlockSize)
			}
			h.l2 = append(h.l2, mk(half, "L2-D"))
			h.l2i = append(h.l2i, mk(half, "L2-I"))
		} else {
			h.l2 = append(h.l2, mk(cfg.L2, "L2"))
		}
	}
	h.l3 = New(cfg.L3)
	if cfg.L4 != nil {
		h.l4 = New(*cfg.L4)
		h.l4.OnEvict = func(l Line) {
			if l.Dirty {
				h.MemWrites++
				if h.mem != nil {
					h.mem.MemWrite(l.BlockAddr<<h.l4.BlockShift(), l.Seg)
				}
			}
		}
	}
	h.l3.OnEvict = h.onL3Evict
	h.l1Shift = h.l1d[0].blockShift
	h.memProbes = 2
	if h.l4 != nil {
		h.memProbes = 3
	}
	if cfg.Predictor != nil {
		pc := cfg.Predictor.withDefaults()
		h.pred = newLevelPredictor(pc)
		h.trackFetch = !pc.IndexBlock
	}
	for t := 0; t < 256; t++ {
		core := h.coreFor(uint8(t))
		h.dataL1[t] = h.l1d[core]
		h.fetchL1[t] = h.l1i[core]
		h.dataL2[t] = h.l2[core]
		if cfg.SplitL2 {
			h.fetchL2[t] = h.l2i[core]
		} else {
			h.fetchL2[t] = h.l2[core]
		}
	}
	return h
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// onL3Evict implements inclusion back-invalidation and the L4 victim path.
func (h *Hierarchy) onL3Evict(l Line) {
	dirty := l.Dirty
	byteAddr := l.BlockAddr << h.l3.BlockShift()
	if h.cfg.L3Inclusive {
		// Invalidate every covered upper-level block; fold any dirty
		// upper copy into the evicted line so the data is not lost.
		for c := 0; c < h.cfg.Cores; c++ {
			dirty = h.backInvalidate(h.l1i[c], byteAddr, int64(h.cfg.L3.BlockSize)) || dirty
			dirty = h.backInvalidate(h.l1d[c], byteAddr, int64(h.cfg.L3.BlockSize)) || dirty
			dirty = h.backInvalidate(h.l2[c], byteAddr, int64(h.cfg.L3.BlockSize)) || dirty
			if h.cfg.SplitL2 {
				dirty = h.backInvalidate(h.l2i[c], byteAddr, int64(h.cfg.L3.BlockSize)) || dirty
			}
		}
	}
	if h.l4 != nil && !h.cfg.L4FillOnMiss {
		h.l4.Fill(h.l4.BlockAddr(byteAddr), l.Seg, dirty)
		return // a dirty line now lives in the L4; written back on L4 eviction
	}
	if dirty {
		h.MemWrites++
		if h.mem != nil {
			h.mem.MemWrite(byteAddr, l.Seg)
		}
	}
}

// backInvalidate removes every block of c covered by [byteAddr,
// byteAddr+span) and reports whether any removed line was dirty.
func (h *Hierarchy) backInvalidate(c *Cache, byteAddr uint64, span int64) bool {
	dirty := false
	step := uint64(c.Config().BlockSize)
	for off := uint64(0); off < uint64(span); off += step {
		if line, present := c.Invalidate(c.BlockAddr(byteAddr + off)); present {
			c.Stats.BackInvalidations++
			dirty = dirty || line.Dirty
		}
	}
	return dirty
}

// coreFor maps a hardware thread to its core.
func (h *Hierarchy) coreFor(thread uint8) int {
	return int(thread) / h.cfg.ThreadsPerCore % h.cfg.Cores
}

// Access runs one trace access through the hierarchy and returns the
// deepest level that had to service it. Accesses that span multiple L1
// blocks are split (each covered block is one probe, matching a banked
// cache servicing an unaligned reference).
func (h *Hierarchy) Access(a trace.Access) HitLevel {
	l1, l2 := h.dataL1[a.Thread], h.dataL2[a.Thread]
	if a.Kind == trace.Fetch {
		l1, l2 = h.fetchL1[a.Thread], h.fetchL2[a.Thread]
	}
	size := uint64(a.Size)
	if size == 0 {
		size = 1
	}
	first := a.Addr >> h.l1Shift
	last := (a.Addr + size - 1) >> h.l1Shift
	if h.trackFetch && a.Kind == trace.Fetch {
		h.lastFetch[a.Thread] = first
	}
	deepest := HitL1
	for b := first; b <= last; b++ {
		if lvl := h.accessBlock(l1, l2, a.Thread, b<<h.l1Shift, a.Seg, a.Kind); lvl > deepest {
			deepest = lvl
		}
	}
	return deepest
}

// Drain runs an entire stream through the hierarchy. Streams that also
// implement trace.BatchStream (Shared views, slice streams) are drained
// through the batched kernel.
func (h *Hierarchy) Drain(s trace.Stream) {
	if bs, ok := s.(trace.BatchStream); ok {
		h.DrainBatch(bs)
		return
	}
	var a trace.Access
	for s.Next(&a) {
		h.Access(a)
	}
}

// DrainBatch runs an entire batched stream through the hierarchy. Each
// batch is consumed before the next NextBatch call, honoring the
// trace.BatchStream subslice lifetime contract.
//
//lint:hot
func (h *Hierarchy) DrainBatch(bs trace.BatchStream) {
	for {
		b := bs.NextBatch()
		if len(b) == 0 {
			return
		}
		h.AccessBatch(b, nil)
	}
}

// AccessBatch runs every access of batch through the hierarchy — the
// batched replay kernel. It is observationally identical to calling Access
// per element (same probe order, same stats, same fills and evictions), but
// hoists the block shift and the thread-to-cache routing out of the loop and
// inlines the L1 probe over the SoA tag array, so the dominant L1-hit case
// costs a table load, one set scan, and two counter increments.
//
// When levels is non-nil the servicing level of each access is appended to
// it and the extended slice returned (pass a cap-sized slice to avoid
// growth); a nil levels skips that bookkeeping entirely. The batch itself is
// read-only — it may be a zero-copy window of a shared immutable trace.
//
//lint:hot
func (h *Hierarchy) AccessBatch(batch []trace.Access, levels []HitLevel) []HitLevel {
	shift := h.l1Shift
	n := len(batch)
	for i := 0; i < n; i++ {
		// Value copy: loading fields through &batch[i] would force the
		// compiler to re-read them after every store to cache metadata
		// (conservative aliasing); a local copy keeps them in registers.
		a := batch[i]
		var l1, l2 *Cache
		if a.Kind == trace.Fetch {
			l1, l2 = h.fetchL1[a.Thread], h.fetchL2[a.Thread]
		} else {
			l1, l2 = h.dataL1[a.Thread], h.dataL2[a.Thread]
		}
		size := uint64(a.Size)
		if size == 0 {
			size = 1
		}
		first := a.Addr >> shift
		last := (a.Addr + size - 1) >> shift
		if h.trackFetch && a.Kind == trace.Fetch {
			// The level predictor's "per-PC" key: the most recent
			// instruction-fetch block of this thread stands in for the
			// program counter (the trace carries no PC field).
			h.lastFetch[a.Thread] = first
		}
		// Mask/clamp the array indices once so every stats increment below
		// is bounds-check free (generators only emit in-range values; the
		// clamp branch never fires and predicts perfectly, unlike a mod).
		seg, kind := a.Seg&3, a.Kind
		if kind >= trace.NumKinds {
			kind = 0
		}
		deepest := HitL1
		for b := first; b <= last; b++ {
			// Inline L1 probe (the set-associative fast path; fully-
			// associative L1s take the generic method). The line-buffer
			// check first: fetch runs and stack bursts reference the same
			// block back-to-back, skipping the set scan entirely.
			hit := false
			if b == l1.lastBlock {
				idx := l1.lastIdx
				if kind == trace.Write {
					l1.meta[idx] |= metaDirty
				}
				l1.promote(int(idx))
				hit = true
			} else if l1.assoc != 0 {
				base := l1.setBase(b)
				tags := l1.tags[base : base+l1.assoc]
				for w := range tags {
					if tags[w] == b {
						idx := base + w
						if kind == trace.Write {
							l1.meta[idx] |= metaDirty
						}
						l1.promote(idx)
						l1.lastBlock, l1.lastIdx = b, int32(idx)
						hit = true
						break
					}
				}
			} else {
				hit = l1.touch(b, kind == trace.Write)
			}
			if hit {
				l1.Stats.Hits[seg][kind]++
				continue
			}
			l1.Stats.Misses[seg][kind]++
			var lvl HitLevel
			if h.pred == nil {
				lvl = h.missPath(l1, l2, b<<shift, seg, kind)
			} else {
				lvl = h.predictPath(l1, l2, a.Thread, b<<shift, seg, kind)
			}
			if lvl > deepest {
				deepest = lvl
			}
		}
		if levels != nil {
			//lint:ignore hotalloc documented contract: callers pass a cap-sized slice (see doc comment), so append never grows; pinned by the AllocsPerRun oracle
			levels = append(levels, deepest)
		}
	}
	return levels
}

// accessBlock probes the levels in order and performs the fill cascade,
// returning the servicing level.
func (h *Hierarchy) accessBlock(l1, l2 *Cache, thread uint8, byteAddr uint64, seg trace.Segment, kind trace.Kind) HitLevel {
	if l1.Access(l1.BlockAddr(byteAddr), seg, kind) {
		return HitL1
	}
	if h.pred != nil {
		return h.predictPath(l1, l2, thread, byteAddr, seg, kind)
	}
	return h.missPath(l1, l2, byteAddr, seg, kind)
}

// missPath services an access that already missed (and recorded its miss)
// in l1: it probes L2/L3/L4 in order and performs the fill cascade,
// returning the servicing level. Probes call touch directly and record
// stats inline, skipping the Access wrapper frame per level.
func (h *Hierarchy) missPath(l1, l2 *Cache, byteAddr uint64, seg trace.Segment, kind trace.Kind) HitLevel {
	write := kind == trace.Write
	level := HitL2
	hitL2 := l2.touch(l2.BlockAddr(byteAddr), write)
	l2.Stats.record(seg, kind, hitL2)
	if !hitL2 {
		level = HitL3
		hitL3 := h.l3.touch(h.l3.BlockAddr(byteAddr), write)
		h.l3.Stats.record(seg, kind, hitL3)
		if !hitL3 {
			hitL4 := false
			if h.l4 != nil {
				// Memory-side cache: its lookup proceeds in parallel
				// with memory scheduling (§IV-C); functionally we only
				// need hit/miss.
				hitL4 = h.l4.touch(h.l4.BlockAddr(byteAddr), write)
				h.l4.Stats.record(seg, kind, hitL4)
			}
			if hitL4 {
				level = HitL4
			} else {
				level = HitMemory
				h.MemReads++
				if h.mem != nil {
					//lint:ignore hotalloc memory-model sink: internal/mem's kernels are independently //lint:hot-enforced and AllocsPerRun-pinned
					h.mem.MemRead(byteAddr, seg)
				}
				if h.l4 != nil && h.cfg.L4FillOnMiss {
					h.l4.Fill(h.l4.BlockAddr(byteAddr), seg, false)
				}
			}
			// Fill the L3 (evictions flow to the L4 victim path). The
			// probe above just established absence, so the fills below
			// take the no-rescan path.
			h.l3.fillAbsent(h.l3.BlockAddr(byteAddr), seg, false)
		}
		// Fill the L2; dirty victims write back into the L3.
		if ev, ok := l2.fillAbsent(l2.BlockAddr(byteAddr), seg, false); ok && ev.Dirty {
			h.writeback(h.l3, ev.BlockAddr<<l2.BlockShift(), ev.Seg)
		}
	}
	// Fill the L1; dirty victims write back into the L2.
	if ev, ok := l1.fillAbsent(l1.BlockAddr(byteAddr), seg, kind == trace.Write); ok && ev.Dirty {
		h.writeback(l2, ev.BlockAddr<<l1.BlockShift(), ev.Seg)
	}
	return level
}

// InstallPrefetch brings a block into core's L2 (and the shared L3) without
// touching demand statistics. It models a hardware prefetcher's fill: useful
// prefetches convert later demand misses into hits; useless ones cost
// memory bandwidth and can pollute the caches.
func (h *Hierarchy) InstallPrefetch(core int, byteAddr uint64, seg trace.Segment) {
	if core < 0 || core >= h.cfg.Cores {
		return
	}
	l2 := h.l2[core]
	if l2.Contains(l2.BlockAddr(byteAddr)) {
		return
	}
	h.PrefetchFills++
	inL3 := h.l3.Contains(h.l3.BlockAddr(byteAddr))
	inL4 := h.l4 != nil && h.l4.Contains(h.l4.BlockAddr(byteAddr))
	if !inL3 {
		if !inL4 {
			h.PrefetchMemReads++
			h.MemReads++
			if h.mem != nil {
				h.mem.MemRead(byteAddr, seg)
			}
		}
		h.l3.fillAbsent(h.l3.BlockAddr(byteAddr), seg, false)
	}
	if ev, ok := l2.fillAbsent(l2.BlockAddr(byteAddr), seg, false); ok && ev.Dirty {
		h.writeback(h.l3, ev.BlockAddr<<l2.BlockShift(), ev.Seg)
	}
}

// writeback lands a dirty block on lower: marking an existing line dirty, or
// installing it as a writeback fill (which may cascade its own eviction).
func (h *Hierarchy) writeback(lower *Cache, byteAddr uint64, seg trace.Segment) {
	block := lower.BlockAddr(byteAddr)
	if lower.MarkDirty(block) {
		return
	}
	lower.Stats.WritebackFills++
	lower.fillAbsent(block, seg, true)
}

// aggregate sums stats across a slice of per-core caches.
func aggregate(caches []*Cache) AccessStats {
	var total AccessStats
	for _, c := range caches {
		total.Add(&c.Stats)
	}
	return total
}

// L1IStats returns instruction-cache stats summed over cores.
func (h *Hierarchy) L1IStats() AccessStats { return aggregate(h.l1i) }

// L1DStats returns data-cache stats summed over cores.
func (h *Hierarchy) L1DStats() AccessStats { return aggregate(h.l1d) }

// L1Stats returns combined L1 stats (I + D) summed over cores, the "L1"
// level of Figure 6a.
func (h *Hierarchy) L1Stats() AccessStats {
	s := h.L1IStats()
	d := h.L1DStats()
	s.Add(&d)
	return s
}

// L2Stats returns L2 stats summed over cores (both halves when split).
func (h *Hierarchy) L2Stats() AccessStats {
	s := aggregate(h.l2)
	if h.cfg.SplitL2 {
		i := aggregate(h.l2i)
		s.Add(&i)
	}
	return s
}

// L3Stats returns the shared L3's stats.
func (h *Hierarchy) L3Stats() AccessStats { return h.l3.Stats }

// L4Stats returns the L4's stats; it returns a zero value when no L4 is
// configured.
func (h *Hierarchy) L4Stats() AccessStats {
	if h.l4 == nil {
		return AccessStats{}
	}
	return h.l4.Stats
}

// HasL4 reports whether an L4 is configured.
func (h *Hierarchy) HasL4() bool { return h.l4 != nil }

// PredictorStats returns the level predictor's counters; it returns a zero
// value when no predictor is configured.
func (h *Hierarchy) PredictorStats() PredictorStats {
	if h.pred == nil {
		return PredictorStats{}
	}
	return h.pred.Stats
}

// L3 exposes the shared L3 cache (read-only use intended).
func (h *Hierarchy) L3() *Cache { return h.l3 }

// L4 exposes the L4 cache, or nil.
func (h *Hierarchy) L4() *Cache { return h.l4 }

// DRAMAccesses returns total main-memory transactions (reads + writebacks).
func (h *Hierarchy) DRAMAccesses() int64 { return h.MemReads + h.MemWrites }

// ResetStats zeroes all statistics while preserving cache contents: used to
// measure steady state after a warmup phase, as the paper's traces capture
// servers already in steady state.
func (h *Hierarchy) ResetStats() {
	for _, group := range [][]*Cache{h.l1i, h.l1d, h.l2, h.l2i} {
		for _, c := range group {
			c.Stats = AccessStats{}
		}
	}
	h.l3.Stats = AccessStats{}
	if h.l4 != nil {
		h.l4.Stats = AccessStats{}
	}
	h.MemReads, h.MemWrites = 0, 0
	h.PrefetchFills, h.PrefetchMemReads = 0, 0
	if h.pred != nil {
		// Keep the trained table (it is cache-like warm state, reset only
		// by Reset) but zero the counters, like every cache's Stats.
		h.pred.Stats = PredictorStats{}
	}
}

// Reset clears all cache contents and statistics.
func (h *Hierarchy) Reset() {
	for _, group := range [][]*Cache{h.l1i, h.l1d, h.l2, h.l2i} {
		for _, c := range group {
			c.Reset()
		}
	}
	h.l3.Reset()
	if h.l4 != nil {
		h.l4.Reset()
	}
	h.MemReads, h.MemWrites = 0, 0
	h.PrefetchFills, h.PrefetchMemReads = 0, 0
	if h.pred != nil {
		h.pred.reset()
	}
	h.lastFetch = [256]uint64{}
}
