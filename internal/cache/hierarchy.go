package cache

import (
	"fmt"

	"searchmem/internal/trace"
)

// HierarchyConfig describes a full multi-core cache hierarchy: per-core
// private L1-I/L1-D/L2 caches, a shared L3, and an optional shared L4
// operating as a memory-side victim cache for L3 evictions (§IV-C).
type HierarchyConfig struct {
	// Cores is the number of cores; each gets private L1/L2 caches.
	Cores int
	// ThreadsPerCore maps trace thread ids onto cores: thread t runs on
	// core t/ThreadsPerCore (SMT threads share their core's caches).
	ThreadsPerCore int
	// L1I, L1D and L2 are per-core cache templates.
	L1I, L1D, L2 Config
	// SplitL2 gives each core separate L2 instruction and data caches of
	// half the unified capacity each (the §V "Split I/D L2 caches"
	// what-if). The L2 template's capacity is divided; all other
	// parameters carry over.
	SplitL2 bool
	// L3 is the shared last-level SRAM cache.
	L3 Config
	// L3Inclusive enables inclusion: L3 evictions back-invalidate copies
	// in the private caches (the paper notes this effect for PLT1's L3).
	L3Inclusive bool
	// L4, when non-nil, adds the paper's eDRAM L4. It must use the same
	// block size as the L3 (the paper keeps them equal to simplify the
	// victim path).
	L4 *Config
	// L4FillOnMiss fills the L4 on memory fetches instead of on L3
	// evictions (ablation of the victim-fill design choice).
	L4FillOnMiss bool
}

// Validate reports whether the hierarchy configuration is consistent.
func (hc HierarchyConfig) Validate() error {
	if hc.Cores <= 0 {
		return fmt.Errorf("hierarchy: cores must be positive, got %d", hc.Cores)
	}
	if hc.ThreadsPerCore <= 0 {
		return fmt.Errorf("hierarchy: threads per core must be positive, got %d", hc.ThreadsPerCore)
	}
	for _, cfg := range []Config{hc.L1I, hc.L1D, hc.L2, hc.L3} {
		if err := cfg.Validate(); err != nil {
			return err
		}
	}
	if hc.L1I.BlockSize != hc.L1D.BlockSize {
		return fmt.Errorf("hierarchy: L1-I and L1-D block sizes differ")
	}
	if hc.L2.BlockSize < hc.L1D.BlockSize || hc.L3.BlockSize < hc.L2.BlockSize {
		return fmt.Errorf("hierarchy: block sizes must not shrink down the hierarchy")
	}
	if hc.L4 != nil {
		if err := hc.L4.Validate(); err != nil {
			return err
		}
		if hc.L4.BlockSize != hc.L3.BlockSize {
			return fmt.Errorf("hierarchy: L4 block size %d must equal L3 block size %d",
				hc.L4.BlockSize, hc.L3.BlockSize)
		}
	}
	return nil
}

// Hierarchy is a functional multi-level cache simulator. It is not safe for
// concurrent use; the trace interleaving (trace.Interleave) models
// multi-threaded execution instead.
type Hierarchy struct {
	cfg HierarchyConfig

	l1i, l1d, l2 []*Cache
	l2i          []*Cache // only with SplitL2
	l3           *Cache
	l4           *Cache

	// MemReads counts demand fetches that reached main memory; MemWrites
	// counts dirty writebacks that reached main memory. Together they are
	// the DRAM traffic the L4 is designed to filter (Figure 13).
	MemReads, MemWrites int64
	// PrefetchFills counts blocks installed by InstallPrefetch;
	// PrefetchMemReads counts the subset that had to read main memory
	// (prefetch bandwidth cost).
	PrefetchFills, PrefetchMemReads int64
}

// HitLevel identifies the hierarchy level that serviced an access.
type HitLevel uint8

const (
	// HitL1 through HitMemory name the servicing level in depth order.
	HitL1 HitLevel = iota + 1
	HitL2
	HitL3
	HitL4
	HitMemory
)

// String implements fmt.Stringer.
func (l HitLevel) String() string {
	switch l {
	case HitL1:
		return "L1"
	case HitL2:
		return "L2"
	case HitL3:
		return "L3"
	case HitL4:
		return "L4"
	case HitMemory:
		return "memory"
	default:
		return fmt.Sprintf("level(%d)", uint8(l))
	}
}

// NewHierarchy builds a hierarchy; it panics on invalid configuration.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	h := &Hierarchy{cfg: cfg}
	for c := 0; c < cfg.Cores; c++ {
		mk := func(t Config, kind string) *Cache {
			t.Name = fmt.Sprintf("%s[core%d]", kind, c)
			t.Seed ^= uint64(c+1) * 0x9e3779b9
			return New(t)
		}
		h.l1i = append(h.l1i, mk(cfg.L1I, "L1-I"))
		h.l1d = append(h.l1d, mk(cfg.L1D, "L1-D"))
		if cfg.SplitL2 {
			half := cfg.L2
			half.Size /= 2
			blocks := half.Size / int64(half.BlockSize)
			if half.Assoc > 0 {
				blocks -= blocks % int64(half.Assoc)
				half.Size = blocks * int64(half.BlockSize)
			}
			h.l2 = append(h.l2, mk(half, "L2-D"))
			h.l2i = append(h.l2i, mk(half, "L2-I"))
		} else {
			h.l2 = append(h.l2, mk(cfg.L2, "L2"))
		}
	}
	h.l3 = New(cfg.L3)
	if cfg.L4 != nil {
		h.l4 = New(*cfg.L4)
		h.l4.OnEvict = func(l Line) {
			if l.Dirty {
				h.MemWrites++
			}
		}
	}
	h.l3.OnEvict = h.onL3Evict
	return h
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// onL3Evict implements inclusion back-invalidation and the L4 victim path.
func (h *Hierarchy) onL3Evict(l Line) {
	dirty := l.Dirty
	byteAddr := l.BlockAddr << h.l3.BlockShift()
	if h.cfg.L3Inclusive {
		// Invalidate every covered upper-level block; fold any dirty
		// upper copy into the evicted line so the data is not lost.
		for c := 0; c < h.cfg.Cores; c++ {
			dirty = h.backInvalidate(h.l1i[c], byteAddr, int64(h.cfg.L3.BlockSize)) || dirty
			dirty = h.backInvalidate(h.l1d[c], byteAddr, int64(h.cfg.L3.BlockSize)) || dirty
			dirty = h.backInvalidate(h.l2[c], byteAddr, int64(h.cfg.L3.BlockSize)) || dirty
			if h.cfg.SplitL2 {
				dirty = h.backInvalidate(h.l2i[c], byteAddr, int64(h.cfg.L3.BlockSize)) || dirty
			}
		}
	}
	if h.l4 != nil && !h.cfg.L4FillOnMiss {
		h.l4.Fill(h.l4.BlockAddr(byteAddr), l.Seg, dirty)
		return // a dirty line now lives in the L4; written back on L4 eviction
	}
	if dirty {
		h.MemWrites++
	}
}

// backInvalidate removes every block of c covered by [byteAddr,
// byteAddr+span) and reports whether any removed line was dirty.
func (h *Hierarchy) backInvalidate(c *Cache, byteAddr uint64, span int64) bool {
	dirty := false
	step := uint64(c.Config().BlockSize)
	for off := uint64(0); off < uint64(span); off += step {
		if line, present := c.Invalidate(c.BlockAddr(byteAddr + off)); present {
			c.Stats.BackInvalidations++
			dirty = dirty || line.Dirty
		}
	}
	return dirty
}

// coreFor maps a hardware thread to its core.
func (h *Hierarchy) coreFor(thread uint8) int {
	return int(thread) / h.cfg.ThreadsPerCore % h.cfg.Cores
}

// Access runs one trace access through the hierarchy and returns the
// deepest level that had to service it. Accesses that span multiple L1
// blocks are split (each covered block is one probe, matching a banked
// cache servicing an unaligned reference).
func (h *Hierarchy) Access(a trace.Access) HitLevel {
	core := h.coreFor(a.Thread)
	l1 := h.l1d[core]
	if a.Kind == trace.Fetch {
		l1 = h.l1i[core]
	}
	size := uint64(a.Size)
	if size == 0 {
		size = 1
	}
	first := l1.BlockAddr(a.Addr)
	last := l1.BlockAddr(a.Addr + size - 1)
	deepest := HitL1
	for b := first; b <= last; b++ {
		if lvl := h.accessBlock(core, l1, b<<l1.BlockShift(), a.Seg, a.Kind); lvl > deepest {
			deepest = lvl
		}
	}
	return deepest
}

// Drain runs an entire stream through the hierarchy.
func (h *Hierarchy) Drain(s trace.Stream) {
	var a trace.Access
	for s.Next(&a) {
		h.Access(a)
	}
}

// accessBlock probes the levels in order and performs the fill cascade,
// returning the servicing level.
func (h *Hierarchy) accessBlock(core int, l1 *Cache, byteAddr uint64, seg trace.Segment, kind trace.Kind) HitLevel {
	l2 := h.l2[core]
	if h.cfg.SplitL2 && kind == trace.Fetch {
		l2 = h.l2i[core]
	}
	if l1.Access(l1.BlockAddr(byteAddr), seg, kind) {
		return HitL1
	}
	level := HitL2
	hitL2 := l2.Access(l2.BlockAddr(byteAddr), seg, kind)
	if !hitL2 {
		level = HitL3
		hitL3 := h.l3.Access(h.l3.BlockAddr(byteAddr), seg, kind)
		if !hitL3 {
			hitL4 := false
			if h.l4 != nil {
				// Memory-side cache: its lookup proceeds in parallel
				// with memory scheduling (§IV-C); functionally we only
				// need hit/miss.
				hitL4 = h.l4.Access(h.l4.BlockAddr(byteAddr), seg, kind)
			}
			if hitL4 {
				level = HitL4
			} else {
				level = HitMemory
				h.MemReads++
				if h.l4 != nil && h.cfg.L4FillOnMiss {
					h.l4.Fill(h.l4.BlockAddr(byteAddr), seg, false)
				}
			}
			// Fill the L3 (evictions flow to the L4 victim path).
			h.l3.Fill(h.l3.BlockAddr(byteAddr), seg, false)
		}
		// Fill the L2; dirty victims write back into the L3.
		if ev, ok := l2.Fill(l2.BlockAddr(byteAddr), seg, false); ok && ev.Dirty {
			h.writeback(h.l3, ev.BlockAddr<<l2.BlockShift(), ev.Seg)
		}
	}
	// Fill the L1; dirty victims write back into the L2.
	if ev, ok := l1.Fill(l1.BlockAddr(byteAddr), seg, kind == trace.Write); ok && ev.Dirty {
		h.writeback(l2, ev.BlockAddr<<l1.BlockShift(), ev.Seg)
	}
	return level
}

// InstallPrefetch brings a block into core's L2 (and the shared L3) without
// touching demand statistics. It models a hardware prefetcher's fill: useful
// prefetches convert later demand misses into hits; useless ones cost
// memory bandwidth and can pollute the caches.
func (h *Hierarchy) InstallPrefetch(core int, byteAddr uint64, seg trace.Segment) {
	if core < 0 || core >= h.cfg.Cores {
		return
	}
	l2 := h.l2[core]
	if l2.Contains(l2.BlockAddr(byteAddr)) {
		return
	}
	h.PrefetchFills++
	inL3 := h.l3.Contains(h.l3.BlockAddr(byteAddr))
	inL4 := h.l4 != nil && h.l4.Contains(h.l4.BlockAddr(byteAddr))
	if !inL3 {
		if !inL4 {
			h.PrefetchMemReads++
			h.MemReads++
		}
		h.l3.Fill(h.l3.BlockAddr(byteAddr), seg, false)
	}
	if ev, ok := l2.Fill(l2.BlockAddr(byteAddr), seg, false); ok && ev.Dirty {
		h.writeback(h.l3, ev.BlockAddr<<l2.BlockShift(), ev.Seg)
	}
}

// writeback lands a dirty block on lower: marking an existing line dirty, or
// installing it as a writeback fill (which may cascade its own eviction).
func (h *Hierarchy) writeback(lower *Cache, byteAddr uint64, seg trace.Segment) {
	block := lower.BlockAddr(byteAddr)
	if lower.MarkDirty(block) {
		return
	}
	lower.Stats.WritebackFills++
	lower.Fill(block, seg, true)
}

// aggregate sums stats across a slice of per-core caches.
func aggregate(caches []*Cache) AccessStats {
	var total AccessStats
	for _, c := range caches {
		total.Add(&c.Stats)
	}
	return total
}

// L1IStats returns instruction-cache stats summed over cores.
func (h *Hierarchy) L1IStats() AccessStats { return aggregate(h.l1i) }

// L1DStats returns data-cache stats summed over cores.
func (h *Hierarchy) L1DStats() AccessStats { return aggregate(h.l1d) }

// L1Stats returns combined L1 stats (I + D) summed over cores, the "L1"
// level of Figure 6a.
func (h *Hierarchy) L1Stats() AccessStats {
	s := h.L1IStats()
	d := h.L1DStats()
	s.Add(&d)
	return s
}

// L2Stats returns L2 stats summed over cores (both halves when split).
func (h *Hierarchy) L2Stats() AccessStats {
	s := aggregate(h.l2)
	if h.cfg.SplitL2 {
		i := aggregate(h.l2i)
		s.Add(&i)
	}
	return s
}

// L3Stats returns the shared L3's stats.
func (h *Hierarchy) L3Stats() AccessStats { return h.l3.Stats }

// L4Stats returns the L4's stats; it returns a zero value when no L4 is
// configured.
func (h *Hierarchy) L4Stats() AccessStats {
	if h.l4 == nil {
		return AccessStats{}
	}
	return h.l4.Stats
}

// HasL4 reports whether an L4 is configured.
func (h *Hierarchy) HasL4() bool { return h.l4 != nil }

// L3 exposes the shared L3 cache (read-only use intended).
func (h *Hierarchy) L3() *Cache { return h.l3 }

// L4 exposes the L4 cache, or nil.
func (h *Hierarchy) L4() *Cache { return h.l4 }

// DRAMAccesses returns total main-memory transactions (reads + writebacks).
func (h *Hierarchy) DRAMAccesses() int64 { return h.MemReads + h.MemWrites }

// ResetStats zeroes all statistics while preserving cache contents: used to
// measure steady state after a warmup phase, as the paper's traces capture
// servers already in steady state.
func (h *Hierarchy) ResetStats() {
	for _, group := range [][]*Cache{h.l1i, h.l1d, h.l2, h.l2i} {
		for _, c := range group {
			c.Stats = AccessStats{}
		}
	}
	h.l3.Stats = AccessStats{}
	if h.l4 != nil {
		h.l4.Stats = AccessStats{}
	}
	h.MemReads, h.MemWrites = 0, 0
	h.PrefetchFills, h.PrefetchMemReads = 0, 0
}

// Reset clears all cache contents and statistics.
func (h *Hierarchy) Reset() {
	for _, group := range [][]*Cache{h.l1i, h.l1d, h.l2, h.l2i} {
		for _, c := range group {
			c.Reset()
		}
	}
	h.l3.Reset()
	if h.l4 != nil {
		h.l4.Reset()
	}
	h.MemReads, h.MemWrites = 0, 0
	h.PrefetchFills, h.PrefetchMemReads = 0, 0
}
