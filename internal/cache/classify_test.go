package cache

import (
	"testing"

	"searchmem/internal/stats"
	"searchmem/internal/trace"
)

func TestClassifierColdMisses(t *testing.T) {
	cl := NewClassifier(Config{Name: "c", Size: 1 << 10, BlockSize: 64, Assoc: 4})
	// Every block touched exactly once: all misses are cold.
	for i := uint64(0); i < 100; i++ {
		cl.Observe(trace.Access{Addr: i * 64, Size: 8, Seg: trace.Shard, Kind: trace.Read})
	}
	if got := cl.Counts[trace.Shard][MissCold]; got != 100 {
		t.Fatalf("cold = %d, want 100", got)
	}
	if cl.Counts[trace.Shard][MissCapacity] != 0 || cl.Counts[trace.Shard][MissConflict] != 0 {
		t.Fatal("single-touch stream produced non-cold misses")
	}
}

func TestClassifierCapacityMisses(t *testing.T) {
	// Cyclic sweep over 2x the cache capacity: after the first pass every
	// miss is a capacity miss (LRU keeps nothing useful).
	cl := NewClassifier(Config{Name: "c", Size: 1 << 10, BlockSize: 64, Assoc: 16})
	const blocks = 32 // cache holds 16
	for pass := 0; pass < 5; pass++ {
		for i := uint64(0); i < blocks; i++ {
			cl.Observe(trace.Access{Addr: i * 64, Size: 8, Seg: trace.Heap, Kind: trace.Read})
		}
	}
	if cl.Counts[trace.Heap][MissCapacity] == 0 {
		t.Fatal("cyclic over-capacity stream produced no capacity misses")
	}
	if cl.Counts[trace.Heap][MissConflict] != 0 {
		t.Fatal("fully-used 16-way set should not conflict on 32-block cycle")
	}
}

func TestClassifierConflictMisses(t *testing.T) {
	// Direct-mapped cache with two hot blocks mapping to the same set:
	// alternating accesses conflict but fit easily in the FA shadow.
	cl := NewClassifier(Config{Name: "c", Size: 1 << 10, BlockSize: 64, Assoc: 1})
	// 16 sets: blocks 0 and 16 collide.
	for i := 0; i < 50; i++ {
		cl.Observe(trace.Access{Addr: 0, Size: 8, Seg: trace.Heap, Kind: trace.Read})
		cl.Observe(trace.Access{Addr: 16 * 64, Size: 8, Seg: trace.Heap, Kind: trace.Read})
	}
	if cl.Counts[trace.Heap][MissConflict] == 0 {
		t.Fatal("ping-pong on one set produced no conflict misses")
	}
	if cl.Counts[trace.Heap][MissCapacity] != 0 {
		t.Fatal("two-block working set cannot have capacity misses")
	}
}

func TestClassifierConservation(t *testing.T) {
	cl := NewClassifier(Config{Name: "c", Size: 1 << 10, BlockSize: 64, Assoc: 2})
	rng := stats.NewRNG(3)
	const n = 5000
	for i := 0; i < n; i++ {
		cl.Observe(trace.Access{Addr: rng.Uint64n(256) * 64, Size: 8, Seg: trace.Heap, Kind: trace.Read})
	}
	total := cl.Hits[trace.Heap] + cl.Misses(trace.Heap)
	if total != n {
		t.Fatalf("hits+misses = %d, want %d", total, n)
	}
	if cl.TotalMisses() != cl.Misses(trace.Heap) {
		t.Fatal("total misses mismatch")
	}
	// Shares across the three classes sum to 1.
	sum := cl.ClassShare(MissCold) + cl.ClassShare(MissCapacity) + cl.ClassShare(MissConflict)
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("class shares sum to %v", sum)
	}
}

func TestClassifierCATShadow(t *testing.T) {
	// With way partitioning the shadow must shrink too: a 4-of-16-way
	// partition on a 1 KiB cache behaves like a 256 B cache.
	cl := NewClassifier(Config{Name: "c", Size: 1 << 10, BlockSize: 64, Assoc: 16, AllocWays: 4})
	if got := cl.shadow.Config().Size; got != 256 {
		t.Fatalf("shadow size %d, want 256", got)
	}
}

func TestMissClassString(t *testing.T) {
	if MissCold.String() != "cold" || MissCapacity.String() != "capacity" || MissConflict.String() != "conflict" {
		t.Fatal("miss class strings wrong")
	}
	if MissClass(9).String() != "missclass(9)" {
		t.Fatal("unknown class string wrong")
	}
}

func TestClassifierDrain(t *testing.T) {
	cl := NewClassifier(Config{Name: "c", Size: 1 << 10, BlockSize: 64, Assoc: 4})
	cl.Drain(trace.NewSliceStream([]trace.Access{
		{Addr: 0, Size: 8, Seg: trace.Heap, Kind: trace.Read},
		{Addr: 0, Size: 8, Seg: trace.Heap, Kind: trace.Read},
	}))
	if cl.Hits[trace.Heap] != 1 || cl.Counts[trace.Heap][MissCold] != 1 {
		t.Fatal("drain miscounted")
	}
}

func TestAccessStatsHelpers(t *testing.T) {
	var s AccessStats
	s.record(trace.Heap, trace.Read, true)
	s.record(trace.Heap, trace.Read, false)
	s.record(trace.Code, trace.Fetch, false)
	if s.SegHits(trace.Heap) != 1 || s.SegMisses(trace.Heap) != 1 {
		t.Fatal("segment counts wrong")
	}
	if s.TotalHits() != 1 || s.TotalMisses() != 2 || s.Accesses() != 3 {
		t.Fatal("totals wrong")
	}
	if s.HitRate() < 0.33 || s.HitRate() > 0.34 {
		t.Fatalf("hit rate %v", s.HitRate())
	}
	if s.SegHitRate(trace.Heap) != 0.5 {
		t.Fatalf("seg hit rate %v", s.SegHitRate(trace.Heap))
	}
	if s.SegHitRate(trace.Stack) != 0 {
		t.Fatal("empty segment hit rate must be 0")
	}
	if s.MPKI(1000) != 2 {
		t.Fatalf("MPKI %v", s.MPKI(1000))
	}
	if s.SegMPKI(trace.Code, 1000) != 1 {
		t.Fatalf("seg MPKI %v", s.SegMPKI(trace.Code, 1000))
	}
	if s.KindMPKI(trace.Fetch, 1000) != 1 {
		t.Fatalf("kind MPKI %v", s.KindMPKI(trace.Fetch, 1000))
	}
	if s.MPKI(0) != 0 || s.SegMPKI(trace.Code, 0) != 0 || s.KindMPKI(trace.Fetch, 0) != 0 {
		t.Fatal("zero-instruction MPKI must be 0")
	}
	var other AccessStats
	other.record(trace.Heap, trace.Write, true)
	s.Add(&other)
	if s.TotalHits() != 2 {
		t.Fatal("Add failed")
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}
