package cache

import (
	"math"
	"testing"

	"searchmem/internal/stats"
	"searchmem/internal/trace"
)

func TestStackDistSimpleReuse(t *testing.T) {
	sd := NewStackDist(64)
	// Access A, B, A: A's reuse distance is 1 block (only B between).
	sd.Observe(trace.Access{Addr: 0, Size: 8, Seg: trace.Heap})
	sd.Observe(trace.Access{Addr: 64, Size: 8, Seg: trace.Heap})
	sd.Observe(trace.Access{Addr: 0, Size: 8, Seg: trace.Heap})
	if got := sd.ColdMisses(trace.Heap); got != 2 {
		t.Fatalf("cold misses %d, want 2", got)
	}
	// A cache of 2+ blocks hits the reuse; a 1-block cache misses it.
	if hits := sd.Hits(trace.Heap, 2*64); hits != 1 {
		t.Fatalf("hits at 2 blocks = %v, want 1", hits)
	}
	if hits := sd.Hits(trace.Heap, 64); hits != 0 {
		t.Fatalf("hits at 1 block = %v, want 0", hits)
	}
}

func TestStackDistZeroDistance(t *testing.T) {
	sd := NewStackDist(64)
	sd.Observe(trace.Access{Addr: 0, Size: 8, Seg: trace.Heap})
	sd.Observe(trace.Access{Addr: 0, Size: 8, Seg: trace.Heap})
	// Immediate reuse hits at any capacity >= 1 block.
	if hits := sd.Hits(trace.Heap, 64); hits != 1 {
		t.Fatalf("immediate reuse hits = %v, want 1", hits)
	}
}

func TestStackDistMatchesFullyAssociativeSim(t *testing.T) {
	// The profiler's predicted hit counts must match a directly simulated
	// fully-associative LRU cache at power-of-two capacities.
	rng := stats.NewRNG(31)
	z := stats.NewZipf(rng, 2048, 0.85)
	blocks := make([]uint64, 40000)
	for i := range blocks {
		blocks[i] = z.Next()
	}
	sd := NewStackDist(64)
	for _, b := range blocks {
		sd.Observe(trace.Access{Addr: b * 64, Size: 1, Seg: trace.Heap})
	}
	for _, capBlocks := range []int64{16, 64, 256, 1024} {
		c := New(Config{Name: "fa", Size: capBlocks * 64, BlockSize: 64, Assoc: 0})
		var simHits int64
		for _, b := range blocks {
			if c.Access(b, trace.Heap, trace.Read) {
				simHits++
			} else {
				c.Fill(b, trace.Heap, false)
			}
		}
		predicted := sd.Hits(trace.Heap, capBlocks*64)
		if math.Abs(predicted-float64(simHits)) > 0.5 {
			t.Fatalf("capacity %d blocks: stackdist %v vs simulated %d", capBlocks, predicted, simHits)
		}
	}
}

func TestStackDistMonotone(t *testing.T) {
	rng := stats.NewRNG(41)
	sd := NewStackDist(64)
	for i := 0; i < 20000; i++ {
		sd.Observe(trace.Access{Addr: rng.Uint64n(4096) * 64, Size: 1, Seg: trace.Shard})
	}
	prev := -1.0
	for capBytes := int64(64); capBytes <= 1<<20; capBytes *= 2 {
		h := sd.Hits(trace.Shard, capBytes)
		if h < prev {
			t.Fatalf("hits decreased with capacity at %d bytes", capBytes)
		}
		prev = h
	}
	// At huge capacity, misses equal cold misses.
	missesAtInf := sd.Misses(trace.Shard, 1<<40)
	if math.Abs(missesAtInf-float64(sd.ColdMisses(trace.Shard))) > 0.5 {
		t.Fatalf("misses at infinite capacity %v != cold %d", missesAtInf, sd.ColdMisses(trace.Shard))
	}
}

func TestStackDistPerSegmentSeparation(t *testing.T) {
	sd := NewStackDist(64)
	sd.Observe(trace.Access{Addr: 0, Size: 8, Seg: trace.Heap})
	sd.Observe(trace.Access{Addr: 1 << 30, Size: 8, Seg: trace.Shard})
	if sd.Accesses(trace.Heap) != 1 || sd.Accesses(trace.Shard) != 1 {
		t.Fatal("per-segment access counts wrong")
	}
	if sd.TotalAccesses() != 2 {
		t.Fatal("total accesses wrong")
	}
}

func TestStackDistFootprint(t *testing.T) {
	sd := NewStackDist(64)
	for i := uint64(0); i < 100; i++ {
		sd.Observe(trace.Access{Addr: i * 64, Size: 1, Seg: trace.Heap})
	}
	if sd.Footprint() != 100*64 {
		t.Fatalf("footprint %d, want %d", sd.Footprint(), 100*64)
	}
}

func TestStackDistMPKI(t *testing.T) {
	sd := NewStackDist(64)
	for i := uint64(0); i < 1000; i++ {
		sd.Observe(trace.Access{Addr: i * 64, Size: 1, Seg: trace.Heap})
	}
	// All cold: MPKI at any size = 1000 misses / 1 Kinstr = 1000 * ratio.
	mpki := sd.SegMPKI(trace.Heap, 1<<20, 10000)
	if math.Abs(mpki-100) > 1e-9 {
		t.Fatalf("MPKI = %v, want 100", mpki)
	}
	if sd.CombinedMPKI(1<<20, 0) != 0 {
		t.Fatal("zero instructions must give 0 MPKI")
	}
}

func TestStackDistPanicsOnBadBlock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad block size accepted")
		}
	}()
	NewStackDist(100)
}

func TestDistBucket(t *testing.T) {
	cases := map[int64]int{0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4, 1023: 10, 1024: 11}
	for d, want := range cases {
		if got := distBucket(d); got != want {
			t.Errorf("distBucket(%d) = %d, want %d", d, got, want)
		}
	}
}

func TestOstreeBasics(t *testing.T) {
	var tr ostree
	tr.init()
	for i := uint64(1); i <= 100; i++ {
		tr.insertMax(i)
	}
	if tr.count() != 100 {
		t.Fatalf("count = %d", tr.count())
	}
	if got := tr.countGreater(50); got != 50 {
		t.Fatalf("countGreater(50) = %d", got)
	}
	tr.remove(75)
	if got := tr.countGreater(50); got != 49 {
		t.Fatalf("after remove: countGreater(50) = %d", got)
	}
	if tr.count() != 99 {
		t.Fatalf("count after remove = %d", tr.count())
	}
}

func TestOstreeRandomOps(t *testing.T) {
	var tr ostree
	tr.init()
	rng := stats.NewRNG(7)
	live := map[uint64]bool{}
	var next uint64
	for i := 0; i < 5000; i++ {
		if len(live) == 0 || rng.Bool(0.6) {
			next++
			tr.insertMax(next)
			live[next] = true
		} else {
			// Remove a random live key.
			var k uint64
			n := rng.Intn(len(live))
			for key := range live {
				if n == 0 {
					k = key
					break
				}
				n--
			}
			tr.remove(k)
			delete(live, k)
		}
	}
	if int(tr.count()) != len(live) {
		t.Fatalf("tree count %d != live %d", tr.count(), len(live))
	}
	// Verify a few rank queries against brute force.
	for probe := uint64(0); probe <= next; probe += next/7 + 1 {
		want := int64(0)
		for k := range live {
			if k > probe {
				want++
			}
		}
		if got := tr.countGreater(probe); got != want {
			t.Fatalf("countGreater(%d) = %d, want %d", probe, got, want)
		}
	}
}

func TestStackDistDrainAndRates(t *testing.T) {
	sd := NewStackDist(64)
	accs := []trace.Access{
		{Addr: 0, Size: 8, Seg: trace.Heap},
		{Addr: 64, Size: 8, Seg: trace.Shard},
		{Addr: 0, Size: 8, Seg: trace.Heap},
	}
	sd.Drain(trace.NewSliceStream(accs))
	if sd.TotalAccesses() != 3 {
		t.Fatalf("drained %d", sd.TotalAccesses())
	}
	if hr := sd.HitRate(trace.Heap, 1<<20); hr != 0.5 {
		t.Fatalf("heap hit rate %v", hr)
	}
	if hr := sd.HitRate(trace.Stack, 1<<20); hr != 0 {
		t.Fatalf("empty-segment hit rate %v", hr)
	}
	chr := sd.CombinedHitRate(1 << 20)
	if chr <= 0.3 || chr >= 0.4 {
		t.Fatalf("combined hit rate %v, want 1/3", chr)
	}
	if sd.CombinedHitRate(0) != 0 {
		// capacity below one block: no hits
		t.Fatal("zero capacity should hit nothing")
	}
}
