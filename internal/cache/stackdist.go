package cache

import (
	"fmt"
	"math"

	"searchmem/internal/stats"
	"searchmem/internal/trace"
)

// StackDist is a one-pass LRU stack-distance (reuse-distance) profiler.
//
// A single pass over a trace yields the hit rate of a fully-associative LRU
// cache of *every* capacity at once (Mattson's inclusion property), which is
// how the capacity-sweep experiments (Figures 6b/6c and 13) evaluate dozens
// of cache sizes without re-simulating. The paper itself justifies the
// fully-associative approximation: eliminating all conflicts changes L2/L3
// MPKI by under 1% (Figure 7a).
//
// Distances are bucketed at power-of-two boundaries, so hit rates are exact
// for power-of-two capacities and log-interpolated in between.
type StackDist struct {
	blockShift uint
	time       uint64
	last       map[uint64]uint64 // block -> last access time
	stride     int64             // sampling stride of the observed stream (1 = exhaustive)

	tree ostree

	// counts[seg][b] tallies accesses with distance in bucket b, where
	// bucket 0 is distance 0 and bucket b >= 1 covers [2^(b-1), 2^b).
	counts [trace.NumSegments][65]int64
	cold   [trace.NumSegments]int64 // first-touch accesses (infinite distance)
}

// NewStackDist returns a profiler at the given block granularity (a power of
// two; 64 matches the paper's simulations).
func NewStackDist(blockSize int) *StackDist {
	if blockSize <= 0 || blockSize&(blockSize-1) != 0 {
		panic("cache: stack distance block size must be a positive power of two")
	}
	s := &StackDist{last: make(map[uint64]uint64), stride: 1}
	for bs := blockSize; bs > 1; bs >>= 1 {
		s.blockShift++
	}
	s.tree.init()
	return s
}

// SetStride declares that the observed stream was systematically thinned to
// every nth access (trace.Sample with the same n), so count-derived metrics
// (Accesses, Hits, Misses, ColdMisses and the MPKIs built on them) are
// rescaled by the stride and stay comparable against per-instruction
// denominators from the *exhaustive* run. Ratios (HitRate, CombinedHitRate)
// are unaffected. Footprint is NOT rescaled — sampling genuinely observes
// fewer distinct blocks. n < 1 resets to exhaustive.
func (s *StackDist) SetStride(n int) {
	if n < 1 {
		n = 1
	}
	s.stride = int64(n)
}

// Observe records one access (block-aligned; spans count each block).
func (s *StackDist) Observe(a trace.Access) {
	size := uint64(a.Size)
	if size == 0 {
		size = 1
	}
	first := a.Addr >> s.blockShift
	last := (a.Addr + size - 1) >> s.blockShift
	for b := first; b <= last; b++ {
		s.observeBlock(b, a.Seg)
	}
}

func (s *StackDist) observeBlock(block uint64, seg trace.Segment) {
	s.time++
	t := s.time
	if old, seen := s.last[block]; seen {
		dist := s.tree.countGreater(old)
		s.tree.remove(old)
		s.counts[seg][distBucket(dist)]++
	} else {
		s.cold[seg]++
	}
	s.tree.insertMax(t)
	s.last[block] = t
}

// distBucket maps a distance to its bucket index.
func distBucket(d int64) int {
	if d == 0 {
		return 0
	}
	b := 1
	for d > 1 {
		d >>= 1
		b++
	}
	return b
}

// Drain consumes an entire stream. Streams that also implement
// trace.BatchStream (Shared views, slice streams) are consumed in batches,
// skipping the per-access interface dispatch; the observation sequence is
// identical either way.
func (s *StackDist) Drain(st trace.Stream) {
	if bs, ok := st.(trace.BatchStream); ok {
		for {
			b := bs.NextBatch()
			if len(b) == 0 {
				return
			}
			for i := range b {
				s.Observe(b[i])
			}
		}
	}
	var a trace.Access
	for st.Next(&a) {
		s.Observe(a)
	}
}

// Accesses returns the number of block probes observed for seg, rescaled by
// the sampling stride (SetStride) to estimate the exhaustive count.
func (s *StackDist) Accesses(seg trace.Segment) int64 {
	t := s.cold[seg]
	for _, c := range s.counts[seg] {
		t += c
	}
	return t * s.stride
}

// TotalAccesses returns block probes across all segments.
func (s *StackDist) TotalAccesses() int64 {
	var t int64
	for seg := trace.Segment(0); seg < trace.NumSegments; seg++ {
		t += s.Accesses(seg)
	}
	return t
}

// ColdMisses returns first-touch accesses for seg (stride-rescaled): these
// miss in a cache of any capacity.
func (s *StackDist) ColdMisses(seg trace.Segment) int64 { return s.cold[seg] * s.stride }

// Hits returns how many of seg's accesses would hit in a fully-associative
// LRU cache of capBytes capacity. Exact for power-of-two capacities (in
// blocks); log-interpolated otherwise.
func (s *StackDist) Hits(seg trace.Segment, capBytes int64) float64 {
	capBlocks := float64(capBytes) / math.Exp2(float64(s.blockShift))
	if capBlocks < 1 {
		return 0
	}
	m := math.Log2(capBlocks)
	whole := int(math.Floor(m))
	var hits float64
	for b := 0; b <= whole && b < len(s.counts[seg]); b++ {
		hits += float64(s.counts[seg][b])
	}
	// Interpolate within the partially covered bucket.
	frac := m - float64(whole)
	if frac > 0 && whole+1 < len(s.counts[seg]) {
		hits += frac * float64(s.counts[seg][whole+1])
	}
	return hits * float64(s.stride)
}

// HitRate returns seg's hit rate at capBytes, or 0 with no accesses.
func (s *StackDist) HitRate(seg trace.Segment, capBytes int64) float64 {
	a := s.Accesses(seg)
	if a == 0 {
		return 0
	}
	return s.Hits(seg, capBytes) / float64(a)
}

// Misses returns seg's miss count at capBytes.
func (s *StackDist) Misses(seg trace.Segment, capBytes int64) float64 {
	return float64(s.Accesses(seg)) - s.Hits(seg, capBytes)
}

// CombinedHitRate returns the hit rate across all segments at capBytes.
func (s *StackDist) CombinedHitRate(capBytes int64) float64 {
	total := s.TotalAccesses()
	if total == 0 {
		return 0
	}
	var hits float64
	for seg := trace.Segment(0); seg < trace.NumSegments; seg++ {
		hits += s.Hits(seg, capBytes)
	}
	return hits / float64(total)
}

// SegMPKI returns seg's misses per kilo-instruction at capBytes.
func (s *StackDist) SegMPKI(seg trace.Segment, capBytes int64, instructions int64) float64 {
	if instructions == 0 {
		return 0
	}
	return s.Misses(seg, capBytes) / float64(instructions) * 1000
}

// CombinedMPKI returns total misses per kilo-instruction at capBytes.
func (s *StackDist) CombinedMPKI(capBytes int64, instructions int64) float64 {
	if instructions == 0 {
		return 0
	}
	var m float64
	for seg := trace.Segment(0); seg < trace.NumSegments; seg++ {
		m += s.Misses(seg, capBytes)
	}
	return m / float64(instructions) * 1000
}

// Footprint returns the distinct blocks observed, in bytes.
func (s *StackDist) Footprint() int64 {
	return int64(len(s.last)) << s.blockShift
}

// --- order-statistic treap over access times ---

// ostree is an order-statistic treap keyed by access time. Keys are inserted
// in strictly increasing order (insertMax) and removed arbitrarily; it
// supports counting keys greater than a given key in O(log n).
type ostree struct {
	key   []uint64
	prio  []uint32
	size  []int32
	left  []int32
	right []int32
	free  []int32
	root  int32
	rng   *stats.RNG
}

func (t *ostree) init() {
	t.root = -1
	t.rng = stats.NewRNG(0x05Dd15f)
}

func (t *ostree) newNode(key uint64) int32 {
	if n := len(t.free); n > 0 {
		idx := t.free[n-1]
		t.free = t.free[:n-1]
		t.key[idx] = key
		t.prio[idx] = uint32(t.rng.Uint64())
		t.size[idx] = 1
		t.left[idx], t.right[idx] = -1, -1
		return idx
	}
	t.key = append(t.key, key)
	t.prio = append(t.prio, uint32(t.rng.Uint64()))
	t.size = append(t.size, 1)
	t.left = append(t.left, -1)
	t.right = append(t.right, -1)
	return int32(len(t.key) - 1)
}

func (t *ostree) sz(n int32) int32 {
	if n < 0 {
		return 0
	}
	return t.size[n]
}

func (t *ostree) pull(n int32) {
	t.size[n] = 1 + t.sz(t.left[n]) + t.sz(t.right[n])
}

func (t *ostree) merge(l, r int32) int32 {
	if l < 0 {
		return r
	}
	if r < 0 {
		return l
	}
	if t.prio[l] > t.prio[r] {
		t.right[l] = t.merge(t.right[l], r)
		t.pull(l)
		return l
	}
	t.left[r] = t.merge(l, t.left[r])
	t.pull(r)
	return r
}

// insertMax inserts a key greater than every existing key.
func (t *ostree) insertMax(key uint64) {
	n := t.newNode(key)
	t.root = t.merge(t.root, n)
}

// remove deletes key (which must be present).
func (t *ostree) remove(key uint64) {
	var rec func(n int32) int32
	rec = func(n int32) int32 {
		if n < 0 {
			panic(fmt.Sprintf("cache: stack-distance tree missing key %d", key))
		}
		if t.key[n] == key {
			res := t.merge(t.left[n], t.right[n])
			t.free = append(t.free, n)
			return res
		}
		if key < t.key[n] {
			t.left[n] = rec(t.left[n])
		} else {
			t.right[n] = rec(t.right[n])
		}
		t.pull(n)
		return n
	}
	t.root = rec(t.root)
}

// countGreater returns how many keys are strictly greater than key.
func (t *ostree) countGreater(key uint64) int64 {
	var count int64
	n := t.root
	for n >= 0 {
		if t.key[n] > key {
			count += int64(t.sz(t.right[n])) + 1
			n = t.left[n]
		} else {
			n = t.right[n]
		}
	}
	return count
}

// count returns the total number of keys.
func (t *ostree) count() int64 { return int64(t.sz(t.root)) }
