package cache

import (
	"testing"

	"searchmem/internal/trace"
)

func TestPredictorConfigValidate(t *testing.T) {
	good := []PredictorConfig{
		{},
		{TableBits: 4},
		{TableBits: 24, ConfThreshold: 3, Seed: 1, IndexBlock: true},
	}
	for i, pc := range good {
		if err := pc.Validate(); err != nil {
			t.Errorf("case %d: valid predictor config rejected: %v", i, err)
		}
	}
	bad := []PredictorConfig{
		{TableBits: 3},
		{TableBits: 25},
		{ConfThreshold: 4},
	}
	for i, pc := range bad {
		if err := pc.Validate(); err == nil {
			t.Errorf("case %d: invalid predictor config accepted: %+v", i, pc)
		}
	}
	d := PredictorConfig{}.withDefaults()
	if d.TableBits != predDefaultBits || d.ConfThreshold != predDefaultConf {
		t.Errorf("defaults = %+v", d)
	}
}

// TestLevelPredictorTable pins the table mechanics: confidence climbs on
// confirmation, memory predictions activate at the configured threshold while
// cache-level predictions demand saturation (a wrong jump wastes a probe; a
// wrong bypass is caught for free), contradictions drain and then retarget,
// and aliases drain the incumbent first.
func TestLevelPredictorTable(t *testing.T) {
	p := newLevelPredictor(PredictorConfig{TableBits: 8, ConfThreshold: 2}.withDefaults())
	key := uint64(0x1234)
	if _, ok := p.lookup(key); ok {
		t.Fatal("fresh table produced a confident prediction")
	}
	p.train(key, HitL3) // conf 1
	if _, ok := p.lookup(key); ok {
		t.Fatal("confidence 1 acted on")
	}
	p.train(key, HitL3) // conf 2: at threshold, but jumps need saturation
	if _, ok := p.lookup(key); ok {
		t.Fatal("cache-level prediction acted below saturation")
	}
	p.train(key, HitL3) // conf 3: saturated
	lvl, ok := p.lookup(key)
	if !ok || lvl != HitL3 {
		t.Fatalf("trained prediction = %v, %v; want L3, true", lvl, ok)
	}
	// Contradictions drain (3 → 2 → 1 → 0) then retarget; the retargeted
	// memory prediction acts at the threshold, not saturation.
	p.train(key, HitMemory)
	p.train(key, HitMemory)
	if _, ok := p.lookup(key); ok {
		t.Fatal("drained entry still confident")
	}
	p.train(key, HitMemory) // conf 0
	p.train(key, HitMemory) // retarget: memory, conf 1
	p.train(key, HitMemory) // conf 2 = threshold
	if lvl, ok := p.lookup(key); !ok || lvl != HitMemory {
		t.Fatalf("retargeted prediction = %v, %v; want memory, true", lvl, ok)
	}
	if p.Stats.Lookups != 6 {
		t.Fatalf("lookups = %d, want 6", p.Stats.Lookups)
	}
}

// predTestHierarchy is a tiny hierarchy with a block-indexed, low-threshold
// predictor, so a handful of repeats makes predictions actionable.
func predTestHierarchy(l4 *Config) HierarchyConfig {
	cfg := tinyHierarchy(1, l4)
	cfg.Predictor = &PredictorConfig{TableBits: 10, ConfThreshold: 1, IndexBlock: true}
	return cfg
}

// TestPredictorJumpsToL3 builds a working set that always misses the
// private levels but lives in the L3, and checks the predictor converges to
// verified L3 jumps with the L2 probes skipped and attributed.
func TestPredictorJumpsToL3(t *testing.T) {
	h := NewHierarchy(predTestHierarchy(nil))
	// L1-D: 1 KiB/64 B/2-way (8 sets); L2: 4 KiB/4-way (16 sets). Stride
	// 1024 B keeps every block in L1 set 0 and L2 set 0; six of them
	// overflow both (2- and 4-way) but fit the 8-way L3 set.
	const n = 6
	for round := 0; round < 50; round++ {
		for i := uint64(0); i < n; i++ {
			h.Access(trace.Access{Addr: i * 1024, Size: 8, Seg: trace.Heap, Kind: trace.Read})
		}
	}
	ps := h.PredictorStats()
	if ps.Jumps == 0 || ps.Verified == 0 {
		t.Fatalf("no verified jumps: %+v", ps)
	}
	if ps.SkipRate() <= 0 {
		t.Fatalf("no probes skipped: %+v", ps)
	}
	l3 := h.L3Stats()
	if l3.PredHits == 0 {
		t.Fatalf("L3 recorded no prediction verifications: %+v", ps)
	}
	l2 := h.L2Stats()
	if l2.PredSkips == 0 {
		t.Fatal("L2 recorded no skipped probes")
	}
	// Attributed misses keep the L2 counts conserved: every post-L1 block
	// probe either hit or missed the L2, probed or attributed.
	if l2.Accesses() == 0 {
		t.Fatal("attributed L2 misses missing from stats")
	}
}

// TestPredictorBypassMatchesChain streams never-reused blocks (the per-PC
// key: one thread, no fetches, so every access shares key 0) and checks the
// predictor converges to verified bypasses while leaving memory traffic and
// cache contents identical to the unpredicted hierarchy.
func TestPredictorBypassMatchesChain(t *testing.T) {
	for _, l4 := range []*Config{nil, {Size: 32 << 10, BlockSize: 64, Assoc: 4, Seed: 7}} {
		base := tinyHierarchy(1, l4)
		pred := tinyHierarchy(1, l4)
		pred.Predictor = &PredictorConfig{TableBits: 10, ConfThreshold: 1} // per-PC keys
		ref, h := NewHierarchy(base), NewHierarchy(pred)
		for i := uint64(0); i < 4000; i++ {
			a := trace.Access{Addr: i * 64, Size: 8, Seg: trace.Shard, Kind: trace.Read}
			ref.Access(a)
			h.Access(a)
		}
		ps := h.PredictorStats()
		if ps.Bypasses == 0 || ps.Verified == 0 {
			t.Fatalf("l4=%v: no verified bypasses on a streaming scan: %+v", l4 != nil, ps)
		}
		if ps.SkipRate() <= 0.3 {
			t.Fatalf("l4=%v: streaming skip rate %.2f too low: %+v", l4 != nil, ps.SkipRate(), ps)
		}
		if h.MemReads != ref.MemReads || h.MemWrites != ref.MemWrites {
			t.Fatalf("l4=%v: memory traffic diverged: pred %d/%d vs chain %d/%d",
				l4 != nil, h.MemReads, h.MemWrites, ref.MemReads, ref.MemWrites)
		}
		// Contents equivalence at the bottom: same blocks resident.
		if h.l3.Occupancy() != ref.l3.Occupancy() {
			t.Fatalf("l4=%v: L3 occupancy diverged: %d vs %d", l4 != nil, h.l3.Occupancy(), ref.l3.Occupancy())
		}
	}
}

// TestPredictorMispredictFallsBack revisits blocks that a memory-trained key
// predicts wrong, and checks the fallback still services them correctly.
func TestPredictorMispredictFallsBack(t *testing.T) {
	h := NewHierarchy(predTestHierarchy(nil))
	a := trace.Access{Addr: 0, Size: 8, Seg: trace.Heap, Kind: trace.Read}
	h.Access(a)        // memory
	h.Access(a)        // L1 hit
	lvl := h.Access(a) // L1 hit
	if lvl != HitL1 {
		t.Fatalf("resident block serviced at %v", lvl)
	}
	// Train block 0's entry to "memory" artificially, then access it while
	// it is L1-resident — the predictor never even runs (L1 hit), so now
	// evict it from L1 only and re-access: prediction says memory, the
	// bypass probe finds it in the L3 → mispredict serviced at the L3.
	for i := 0; i < 3; i++ {
		h.pred.train(0, HitMemory)
	}
	h.l1d[0].Invalidate(0)
	h.dataL2[0].Invalidate(0)
	lvl = h.Access(a)
	if lvl != HitL3 {
		t.Fatalf("mispredicted access serviced at %v, want L3", lvl)
	}
	ps := h.PredictorStats()
	if ps.Mispredicts == 0 {
		t.Fatalf("mispredict not counted: %+v", ps)
	}
	if h.l3.Stats.PredMispredicts == 0 {
		t.Fatal("L3 did not record the mispredicted verification")
	}
}

// TestPredictorResetSemantics: ResetStats keeps the trained table (warm
// state, like cache contents) but zeroes counters; Reset clears both.
func TestPredictorResetSemantics(t *testing.T) {
	h := NewHierarchy(predTestHierarchy(nil))
	for i := uint64(0); i < 1000; i++ {
		h.Access(trace.Access{Addr: i * 64, Size: 8, Seg: trace.Shard, Kind: trace.Read})
	}
	if h.PredictorStats().Lookups == 0 {
		t.Fatal("predictor saw no lookups")
	}
	trained := false
	for _, c := range h.pred.conf {
		if c > 0 {
			trained = true
			break
		}
	}
	if !trained {
		t.Fatal("predictor table untrained after 1000 cold accesses")
	}
	h.ResetStats()
	if h.PredictorStats() != (PredictorStats{}) {
		t.Fatal("ResetStats left predictor counters")
	}
	trained = false
	for _, c := range h.pred.conf {
		if c > 0 {
			trained = true
			break
		}
	}
	if !trained {
		t.Fatal("ResetStats cleared the trained table")
	}
	h.Reset()
	for i, c := range h.pred.conf {
		if c != 0 || h.pred.tags[i] != 0 || h.pred.level[i] != 0 {
			t.Fatal("Reset left predictor table state")
		}
	}
}
