package cache

// State-deep equivalence for block-compressed replay (DESIGN.md §12): a
// hierarchy drained through a trace.CompressedView — any block geometry,
// in-memory or spilled — must end bit-identical to the scalar per-access
// reference, across the full policy/partitioning config matrix. This is the
// cache-level half of the tentpole equivalence proof; the experiment-level
// half (byte-identical rendered figures) lives in internal/experiments.

import (
	"os"
	"reflect"
	"testing"

	"searchmem/internal/trace"
)

// compressTrace block-compresses tr, optionally through a spill file.
func compressTrace(t *testing.T, tr []trace.Access, blockLen int, spillDir string) *trace.Compressed {
	t.Helper()
	var spill trace.SpillFile
	if spillDir != "" {
		f, err := os.CreateTemp(spillDir, "equiv-*.blk")
		if err != nil {
			t.Fatalf("spill temp file: %v", err)
		}
		t.Cleanup(func() { f.Close() })
		spill = f
	}
	w := trace.NewBlockWriter(blockLen, spill)
	for _, a := range tr {
		if err := w.Add(a); err != nil {
			t.Fatalf("Add(%v): %v", a, err)
		}
	}
	c, err := w.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return c
}

// TestCompressedDrainEquivalence drains the same trace scalar (reference),
// through compressed views at several block sizes, and through a spilled
// store, requiring bit-identical internal hierarchy state every time.
func TestCompressedDrainEquivalence(t *testing.T) {
	tr := batchEquivTrace(42, 20000, 4)
	for name, cfg := range equivConfigs() {
		t.Run(name, func(t *testing.T) {
			ref := NewHierarchy(cfg)
			for _, a := range tr {
				ref.Access(a)
			}
			refSnap := snapHierarchy(ref)

			for _, bl := range []int{1, 3, 64, 1000, trace.DefaultBlockLen, len(tr) + 1} {
				c := compressTrace(t, tr, bl, "")
				h := NewHierarchy(cfg)
				h.DrainBatch(c.View())
				if !reflect.DeepEqual(snapHierarchy(h), refSnap) {
					t.Fatalf("block len %d: DrainBatch(CompressedView) diverges from scalar", bl)
				}

				// Scalar decode path over the same store.
				hs := NewHierarchy(cfg)
				hs.Drain(c.View())
				if !reflect.DeepEqual(snapHierarchy(hs), refSnap) {
					t.Fatalf("block len %d: Drain(CompressedView) diverges from scalar", bl)
				}
			}

			spilled := compressTrace(t, tr, 512, t.TempDir())
			if !spilled.Spilled() {
				t.Fatal("spill store not marked spilled")
			}
			h := NewHierarchy(cfg)
			h.DrainBatch(spilled.View())
			if !reflect.DeepEqual(snapHierarchy(h), refSnap) {
				t.Fatal("DrainBatch over spilled store diverges from scalar")
			}
		})
	}
}

// TestMultiSimCompressedEquivalence re-runs the MultiSim single-decode sweep
// from a compressed view: each hierarchy must end bit-identical to its
// independent flat-view drain.
func TestMultiSimCompressedEquivalence(t *testing.T) {
	tr := batchEquivTrace(1234, 15000, 4)
	sh := trace.NewShared(tr)

	cfgs := make([]HierarchyConfig, 0, 4)
	for i := 0; i < 4; i++ {
		cfg := tinyHierarchy(2, nil)
		cfg.L3.Size = int64(8+4*i) << 10
		cfgs = append(cfgs, cfg)
	}

	refs := make([]map[string]any, len(cfgs))
	for i, cfg := range cfgs {
		h := NewHierarchy(cfg)
		h.DrainBatch(sh.View())
		refs[i] = snapHierarchy(h)
	}

	c := compressTrace(t, tr, 777, "")
	hs := make([]*Hierarchy, len(cfgs))
	for i, cfg := range cfgs {
		hs[i] = NewHierarchy(cfg)
	}
	NewMultiSim(hs...).Drain(c.View())
	for i, h := range hs {
		if !reflect.DeepEqual(snapHierarchy(h), refs[i]) {
			t.Fatalf("config %d: MultiSim over compressed view diverges", i)
		}
	}
}
