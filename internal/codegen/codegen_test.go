package codegen

import (
	"testing"

	"searchmem/internal/cache"
	"searchmem/internal/cpu"
	"searchmem/internal/memsim"
	"searchmem/internal/trace"
)

// testConfig is a small, fast program for unit tests.
func testConfig() Config {
	c := DefaultConfig()
	c.NumFuncs = 128
	c.BlocksPerFunc = 12
	return c
}

func buildProgram(t *testing.T, cfg Config, rec memsim.Recorder) (*Program, *memsim.Space) {
	t.Helper()
	space := memsim.NewSpace(rec)
	code := space.NewArena("code", trace.Code, cfg.CodeBytes())
	return New(cfg, code), space
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{},
		func() Config { c := DefaultConfig(); c.BiasedFrac = 0.9; c.LoopFrac = 0.3; return c }(),
		func() Config { c := DefaultConfig(); c.BiasedTakenProb = 1.5; return c }(),
		func() Config { c := DefaultConfig(); c.LoopIterations = 0; return c }(),
		func() Config { c := DefaultConfig(); c.FuncZipfSkew = 0; return c }(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultCodeSizeIsPaperScale(t *testing.T) {
	// The paper measures a ~4 MiB code working set.
	got := DefaultConfig().CodeBytes()
	if got < 2<<20 || got > 8<<20 {
		t.Fatalf("default code size %d bytes, want ~4 MiB", got)
	}
}

func TestFetchesStayInCodeSegment(t *testing.T) {
	cfg := testConfig()
	var accs []trace.Access
	prog, _ := buildProgram(t, cfg, func(a trace.Access) { accs = append(accs, a) })
	w := prog.NewWalker(0, 1, nil, nil)
	w.Run(10000)
	if len(accs) == 0 {
		t.Fatal("no fetches emitted")
	}
	for _, a := range accs {
		if a.Seg != trace.Code || a.Kind != trace.Fetch {
			t.Fatalf("non-code access from walker: %+v", a)
		}
		if a.Addr < memsim.CodeBase || a.Addr >= memsim.CodeBase+uint64(cfg.CodeBytes()) {
			t.Fatalf("fetch outside text: 0x%x", a.Addr)
		}
	}
}

func TestInstructionAccounting(t *testing.T) {
	prog, _ := buildProgram(t, testConfig(), nil)
	w := prog.NewWalker(0, 1, nil, nil)
	got := w.Run(5000)
	if got < 5000 {
		t.Fatalf("Run(5000) retired only %d", got)
	}
	if got > 20000 {
		t.Fatalf("Run(5000) overshot wildly: %d", got)
	}
	if w.Instructions != got {
		t.Fatal("cumulative counter mismatch")
	}
}

func TestBranchRate(t *testing.T) {
	prog, _ := buildProgram(t, testConfig(), nil)
	w := prog.NewWalker(0, 1, nil, nil)
	w.Run(50000)
	perInstr := float64(w.Branches) / float64(w.Instructions)
	// Roughly one branch per basic block of ~6 instructions.
	if perInstr < 0.08 || perInstr > 0.35 {
		t.Fatalf("branch rate %v per instruction", perInstr)
	}
}

func TestBranchStreamIsImperfectlyPredictable(t *testing.T) {
	// The paper's key branch characteristic: a real predictor is left with
	// substantial mispredictions (search ~9 branch MPKI), far above SPEC
	// but far below random.
	prog, _ := buildProgram(t, testConfig(), nil)
	pred := cpu.PredictorStats{P: cpu.NewGshare(14)}
	w := prog.NewWalker(0, 1, nil, func(pc uint64, taken bool) {
		pred.Observe(cpu.Branch{PC: pc, Taken: taken})
	})
	w.Run(200000)
	acc := pred.Accuracy()
	if acc < 0.7 {
		t.Fatalf("predictor accuracy %v: branch stream too random", acc)
	}
	if acc > 0.99 {
		t.Fatalf("predictor accuracy %v: branch stream too predictable", acc)
	}
}

func TestStackTraffic(t *testing.T) {
	cfg := testConfig()
	var stackAccs int
	space := memsim.NewSpace(func(a trace.Access) {
		if a.Seg == trace.Stack {
			stackAccs++
		}
	})
	code := space.NewArena("code", trace.Code, cfg.CodeBytes())
	prog := New(cfg, code)
	stack := space.ThreadStackArena(3, 1<<16)
	w := prog.NewWalker(3, 1, stack, nil)
	w.Run(20000)
	if stackAccs == 0 {
		t.Fatal("no stack traffic from calls")
	}
}

func TestWalkerDeterminism(t *testing.T) {
	run := func() (int64, int64) {
		prog, _ := buildProgram(t, testConfig(), nil)
		w := prog.NewWalker(0, 42, nil, nil)
		w.Run(30000)
		return w.Instructions, w.Branches
	}
	i1, b1 := run()
	i2, b2 := run()
	if i1 != i2 || b1 != b2 {
		t.Fatal("walker not deterministic")
	}
}

func TestWalkersIndependent(t *testing.T) {
	prog, _ := buildProgram(t, testConfig(), nil)
	w1 := prog.NewWalker(0, 1, nil, nil)
	w2 := prog.NewWalker(1, 2, nil, nil)
	w1.Run(10000)
	w2.Run(10000)
	if w1.Instructions == 0 || w2.Instructions == 0 {
		t.Fatal("walker stalled")
	}
}

func TestRunFuncPinsFootprint(t *testing.T) {
	cfg := testConfig()
	seen := map[uint64]bool{}
	prog, _ := buildProgram(t, cfg, func(a trace.Access) { seen[a.Addr] = true })
	w := prog.NewWalker(0, 1, nil, nil)
	w.RunFunc(5, 20000)
	// A single function's fetch footprint is far below the whole text.
	maxBlocks := cfg.BlocksPerFunc
	if len(seen) > maxBlocks {
		t.Fatalf("RunFunc touched %d distinct addresses, function has %d blocks", len(seen), maxBlocks)
	}
}

// TestCodeWorkingSetOverflowsL2ButFitsL3 is the structural anchor for the
// paper's instruction-side findings: the fetch stream misses substantially
// in a 256 KiB L2 but almost never in a multi-MiB L3.
func TestCodeWorkingSetOverflowsL2ButFitsL3(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumFuncs = 2048 // ~2 MiB text, enough to overflow a 256 KiB cache
	sd := cache.NewStackDist(64)
	space := memsim.NewSpace(func(a trace.Access) { sd.Observe(a) })
	code := space.NewArena("code", trace.Code, cfg.CodeBytes())
	prog := New(cfg, code)
	w := prog.NewWalker(0, 7, nil, nil)
	w.Run(400000)

	l2Rate := sd.HitRate(trace.Code, 256<<10)
	if l2Rate > 0.995 {
		t.Fatalf("L2-sized cache captures the code working set (hit %v); want overflow", l2Rate)
	}
	// At L3 size, all misses beyond compulsory (cold) ones must vanish:
	// the steady-state L3 instruction MPKI is ~0 in the paper.
	l3Capacity := sd.Misses(trace.Code, 16<<20) - float64(sd.ColdMisses(trace.Code))
	if frac := l3Capacity / float64(sd.Accesses(trace.Code)); frac > 0.002 {
		t.Fatalf("L3-sized cache still has %.4f capacity-miss rate for code", frac)
	}
}
