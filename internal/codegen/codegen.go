// Package codegen models the instruction side of the search binary: a
// synthetic text segment laid out as functions of basic blocks, walked at
// run time to produce the instruction-fetch address stream and the dynamic
// conditional-branch stream.
//
// Production search has a ~4 MiB code working set that overflows private L2
// caches (L2 instruction MPKI ≈ 12) yet is fully captured by the shared L3,
// plus a high rate of hard-to-predict data-dependent branches (branch MPKI
// ≈ 9). This package reproduces those properties structurally: a large
// function pool with Zipf popularity for capacity pressure, short loops for
// intra-function locality, and a configurable mix of biased, loop, and
// data-dependent branch behaviours.
package codegen

import (
	"fmt"

	"searchmem/internal/memsim"
	"searchmem/internal/stats"
	"searchmem/internal/trace"
)

// BranchClass determines a branch's outcome process.
type BranchClass uint8

const (
	// BiasedBranch is strongly skewed (error-check style): taken with
	// probability Config.BiasedTakenProb.
	BiasedBranch BranchClass = iota
	// LoopBranch is a backward branch taken (iterations-1) out of
	// iterations times: well predicted except at loop exit.
	LoopBranch
	// RandomBranch is data-dependent: a coin flip no predictor can learn.
	// These are what make search's branch MPKI so much higher than SPEC's.
	RandomBranch
)

// Config describes the synthetic text segment.
type Config struct {
	// NumFuncs is the number of functions in the text segment.
	NumFuncs int
	// BlocksPerFunc is the number of basic blocks per function.
	BlocksPerFunc int
	// InstrsPerBlock is the mean instructions per basic block.
	InstrsPerBlock int
	// BytesPerInstr is the average encoded instruction size.
	BytesPerInstr int
	// FuncZipfSkew sets function popularity (higher = smaller hot set).
	FuncZipfSkew float64
	// BiasedFrac, LoopFrac and the remainder (random) partition branch
	// sites by class.
	BiasedFrac, LoopFrac float64
	// BiasedTakenProb is the taken probability of biased branches.
	BiasedTakenProb float64
	// LoopIterations is the mean trip count of loop branches.
	LoopIterations int
	// Seed drives layout generation.
	Seed uint64
}

// DefaultConfig returns parameters yielding a ~4 MiB text segment in paper
// units (scaled configurations shrink NumFuncs).
func DefaultConfig() Config {
	return Config{
		NumFuncs:        4096,
		BlocksPerFunc:   28,
		InstrsPerBlock:  6,
		BytesPerInstr:   4,
		FuncZipfSkew:    0.35,
		BiasedFrac:      0.62,
		LoopFrac:        0.28,
		BiasedTakenProb: 0.97,
		LoopIterations:  16,
		Seed:            0xc0de,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.NumFuncs <= 0 || c.BlocksPerFunc <= 0 || c.InstrsPerBlock <= 0 || c.BytesPerInstr <= 0 {
		return fmt.Errorf("codegen: counts must be positive")
	}
	if c.BiasedFrac < 0 || c.LoopFrac < 0 || c.BiasedFrac+c.LoopFrac > 1 {
		return fmt.Errorf("codegen: branch class fractions out of range")
	}
	if c.BiasedTakenProb < 0 || c.BiasedTakenProb > 1 {
		return fmt.Errorf("codegen: biased taken probability out of range")
	}
	if c.LoopIterations < 1 {
		return fmt.Errorf("codegen: loop iterations must be >= 1")
	}
	if c.FuncZipfSkew <= 0 {
		return fmt.Errorf("codegen: zipf skew must be positive")
	}
	return nil
}

// CodeBytes returns the arena size needed for the configuration's text:
// the nominal size plus headroom for randomized block-size variation.
func (c Config) CodeBytes() int {
	nominal := c.NumFuncs * c.BlocksPerFunc * c.InstrsPerBlock * c.BytesPerInstr
	return nominal + nominal/4 + 4096
}

// block is one basic block in the laid-out text.
type block struct {
	addr     uint64
	nBytes   uint16
	nInstr   uint16
	class    BranchClass
	branchPC uint64
	// loopTarget is the block index this loop branch jumps back to.
	loopTarget int
}

// fn is one laid-out function.
type fn struct {
	entry  uint64
	blocks []block
}

// Program is an immutable laid-out text segment shared by all walkers.
type Program struct {
	cfg   Config
	funcs []fn
	code  *memsim.Arena
}

// New lays the program out inside the provided code arena. The arena must
// have at least Config.CodeBytes() capacity.
func New(cfg Config, code *memsim.Arena) *Program {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	rng := stats.NewRNG(cfg.Seed)
	p := &Program{cfg: cfg, code: code}
	for f := 0; f < cfg.NumFuncs; f++ {
		fun := fn{blocks: make([]block, cfg.BlocksPerFunc)}
		for b := 0; b < cfg.BlocksPerFunc; b++ {
			nInstr := cfg.InstrsPerBlock
			// Vary block sizes a little for realism.
			if rng.Bool(0.5) {
				nInstr += rng.Intn(cfg.InstrsPerBlock) - cfg.InstrsPerBlock/2
				if nInstr < 1 {
					nInstr = 1
				}
			}
			nBytes := nInstr * cfg.BytesPerInstr
			addr := code.Alloc(nBytes, 0)
			var class BranchClass
			r := rng.Float64()
			switch {
			case r < cfg.BiasedFrac:
				class = BiasedBranch
			case r < cfg.BiasedFrac+cfg.LoopFrac:
				class = LoopBranch
			default:
				class = RandomBranch
			}
			loopTarget := 0
			if class == LoopBranch && b > 0 {
				loopTarget = b - 1 - rng.Intn(min(b, 3))
			}
			fun.blocks[b] = block{
				addr:       addr,
				nBytes:     uint16(nBytes),
				nInstr:     uint16(nInstr),
				class:      class,
				branchPC:   addr + uint64(nBytes) - uint64(cfg.BytesPerInstr),
				loopTarget: loopTarget,
			}
			if b == 0 {
				fun.entry = addr
			}
		}
		p.funcs = append(p.funcs, fun)
	}
	return p
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Config returns the program's configuration.
func (p *Program) Config() Config { return p.cfg }

// NumFuncs returns the function count.
func (p *Program) NumFuncs() int { return len(p.funcs) }

// BranchSink receives resolved dynamic branches (pc, taken).
type BranchSink func(pc uint64, taken bool)

// Walker executes the program on one hardware thread: it emits
// instruction-fetch accesses into the code arena's address space, stack
// frame traffic into the thread's stack arena, and resolved branches into
// the sink. Walkers are independent and deterministic given their seed.
type Walker struct {
	prog     *Program
	rng      *stats.RNG
	fsel     *stats.ZipfCDF
	thread   uint8
	stack    *memsim.Arena
	onBranch BranchSink

	sp        uint64
	callDepth int

	// Instructions counts retired instructions; Branches counts resolved
	// conditional branches.
	Instructions int64
	Branches     int64
}

// NewWalker returns a walker for the given thread. stack may be nil to
// skip stack traffic; onBranch may be nil to discard branches.
func (p *Program) NewWalker(thread uint8, seed uint64, stack *memsim.Arena, onBranch BranchSink) *Walker {
	rng := stats.NewRNG(seed ^ 0x57a1cedb)
	return &Walker{
		prog:     p,
		rng:      rng,
		fsel:     stats.NewZipfCDF(rng.Split(), len(p.funcs), p.cfg.FuncZipfSkew),
		thread:   thread,
		stack:    stack,
		onBranch: onBranch,
	}
}

// callBudget bounds the instructions one invocation may retire (roughly two
// passes over the function body) so that loop nests cannot consume an entire
// Run budget inside a single function.
func (w *Walker) callBudget() int {
	return 2 * w.prog.cfg.BlocksPerFunc * w.prog.cfg.InstrsPerBlock
}

// Run executes approximately budget instructions across one or more
// function invocations, returning the instructions actually retired.
func (w *Walker) Run(budget int) int64 {
	start := w.Instructions
	per := w.callBudget()
	for w.Instructions-start < int64(budget) {
		w.call(w.fsel.Next(), per)
	}
	return w.Instructions - start
}

// RunFunc executes approximately budget instructions inside one specific
// function (engine phases pin their hot function this way).
func (w *Walker) RunFunc(funcID int, budget int) int64 {
	start := w.Instructions
	per := w.callBudget()
	for w.Instructions-start < int64(budget) {
		w.call(funcID, per)
	}
	return w.Instructions - start
}

// call walks one function invocation, bounded by the caller's budget.
func (w *Walker) call(funcID int, budget int) {
	f := &w.prog.funcs[funcID%len(w.prog.funcs)]
	// Call prologue: push a frame.
	if w.stack != nil {
		frame := uint64(64)
		if w.sp+frame > uint64(w.stack.Size()) {
			w.sp = 0 // simulated deep recursion unwinds
		}
		w.stack.Touch(w.thread, w.stack.Base()+w.sp, 32, trace.Write)
		w.sp += frame
		w.callDepth++
	}
	executed := 0
	loopsLeft := make(map[int]int)
	for b := 0; b < len(f.blocks) && executed < budget; {
		blk := &f.blocks[b]
		w.prog.code.Touch(w.thread, blk.addr, int(blk.nBytes), trace.Fetch)
		w.Instructions += int64(blk.nInstr)
		executed += int(blk.nInstr)

		taken := false
		switch blk.class {
		case BiasedBranch:
			taken = w.rng.Bool(w.prog.cfg.BiasedTakenProb)
			w.emitBranch(blk.branchPC, taken)
			b++
		case LoopBranch:
			remaining, ok := loopsLeft[b]
			if !ok {
				remaining = 1 + w.rng.Intn(2*w.prog.cfg.LoopIterations)
			}
			remaining--
			taken = remaining > 0
			w.emitBranch(blk.branchPC, taken)
			if taken {
				loopsLeft[b] = remaining
				b = blk.loopTarget
			} else {
				delete(loopsLeft, b)
				b++
			}
		case RandomBranch:
			taken = w.rng.Bool(0.5)
			w.emitBranch(blk.branchPC, taken)
			if taken {
				b += 2 // skip the fall-through block
			} else {
				b++
			}
		}
	}
	// Epilogue: pop the frame.
	if w.stack != nil {
		w.callDepth--
		if w.sp >= 64 {
			w.sp -= 64
		}
		w.stack.Touch(w.thread, w.stack.Base()+w.sp, 16, trace.Read)
	}
}

func (w *Walker) emitBranch(pc uint64, taken bool) {
	w.Branches++
	if w.onBranch != nil {
		w.onBranch(pc, taken)
	}
}
