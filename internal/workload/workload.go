// Package workload composes the substrates (search engine, code generator,
// instrumented memory) into runnable workload profiles: the production
// search services S1/S2/S3 in their leaf and root roles, and the
// comparison benchmarks of Table I (four SPEC CPU2006 profiles and the
// CloudSuite Web Search profile).
//
// A profile builds once (expensive: corpus generation and indexing) and can
// then be run many times against different cache hierarchies, predictors,
// or analyzers via Sinks.
package workload

import "searchmem/internal/trace"

// Sinks receives the event streams a run produces. Any field may be nil.
type Sinks struct {
	// Access receives every memory access, interleaved across threads.
	Access func(trace.Access)
	// AccessBatch, when non-nil, lets a batching-aware runner deliver the
	// access stream as read-only slices instead of one Access call per
	// element. Each access is delivered exactly once, through one sink or
	// the other: a runner that batches ignores Access, and a runner unaware
	// of batching ignores AccessBatch (consumers wanting either transport
	// set both). Slices follow the trace.BatchStream contract — they may be
	// zero-copy windows of a shared recording, must not be mutated, and are
	// only valid until the sink returns. The relative order of accesses and
	// Branch events is preserved exactly: batch boundaries are split at
	// every recorded branch position.
	AccessBatch func(batch []trace.Access)
	// Branch receives every resolved conditional branch with its thread.
	Branch func(thread uint8, pc uint64, taken bool)
}

// Stats summarizes one run.
type Stats struct {
	// Instructions retired across all threads.
	Instructions int64
	// Branches resolved across all threads.
	Branches int64
	// Accesses emitted (memory references).
	Accesses int64
	// Queries executed and the subset served by the query cache
	// (search profiles only).
	Queries, CacheHits int64
	// PostingsDecoded counts index postings scanned (search only).
	PostingsDecoded int64
}

// Runner is a built workload instance that can be executed repeatedly.
type Runner interface {
	// Name identifies the profile.
	Name() string
	// Run executes approximately instrBudget instructions across threads
	// hardware threads, emitting events into s. seed varies the query or
	// input stream between runs; the same seed reproduces the same run
	// against a fresh runner.
	Run(threads int, instrBudget int64, seed uint64, s Sinks) Stats
	// MemOverlap returns the workload's memory-level-parallelism blocking
	// factor for the core model, or 0 to use the platform default.
	// Pointer-chasing workloads (mcf) serialize misses; search's modest
	// MLP uses the platform's calibrated value.
	MemOverlap() float64
}

// interleaver merges per-thread access buffers round-robin in fixed bursts,
// modeling fine-grained concurrent execution of independent threads. refill
// is called when a thread's buffer drains; it returns false when that
// thread has no more work.
type interleaver struct {
	burst   int
	buffers [][]trace.Access
	pos     []int
	done    []bool
	emit    func(trace.Access)
	refill  func(thread int) ([]trace.Access, bool)
}

func newInterleaver(threads, burst int, emit func(trace.Access), refill func(int) ([]trace.Access, bool)) *interleaver {
	return &interleaver{
		burst:   burst,
		buffers: make([][]trace.Access, threads),
		pos:     make([]int, threads),
		done:    make([]bool, threads),
		emit:    emit,
		refill:  refill,
	}
}

// run drains all threads' work.
func (iv *interleaver) run() int64 {
	var emitted int64
	live := len(iv.buffers)
	for live > 0 {
		for t := range iv.buffers {
			if iv.done[t] {
				continue
			}
			for b := 0; b < iv.burst; {
				if iv.pos[t] >= len(iv.buffers[t]) {
					buf, ok := iv.refill(t)
					if !ok {
						iv.done[t] = true
						live--
						break
					}
					iv.buffers[t] = buf
					iv.pos[t] = 0
					continue
				}
				if iv.emit != nil {
					iv.emit(iv.buffers[t][iv.pos[t]])
				}
				iv.pos[t]++
				b++
				emitted++
			}
		}
	}
	return emitted
}
