package workload

import (
	"fmt"

	"searchmem/internal/codegen"
	"searchmem/internal/memsim"
	"searchmem/internal/stats"
	"searchmem/internal/trace"
)

// SyntheticWorkload models the comparison benchmarks of Table I: SPEC
// CPU2006 applications and the CloudSuite Web Search. Each is characterized
// by its code size and branch behaviour (via codegen.Config), its data
// footprint and reuse skew, and its access mix — the axes along which the
// paper contrasts them with production search.
type SyntheticWorkload struct {
	// WLName identifies the profile ("429.mcf", ...).
	WLName string
	// Code configures the (usually small) text segment.
	Code codegen.Config
	// HeapBytes is the randomly-reused data footprint; HeapSkew its Zipf
	// popularity skew (higher = tighter hot set).
	HeapBytes int64
	HeapSkew  float64
	// ScanBytes, when non-zero, adds a sequentially-streamed region;
	// StreamFrac is the fraction of loads that walk it.
	ScanBytes  int64
	StreamFrac float64
	// LoadsPerKI and StoresPerKI set the data-access mix.
	LoadsPerKI, StoresPerKI int
	// AccessBytes is the width of each data reference.
	AccessBytes int
	// MemOverlapFactor is the workload's MLP blocking factor for the core
	// model (pointer chasers like mcf serialize misses: high value).
	MemOverlapFactor float64
	// StackBytes sizes each thread's stack.
	StackBytes int
	// Seed drives generation.
	Seed uint64
}

// Validate reports whether the profile is runnable.
func (w SyntheticWorkload) Validate() error {
	if err := w.Code.Validate(); err != nil {
		return err
	}
	if w.HeapBytes <= 0 || w.HeapSkew <= 0 {
		return fmt.Errorf("workload %s: heap parameters must be positive", w.WLName)
	}
	if w.ScanBytes < 0 || w.StreamFrac < 0 || w.StreamFrac > 1 {
		return fmt.Errorf("workload %s: scan parameters out of range", w.WLName)
	}
	if w.ScanBytes == 0 && w.StreamFrac > 0 {
		return fmt.Errorf("workload %s: StreamFrac without ScanBytes", w.WLName)
	}
	if w.LoadsPerKI < 0 || w.StoresPerKI < 0 || w.LoadsPerKI+w.StoresPerKI == 0 {
		return fmt.Errorf("workload %s: need a positive access mix", w.WLName)
	}
	if w.AccessBytes <= 0 || w.StackBytes <= 0 {
		return fmt.Errorf("workload %s: sizes must be positive", w.WLName)
	}
	if w.MemOverlapFactor < 0 || w.MemOverlapFactor > 1 {
		return fmt.Errorf("workload %s: overlap factor out of range", w.WLName)
	}
	return nil
}

// SyntheticRunner is a built synthetic workload.
type SyntheticRunner struct {
	wl    SyntheticWorkload
	space *memsim.Space
	prog  *codegen.Program
	heap  *memsim.Arena
	scan  *memsim.Arena

	walkers  []*codegen.Walker
	scanPos  []uint64
	capture  []trace.Access
	branches *Sinks
	curTid   uint8
}

// Build constructs the runner (cheap for synthetic profiles: arenas are
// phantom, nothing is indexed).
func (w SyntheticWorkload) Build() *SyntheticRunner {
	if err := w.Validate(); err != nil {
		panic(err)
	}
	r := &SyntheticRunner{wl: w}
	r.space = memsim.NewSpace(nil)
	code := r.space.NewArena("code", trace.Code, w.Code.CodeBytes())
	r.prog = codegen.New(w.Code, code)
	r.heap = r.space.NewPhantomArena("data", trace.Heap, w.HeapBytes)
	if w.ScanBytes > 0 {
		r.scan = r.space.NewPhantomArena("scan", trace.Heap, w.ScanBytes)
	}
	return r
}

// Name implements Runner.
func (r *SyntheticRunner) Name() string { return r.wl.WLName }

// MemOverlap implements Runner.
func (r *SyntheticRunner) MemOverlap() float64 { return r.wl.MemOverlapFactor }

func (r *SyntheticRunner) walker(t int) *codegen.Walker {
	for len(r.walkers) <= t {
		idx := len(r.walkers)
		stack := r.space.ThreadStackArena(uint8(idx), r.wl.StackBytes)
		w := r.prog.NewWalker(uint8(idx&0x0f), r.wl.Seed+uint64(idx)*131, stack,
			func(pc uint64, taken bool) {
				if r.branches != nil && r.branches.Branch != nil {
					r.branches.Branch(r.curTid, pc, taken)
				}
			})
		r.walkers = append(r.walkers, w)
		r.scanPos = append(r.scanPos, uint64(idx)*4096)
	}
	return r.walkers[t]
}

// chunkInstrs is the granularity at which code execution and data accesses
// interleave within one thread.
const chunkInstrs = 400

// Run implements Runner.
func (r *SyntheticRunner) Run(threads int, instrBudget int64, seed uint64, s Sinks) Stats {
	if threads <= 0 {
		panic("workload: threads must be positive")
	}
	var st Stats
	perThread := instrBudget / int64(threads)
	rngs := make([]*stats.RNG, threads)
	zipfs := make([]*stats.Zipf, threads)
	startInstr := make([]int64, threads)
	startBr := make([]int64, threads)
	heapBlocks := uint64(r.wl.HeapBytes) / 64
	if heapBlocks == 0 {
		heapBlocks = 1
	}
	for t := 0; t < threads; t++ {
		w := r.walker(t)
		rngs[t] = stats.NewRNG(seed*2_000_000_011 + uint64(t)*17 + 3)
		zipfs[t] = stats.NewZipf(rngs[t].Split(), heapBlocks, r.wl.HeapSkew)
		startInstr[t] = w.Instructions
		startBr[t] = w.Branches
	}

	r.branches = &s
	defer func() { r.branches = nil; r.space.SetRecorder(nil) }()

	runChunk := func(t int) ([]trace.Access, bool) {
		w := r.walkers[t]
		if w.Instructions-startInstr[t] >= perThread {
			return nil, false
		}
		r.capture = r.capture[:0]
		r.curTid = uint8(t & 0x0f)
		r.space.SetRecorder(func(a trace.Access) { r.capture = append(r.capture, a) })
		executed := w.Run(chunkInstrs)
		// Issue the data accesses this chunk implies.
		rng := rngs[t]
		loads := int(executed) * r.wl.LoadsPerKI / 1000
		stores := int(executed) * r.wl.StoresPerKI / 1000
		for i := 0; i < loads+stores; i++ {
			kind := trace.Read
			if i >= loads {
				kind = trace.Write
			}
			var addr uint64
			if r.scan != nil && rng.Bool(r.wl.StreamFrac) {
				addr = r.scan.Base() + r.scanPos[t]
				r.scanPos[t] += uint64(r.wl.AccessBytes)
				if r.scanPos[t]+64 >= uint64(r.wl.ScanBytes) {
					r.scanPos[t] = 0
				}
				r.scan.Touch(r.curTid, addr, r.wl.AccessBytes, kind)
				continue
			}
			addr = r.heap.Base() + zipfs[t].Next()*64 + uint64(rng.Intn(64-r.wl.AccessBytes+1))
			r.heap.Touch(r.curTid, addr, r.wl.AccessBytes, kind)
		}
		r.space.SetRecorder(nil)
		buf := make([]trace.Access, len(r.capture))
		copy(buf, r.capture)
		return buf, true
	}

	iv := newInterleaver(threads, 64, s.Access, runChunk)
	st.Accesses = iv.run()
	for t := 0; t < threads; t++ {
		st.Instructions += r.walkers[t].Instructions - startInstr[t]
		st.Branches += r.walkers[t].Branches - startBr[t]
	}
	return st
}
