package workload

import (
	"math"
	"testing"

	"searchmem/internal/cache"
	"searchmem/internal/platform"
	"searchmem/internal/trace"
)

// Calibration anchors from the paper (DESIGN.md §5). These tests run the
// full-scale profiles and are the regression fence around the calibrated
// constants; they are skipped under -short.

func measureFull(t *testing.T, r Runner, budget int64) Metrics {
	t.Helper()
	return Measure(r, MeasureConfig{
		Platform: platform.PLT1(),
		Cores:    1, SMTWays: 1, Threads: 1,
		Budget:         budget,
		Seed:           1,
		WarmupFraction: 2.0,
	})
}

func TestCalibrationS1Leaf(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale calibration")
	}
	m := measureFull(t, S1Leaf(1).Build(), 6_000_000)

	// Table I anchors: fleet IPC 1.34, lab 1.27.
	if m.IPC < 1.0 || m.IPC > 1.7 {
		t.Errorf("S1 leaf IPC = %.2f, paper 1.27-1.34", m.IPC)
	}
	// Branch MPKI 8.98 fleet / 9.47 lab.
	if m.BranchMPKI < 6 || m.BranchMPKI > 12 {
		t.Errorf("branch MPKI = %.2f, paper ~9", m.BranchMPKI)
	}
	// L2 instruction MPKI 11.83 fleet / 10.78 lab.
	if m.L2InstrMPKI < 7 || m.L2InstrMPKI > 17 {
		t.Errorf("L2 instr MPKI = %.2f, paper ~11-12", m.L2InstrMPKI)
	}
	// L3 load MPKI 2.20 fleet / 2.43 lab. The reproduction runs ~2x high:
	// the static-rank table sized for the Figure 9-11 trade-off raises
	// steady-state L3 data misses, and short traces add compulsory
	// misses (EXPERIMENTS.md, Table I notes).
	if m.L3LoadMPKI < 0.7 || m.L3LoadMPKI > 7 {
		t.Errorf("L3 load MPKI = %.2f, paper ~2.2-2.4", m.L3LoadMPKI)
	}
	// L3 instruction misses negligible in steady state.
	if m.L3InstrMPKI > 1.5 {
		t.Errorf("L3 instr MPKI = %.2f, paper ~0", m.L3InstrMPKI)
	}

	// Figure 3 breakdown within a few points per category.
	bd := m.Breakdown
	checks := []struct {
		name      string
		got, want float64
	}{
		{"retiring", bd.Retiring, 0.32},
		{"badspec", bd.BadSpec, 0.154},
		{"fe-latency", bd.FELatency, 0.138},
		{"fe-bandwidth", bd.FEBandwidth, 0.097},
		{"be-core", bd.BECore, 0.085},
		{"be-memory", bd.BEMemory, 0.205},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 0.07 {
			t.Errorf("Top-Down %s = %.3f, paper %.3f", c.name, c.got, c.want)
		}
	}
}

func TestCalibrationComparisonOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale calibration")
	}
	// The qualitative Table I contrasts of §II-D, using fast budgets.
	search := measureFull(t, S1Leaf(2).Build(), 4_000_000)
	gobmk := measureFull(t, SPECGobmk().Build(), 2_000_000)
	mcf := measureFull(t, SPECMcf().Build(), 2_000_000)
	cloud := measureFull(t, CloudSuiteWebSearch().Build(), 2_000_000)
	perl := measureFull(t, SPECPerlbench().Build(), 2_000_000)

	// "L2 MPKI for instructions is at least 3.6x higher than the most
	// code-intensive SPEC application (445.gobmk)".
	if search.L2InstrMPKI < 3*gobmk.L2InstrMPKI {
		t.Errorf("search L2I %.2f not >> gobmk %.2f", search.L2InstrMPKI, gobmk.L2InstrMPKI)
	}
	// Search is less memory-bound than mcf but more than perlbench.
	if !(perl.L3LoadMPKI < search.L3LoadMPKI && search.L3LoadMPKI < mcf.L3LoadMPKI) {
		t.Errorf("L3 ordering: perl %.2f, search %.2f, mcf %.2f",
			perl.L3LoadMPKI, search.L3LoadMPKI, mcf.L3LoadMPKI)
	}
	// CloudSuite shows much lower MPKI for branches, L2I, and L3 data.
	if cloud.BranchMPKI > search.BranchMPKI/2 {
		t.Errorf("CloudSuite branch MPKI %.2f not << search %.2f", cloud.BranchMPKI, search.BranchMPKI)
	}
	if cloud.L2InstrMPKI > search.L2InstrMPKI/4 {
		t.Errorf("CloudSuite L2I %.2f not << search %.2f", cloud.L2InstrMPKI, search.L2InstrMPKI)
	}
	if cloud.L3LoadMPKI > 0.5 {
		t.Errorf("CloudSuite L3 load MPKI %.2f, paper 0.03", cloud.L3LoadMPKI)
	}
	// IPC ordering: mcf < omnetpp-ish < search < perlbench.
	if !(mcf.IPC < search.IPC && search.IPC < perl.IPC) {
		t.Errorf("IPC ordering: mcf %.2f, search %.2f, perl %.2f", mcf.IPC, search.IPC, perl.IPC)
	}
}

func TestCalibrationSweepWorkingSets(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale calibration")
	}
	r := S1LeafSweep(1).Build()
	// One profiler per segment: per-segment curves use segment-local
	// reuse distances so that the sweep scale factor (which shrinks
	// capacities and working sets but not per-instruction access rates)
	// does not artificially inflate cross-segment interleaving.
	var sds [trace.NumSegments]*cache.StackDist
	for i := range sds {
		sds[i] = cache.NewStackDist(64)
	}
	r.Run(16, 24_000_000, 3, Sinks{Access: func(a trace.Access) { sds[a.Seg].Observe(a) }})

	// Heap working set approaches 1 GiB paper-equivalent at 16 threads
	// (Figure 5); at 24M instructions it is still filling, so accept a
	// wide band around it.
	heapWS := PaperUnits(sds[trace.Heap].Footprint())
	if heapWS < 256<<20 || heapWS > 4<<30 {
		t.Errorf("heap working set %.2f GiB-paper, paper ~1 GiB", float64(heapWS)/(1<<30))
	}

	// Post-L2 hit rates. Code and heap have finite working sets that the
	// paper's 135-billion-instruction traces fully amortize, so their
	// cold misses are excluded (steady state); the shard's cold misses
	// are structural (its working set grows without bound, Figure 5) and
	// stay in.
	l2eff := int64(16 * (256 << 10) / SweepScale)
	hit := func(seg trace.Segment, c int64) float64 {
		var cold float64
		if seg == trace.Code || seg == trace.Heap {
			cold = float64(sds[seg].ColdMisses(seg))
		}
		base := sds[seg].Misses(seg, l2eff) - cold
		if base <= 0 {
			return 1
		}
		return 1 - (sds[seg].Misses(seg, c)-cold)/base
	}
	// Figure 6b anchors (capacities in sim units; paper = x64):
	// heap ~95% at 1 GiB-paper and clearly lower at 256 MiB-paper.
	h1g := hit(trace.Heap, SimUnits(1<<30))
	h256 := hit(trace.Heap, SimUnits(256<<20))
	if h1g < 0.80 {
		t.Errorf("heap hit at 1 GiB-paper = %.2f, paper ~0.95", h1g)
	}
	if h256 >= h1g {
		t.Errorf("heap hit not increasing: %.2f at 256 MiB vs %.2f at 1 GiB", h256, h1g)
	}
	// Shard barely cacheable even at 2 GiB-paper (paper < 50%).
	if s2g := hit(trace.Shard, SimUnits(2<<30)); s2g > 0.5 {
		t.Errorf("shard hit at 2 GiB-paper = %.2f, paper < 0.5", s2g)
	}
	// Code captured by a 16 MiB-paper cache (paper: sufficient).
	if c16 := hit(trace.Code, SimUnits(16<<20)); c16 < 0.95 {
		t.Errorf("code hit at 16 MiB-paper = %.2f, paper ~1", c16)
	}
}
